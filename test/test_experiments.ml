(* End-to-end experiment drivers (small-effort configurations). *)

let tiny : Effort.t =
  {
    Effort.campaign =
      { Campaign.default_config with max_trials = Some 12; budget_factor = 8 };
    acl_injections = 1;
    fig4_ranks = 2;
    timing_runs = 2;
    jobs = 2;
  }

let test_fig5_structure () =
  let rows = Experiments.fig5 ~effort:tiny Is.app in
  Alcotest.(check int) "one row per region" 3 (List.length rows);
  List.iter
    (fun (r : Experiments.region_rates_row) ->
      Alcotest.(check bool) "trials ran" true (r.rr_internal.Campaign.trials > 0);
      let sr = Campaign.success_rate r.rr_internal in
      Alcotest.(check bool) "rate in range" true (sr >= 0.0 && sr <= 1.0))
    rows

let test_fig6_structure () =
  let rows = Experiments.fig6 ~effort:tiny Is.app in
  Alcotest.(check int) "one row per iteration" Is.niter (List.length rows);
  List.iteri
    (fun k (r : Experiments.iteration_rates_row) ->
      Alcotest.(check int) "ordered iterations" k r.ir_iteration)
    rows

let test_fig7_structure () =
  let s = Experiments.fig7 Lulesh.app in
  let acl = s.Experiments.as_result in
  Alcotest.(check bool) "series nonempty" true (Array.length acl.Acl.series > 1);
  Alcotest.(check bool) "peak positive" true (acl.Acl.peak > 0);
  (* the fault sits in the targeted late iteration *)
  Alcotest.(check bool) "fault placed" true
    (match s.Experiments.as_fault with
    | Machine.Flip_write { seq; _ } -> seq > 0
    | _ -> false)

let test_table1_structure () =
  let rows = Experiments.table1 ~effort:tiny Mg.app in
  Alcotest.(check int) "one row per region" 4 (List.length rows);
  List.iter
    (fun (r : Experiments.table1_row) ->
      Alcotest.(check bool) "line range sane" true
        (fst r.t1_lines < snd r.t1_lines);
      Alcotest.(check bool) "instructions counted" true (r.t1_instr_per_iter > 0))
    rows

let test_table2_monotone () =
  let rows = Experiments.table2 () in
  Alcotest.(check int) "four V-cycles" 4 (List.length rows);
  let mags =
    List.map (fun (r : Experiments.table2_row) -> r.t2_magnitude) rows
    |> List.filter Float.is_finite
  in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a > b && decreasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "repeated additions shrink the error" true
    (decreasing mags)

let test_table2_bit_argument () =
  (* a different bit gives a different (still shrinking) trajectory *)
  let rows = Experiments.table2 ~bit:42 () in
  Alcotest.(check bool) "runs with other bits" true (List.length rows = 4)

let test_table4_structure () =
  (* restrict to four apps to keep the test fast; the full ten-app run
     belongs to the bench harness *)
  let apps = [ Is.app; Dc.app; Lu.app; Bt.app ] in
  let t = Experiments.table4 ~effort:tiny ~apps () in
  Alcotest.(check int) "one row per app" 4 (List.length t.Experiments.rows);
  Alcotest.(check bool) "r-square bounded" true (t.Experiments.r_square <= 1.0 +. 1e-9);
  Alcotest.(check int) "six coefficients" 6
    (Array.length t.Experiments.std_coefficients);
  List.iter
    (fun (r : Experiments.table4_row) ->
      Alcotest.(check bool) "measured in [0,1]" true
        (r.t4_measured >= 0.0 && r.t4_measured <= 1.0);
      Alcotest.(check bool) "predicted in [0,1]" true
        (r.t4_predicted >= 0.0 && r.t4_predicted <= 1.0))
    t.Experiments.rows

let test_fig4_structure () =
  let rows = Experiments.fig4 ~effort:tiny ~apps:[ Is.app ] () in
  match rows with
  | [ r ] ->
      Alcotest.(check int) "ranks" 2 r.f4_ranks;
      Alcotest.(check bool) "times positive" true
        (r.f4_untraced_s > 0.0 && r.f4_traced_s > 0.0);
      Alcotest.(check bool) "tracing costs something" true (r.f4_overhead > 0.0)
  | _ -> Alcotest.fail "expected one row"

let test_facade_inject_and_analyze () =
  let report =
    Fliptracker.inject_and_analyze Is.app
      (Machine.Flip_write { seq = 5_000; bit = 7 })
  in
  (match report.Fliptracker.outcome with
  | Machine.Finished | Machine.Trapped _ | Machine.Budget_exceeded -> ());
  Alcotest.(check bool) "report printable" true
    (String.length (Fmt.str "%a" Fliptracker.pp_injection_report report) > 0)

let test_facade_measure_resilience () =
  let counts =
    Fliptracker.measure_resilience
      ~cfg:{ Campaign.default_config with max_trials = Some 10 }
      Is.app
  in
  Alcotest.(check int) "ten trials" 10 counts.Campaign.trials

let test_facade_pattern_rates () =
  let r = Fliptracker.pattern_rates Dc.app in
  Alcotest.(check bool) "DC shifts heavily" true (r.Rates.shift > 0.0)

let suite =
  ( "experiments",
    [
      Alcotest.test_case "fig5 structure" `Slow test_fig5_structure;
      Alcotest.test_case "fig6 structure" `Slow test_fig6_structure;
      Alcotest.test_case "fig7 structure" `Slow test_fig7_structure;
      Alcotest.test_case "table1 structure" `Slow test_table1_structure;
      Alcotest.test_case "table2 monotone" `Slow test_table2_monotone;
      Alcotest.test_case "table2 bit argument" `Slow test_table2_bit_argument;
      Alcotest.test_case "table4 structure" `Slow test_table4_structure;
      Alcotest.test_case "fig4 structure" `Slow test_fig4_structure;
      Alcotest.test_case "facade inject+analyze" `Slow test_facade_inject_and_analyze;
      Alcotest.test_case "facade measure resilience" `Slow
        test_facade_measure_resilience;
      Alcotest.test_case "facade pattern rates" `Slow test_facade_pattern_rates;
    ] )
