(* The campaign server: wire framing (dup suppression, checksum +
   resend, deadlines), the content-addressed cache, the infra
   taxonomy, protocol codecs, sharded journals, and the core
   crash-tolerance contract — a campaign whose workers are SIGKILLed
   mid-flight produces counts byte-identical to --jobs 1. *)

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ft-server-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir dir 0o755;
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun f -> rm (Filename.concat p f)) (Sys.readdir p);
      Unix.rmdir p
    end
    else Sys.remove p
  in
  Fun.protect ~finally:(fun () -> try rm dir with Sys_error _ -> ()) (fun () -> f dir)

(* --- wire ---------------------------------------------------------------- *)

let msg s = Csexp.List [ Csexp.Atom "m"; Csexp.Atom s ]

let test_wire_roundtrip () =
  let a, b = Wire.pair () in
  let sent = List.init 20 (fun i -> msg (string_of_int i)) in
  List.iter (Wire.send a) sent;
  let got = List.map (fun _ -> Wire.recv b ~timeout_s:2.0) sent in
  Alcotest.(check bool) "all frames in order" true (got = sent);
  Wire.close a;
  Wire.close b

let test_wire_dup_suppression () =
  let a, b = Wire.pair () in
  (* every frame is written twice; the receiver must deliver each once *)
  Wire.set_inject a (Some (fun raw -> [ raw; raw ]));
  let sent = List.init 5 (fun i -> msg (string_of_int i)) in
  List.iter (Wire.send a) sent;
  let got = List.map (fun _ -> Wire.recv b ~timeout_s:2.0) sent in
  Alcotest.(check bool) "duplicates suppressed" true (got = sent);
  (* the last duplicate is still pending; drain it so every dup counts *)
  (match Wire.try_recv b with
  | Some _ -> Alcotest.fail "a duplicate was delivered"
  | None -> ());
  Alcotest.(check int) "every duplicate discarded" 5
    (Wire.stats b).Wire.dup_discarded;
  Wire.close a;
  Wire.close b

let test_wire_corruption_recovers_by_resend () =
  let a, b = Wire.pair () in
  (* corrupt one payload byte of the first frame only; the receiver
     nacks and the sender retransmits from its buffer *)
  let corrupted = ref false in
  Wire.set_inject a
    (Some
       (fun raw ->
         if !corrupted then [ raw ]
         else begin
           corrupted := true;
           let bytes = Bytes.of_string raw in
           let i = String.length raw - 2 in
           Bytes.set bytes i
             (Char.chr (Char.code (Bytes.get bytes i) lxor 0x40));
           [ Bytes.to_string bytes ]
         end));
  Wire.send a (msg "fragile");
  (* the nack is only read when the sender receives; drive both sides *)
  let rec pump tries =
    if tries = 0 then Alcotest.fail "resend never recovered the frame"
    else
      match Wire.try_recv b with
      | Some m -> m
      | None ->
          (match Wire.try_recv a with Some _ -> () | None -> ());
          Unix.sleepf 0.01;
          pump (tries - 1)
  in
  let got = pump 200 in
  Alcotest.(check bool) "recovered payload" true (got = msg "fragile");
  Alcotest.(check bool) "checksum failure recorded" true
    ((Wire.stats b).Wire.checksum_failures >= 1);
  Alcotest.(check bool) "sender resent" true ((Wire.stats a).Wire.resent >= 1);
  Wire.close a;
  Wire.close b

let test_wire_recv_deadline () =
  let a, b = Wire.pair () in
  (match Wire.recv b ~timeout_s:0.05 with
  | _ -> Alcotest.fail "expected Timeout"
  | exception Wire.Timeout _ -> ());
  Wire.close a;
  Wire.close b

let test_wire_closed_peer () =
  let a, b = Wire.pair () in
  Wire.close a;
  match Wire.recv b ~timeout_s:1.0 with
  | _ -> Alcotest.fail "expected Closed"
  | exception Wire.Closed -> Wire.close b

(* --- cache --------------------------------------------------------------- *)

let test_cache_roundtrip_and_corruption () =
  with_temp_dir (fun dir ->
      let key = Cache.key "plan:v1:IS" in
      let v = (42, "golden", [| 1.5; 2.5 |]) in
      let path = Cache.store ~dir ~key v in
      Alcotest.(check bool) "loads back" true
        (Cache.load ~dir ~key = Some v);
      Alcotest.(check bool) "listed" true (Cache.entries dir = [ key ]);
      (* flip a payload byte: the checksum must reject the entry, not
         crash or hand back a silently different value *)
      let size = (Unix.stat path).Unix.st_size in
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
      ignore (Unix.lseek fd (size - 5) Unix.SEEK_SET);
      ignore (Unix.write_substring fd "X" 0 1);
      Unix.close fd;
      Alcotest.(check bool) "corrupt entry loads as None" true
        ((Cache.load ~dir ~key : (int * string * float array) option) = None);
      Alcotest.(check bool) "missing key is None" true
        ((Cache.load ~dir ~key:"0000000000000000" : int option) = None))

(* --- infra taxonomy ------------------------------------------------------ *)

let test_infra_kinds_roundtrip () =
  let causes =
    [
      Infra.Trial_raised { idx = 3; message = "boom" };
      Infra.Worker_lost { pid = 123; batch = Some 7 };
      Infra.Lease_expired { batch = 7; pid = 123; heartbeat_s = 5.0 };
      Infra.Wire_fault { message = "unframed bytes" };
    ]
  in
  List.iter
    (fun c ->
      Alcotest.(check string)
        (Infra.to_message c) (Infra.kind c)
        (Infra.kind_of_message (Infra.to_message c)))
    causes;
  (* pre-taxonomy executor messages classify as trial failures *)
  Alcotest.(check string) "legacy executor message" "trial"
    (Infra.kind_of_message "trial 17: Failure(\"flaky\")");
  Alcotest.(check string) "garbage" "unknown" (Infra.kind_of_message "whatever")

(* --- protocol codecs ----------------------------------------------------- *)

let test_proto_roundtrips () =
  let specs =
    [
      Campaign.default_spec;
      {
        Campaign.sp_app = "CG@all";
        sp_seed = 7;
        sp_trials = None;
        sp_model = Fault_model.Single_bit;
        sp_recovery = Campaign.Rollback { max_restores = 2 };
        sp_structure = Structure.Reg;
      };
    ]
  in
  List.iter
    (fun s ->
      match Campaign.spec_of_csexp (Campaign.spec_to_csexp s) with
      | Ok s' -> Alcotest.(check bool) "spec roundtrip" true (s = s')
      | Error e -> Alcotest.fail e)
    specs;
  let counts =
    { Campaign.success = 3; failed = 1; crashed = 4; recovered = 1; trials = 9;
      infra = 2 }
  in
  (match Campaign.counts_of_csexp (Campaign.counts_to_csexp counts) with
  | Ok c -> Alcotest.(check bool) "counts roundtrip" true (c = counts)
  | Error e -> Alcotest.fail e);
  let client_msgs =
    [ Proto.Submit Campaign.default_spec; Proto.Status; Proto.Shutdown ]
  in
  List.iter
    (fun m ->
      match Proto.client_of_csexp (Proto.client_to_csexp m) with
      | Ok m' -> Alcotest.(check bool) "client msg" true (m = m')
      | Error e -> Alcotest.fail e)
    client_msgs;
  let server_msgs =
    [
      Proto.Accepted { id = 1 };
      Proto.Rejected { reason = "busy" };
      Proto.Progress { id = 1; completed = 5; planned = 10; stolen = 1 };
      Proto.Result { id = 1; counts };
      Proto.Poisoned { id = 1; reason = "batch 3 kept dying" };
      Proto.Status_reply
        { Proto.st_state = "running"; st_completed = 5; st_planned = 10;
          st_campaigns = 2 };
      Proto.Bye;
    ]
  in
  List.iter
    (fun m ->
      match Proto.server_of_csexp (Proto.server_to_csexp m) with
      | Ok m' -> Alcotest.(check bool) "server msg" true (m = m')
      | Error e -> Alcotest.fail e)
    server_msgs;
  let worker_msgs =
    [
      Proto.Ready { pid = 42 };
      Proto.Heartbeat { idx = 17 };
      Proto.Trial (Executor.trial_record string_of_int 3 (Executor.Done 99));
      Proto.Batch_done { batch = 2; retries = 1 };
    ]
  in
  List.iter
    (fun m ->
      match Proto.from_worker_of_csexp (Proto.from_worker_to_csexp m) with
      | Ok m' -> Alcotest.(check bool) "worker msg" true (m = m')
      | Error e -> Alcotest.fail e)
    worker_msgs;
  List.iter
    (fun m ->
      match Proto.to_worker_of_csexp (Proto.to_worker_to_csexp m) with
      | Ok m' -> Alcotest.(check bool) "to-worker msg" true (m = m')
      | Error e -> Alcotest.fail e)
    [ Proto.Lease { batch = 0; lo = 0; hi = 16 }; Proto.Quit ]

(* --- shard journals ------------------------------------------------------ *)

let header = Csexp.List [ Csexp.Atom "hdr"; Csexp.Atom "campaign-x" ]
let rec_of i = Executor.trial_record string_of_int i (Executor.Done (i * i))

let test_shard_torn_tails_heal_per_shard () =
  with_temp_dir (fun dir ->
      let sh = Shard.create ~dir ~shards:3 ~header in
      for i = 0 to 29 do
        Shard.append sh ~shard:(i / 10) (rec_of i)
      done;
      Shard.sync_all sh;
      Shard.close sh;
      (* tear the tail of shard 1 only *)
      let path1 = List.nth (Shard.shard_paths ~dir ~shards:3) 1 in
      let size = (Unix.stat path1).Unix.st_size in
      let fd = Unix.openfile path1 [ Unix.O_WRONLY ] 0o644 in
      Unix.ftruncate fd (size - 3);
      Unix.close fd;
      let sh, records = Shard.open_resume ~dir ~shards:3 ~header in
      Shard.close sh;
      let parsed = List.filter_map (Executor.parse_trial int_of_string_opt) records in
      let indices = List.map fst parsed |> List.sort compare in
      (* exactly one record (shard 1's torn last) was dropped *)
      Alcotest.(check int) "one record lost to the tear" 29 (List.length parsed);
      Alcotest.(check bool) "shard 0 and 2 intact" true
        (List.for_all (fun i -> List.mem i indices)
           (List.init 10 Fun.id @ List.init 10 (fun i -> 20 + i)));
      List.iter
        (fun (i, o) ->
          Alcotest.(check bool) "payload survives" true
            (o = Executor.Done (i * i)))
        parsed)

let test_shard_header_mismatch_refuses () =
  with_temp_dir (fun dir ->
      let sh = Shard.create ~dir ~shards:2 ~header in
      Shard.close sh;
      let other = Csexp.List [ Csexp.Atom "hdr"; Csexp.Atom "campaign-y" ] in
      match Shard.open_resume ~dir ~shards:2 ~header:other with
      | _ -> Alcotest.fail "expected Header_mismatch"
      | exception Shard.Header_mismatch _ -> ())

let test_shard_compaction_dedups () =
  with_temp_dir (fun dir ->
      let sh = Shard.create ~dir ~shards:1 ~header in
      (* the same three trials re-journaled many times (stolen leases) *)
      for _round = 0 to 9 do
        for i = 0 to 2 do Shard.append sh ~shard:0 (rec_of i) done
      done;
      Shard.sync_all sh;
      let key r =
        match r with
        | Csexp.List (Csexp.Atom "t" :: Csexp.Atom idx :: _) -> Some idx
        | _ -> None
      in
      let before, after = Shard.compact sh ~key ~shard:0 in
      Shard.close sh;
      Alcotest.(check bool) "compaction shrank the shard" true (after < before);
      let sh, records = Shard.open_resume ~dir ~shards:1 ~header in
      Shard.close sh;
      Alcotest.(check int) "three records survive" 3 (List.length records))

(* --- the server engine --------------------------------------------------- *)

let pure_trial i = (i * 2654435761) land 0xFFFF

let spec ?(total = 48) ?(tag = "server-test:v1") run_trial =
  {
    Executor.tag;
    total;
    run_trial;
    encode = string_of_int;
    decode = int_of_string_opt;
    should_stop = None;
  }

let outcomes_equal a b =
  Array.length a = Array.length b && Array.for_all2 ( = ) a b

let test_server_matches_executor () =
  let s = spec pure_trial in
  let reference = Executor.run ~cfg:{ Executor.default_config with jobs = 1 } s in
  let report =
    Server.run
      ~cfg:{ Server.default_config with Server.workers = 3; batch = 8 }
      s
  in
  Alcotest.(check int) "all trials ran" 48 report.Executor.completed;
  Alcotest.(check bool) "identical outcome sequence" true
    (outcomes_equal reference.Executor.outcomes report.Executor.outcomes)

let test_server_chaos_kills_preserve_outcomes () =
  (* one batch spanning the whole campaign and a 1 ms pause per trial:
     each SIGKILL is guaranteed to land while ~dozens of trials are
     still outstanding on the dead worker's lease, so the lease MUST be
     stolen and finished by a replacement *)
  let slow_trial i = Unix.sleepf 0.001; pure_trial i in
  let reference =
    Executor.run
      ~cfg:{ Executor.default_config with jobs = 1 }
      (spec ~total:60 pure_trial)
  in
  let obs = Obs.create () in
  let report =
    Server.run
      ~cfg:
        {
          Server.default_config with
          Server.workers = 2;
          batch = 60;
          chaos_kills = [ 10; 35 ];
          heartbeat_s = 10.0;
          metrics = Some obs;
        }
      (spec ~total:60 slow_trial)
  in
  let counter n = Option.value ~default:0 (Obs.counter_value obs n) in
  Alcotest.(check int) "both chaos kills fired" 2 (counter "server/chaos-kills");
  Alcotest.(check int) "both leases were stolen" 2
    (counter "server/leases-stolen");
  Alcotest.(check bool) "replacements were forked" true
    (counter "server/workers-forked" > 2);
  Alcotest.(check int) "all trials ran" 60 report.Executor.completed;
  Alcotest.(check bool) "SIGKILLs cannot change the outcome sequence" true
    (outcomes_equal reference.Executor.outcomes report.Executor.outcomes)

let test_server_kill_at_batch_boundary () =
  (* the worker dies after delivering the LAST trial record of the only
     batch but before Batch_done ([chaos_stall_done_s] holds it in that
     window until its heartbeat deadline expires): every record arrived,
     so the stolen lease has nothing left to compute and the batch can
     only close in the scheduler's assign path.  The completed prefix
     must still advance to the full total — a stale prefix here silently
     truncates report.outcomes (regression test for exactly that bug) *)
  let reference =
    Executor.run
      ~cfg:{ Executor.default_config with jobs = 1 }
      (spec ~total:16 pure_trial)
  in
  let obs = Obs.create () in
  let report =
    Server.run
      ~cfg:
        {
          Server.default_config with
          Server.workers = 1;
          batch = 16;
          chaos_stall_done_s = 5.0;
          heartbeat_s = 0.3;
          metrics = Some obs;
        }
      (spec ~total:16 pure_trial)
  in
  let counter n = Option.value ~default:0 (Obs.counter_value obs n) in
  Alcotest.(check int) "the stalled heartbeat was missed" 1
    (counter "server/heartbeats-missed");
  Alcotest.(check int) "the orphaned lease was stolen" 1
    (counter "server/leases-stolen");
  Alcotest.(check int) "completed covers the whole campaign" 16
    report.Executor.completed;
  Alcotest.(check bool) "identical outcome sequence" true
    (outcomes_equal reference.Executor.outcomes report.Executor.outcomes)

let test_server_journal_resume () =
  with_temp_dir (fun dir ->
      let jdir = Filename.concat dir "journal" in
      let s = spec ~total:40 pure_trial in
      let cfg kills resume =
        {
          Server.default_config with
          Server.workers = 2;
          batch = 5;
          shards = 2;
          journal_dir = Some jdir;
          resume;
          chaos_kills = kills;
          heartbeat_s = 10.0;
        }
      in
      let first = Server.run ~cfg:(cfg [ 12 ] false) s in
      Alcotest.(check int) "first run completed" 40 first.Executor.completed;
      (* tear one shard's tail, as a crashed server would leave it *)
      let path0 = List.nth (Shard.shard_paths ~dir:jdir ~shards:2) 0 in
      let size = (Unix.stat path0).Unix.st_size in
      let fd = Unix.openfile path0 [ Unix.O_WRONLY ] 0o644 in
      Unix.ftruncate fd (size - 4);
      Unix.close fd;
      let calls = ref 0 in
      let counted i = incr calls; pure_trial i in
      let second = Server.run ~cfg:(cfg [] true) (spec ~total:40 counted) in
      Alcotest.(check bool) "most trials resumed from the journal" true
        (second.Executor.resumed >= 35);
      Alcotest.(check bool) "only missing trials re-ran" true
        (!calls <= 40 - second.Executor.resumed + 5);
      Alcotest.(check bool) "resumed run agrees with the first" true
        (outcomes_equal first.Executor.outcomes second.Executor.outcomes))

let test_server_poisons_unrunnable_campaign () =
  (* every worker that leases batch 0 stalls without heartbeating: the
     lease expires, the thief stalls too, and the campaign must be
     refused as infrastructure-broken rather than hang or fabricate *)
  let stall i = if i < 4 then Unix.sleep 30 else ();
    pure_trial i
  in
  let obs = Obs.create () in
  match
    Server.run
      ~cfg:
        {
          Server.default_config with
          Server.workers = 2;
          batch = 4;
          heartbeat_s = 0.3;
          max_lease_attempts = 1;
          metrics = Some obs;
        }
      (spec ~total:8 stall)
  with
  | _ -> Alcotest.fail "expected Campaign_poisoned"
  | exception Infra.Campaign_poisoned { batch; attempts; cause } ->
      Alcotest.(check int) "the stalling batch" 0 batch;
      Alcotest.(check bool) "after repeated lease attempts" true (attempts >= 2);
      Alcotest.(check string) "classified as a lease expiry" "lease-expired"
        (Infra.kind cause);
      Alcotest.(check bool) "heartbeat misses were counted" true
        (Option.value ~default:0 (Obs.counter_value obs "server/heartbeats-missed")
         >= 2)

(* --- the acceptance gate: a real campaign under worker SIGKILL ----------- *)

let test_chaos_campaign_counts_byte_identical () =
  match Server.plan_of_app "IS" with
  | Error e -> Alcotest.fail e
  | Ok plan ->
      let ccfg =
        { Campaign.default_config with Campaign.max_trials = Some 48 }
      in
      (* the --jobs 1 reference, through the very same plan and kernel *)
      let s = Server.campaign_spec plan ccfg in
      let reference =
        Executor.run ~cfg:{ Executor.default_config with jobs = 1 } s
      in
      let ref_counts = Campaign.counts_of_outcomes reference.Executor.outcomes in
      let obs = Obs.create () in
      let counts, report =
        Server.run_campaign
          ~cfg:
            {
              Server.default_config with
              Server.workers = 2;
              batch = 8;
              chaos_kills = [ 10; 30 ];
              heartbeat_s = 10.0;
              metrics = Some obs;
            }
          plan ccfg
      in
      Alcotest.(check bool) "at least one worker was SIGKILLed" true
        (Option.value ~default:0 (Obs.counter_value obs "server/chaos-kills") >= 1);
      Alcotest.(check int) "all trials ran" reference.Executor.completed
        report.Executor.completed;
      (* the headline invariant: byte-identical counts, infra and
         recovery fields included *)
      Alcotest.(check string) "counts byte-identical to --jobs 1"
        (Csexp.to_string (Campaign.counts_to_csexp ref_counts))
        (Csexp.to_string (Campaign.counts_to_csexp counts))

(* --- jittered backoff (satellite) ---------------------------------------- *)

let test_backoff_jitter_bounds_and_determinism () =
  let cfg = { Executor.default_config with retry_backoff_s = 0.1; retry_jitter = 0.5 } in
  for idx = 0 to 40 do
    for k = 0 to 3 do
      let s = Executor.backoff_s cfg idx k in
      let step = 0.1 *. Float.of_int (1 lsl k) in
      Alcotest.(check bool) "within [0.5x, 1.5x]" true
        (s >= (0.5 *. step) -. 1e-12 && s <= (1.5 *. step) +. 1e-12);
      Alcotest.(check (float 0.0)) "deterministic per (trial, attempt)" s
        (Executor.backoff_s cfg idx k)
    done
  done;
  let locked = { cfg with Executor.retry_jitter = 0.0 } in
  Alcotest.(check (float 1e-12)) "jitter 0 restores the historical schedule"
    0.4
    (Executor.backoff_s locked 7 2);
  (* distinct trials de-synchronize: not all equal *)
  let sleeps = List.init 20 (fun i -> Executor.backoff_s cfg i 0) in
  Alcotest.(check bool) "trials spread out" true
    (List.exists (fun s -> abs_float (s -. List.hd sleeps) > 1e-6) sleeps)

let suite =
  ( "server",
    [
      Alcotest.test_case "wire roundtrip" `Quick test_wire_roundtrip;
      Alcotest.test_case "wire dup suppression" `Quick test_wire_dup_suppression;
      Alcotest.test_case "wire corruption resend" `Quick
        test_wire_corruption_recovers_by_resend;
      Alcotest.test_case "wire recv deadline" `Quick test_wire_recv_deadline;
      Alcotest.test_case "wire closed peer" `Quick test_wire_closed_peer;
      Alcotest.test_case "cache roundtrip + corruption" `Quick
        test_cache_roundtrip_and_corruption;
      Alcotest.test_case "infra kinds roundtrip" `Quick test_infra_kinds_roundtrip;
      Alcotest.test_case "protocol codecs roundtrip" `Quick test_proto_roundtrips;
      Alcotest.test_case "shard torn tails heal per shard" `Quick
        test_shard_torn_tails_heal_per_shard;
      Alcotest.test_case "shard header mismatch refuses" `Quick
        test_shard_header_mismatch_refuses;
      Alcotest.test_case "shard compaction dedups" `Quick
        test_shard_compaction_dedups;
      Alcotest.test_case "server matches executor" `Quick
        test_server_matches_executor;
      Alcotest.test_case "chaos kills preserve outcomes" `Quick
        test_server_chaos_kills_preserve_outcomes;
      Alcotest.test_case "kill at batch boundary keeps full prefix" `Quick
        test_server_kill_at_batch_boundary;
      Alcotest.test_case "journal resume after torn shard" `Quick
        test_server_journal_resume;
      Alcotest.test_case "unrunnable campaign poisons" `Quick
        test_server_poisons_unrunnable_campaign;
      Alcotest.test_case "chaos campaign counts byte-identical" `Slow
        test_chaos_campaign_counts_byte_identical;
      Alcotest.test_case "backoff jitter bounds + determinism" `Quick
        test_backoff_jitter_bounds_and_determinism;
    ] )
