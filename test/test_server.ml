(* The campaign server: wire framing (dup suppression, checksum +
   resend, deadlines), the content-addressed cache, the infra
   taxonomy, protocol codecs, sharded journals, and the core
   crash-tolerance contract — a campaign whose workers are SIGKILLed
   mid-flight produces counts byte-identical to --jobs 1. *)

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ft-server-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir dir 0o755;
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun f -> rm (Filename.concat p f)) (Sys.readdir p);
      Unix.rmdir p
    end
    else Sys.remove p
  in
  Fun.protect ~finally:(fun () -> try rm dir with Sys_error _ -> ()) (fun () -> f dir)

(* --- wire ---------------------------------------------------------------- *)

let msg s = Csexp.List [ Csexp.Atom "m"; Csexp.Atom s ]

let test_wire_roundtrip () =
  let a, b = Wire.pair () in
  let sent = List.init 20 (fun i -> msg (string_of_int i)) in
  List.iter (Wire.send a) sent;
  let got = List.map (fun _ -> Wire.recv b ~timeout_s:2.0) sent in
  Alcotest.(check bool) "all frames in order" true (got = sent);
  Wire.close a;
  Wire.close b

let test_wire_dup_suppression () =
  let a, b = Wire.pair () in
  (* every frame is written twice; the receiver must deliver each once *)
  Wire.set_inject a (Some (fun raw -> [ raw; raw ]));
  let sent = List.init 5 (fun i -> msg (string_of_int i)) in
  List.iter (Wire.send a) sent;
  let got = List.map (fun _ -> Wire.recv b ~timeout_s:2.0) sent in
  Alcotest.(check bool) "duplicates suppressed" true (got = sent);
  (* the last duplicate is still pending; drain it so every dup counts *)
  (match Wire.try_recv b with
  | Some _ -> Alcotest.fail "a duplicate was delivered"
  | None -> ());
  Alcotest.(check int) "every duplicate discarded" 5
    (Wire.stats b).Wire.dup_discarded;
  Wire.close a;
  Wire.close b

let test_wire_corruption_recovers_by_resend () =
  let a, b = Wire.pair () in
  (* corrupt one payload byte of the first frame only; the receiver
     nacks and the sender retransmits from its buffer *)
  let corrupted = ref false in
  Wire.set_inject a
    (Some
       (fun raw ->
         if !corrupted then [ raw ]
         else begin
           corrupted := true;
           let bytes = Bytes.of_string raw in
           let i = String.length raw - 2 in
           Bytes.set bytes i
             (Char.chr (Char.code (Bytes.get bytes i) lxor 0x40));
           [ Bytes.to_string bytes ]
         end));
  Wire.send a (msg "fragile");
  (* the nack is only read when the sender receives; drive both sides *)
  let rec pump tries =
    if tries = 0 then Alcotest.fail "resend never recovered the frame"
    else
      match Wire.try_recv b with
      | Some m -> m
      | None ->
          (match Wire.try_recv a with Some _ -> () | None -> ());
          Unix.sleepf 0.01;
          pump (tries - 1)
  in
  let got = pump 200 in
  Alcotest.(check bool) "recovered payload" true (got = msg "fragile");
  Alcotest.(check bool) "checksum failure recorded" true
    ((Wire.stats b).Wire.checksum_failures >= 1);
  Alcotest.(check bool) "sender resent" true ((Wire.stats a).Wire.resent >= 1);
  Wire.close a;
  Wire.close b

let test_wire_recv_deadline () =
  let a, b = Wire.pair () in
  (match Wire.recv b ~timeout_s:0.05 with
  | _ -> Alcotest.fail "expected Timeout"
  | exception Wire.Timeout _ -> ());
  Wire.close a;
  Wire.close b

let test_wire_closed_peer () =
  let a, b = Wire.pair () in
  Wire.close a;
  match Wire.recv b ~timeout_s:1.0 with
  | _ -> Alcotest.fail "expected Closed"
  | exception Wire.Closed -> Wire.close b

(* --- cache --------------------------------------------------------------- *)

let test_cache_roundtrip_and_corruption () =
  with_temp_dir (fun dir ->
      let key = Cache.key "plan:v1:IS" in
      let v = (42, "golden", [| 1.5; 2.5 |]) in
      let path = Cache.store ~dir ~key v in
      Alcotest.(check bool) "loads back" true
        (Cache.load ~dir ~key = Some v);
      Alcotest.(check bool) "listed" true (Cache.entries dir = [ key ]);
      (* flip a payload byte: the checksum must reject the entry, not
         crash or hand back a silently different value *)
      let size = (Unix.stat path).Unix.st_size in
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
      ignore (Unix.lseek fd (size - 5) Unix.SEEK_SET);
      ignore (Unix.write_substring fd "X" 0 1);
      Unix.close fd;
      Alcotest.(check bool) "corrupt entry loads as None" true
        ((Cache.load ~dir ~key : (int * string * float array) option) = None);
      Alcotest.(check bool) "missing key is None" true
        ((Cache.load ~dir ~key:"0000000000000000" : int option) = None))

(* --- infra taxonomy ------------------------------------------------------ *)

let test_infra_kinds_roundtrip () =
  let causes =
    [
      Infra.Trial_raised { idx = 3; message = "boom" };
      Infra.Worker_lost { pid = 123; batch = Some 7 };
      Infra.Lease_expired { batch = 7; pid = 123; heartbeat_s = 5.0 };
      Infra.Wire_fault { message = "unframed bytes" };
      Infra.Load_failed { cid = "c0003-aabbccddee"; reason = "no such app" };
    ]
  in
  List.iter
    (fun c ->
      Alcotest.(check string)
        (Infra.to_message c) (Infra.kind c)
        (Infra.kind_of_message (Infra.to_message c)))
    causes;
  (* pre-taxonomy executor messages classify as trial failures *)
  Alcotest.(check string) "legacy executor message" "trial"
    (Infra.kind_of_message "trial 17: Failure(\"flaky\")");
  Alcotest.(check string) "garbage" "unknown" (Infra.kind_of_message "whatever")

(* --- protocol codecs ----------------------------------------------------- *)

let test_proto_roundtrips () =
  let specs =
    [
      Campaign.default_spec;
      {
        Campaign.sp_app = "CG@all";
        sp_seed = 7;
        sp_trials = None;
        sp_model = Fault_model.Single_bit;
        sp_recovery = Campaign.Rollback { max_restores = 2 };
        sp_structure = Structure.Reg;
      };
    ]
  in
  List.iter
    (fun s ->
      match Campaign.spec_of_csexp (Campaign.spec_to_csexp s) with
      | Ok s' -> Alcotest.(check bool) "spec roundtrip" true (s = s')
      | Error e -> Alcotest.fail e)
    specs;
  let counts =
    { Campaign.success = 3; failed = 1; crashed = 4; recovered = 1; trials = 9;
      infra = 2 }
  in
  (match Campaign.counts_of_csexp (Campaign.counts_to_csexp counts) with
  | Ok c -> Alcotest.(check bool) "counts roundtrip" true (c = counts)
  | Error e -> Alcotest.fail e);
  let client_msgs =
    [
      Proto.Submit { spec = Campaign.default_spec; resume_id = None };
      Proto.Submit
        { spec = Campaign.default_spec; resume_id = Some "c0002-1a2b3c4d5e" };
      Proto.Status;
      Proto.Fetch { id = "c0000-0011223344" };
      Proto.Watch { id = "c0001-5566778899" };
      Proto.Shutdown;
    ]
  in
  List.iter
    (fun m ->
      match Proto.client_of_csexp (Proto.client_to_csexp m) with
      | Ok m' -> Alcotest.(check bool) "client msg" true (m = m')
      | Error e -> Alcotest.fail e)
    client_msgs;
  let tenants =
    [
      { Proto.tn_id = "c0000-0011223344"; tn_app = "IS"; tn_state = "done";
        tn_completed = 48; tn_planned = 48; tn_leases = 0; tn_steals = 1 };
      { Proto.tn_id = "c0001-5566778899"; tn_app = "CG@all";
        tn_state = "active"; tn_completed = 5; tn_planned = 96; tn_leases = 2;
        tn_steals = 0 };
    ]
  in
  let server_msgs =
    [
      Proto.Accepted { id = "c0000-0011223344" };
      Proto.Rejected { reason = "busy" };
      Proto.Progress
        { id = "c0000-0011223344"; completed = 5; planned = 10; stolen = 1 };
      Proto.Result { id = "c0000-0011223344"; counts };
      Proto.Poisoned { id = "c0000-0011223344"; reason = "batch 3 kept dying" };
      Proto.Queued_reply { id = "c0002-1a2b3c4d5e"; position = 3 };
      Proto.Status_reply
        { Proto.st_state = "running"; st_completed = 5; st_planned = 10;
          st_campaigns = 2; st_queued = 1; st_active = 2; st_workers = 4;
          st_tenants = tenants };
      Proto.Status_reply
        { Proto.st_state = "idle"; st_completed = 0; st_planned = 0;
          st_campaigns = 0; st_queued = 0; st_active = 0; st_workers = 2;
          st_tenants = [] };
      Proto.Bye;
    ]
  in
  List.iter
    (fun m ->
      match Proto.server_of_csexp (Proto.server_to_csexp m) with
      | Ok m' -> Alcotest.(check bool) "server msg" true (m = m')
      | Error e -> Alcotest.fail e)
    server_msgs;
  let worker_msgs =
    [
      Proto.Ready { pid = 42 };
      Proto.Loaded { cid = "c0000-0011223344" };
      Proto.Load_failed { cid = "c0000-0011223344"; reason = "no such app" };
      Proto.Heartbeat { idx = 17 };
      Proto.Trial
        {
          cid = "c0000-0011223344";
          record = Executor.trial_record string_of_int 3 (Executor.Done 99);
        };
      Proto.Batch_done { cid = "c0000-0011223344"; batch = 2; retries = 1 };
    ]
  in
  List.iter
    (fun m ->
      match Proto.from_worker_of_csexp (Proto.from_worker_to_csexp m) with
      | Ok m' -> Alcotest.(check bool) "worker msg" true (m = m')
      | Error e -> Alcotest.fail e)
    worker_msgs;
  List.iter
    (fun m ->
      match Proto.to_worker_of_csexp (Proto.to_worker_to_csexp m) with
      | Ok m' -> Alcotest.(check bool) "to-worker msg" true (m = m')
      | Error e -> Alcotest.fail e)
    [
      Proto.Load { cid = "c0000-0011223344"; spec = Campaign.default_spec };
      Proto.Lease { cid = "c0000-0011223344"; batch = 0; lo = 0; hi = 16 };
      Proto.Quit;
    ]

(* --- shard journals ------------------------------------------------------ *)

let header = Csexp.List [ Csexp.Atom "hdr"; Csexp.Atom "campaign-x" ]
let rec_of i = Executor.trial_record string_of_int i (Executor.Done (i * i))

let test_shard_torn_tails_heal_per_shard () =
  with_temp_dir (fun dir ->
      let sh = Shard.create ~dir ~shards:3 ~header in
      for i = 0 to 29 do
        Shard.append sh ~shard:(i / 10) (rec_of i)
      done;
      Shard.sync_all sh;
      Shard.close sh;
      (* tear the tail of shard 1 only *)
      let path1 = List.nth (Shard.shard_paths ~dir ~shards:3) 1 in
      let size = (Unix.stat path1).Unix.st_size in
      let fd = Unix.openfile path1 [ Unix.O_WRONLY ] 0o644 in
      Unix.ftruncate fd (size - 3);
      Unix.close fd;
      let sh, records = Shard.open_resume ~dir ~shards:3 ~header in
      Shard.close sh;
      let parsed = List.filter_map (Executor.parse_trial int_of_string_opt) records in
      let indices = List.map fst parsed |> List.sort compare in
      (* exactly one record (shard 1's torn last) was dropped *)
      Alcotest.(check int) "one record lost to the tear" 29 (List.length parsed);
      Alcotest.(check bool) "shard 0 and 2 intact" true
        (List.for_all (fun i -> List.mem i indices)
           (List.init 10 Fun.id @ List.init 10 (fun i -> 20 + i)));
      List.iter
        (fun (i, o) ->
          Alcotest.(check bool) "payload survives" true
            (o = Executor.Done (i * i)))
        parsed)

let test_shard_header_mismatch_refuses () =
  with_temp_dir (fun dir ->
      let sh = Shard.create ~dir ~shards:2 ~header in
      Shard.close sh;
      let other = Csexp.List [ Csexp.Atom "hdr"; Csexp.Atom "campaign-y" ] in
      match Shard.open_resume ~dir ~shards:2 ~header:other with
      | _ -> Alcotest.fail "expected Header_mismatch"
      | exception Shard.Header_mismatch _ -> ())

let test_shard_compaction_dedups () =
  with_temp_dir (fun dir ->
      let sh = Shard.create ~dir ~shards:1 ~header in
      (* the same three trials re-journaled many times (stolen leases) *)
      for _round = 0 to 9 do
        for i = 0 to 2 do Shard.append sh ~shard:0 (rec_of i) done
      done;
      Shard.sync_all sh;
      let key r =
        match r with
        | Csexp.List (Csexp.Atom "t" :: Csexp.Atom idx :: _) -> Some idx
        | _ -> None
      in
      let before, after = Shard.compact sh ~key ~shard:0 in
      Shard.close sh;
      Alcotest.(check bool) "compaction shrank the shard" true (after < before);
      let sh, records = Shard.open_resume ~dir ~shards:1 ~header in
      Shard.close sh;
      Alcotest.(check int) "three records survive" 3 (List.length records))

(* --- the server engine --------------------------------------------------- *)

let pure_trial i = (i * 2654435761) land 0xFFFF

let spec ?(total = 48) ?(tag = "server-test:v1") run_trial =
  {
    Executor.tag;
    total;
    run_trial;
    encode = string_of_int;
    decode = int_of_string_opt;
    should_stop = None;
  }

let outcomes_equal a b =
  Array.length a = Array.length b && Array.for_all2 ( = ) a b

let test_server_matches_executor () =
  let s = spec pure_trial in
  let reference = Executor.run ~cfg:{ Executor.default_config with jobs = 1 } s in
  let report =
    Server.run
      ~cfg:{ Server.default_config with Server.workers = 3; batch = 8 }
      s
  in
  Alcotest.(check int) "all trials ran" 48 report.Executor.completed;
  Alcotest.(check bool) "identical outcome sequence" true
    (outcomes_equal reference.Executor.outcomes report.Executor.outcomes)

let test_server_chaos_kills_preserve_outcomes () =
  (* one batch spanning the whole campaign and a 1 ms pause per trial:
     each SIGKILL is guaranteed to land while ~dozens of trials are
     still outstanding on the dead worker's lease, so the lease MUST be
     stolen and finished by a replacement *)
  let slow_trial i = Unix.sleepf 0.001; pure_trial i in
  let reference =
    Executor.run
      ~cfg:{ Executor.default_config with jobs = 1 }
      (spec ~total:60 pure_trial)
  in
  let obs = Obs.create () in
  let report =
    Server.run
      ~cfg:
        {
          Server.default_config with
          Server.workers = 2;
          batch = 60;
          chaos_kills = [ 10; 35 ];
          heartbeat_s = 10.0;
          metrics = Some obs;
        }
      (spec ~total:60 slow_trial)
  in
  let counter n = Option.value ~default:0 (Obs.counter_value obs n) in
  Alcotest.(check int) "both chaos kills fired" 2 (counter "server/chaos-kills");
  Alcotest.(check int) "both leases were stolen" 2
    (counter "server/leases-stolen");
  Alcotest.(check bool) "replacements were forked" true
    (counter "server/workers-forked" > 2);
  Alcotest.(check int) "all trials ran" 60 report.Executor.completed;
  Alcotest.(check bool) "SIGKILLs cannot change the outcome sequence" true
    (outcomes_equal reference.Executor.outcomes report.Executor.outcomes)

let test_server_kill_at_batch_boundary () =
  (* the worker dies after delivering the LAST trial record of the only
     batch but before Batch_done ([chaos_stall_done_s] holds it in that
     window until its heartbeat deadline expires): every record arrived,
     so the stolen lease has nothing left to compute and the batch can
     only close in the scheduler's assign path.  The completed prefix
     must still advance to the full total — a stale prefix here silently
     truncates report.outcomes (regression test for exactly that bug) *)
  let reference =
    Executor.run
      ~cfg:{ Executor.default_config with jobs = 1 }
      (spec ~total:16 pure_trial)
  in
  let obs = Obs.create () in
  let report =
    Server.run
      ~cfg:
        {
          Server.default_config with
          Server.workers = 1;
          batch = 16;
          chaos_stall_done_s = 5.0;
          heartbeat_s = 0.3;
          metrics = Some obs;
        }
      (spec ~total:16 pure_trial)
  in
  let counter n = Option.value ~default:0 (Obs.counter_value obs n) in
  Alcotest.(check int) "the stalled heartbeat was missed" 1
    (counter "server/heartbeats-missed");
  Alcotest.(check int) "the orphaned lease was stolen" 1
    (counter "server/leases-stolen");
  Alcotest.(check int) "completed covers the whole campaign" 16
    report.Executor.completed;
  Alcotest.(check bool) "identical outcome sequence" true
    (outcomes_equal reference.Executor.outcomes report.Executor.outcomes)

let test_server_journal_resume () =
  with_temp_dir (fun dir ->
      let jdir = Filename.concat dir "journal" in
      let s = spec ~total:40 pure_trial in
      let cfg kills resume =
        {
          Server.default_config with
          Server.workers = 2;
          batch = 5;
          shards = 2;
          journal_dir = Some jdir;
          resume;
          chaos_kills = kills;
          heartbeat_s = 10.0;
        }
      in
      let first = Server.run ~cfg:(cfg [ 12 ] false) s in
      Alcotest.(check int) "first run completed" 40 first.Executor.completed;
      (* tear one shard's tail, as a crashed server would leave it *)
      let path0 = List.nth (Shard.shard_paths ~dir:jdir ~shards:2) 0 in
      let size = (Unix.stat path0).Unix.st_size in
      let fd = Unix.openfile path0 [ Unix.O_WRONLY ] 0o644 in
      Unix.ftruncate fd (size - 4);
      Unix.close fd;
      let calls = ref 0 in
      let counted i = incr calls; pure_trial i in
      let second = Server.run ~cfg:(cfg [] true) (spec ~total:40 counted) in
      Alcotest.(check bool) "most trials resumed from the journal" true
        (second.Executor.resumed >= 35);
      Alcotest.(check bool) "only missing trials re-ran" true
        (!calls <= 40 - second.Executor.resumed + 5);
      Alcotest.(check bool) "resumed run agrees with the first" true
        (outcomes_equal first.Executor.outcomes second.Executor.outcomes))

let test_server_poisons_unrunnable_campaign () =
  (* every worker that leases batch 0 stalls without heartbeating: the
     lease expires, the thief stalls too, and the campaign must be
     refused as infrastructure-broken rather than hang or fabricate *)
  let stall i = if i < 4 then Unix.sleep 30 else ();
    pure_trial i
  in
  let obs = Obs.create () in
  match
    Server.run
      ~cfg:
        {
          Server.default_config with
          Server.workers = 2;
          batch = 4;
          heartbeat_s = 0.3;
          max_lease_attempts = 1;
          metrics = Some obs;
        }
      (spec ~total:8 stall)
  with
  | _ -> Alcotest.fail "expected Campaign_poisoned"
  | exception Infra.Campaign_poisoned { batch; attempts; cause } ->
      Alcotest.(check int) "the stalling batch" 0 batch;
      Alcotest.(check bool) "after repeated lease attempts" true (attempts >= 2);
      Alcotest.(check string) "classified as a lease expiry" "lease-expired"
        (Infra.kind cause);
      Alcotest.(check bool) "heartbeat misses were counted" true
        (Option.value ~default:0 (Obs.counter_value obs "server/heartbeats-missed")
         >= 2)

(* --- the multi-tenant scheduler ------------------------------------------ *)

(* A typed tenant over a closure spec: preloaded into every forked
   worker's image (closure kernels cannot travel on a wire), accepted
   back into its own outcome array. *)
let closure_tenant cid s =
  let outcomes = Array.make s.Executor.total None in
  let accept i r =
    match Executor.parse_trial s.Executor.decode r with
    | Some (j, o) when j = i ->
        outcomes.(i) <- Some o;
        true
    | Some _ | None -> false
  in
  let job =
    {
      Sched.jb_id = cid;
      jb_app = s.Executor.tag;
      jb_total = s.Executor.total;
      jb_header = Executor.header_record s;
      jb_journal = None;
      jb_resume = false;
      jb_spec = None;
      jb_accept = accept;
      jb_should_stop = None;
    }
  in
  (job, outcomes)

let reference_outcomes s =
  (Executor.run ~cfg:{ Executor.default_config with jobs = 1 } s)
    .Executor.outcomes

let final_outcomes outcomes n =
  Array.init n (fun i ->
      match outcomes.(i) with Some o -> o | None -> Alcotest.fail "hole")

let test_sched_multi_tenant_interleaving () =
  (* three campaigns interleaved on one pool of two workers, chaos
     SIGKILLs landing mid-flight, max_active 2 so the third queues:
     every tenant's outcome sequence must equal its own --jobs 1 run *)
  let mk tag total = spec ~total ~tag (fun i -> Unix.sleepf 0.001; pure_trial i) in
  let specs =
    [ ("ten-a", mk "ten-a:v1" 48); ("ten-b", mk "ten-b:v1" 40);
      ("ten-c", mk "ten-c:v1" 32) ]
  in
  let tenants = List.map (fun (cid, s) -> (cid, s, closure_tenant cid s)) specs in
  let refs =
    List.map (fun (cid, s) -> (cid, reference_outcomes (spec ~total:s.Executor.total ~tag:s.Executor.tag pure_trial))) specs
  in
  let preload =
    List.map
      (fun (cid, s) -> (cid, fun retry -> Worker.runner_of_exec_spec ~retry s))
      specs
  in
  let spawn ~close_fds =
    Worker.spawn ~close_fds ~preload ~retry:Executor.default_config ()
  in
  let finished : (string, Sched.event) Hashtbl.t = Hashtbl.create 8 in
  let on_event id = function Sched.Progress _ -> () | e -> Hashtbl.replace finished id e in
  let obs = Obs.create () in
  let cfg =
    {
      Sched.default_config with
      Sched.workers = 2;
      batch = 8;
      chaos_kills = [ 15; 60 ];
      heartbeat_s = 10.0;
      max_active = 2;
      metrics = Some obs;
    }
  in
  let eng =
    Sched.create ~cfg ~spawn
      ~preloaded:(fun cid -> List.mem_assoc cid preload)
      ~on_event ()
  in
  List.iter
    (fun (_, _, (job, _)) ->
      match Sched.submit eng job with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    tenants;
  (* duplicate ids are refused at the door *)
  (match tenants with
  | (_, _, (job, _)) :: _ ->
      Alcotest.(check bool) "duplicate id refused" true
        (Result.is_error (Sched.submit eng job))
  | [] -> ());
  Sched.drain eng;
  Sched.shutdown_workers eng;
  let counter n = Option.value ~default:0 (Obs.counter_value obs n) in
  Alcotest.(check int) "both chaos kills fired" 2 (counter "server/chaos-kills");
  Alcotest.(check int) "three tenants admitted" 3
    (counter "server/tenants-admitted");
  List.iter
    (fun (cid, s, (_, outcomes)) ->
      (match Hashtbl.find_opt finished cid with
      | Some (Sched.Finished { completed; _ }) ->
          Alcotest.(check int) (cid ^ " completed") s.Executor.total completed
      | _ -> Alcotest.fail (cid ^ " did not finish"));
      Alcotest.(check bool) (cid ^ " byte-identical to --jobs 1") true
        (outcomes_equal
           (List.assoc cid refs)
           (final_outcomes outcomes s.Executor.total)))
    tenants;
  List.iter
    (fun (st : Sched.tenant_stats) ->
      Alcotest.(check string) (st.Sched.ts_id ^ " state") "done"
        st.Sched.ts_state)
    (Sched.stats eng)

let test_sched_poison_isolation () =
  (* a tenant whose batch 0 stalls forever is poisoned after its lease
     attempts are exhausted — and ONLY that tenant: its pool-mate keeps
     its workers and finishes byte-identical *)
  let sick_trial i = if i < 4 then Unix.sleep 30; pure_trial i in
  let sick = spec ~total:8 ~tag:"sick:v1" sick_trial in
  let well = spec ~total:32 ~tag:"well:v1" (fun i -> Unix.sleepf 0.002; pure_trial i) in
  let well_ref = reference_outcomes (spec ~total:32 ~tag:"well:v1" pure_trial) in
  let sick_job, _ = closure_tenant "sick" sick in
  let well_job, well_out = closure_tenant "well" well in
  let preload =
    [ ("sick", fun retry -> Worker.runner_of_exec_spec ~retry sick);
      ("well", fun retry -> Worker.runner_of_exec_spec ~retry well) ]
  in
  let spawn ~close_fds =
    Worker.spawn ~close_fds ~preload ~retry:Executor.default_config ()
  in
  let finished : (string, Sched.event) Hashtbl.t = Hashtbl.create 8 in
  let on_event id = function Sched.Progress _ -> () | e -> Hashtbl.replace finished id e in
  let cfg =
    {
      Sched.default_config with
      Sched.workers = 2;
      batch = 4;
      heartbeat_s = 0.3;
      max_lease_attempts = 1;
      max_active = 2;
    }
  in
  let eng =
    Sched.create ~cfg ~spawn
      ~preloaded:(fun cid -> List.mem_assoc cid preload)
      ~on_event ()
  in
  (match Sched.submit eng sick_job with Ok () -> () | Error e -> Alcotest.fail e);
  (match Sched.submit eng well_job with Ok () -> () | Error e -> Alcotest.fail e);
  Sched.drain eng;
  Sched.shutdown_workers eng;
  (match Hashtbl.find_opt finished "sick" with
  | Some (Sched.Poisoned { batch; cause; _ }) ->
      Alcotest.(check int) "the stalling batch" 0 batch;
      Alcotest.(check string) "classified as a lease expiry" "lease-expired"
        (Infra.kind cause)
  | _ -> Alcotest.fail "sick tenant was not poisoned");
  (match Hashtbl.find_opt finished "well" with
  | Some (Sched.Finished { completed; _ }) ->
      Alcotest.(check int) "well tenant unharmed" 32 completed
  | _ -> Alcotest.fail "well tenant did not finish");
  Alcotest.(check bool) "well tenant byte-identical to --jobs 1" true
    (outcomes_equal well_ref (final_outcomes well_out 32));
  let states =
    List.map (fun (s : Sched.tenant_stats) -> (s.Sched.ts_id, s.Sched.ts_state))
      (Sched.stats eng)
  in
  Alcotest.(check bool) "stats isolate the poison" true
    (List.assoc "sick" states = "poisoned" && List.assoc "well" states = "done")

let test_sched_remote_worker_vanishes () =
  (* a remote-only pool: two attached workers serving a spec-driven
     campaign; a chaos kill drops one connection exactly the way a
     vanished machine would, the survivor steals the lease, and the
     counts still match --jobs 1 *)
  with_temp_dir (fun dir ->
      let cache_dir = Filename.concat dir "cache" in
      let cspec =
        { Campaign.default_spec with Campaign.sp_app = "IS"; sp_trials = Some 32 }
      in
      let ex_spec =
        match Plan.spec_of_submission ~cache_dir cspec with
        | Ok s -> s
        | Error e -> Alcotest.fail e
      in
      let reference = reference_outcomes ex_spec in
      let outcomes = Array.make ex_spec.Executor.total None in
      let accept i r =
        match Executor.parse_trial ex_spec.Executor.decode r with
        | Some (j, o) when j = i ->
            outcomes.(i) <- Some o;
            true
        | Some _ | None -> false
      in
      let job =
        {
          Sched.jb_id = "remote-job";
          jb_app = "IS";
          jb_total = ex_spec.Executor.total;
          jb_header = Executor.header_record ex_spec;
          jb_journal = None;
          jb_resume = false;
          jb_spec = Some cspec;
          jb_accept = accept;
          jb_should_stop = None;
        }
      in
      let finished : (string, Sched.event) Hashtbl.t = Hashtbl.create 4 in
      let on_event id = function
        | Sched.Progress _ -> ()
        | e -> Hashtbl.replace finished id e
      in
      let obs = Obs.create () in
      let cfg =
        {
          Sched.default_config with
          Sched.workers = 0;
          batch = 8;
          chaos_kills = [ 10 ];
          heartbeat_s = 10.0;
          metrics = Some obs;
        }
      in
      (* no [spawn]: the pool is exactly the two attached workers *)
      let eng = Sched.create ~cfg ~on_event () in
      let pids =
        List.init 2 (fun _ ->
            let pid, conn =
              Worker.spawn
                ~load:(Worker.plan_loader ~cache_dir)
                ~retry:Executor.default_config ()
            in
            Sched.attach_remote eng conn;
            pid)
      in
      Alcotest.(check int) "two remotes attached" 2 (Sched.worker_count eng);
      (match Sched.submit eng job with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      Sched.drain eng;
      Sched.shutdown_workers eng;
      List.iter
        (fun pid ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        pids;
      let counter n = Option.value ~default:0 (Obs.counter_value obs n) in
      Alcotest.(check int) "one remote vanished" 1 (counter "server/chaos-kills");
      Alcotest.(check bool) "its lease was stolen" true
        (counter "server/leases-stolen" >= 1);
      (match Hashtbl.find_opt finished "remote-job" with
      | Some (Sched.Finished { completed; _ }) ->
          Alcotest.(check int) "all trials ran" ex_spec.Executor.total completed
      | _ -> Alcotest.fail "campaign did not finish");
      Alcotest.(check bool) "byte-identical to --jobs 1" true
        (outcomes_equal reference (final_outcomes outcomes ex_spec.Executor.total)))

(* --- the acceptance gate: a real campaign under worker SIGKILL ----------- *)

let test_chaos_campaign_counts_byte_identical () =
  match Server.plan_of_app "IS" with
  | Error e -> Alcotest.fail e
  | Ok plan ->
      let ccfg =
        { Campaign.default_config with Campaign.max_trials = Some 48 }
      in
      (* the --jobs 1 reference, through the very same plan and kernel *)
      let s = Server.campaign_spec plan ccfg in
      let reference =
        Executor.run ~cfg:{ Executor.default_config with jobs = 1 } s
      in
      let ref_counts = Campaign.counts_of_outcomes reference.Executor.outcomes in
      let obs = Obs.create () in
      let counts, report =
        Server.run_campaign
          ~cfg:
            {
              Server.default_config with
              Server.workers = 2;
              batch = 8;
              chaos_kills = [ 10; 30 ];
              heartbeat_s = 10.0;
              metrics = Some obs;
            }
          plan ccfg
      in
      Alcotest.(check bool) "at least one worker was SIGKILLed" true
        (Option.value ~default:0 (Obs.counter_value obs "server/chaos-kills") >= 1);
      Alcotest.(check int) "all trials ran" reference.Executor.completed
        report.Executor.completed;
      (* the headline invariant: byte-identical counts, infra and
         recovery fields included *)
      Alcotest.(check string) "counts byte-identical to --jobs 1"
        (Csexp.to_string (Campaign.counts_to_csexp ref_counts))
        (Csexp.to_string (Campaign.counts_to_csexp counts))

(* --- the socket service end to end --------------------------------------- *)

let test_serve_two_tenants_fetch_by_id () =
  (* a forked server, two concurrent submissions of the SAME spec (the
     journal-collision regression: distinct ids, distinct directories),
     then the results fetched by id over fresh connections *)
  with_temp_dir (fun dir ->
      let socket = Filename.concat dir "ft.sock" in
      let cache_dir = Filename.concat dir "cache" in
      let jroot = Filename.concat dir "journals" in
      let cfg =
        {
          Server.default_config with
          Server.workers = 2;
          batch = 8;
          journal_dir = Some jroot;
          heartbeat_s = 10.0;
        }
      in
      let server_pid = Unix.fork () in
      if server_pid = 0 then begin
        (try Server.serve ~cfg ~cache_dir ~socket () with _ -> ());
        Unix._exit 0
      end;
      Fun.protect
        ~finally:(fun () ->
          (try Unix.kill server_pid Sys.sigkill with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] server_pid) with Unix.Unix_error _ -> ())
        (fun () ->
          let cspec =
            {
              Campaign.default_spec with
              Campaign.sp_app = "IS";
              sp_trials = Some 24;
            }
          in
          let retry =
            {
              Executor.default_config with
              Executor.max_retries = 8;
              retry_backoff_s = 0.25;
            }
          in
          (* the second tenant submits from a child process, concurrently *)
          let sub_pid = Unix.fork () in
          if sub_pid = 0 then
            Unix._exit
              (match Client.submit ~retry ~timeout_s:120.0 ~socket cspec with
              | Ok _ -> 0
              | Error _ -> 1);
          (match Client.submit ~retry ~timeout_s:120.0 ~socket cspec with
          | Ok (id, counts) ->
              Alcotest.(check bool) "a campaign id was minted" true
                (String.length id >= 6);
              Alcotest.(check int) "all trials counted" 24
                counts.Campaign.trials
          | Error e -> Alcotest.fail (Client.error_message e));
          let _, st = Unix.waitpid [] sub_pid in
          Alcotest.(check bool) "concurrent submit succeeded" true
            (st = Unix.WEXITED 0);
          (match Client.status ~retry ~socket () with
          | Ok s ->
              let ids =
                List.map (fun t -> t.Proto.tn_id) s.Proto.st_tenants
              in
              Alcotest.(check int) "two tenants served" 2 (List.length ids);
              (match ids with
              | [ a; b ] ->
                  Alcotest.(check bool) "identical specs, distinct ids" true
                    (not (String.equal a b))
              | _ -> ());
              List.iter
                (fun id ->
                  Alcotest.(check bool) (id ^ " has its own journal dir") true
                    (Sys.is_directory (Filename.concat jroot id)))
                ids;
              (* fetch on fresh connections: the verdicts outlive the
                 submitting connections *)
              let encs =
                List.map
                  (fun id ->
                    match Client.fetch ~retry ~socket ~id () with
                    | Ok (Client.Finished c) ->
                        Csexp.to_string (Campaign.counts_to_csexp c)
                    | Ok _ -> Alcotest.fail "expected a finished verdict"
                    | Error e -> Alcotest.fail (Client.error_message e))
                  ids
              in
              (match encs with
              | [ a; b ] ->
                  Alcotest.(check string)
                    "identical specs, byte-identical counts" a b
              | _ -> ());
              (* watch on a finished campaign returns immediately *)
              (match
                 Client.watch ~retry ~socket ~id:(List.hd ids) ()
               with
              | Ok _ -> ()
              | Error e -> Alcotest.fail (Client.error_message e))
          | Error e -> Alcotest.fail (Client.error_message e));
          (match Client.fetch ~retry ~socket ~id:"c9999-doesnotexis" () with
          | Error (Client.Refused _) -> ()
          | Ok _ | Error _ -> Alcotest.fail "unknown id must be refused");
          (match Client.shutdown ~socket () with
          | Ok () -> ()
          | Error e -> Alcotest.fail (Client.error_message e));
          ignore (Unix.waitpid [] server_pid)))

let test_client_retry_bounded_unreachable () =
  (* no server at all: the client retries under the jittered-backoff
     policy and then fails with a structured error, never a hang *)
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ft-nosock-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  let retry =
    {
      Executor.default_config with
      Executor.max_retries = 2;
      retry_backoff_s = 0.02;
      retry_jitter = 0.5;
    }
  in
  let t0 = Unix.gettimeofday () in
  (match Client.status ~retry ~socket () with
  | Ok _ -> Alcotest.fail "expected Unreachable"
  | Error (Client.Unreachable { attempts; _ }) ->
      Alcotest.(check int) "attempts bounded by max_retries + 1" 3 attempts
  | Error e -> Alcotest.fail (Client.error_message e));
  Alcotest.(check bool) "slept between attempts" true
    (Unix.gettimeofday () -. t0 >= 0.02)

(* --- jittered backoff (satellite) ---------------------------------------- *)

let test_backoff_jitter_bounds_and_determinism () =
  let cfg = { Executor.default_config with retry_backoff_s = 0.1; retry_jitter = 0.5 } in
  for idx = 0 to 40 do
    for k = 0 to 3 do
      let s = Executor.backoff_s cfg idx k in
      let step = 0.1 *. Float.of_int (1 lsl k) in
      Alcotest.(check bool) "within [0.5x, 1.5x]" true
        (s >= (0.5 *. step) -. 1e-12 && s <= (1.5 *. step) +. 1e-12);
      Alcotest.(check (float 0.0)) "deterministic per (trial, attempt)" s
        (Executor.backoff_s cfg idx k)
    done
  done;
  let locked = { cfg with Executor.retry_jitter = 0.0 } in
  Alcotest.(check (float 1e-12)) "jitter 0 restores the historical schedule"
    0.4
    (Executor.backoff_s locked 7 2);
  (* distinct trials de-synchronize: not all equal *)
  let sleeps = List.init 20 (fun i -> Executor.backoff_s cfg i 0) in
  Alcotest.(check bool) "trials spread out" true
    (List.exists (fun s -> abs_float (s -. List.hd sleeps) > 1e-6) sleeps)

let suite =
  ( "server",
    [
      Alcotest.test_case "wire roundtrip" `Quick test_wire_roundtrip;
      Alcotest.test_case "wire dup suppression" `Quick test_wire_dup_suppression;
      Alcotest.test_case "wire corruption resend" `Quick
        test_wire_corruption_recovers_by_resend;
      Alcotest.test_case "wire recv deadline" `Quick test_wire_recv_deadline;
      Alcotest.test_case "wire closed peer" `Quick test_wire_closed_peer;
      Alcotest.test_case "cache roundtrip + corruption" `Quick
        test_cache_roundtrip_and_corruption;
      Alcotest.test_case "infra kinds roundtrip" `Quick test_infra_kinds_roundtrip;
      Alcotest.test_case "protocol codecs roundtrip" `Quick test_proto_roundtrips;
      Alcotest.test_case "shard torn tails heal per shard" `Quick
        test_shard_torn_tails_heal_per_shard;
      Alcotest.test_case "shard header mismatch refuses" `Quick
        test_shard_header_mismatch_refuses;
      Alcotest.test_case "shard compaction dedups" `Quick
        test_shard_compaction_dedups;
      Alcotest.test_case "server matches executor" `Quick
        test_server_matches_executor;
      Alcotest.test_case "chaos kills preserve outcomes" `Quick
        test_server_chaos_kills_preserve_outcomes;
      Alcotest.test_case "kill at batch boundary keeps full prefix" `Quick
        test_server_kill_at_batch_boundary;
      Alcotest.test_case "journal resume after torn shard" `Quick
        test_server_journal_resume;
      Alcotest.test_case "unrunnable campaign poisons" `Quick
        test_server_poisons_unrunnable_campaign;
      Alcotest.test_case "multi-tenant interleaving is deterministic" `Quick
        test_sched_multi_tenant_interleaving;
      Alcotest.test_case "poison is isolated to its tenant" `Quick
        test_sched_poison_isolation;
      Alcotest.test_case "vanished remote worker degrades gracefully" `Slow
        test_sched_remote_worker_vanishes;
      Alcotest.test_case "chaos campaign counts byte-identical" `Slow
        test_chaos_campaign_counts_byte_identical;
      Alcotest.test_case "serve: two tenants, fetch by id" `Slow
        test_serve_two_tenants_fetch_by_id;
      Alcotest.test_case "client retry is bounded and structured" `Quick
        test_client_retry_bounded_unreachable;
      Alcotest.test_case "backoff jitter bounds + determinism" `Quick
        test_backoff_jitter_bounds_and_determinism;
    ] )
