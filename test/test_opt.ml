(* The optimizer: fault-free identity of every pass on every study
   program, change-report sanity, fault-site map round-trips, the
   structured refusal of untranslatable reference-level sites, and the
   differential pin that the default campaign path is untouched. *)

let pass_names = List.map (fun (p : Opt.pass) -> p.Opt.name) Opt.all

(* --- fault-free output identity ------------------------------------------ *)

let check_pass_identity (app : App.t) (passes : Opt.pass list) label =
  let base = App.program app in
  match Opt.transform_checked passes base with
  | (_ : Prog.t) -> ()
  | exception Opt.Identity_failed { reason; _ } ->
      Alcotest.failf "%s: %s broke fault-free identity: %s" app.App.name
        label reason
  | exception Pass.Verify_failed { diags; _ } ->
      Alcotest.failf "%s: %s produced broken IR (%d error(s))" app.App.name
        label (List.length diags)

let test_identity_each_pass_alone () =
  List.iter
    (fun (app : App.t) ->
      List.iter
        (fun (p : Opt.pass) -> check_pass_identity app [ p ] p.Opt.name)
        Opt.all)
    Registry.all

let test_identity_composed () =
  List.iter
    (fun (app : App.t) -> check_pass_identity app Opt.all "the full pipeline")
    Registry.all

(* --- per-pass change reports --------------------------------------------- *)

let test_reports_sane () =
  let base = App.program (Registry.find "IS") in
  let prog, reports, map = Opt.optimize Opt.all base in
  Alcotest.(check bool) "something changed" true
    (List.exists (fun (r : Pass.report) -> r.Pass.sites_changed > 0) reports);
  List.iter
    (fun (r : Pass.report) ->
      Alcotest.(check bool)
        (r.Pass.pass_name ^ " is a known pass")
        true
        (List.mem r.Pass.pass_name pass_names);
      Alcotest.(check bool)
        (r.Pass.pass_name ^ " counts non-negative")
        true
        (r.Pass.sites_changed >= 0 && r.Pass.instrs_added >= 0
        && r.Pass.instrs_removed >= 0 && r.Pass.regs_added >= 0);
      Alcotest.(check int)
        (r.Pass.pass_name ^ " one change record per changed site")
        r.Pass.sites_changed
        (List.length r.Pass.changes))
    reports;
  (* the reports' instruction deltas account exactly for the shrink *)
  let net =
    List.fold_left
      (fun acc (r : Pass.report) ->
        acc + r.Pass.instrs_removed - r.Pass.instrs_added)
      0 reports
  in
  Alcotest.(check int) "report deltas = static shrink" net
    (Opt.static_instruction_count base - Opt.static_instruction_count prog);
  (* every reference pc either survives into the map or is deleted *)
  Alcotest.(check int) "sitemap covers the reference program"
    (Opt.static_instruction_count base)
    (Sitemap.surviving map + Sitemap.deleted map)

(* --- fault-site map round-trip ------------------------------------------- *)

let test_sitemap_roundtrip () =
  (* simplify + loop-hoist rewrite and insert but never delete, so the
     composed map is total: every reference seq translates, and the
     translated event is the same dynamic occurrence of the same
     (rewritten-in-place) instruction *)
  let app = Registry.find "IS" in
  let o = Opt.optimize_app ~passes:[ Opt.simp_pass; Opt.hoist_pass ] app in
  Alcotest.(check int) "total map: nothing deleted" 0
    (Sitemap.deleted o.Opt.o_sitemap);
  let map_seq = Opt.reference_seq_translation o in
  let _, ref_trace = App.trace app in
  let _, opt_trace = Machine.run_traced o.Opt.o_prog in
  let ref_prog = App.program app in
  let n = Trace.length ref_trace in
  let checked = ref 0 in
  let k = ref 0 in
  while !k < n do
    let e = Trace.get ref_trace !k in
    (match map_seq !k with
    | None -> Alcotest.failf "total map failed to translate seq %d" !k
    | Some k' ->
        let e' = Trace.get opt_trace k' in
        let fname = ref_prog.Prog.funcs.(e.Trace.fidx).Prog.fname in
        Alcotest.(check int) "same function" e.Trace.fidx e'.Trace.fidx;
        Alcotest.(check int) "image pc"
          (Sitemap.map_pc o.Opt.o_sitemap ~fname ~pc:e.Trace.pc)
          e'.Trace.pc;
        incr checked);
    k := !k + 997
  done;
  Alcotest.(check bool) "sampled a real spread" true (!checked > 50)

let test_reference_refusal () =
  (* deadcode deletes instructions, so whole-program reference-level
     sampling must refuse with the structured error, not re-sample *)
  let app = Registry.find "IS" in
  let o = Opt.optimize_app ~passes:Opt.all app in
  match
    Opt.reference_campaign
      ~cfg:{ Campaign.default_config with max_trials = Some 40 }
      o
  with
  | (_ : Campaign.run_report) ->
      Alcotest.fail "expected Untranslatable_site for a deleting pipeline"
  | exception Campaign.Untranslatable_site { seq; total; unmapped } ->
      Alcotest.(check bool) "refusal is populated" true
        (seq >= 0 && unmapped > 0 && total >= unmapped)

let test_reference_campaign_runs () =
  let app = Registry.find "IS" in
  let o = Opt.optimize_app ~passes:[ Opt.simp_pass; Opt.hoist_pass ] app in
  let r =
    Opt.reference_campaign
      ~cfg:{ Campaign.default_config with max_trials = Some 40 }
      o
  in
  Alcotest.(check int) "all trials classified" 40
    r.Campaign.counts.Campaign.trials

(* --- pass lookup ---------------------------------------------------------- *)

let test_unknown_pass_suggests () =
  match Opt.find_exn "constfld" with
  | (_ : Opt.pass) -> Alcotest.fail "expected Unknown_pass"
  | exception Opt.Unknown_pass { name; suggestions; known } ->
      Alcotest.(check string) "offending name" "constfld" name;
      Alcotest.(check bool) "did-you-mean constfold" true
        (List.mem "constfold" suggestions);
      Alcotest.(check (list string)) "known lists the canonical names"
        pass_names known

let test_parse_spec_canonical_order () =
  match Opt.parse_spec "dce+fold" with
  | Error msg -> Alcotest.fail msg
  | Ok ps ->
      Alcotest.(check (list string)) "deduplicated, canonical order"
        [ "constfold"; "deadcode" ]
        (List.map (fun (p : Opt.pass) -> p.Opt.name) ps)

(* --- differential pin: the default campaign path is untouched ------------ *)

let test_default_campaign_counts_pinned () =
  (* byte-identical to the historical CG campaign at 300 trials: the
     optimizer must not perturb campaigns that never opted into it *)
  let app = Registry.find "CG" in
  let clean, trace = App.trace app in
  let prog = App.program app in
  let target = Campaign.whole_program_target prog trace in
  let c =
    Campaign.run prog ~verify:(App.verify app)
      ~clean_instructions:clean.Machine.instructions
      ~cfg:{ Campaign.default_config with max_trials = Some 300 }
      target
  in
  Alcotest.(check int) "success" 122 c.Campaign.success;
  Alcotest.(check int) "failed" 89 c.Campaign.failed;
  Alcotest.(check int) "crashed" 89 c.Campaign.crashed;
  Alcotest.(check int) "trials" 300 c.Campaign.trials

let suite =
  ( "opt",
    [
      Alcotest.test_case "identity: each pass alone, ten apps" `Slow
        test_identity_each_pass_alone;
      Alcotest.test_case "identity: full pipeline, ten apps" `Slow
        test_identity_composed;
      Alcotest.test_case "reports: sane and accounted" `Quick
        test_reports_sane;
      Alcotest.test_case "sitemap: round-trip on a total map" `Quick
        test_sitemap_roundtrip;
      Alcotest.test_case "sitemap: refusal on a deleting pipeline" `Quick
        test_reference_refusal;
      Alcotest.test_case "sitemap: reference campaign runs" `Quick
        test_reference_campaign_runs;
      Alcotest.test_case "lookup: unknown pass suggests" `Quick
        test_unknown_pass_suggests;
      Alcotest.test_case "lookup: spec canonical order" `Quick
        test_parse_spec_canonical_order;
      Alcotest.test_case "differential: default CG counts pinned" `Slow
        test_default_campaign_counts_pinned;
    ] )
