(* VM execution: semantics, crash model, fault hooks, formatting,
   randlc, determinism. *)

open Helpers

let test_memory_ops () =
  let prog =
    let open Ast in
    compile
      (main_program
         ~globals:[ DArr ("a", Ty.I64, [ 4 ]); DScalar ("r", Ty.I64) ]
         [
           SStore ("a", [ i 1 ], i 11);
           SStore ("a", [ i 2 ], idx1 "a" (i 1) + i 1);
           SAssign ("r", idx1 "a" (i 2));
         ])
  in
  Alcotest.(check int) "load/store chain" 12 (mem_int prog (run prog) "r")

let test_segfault_trap () =
  let prog =
    let open Ast in
    compile
      (main_program
         ~globals:[ DArr ("a", Ty.I64, [ 4 ]) ]
         [ SStore ("a", [ i 100_000_000 ], i 1) ])
  in
  match (run prog).Machine.outcome with
  | Machine.Trapped m ->
      Alcotest.(check bool) "segfault" true
        (String.length m >= 8 && String.equal (String.sub m 0 8) "segfault")
  | Machine.Finished | Machine.Budget_exceeded ->
      Alcotest.fail "expected a segfault"

let test_div_zero_crash () =
  let prog =
    let open Ast in
    compile
      (main_program
         ~globals:[ DScalar ("r", Ty.I64); DScalar ("z", Ty.I64) ]
         [ SAssign ("z", i 0); SAssign ("r", i 1 / v "z") ])
  in
  match (run prog).Machine.outcome with
  | Machine.Trapped _ -> ()
  | Machine.Finished | Machine.Budget_exceeded -> Alcotest.fail "expected trap"

let test_budget_hang_detection () =
  let prog =
    let open Ast in
    compile
      (main_program
         ~globals:[ DScalar ("x", Ty.I64) ]
         [ SAssign ("x", i 1); SWhile (v "x" > i 0, [ SAssign ("x", i 1) ]) ])
  in
  match (run ~budget:10_000 prog).Machine.outcome with
  | Machine.Budget_exceeded -> ()
  | Machine.Finished | Machine.Trapped _ -> Alcotest.fail "expected hang"

let test_print_formats () =
  let prog =
    let open Ast in
    compile
      (main_program
         [
           SPrint ("i=%d x=%x\n", [ i 42; i 255 ]);
           SPrint ("e=%12.6e g=%g f=%.2f\n", [ f 12345.6789; f 0.5; f 1.239 ]);
           SPrint ("pct=100%%\n", []);
         ])
  in
  let r = run prog in
  check_finished r;
  Alcotest.(check string) "formatted output"
    "i=42 x=ff\ne=1.234568e+04 g=0.5 f=1.24\npct=100%\n" r.Machine.output

let test_print_truncation_masks () =
  (* two doubles that differ below the printed precision render the
     same: the output-truncation pattern *)
  let a = 12345.678901 and b = 12345.678902 in
  Alcotest.(check string) "same rendering"
    (Machine.format_output "%12.6e" [ Value.of_float a ])
    (Machine.format_output "%12.6e" [ Value.of_float b ])

let test_randlc_reference () =
  (* NPB randlc from seed 314159265 with multiplier 1220703125 *)
  let x, r1 = Machine.randlc_step 314159265.0 1220703125.0 in
  let _, r2 = Machine.randlc_step x 1220703125.0 in
  Alcotest.(check bool) "in (0,1)" true (r1 > 0.0 && r1 < 1.0 && r2 > 0.0 && r2 < 1.0);
  Alcotest.(check bool) "distinct" true (r1 <> r2);
  (* the sequence is the canonical NPB one: state stays in [1, 2^46) *)
  Alcotest.(check bool) "state range" true (x >= 1.0 && x < 7.0368744177664e13)

let test_randlc_intrinsic_matches_step () =
  let prog =
    let open Ast in
    compile
      (main_program
         ~globals:
           [ DScalar ("tran", Ty.F64); DScalar ("amult", Ty.F64); DScalar ("r", Ty.F64) ]
         [
           SAssign ("tran", f 314159265.0);
           SAssign ("amult", f 1220703125.0);
           SAssign ("r", Randlc ("tran", v "amult"));
         ])
  in
  let res = run prog in
  let _, expected = Machine.randlc_step 314159265.0 1220703125.0 in
  Alcotest.(check (float 0.0)) "intrinsic = reference" expected
    (mem_float prog res "r")

let test_flip_write_changes_result () =
  let prog =
    let open Ast in
    compile
      (main_program
         ~globals:[ DScalar ("r", Ty.I64) ]
         [ SAssign ("r", i 5 + i 6) ])
  in
  (* find the dynamic instruction that writes the sum: trace it *)
  let _, t = run_traced prog in
  let seq = ref (-1) in
  Trace.iter
    (fun (e : Trace.event) ->
      match e.op with Trace.OBin Op.Add -> seq := e.seq | _ -> ())
    t;
  Alcotest.(check bool) "found the add" true (!seq >= 0);
  let r = run ~fault:(Machine.Flip_write { seq = !seq; bit = 4 }) prog in
  Alcotest.(check int) "flipped bit 4 of 11" (11 lxor 16) (mem_int prog r "r")

let test_flip_mem () =
  let prog =
    let open Ast in
    compile
      (main_program
         ~globals:[ DScalar ("a", Ty.I64); DScalar ("r", Ty.I64) ]
         [ SAssign ("a", i 1); SAssign ("r", v "a" + i 0) ])
  in
  let addr =
    match Prog.find_symbol prog "a" with
    | Some s -> s.Prog.sym_addr
    | None -> Alcotest.fail "no symbol"
  in
  (* find the sequence number right after the store to a *)
  let _, t = run_traced prog in
  let store_seq = ref (-1) in
  Trace.iter
    (fun (e : Trace.event) ->
      if !store_seq < 0 && e.op = Trace.OStore then store_seq := e.seq)
    t;
  let r =
    run ~fault:(Machine.Flip_mem { seq = !store_seq + 1; addr; bit = 1 }) prog
  in
  Alcotest.(check int) "memory flip propagates" 3 (mem_int prog r "r")

let test_single_fault_applied_once () =
  (* a Flip_write at a seq executed once must not fire again *)
  let prog =
    let open Ast in
    compile
      (main_program
         ~globals:[ DScalar ("s", Ty.I64) ]
         [
           SAssign ("s", i 0);
           SFor ("j", i 0, i 5, [ SAssign ("s", v "s" + i 1) ]);
         ])
  in
  let clean = run prog in
  let faulty = run ~fault:(Machine.Flip_write { seq = max_int; bit = 0 }) prog in
  Alcotest.(check int) "out-of-range seq is inert" (mem_int prog clean "s")
    (mem_int prog faulty "s")

let test_iteration_marks_counted () =
  let prog = compile (loop_program ~iters:7) in
  let r = run ~iter_mark:(Prog.mark_id prog "main_iter") prog in
  Alcotest.(check int) "iterations" 7 r.Machine.iterations

let test_determinism () =
  List.iter
    (fun (app : App.t) ->
      let r1 = Machine.run_plain (App.program app) in
      let r2 = Machine.run_plain (App.program app) in
      Alcotest.(check string) (app.App.name ^ " output") r1.Machine.output
        r2.Machine.output;
      Alcotest.(check int)
        (app.App.name ^ " instruction count")
        r1.Machine.instructions r2.Machine.instructions)
    [ Cg.app; Is.app; Dc.app ]

let test_stack_overflow_trap () =
  (* hand-built IR with a self-call, bypassing the compiler's check *)
  let f : Prog.func =
    {
      Prog.fname = "loop";
      nregs = 1;
      code = [| Instr.Call (0, [||], None); Instr.Ret None |];
      lines = [| 0; 0 |];
      regions = [| -1; -1 |];
    }
  in
  let prog =
    {
      Prog.funcs = [| f |];
      entry = 0;
      mem_size = 16;
      init_mem = [];
      region_table = [||];
      mark_names = [||];
      symbols = [];
    }
  in
  match (run prog).Machine.outcome with
  | Machine.Trapped m -> Alcotest.(check string) "overflow" "call stack overflow" m
  | Machine.Finished | Machine.Budget_exceeded ->
      Alcotest.fail "expected stack overflow"

(* The traced/untraced seq contract: attaching a trace must not perturb
   the dynamic sequence numbering, because fault sites are harvested
   from traced runs and injected into untraced ones keyed by seq.
   kmeans is the registry app with value-returning calls — exactly
   where the historical bug (the call-return attribution event
   consuming a fresh seq only when tracing) displaced every subsequent
   site.  Checked two ways: the fault-free dynamic instruction counts
   agree, and a flip injected at each call-return attribution seq gives
   bit-identical results traced and untraced.  Both fail on the pre-fix
   interpreter. *)
let test_seq_parity_traced_untraced () =
  let app = Kmeans.app in
  let prog = App.program app in
  let iter_mark = App.iter_mark app in
  let rt, trace = App.trace app in
  let ru = Machine.run prog { Machine.default_config with iter_mark } in
  Alcotest.(check int) "traced and untraced instruction counts"
    ru.Machine.instructions rt.Machine.instructions;
  (* seq-keyed write streams must coincide: every traced write-event
     seq lies inside the untraced stream, and the attribution events
     share their call's seq instead of consuming one *)
  let ret_seqs = ref [] in
  Trace.iter
    (fun (e : Trace.event) ->
      Alcotest.(check bool)
        (Printf.sprintf "event seq %d within untraced stream" e.Trace.seq)
        true
        (e.Trace.seq < ru.Machine.instructions);
      match e.Trace.op with
      | Trace.ORet when Array.length e.Trace.writes > 0 ->
          ret_seqs := e.Trace.seq :: !ret_seqs
      | _ -> ())
    trace;
  let ret_seqs = List.sort_uniq compare !ret_seqs in
  Alcotest.(check bool) "kmeans has call-return attribution events" true
    (ret_seqs <> []);
  let budget = 20 * ru.Machine.instructions in
  List.iteri
    (fun i seq ->
      if i < 5 then begin
        let fault = Machine.Flip_write { seq; bit = 3 } in
        let ft, _ = App.trace_with_fault app fault ~budget in
        let fu =
          Machine.run prog
            {
              Machine.default_config with
              iter_mark;
              fault = Some fault;
              budget;
            }
        in
        let tag what = Printf.sprintf "%s under flip at seq %d" what seq in
        Alcotest.(check string) (tag "output") fu.Machine.output
          ft.Machine.output;
        Alcotest.(check int) (tag "instructions") fu.Machine.instructions
          ft.Machine.instructions;
        Alcotest.(check bool) (tag "memory") true
          (fu.Machine.mem = ft.Machine.mem)
      end)
    ret_seqs

(* property: a fault never makes the VM raise; outcomes are always
   classified *)
let prop_faults_always_classified =
  QCheck.Test.make ~count:60 ~name:"every fault yields a classified outcome"
    QCheck.(pair (int_bound 5_000) (int_bound 63))
    (fun (seq, bit) ->
      let prog = compile (loop_program ~iters:4) in
      let r = run ~fault:(Machine.Flip_write { seq; bit }) prog in
      match r.Machine.outcome with
      | Machine.Finished | Machine.Trapped _ | Machine.Budget_exceeded -> true)

let suite =
  ( "machine",
    [
      Alcotest.test_case "memory ops" `Quick test_memory_ops;
      Alcotest.test_case "segfault trap" `Quick test_segfault_trap;
      Alcotest.test_case "division by zero crash" `Quick test_div_zero_crash;
      Alcotest.test_case "budget hang detection" `Quick test_budget_hang_detection;
      Alcotest.test_case "print formats" `Quick test_print_formats;
      Alcotest.test_case "print truncation masks" `Quick test_print_truncation_masks;
      Alcotest.test_case "randlc reference" `Quick test_randlc_reference;
      Alcotest.test_case "randlc intrinsic" `Quick test_randlc_intrinsic_matches_step;
      Alcotest.test_case "flip write" `Quick test_flip_write_changes_result;
      Alcotest.test_case "flip memory" `Quick test_flip_mem;
      Alcotest.test_case "inert out-of-range fault" `Quick test_single_fault_applied_once;
      Alcotest.test_case "iteration marks" `Quick test_iteration_marks_counted;
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "stack overflow trap" `Quick test_stack_overflow_trap;
      Alcotest.test_case "seq parity traced/untraced" `Quick
        test_seq_parity_traced_untraced;
      QCheck_alcotest.to_alcotest prop_faults_always_classified;
    ] )
