(* The server suite forks worker processes, and OCaml 5 forbids
   Unix.fork in any process that has ever spawned a domain — which the
   pool/executor/MPI suites in main.ml do.  So the campaign server is
   tested in its own domain-free executable. *)
let () = Alcotest.run "fliptracker-server" [ Test_server.suite ]
