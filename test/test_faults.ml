(* RNG, statistics, and fault-injection campaigns. *)

open Helpers

(* --- rng ---------------------------------------------------------------- *)

let test_rng_determinism () =
  let a = Rng.create ~seed:99 and b = Rng.create ~seed:99 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  Alcotest.(check bool) "different streams" true
    (not (Int64.equal (Rng.next_int64 a) (Rng.next_int64 b)))

let test_rng_int_range () =
  let rng = Rng.create ~seed:5 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_covers () =
  (* all residues of a small bound appear in a reasonable sample *)
  let rng = Rng.create ~seed:3 in
  let seen = Array.make 8 false in
  for _ = 1 to 500 do
    seen.(Rng.int rng 8) <- true
  done;
  Alcotest.(check bool) "all residues hit" true (Array.for_all Fun.id seen)

let test_rng_float_range () =
  let rng = Rng.create ~seed:8 in
  for _ = 1 to 1000 do
    let x = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_rng_split_independent () =
  let a = Rng.create ~seed:4 in
  let b = Rng.split a in
  Alcotest.(check bool) "fork diverges" true
    (not (Int64.equal (Rng.next_int64 a) (Rng.next_int64 b)))

let prop_rng_int_bounds =
  QCheck.Test.make ~count:300 ~name:"Rng.int respects any positive bound"
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Rng.create ~seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let test_rng_derive_is_pure () =
  let a = Rng.derive ~seed:42 ~index:17 and b = Rng.derive ~seed:42 ~index:17 in
  for _ = 1 to 50 do
    Alcotest.(check int64) "pure in (seed, index)" (Rng.next_int64 a)
      (Rng.next_int64 b)
  done

let test_rng_derive_streams_diverge () =
  (* neighboring trial indices must not share a stream: compare the
     first few outputs of many adjacent indices pairwise *)
  let firsts =
    Array.init 200 (fun i -> Rng.next_int64 (Rng.derive ~seed:42 ~index:i))
  in
  let distinct = Hashtbl.create 256 in
  Array.iter (fun v -> Hashtbl.replace distinct v ()) firsts;
  Alcotest.(check int) "no collisions across 200 indices" 200
    (Hashtbl.length distinct)

let test_rng_derive_negative_index () =
  match Rng.derive ~seed:1 ~index:(-1) with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let prop_rng_derive_independent_of_neighbors =
  QCheck.Test.make ~count:300
    ~name:"Rng.derive: adjacent indices yield different streams"
    QCheck.(pair small_int (int_range 0 100_000))
    (fun (seed, index) ->
      let a = Rng.derive ~seed ~index and b = Rng.derive ~seed ~index:(index + 1) in
      not (Int64.equal (Rng.next_int64 a) (Rng.next_int64 b)))

let test_rng_int_bound_one () =
  let rng = Rng.create ~seed:11 in
  for _ = 1 to 100 do
    Alcotest.(check int) "bound 1 is always 0" 0 (Rng.int rng 1)
  done

let test_rng_int_rejects_nonpositive () =
  let rng = Rng.create ~seed:11 in
  List.iter
    (fun bound ->
      match Rng.int rng bound with
      | _ -> Alcotest.failf "bound %d should raise" bound
      | exception Invalid_argument _ -> ())
    [ 0; -1; -1000 ]

(* --- stats --------------------------------------------------------------- *)

let test_sample_size_known_values () =
  (* the classic 95%/3% and 99%/1% designs over a large population *)
  let n95 = Stats.sample_size ~population:10_000_000 ~confidence:0.95 ~margin:0.03 in
  Alcotest.(check bool) "95/3 ~ 1067" true (abs (n95 - 1067) <= 2);
  let n99 = Stats.sample_size ~population:10_000_000 ~confidence:0.99 ~margin:0.01 in
  Alcotest.(check bool) "99/1 ~ 16587" true (abs (n99 - 16587) <= 30)

let test_sample_size_small_population () =
  Alcotest.(check int) "capped at population" 10
    (Stats.sample_size ~population:10 ~confidence:0.95 ~margin:0.03);
  Alcotest.(check int) "empty population" 0
    (Stats.sample_size ~population:0 ~confidence:0.95 ~margin:0.03)

let test_sample_size_monotone_in_margin () =
  let n margin = Stats.sample_size ~population:1_000_000 ~confidence:0.95 ~margin in
  Alcotest.(check bool) "tighter margin needs more samples" true
    (n 0.01 > n 0.03 && n 0.03 > n 0.10)

let test_wilson_interval () =
  let lo, hi = Stats.wilson_interval ~successes:60 ~trials:100 ~confidence:0.95 in
  Alcotest.(check bool) "contains p-hat" true (lo <= 0.6 && 0.6 <= hi);
  Alcotest.(check bool) "proper bounds" true (0.0 <= lo && hi <= 1.0 && lo < hi);
  let lo0, hi0 = Stats.wilson_interval ~successes:0 ~trials:0 ~confidence:0.95 in
  Alcotest.(check bool) "vacuous" true (lo0 = 0.0 && hi0 = 1.0)

let test_mean_stddev () =
  Alcotest.(check (float 1e-12)) "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  Alcotest.(check (float 1e-12)) "stddev" 1.0 (Stats.stddev [| 1.0; 2.0; 3.0 |]);
  Alcotest.(check (float 0.0)) "empty mean" 0.0 (Stats.mean [||])

(* every fault model confines its corruption to the low [bits] bits of
   the datum — the contract that keeps 32-bit-typed sites 32-bit under
   every model, including the widest burst at full width *)
let prop_fault_model_confined =
  QCheck.Test.make ~count:500
    ~name:"Fault_model.sample: corruption confined to the low bits"
    QCheck.(triple small_int (int_range 1 64) (int_range 0 100_000))
    (fun (seed, bits, index) ->
      let models =
        [
          Fault_model.Single_bit;
          Fault_model.Double_adjacent;
          Fault_model.Burst 2;
          Fault_model.Burst 8;
          Fault_model.Burst 64;
          Fault_model.Stuck_at;
        ]
      in
      let high = if bits >= 64 then 0L else Int64.shift_left (-1L) bits in
      (* [apply_masks] is bitwise, so invariance on the all-zeros and
         all-ones inputs implies invariance on every input *)
      let confined ~and_mask ~or_mask ~xor_mask =
        List.for_all
          (fun v ->
            let v' = Machine.apply_masks v ~and_mask ~or_mask ~xor_mask in
            Int64.logand (Int64.logxor v v') high = 0L)
          [ 0L; -1L ]
      in
      List.for_all
        (fun model ->
          let rng = Rng.derive ~seed ~index in
          match Fault_model.sample model rng ~bits with
          | Fault_model.Bit b -> b >= 0 && b < bits
          | Fault_model.Masks { and_mask; or_mask; xor_mask } ->
              confined ~and_mask ~or_mask ~xor_mask)
        models)

let prop_wilson_shrinks_with_trials =
  QCheck.Test.make ~count:100 ~name:"wilson interval narrows with more trials"
    QCheck.(int_range 1 500)
    (fun trials ->
      let w t =
        let lo, hi = Stats.wilson_interval ~successes:(t / 2) ~trials:t ~confidence:0.95 in
        hi -. lo
      in
      w (4 * trials) <= w trials +. 1e-9)

(* --- campaign ------------------------------------------------------------ *)

(* a program whose RESULT is insensitive to its dead variable: flips
   targeted at the dead store must all verify *)
let dead_store_program () =
  let open Ast in
  main_program
    ~globals:[ DScalar ("dead", Ty.F64); DScalar ("live", Ty.F64) ]
    [
      SRegion ("deadr", 1, 2, [ SAssign ("dead", f 42.0) ]);
      SRegion ("liver", 3, 4, [ SAssign ("live", f 1.0) ]);
      SPrint ("RESULT %.17g\nVERIFIED %d\n", [ v "live"; i 1 ]);
    ]

let test_campaign_dead_region_fully_resilient () =
  let prog = compile (dead_store_program ()) in
  let r, t = run_traced prog in
  let inst =
    match Region.find_instance t ~rid:0 ~number:0 with
    | Some i -> i
    | None -> Alcotest.fail "region"
  in
  let target = Campaign.internal_target prog t inst in
  let counts =
    Campaign.run prog
      ~verify:(fun res -> App.verified res.Machine.output)
      ~clean_instructions:r.Machine.instructions
      ~cfg:{ Campaign.default_config with max_trials = Some 50 }
      target
  in
  (* value flips on the dead store are fully masked; flips on its
     address computation may trap (wild store), but none may produce
     silent data corruption *)
  Alcotest.(check int) "no SDC" 0 counts.Campaign.failed;
  Alcotest.(check bool) "mostly masked" true
    (Stdlib.( >= ) (2 * counts.Campaign.success) counts.Campaign.trials)

let test_campaign_classifies_crashes () =
  (* faults on an address computation can crash; the campaign must
     classify, not raise *)
  let prog =
    let open Ast in
    compile
      (main_program
         ~globals:[ DArr ("a", Ty.F64, [ 4 ]); DScalar ("s", Ty.F64) ]
         [
           SRegion
             ( "r",
               1,
               9,
               [
                 SAssign ("s", f 0.0);
                 SFor
                   ( "j",
                     i 0,
                     i 4,
                     [
                       SStore ("a", [ v "j" ], to_float (v "j"));
                       SAssign ("s", v "s" + idx1 "a" (v "j"));
                     ] );
               ] );
           SPrint ("RESULT %.17g\nVERIFIED %d\n", [ v "s"; i 1 ]);
         ])
  in
  let r, t = run_traced prog in
  let inst = List.hd (Region.instances t) in
  let target = Campaign.internal_target prog t inst in
  let counts =
    Campaign.run prog
      ~verify:(fun res -> App.verified res.Machine.output)
      ~clean_instructions:r.Machine.instructions
      ~cfg:{ Campaign.default_config with max_trials = Some 80 }
      target
  in
  Alcotest.(check int) "all trials accounted" counts.Campaign.trials
    (counts.Campaign.success + counts.Campaign.failed + counts.Campaign.crashed);
  Alcotest.(check bool) "some trials ran" true (counts.Campaign.trials > 0)

let test_population_counts_typed_bits () =
  let prog =
    let open Ast in
    compile
      (main_program
         ~globals:[ DScalar ("x", Ty.I64); DScalar ("yf", Ty.F64) ]
         [
           SRegion
             ("r", 1, 2, [ SAssign ("x", i 1); SAssign ("yf", f 1.0) ]);
           SPrint ("RESULT %d\n", [ v "x" ]);
         ])
  in
  let _, t = run_traced prog in
  let inst = List.hd (Region.instances t) in
  let target = Campaign.internal_target prog t inst in
  (* integer destinations count 32 bits, float destinations 64 *)
  let pop = Campaign.target_population target in
  Alcotest.(check bool) "mixed widths" true (pop > 0 && pop mod 32 = 0)

let test_input_target_types () =
  let prog = compile (two_region_program ()) in
  let _, t = run_traced prog in
  let access = Access.build t in
  let consume = List.nth (Region.instances t) 1 in
  match Campaign.input_target prog t access consume with
  | Campaign.Input { sites; _ } ->
      Alcotest.(check bool) "inputs exist" true (Array.length sites > 0);
      Array.iter
        (fun (s : Campaign.input_site) ->
          Alcotest.(check bool) "width is 32 or 64" true
            (s.Campaign.bits = 32 || s.Campaign.bits = 64))
        sites
  | _ -> Alcotest.fail "expected Input target"

let test_success_rate () =
  let c =
    {
      Campaign.success = 3;
      failed = 1;
      crashed = 1;
      recovered = 0;
      trials = 5;
      infra = 0;
    }
  in
  Alcotest.(check (float 1e-12)) "rate" 0.6 (Campaign.success_rate c);
  Alcotest.(check (float 0.0)) "empty" 0.0 (Campaign.success_rate Campaign.zero_counts)

let test_sampling_is_seeded () =
  let prog = compile (dead_store_program ()) in
  let _, t = run_traced prog in
  let inst = List.hd (Region.instances t) in
  let target = Campaign.internal_target prog t inst in
  let f1 = Campaign.sample_fault (Rng.create ~seed:7) target in
  let f2 = Campaign.sample_fault (Rng.create ~seed:7) target in
  Alcotest.(check bool) "same seed, same fault" true (f1 = f2)

(* --- resilient execution ------------------------------------------------- *)

let with_temp_journal f =
  let path = Filename.temp_file "fliptracker" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let truncate_file path len =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () -> Unix.ftruncate fd len)

(* a loop whose bound lives in memory: a bit flip on [n] mid-loop makes
   the bound huge and the run must be classified as a hang, not spin *)
let hang_program () =
  let open Ast in
  main_program
    ~globals:[ DScalar ("n", Ty.I64); DScalar ("acc", Ty.I64) ]
    [
      SAssign ("n", i 8);
      SAssign ("acc", i 0);
      SRegion
        ( "loop",
          1,
          9,
          [
            SWhile
              ( v "n" > i 0,
                [ SAssign ("acc", v "acc" + i 1); SAssign ("n", v "n" - i 1) ]
              );
          ] );
      SPrint ("RESULT %d\nVERIFIED %d\n", [ v "acc"; i 1 ]);
    ]

let test_hang_classified_as_crashed () =
  let prog = compile (hang_program ()) in
  let clean = Machine.run_plain prog in
  check_finished clean;
  let n_addr =
    match Prog.find_symbol prog "n" with
    | Some s -> s.Prog.sym_addr
    | None -> Alcotest.fail "no symbol n"
  in
  (* corrupt the loop bound mid-flight: bit 20 ~ a million iterations *)
  let fault =
    Machine.Flip_mem
      { seq = clean.Machine.instructions / 2; addr = n_addr; bit = 20 }
  in
  let budget = 20 * clean.Machine.instructions in
  let outcome =
    Campaign.run_one prog ~budget ~verify:(fun _ -> true) fault
  in
  Alcotest.(check bool) "hang is Crashed" true (outcome = Campaign.Crashed);
  (* the budget is what cuts the hang: the same faulty run, executed
     raw, stops at exactly the budget with Budget_exceeded *)
  let raw =
    Machine.run prog
      { Machine.default_config with budget; fault = Some fault }
  in
  Alcotest.(check bool) "budget exceeded" true
    (raw.Machine.outcome = Machine.Budget_exceeded);
  Alcotest.(check int) "stopped at the scaled budget" budget
    raw.Machine.instructions

let test_campaign_budget_factor_bounds_hangs () =
  let prog = compile (hang_program ()) in
  let r, t = run_traced prog in
  let target =
    Campaign.memory_during_function_target prog t ~fname:"main"
      ~vars:[ "n" ]
  in
  let cfg =
    { Campaign.default_config with max_trials = Some 40; budget_factor = 5 }
  in
  (* every trial terminates despite hang-inducing flips, because the
     budget scales with budget_factor; hangs classify as Crashed *)
  let counts =
    Campaign.run prog
      ~verify:(fun res -> String.equal res.Machine.output r.Machine.output)
      ~clean_instructions:r.Machine.instructions ~cfg target
  in
  Alcotest.(check int) "all trials classified" counts.Campaign.trials
    (counts.Campaign.success + counts.Campaign.failed + counts.Campaign.crashed);
  Alcotest.(check int) "no infra errors" 0 counts.Campaign.infra;
  Alcotest.(check bool) "high-bit flips of the bound hang" true
    (counts.Campaign.crashed > 0)

let test_campaign_watchdog_never_aborts () =
  let prog = compile (dead_store_program ()) in
  let r, t = run_traced prog in
  let target = Campaign.whole_program_target prog t in
  let counts =
    Campaign.run prog
      ~verify:(fun res -> App.verified res.Machine.output)
      ~clean_instructions:r.Machine.instructions
      ~cfg:{ Campaign.default_config with max_trials = Some 30 }
      ~exec:{ Campaign.default_exec with watchdog_s = Some (-1.0) }
      target
  in
  (* an already-expired watchdog trips every trial: all Crashed, none
     aborts the campaign, none counts as infrastructure failure *)
  Alcotest.(check int) "all trials ran" 30 counts.Campaign.trials;
  Alcotest.(check int) "all classified Crashed" 30 counts.Campaign.crashed;
  Alcotest.(check int) "watchdog is not an infra error" 0 counts.Campaign.infra

let test_campaign_jobs_and_resume_invariance () =
  let prog = compile (dead_store_program ()) in
  let r, t = run_traced prog in
  let target = Campaign.whole_program_target prog t in
  let verify res = App.verified res.Machine.output in
  let cfg = { Campaign.default_config with max_trials = Some 60 } in
  let run exec =
    Campaign.run_report prog ~verify
      ~clean_instructions:r.Machine.instructions ~cfg ~exec target
  in
  let base = (run Campaign.default_exec).Campaign.counts in
  let par =
    (run { Campaign.default_exec with jobs = 4; batch = 16 }).Campaign.counts
  in
  Alcotest.(check bool) "jobs=1 and jobs=4 agree" true (base = par);
  with_temp_journal (fun path ->
      let exec =
        { Campaign.default_exec with journal = Some path; batch = 8 }
      in
      let full = run exec in
      Alcotest.(check bool) "journaled run agrees" true
        (full.Campaign.counts = base);
      (* simulate a kill mid-campaign: chop the journal, possibly
         mid-record, then resume *)
      let len = (Unix.stat path).Unix.st_size in
      truncate_file path (len * 2 / 3);
      let resumed = run { exec with Campaign.resume = true } in
      Alcotest.(check bool) "resume skipped journaled trials" true
        (resumed.Campaign.resumed > 0);
      Alcotest.(check bool) "kill-then-resume agrees" true
        (resumed.Campaign.counts = base))

let test_campaign_early_stop_reports_honestly () =
  let prog = compile (dead_store_program ()) in
  let r, t = run_traced prog in
  (* memory flips confined to the dead variable: value-only corruption
     that is never read, so every trial verifies — an extreme success
     rate whose Wilson interval closes at the minimum trial count,
     well before the planned design size *)
  let target =
    Campaign.memory_during_function_target prog t ~fname:"main"
      ~vars:[ "dead" ]
  in
  let report =
    Campaign.run_report prog
      ~verify:(fun res -> App.verified res.Machine.output)
      ~clean_instructions:r.Machine.instructions
      ~cfg:
        { Campaign.default_config with max_trials = Some 400; margin = 0.05 }
      ~exec:{ Campaign.default_exec with early_stop = true; batch = 25 }
      target
  in
  Alcotest.(check bool) "stopped early" true report.Campaign.stopped_early;
  Alcotest.(check bool) "honest partial count" true
    (report.Campaign.counts.Campaign.trials < report.Campaign.planned);
  Alcotest.(check bool) "not before the minimum trials" true
    (report.Campaign.counts.Campaign.trials >= 50)

let test_unknown_symbol_is_structured () =
  let prog = compile (dead_store_program ()) in
  let _, t = run_traced prog in
  match
    Campaign.memory_during_function_target prog t ~fname:"main"
      ~vars:[ "nope" ]
  with
  | _ -> Alcotest.fail "expected Unknown_symbol"
  | exception Campaign.Unknown_symbol { name; available } ->
      Alcotest.(check string) "names the offender" "nope" name;
      Alcotest.(check bool) "lists the valid symbols" true
        (List.mem "dead" available && List.mem "live" available)

(* No phantom sites: every fault site harvested from a traced run must
   be reachable in an untraced campaign run — the seq-keyed contract
   between harvesting and injection.  Checked for the whole-program
   target of every registry app against the untraced fault-free
   instruction count. *)
let test_no_phantom_sites () =
  List.iter
    (fun (app : App.t) ->
      let prog = App.program app in
      let _, trace = App.trace app in
      let untraced = Machine.run_plain prog in
      let target = Campaign.whole_program_target prog trace in
      Alcotest.(check (list int))
        (app.App.name ^ ": all harvested seqs reachable untraced")
        []
        (Campaign.unreachable_sites target
           ~instructions:untraced.Machine.instructions))
    Registry.all

let suite =
  ( "faults",
    [
      Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
      Alcotest.test_case "rng seed sensitivity" `Quick test_rng_seed_sensitivity;
      Alcotest.test_case "rng int range" `Quick test_rng_int_range;
      Alcotest.test_case "rng int coverage" `Quick test_rng_int_covers;
      Alcotest.test_case "rng float range" `Quick test_rng_float_range;
      Alcotest.test_case "rng split" `Quick test_rng_split_independent;
      QCheck_alcotest.to_alcotest prop_rng_int_bounds;
      Alcotest.test_case "rng derive pure" `Quick test_rng_derive_is_pure;
      Alcotest.test_case "rng derive diverges" `Quick
        test_rng_derive_streams_diverge;
      Alcotest.test_case "rng derive negative index" `Quick
        test_rng_derive_negative_index;
      QCheck_alcotest.to_alcotest prop_rng_derive_independent_of_neighbors;
      Alcotest.test_case "rng int bound one" `Quick test_rng_int_bound_one;
      Alcotest.test_case "rng int rejects nonpositive" `Quick
        test_rng_int_rejects_nonpositive;
      Alcotest.test_case "sample size known" `Quick test_sample_size_known_values;
      Alcotest.test_case "sample size small population" `Quick
        test_sample_size_small_population;
      Alcotest.test_case "sample size monotone" `Quick
        test_sample_size_monotone_in_margin;
      Alcotest.test_case "wilson interval" `Quick test_wilson_interval;
      Alcotest.test_case "mean/stddev" `Quick test_mean_stddev;
      QCheck_alcotest.to_alcotest prop_fault_model_confined;
      QCheck_alcotest.to_alcotest prop_wilson_shrinks_with_trials;
      Alcotest.test_case "dead region fully resilient" `Quick
        test_campaign_dead_region_fully_resilient;
      Alcotest.test_case "campaign classifies crashes" `Quick
        test_campaign_classifies_crashes;
      Alcotest.test_case "no phantom sites, ten apps" `Slow
        test_no_phantom_sites;
      Alcotest.test_case "typed population" `Quick test_population_counts_typed_bits;
      Alcotest.test_case "input target types" `Quick test_input_target_types;
      Alcotest.test_case "success rate" `Quick test_success_rate;
      Alcotest.test_case "seeded sampling" `Quick test_sampling_is_seeded;
      Alcotest.test_case "hang classified as crashed" `Quick
        test_hang_classified_as_crashed;
      Alcotest.test_case "budget factor bounds hangs" `Quick
        test_campaign_budget_factor_bounds_hangs;
      Alcotest.test_case "watchdog never aborts" `Quick
        test_campaign_watchdog_never_aborts;
      Alcotest.test_case "jobs and resume invariance" `Quick
        test_campaign_jobs_and_resume_invariance;
      Alcotest.test_case "early stop honest report" `Quick
        test_campaign_early_stop_reports_honestly;
      Alcotest.test_case "unknown symbol structured" `Quick
        test_unknown_symbol_is_structured;
    ] )
