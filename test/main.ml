(* FlipTracker test runner: unit suites per subsystem, property-based
   suites on the core invariants, and end-to-end experiment checks. *)

let () =
  Alcotest.run "fliptracker"
    [
      Test_value.suite;
      Test_ir.suite;
      Test_op.suite;
      Test_compile.suite;
      Test_machine.suite;
      Test_backend.suite;
      Test_trace.suite;
      Test_static.suite;
      Test_analysis.suite;
      Test_acl.suite;
      Test_tolerance.suite;
      Test_io.suite;
      Test_stream.suite;
      Test_runtime.suite;
      Test_faults.suite;
      Test_patterns.suite;
      Test_predict.suite;
      Test_weighted.suite;
      Test_apps.suite;
      Test_harden.suite;
      Test_mpi.suite;
      Test_recovery.suite;
      Test_experiments.suite;
      Test_usecases.suite;
      Test_integration.suite;
      Test_opt.suite;
      Test_differential.suite;
      Test_arch.suite;
    ]
