(* The recovery subsystem: fault models, checkpoint/rollback, the
   Recovered outcome class, and the paired Recovery_eval report. *)

(* --- fault models -------------------------------------------------------- *)

let test_model_of_string_round_trips () =
  List.iter
    (fun name ->
      match Fault_model.of_string name with
      | Ok m ->
          Alcotest.(check string) "round trip" name (Fault_model.to_string m)
      | Error e -> Alcotest.failf "%s did not parse: %s" name e)
    Fault_model.names;
  (match Fault_model.of_string "burst-16" with
  | Ok (Fault_model.Burst 16) -> ()
  | _ -> Alcotest.fail "burst-16 should parse");
  List.iter
    (fun bad ->
      match Fault_model.of_string bad with
      | Ok _ -> Alcotest.failf "%S should not parse" bad
      | Error _ -> ())
    [ "burst-1"; "burst-65"; "burst-"; "tripple"; "" ]

let test_model_sampling_is_deterministic () =
  let prog = Helpers.compile (Helpers.two_region_program ()) in
  let _, trace = Helpers.run_traced prog in
  let target = Campaign.whole_program_target prog trace in
  List.iter
    (fun model ->
      let f1 = Campaign.sample_fault ~model (Rng.derive ~seed:7 ~index:3) target in
      let f2 = Campaign.sample_fault ~model (Rng.derive ~seed:7 ~index:3) target in
      Alcotest.(check string)
        (Fault_model.to_string model ^ " deterministic")
        (Machine.fault_to_string f1) (Machine.fault_to_string f2))
    [
      Fault_model.Single_bit; Fault_model.Double_adjacent;
      Fault_model.Burst 8; Fault_model.Stuck_at;
    ]

let test_single_bit_sampling_matches_historical () =
  (* the default model must consume the RNG exactly as the historical
     code did: one site draw, one bit draw, a Flip_write *)
  let prog = Helpers.compile (Helpers.two_region_program ()) in
  let _, trace = Helpers.run_traced prog in
  let target = Campaign.whole_program_target prog trace in
  let rng = Rng.derive ~seed:11 ~index:0 in
  let fault = Campaign.sample_fault rng target in
  (match fault with
  | Machine.Flip_write _ -> ()
  | f ->
      Alcotest.failf "single-bit sampled %s, not a Flip_write"
        (Machine.fault_to_string f));
  (* site selection is shared across models: the same stream picks the
     same dynamic site under every model *)
  let seq_of = function
    | Machine.Flip_write { seq; _ } | Machine.Mask_write { seq; _ } -> seq
    | f -> Alcotest.failf "unexpected fault %s" (Machine.fault_to_string f)
  in
  let base = seq_of (Campaign.sample_fault (Rng.derive ~seed:11 ~index:5) target) in
  List.iter
    (fun model ->
      Alcotest.(check int)
        (Fault_model.to_string model ^ " picks the same site")
        base
        (seq_of (Campaign.sample_fault ~model (Rng.derive ~seed:11 ~index:5) target)))
    [ Fault_model.Double_adjacent; Fault_model.Burst 4; Fault_model.Stuck_at ]

(* --- checkpoint/rollback -------------------------------------------------- *)

(* rollback must restore registers, memory, and the output buffer
   bit-exactly: a trapping fault recovered by rollback ends in exactly
   the clean run's final state, because the monotonic instruction
   counter guarantees the injected fault never re-fires on replay *)
let test_rollback_restores_state_bit_exactly () =
  let app = Option.get (Registry.find_opt "LULESH") in
  let prog = App.program app in
  let clean = Machine.run_plain prog in
  Helpers.check_finished clean;
  let _, trace = App.trace app in
  let target = Campaign.whole_program_target prog trace in
  let budget = 20 * clean.Machine.instructions in
  (* property over sampled faults: every fault that traps without
     recovery finishes bit-exactly under rollback *)
  let recovered = ref 0 in
  let index = ref 0 in
  while !recovered < 5 && !index < 200 do
    let fault = Campaign.sample_fault (Rng.derive ~seed:9 ~index:!index) target in
    incr index;
    let bare =
      Machine.run prog
        { Machine.default_config with fault = Some fault; budget }
    in
    match bare.Machine.outcome with
    | Machine.Trapped _ ->
        let armed =
          Machine.run prog
            {
              Machine.default_config with
              fault = Some fault;
              budget;
              recover = Some Machine.default_recover;
            }
        in
        (match armed.Machine.outcome with
        | Machine.Finished ->
            incr recovered;
            Alcotest.(check bool) "took at least one restore" true
              (armed.Machine.restores > 0);
            Alcotest.(check string) "output bit-exact" clean.Machine.output
              armed.Machine.output;
            Alcotest.(check bool) "memory bit-exact" true
              (armed.Machine.mem = clean.Machine.mem)
        | Machine.Trapped _ | Machine.Budget_exceeded ->
            (* a trap can outrun the snapshot budget; that is a legal
               outcome, just not one this property speaks about *)
            ())
    | Machine.Finished | Machine.Budget_exceeded -> ()
  done;
  Alcotest.(check bool) "found trapping faults that rollback recovers" true
    (!recovered >= 3)

let test_restore_budget_exhaustion () =
  (* a program that traps deterministically traps again after every
     restore; the retry budget must bound the loop and the final
     outcome must still be the trap *)
  let prog =
    let open Ast in
    Helpers.compile
      (Helpers.main_program
         ~globals:[ DScalar ("z", Ty.I64); DScalar ("x", Ty.I64) ]
         [
           SAssign ("z", i 0);
           SAssign ("x", i 1 / v "z");
           SPrint ("RESULT %d\n", [ v "x" ]);
         ])
  in
  let r =
    Machine.run prog
      {
        Machine.default_config with
        recover = Some { Machine.max_restores = 2; snapshot_interval = 10 };
      }
  in
  (match r.Machine.outcome with
  | Machine.Trapped _ -> ()
  | Machine.Finished -> Alcotest.fail "integer divide by zero cannot finish"
  | Machine.Budget_exceeded -> Alcotest.fail "unexpected budget exhaustion");
  Alcotest.(check int) "spent the whole restore budget" 2 r.Machine.restores

let test_armed_clean_run_is_identical () =
  (* arming recovery on a fault-free run must change nothing *)
  let prog = Helpers.compile (Helpers.two_region_program ()) in
  let plain = Machine.run_plain prog in
  let armed =
    Machine.run prog
      { Machine.default_config with recover = Some Machine.default_recover }
  in
  Helpers.check_finished armed;
  Alcotest.(check int) "no restores" 0 armed.Machine.restores;
  Alcotest.(check string) "same output" plain.Machine.output
    armed.Machine.output;
  Alcotest.(check bool) "same memory" true (plain.Machine.mem = armed.Machine.mem);
  Alcotest.(check int) "same instruction count" plain.Machine.instructions
    armed.Machine.instructions

(* --- campaign integration ------------------------------------------------- *)

let cg_campaign ?(trials = 60) model recovery =
  let app = Option.get (Registry.find_opt "CG") in
  let clean, trace = App.trace app in
  let prog = App.program app in
  let target = Campaign.whole_program_target prog trace in
  Campaign.run prog ~verify:(App.verify app)
    ~clean_instructions:clean.Machine.instructions
    ~cfg:
      {
        Campaign.default_config with
        max_trials = Some trials;
        model;
        recovery;
      }
    target

let test_rollback_reduces_crashes_under_burst () =
  let none = cg_campaign (Fault_model.Burst 8) Campaign.No_recovery in
  let rb =
    cg_campaign (Fault_model.Burst 8)
      (Campaign.Rollback { max_restores = 3 })
  in
  Alcotest.(check bool) "bursts crash CG without recovery" true
    (none.Campaign.crashed > 0);
  Alcotest.(check bool) "rollback strictly reduces the crashed count" true
    (rb.Campaign.crashed < none.Campaign.crashed);
  Alcotest.(check bool) "crashes became recoveries" true
    (rb.Campaign.recovered > 0);
  Alcotest.(check int) "no recovered runs under the default policy" 0
    none.Campaign.recovered;
  Alcotest.(check int) "same classified trials" none.Campaign.trials
    rb.Campaign.trials

let test_single_bit_none_reproduces_pr4_counts () =
  (* the differential acceptance gate: the default model and policy,
     explicitly spelled, must reproduce the historical CG campaign
     counts at 300 trials exactly *)
  let c = cg_campaign ~trials:300 Fault_model.Single_bit Campaign.No_recovery in
  Alcotest.(check int) "success" 122 c.Campaign.success;
  Alcotest.(check int) "failed" 89 c.Campaign.failed;
  Alcotest.(check int) "crashed" 89 c.Campaign.crashed;
  Alcotest.(check int) "recovered" 0 c.Campaign.recovered;
  Alcotest.(check int) "trials" 300 c.Campaign.trials

(* --- Recovery_eval -------------------------------------------------------- *)

let test_recovery_eval_smoke () =
  let app = Option.get (Registry.find_opt "CG") in
  let r =
    Recovery_eval.evaluate ~size:2 ~serial_trials:8 ~mpi_trials:2
      ~msg_trials:2
      ~models:[ Fault_model.Single_bit ]
      app
  in
  Alcotest.(check int) "cells: 1 model x 2 policies x 2 modes" 4
    (List.length r.Recovery_eval.re_cells);
  Alcotest.(check int) "message cells: 3 kinds x 2 transports" 6
    (List.length r.Recovery_eval.re_messages);
  List.iter
    (fun (c : Recovery_eval.cell) ->
      let expected =
        match c.Recovery_eval.rc_mode with
        | Recovery_eval.Serial -> 8
        | Recovery_eval.Mpi _ -> 2
      in
      Alcotest.(check int) "cell trial count" expected
        c.Recovery_eval.rc_counts.Campaign.trials)
    r.Recovery_eval.re_cells;
  (* the CSV has one line per cell plus a header *)
  let lines = String.split_on_char '\n' (Recovery_eval.to_csv r) in
  Alcotest.(check int) "csv rows" (1 + 4 + 6)
    (List.length (List.filter (fun s -> s <> "") lines))

let suite =
  ( "recovery",
    [
      Alcotest.test_case "fault-model names round-trip" `Quick
        test_model_of_string_round_trips;
      Alcotest.test_case "fault-model sampling deterministic" `Quick
        test_model_sampling_is_deterministic;
      Alcotest.test_case "single-bit keeps historical stream" `Quick
        test_single_bit_sampling_matches_historical;
      Alcotest.test_case "rollback restores bit-exactly" `Slow
        test_rollback_restores_state_bit_exactly;
      Alcotest.test_case "restore budget exhaustion" `Quick
        test_restore_budget_exhaustion;
      Alcotest.test_case "armed clean run identical" `Quick
        test_armed_clean_run_is_identical;
      Alcotest.test_case "rollback reduces burst crashes" `Slow
        test_rollback_reduces_crashes_under_burst;
      Alcotest.test_case "single-bit/none reproduces PR4 CG counts" `Slow
        test_single_bit_none_reproduces_pr4_counts;
      Alcotest.test_case "recovery_eval smoke" `Slow test_recovery_eval_smoke;
    ] )
