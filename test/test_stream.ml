(* Streaming analysis = materialized analysis: the constant-memory
   consumers (region chain, access index, ACL over event sources) must
   produce results identical to the array-backed paths, including on
   real application traces read back from both trace encodings. *)

open Helpers

(* structural equality of ACL results; Stdlib.compare handles the
   Repeated_add floats (equal bit patterns compare equal) *)
let result_equal (a : Acl.result) (b : Acl.result) =
  compare a.Acl.series b.Acl.series = 0
  && compare a.deaths b.deaths = 0
  && compare a.maskings b.maskings = 0
  && a.divergence = b.divergence
  && a.peak = b.peak && a.final = b.final

let check_result_equal name (a : Acl.result) (b : Acl.result) =
  Alcotest.(check int) (name ^ ": series length") (Array.length a.Acl.series)
    (Array.length b.Acl.series);
  Alcotest.(check int) (name ^ ": deaths") (List.length a.deaths)
    (List.length b.deaths);
  Alcotest.(check int) (name ^ ": maskings") (List.length a.maskings)
    (List.length b.maskings);
  Alcotest.(check int) (name ^ ": peak") a.peak b.peak;
  Alcotest.(check int) (name ^ ": final") a.final b.final;
  Alcotest.(check bool) (name ^ ": identical") true (result_equal a b)

(* a mid-trace writing instruction of the clean run, for a fault that
   certainly corrupts a traced destination *)
let mid_write_fault (clean : Trace.t) : Machine.fault =
  let seq = ref (-1) in
  let target = Trace.length clean / 2 in
  Trace.iter
    (fun (e : Trace.event) ->
      if !seq < 0 && e.seq >= target && Array.length e.writes > 0 then
        seq := e.seq)
    clean;
  Alcotest.(check bool) "found a writing site" true (!seq >= 0);
  Machine.Flip_write { seq = !seq; bit = 40 }

let test_stream_acl_small () =
  let prog = compile (two_region_program ()) in
  let _, clean = run_traced prog in
  let fault = mid_write_fault clean in
  let _, faulty = run_traced ~fault prog in
  let materialized = Acl.analyze ~fault ~clean ~faulty () in
  let streamed =
    Acl.analyze_stream ~fault
      ~clean:(Trace_io.source_of_trace clean)
      ~faulty:(Trace_io.source_of_trace faulty)
      ()
  in
  check_result_equal "two-region" materialized streamed

(* the paper-scale differential: CG and MG faulty traces, streaming ACL
   event-for-event equal to the materialized path *)
let app_differential (app : App.t) () =
  let _, clean = App.trace app in
  let fault = mid_write_fault clean in
  let _, faulty = App.trace_with_fault app fault ~budget:10_000_000 in
  let materialized = Acl.analyze ~fault ~clean ~faulty () in
  let streamed =
    Acl.analyze_stream ~fault
      ~clean:(Trace_io.source_of_trace clean)
      ~faulty:(Trace_io.source_of_trace faulty)
      ()
  in
  check_result_equal app.App.name materialized streamed

(* same, but through trace files in both encodings: the sources replay
   the decoded streams across the three ACL passes *)
let test_stream_acl_from_files () =
  let app = Mg.app in
  let _, clean = App.trace app in
  let fault = mid_write_fault clean in
  let _, faulty = App.trace_with_fault app fault ~budget:10_000_000 in
  let clean_path = Filename.temp_file "ft_clean" ".trace" in
  let faulty_path = Filename.temp_file "ft_faulty" ".trace" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove clean_path;
      Sys.remove faulty_path)
    (fun () ->
      Trace_io.save ~format:Trace_io.Text clean_path clean;
      Trace_io.save ~format:Trace_io.Binary faulty_path faulty;
      let materialized = Acl.analyze ~fault ~clean ~faulty () in
      let streamed =
        Acl.analyze_stream ~fault
          ~clean:(Trace_io.source_of_file clean_path)
          ~faulty:(Trace_io.source_of_file faulty_path)
          ()
      in
      check_result_equal "mg-files" materialized streamed)

let test_region_instances_seq () =
  let prog = compile (loop_program ~iters:7) in
  let _, t = run_traced ~iter_mark:(Prog.mark_id prog "main_iter") prog in
  let a = Region.instances t in
  let b = Region.instances_seq (Trace.to_seq t) in
  Alcotest.(check bool) "instance chains equal" true (compare a b = 0)

let test_access_build_seq () =
  let prog = compile (loop_program ~iters:5) in
  let _, t = run_traced ~iter_mark:(Prog.mark_id prog "main_iter") prog in
  let a = Access.build t in
  let b = Access.build_seq (Trace.to_seq t) in
  (* every location touched by the trace has identical access chains
     and fates in both indexes *)
  let locs = Loc.Tbl.create 64 in
  Trace.iter
    (fun (e : Trace.event) ->
      Array.iter (fun (l, _) -> Loc.Tbl.replace locs l ()) e.reads;
      Array.iter (fun (l, _) -> Loc.Tbl.replace locs l ()) e.writes)
    t;
  Loc.Tbl.iter
    (fun loc () ->
      Alcotest.(check bool) "accesses equal" true
        (Access.accesses a loc = Access.accesses b loc);
      for i = 0 to min 40 (Trace.length t - 1) do
        Alcotest.(check bool) "fate equal" true
          (Access.fate a loc ~after:i = Access.fate b loc ~after:i)
      done)
    locs

let test_run_sink_matches_trace () =
  let prog = compile (loop_program ~iters:4) in
  let mark = Prog.mark_id prog "main_iter" in
  let _, t = run_traced ~iter_mark:mark prog in
  let sunk = ref [] in
  let _ =
    Machine.run_sink ~iter_mark:mark ~sink:(fun e -> sunk := e :: !sunk) prog
  in
  let sunk = Array.of_list (List.rev !sunk) in
  Alcotest.(check int) "event count" (Trace.length t) (Array.length sunk);
  Trace.iteri
    (fun i e ->
      Alcotest.(check bool) "sunk event equal" true (compare e sunk.(i) = 0))
    t

let suite =
  ( "stream",
    [
      Alcotest.test_case "stream acl: two-region" `Quick test_stream_acl_small;
      Alcotest.test_case "stream acl: CG" `Slow (app_differential Cg.app);
      Alcotest.test_case "stream acl: MG" `Slow (app_differential Mg.app);
      Alcotest.test_case "stream acl: MG via files" `Slow
        test_stream_acl_from_files;
      Alcotest.test_case "region instances over seq" `Quick
        test_region_instances_seq;
      Alcotest.test_case "access index over seq" `Quick test_access_build_seq;
      Alcotest.test_case "run_sink = trace" `Quick test_run_sink_matches_trace;
    ] )
