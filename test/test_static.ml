(* The static-analysis library: CFG construction, the dataflow engine's
   instances (reaching definitions, liveness), the IR verifier/linter,
   and the vulnerability ranking. *)

open Helpers

(* --- hand-built IR ------------------------------------------------------ *)

let func ?(fname = "f") ?(nregs = 4) code : Prog.func =
  let n = Array.length code in
  {
    Prog.fname;
    nregs;
    code;
    lines = Array.init n (fun i -> i);
    regions = Array.make n (-1);
  }

let prog ?(entry = 0) funcs : Prog.t =
  {
    Prog.funcs = Array.of_list funcs;
    entry;
    mem_size = 16;
    init_mem = [];
    region_table = [||];
    mark_names = [||];
    symbols = [];
  }

(* diamond: r1 <- 10 or 20 depending on r0, then r2 <- r1 + r1 *)
let diamond =
  func
    [|
      Instr.Const (0, 1L);
      Instr.Bnz (0, 2, 4);
      Instr.Const (1, 10L);
      Instr.Jmp 5;
      Instr.Const (1, 20L);
      Instr.Bin (Op.Add, 2, 1, 1);
      Instr.Ret (Some 2);
    |]

(* --- CFG ---------------------------------------------------------------- *)

let test_cfg_straight_line () =
  let f = func [| Instr.Const (0, 1L); Instr.Ret None |] in
  let g = Cfg.build f in
  Alcotest.(check int) "one block" 1 (Cfg.n_blocks g);
  let b = Cfg.block g 0 in
  Alcotest.(check int) "first" 0 b.Cfg.first;
  Alcotest.(check int) "last" 1 b.Cfg.last;
  Alcotest.(check (list int)) "no succs" [] b.Cfg.succs

let test_cfg_diamond () =
  let g = Cfg.build diamond in
  Alcotest.(check int) "four blocks" 4 (Cfg.n_blocks g);
  (* entry branches to both arms; both arms flow into the join *)
  let entry = Cfg.block g g.Cfg.block_of.(0) in
  Alcotest.(check int) "two successors" 2 (List.length entry.Cfg.succs);
  let join = Cfg.block g g.Cfg.block_of.(5) in
  Alcotest.(check int) "two predecessors" 2 (List.length join.Cfg.preds);
  Array.iteri
    (fun pc bid ->
      let b = Cfg.block g bid in
      Alcotest.(check bool) "block_of covers" true
        (pc >= b.Cfg.first && pc <= b.Cfg.last))
    g.Cfg.block_of

let test_cfg_drops_bad_targets () =
  let f = func [| Instr.Jmp 99 |] in
  let g = Cfg.build f in
  Alcotest.(check (list int)) "edge dropped, graph still built" []
    (Cfg.block g 0).Cfg.succs

let test_cfg_reachability () =
  let f =
    func
      [|
        Instr.Jmp 2; Instr.Const (0, 1L) (* unreachable *); Instr.Ret None;
      |]
  in
  let g = Cfg.build f in
  let r = Cfg.reachable_pcs g in
  Alcotest.(check bool) "entry reachable" true r.(0);
  Alcotest.(check bool) "skipped pc dead" false r.(1);
  Alcotest.(check bool) "target reachable" true r.(2)

(* --- reaching definitions ---------------------------------------------- *)

let test_reaching_join () =
  let rd = Reaching.compute diamond in
  (* at the join use, both arm definitions reach r1 *)
  Alcotest.(check (list int)) "two defs at join" [ 2; 4 ]
    (Reaching.defs_of rd ~pc:5 1);
  Alcotest.(check bool) "no unique def" true
    (Reaching.unique_def rd ~pc:5 1 = None);
  (* before the arms, r1 is uninitialized *)
  Alcotest.(check bool) "uninit before arms" true
    (Reaching.may_be_uninit rd ~pc:2 1);
  (* r0's constant is the unique def at the branch *)
  Alcotest.(check bool) "unique const def" true
    (Reaching.unique_def rd ~pc:1 0 = Some 0)

let test_reaching_params () =
  let f = func [| Instr.Bin (Op.Add, 2, 0, 1); Instr.Ret (Some 2) |] in
  let rd = Reaching.compute ~arity:2 f in
  Alcotest.(check bool) "r0 is a param" false (Reaching.may_be_uninit rd ~pc:0 0);
  Alcotest.(check bool) "r1 is a param" false (Reaching.may_be_uninit rd ~pc:0 1);
  let rd0 = Reaching.compute f in
  Alcotest.(check bool) "without arity r0 is uninit" true
    (Reaching.may_be_uninit rd0 ~pc:0 0)

let test_reaching_stores () =
  (* store 7 into word 3, load it back: the load's word has a unique
     reaching store *)
  let f =
    func
      [|
        Instr.Const (0, 3L);
        Instr.Const (1, 7L);
        Instr.Store (1, 0);
        Instr.Load (2, 0);
        Instr.Ret (Some 2);
      |]
  in
  let rd = Reaching.compute f in
  let mem = Reaching.compute_mem rd in
  Alcotest.(check (list int)) "word tracked" [ 3 ] (Reaching.tracked_addrs mem);
  Alcotest.(check bool) "unique store found" true
    (Reaching.store_of mem ~pc:3 ~addr:3 = Some 2);
  Alcotest.(check bool) "nothing reaches before the store" true
    (Reaching.store_of mem ~pc:2 ~addr:3 = None)

let test_reaching_stores_killed_by_call () =
  let callee = func ~fname:"g" [| Instr.Ret None |] in
  let f =
    func
      [|
        Instr.Const (0, 3L);
        Instr.Const (1, 7L);
        Instr.Store (1, 0);
        Instr.Call (1, [||], None);
        Instr.Load (2, 0);
        Instr.Ret (Some 2);
      |]
  in
  ignore (prog [ f; callee ]);
  let rd = Reaching.compute f in
  let mem = Reaching.compute_mem rd in
  Alcotest.(check bool) "call is an unknown writer" true
    (Reaching.store_of mem ~pc:4 ~addr:3 = None)

(* --- liveness ----------------------------------------------------------- *)

let test_liveness_diamond () =
  let lv = Liveness.compute diamond in
  (* r0 is live until the branch consumes it *)
  Alcotest.(check bool) "r0 live before branch" true
    (List.mem 0 (Liveness.live_before lv ~pc:1));
  Alcotest.(check bool) "r0 dead after branch" false
    (Liveness.is_live_after lv ~pc:1 0);
  (* r1 is live across both arms into the join *)
  Alcotest.(check bool) "r1 live into join" true
    (List.mem 1 (Liveness.live_before lv ~pc:5));
  (* the returned register is live right up to the ret *)
  Alcotest.(check bool) "r2 live before ret" true
    (List.mem 2 (Liveness.live_before lv ~pc:6));
  Alcotest.(check bool) "positive range" true (Liveness.range_length lv 1 > 0);
  Alcotest.(check bool) "avg live positive" true (Liveness.avg_live lv > 0.0)

let test_mem_liveness_dead_store () =
  (* word 3 is stored twice with no intervening read: the first store
     is dead; the second is live because final memory is observable *)
  let f =
    func
      [|
        Instr.Const (0, 3L);
        Instr.Const (1, 7L);
        Instr.Store (1, 0);
        Instr.Store (1, 0);
        Instr.Ret None;
      |]
  in
  let rd = Reaching.compute f in
  let ml = Liveness.compute_mem rd f in
  Alcotest.(check bool) "first store dead" false
    (Liveness.word_live_after ml ~pc:2 3);
  Alcotest.(check bool) "last store live (exit observable)" true
    (Liveness.word_live_after ml ~pc:3 3)

(* --- verifier: registry programs lint clean ----------------------------- *)

let test_lint_registry_clean () =
  List.iter
    (fun (app : App.t) ->
      let ds = Verify.verify (App.program app) in
      Alcotest.(check int)
        (app.App.name ^ " lints with zero errors")
        0
        (List.length (Verify.errors ds)))
    Registry.all

(* --- verifier: broken fixtures ------------------------------------------ *)

let has_error ds kind =
  List.exists
    (fun (d : Verify.diag) -> d.Verify.sev = Verify.Error && d.Verify.kind = kind)
    ds

let test_verify_bad_jump_target () =
  let p = prog [ func ~fname:"main" [| Instr.Jmp 99 |] ] in
  let ds = Verify.verify p in
  Alcotest.(check bool) "bad-target reported" true (has_error ds Verify.Bad_target);
  Alcotest.(check bool) "not ok" false (Verify.ok ds)

let test_verify_use_before_def () =
  let p =
    prog
      [
        func ~fname:"main"
          [| Instr.Bin (Op.Add, 1, 0, 0); Instr.Ret (Some 1) |];
      ]
  in
  let ds = Verify.verify p in
  Alcotest.(check bool) "use-before-def reported" true
    (has_error ds Verify.Use_before_def)

let test_verify_arity_mismatch () =
  (* g reads r0 before writing it, so it needs one argument; main
     passes none *)
  let g = func ~fname:"g" [| Instr.Bin (Op.Add, 1, 0, 0); Instr.Ret (Some 1) |] in
  let main =
    func ~fname:"main" [| Instr.Call (1, [||], Some 0); Instr.Ret None |]
  in
  let ds = Verify.verify (prog [ main; g ]) in
  Alcotest.(check bool) "arity mismatch reported" true
    (has_error ds Verify.Arity_mismatch)

let test_verify_too_many_args () =
  let g = func ~fname:"g" ~nregs:1 [| Instr.Ret None |] in
  let main =
    func ~fname:"main"
      [| Instr.Const (0, 1L); Instr.Const (1, 2L);
         Instr.Call (1, [| 0; 1 |], None); Instr.Ret None |]
  in
  let ds = Verify.verify (prog [ main; g ]) in
  Alcotest.(check bool) "overfull call reported" true
    (has_error ds Verify.Arity_mismatch)

let test_verify_ret_mismatch () =
  (* main expects a value from g, but g returns bare *)
  let g = func ~fname:"g" [| Instr.Ret None |] in
  let main =
    func ~fname:"main" [| Instr.Call (1, [||], Some 0); Instr.Ret None |]
  in
  let ds = Verify.verify (prog [ main; g ]) in
  Alcotest.(check bool) "ret mismatch reported" true
    (has_error ds Verify.Ret_mismatch)

let test_verify_bad_register_and_entry () =
  let p = prog [ func ~fname:"main" ~nregs:2 [| Instr.Const (9, 0L); Instr.Ret None |] ] in
  Alcotest.(check bool) "bad register" true
    (has_error (Verify.verify p) Verify.Bad_register);
  let p2 = prog ~entry:7 [ func ~fname:"main" [| Instr.Ret None |] ] in
  Alcotest.(check bool) "bad entry" true
    (has_error (Verify.verify p2) Verify.Bad_entry)

let test_verify_missing_return () =
  let p = prog [ func ~fname:"main" [| Instr.Const (0, 1L) |] ] in
  Alcotest.(check bool) "missing return" true
    (has_error (Verify.verify p) Verify.Missing_return)

let test_verify_warnings_and_report () =
  (* dead first store to a named word + unreachable code, both warnings *)
  let prog_ast =
    let open Ast in
    main_program
      ~globals:[ DScalar ("t", Ty.F64); DScalar ("out", Ty.F64) ]
      [
        SAssign ("t", f 1.0);
        SAssign ("t", f 2.0);
        SAssign ("out", v "t");
      ]
  in
  let ds = Verify.verify (compile prog_ast) in
  Alcotest.(check int) "no errors" 0 (List.length (Verify.errors ds));
  Alcotest.(check bool) "dead first store flagged" true
    (List.exists
       (fun (d : Verify.diag) -> d.Verify.kind = Verify.Dead_store)
       (Verify.warnings ds));
  (* report renders and CSV has header + one line per diagnostic *)
  let report = Fmt.str "@[<v>%a@]" Verify.pp_report ds in
  Alcotest.(check bool) "report nonempty" true (String.length report > 0);
  let csv = Verify.to_csv ds in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "csv rows" (List.length ds + 1) (List.length lines)

let test_verify_const_store_unread () =
  let has_csu ds =
    List.exists
      (fun (d : Verify.diag) -> d.Verify.kind = Verify.Const_store_unread)
      (Verify.warnings ds)
  in
  (* constant 7 stored to word 3, and nothing in the program loads it *)
  let unread =
    prog
      [
        func ~fname:"main"
          [|
            Instr.Const (0, 3L);
            Instr.Const (1, 7L);
            Instr.Store (1, 0);
            Instr.Ret None;
          |];
      ]
  in
  Alcotest.(check bool) "unread const store flagged" true
    (has_csu (Verify.verify unread));
  (* same store, but a later load reads the word: no warning *)
  let read =
    prog
      [
        func ~fname:"main"
          [|
            Instr.Const (0, 3L);
            Instr.Const (1, 7L);
            Instr.Store (1, 0);
            Instr.Load (2, 0);
            Instr.Ret (Some 2);
          |];
      ]
  in
  Alcotest.(check bool) "read const store not flagged" false
    (has_csu (Verify.verify read))

(* --- vulnerability ranking ---------------------------------------------- *)

let test_vuln_rank_cg () =
  let p = App.program (Registry.find "CG") in
  let ranking = Vuln.rank p in
  Alcotest.(check int) "one score per region"
    (Array.length p.Prog.region_table)
    (List.length ranking);
  (* non-degenerate: not all scores equal *)
  let scores = List.map (fun s -> s.Vuln.score) ranking in
  Alcotest.(check bool) "scores differ" true
    (List.exists (fun s -> s <> List.hd scores) scores);
  (* sorted descending *)
  let rec sorted = function
    | a :: b :: tl -> a.Vuln.score >= b.Vuln.score && sorted (b :: tl)
    | _ -> true
  in
  Alcotest.(check bool) "descending" true (sorted ranking);
  (* deterministic: a second run is identical *)
  Alcotest.(check bool) "stable across runs" true (Vuln.rank p = ranking);
  (* extra protective sites can only lower or keep scores *)
  let seeded = Static_detect.static_rank p in
  List.iter
    (fun (s : Vuln.region_score) ->
      let s' = List.find (fun x -> x.Vuln.rid = s.Vuln.rid) seeded in
      Alcotest.(check bool) "seeded score <= plain" true
        (s'.Vuln.score <= s.Vuln.score))
    ranking

let test_vuln_protection_lowers_score () =
  (* same loop body, one with a guarding conditional: the guard adds a
     protective branch site (it also adds instructions, so the density
     itself need not rise) *)
  let build guarded =
    let open Ast in
    let body =
      if guarded then
        [ SIf (idx1 "u" (v "j") > f 0.0,
               [ SStore ("u", [ v "j" ], idx1 "u" (v "j") + f 1.0) ], []) ]
      else [ SStore ("u", [ v "j" ], idx1 "u" (v "j") + f 1.0) ]
    in
    compile
      (main_program
         ~globals:[ DArr ("u", Ty.F64, [ 4 ]) ]
         [ SRegion ("r", 1, 9, [ SFor ("j", i 0, i 4, body) ]) ])
  in
  let score p =
    match Vuln.rank p with [ s ] -> s | _ -> Alcotest.fail "one region"
  in
  let plain = score (build false) and guarded = score (build true) in
  Alcotest.(check bool) "guard adds a protective site" true
    (guarded.Vuln.protective_sites > plain.Vuln.protective_sites);
  Alcotest.(check bool) "scores positive" true
    (plain.Vuln.score > 0.0 && guarded.Vuln.score > 0.0)

let suite =
  ( "static",
    [
      Alcotest.test_case "cfg: straight line" `Quick test_cfg_straight_line;
      Alcotest.test_case "cfg: diamond" `Quick test_cfg_diamond;
      Alcotest.test_case "cfg: bad targets dropped" `Quick
        test_cfg_drops_bad_targets;
      Alcotest.test_case "cfg: reachability" `Quick test_cfg_reachability;
      Alcotest.test_case "reaching: join" `Quick test_reaching_join;
      Alcotest.test_case "reaching: params" `Quick test_reaching_params;
      Alcotest.test_case "reaching: stores" `Quick test_reaching_stores;
      Alcotest.test_case "reaching: stores vs call" `Quick
        test_reaching_stores_killed_by_call;
      Alcotest.test_case "liveness: diamond" `Quick test_liveness_diamond;
      Alcotest.test_case "liveness: dead store" `Quick
        test_mem_liveness_dead_store;
      Alcotest.test_case "lint: registry clean" `Slow test_lint_registry_clean;
      Alcotest.test_case "verify: bad jump target" `Quick
        test_verify_bad_jump_target;
      Alcotest.test_case "verify: use before def" `Quick
        test_verify_use_before_def;
      Alcotest.test_case "verify: arity mismatch" `Quick
        test_verify_arity_mismatch;
      Alcotest.test_case "verify: too many args" `Quick
        test_verify_too_many_args;
      Alcotest.test_case "verify: ret mismatch" `Quick test_verify_ret_mismatch;
      Alcotest.test_case "verify: bad register/entry" `Quick
        test_verify_bad_register_and_entry;
      Alcotest.test_case "verify: missing return" `Quick
        test_verify_missing_return;
      Alcotest.test_case "verify: warnings + report" `Quick
        test_verify_warnings_and_report;
      Alcotest.test_case "verify: const store unread" `Quick
        test_verify_const_store_unread;
      Alcotest.test_case "vuln: rank CG" `Slow test_vuln_rank_cg;
      Alcotest.test_case "vuln: protection lowers score" `Quick
        test_vuln_protection_lowers_score;
    ] )
