(* The microarchitectural fault surfaces (lib/arch): instruction-store
   codec totality and round-trips, cache-model transparency and
   corruption semantics, and the cross-structure campaign contract —
   per-structure counts identical across backends and worker counts,
   with the default register-file surface byte-identical to the
   historical campaigns. *)

(* --- instruction-store codec ------------------------------------------- *)

let all_bins =
  Op.
    [
      Add; Sub; Mul; Div; Rem; And; Or; Xor; Shl; Lshr; Ashr; Fadd; Fsub;
      Fmul; Fdiv; Eq; Ne; Lt; Le; Gt; Ge; Feq; Fne; Flt; Fle; Fgt; Fge;
      Imin; Imax; Fmin; Fmax;
    ]

let all_uns =
  Op.
    [
      Neg; Not; Fneg; Fabs; Fsqrt; Fsin; Fcos; Trunc32; FloatOfInt;
      IntOfFloat; F32round;
    ]

(* a two-function program exercising every instruction form, every
   opcode, and every intrinsic kind within one encoding context *)
let covering_prog () : Prog.t =
  let callee : Prog.func =
    {
      Prog.fname = "callee";
      nregs = 4;
      code = [| Instr.Const (0, 7L); Instr.Ret (Some 0); Instr.Ret None |];
      lines = [| 0; 0; 0 |];
      regions = [| -1; -1; -1 |];
    }
  in
  let forms =
    [
      Instr.Const (0, Int64.min_int);
      Instr.Const (1, -1L);
      Instr.Load (2, 0);
      Instr.Store (2, 0);
      Instr.Jmp 5;
      Instr.Bnz (0, 6, 6);
      Instr.Call (1, [| 0; 1 |], Some 3);
      Instr.Call (1, [||], None);
      Instr.Ret (Some 3);
      Instr.Ret None;
      Instr.Mark 3;
      Instr.Intr (Instr.Randlc, [| 0; 1 |], Some 2);
      Instr.Intr (Instr.Print "v=%d\n", [| 0 |], None);
      Instr.Intr (Instr.MpiSend, [| 0; 1; 2 |], None);
      Instr.Intr (Instr.MpiRecv, [| 0; 1 |], Some 2);
      Instr.Intr (Instr.MpiAllreduceSum, [| 0 |], Some 1);
      Instr.Intr (Instr.MpiBarrier, [||], None);
      Instr.Intr (Instr.MpiRank, [||], Some 0);
      Instr.Intr (Instr.MpiSize, [||], Some 0);
      Instr.Intr (Instr.Illegal "synthetic", [||], None);
    ]
    @ List.map (fun op -> Instr.Bin (op, 0, 1, 2)) all_bins
    @ List.map (fun op -> Instr.Un (op, 0, 1)) all_uns
  in
  let code = Array.of_list forms in
  let main : Prog.func =
    {
      Prog.fname = "main";
      nregs = 8;
      code;
      lines = Array.make (Array.length code) 0;
      regions = Array.make (Array.length code) (-1);
    }
  in
  {
    Prog.funcs = [| main; callee |];
    entry = 0;
    mem_size = 16;
    init_mem = [];
    region_table = [||];
    mark_names = [| "a"; "b"; "c"; "d" |];
    symbols = [];
  }

let test_roundtrip_covering () =
  Icodec.roundtrip_check (covering_prog ())

let test_roundtrip_registry () =
  List.iter
    (fun (a : App.t) ->
      Icodec.roundtrip_check (App.program a);
      Icodec.roundtrip_check (Harden.transform Passes.all (App.program a)))
    Registry.all

(* deterministic 64-bit patterns from the campaign RNG *)
let rand64 rng =
  let hi = Rng.int rng (1 lsl 22) and mid = Rng.int rng (1 lsl 21) in
  let lo = Rng.int rng (1 lsl 21) in
  Int64.(
    logor
      (shift_left (of_int hi) 42)
      (logor (shift_left (of_int mid) 21) (of_int lo)))

let test_decode_total () =
  let prog = App.program (Registry.find "CG") in
  let enc = Icodec.encode prog in
  let total = Icodec.total_words enc in
  for i = 0 to 1999 do
    let rng = Rng.derive ~seed:7 ~index:i in
    let widx = Rng.int rng total in
    let fidx, pc = Icodec.locate enc widx in
    let w = Icodec.word enc ~fidx ~pc in
    (* a fully random word, and a near-miss (one random bit of the real
       word flipped) — both must decode without an exception *)
    let patterns =
      [ rand64 rng; Int64.logxor w (Int64.shift_left 1L (Rng.int rng 64)) ]
    in
    List.iter
      (fun p ->
        match Icodec.decode enc ~fidx p with
        | Ok _ | Error _ -> ())
      patterns
  done

(* mutants never escape unclassified: every decoded program runs to a
   classified outcome on both backends, with identical results *)
let test_mutants_classified_both_backends () =
  let prog = App.program (Registry.find "IS") in
  let enc = Icodec.encode prog in
  let total = Icodec.total_words enc in
  let budget = 2_000_000 in
  for i = 0 to 39 do
    let rng = Rng.derive ~seed:11 ~index:i in
    let widx = Rng.int rng total in
    let fidx, pc = Icodec.locate enc widx in
    let word =
      Int64.logxor
        (Icodec.word enc ~fidx ~pc)
        (Int64.shift_left 1L (Rng.int rng 64))
    in
    let mutated = Icodec.mutate prog enc ~fidx ~pc ~word in
    let cfg = { Machine.default_config with budget } in
    let ri = Machine.run mutated cfg in
    let rc = Compiled.run (Compiled.plan_for mutated) cfg in
    Alcotest.(check bool)
      (Printf.sprintf "mutant %d backend-identical" i)
      true
      (ri.Machine.outcome = rc.Machine.outcome
      && ri.Machine.instructions = rc.Machine.instructions
      && ri.Machine.output = rc.Machine.output)
  done

(* --- cache model -------------------------------------------------------- *)

let test_cache_transparent () =
  let geom = { Cache_model.sets = 4; ways = 2; line_words = 2 } in
  let n = 64 in
  let cached = Array.init n (fun i -> Int64.of_int (i * 3)) in
  let flat = Array.copy cached in
  let c = Cache_model.create geom in
  for i = 0 to 999 do
    let rng = Rng.derive ~seed:5 ~index:i in
    let a = Rng.int rng n in
    if Rng.int rng 2 = 0 then begin
      let v = rand64 rng in
      Cache_model.write c cached a v;
      flat.(a) <- v
    end
    else
      Alcotest.(check bool)
        (Printf.sprintf "read %d agrees" i)
        true
        (Cache_model.read c cached a = flat.(a))
  done;
  Cache_model.flush c cached;
  Alcotest.(check bool) "flush restores the exact image" true (cached = flat)

let test_cache_dirty_flip_loses_store () =
  let geom = { Cache_model.sets = 1; ways = 1; line_words = 1 } in
  let mem = [| 42L |] in
  let c = Cache_model.create geom in
  Cache_model.write c mem 0 99L;
  Alcotest.(check bool) "store buffered, not yet in memory" true
    (mem.(0) = 42L);
  (* the flipped dirty bit silently drops the buffered store *)
  Cache_model.corrupt c
    { Cache_model.set = 0; way = 0; field = Cache_model.Dirty }
    ~f:(fun _ -> 0L);
  Cache_model.flush c mem;
  Alcotest.(check bool) "store lost at eviction" true (mem.(0) = 42L)

let test_cache_tag_flip_serves_wrong_word () =
  (* two addresses in the same set; renaming one line's tag onto the
     other address makes a read silently see the wrong word *)
  let geom = { Cache_model.sets = 1; ways = 2; line_words = 1 } in
  let mem = [| 10L; 20L |] in
  let c = Cache_model.create geom in
  Alcotest.(check bool) "a0" true (Cache_model.read c mem 0 = 10L);
  Cache_model.corrupt c
    { Cache_model.set = 0; way = 0; field = Cache_model.Tag }
    ~f:(fun _ -> 1L);
  Alcotest.(check bool) "a1 served from the renamed line" true
    (Cache_model.read c mem 1 = 10L)

let test_compiled_rejects_cache_faults () =
  let fault =
    Machine.Cache_fault
      {
        seq = 100;
        geom = Cache_model.default_geometry;
        loc = { Cache_model.set = 0; way = 0; field = Cache_model.Dirty };
        and_mask = -1L;
        or_mask = 0L;
        xor_mask = 1L;
      }
  in
  Alcotest.(check bool) "unsupported" false
    (Compiled.supported { Machine.default_config with fault = Some fault })

(* --- cross-structure campaign contract ---------------------------------- *)

let counts_equal a b =
  a.Campaign.success = b.Campaign.success
  && a.Campaign.failed = b.Campaign.failed
  && a.Campaign.crashed = b.Campaign.crashed
  && a.Campaign.trials = b.Campaign.trials

let test_structure_counts_invariant () =
  let app = Registry.find "IS" in
  let clean, trace = App.trace app in
  let prog = App.program app in
  let clean_instructions = clean.Machine.instructions in
  List.iter
    (fun structure ->
      let target =
        Campaign.structure_target structure prog trace ~clean_instructions
      in
      let cfg =
        { Campaign.default_config with max_trials = Some 25; structure }
      in
      let run backend jobs =
        Campaign.run prog ~verify:(App.verify app) ~clean_instructions ~cfg
          ~exec:{ Campaign.default_exec with backend; jobs }
          target
      in
      let base = run Backend.Interp 1 in
      List.iter
        (fun (label, c) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s = interp/jobs-1"
               (Structure.to_string structure)
               label)
            true (counts_equal base c))
        [
          ("compiled/jobs-1", run Backend.Compiled 1);
          ("compiled/jobs-2", run Backend.Compiled 2);
          ("interp/jobs-2", run Backend.Interp 2);
        ])
    Structure.all

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_campaign_tag_structure () =
  let tag cfg = Campaign.campaign_tag cfg ~population:1000 ~trials:100 in
  let default_tag = tag Campaign.default_config in
  (* the historical tag is untouched by the structure field's existence *)
  Alcotest.(check bool) "default tag has no structure suffix" false
    (contains ~sub:"structure" default_tag);
  let istore_tag =
    tag { Campaign.default_config with structure = Structure.Istore }
  in
  Alcotest.(check bool) "istore tag is suffixed" true
    (contains ~sub:":structure=istore" istore_tag)

let test_spec_structure_roundtrip () =
  let check_rt spec =
    match Campaign.spec_of_csexp (Campaign.spec_to_csexp spec) with
    | Ok s -> Alcotest.(check bool) "spec round-trips" true (s = spec)
    | Error e -> Alcotest.fail e
  in
  check_rt Campaign.default_spec;
  check_rt { Campaign.default_spec with sp_structure = Structure.Cache_data };
  (* a legacy 6-atom spec (written before the structure field existed)
     decodes to the register-file surface *)
  let legacy =
    Csexp.List
      [
        Csexp.Atom "campaign-spec"; Csexp.Atom "IS"; Csexp.Atom "42";
        Csexp.Atom "500"; Csexp.Atom "single-bit"; Csexp.Atom "none";
      ]
  in
  match Campaign.spec_of_csexp legacy with
  | Ok s ->
      Alcotest.(check bool) "legacy decodes to reg" true
        (s.Campaign.sp_structure = Structure.Reg)
  | Error e -> Alcotest.fail e

let test_structure_of_string () =
  List.iter
    (fun s ->
      match Structure.of_string (Structure.to_string s) with
      | Ok s' -> Alcotest.(check bool) "name round-trips" true (s = s')
      | Error e -> Alcotest.fail e)
    Structure.all;
  match Structure.of_string "l2-tlb" with
  | Ok _ -> Alcotest.fail "accepted an unknown structure"
  | Error _ -> ()

let suite =
  ( "arch",
    [
      Alcotest.test_case "icodec round-trip: every form and opcode" `Quick
        test_roundtrip_covering;
      Alcotest.test_case "icodec round-trip: registry programs" `Quick
        test_roundtrip_registry;
      Alcotest.test_case "icodec decode is total" `Quick test_decode_total;
      Alcotest.test_case "istore mutants classified on both backends" `Slow
        test_mutants_classified_both_backends;
      Alcotest.test_case "cache is transparent fault-free" `Quick
        test_cache_transparent;
      Alcotest.test_case "flipped dirty bit loses a store" `Quick
        test_cache_dirty_flip_loses_store;
      Alcotest.test_case "flipped tag serves the wrong word" `Quick
        test_cache_tag_flip_serves_wrong_word;
      Alcotest.test_case "compiled backend rejects cache faults" `Quick
        test_compiled_rejects_cache_faults;
      Alcotest.test_case "per-structure counts: backends x jobs" `Slow
        test_structure_counts_invariant;
      Alcotest.test_case "campaign tag: structure suffix" `Quick
        test_campaign_tag_structure;
      Alcotest.test_case "spec codec carries the structure" `Quick
        test_spec_structure_roundtrip;
      Alcotest.test_case "structure names round-trip" `Quick
        test_structure_of_string;
    ] )
