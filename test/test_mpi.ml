(* The simulated MPI runtime: messaging, collectives, record/replay,
   and the demo programs. *)

let run_demo ?record ?replay ~size prog_ast =
  let prog = Compile.compile prog_ast in
  Runner.run ?record ?replay ~size prog

let result_of (b : Runner.bundle) rank =
  match App.parse_result b.Runner.results.(rank).Runner.result.Machine.output with
  | Some v -> v
  | None -> Alcotest.fail "rank printed no RESULT"

let test_ring_total () =
  let b = run_demo ~size:6 (Demo.ring ~rounds:4) in
  let expected = float_of_int (4 * 6 * 5 / 2) in
  for rank = 0 to 5 do
    Alcotest.(check (float 0.0)) "ring total on every rank" expected
      (result_of b rank)
  done

let test_ring_single_rank () =
  (* a ring of one rank sends to itself *)
  let b = run_demo ~size:1 (Demo.ring ~rounds:2) in
  Alcotest.(check (float 0.0)) "degenerate ring" 0.0 (result_of b 0)

let test_allreduce_converges_to_mean () =
  let b = run_demo ~size:8 (Demo.allreduce_converge ~iters:40) in
  for rank = 0 to 7 do
    Alcotest.(check (float 1e-6)) "converged to mean of 0..7" 3.5
      (result_of b rank)
  done

let test_jacobi_consistent_and_bounded () =
  let b = run_demo ~size:4 (Demo.halo_jacobi ~cells:6 ~iters:30) in
  let v = result_of b 0 in
  (* all ranks agree (it is an allreduce) and the sum is within the
     fixed boundary range *)
  for rank = 1 to 3 do
    Alcotest.(check (float 0.0)) "agreement" v (result_of b rank)
  done;
  Alcotest.(check bool) "bounded by boundary values" true (v > 0.0 && v < 24.0)

let test_jacobi_record_replay_identical () =
  let ast = Demo.halo_jacobi ~cells:6 ~iters:15 in
  let b1 = run_demo ~record:true ~size:4 ast in
  Alcotest.(check bool) "events recorded" true (b1.Runner.recorded <> []);
  let b2 = run_demo ~replay:(Array.of_list b1.Runner.recorded) ~size:4 ast in
  Alcotest.(check (float 0.0)) "replay reproduces the result"
    (result_of b1 0) (result_of b2 0)

let test_comm_direct_send_recv () =
  let comm = Comm.create ~size:2 () in
  Comm.send comm ~src:0 ~dest:1 ~tag:5 (Value.of_float 2.5);
  let v = Comm.recv comm ~rank:1 ~src:0 ~tag:5 in
  Alcotest.(check (float 0.0)) "payload" 2.5 (Value.to_float v)

let test_comm_fifo_per_channel () =
  let comm = Comm.create ~size:2 () in
  Comm.send comm ~src:0 ~dest:1 ~tag:1 (Value.of_float 1.0);
  Comm.send comm ~src:0 ~dest:1 ~tag:1 (Value.of_float 2.0);
  Alcotest.(check (float 0.0)) "first" 1.0
    (Value.to_float (Comm.recv comm ~rank:1 ~src:0 ~tag:1));
  Alcotest.(check (float 0.0)) "second" 2.0
    (Value.to_float (Comm.recv comm ~rank:1 ~src:0 ~tag:1))

let test_comm_rank_checks () =
  let comm = Comm.create ~size:2 () in
  Alcotest.(check bool) "bad dest" true
    (try Comm.send comm ~src:0 ~dest:7 ~tag:0 Value.zero; false
     with Comm.Comm_error _ -> true)

let test_hooks_wire_rank_and_size () =
  let comm = Comm.create ~size:3 () in
  let h = Comm.hooks comm ~rank:2 in
  Alcotest.(check int) "rank" 2 h.Machine.rank;
  Alcotest.(check int) "size" 3 h.Machine.size

let test_recv_without_runtime_traps () =
  let prog =
    let open Ast in
    Compile.compile
      (Helpers.main_program
         ~globals:[ DScalar ("x", Ty.F64) ]
         [ SAssign ("x", MpiRecv (i 0, i 0)) ])
  in
  match (Machine.run_plain prog).Machine.outcome with
  | Machine.Trapped _ -> ()
  | Machine.Finished | Machine.Budget_exceeded ->
      Alcotest.fail "expected a trap without an MPI runtime"

let test_allreduce_without_runtime_is_identity () =
  let prog =
    let open Ast in
    Compile.compile
      (Helpers.main_program
         ~globals:[ DScalar ("x", Ty.F64) ]
         [ SAssign ("x", MpiAllreduce (f 4.25)) ])
  in
  let r = Machine.run_plain prog in
  Alcotest.(check (float 0.0)) "identity on one rank" 4.25
    (Helpers.mem_float prog r "x")

let test_tracing_through_runner () =
  let prog = Compile.compile (Demo.allreduce_converge ~iters:5) in
  let b = Runner.run ~traced:true ~size:2 prog in
  Array.iter
    (fun (r : Runner.rank_result) ->
      Alcotest.(check bool) "per-rank trace collected" true (r.Runner.trace_len > 0))
    b.Runner.results

(* --- transport faults and the reliable layer ------------------------------ *)

let comm_error_of f =
  try
    ignore (f ());
    Alcotest.fail "expected Comm_error"
  with Comm.Comm_error { rank; peer; tag; reason = _ } -> (rank, peer, tag)

let test_recv_times_out_in_free_mode () =
  (* the satellite fix: a missing message must not hang the domain,
     even outside fault campaigns, and the error carries context *)
  let comm = Comm.create ~recv_timeout_s:0.15 ~size:2 () in
  let t0 = Unix.gettimeofday () in
  let rank, peer, tag =
    comm_error_of (fun () -> Comm.recv comm ~rank:1 ~src:0 ~tag:3)
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check int) "rank" 1 rank;
  Alcotest.(check int) "peer" 0 peer;
  Alcotest.(check int) "tag" 3 tag;
  Alcotest.(check bool) "deadline respected" true
    (elapsed >= 0.1 && elapsed < 2.0)

let test_drop_times_out_raw_but_resends_reliable () =
  let faults = { Comm.seed = 5; drop_p = 1.0; corrupt_p = 0.0; dup_p = 0.0 } in
  let raw = Comm.create ~faults ~recv_timeout_s:0.2 ~size:2 () in
  Comm.send raw ~src:0 ~dest:1 ~tag:1 (Value.of_float 8.0);
  ignore (comm_error_of (fun () -> Comm.recv raw ~rank:1 ~src:0 ~tag:1));
  Alcotest.(check bool) "raw transport dropped it" true
    ((Comm.stats raw).Comm.dropped > 0);
  let rel = Comm.create ~faults ~reliable:true ~recv_timeout_s:2.0 ~size:2 () in
  Comm.send rel ~src:0 ~dest:1 ~tag:1 (Value.of_float 8.0);
  Alcotest.(check (float 0.0)) "recovered payload" 8.0
    (Value.to_float (Comm.recv rel ~rank:1 ~src:0 ~tag:1));
  Alcotest.(check bool) "recovered by retransmission" true
    ((Comm.stats rel).Comm.resent > 0)

let test_corruption_caught_by_checksum_reliable () =
  let faults = { Comm.seed = 6; drop_p = 0.0; corrupt_p = 1.0; dup_p = 0.0 } in
  (* raw: the corrupted payload is delivered as-is *)
  let raw = Comm.create ~faults ~recv_timeout_s:0.5 ~size:2 () in
  Comm.send raw ~src:0 ~dest:1 ~tag:1 (Value.of_float 8.0);
  let got = Value.to_float (Comm.recv raw ~rank:1 ~src:0 ~tag:1) in
  Alcotest.(check bool) "raw transport delivers the corruption" true
    (got <> 8.0);
  (* reliable: the checksum disagrees, the frame is discarded, and the
     retransmit buffer supplies the clean payload *)
  let rel = Comm.create ~faults ~reliable:true ~recv_timeout_s:2.0 ~size:2 () in
  Comm.send rel ~src:0 ~dest:1 ~tag:1 (Value.of_float 8.0);
  Alcotest.(check (float 0.0)) "clean payload after resend" 8.0
    (Value.to_float (Comm.recv rel ~rank:1 ~src:0 ~tag:1));
  let s = Comm.stats rel in
  Alcotest.(check bool) "checksum failures counted" true
    (s.Comm.checksum_failures > 0);
  Alcotest.(check bool) "recovered by retransmission" true (s.Comm.resent > 0)

let test_duplicates_raw_vs_reliable () =
  let faults = { Comm.seed = 7; drop_p = 0.0; corrupt_p = 0.0; dup_p = 1.0 } in
  (* raw: both copies are delivered *)
  let raw = Comm.create ~faults ~recv_timeout_s:0.5 ~size:2 () in
  Comm.send raw ~src:0 ~dest:1 ~tag:1 (Value.of_float 3.0);
  Alcotest.(check (float 0.0)) "first copy" 3.0
    (Value.to_float (Comm.recv raw ~rank:1 ~src:0 ~tag:1));
  Alcotest.(check (float 0.0)) "second copy" 3.0
    (Value.to_float (Comm.recv raw ~rank:1 ~src:0 ~tag:1));
  (* reliable: the duplicate seqno is discarded, FIFO order survives *)
  let rel = Comm.create ~faults ~reliable:true ~recv_timeout_s:2.0 ~size:2 () in
  Comm.send rel ~src:0 ~dest:1 ~tag:1 (Value.of_float 1.0);
  Comm.send rel ~src:0 ~dest:1 ~tag:1 (Value.of_float 2.0);
  Alcotest.(check (float 0.0)) "first" 1.0
    (Value.to_float (Comm.recv rel ~rank:1 ~src:0 ~tag:1));
  Alcotest.(check (float 0.0)) "second" 2.0
    (Value.to_float (Comm.recv rel ~rank:1 ~src:0 ~tag:1));
  Alcotest.(check bool) "duplicates discarded" true
    ((Comm.stats rel).Comm.dup_discarded > 0)

let test_faulty_record_replay_reproduces () =
  (* drop faults are a pure function of (seed, src, dest, seqno), so a
     recorded faulty run replays to the same results and fault counts *)
  let ast = Demo.ring ~rounds:3 in
  let prog = Compile.compile ast in
  let faults = { Comm.seed = 3; drop_p = 0.3; corrupt_p = 0.2; dup_p = 0.2 } in
  let b1 =
    Runner.run ~record:true ~faults ~reliable:true ~recv_timeout_s:5.0
      ~size:4 prog
  in
  Alcotest.(check bool) "receives recorded" true (b1.Runner.recorded <> []);
  Alcotest.(check bool) "faults actually fired" true
    (b1.Runner.comm_stats.Comm.dropped
     + b1.Runner.comm_stats.Comm.corrupted
     + b1.Runner.comm_stats.Comm.duplicated
     > 0);
  let b2 =
    Runner.run
      ~replay:(Array.of_list b1.Runner.recorded)
      ~faults ~reliable:true ~recv_timeout_s:5.0 ~size:4 prog
  in
  for rank = 0 to 3 do
    Alcotest.(check (float 0.0)) "replay reproduces every rank"
      (result_of b1 rank) (result_of b2 rank)
  done;
  Alcotest.(check int) "same drops"
    b1.Runner.comm_stats.Comm.dropped b2.Runner.comm_stats.Comm.dropped;
  Alcotest.(check int) "same corruptions"
    b1.Runner.comm_stats.Comm.corrupted b2.Runner.comm_stats.Comm.corrupted

let test_wrapped_app_drop_recovers_on_two_ranks () =
  (* the acceptance scenario: a dropped MPI message on a 2-rank run
     recovers via resend instead of hanging *)
  let app = Option.get (Registry.find_opt "CG") in
  let prog = Recovery_eval.wrapped_program app in
  let verify = App.verify app in
  let faults = { Comm.seed = 1; drop_p = 1.0; corrupt_p = 0.0; dup_p = 0.0 } in
  let raw =
    Runner.run ~faults ~recv_timeout_s:0.3 ~size:2 prog
  in
  Alcotest.(check bool) "raw transport crashes the bundle" true
    (Runner.classify ~verify raw = Campaign.Crashed);
  Alcotest.(check bool) "some rank reports the comm failure" true
    (Array.exists (fun r -> r.Runner.failure <> None) raw.Runner.results);
  let rel =
    Runner.run ~faults ~reliable:true ~recv_timeout_s:5.0 ~size:2 prog
  in
  Alcotest.(check bool) "reliable transport recovers the bundle" true
    (Runner.classify ~verify rel = Campaign.Recovered);
  Alcotest.(check bool) "via retransmission" true
    (rel.Runner.comm_stats.Comm.resent > 0)

let test_rank_crash_poisons_peers () =
  (* a rank that dies of a VM trap must not strand its peers until
     their recv deadlines: the runner poisons the communicator *)
  let app = Option.get (Registry.find_opt "CG") in
  let prog = Recovery_eval.wrapped_program app in
  let _, trace = App.trace app in
  let target = Campaign.whole_program_target prog trace in
  (* find a crashing fault (serially) and inject it into rank 0 *)
  let clean = Machine.run_plain prog in
  let budget = 20 * clean.Machine.instructions in
  let fault = ref None in
  let index = ref 0 in
  while !fault = None && !index < 100 do
    let f = Campaign.sample_fault (Rng.derive ~seed:4 ~index:!index) target in
    incr index;
    match
      (Machine.run prog { Machine.default_config with fault = Some f; budget })
        .Machine.outcome
    with
    | Machine.Trapped _ -> fault := Some f
    | _ -> ()
  done;
  let f = Option.get !fault in
  let t0 = Unix.gettimeofday () in
  let b =
    Runner.run ~fault:(0, f) ~recv_timeout_s:30.0 ~budget ~size:2 prog
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "bundle crashed" true
    (Runner.classify ~verify:(App.verify app) b = Campaign.Crashed);
  Alcotest.(check bool) "peer aborted promptly, not at its deadline" true
    (elapsed < 10.0)

let suite =
  ( "mpi",
    [
      Alcotest.test_case "ring total" `Quick test_ring_total;
      Alcotest.test_case "ring of one" `Quick test_ring_single_rank;
      Alcotest.test_case "allreduce convergence" `Quick
        test_allreduce_converges_to_mean;
      Alcotest.test_case "jacobi agreement" `Quick test_jacobi_consistent_and_bounded;
      Alcotest.test_case "record/replay" `Quick test_jacobi_record_replay_identical;
      Alcotest.test_case "direct send/recv" `Quick test_comm_direct_send_recv;
      Alcotest.test_case "per-channel FIFO" `Quick test_comm_fifo_per_channel;
      Alcotest.test_case "rank checks" `Quick test_comm_rank_checks;
      Alcotest.test_case "hooks rank/size" `Quick test_hooks_wire_rank_and_size;
      Alcotest.test_case "recv without runtime" `Quick test_recv_without_runtime_traps;
      Alcotest.test_case "allreduce identity" `Quick
        test_allreduce_without_runtime_is_identity;
      Alcotest.test_case "tracing through runner" `Quick test_tracing_through_runner;
      Alcotest.test_case "recv timeout in Free mode" `Quick
        test_recv_times_out_in_free_mode;
      Alcotest.test_case "drop: raw times out, reliable resends" `Quick
        test_drop_times_out_raw_but_resends_reliable;
      Alcotest.test_case "corruption caught by checksum" `Quick
        test_corruption_caught_by_checksum_reliable;
      Alcotest.test_case "duplicates raw vs reliable" `Quick
        test_duplicates_raw_vs_reliable;
      Alcotest.test_case "faulty record/replay" `Quick
        test_faulty_record_replay_reproduces;
      Alcotest.test_case "2-rank drop recovers via resend" `Slow
        test_wrapped_app_drop_recovers_on_two_ranks;
      Alcotest.test_case "rank crash poisons peers" `Slow
        test_rank_crash_poisons_peers;
    ] )
