(* Differential identity of the compiled execution backend.

   The compiled backend must be bit-identical to the interpreter on
   the fixed seq contract: same outcome, output, final memory,
   instruction count, iteration count, and fault firing — for every
   registry program, its optimized (@opt:all) and hardened (@all)
   variants, fault-free and under each fault kind at sampled seqs.
   Campaign counts must likewise be identical across backends, pinned
   here on the historical 300-trial CG campaign. *)

let outcome_str = function
  | Machine.Finished -> "finished"
  | Machine.Trapped m -> "trapped: " ^ m
  | Machine.Budget_exceeded -> "budget"

(* every registry program in three forms: as baked, optimized by the
   full pipeline, hardened by the full pipeline *)
let programs () : (string * Prog.t * int) list =
  List.concat_map
    (fun (a : App.t) ->
      let p = App.program a in
      let m = App.iter_mark a in
      [
        (a.App.name, p, m);
        (a.App.name ^ "@opt:all", Opt.transform Opt.all p, m);
        (a.App.name ^ "@all", Harden.transform Passes.all p, m);
      ])
    Registry.all

let run_both (label : string) (prog : Prog.t) (cfg : Machine.config) =
  let ri = Machine.run prog cfg in
  let rc = Compiled.run (Compiled.plan_for prog) cfg in
  Alcotest.(check string) (label ^ " outcome")
    (outcome_str ri.Machine.outcome)
    (outcome_str rc.Machine.outcome);
  Alcotest.(check string) (label ^ " output") ri.Machine.output
    rc.Machine.output;
  Alcotest.(check int) (label ^ " instructions") ri.Machine.instructions
    rc.Machine.instructions;
  Alcotest.(check int) (label ^ " iterations") ri.Machine.iterations
    rc.Machine.iterations;
  Alcotest.(check bool) (label ^ " memory") true
    (ri.Machine.mem = rc.Machine.mem)

(* one fault of each kind, at deterministic seqs spread over the run *)
let sample_faults (prog : Prog.t) ~(instructions : int) : Machine.fault list =
  let n = max 2 instructions in
  let at k = k * (n - 1) / 7 in
  let addr = prog.Prog.mem_size / 2 in
  [
    Machine.Flip_write { seq = at 1; bit = 5 };
    Machine.Flip_write { seq = at 6; bit = 62 };
    Machine.Flip_mem { seq = at 3; addr; bit = 17 };
    Machine.Mask_write
      { seq = at 4; and_mask = -1L; or_mask = 0L; xor_mask = 0xF0L };
    Machine.Mask_mem
      {
        seq = at 5;
        addr;
        and_mask = Int64.lognot 0xFFL;
        or_mask = 1L;
        xor_mask = 0L;
      };
  ]

let test_identity_all_programs () =
  List.iter
    (fun (name, prog, iter_mark) ->
      let base = { Machine.default_config with iter_mark } in
      let clean = Machine.run prog base in
      run_both (name ^ " fault-free") prog base;
      let budget = 20 * max 1 clean.Machine.instructions in
      List.iter
        (fun fault ->
          run_both
            (Printf.sprintf "%s %s" name (Machine.fault_to_string fault))
            prog
            { base with fault = Some fault; budget })
        (sample_faults prog ~instructions:clean.Machine.instructions))
    (programs ())

(* the historical 300-trial CG campaign: counts must be identical
   across backends AND equal to the pinned historical numbers *)
let test_campaign_counts_identical () =
  let app = Registry.find "CG" in
  let clean, trace = App.trace app in
  let prog = App.program app in
  let target = Campaign.whole_program_target prog trace in
  let run backend =
    Campaign.run prog ~verify:(App.verify app)
      ~clean_instructions:clean.Machine.instructions
      ~cfg:{ Campaign.default_config with max_trials = Some 300 }
      ~exec:{ Campaign.default_exec with backend }
      target
  in
  let ci = run Backend.Interp in
  let cc = run Backend.Compiled in
  Alcotest.(check int) "success equal" ci.Campaign.success cc.Campaign.success;
  Alcotest.(check int) "failed equal" ci.Campaign.failed cc.Campaign.failed;
  Alcotest.(check int) "crashed equal" ci.Campaign.crashed cc.Campaign.crashed;
  Alcotest.(check int) "trials equal" ci.Campaign.trials cc.Campaign.trials;
  (* and both match the numbers pinned since the campaign was first
     recorded — the backend cannot move them *)
  Alcotest.(check int) "success pinned" 122 cc.Campaign.success;
  Alcotest.(check int) "failed pinned" 89 cc.Campaign.failed;
  Alcotest.(check int) "crashed pinned" 89 cc.Campaign.crashed

(* unsupported configurations: Compiled.run refuses, Backend.runner
   falls back to the interpreter so callers never lose functionality *)
let test_fallback () =
  let app = Registry.find "IS" in
  let prog = App.program app in
  Alcotest.check_raises "Compiled.run refuses a traced config"
    (Invalid_argument
       "Compiled.run: config needs the interpreter (trace, sink, MPI hooks, \
        recovery, or a cache fault attached)")
    (fun () ->
      ignore
        (Compiled.run (Compiled.plan_for prog)
           { Machine.default_config with trace = Some (Trace.create ()) }));
  Alcotest.(check bool) "supported: plain" true
    (Compiled.supported Machine.default_config);
  Alcotest.(check bool) "supported: traced" false
    (Compiled.supported
       { Machine.default_config with trace = Some (Trace.create ()) });
  Alcotest.(check bool) "supported: recovery" false
    (Compiled.supported
       { Machine.default_config with
         recover = Some Machine.default_recover
       });
  (* the backend switch still produces a trace by falling back *)
  let t = Trace.create () in
  let r =
    Backend.run Backend.Compiled prog
      { Machine.default_config with trace = Some t }
  in
  Alcotest.(check bool) "fallback run finished" true
    (r.Machine.outcome = Machine.Finished);
  Alcotest.(check bool) "fallback produced events" true (Trace.length t > 0)

(* the plan cache: same program, physically or structurally, yields the
   same plan *)
let test_plan_cache () =
  let prog = App.program (Registry.find "IS") in
  let p1 = Compiled.plan_for prog in
  let p2 = Compiled.plan_for prog in
  Alcotest.(check bool) "physically shared" true (p1 == p2);
  Alcotest.(check bool) "remembers its program" true
    (Compiled.prog p1 == prog)

let suite =
  ( "backend",
    [
      Alcotest.test_case "compiled = interpreter: registry + variants" `Slow
        test_identity_all_programs;
      Alcotest.test_case "campaign counts identical across backends" `Slow
        test_campaign_counts_identical;
      Alcotest.test_case "unsupported configs fall back" `Quick test_fallback;
      Alcotest.test_case "plan cache" `Quick test_plan_cache;
    ] )
