(* Opcode semantics, including traps and the masking behaviours the
   patterns rely on (shifting, truncation). *)

let vi = Value.of_int
let vf = Value.of_float
let eb = Op.eval_bin
let eu = Op.eval_un

let test_int_arith () =
  Alcotest.(check int64) "add" 7L (eb Op.Add (vi 3) (vi 4));
  Alcotest.(check int64) "sub" (-1L) (eb Op.Sub (vi 3) (vi 4));
  Alcotest.(check int64) "mul" 12L (eb Op.Mul (vi 3) (vi 4));
  Alcotest.(check int64) "div" 2L (eb Op.Div (vi 9) (vi 4));
  Alcotest.(check int64) "div negative" (-2L) (eb Op.Div (vi (-9)) (vi 4));
  Alcotest.(check int64) "rem" 1L (eb Op.Rem (vi 9) (vi 4))

let test_div_by_zero_traps () =
  Alcotest.check_raises "div" (Op.Trap "integer division by zero") (fun () ->
      ignore (eb Op.Div (vi 1) (vi 0)));
  Alcotest.check_raises "rem" (Op.Trap "integer remainder by zero") (fun () ->
      ignore (eb Op.Rem (vi 1) (vi 0)))

let test_float_arith () =
  Alcotest.(check (float 1e-12)) "fadd" 0.75 (Value.to_float (eb Op.Fadd (vf 0.5) (vf 0.25)));
  Alcotest.(check (float 1e-12)) "fmul" 0.125 (Value.to_float (eb Op.Fmul (vf 0.5) (vf 0.25)));
  (* float division by zero is IEEE infinity, not a trap *)
  Alcotest.(check bool) "fdiv inf" true
    (Float.is_integer (Value.to_float (eb Op.Fdiv (vf 1.0) (vf 0.0))) = false
     || Value.to_float (eb Op.Fdiv (vf 1.0) (vf 0.0)) = Float.infinity)

let test_shifts () =
  Alcotest.(check int64) "shl" 40L (eb Op.Shl (vi 5) (vi 3));
  Alcotest.(check int64) "lshr" 5L (eb Op.Lshr (vi 40) (vi 3));
  Alcotest.(check int64) "ashr negative" (-1L) (eb Op.Ashr (vi (-1)) (vi 5));
  (* shift amounts are taken mod 64 like hardware *)
  Alcotest.(check int64) "shift mod 64" (eb Op.Shl (vi 1) (vi 1))
    (eb Op.Shl (vi 1) (vi 65))

let test_shift_masks_low_bits () =
  (* the Shifting pattern: a flip below the shift amount is erased *)
  let key = vi 0b1011000 in
  let flipped = Value.flip_bit key 2 in
  Alcotest.(check int64) "same bucket" (eb Op.Ashr key (vi 4))
    (eb Op.Ashr flipped (vi 4))

let test_compares () =
  Alcotest.(check int64) "lt true" 1L (eb Op.Lt (vi 1) (vi 2));
  Alcotest.(check int64) "lt false" 0L (eb Op.Lt (vi 2) (vi 1));
  Alcotest.(check int64) "eq" 1L (eb Op.Eq (vi 5) (vi 5));
  Alcotest.(check int64) "feq" 1L (eb Op.Feq (vf 0.5) (vf 0.5));
  Alcotest.(check int64) "fgt" 1L (eb Op.Fgt (vf 1.5) (vf 0.5))

let test_minmax () =
  Alcotest.(check int64) "imin" 3L (eb Op.Imin (vi 3) (vi 9));
  Alcotest.(check int64) "imax" 9L (eb Op.Imax (vi 3) (vi 9));
  Alcotest.(check (float 0.0)) "fmin" 1.5 (Value.to_float (eb Op.Fmin (vf 1.5) (vf 2.5)))

let test_trunc32 () =
  Alcotest.(check int64) "small unchanged" 42L (eu Op.Trunc32 (vi 42));
  Alcotest.(check int64) "high bits dropped" 1L
    (eu Op.Trunc32 (Int64.add 1L (Int64.shift_left 1L 32)));
  Alcotest.(check int64) "sign extension" (-1L)
    (eu Op.Trunc32 (vi 0xFFFFFFFF))

let test_trunc32_masks_high_flip () =
  (* the Truncation pattern: a flip above bit 31 is erased by (int) *)
  let x = vi 123 in
  let flipped = Value.flip_bit x 40 in
  Alcotest.(check int64) "masked" (eu Op.Trunc32 x) (eu Op.Trunc32 flipped)

let test_conversions () =
  Alcotest.(check (float 0.0)) "sitofp" 5.0 (Value.to_float (eu Op.FloatOfInt (vi 5)));
  Alcotest.(check int64) "fptosi truncates" 2L (eu Op.IntOfFloat (vf 2.9));
  Alcotest.(check int64) "fptosi negative" (-2L) (eu Op.IntOfFloat (vf (-2.9)));
  Alcotest.check_raises "fptosi nan" (Op.Trap "int of NaN") (fun () ->
      ignore (eu Op.IntOfFloat (vf Float.nan)))

let test_f32round () =
  (* binary32 rounding loses low mantissa bits *)
  let x = 1.0 +. 1e-12 in
  Alcotest.(check (float 0.0)) "rounded" 1.0 (Value.to_float (eu Op.F32round (vf x)));
  Alcotest.(check (float 0.0)) "exact survives" 0.5 (Value.to_float (eu Op.F32round (vf 0.5)))

let test_sqrt_trap () =
  Alcotest.check_raises "sqrt negative" (Op.Trap "sqrt of negative value")
    (fun () -> ignore (eu Op.Fsqrt (vf (-1.0))));
  Alcotest.(check (float 1e-12)) "sqrt" 3.0 (Value.to_float (eu Op.Fsqrt (vf 9.0)))

let test_trig () =
  Alcotest.(check (float 1e-12)) "sin 0" 0.0 (Value.to_float (eu Op.Fsin (vf 0.0)));
  Alcotest.(check (float 1e-12)) "cos 0" 1.0 (Value.to_float (eu Op.Fcos (vf 0.0)))

let test_classifiers () =
  Alcotest.(check bool) "fadd is float" true (Op.bin_is_float Op.Fadd);
  Alcotest.(check bool) "add not float" false (Op.bin_is_float Op.Add);
  Alcotest.(check bool) "lt is compare" true (Op.bin_is_compare Op.Lt);
  Alcotest.(check bool) "shl is shift" true (Op.bin_is_shift Op.Shl);
  Alcotest.(check bool) "trunc32 is truncation" true (Op.un_is_truncation Op.Trunc32);
  Alcotest.(check bool) "f32round is truncation" true (Op.un_is_truncation Op.F32round);
  Alcotest.(check bool) "fneg not truncation" false (Op.un_is_truncation Op.Fneg)

(* properties *)

let prop_shift_roundtrip =
  QCheck.Test.make ~count:500 ~name:"shl then lshr recovers low bits"
    QCheck.(pair (int_bound 0xFFFF) (int_bound 15))
    (fun (x, s) ->
      let v = vi x in
      let shifted = eb Op.Shl v (vi s) in
      Int64.equal (eb Op.Lshr shifted (vi s)) v)

let prop_low_flip_shifted_out =
  QCheck.Test.make ~count:500 ~name:"flip below shift amount never changes result"
    QCheck.(triple (int_bound 100000) (int_range 1 20) (int_bound 19))
    (fun (x, s, b) ->
      QCheck.assume (b < s);
      let v = vi x in
      Int64.equal (eb Op.Lshr v (vi s)) (eb Op.Lshr (Value.flip_bit v b) (vi s)))

let prop_trunc32_idempotent =
  QCheck.Test.make ~count:500 ~name:"trunc32 is idempotent"
    QCheck.int64
    (fun v -> Int64.equal (eu Op.Trunc32 v) (eu Op.Trunc32 (eu Op.Trunc32 v)))

let prop_f32round_idempotent =
  QCheck.Test.make ~count:500 ~name:"f32round is idempotent"
    QCheck.float
    (fun x ->
      let v = vf x in
      let once = eu Op.F32round v in
      let twice = eu Op.F32round once in
      Int64.equal once twice
      || (Float.is_nan (Value.to_float once) && Float.is_nan (Value.to_float twice)))

let prop_minmax_bounds =
  QCheck.Test.make ~count:500 ~name:"imin <= imax"
    QCheck.(pair int64 int64)
    (fun (a, b) ->
      Int64.compare (eb Op.Imin a b) (eb Op.Imax a b) <= 0)

(* the pre-dispatched evaluators the compiled backend resolves at
   closure-compilation time must be bit-identical to the direct
   evaluators, traps included, on every opcode *)
let all_bins =
  [
    Op.Add; Op.Sub; Op.Mul; Op.Div; Op.Rem; Op.And; Op.Or; Op.Xor; Op.Shl;
    Op.Lshr; Op.Ashr; Op.Fadd; Op.Fsub; Op.Fmul; Op.Fdiv; Op.Eq; Op.Ne;
    Op.Lt; Op.Le; Op.Gt; Op.Ge; Op.Feq; Op.Fne; Op.Flt; Op.Fle; Op.Fgt;
    Op.Fge; Op.Imin; Op.Imax; Op.Fmin; Op.Fmax;
  ]

let all_uns =
  [
    Op.Neg; Op.Not; Op.Fneg; Op.Fabs; Op.Fsqrt; Op.Fsin; Op.Fcos; Op.Trunc32;
    Op.FloatOfInt; Op.IntOfFloat; Op.F32round;
  ]

(* operands drawn both as raw bit patterns and as encoded small floats,
   so the float opcodes see normal values as well as reinterpretations *)
let gen_operand =
  QCheck.Gen.(
    oneof
      [
        ui64;
        map (fun k -> Value.of_int k) (int_range (-1000) 1000);
        map (fun x -> Value.of_float (Float.of_int x /. 16.0))
          (int_range (-4096) 4096);
      ])

let operand = QCheck.make ~print:Int64.to_string gen_operand

let outcome_of f = try Ok (f ()) with Op.Trap m -> Error m

let prop_bin_fn_agrees =
  QCheck.Test.make ~count:1000 ~name:"bin_fn agrees with eval_bin"
    (QCheck.pair operand operand)
    (fun (a, b) ->
      List.for_all
        (fun op ->
          let g = Op.bin_fn op in
          outcome_of (fun () -> Op.eval_bin op a b)
          = outcome_of (fun () -> g a b))
        all_bins)

let prop_un_fn_agrees =
  QCheck.Test.make ~count:1000 ~name:"un_fn agrees with eval_un" operand
    (fun a ->
      List.for_all
        (fun op ->
          let g = Op.un_fn op in
          outcome_of (fun () -> Op.eval_un op a)
          = outcome_of (fun () -> g a))
        all_uns)

let suite =
  ( "op",
    [
      Alcotest.test_case "integer arithmetic" `Quick test_int_arith;
      Alcotest.test_case "division by zero traps" `Quick test_div_by_zero_traps;
      Alcotest.test_case "float arithmetic" `Quick test_float_arith;
      Alcotest.test_case "shifts" `Quick test_shifts;
      Alcotest.test_case "shift masks low bits" `Quick test_shift_masks_low_bits;
      Alcotest.test_case "comparisons" `Quick test_compares;
      Alcotest.test_case "min/max" `Quick test_minmax;
      Alcotest.test_case "trunc32" `Quick test_trunc32;
      Alcotest.test_case "trunc32 masks high flip" `Quick test_trunc32_masks_high_flip;
      Alcotest.test_case "conversions" `Quick test_conversions;
      Alcotest.test_case "f32round" `Quick test_f32round;
      Alcotest.test_case "sqrt trap" `Quick test_sqrt_trap;
      Alcotest.test_case "trig" `Quick test_trig;
      Alcotest.test_case "classifiers" `Quick test_classifiers;
      QCheck_alcotest.to_alcotest prop_shift_roundtrip;
      QCheck_alcotest.to_alcotest prop_low_flip_shifted_out;
      QCheck_alcotest.to_alcotest prop_trunc32_idempotent;
      QCheck_alcotest.to_alcotest prop_f32round_idempotent;
      QCheck_alcotest.to_alcotest prop_minmax_bounds;
      QCheck_alcotest.to_alcotest prop_bin_fn_agrees;
      QCheck_alcotest.to_alcotest prop_un_fn_agrees;
    ] )
