(* Pattern definitions, static detection, and pattern rates. *)

open Helpers

let test_pattern_catalog () =
  Alcotest.(check int) "six patterns" 6 (List.length Pattern.all);
  List.iter
    (fun p ->
      Alcotest.(check bool) "short name" true (String.length (Pattern.to_string p) > 0);
      Alcotest.(check bool) "description" true (String.length (Pattern.describe p) > 0))
    Pattern.all

let test_mask_kind_mapping () =
  Alcotest.(check bool) "shift" true
    (Pattern.of_mask_kind Acl.Shift_mask = Some Pattern.Shifting);
  Alcotest.(check bool) "trunc" true
    (Pattern.of_mask_kind Acl.Trunc_mask = Some Pattern.Truncation);
  Alcotest.(check bool) "print" true
    (Pattern.of_mask_kind Acl.Print_mask = Some Pattern.Truncation);
  Alcotest.(check bool) "cond" true
    (Pattern.of_mask_kind Acl.Cond_mask = Some Pattern.Conditional_statement);
  Alcotest.(check bool) "other unmapped" true
    (Pattern.of_mask_kind Acl.Other_mask = None);
  Alcotest.(check bool) "overwrite" true
    (Pattern.of_death_cause Acl.Overwritten = Pattern.Data_overwriting);
  Alcotest.(check bool) "dead" true
    (Pattern.of_death_cause Acl.Dead = Pattern.Dead_corrupted_locations)

(* --- static detection --------------------------------------------------- *)

let static_counts body globals =
  let prog = compile (main_program ~globals body) in
  Static_detect.analyze prog

let test_static_shift_sites () =
  let r =
    let open Ast in
    static_counts
      [ SAssign ("x", (v "x" >> i 3) + (v "x" << i 1)) ]
      [ DScalar ("x", Ty.I64) ]
  in
  Alcotest.(check int) "two shifts" 2 (List.length r.Static_detect.shifts)

let test_static_conditionals () =
  let r =
    let open Ast in
    static_counts
      [
        SIf (v "x" > i 0, [ SAssign ("x", i 1) ], []);
        SWhile (v "x" > i 5, [ SAssign ("x", v "x" - i 1) ]);
      ]
      [ DScalar ("x", Ty.I64) ]
  in
  (* if + while test = 2 branch sites (loop branches included) *)
  Alcotest.(check bool) "conditional sites" true
    (List.length r.Static_detect.conditionals >= 2)

let test_static_truncations () =
  let r =
    let open Ast in
    static_counts
      [
        SAssign ("x", trunc32 (v "x"));
        SAssign ("y", f32 (v "y"));
        SPrint ("%12.6e\n", [ v "y" ]);
        SPrint ("%d\n", [ v "x" ]);
      ]
      [ DScalar ("x", Ty.I64); DScalar ("y", Ty.F64) ]
  in
  (* trunc32 + f32 + the precision-limited float print; the %d print
     does not truncate *)
  Alcotest.(check int) "three truncation sites" 3
    (List.length r.Static_detect.truncations)

let test_static_repeated_addition_positive () =
  let r =
    let open Ast in
    static_counts
      [
        SFor
          ( "j",
            i 0,
            i 4,
            [
              SStore ("u", [ v "j" ], idx1 "u" (v "j") + idx1 "w" (v "j"));
            ] );
      ]
      [ DArr ("u", Ty.F64, [ 4 ]); DArr ("w", Ty.F64, [ 4 ]) ]
  in
  Alcotest.(check int) "self accumulation found" 1
    (List.length r.Static_detect.repeated_adds)

let test_static_repeated_addition_negative () =
  let r =
    let open Ast in
    static_counts
      [
        SFor
          ( "j",
            i 0,
            i 4,
            [
              (* not self-accumulating: u <- w + w *)
              SStore ("u", [ v "j" ], idx1 "w" (v "j") + idx1 "w" (v "j"));
            ] );
      ]
      [ DArr ("u", Ty.F64, [ 4 ]); DArr ("w", Ty.F64, [ 4 ]) ]
  in
  Alcotest.(check int) "no self accumulation" 0
    (List.length r.Static_detect.repeated_adds)

(* The accumulation is parked in a scalar temporary and the store sits
   in a different basic block (an [if] intervenes): invisible to a
   single-statement backward scan, found by the reaching-definitions
   slicer tracing the unique store into [t]'s word. *)
let test_static_repeated_addition_cross_block () =
  let r =
    let open Ast in
    static_counts
      [
        SFor
          ( "j",
            i 0,
            i 4,
            [
              SAssign ("t", idx1 "u" (v "j") + idx1 "w" (v "j"));
              SIf (v "j" % i 2 = i 0, [ SAssign ("flag", i 1) ], []);
              SStore ("u", [ v "j" ], v "t");
            ] );
      ]
      [
        DArr ("u", Ty.F64, [ 4 ]);
        DArr ("w", Ty.F64, [ 4 ]);
        DScalar ("t", Ty.F64);
        DScalar ("flag", Ty.I64);
      ]
  in
  Alcotest.(check int) "temp-routed accumulation found" 1
    (List.length r.Static_detect.repeated_adds)

(* Rebasing the slicer on reaching definitions must not lose any site
   the old single-statement scan found.  Baselines measured with the
   pre-rebase detector. *)
let test_static_repeated_adds_registry_parity () =
  let baseline =
    [
      ("CG", 13); ("MG", 2); ("LU", 3); ("BT", 4); ("IS", 0); ("DC", 0);
      ("SP", 6); ("FT", 2); ("KMEANS", 3); ("LULESH", 4);
    ]
  in
  List.iter
    (fun (app : App.t) ->
      let want = List.assoc app.App.name baseline in
      let r = Static_detect.analyze (App.program app) in
      let got = List.length r.Static_detect.repeated_adds in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %d sites >= baseline %d" app.App.name got want)
        true (got >= want))
    Registry.all

let test_static_overwrites_are_stores () =
  let r =
    let open Ast in
    static_counts
      [ SAssign ("x", i 1); SAssign ("x", i 2) ]
      [ DScalar ("x", Ty.I64) ]
  in
  Alcotest.(check int) "store sites" 2 (List.length r.Static_detect.overwrites)

let test_format_truncates () =
  Alcotest.(check bool) "%12.6e" true (Static_detect.format_truncates "%12.6e");
  Alcotest.(check bool) "%.3f" true (Static_detect.format_truncates "x=%.3f");
  Alcotest.(check bool) "%e bare" false (Static_detect.format_truncates "%e");
  Alcotest.(check bool) "%d" false (Static_detect.format_truncates "%d");
  Alcotest.(check bool) "plain" false (Static_detect.format_truncates "hello")

let test_format_truncates_edge_cases () =
  (* %% is a literal percent, not a directive *)
  Alcotest.(check bool) "%% literal" false
    (Static_detect.format_truncates "100%%");
  Alcotest.(check bool) "%% then precise float" true
    (Static_detect.format_truncates "%% %.2f");
  (* a width alone pads, it does not drop precision *)
  Alcotest.(check bool) "width-only %12f" false
    (Static_detect.format_truncates "%12f");
  Alcotest.(check bool) "width-only %8e" false
    (Static_detect.format_truncates "val %8e end");
  (* scanning continues past a non-truncating float directive *)
  Alcotest.(check bool) "%f then %.3f" true
    (Static_detect.format_truncates "%f %.3f");
  Alcotest.(check bool) "%e then %.6e" true
    (Static_detect.format_truncates "a=%e b=%.6e");
  (* multiple directives, none truncating *)
  Alcotest.(check bool) "%d %f %e" false
    (Static_detect.format_truncates "%d %f %e");
  (* precision on an integer directive is not float truncation *)
  Alcotest.(check bool) "%.3d" false (Static_detect.format_truncates "%.3d");
  (* trailing bare % *)
  Alcotest.(check bool) "trailing %" false (Static_detect.format_truncates "x%")

let test_static_count_api () =
  let r =
    let open Ast in
    static_counts
      [ SAssign ("x", v "x" >> i 1) ]
      [ DScalar ("x", Ty.I64) ]
  in
  Alcotest.(check int) "count shifting" 1
    (Static_detect.count r Pattern.Shifting);
  Alcotest.(check int) "DCL static is zero" 0
    (Static_detect.count r Pattern.Dead_corrupted_locations)

(* --- rates ---------------------------------------------------------------- *)

let test_rates_on_shift_heavy_program () =
  let prog =
    let open Ast in
    compile
      (main_program
         ~globals:[ DScalar ("x", Ty.I64); DScalar ("acc", Ty.I64) ]
         [
           SAssign ("x", i 12345);
           SAssign ("acc", i 0);
           SFor
             ( "j",
               i 0,
               i 20,
               [ SAssign ("acc", v "acc" + (v "x" >> v "j")) ] );
           SPrint ("RESULT %d\n", [ v "acc" ]);
         ])
  in
  let _, t = run_traced prog in
  let rates = Rates.compute t (Access.build t) in
  Alcotest.(check bool) "shift rate positive" true (rates.Rates.shift > 0.0);
  Alcotest.(check bool) "condition rate positive (loop tests)" true
    (rates.Rates.condition > 0.0);
  Alcotest.(check bool) "no truncation" true (rates.Rates.truncation = 0.0)

let test_rates_repeated_addition_dynamic () =
  let prog =
    let open Ast in
    compile
      (main_program
         ~globals:[ DArr ("u", Ty.F64, [ 8 ]) ]
         [
           SFor
             ( "j",
               i 0,
               i 8,
               [ SStore ("u", [ v "j" ], idx1 "u" (v "j") + f 1.0) ] );
         ])
  in
  let _, t = run_traced prog in
  let rates = Rates.compute t (Access.build t) in
  Alcotest.(check bool) "repeated additions detected" true
    (rates.Rates.repeated_addition > 0.0)

let test_rates_vector_and_names () =
  let _, t = run_traced (compile (loop_program ~iters:2)) in
  let rates = Rates.compute t (Access.build t) in
  let vec = Rates.to_vector rates in
  Alcotest.(check int) "six features" 6 (Array.length vec);
  Alcotest.(check int) "six names" 6 (Array.length Rates.feature_names);
  Array.iter
    (fun x -> Alcotest.(check bool) "finite nonneg" true (x >= 0.0 && Float.is_finite x))
    vec;
  List.iter
    (fun p ->
      Alcotest.(check bool) "get matches vector" true
        (Array.exists (fun x -> x = Rates.get rates p) vec))
    Pattern.all

let test_rates_overwrite_high_for_loops () =
  let _, t = run_traced (compile (loop_program ~iters:10)) in
  let rates = Rates.compute t (Access.build t) in
  (* loop-heavy code overwrites registers and counters constantly *)
  Alcotest.(check bool) "overwrite rate substantial" true
    (rates.Rates.overwrite > 0.1)

(* --- dynamic pattern summaries ------------------------------------------- *)

let test_dynamic_detect_merge () =
  let rp rid p n : Dynamic_detect.region_patterns =
    { Dynamic_detect.rid; counts = [ (p, n) ]; lines = [ (p, [ 1 ]) ] }
  in
  let merged =
    Dynamic_detect.merge
      [
        [ rp 0 Pattern.Shifting 2 ];
        [ rp 0 Pattern.Shifting 3; rp 1 Pattern.Truncation 1 ];
      ]
  in
  Alcotest.(check int) "two regions" 2 (List.length merged);
  let r0 = List.find (fun (r : Dynamic_detect.region_patterns) -> r.rid = 0) merged in
  Alcotest.(check bool) "counts summed" true
    (List.assoc Pattern.Shifting r0.Dynamic_detect.counts = 5);
  Alcotest.(check bool) "found" true (Dynamic_detect.found r0 Pattern.Shifting);
  Alcotest.(check bool) "not found" false (Dynamic_detect.found r0 Pattern.Truncation)

let suite =
  ( "patterns",
    [
      Alcotest.test_case "catalog" `Quick test_pattern_catalog;
      Alcotest.test_case "mask kind mapping" `Quick test_mask_kind_mapping;
      Alcotest.test_case "static shifts" `Quick test_static_shift_sites;
      Alcotest.test_case "static conditionals" `Quick test_static_conditionals;
      Alcotest.test_case "static truncations" `Quick test_static_truncations;
      Alcotest.test_case "static repeated addition +" `Quick
        test_static_repeated_addition_positive;
      Alcotest.test_case "static repeated addition -" `Quick
        test_static_repeated_addition_negative;
      Alcotest.test_case "static repeated addition cross-block" `Quick
        test_static_repeated_addition_cross_block;
      Alcotest.test_case "static repeated adds registry parity" `Slow
        test_static_repeated_adds_registry_parity;
      Alcotest.test_case "static overwrites" `Quick test_static_overwrites_are_stores;
      Alcotest.test_case "format truncates" `Quick test_format_truncates;
      Alcotest.test_case "format truncates edge cases" `Quick
        test_format_truncates_edge_cases;
      Alcotest.test_case "static count api" `Quick test_static_count_api;
      Alcotest.test_case "rates: shifts" `Quick test_rates_on_shift_heavy_program;
      Alcotest.test_case "rates: repeated additions" `Quick
        test_rates_repeated_addition_dynamic;
      Alcotest.test_case "rates: vector/names" `Quick test_rates_vector_and_names;
      Alcotest.test_case "rates: overwrites" `Quick test_rates_overwrite_high_for_loops;
      Alcotest.test_case "dynamic merge" `Quick test_dynamic_detect_merge;
    ] )
