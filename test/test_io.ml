(* Trace serialization and exporters. *)

open Helpers

let event_equal (a : Trace.event) (b : Trace.event) =
  a.Trace.seq = b.Trace.seq && a.fidx = b.fidx && a.pc = b.pc && a.act = b.act
  && a.line = b.line && a.region = b.region && a.instance = b.instance
  && a.iter = b.iter && a.op = b.op
  && Array.length a.reads = Array.length b.reads
  && Array.length a.writes = Array.length b.writes
  && Array.for_all2
       (fun (l1, v1) (l2, v2) -> Loc.equal l1 l2 && Value.equal v1 v2)
       a.reads b.reads
  && Array.for_all2
       (fun (l1, v1) (l2, v2) -> Loc.equal l1 l2 && Value.equal v1 v2)
       a.writes b.writes

let test_event_roundtrip () =
  let prog = compile (two_region_program ()) in
  let _, t = run_traced prog in
  Trace.iter
    (fun e ->
      let buf = Buffer.create 128 in
      Trace_io.write_event buf e;
      let line = String.trim (Buffer.contents buf) in
      let e' = Trace_io.parse_event line in
      Alcotest.(check bool) "roundtrip" true (event_equal e e'))
    t

let test_trace_file_roundtrip () =
  let prog = compile (loop_program ~iters:3) in
  let _, t = run_traced ~iter_mark:0 prog in
  let path = Filename.temp_file "fliptracker" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_io.save path t;
      let t' = Trace_io.load path in
      Alcotest.(check int) "length" (Trace.length t) (Trace.length t');
      let ok = ref true in
      Trace.iteri
        (fun k e -> if not (event_equal e (Trace.get t' k)) then ok := false)
        t;
      Alcotest.(check bool) "all events" true !ok)

let test_split_by_region () =
  let prog = compile (loop_program ~iters:4) in
  let _, t = run_traced prog in
  let dir = Filename.temp_file "fliptracker" ".d" in
  Sys.remove dir;
  let files = Trace_io.split_by_region_instance ~dir t in
  Fun.protect
    ~finally:(fun () ->
      List.iter Sys.remove files;
      Sys.rmdir dir)
    (fun () ->
      (* the loop body region has four instances -> four files *)
      Alcotest.(check int) "one file per instance" 4 (List.length files);
      let inst = List.hd (Region.instances t) in
      let piece = Trace_io.load (List.hd files) in
      Alcotest.(check int) "piece size" (Region.size inst) (Trace.length piece))

let test_opclass_roundtrip () =
  let all =
    [
      Trace.OConst; Trace.OLoad; Trace.OStore; Trace.OJmp; Trace.OBr true;
      Trace.OBr false; Trace.OCall; Trace.ORet; Trace.OMark 3;
      Trace.OIntr "print:%12.6e"; Trace.OBin Op.Fadd; Trace.OBin Op.Ashr;
      Trace.OUn Op.Trunc32; Trace.OUn Op.Fsqrt;
    ]
  in
  List.iter
    (fun op ->
      Alcotest.(check bool) "opclass roundtrip" true
        (Trace_io.parse_opclass (Trace_io.opclass_code op) = op))
    all

let test_csv_export () =
  let csv = Export.series_to_csv [| (0, 1); (5, 3); (9, 0) |] in
  Alcotest.(check string) "csv" "instruction,acl\n0,1\n5,3\n9,0\n" csv

let test_csv_field_escaping () =
  (* RFC 4180: separators, quotes, and line breaks force quoting with
     embedded quotes doubled; plain fields pass through untouched *)
  Alcotest.(check string) "plain untouched" "acl" (Export.csv_field "acl");
  Alcotest.(check string) "comma quoted" "\"a,b\"" (Export.csv_field "a,b");
  Alcotest.(check string) "quote doubled" "\"say \"\"hi\"\"\""
    (Export.csv_field "say \"hi\"");
  Alcotest.(check string) "newline quoted" "\"two\nlines\""
    (Export.csv_field "two\nlines");
  Alcotest.(check string) "empty untouched" "" (Export.csv_field "");
  let csv =
    Export.series_to_csv ~header:("cycles, dynamic", "acl \"live\"")
      [| (1, 2) |]
  in
  Alcotest.(check string) "header escaped"
    "\"cycles, dynamic\",\"acl \"\"live\"\"\"\n1,2\n" csv

let test_svg_export () =
  let svg = Export.series_to_svg ~title:"t" [| (0, 1); (10, 5); (20, 0) |] in
  Alcotest.(check bool) "is svg" true
    (String.length svg > 100
    && String.equal (String.sub svg 0 4) "<svg"
    && String.equal (String.sub svg (String.length svg - 7) 6) "</svg>");
  (* empty series still renders a valid element *)
  let empty = Export.series_to_svg [||] in
  Alcotest.(check bool) "empty ok" true (String.length empty > 10)

let test_events_csv () =
  let prog = compile (two_region_program ()) in
  let _, clean = run_traced prog in
  let fault = Machine.Flip_write { seq = 10; bit = 7 } in
  let _, faulty = run_traced ~fault prog in
  let acl = Acl.analyze ~fault ~clean ~faulty () in
  let csv = Export.events_to_csv acl in
  Alcotest.(check bool) "header" true
    (String.length csv > 23
    && String.equal (String.sub csv 0 23) "kind,index,line,region\n");
  (* the overwrite deaths of this fault appear as rows *)
  Alcotest.(check bool) "has rows" true
    (List.length (String.split_on_char '\n' csv) > 2)

(* --- malformed input: every parser failure is Trace_io.Parse_error --- *)

let check_parse_error name f =
  match f () with
  | exception Trace_io.Parse_error _ -> ()
  | exception e ->
      Alcotest.failf "%s: expected Parse_error, got %s" name
        (Printexc.to_string e)
  | _ -> Alcotest.failf "%s: expected Parse_error, got a value" name

let test_parse_errors () =
  check_parse_error "empty opclass" (fun () -> Trace_io.parse_opclass "");
  check_parse_error "unknown opclass" (fun () -> Trace_io.parse_opclass "z");
  check_parse_error "unknown binop" (fun () -> Trace_io.parse_opclass "b:nope");
  check_parse_error "unknown unop" (fun () -> Trace_io.parse_opclass "u:nope");
  check_parse_error "mark not int" (fun () -> Trace_io.parse_opclass "k:x");
  check_parse_error "empty loc" (fun () -> Trace_io.parse_loc "");
  check_parse_error "one-char loc" (fun () -> Trace_io.parse_loc "r");
  check_parse_error "bad loc prefix" (fun () -> Trace_io.parse_loc "x5");
  check_parse_error "bare int loc" (fun () -> Trace_io.parse_loc "5");
  check_parse_error "reg without dot" (fun () -> Trace_io.parse_loc "r5");
  check_parse_error "reg bad field" (fun () -> Trace_io.parse_loc "r5.y");
  check_parse_error "mem bad field" (fun () -> Trace_io.parse_loc "mz");
  check_parse_error "short line" (fun () -> Trace_io.parse_event "1 2 3");
  check_parse_error "junk line" (fun () ->
      Trace_io.parse_event "not an event at all");
  (* strict percent decoding *)
  check_parse_error "bad escape" (fun () -> Trace_io.parse_opclass "i:%zz");
  check_parse_error "truncated escape" (fun () ->
      Trace_io.parse_opclass "i:%4");
  (* the offending line is attached for context *)
  match Trace_io.parse_event "1 2 3" with
  | exception Trace_io.Parse_error { line; _ } ->
      Alcotest.(check string) "line attached" "1 2 3" line
  | _ -> Alcotest.fail "expected Parse_error"

(* symmetric percent-encoding: every byte value round-trips through the
   intrinsic opclass token, and the token never contains separators *)
let test_percent_encoding_total () =
  let all_bytes = String.init 256 Char.chr in
  List.iter
    (fun s ->
      let tok = Trace_io.opclass_code (Trace.OIntr s) in
      String.iter
        (fun c ->
          Alcotest.(check bool) "no separator bytes" false
            (c = ' ' || c = '\n' || c = '\r' || c = '\t'))
        tok;
      Alcotest.(check bool) "intrinsic roundtrip" true
        (Trace_io.parse_opclass tok = Trace.OIntr s))
    [ all_bytes; ""; "print:%12.6e"; "a b"; "100%"; "%%"; "caf\xc3\xa9" ]

(* --- binary codec --- *)

let test_binary_file_roundtrip () =
  let prog = compile (loop_program ~iters:20) in
  let _, t = run_traced ~iter_mark:(Prog.mark_id prog "main_iter") prog in
  let path = Filename.temp_file "ft_bin" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_io.save ~format:Trace_io.Binary path t;
      (* the header is the versioned magic *)
      let ic = open_in_bin path in
      let head = really_input_string ic 4 in
      close_in ic;
      Alcotest.(check string) "magic" Trace_io.magic head;
      (* load sniffs the format; events come back bit-exact *)
      let t' = Trace_io.load path in
      Alcotest.(check int) "length" (Trace.length t) (Trace.length t');
      Trace.iteri
        (fun i e ->
          Alcotest.(check bool) "event bit-exact" true
            (event_equal e (Trace.get t' i)))
        t)

let test_binary_smaller_than_text () =
  let prog = compile (loop_program ~iters:200) in
  let _, t = run_traced ~iter_mark:(Prog.mark_id prog "main_iter") prog in
  let size fmt =
    let path = Filename.temp_file "ft_size" ".trace" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        Trace_io.save ~format:fmt path t;
        (Unix.stat path).Unix.st_size)
  in
  let text = size Trace_io.Text and bin = size Trace_io.Binary in
  Alcotest.(check bool)
    (Printf.sprintf "binary (%d B) at least 4x smaller than text (%d B)" bin
       text)
    true
    (bin * 4 <= text)

let test_binary_bad_input () =
  let with_file bytes f =
    let path = Filename.temp_file "ft_bad" ".trace" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        let oc = open_out_bin path in
        output_string oc bytes;
        close_out oc;
        f path)
  in
  (* unknown version byte *)
  with_file "FTB\x7f junk" (fun path ->
      check_parse_error "bad version" (fun () -> Trace_io.load path));
  (* a truncated binary file fails mid-event rather than succeeding *)
  let prog = compile (two_region_program ()) in
  let _, t = run_traced prog in
  let path = Filename.temp_file "ft_trunc" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_io.save ~format:Trace_io.Binary path t;
      let n = (Unix.stat path).Unix.st_size in
      let ic = open_in_bin path in
      let head = really_input_string ic (n - 3) in
      close_in ic;
      let oc = open_out_bin path in
      output_string oc head;
      close_out oc;
      check_parse_error "truncated binary" (fun () -> Trace_io.load path))

(* property: arbitrary synthetic events (random stamps, opclasses,
   access sets, and raw 64-bit values) round-trip bit-exactly through
   both codecs *)
let gen_event =
  let open QCheck.Gen in
  let stamp = int_range (-1) 1_000_000 in
  let value =
    oneof
      [
        map Int64.of_int int; map Int64.bits_of_float float; return 0L;
        return Int64.min_int; return (-1L);
      ]
  in
  let loc =
    oneof
      [
        map2 (fun a r -> Loc.Reg (a, r)) (int_range 0 5000) (int_range 0 40);
        map (fun m -> Loc.Mem m) (int_range 0 2_000_000);
      ]
  in
  let opclass =
    oneof
      [
        oneofl
          [
            Trace.OConst; Trace.OLoad; Trace.OStore; Trace.OJmp; Trace.OCall;
            Trace.ORet; Trace.OBr true; Trace.OBr false; Trace.OBin Op.Fadd;
            Trace.OBin Op.Ashr; Trace.OUn Op.Trunc32; Trace.OUn Op.Fsqrt;
          ];
        map (fun n -> Trace.OMark n) (int_range (-4) 100);
        map
          (fun s -> Trace.OIntr s)
          (string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 12));
      ]
  in
  let accesses = array_size (int_range 0 5) (pair loc value) in
  stamp >>= fun seq ->
  stamp >>= fun fidx ->
  stamp >>= fun pc ->
  stamp >>= fun act ->
  stamp >>= fun line ->
  stamp >>= fun region ->
  stamp >>= fun instance ->
  stamp >>= fun iter ->
  opclass >>= fun op ->
  accesses >>= fun reads ->
  accesses >>= fun writes ->
  return
    {
      Trace.seq; fidx; pc; act; line; region; instance; iter; op; reads;
      writes;
    }

let prop_codec_roundtrip =
  QCheck.Test.make ~count:60 ~name:"random events roundtrip in both codecs"
    (QCheck.make QCheck.Gen.(list_size (int_range 0 60) gen_event))
    (fun events ->
      let t = Trace.create () in
      List.iter (Trace.push t) events;
      List.for_all
        (fun fmt ->
          let path = Filename.temp_file "ft_prop" ".trace" in
          Fun.protect
            ~finally:(fun () -> Sys.remove path)
            (fun () ->
              Trace_io.save ~format:fmt path t;
              let t' = Trace_io.load path in
              Trace.length t' = Trace.length t
              &&
              let ok = ref true in
              Trace.iteri
                (fun i e ->
                  if not (event_equal e (Trace.get t' i)) then ok := false)
                t;
              !ok))
        [ Trace_io.Text; Trace_io.Binary ])

(* property: any traced program's serialized trace parses back *)
let prop_serialization_total =
  QCheck.Test.make ~count:15 ~name:"serialize/parse any loop trace"
    QCheck.(int_range 1 5)
    (fun iters ->
      let prog = compile (loop_program ~iters) in
      let _, t = run_traced prog in
      let buf = Buffer.create 4096 in
      Trace.iter (fun e -> Trace_io.write_event buf e) t;
      let lines =
        String.split_on_char '\n' (Buffer.contents buf)
        |> List.filter (fun s -> String.length s > 0)
      in
      List.length lines = Trace.length t
      && List.for_all
           (fun l ->
             match Trace_io.parse_event l with _ -> true)
           lines)

let suite =
  ( "io",
    [
      Alcotest.test_case "event roundtrip" `Quick test_event_roundtrip;
      Alcotest.test_case "trace file roundtrip" `Quick test_trace_file_roundtrip;
      Alcotest.test_case "split by region" `Quick test_split_by_region;
      Alcotest.test_case "opclass roundtrip" `Quick test_opclass_roundtrip;
      Alcotest.test_case "csv export" `Quick test_csv_export;
      Alcotest.test_case "csv field escaping" `Quick test_csv_field_escaping;
      Alcotest.test_case "svg export" `Quick test_svg_export;
      Alcotest.test_case "events csv" `Quick test_events_csv;
      Alcotest.test_case "parse errors" `Quick test_parse_errors;
      Alcotest.test_case "percent encoding total" `Quick
        test_percent_encoding_total;
      Alcotest.test_case "binary file roundtrip" `Quick
        test_binary_file_roundtrip;
      Alcotest.test_case "binary 4x smaller" `Quick
        test_binary_smaller_than_text;
      Alcotest.test_case "binary bad input" `Quick test_binary_bad_input;
      QCheck_alcotest.to_alcotest prop_codec_roundtrip;
      QCheck_alcotest.to_alcotest prop_serialization_total;
    ] )
