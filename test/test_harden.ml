(* The automatic-hardening subsystem: the splice engine, the four
   pattern-injection passes, the pass manager's Verify gate and
   protective-site bookkeeping, and the differential against the
   hand-written hardened CG variants.

   The load-bearing property (exercised on all ten registered apps):
   every pass, alone and composed, is a fault-free identity — the
   transformed program finishes, prints bit-identical output, and
   passes its own verification phase — while the pipeline's Verify
   gate guarantees the IR stays clean. *)

let contains (haystack : string) (needle : string) : bool =
  let n = String.length haystack and m = String.length needle in
  let rec scan i =
    i + m <= n
    && (String.equal (String.sub haystack i m) needle || scan (i + 1))
  in
  scan 0

let dummy_prog (f : Prog.func) : Prog.t =
  {
    Prog.funcs = [| f |];
    entry = 0;
    mem_size = 1;
    init_mem = [];
    region_table =
      [| { Prog.rid = 0; rname = "loop"; line_lo = 1; line_hi = 5 } |];
    mark_names = [||];
    symbols = [];
  }

(* r0 counts down from 10; the loop head at pc 2 is a branch target *)
let loop_func () : Prog.func =
  {
    Prog.fname = "f";
    nregs = 4;
    code =
      [|
        Instr.Const (0, 10L);
        Instr.Const (1, 1L);
        Instr.Bin (Op.Sub, 0, 0, 1);
        Instr.Bnz (0, 2, 4);
        Instr.Ret None;
      |];
    lines = [| 1; 2; 3; 4; 5 |];
    regions = [| -1; -1; 0; 0; -1 |];
  }

let test_splice_before_after () =
  let f = loop_func () in
  let f', map =
    Splice.apply f
      [
        { Splice.at = 2; pos = Splice.Before; code = [ Instr.Const (2, 7L) ] };
        { Splice.at = 2; pos = Splice.After; code = [ Instr.Const (3, 8L) ] };
      ]
  in
  Alcotest.(check int) "grew by two" 7 (Array.length f'.Prog.code);
  Alcotest.(check int) "anchor moved" 3 map.(2);
  Alcotest.(check bool) "before block precedes anchor" true
    (f'.Prog.code.(2) = Instr.Const (2, 7L));
  Alcotest.(check bool) "after block follows anchor" true
    (f'.Prog.code.(4) = Instr.Const (3, 8L));
  (* the back edge to the anchor now enters at the before block, so the
     inserted code runs on every path that ran the anchor *)
  (match f'.Prog.code.(5) with
  | Instr.Bnz (0, 2, 6) -> ()
  | ins -> Alcotest.failf "bad retarget: %s" (Fmt.str "%a" Instr.pp ins));
  (* metadata inherited from the anchor *)
  Alcotest.(check int) "inserted line" f.Prog.lines.(2) f'.Prog.lines.(2);
  Alcotest.(check int) "inserted region" 0 f'.Prog.regions.(2);
  Prog.validate (dummy_prog f')

let test_splice_rejects () =
  let f = loop_func () in
  let rejects inss =
    match Splice.apply f inss with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "control flow in block" true
    (rejects [ { Splice.at = 1; pos = Splice.Before; code = [ Instr.Jmp 0 ] } ]);
  Alcotest.(check bool) "After a terminator" true
    (rejects
       [ { Splice.at = 3; pos = Splice.After; code = [ Instr.Const (2, 0L) ] } ]);
  Alcotest.(check bool) "anchor out of range" true
    (rejects
       [ { Splice.at = 9; pos = Splice.Before; code = [ Instr.Const (2, 0L) ] } ])

(* --- a tiny region program: duplicate-compare turns SDCs into traps --- *)

let tiny_program () =
  let open Ast in
  Helpers.main_program
    ~globals:
      [
        DScalar ("a", Ty.F64);
        DScalar ("b", Ty.F64);
        DScalar ("out", Ty.F64);
      ]
    [
      SAssign ("a", f 1.5);
      SAssign ("b", f 2.25);
      SRegion
        ( "hot", 1, 2,
          [ SAssign ("out", (v "a" * v "b") + (v "a" - v "b")) ] );
      SPrint ("RESULT %.17g\n", [ v "out" ]);
    ]

(* flip bit [bit] of every dynamic instruction's written value in turn;
   count the runs that finish with different output (SDCs) *)
let sdc_count (prog : Prog.t) ~(bit : int) : int =
  let clean = Machine.run_plain prog in
  let n = clean.Machine.instructions in
  let sdcs = ref 0 in
  for seq = 0 to n - 1 do
    let r =
      Machine.run prog
        {
          Machine.default_config with
          fault = Some (Machine.Flip_write { seq; bit });
          budget = 100 * n;
        }
    in
    match r.Machine.outcome with
    | Machine.Finished when not (String.equal r.Machine.output clean.Machine.output) ->
        incr sdcs
    | _ -> ()
  done;
  !sdcs

let test_duplicate_compare_detects () =
  let base = Helpers.compile (tiny_program ()) in
  let hard, reports =
    Pass.run_pipeline ~opts:{ Pass.top_k = 1 } [ Passes.duplicate_compare ]
      base
  in
  let rep = List.hd reports in
  Alcotest.(check bool) "instrumented the region" true
    (rep.Pass.sites_changed > 0);
  (* fault-free identity *)
  let rb = Machine.run_plain base and rh = Machine.run_plain hard in
  Alcotest.(check string) "same output" rb.Machine.output rh.Machine.output;
  (* exhaustive single-bit-62 injection: high-exponent corruption of
     any guarded arithmetic now traps instead of corrupting RESULT *)
  let sb = sdc_count base ~bit:62 and sh = sdc_count hard ~bit:62 in
  Alcotest.(check bool)
    (Printf.sprintf "fewer SDCs (baseline %d, hardened %d)" sb sh)
    true (sh < sb)

let test_trunc_barrier_traps_huge () =
  let base = Helpers.compile (tiny_program ()) in
  let hard, reports = Pass.run_pipeline [ Passes.trunc_barrier ] base in
  Alcotest.(check bool) "barrier on the region's FP store" true
    ((List.hd reports).Pass.sites_changed > 0);
  let rb = Machine.run_plain base and rh = Machine.run_plain hard in
  Alcotest.(check string) "fault-free identity" rb.Machine.output
    rh.Machine.output;
  let sb = sdc_count base ~bit:62 and sh = sdc_count hard ~bit:62 in
  Alcotest.(check bool)
    (Printf.sprintf "fewer SDCs (baseline %d, hardened %d)" sb sh)
    true (sh < sb)

(* --- pass manager ------------------------------------------------------ *)

let test_verify_gate () =
  (* a pass that emits broken IR must be stopped by the gate *)
  let broken : Pass.t =
    {
      Pass.name = "break-it";
      short = "brk";
      doc = "corrupts a register index";
      run =
        (fun _opts p ->
          let funcs =
            Array.map
              (fun (f : Prog.func) ->
                let code = Array.copy f.Prog.code in
                code.(0) <- Instr.Const (f.Prog.nregs + 7, 0L);
                { f with Prog.code })
              p.Prog.funcs
          in
          {
            Pass.prog = { p with Prog.funcs };
            rep =
              {
                Pass.pass_name = "break-it";
                sites_considered = 1;
                sites_changed = 1;
                instrs_added = 0;
                instrs_removed = 0;
                regs_added = 0;
                changes = [];
                protective = [];
              };
            remap = (fun ~fname:_ ~pc -> pc);
          })
    }
  in
  let base = Helpers.compile (tiny_program ()) in
  match Pass.run_pipeline [ broken ] base with
  | _ -> Alcotest.fail "gate let broken IR through"
  | exception Invalid_argument _ -> () (* Prog.validate caught it first *)
  | exception Pass.Verify_failed { passes; diags } ->
      Alcotest.(check (list string)) "names the pipeline" [ "break-it" ] passes;
      Alcotest.(check bool) "has error diags" true (diags <> [])

let test_parse_spec () =
  (match Harden.parse_spec "all" with
  | Ok ps -> Alcotest.(check int) "all = four passes" 4 (List.length ps)
  | Error e -> Alcotest.fail e);
  (match Harden.parse_spec "fresh,dup" with
  | Ok ps ->
      (* canonical order, independent of spec order *)
      Alcotest.(check (list string)) "canonical order"
        [ "duplicate-compare"; "overwrite-fresh" ]
        (List.map (fun (p : Pass.t) -> p.Pass.name) ps);
      Alcotest.(check string) "spec names" "dup+fresh" (Harden.spec_names ps)
  | Error e -> Alcotest.fail e);
  match Harden.parse_spec "dup,nosuch" with
  | Ok _ -> Alcotest.fail "accepted an unknown pass"
  | Error msg ->
      Alcotest.(check bool) "names the unknown pass" true
        (contains msg "nosuch")

(* --- protective sites feed the static ranking (satellite) -------------- *)

let test_protective_sites_rank () =
  let app = Registry.find "CG" in
  let hard, reports = Harden.harden Passes.all (App.program app) in
  let sites = Pass.protective_sites reports in
  Alcotest.(check bool) "guards recorded" true (List.length sites > 50);
  (* remapping kept every site pointing at a guard instruction: the
     compare of a detector pass or the zero-overwrite of the scrubber *)
  List.iter
    (fun (fname, pc) ->
      let f = hard.Prog.funcs.(Prog.func_index hard fname) in
      Alcotest.(check bool)
        (Printf.sprintf "%s:%d is a guard" fname pc)
        true
        (pc >= 0
        && pc < Array.length f.Prog.code
        &&
        match f.Prog.code.(pc) with
        | Instr.Bin (Op.Eq, _, _, _) | Instr.Bin (Op.Fgt, _, _, _)
        | Instr.Const (_, 0L) ->
            true
        | _ -> false))
    sites;
  let without = Vuln.rank hard in
  let with_ = Harden.ranking_after hard reports in
  let total r =
    List.fold_left (fun acc s -> acc + s.Vuln.protective_sites) 0 r
  in
  Alcotest.(check bool) "extra sites counted" true (total with_ > total without);
  let score_of r rid =
    (List.find (fun s -> s.Vuln.rid = rid) r).Vuln.score
  in
  Alcotest.(check bool) "some region's score drops" true
    (List.exists
       (fun (s : Vuln.region_score) ->
         score_of with_ s.Vuln.rid < s.Vuln.score)
       without)

(* --- the property: fault-free identity on all ten apps ----------------- *)

let test_identity_all_apps () =
  List.iter
    (fun (app : App.t) ->
      let base = App.program app in
      let ref_out = (App.reference app).Machine.output in
      let pipelines =
        List.map (fun p -> [ p ]) Passes.all @ [ Passes.all ]
      in
      List.iter
        (fun passes ->
          let label =
            Printf.sprintf "%s@%s" app.App.name (Harden.spec_names passes)
          in
          (* run_pipeline raises if the Verify gate finds errors *)
          let hard, _ = Pass.run_pipeline passes base in
          let r = Helpers.run ~budget:200_000_000 hard in
          Helpers.check_finished r;
          Alcotest.(check string)
            (label ^ " output bit-identical")
            ref_out r.Machine.output;
          Alcotest.(check bool)
            (label ^ " verification accepts")
            true
            (App.verified r.Machine.output))
        pipelines)
    Registry.all

(* --- differential vs the hand-written CG variants (satellite) ---------- *)

let test_differential_cg () =
  let auto =
    match Fliptracker.resolve_app "CG@all" with
    | Ok a -> a
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check string) "variant name" "CG@all" auto.App.name;
  let out a = (App.reference a).Machine.output in
  let cg = Registry.find "CG" in
  let dcl = Registry.find "CG+dcl" in
  (* fault-free outputs bit-identical: auto-hardening preserves exactly
     what the semantics-preserving hand transformation preserves *)
  Alcotest.(check string) "auto = baseline output" (out cg) (out auto);
  Alcotest.(check string) "auto = hand-dcl output" (out dcl) (out auto);
  (* the hand-written truncation variant intentionally changes the
     computation (32-bit windows), so only its verification must agree *)
  Alcotest.(check bool) "hand-trunc verifies" true
    (App.verified (out (Registry.find "CG+trunc")))

let test_differential_ordering () =
  (* small paired campaign: baseline < single-pattern < combined, the
     Table III ordering.  Deterministic: trial i of every variant draws
     from Rng.derive ~seed:42 ~index:i. *)
  let app = Registry.find "CG" in
  let effort =
    {
      Effort.quick with
      Effort.campaign =
        { Campaign.default_config with seed = 42; max_trials = Some 80 };
    }
  in
  let r =
    Harden_eval.evaluate ~effort
      ~passes:[ Passes.duplicate_compare; Passes.overwrite_fresh ]
      app
  in
  let sdc label =
    let v = List.find (fun v -> String.equal v.Harden_eval.hv_label label) r.Harden_eval.he_variants in
    Harden_eval.sdc_rate v.Harden_eval.hv_report.Campaign.counts
  in
  let base = sdc "baseline" in
  let dup = sdc "+duplicate-compare" in
  let fresh = sdc "+overwrite-fresh" in
  let all = sdc "all" in
  Alcotest.(check bool)
    (Printf.sprintf "combined strictly beats baseline (%.3f < %.3f)" all base)
    true (all < base);
  Alcotest.(check bool)
    (Printf.sprintf "single patterns in between (%.3f/%.3f within [%.3f, %.3f])"
       dup fresh all base)
    true
    (all <= dup && dup <= base && all <= fresh && fresh <= base)

(* --- registry integration ---------------------------------------------- *)

let test_resolve_app () =
  (match Fliptracker.resolve_app "mg@dup+trunc" with
  | Ok a -> Alcotest.(check string) "hardened variant name" "MG@dup+trunc" a.App.name
  | Error e -> Alcotest.fail e);
  (match Fliptracker.resolve_app "CG@nosuch" with
  | Ok _ -> Alcotest.fail "accepted a bad pass spec"
  | Error _ -> ());
  match Fliptracker.resolve_app "LULESHH" with
  | Ok _ -> Alcotest.fail "accepted a typo"
  | Error msg ->
      Alcotest.(check bool) "suggests the near match" true
        (contains msg "LULESH")

let suite =
  ( "harden",
    [
      Alcotest.test_case "splice before/after + retarget" `Quick
        test_splice_before_after;
      Alcotest.test_case "splice rejects bad insertions" `Quick
        test_splice_rejects;
      Alcotest.test_case "duplicate-compare detects" `Quick
        test_duplicate_compare_detects;
      Alcotest.test_case "trunc-barrier detects" `Quick
        test_trunc_barrier_traps_huge;
      Alcotest.test_case "verify gate stops broken passes" `Quick
        test_verify_gate;
      Alcotest.test_case "pass spec parsing" `Quick test_parse_spec;
      Alcotest.test_case "protective sites feed Vuln.rank" `Quick
        test_protective_sites_rank;
      Alcotest.test_case "fault-free identity, all apps x all passes" `Slow
        test_identity_all_apps;
      Alcotest.test_case "differential: auto vs hand-hardened CG" `Slow
        test_differential_cg;
      Alcotest.test_case "differential: resilience ordering" `Slow
        test_differential_ordering;
      Alcotest.test_case "resolve_app NAME@SPEC" `Quick test_resolve_app;
    ] )
