(* The resilient campaign executor and its parts: csexp wire format,
   append-only journal with torn-tail healing, domain pool, wall-clock
   watchdog, and the engine's determinism / resume / retry / early-stop
   contracts. *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let with_temp_file f =
  let path = Filename.temp_file "fliptracker" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let file_contents path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let truncate_file path len =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () -> Unix.ftruncate fd len)

(* --- csexp --------------------------------------------------------------- *)

let sample_values =
  Csexp.
    [
      Atom "";
      Atom "plain";
      Atom "with (parens) 7:and \n colons:";
      List [];
      List [ Atom "t"; Atom "12"; Atom "ok"; Atom "S" ];
      List [ List [ Atom "nested" ]; List [ List []; Atom "deep" ] ];
    ]

let test_csexp_roundtrip () =
  List.iter
    (fun v ->
      match Csexp.of_string (Csexp.to_string v) with
      | Some v' -> Alcotest.(check bool) "roundtrip" true (v = v')
      | None -> Alcotest.fail "roundtrip decode failed")
    sample_values

let test_csexp_rejects_malformed () =
  List.iter
    (fun s -> Alcotest.(check bool) s true (Csexp.of_string s = None))
    [ "("; ")"; "5:abc"; "3:abcd"; "x"; "12"; "(3:abc"; "3:abc3:def" ]

let test_csexp_prefix_stops_at_torn_tail () =
  let a = Csexp.List [ Csexp.Atom "first"; Csexp.Atom "record" ] in
  let b = Csexp.List [ Csexp.Atom "second" ] in
  let whole = Csexp.to_string a ^ Csexp.to_string b in
  (* cut into the middle of the second record *)
  let cut = String.length (Csexp.to_string a) + 3 in
  let torn = String.sub whole 0 cut in
  let records, stop = Csexp.decode_prefix torn in
  Alcotest.(check bool) "only the complete record" true (records = [ a ]);
  Alcotest.(check int) "stops at the tear" (String.length (Csexp.to_string a)) stop;
  let all, stop_all = Csexp.decode_prefix whole in
  Alcotest.(check bool) "well-formed input decodes fully" true (all = [ a; b ]);
  Alcotest.(check int) "consumes everything" (String.length whole) stop_all

let prop_csexp_atom_roundtrip =
  QCheck.Test.make ~count:300 ~name:"csexp atoms survive any byte content"
    QCheck.(small_list printable_string)
    (fun atoms ->
      let v = Csexp.List (List.map (fun s -> Csexp.Atom s) atoms) in
      Csexp.of_string (Csexp.to_string v) = Some v)

(* --- journal ------------------------------------------------------------- *)

let test_journal_roundtrip () =
  with_temp_file (fun path ->
      let w = Journal.create path in
      List.iter (Journal.write w) sample_values;
      Journal.close w;
      let records, _ = Journal.load path in
      Alcotest.(check bool) "all records back" true (records = sample_values))

let test_journal_missing_file () =
  let records, stop = Journal.load "/nonexistent/fliptracker.journal" in
  Alcotest.(check bool) "missing file is empty" true (records = [] && stop = 0)

let test_journal_heals_torn_tail () =
  with_temp_file (fun path ->
      let a = Csexp.Atom "alpha" and b = Csexp.Atom "beta" in
      let w = Journal.create path in
      Journal.write w a;
      Journal.write w b;
      Journal.close w;
      let intact = file_contents path in
      (* a crash mid-append leaves a torn record at the tail *)
      truncate_file path (String.length intact - 2);
      let records, valid_end = Journal.load path in
      Alcotest.(check bool) "torn tail dropped" true (records = [ a ]);
      (* healing: truncate to the valid prefix, then append more *)
      let w = Journal.open_append ~truncate_at:valid_end path in
      Journal.write w (Csexp.Atom "gamma");
      Journal.close w;
      let records, _ = Journal.load path in
      Alcotest.(check bool) "healed and extended" true
        (records = [ a; Csexp.Atom "gamma" ]))

(* --- pool ---------------------------------------------------------------- *)

let test_pool_preserves_order () =
  let xs = Array.init 100 Fun.id in
  [ 1; 2; 4 ]
  |> List.iter (fun jobs ->
         let ys = Pool.map ~jobs (fun x -> (3 * x) + 1) xs in
         Alcotest.(check bool)
           (Printf.sprintf "jobs=%d" jobs)
           true
           (ys = Array.map (fun x -> (3 * x) + 1) xs))

let test_pool_propagates_exception () =
  let xs = Array.init 32 Fun.id in
  match Pool.map ~jobs:4 (fun x -> if x = 17 then failwith "boom" else x) xs with
  | _ -> Alcotest.fail "expected the worker exception to re-raise"
  | exception Failure m -> Alcotest.(check string) "first exception" "boom" m

(* --- watchdog ------------------------------------------------------------ *)

let test_watchdog_trips_past_deadline () =
  let w = Watchdog.create ~stride:1 ~seconds:(-1.0) () in
  Alcotest.(check bool) "already expired" true (Watchdog.expired w);
  match Watchdog.check w with
  | () -> Alcotest.fail "expected Timeout"
  | exception Watchdog.Timeout s ->
      Alcotest.(check (float 0.0)) "carries the deadline" (-1.0) s

let test_watchdog_quiet_before_deadline () =
  let w = Watchdog.create ~stride:4 ~seconds:60.0 () in
  for _ = 1 to 1000 do
    Watchdog.check w
  done;
  Alcotest.(check bool) "not expired" false (Watchdog.expired w)

(* --- executor ------------------------------------------------------------ *)

(* trial i -> a small deterministic payload *)
let pure_trial i = (i * 2654435761) land 0xFFFF

let spec ?should_stop ?(total = 100) ?(tag = "test:v1") run_trial =
  {
    Executor.tag;
    total;
    run_trial;
    encode = string_of_int;
    decode = int_of_string_opt;
    should_stop;
  }

let outcomes_equal a b =
  Array.length a = Array.length b && Array.for_all2 ( = ) a b

let test_executor_jobs_invariance () =
  let run jobs =
    Executor.run
      ~cfg:{ Executor.default_config with jobs; batch = 16 }
      (spec pure_trial)
  in
  let base = run 1 and par = run 4 in
  Alcotest.(check int) "all trials ran" 100 base.Executor.completed;
  Alcotest.(check bool) "jobs=1 and jobs=4 agree" true
    (outcomes_equal base.Executor.outcomes par.Executor.outcomes)

let test_executor_resume_after_truncation () =
  with_temp_file (fun path ->
      let cfg jobs resume =
        {
          Executor.default_config with
          jobs;
          batch = 8;
          journal = Some path;
          resume;
        }
      in
      let full = Executor.run ~cfg:(cfg 1 false) (spec pure_trial) in
      (* simulate a kill mid-campaign: chop the journal, possibly
         mid-record *)
      let intact = file_contents path in
      truncate_file path (String.length intact * 2 / 3);
      let calls = ref 0 in
      let counted i =
        incr calls;
        pure_trial i
      in
      let resumed = Executor.run ~cfg:(cfg 2 true) (spec counted) in
      Alcotest.(check bool) "some trials came from the journal" true
        (resumed.Executor.resumed > 0);
      Alcotest.(check int) "only the missing trials re-ran"
        (100 - resumed.Executor.resumed)
        !calls;
      Alcotest.(check bool) "identical outcome sequence" true
        (outcomes_equal full.Executor.outcomes resumed.Executor.outcomes))

(* The torn-tail contract, exhaustively: truncate a finished journal at
   EVERY byte boundary; each cut must heal to the longest valid record
   prefix, and resuming from it must reproduce the --jobs 1 outcomes
   exactly and leave a fully valid, header-first journal behind. *)
let test_journal_heals_at_every_byte_boundary () =
  with_temp_file (fun path ->
      let total = 12 in
      let cfg resume =
        {
          Executor.default_config with
          jobs = 1;
          batch = 4;
          journal = Some path;
          resume;
        }
      in
      let full = Executor.run ~cfg:(cfg false) (spec ~total pure_trial) in
      let intact = file_contents path in
      let full_records, full_end = Journal.load path in
      Alcotest.(check int) "intact journal is fully valid"
        (String.length intact) full_end;
      (* cumulative end offset of record k's "encoded bytes + newline" *)
      let cums =
        List.rev
          (List.fold_left
             (fun acc r ->
               let len = String.length (Csexp.to_string r) + 1 in
               match acc with [] -> [ len ] | c :: _ -> (c + len) :: acc)
             [] full_records)
      in
      for cut = 0 to String.length intact do
        let oc = open_out_bin path in
        output_string oc (String.sub intact 0 cut);
        close_out oc;
        let records, valid_end = Journal.load path in
        (* a record survives iff its final byte (just before its
           newline) fits under the cut *)
        let surviving = List.filter (fun c -> c - 1 <= cut) cums in
        let expected_count = List.length surviving in
        let expected_end =
          match List.rev surviving with [] -> 0 | last :: _ -> min cut last
        in
        Alcotest.(check int)
          (Printf.sprintf "cut %d: longest valid prefix" cut)
          expected_count (List.length records);
        Alcotest.(check int)
          (Printf.sprintf "cut %d: heal offset" cut)
          expected_end valid_end;
        Alcotest.(check bool)
          (Printf.sprintf "cut %d: surviving records unchanged" cut)
          true
          (records
          = List.filteri (fun i _ -> i < expected_count) full_records);
        let resumed = Executor.run ~cfg:(cfg true) (spec ~total pure_trial) in
        Alcotest.(check bool)
          (Printf.sprintf "cut %d: resume reproduces --jobs 1 outcomes" cut)
          true
          (outcomes_equal full.Executor.outcomes resumed.Executor.outcomes);
        Alcotest.(check int)
          (Printf.sprintf "cut %d: exactly the surviving trials resumed" cut)
          (max 0 (expected_count - 1))
          resumed.Executor.resumed;
        (* the healed journal must itself be whole and resumable *)
        let healed, healed_end = Journal.load path in
        Alcotest.(check int)
          (Printf.sprintf "cut %d: healed journal fully valid" cut)
          ((Unix.stat path).Unix.st_size)
          healed_end;
        match healed with
        | first :: _ when first = List.hd full_records -> ()
        | _ ->
            Alcotest.fail
              (Printf.sprintf "cut %d: healed journal lost its header" cut)
      done)

let test_executor_rejects_foreign_journal () =
  with_temp_file (fun path ->
      let cfg resume =
        { Executor.default_config with journal = Some path; resume }
      in
      let _ = Executor.run ~cfg:(cfg false) (spec ~tag:"campaign-a" pure_trial) in
      match Executor.run ~cfg:(cfg true) (spec ~tag:"campaign-b" pure_trial) with
      | _ -> Alcotest.fail "expected a tag-mismatch failure"
      | exception Failure m ->
          Alcotest.(check bool) "message names both tags" true
            (contains ~sub:"campaign-a" m && contains ~sub:"campaign-b" m))

let test_executor_retries_transient_failure () =
  let attempts = Hashtbl.create 16 in
  let flaky i =
    let k = try Hashtbl.find attempts i with Not_found -> 0 in
    Hashtbl.replace attempts i (k + 1);
    if i mod 10 = 3 && k = 0 then failwith "transient";
    pure_trial i
  in
  let report =
    Executor.run
      ~cfg:{ Executor.default_config with retry_backoff_s = 0.0 }
      (spec ~total:40 flaky)
  in
  Alcotest.(check int) "no infra errors after retry" 0
    report.Executor.infra_errors;
  Alcotest.(check int) "campaign completed" 40 report.Executor.completed;
  Alcotest.(check bool) "flaky trials retried once" true
    (Hashtbl.find attempts 3 = 2 && Hashtbl.find attempts 13 = 2)

let test_executor_isolates_persistent_failure () =
  let bad i = if i = 7 then failwith "disk on fire" else pure_trial i in
  let report =
    Executor.run
      ~cfg:{ Executor.default_config with retry_backoff_s = 0.0; max_retries = 1 }
      (spec ~total:20 bad)
  in
  Alcotest.(check int) "campaign still completed" 20 report.Executor.completed;
  Alcotest.(check int) "exactly one infra error" 1 report.Executor.infra_errors;
  (match report.Executor.outcomes.(7) with
  | Executor.Infra_error m ->
      Alcotest.(check bool) "message kept" true (contains ~sub:"disk on fire" m)
  | Executor.Done _ -> Alcotest.fail "trial 7 should be an infra error");
  Alcotest.(check bool) "neighbors unaffected" true
    (report.Executor.outcomes.(6) = Executor.Done (pure_trial 6))

let test_executor_early_stop_is_honest () =
  let report =
    Executor.run
      ~cfg:{ Executor.default_config with batch = 16 }
      (spec (fun i -> i)
         ~should_stop:(fun outcomes n -> Array.length outcomes >= 32 && n >= 32))
  in
  Alcotest.(check bool) "stopped early" true report.Executor.stopped_early;
  Alcotest.(check int) "stopped at the batch boundary" 32
    report.Executor.completed;
  Alcotest.(check int) "plan still reported" 100 report.Executor.planned;
  Alcotest.(check int) "outcomes match the completed prefix" 32
    (Array.length report.Executor.outcomes)

let test_executor_progress_reported () =
  let seen = ref [] in
  let _ =
    Executor.run
      ~cfg:
        {
          Executor.default_config with
          batch = 25;
          on_progress = Some (fun p -> seen := p :: !seen);
        }
      (spec pure_trial)
  in
  let seen = List.rev !seen in
  Alcotest.(check (list int)) "one report per batch" [ 25; 50; 75; 100 ]
    (List.map (fun (p : Executor.progress) -> p.Executor.completed) seen);
  List.iter
    (fun (p : Executor.progress) ->
      Alcotest.(check int) "planned is stable" 100 p.Executor.planned;
      Alcotest.(check bool) "eta is finite and non-negative" true
        (p.Executor.eta_s >= 0.0 && Float.is_finite p.Executor.eta_s))
    seen

let suite =
  ( "runtime",
    [
      Alcotest.test_case "csexp roundtrip" `Quick test_csexp_roundtrip;
      Alcotest.test_case "csexp rejects malformed" `Quick
        test_csexp_rejects_malformed;
      Alcotest.test_case "csexp torn tail" `Quick
        test_csexp_prefix_stops_at_torn_tail;
      QCheck_alcotest.to_alcotest prop_csexp_atom_roundtrip;
      Alcotest.test_case "journal roundtrip" `Quick test_journal_roundtrip;
      Alcotest.test_case "journal missing file" `Quick test_journal_missing_file;
      Alcotest.test_case "journal heals torn tail" `Quick
        test_journal_heals_torn_tail;
      Alcotest.test_case "pool preserves order" `Quick test_pool_preserves_order;
      Alcotest.test_case "pool propagates exceptions" `Quick
        test_pool_propagates_exception;
      Alcotest.test_case "watchdog trips" `Quick test_watchdog_trips_past_deadline;
      Alcotest.test_case "watchdog quiet before deadline" `Quick
        test_watchdog_quiet_before_deadline;
      Alcotest.test_case "executor jobs invariance" `Quick
        test_executor_jobs_invariance;
      Alcotest.test_case "journal heals at every byte boundary" `Quick
        test_journal_heals_at_every_byte_boundary;
      Alcotest.test_case "executor resume after truncation" `Quick
        test_executor_resume_after_truncation;
      Alcotest.test_case "executor rejects foreign journal" `Quick
        test_executor_rejects_foreign_journal;
      Alcotest.test_case "executor retries transient failures" `Quick
        test_executor_retries_transient_failure;
      Alcotest.test_case "executor isolates persistent failures" `Quick
        test_executor_isolates_persistent_failure;
      Alcotest.test_case "executor early stop" `Quick
        test_executor_early_stop_is_honest;
      Alcotest.test_case "executor progress" `Quick test_executor_progress_reported;
    ] )
