(* Scratch driver kept for interactive exploration during development;
   the real entry points are bin/fliptracker_cli.exe, bench/main.exe
   and the examples.  Prints a pipeline sanity line. *)

let () =
  let app = Registry.find "IS" in
  let r = App.reference app in
  Printf.printf
    "fliptracker dev: %s runs %d instructions, verified=%b; see bin/fliptracker_cli.exe --help\n"
    app.App.name r.Machine.instructions
    (App.verified r.Machine.output)
