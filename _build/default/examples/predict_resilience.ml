(* Use Case 2 (Section VII-B): predict application resilience from
   pattern rates with a linear model — the Table IV experiment as a
   standalone tool, with per-feature diagnostics.

   Run with: dune exec examples/predict_resilience.exe -- [TRIALS] *)

let () =
  let trials =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 80
  in
  Printf.printf
    "measuring pattern rates and success rates for %d programs (%d trials each)\n\n"
    (List.length Registry.all) trials;
  let cfg = { Campaign.default_config with max_trials = Some trials } in
  let data =
    List.map
      (fun (app : App.t) ->
        let clean, trace = App.trace app in
        let prog = App.program app in
        let rates = Rates.compute trace (Access.build trace) in
        let counts =
          Campaign.run prog ~verify:(App.verify app)
            ~clean_instructions:clean.Machine.instructions ~cfg
            (Campaign.whole_program_target prog trace)
        in
        Printf.printf "  %-8s measured SR %.3f   rates: %s\n" app.App.name
          (Campaign.success_rate counts)
          (Fmt.str "%a" Rates.pp rates);
        (app.App.name, rates, Campaign.success_rate counts))
      Registry.all
  in
  let x = Array.of_list (List.map (fun (_, r, _) -> Rates.to_vector r) data) in
  let y = Array.of_list (List.map (fun (_, _, s) -> s) data) in
  let lambda = 1e-4 in
  let model = Regression.fit ~lambda x y in
  Printf.printf "\nfull fit: R-square = %.3f, intercept = %.3f\n"
    (Regression.r_square model x y)
    model.Regression.intercept;
  Array.iteri
    (fun j c ->
      Printf.printf "  beta[%-17s] = %+10.3f\n" Rates.feature_names.(j) c)
    model.Regression.coeffs;
  print_endline "\nleave-one-out cross-validation:";
  let loo = Regression.leave_one_out ~lambda x y in
  List.iteri
    (fun i (name, _, measured) ->
      Printf.printf "  %-8s measured %.3f predicted %.3f error %5.1f%%\n" name
        measured loo.(i)
        (100.0 *. Regression.relative_error ~measured ~predicted:loo.(i)))
    data;
  print_endline "\nstandardized coefficients (feature importance, Bring 1994):";
  let sc = Regression.standardized_coefficients model x y in
  Array.iteri
    (fun j c -> Printf.printf "  %-17s %+7.2f\n" Rates.feature_names.(j) c)
    sc
