examples/resilience_scan.mli:
