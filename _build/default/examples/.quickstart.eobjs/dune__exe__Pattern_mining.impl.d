examples/pattern_mining.ml: Acl App Array Campaign Dynamic_detect List Machine Pattern Printf Prog Region Registry Rng Static_detect String Sys
