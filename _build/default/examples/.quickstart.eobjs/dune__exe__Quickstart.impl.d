examples/quickstart.ml: Access Acl Array Ast Compile Dddg Dynamic_detect Fmt List Machine Printf Prog Region String Trace Ty
