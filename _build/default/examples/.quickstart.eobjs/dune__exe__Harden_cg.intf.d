examples/harden_cg.mli:
