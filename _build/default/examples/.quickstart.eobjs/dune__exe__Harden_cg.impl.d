examples/harden_cg.ml: App Array Campaign Float List Machine Printf Registry Stats Sys Unix
