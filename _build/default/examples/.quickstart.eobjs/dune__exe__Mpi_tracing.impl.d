examples/mpi_tracing.ml: App Array Compile Demo List Machine Printf Registry Runner Sys
