examples/static_scan.mli:
