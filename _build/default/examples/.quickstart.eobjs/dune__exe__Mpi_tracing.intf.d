examples/mpi_tracing.mli:
