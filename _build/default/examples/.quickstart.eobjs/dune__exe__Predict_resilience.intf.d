examples/predict_resilience.mli:
