examples/resilience_scan.ml: Access App Array Campaign Fmt Machine Printf Prog Region Registry Stats Sys
