examples/quickstart.mli:
