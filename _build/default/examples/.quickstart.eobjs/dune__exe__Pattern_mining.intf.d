examples/pattern_mining.mli:
