examples/predict_resilience.ml: Access App Array Campaign Fmt List Machine Printf Rates Registry Regression Sys
