examples/static_scan.ml: App Array Cfg Fmt Liveness Printf Prog Reaching Registry Static_detect Sys Verify Vuln
