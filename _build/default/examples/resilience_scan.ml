(* Resilience scan: per-code-region fault-injection campaigns for one
   of the registered benchmarks, with Wilson confidence intervals —
   the Figure-5 experiment as a standalone tool.

   Run with: dune exec examples/resilience_scan.exe -- [APP] [TRIALS]
   e.g.      dune exec examples/resilience_scan.exe -- MG 100 *)

let () =
  let app_name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "IS" in
  let trials =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 60
  in
  let app = Registry.find app_name in
  Printf.printf "scanning %s (%s): %d trials per target\n\n" app.App.name
    app.App.description trials;
  let clean, trace = App.trace app in
  let prog = App.program app in
  let access = Access.build trace in
  let verify = App.verify app in
  let cfg = { Campaign.default_config with max_trials = Some trials } in
  Printf.printf "%-8s %-9s %9s %9s %9s %22s\n" "region" "kind" "success"
    "failed" "crashed" "rate (95% Wilson CI)";
  let scan rid =
    let info = prog.Prog.region_table.(rid) in
    match Region.find_instance trace ~rid ~number:0 with
    | None -> ()
    | Some inst ->
        let run kind target =
          let c =
            Campaign.run prog ~verify
              ~clean_instructions:clean.Machine.instructions ~cfg target
          in
          let lo, hi =
            Stats.wilson_interval ~successes:c.Campaign.success
              ~trials:c.Campaign.trials ~confidence:0.95
          in
          Printf.printf "%-8s %-9s %9d %9d %9d     %.2f [%.2f, %.2f]\n"
            info.Prog.rname kind c.Campaign.success c.Campaign.failed
            c.Campaign.crashed (Campaign.success_rate c) lo hi
        in
        run "internal" (Campaign.internal_target prog trace inst);
        run "input" (Campaign.input_target prog trace access inst)
  in
  for rid = 0 to Array.length prog.Prog.region_table - 1 do
    scan rid
  done;
  (* whole-program baseline *)
  let c =
    Campaign.run prog ~verify ~clean_instructions:clean.Machine.instructions
      ~cfg
      (Campaign.whole_program_target prog trace)
  in
  Printf.printf "\nwhole-program success rate: %.2f (%s)\n"
    (Campaign.success_rate c)
    (Fmt.str "%a" Campaign.pp_counts c)
