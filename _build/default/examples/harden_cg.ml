(* Use Case 1 (Section VII-A): apply resilience computation patterns to
   CG and measure the resilience improvement — the Table III experiment
   as a standalone tool.

   The hardened variants modify the same code the paper modifies:
   sprnvc() works on temporaries and copies back (dead corrupted
   locations + data overwriting, Figure 12b), and a window of the p.q
   dot product computes in truncated integer arithmetic (Figure 13b).

   Run with: dune exec examples/harden_cg.exe -- [TRIALS] *)

let () =
  let trials =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 150
  in
  Printf.printf "CG hardening study, %d injections per variant\n\n" trials;
  let cfg =
    {
      Campaign.default_config with
      max_trials = Some trials;
      confidence = 0.99;
      margin = 0.01;
    }
  in
  let baseline = ref None in
  Printf.printf "%-10s %10s %10s %26s\n" "variant" "resilience" "vs base"
    "exe time min-max/avg (ms)";
  List.iter
    (fun (app : App.t) ->
      let clean, trace = App.trace app in
      let prog = App.program app in
      let counts =
        Campaign.run prog ~verify:(App.verify app)
          ~clean_instructions:clean.Machine.instructions ~cfg
          (Campaign.whole_program_target prog trace)
      in
      let rate = Campaign.success_rate counts in
      let times =
        Array.init 10 (fun _ ->
            let t0 = Unix.gettimeofday () in
            ignore (Machine.run_plain prog);
            1000.0 *. (Unix.gettimeofday () -. t0))
      in
      let mn = Array.fold_left Float.min times.(0) times in
      let mx = Array.fold_left Float.max times.(0) times in
      let improvement =
        match !baseline with
        | None ->
            baseline := Some rate;
            "-"
        | Some b -> Printf.sprintf "%+.1f%%" (100.0 *. (rate -. b) /. b)
      in
      Printf.printf "%-10s %10.3f %10s %12.2f-%.2f/%.2f\n" app.App.name rate
        improvement mn mx (Stats.mean times))
    Registry.cg_variants;
  print_endline
    "\n(paper Table III: none 0.59, DCL+overwrite 0.78, truncation 0.614,\n\
    \ all together 0.782, with <0.1% execution-time change)"
