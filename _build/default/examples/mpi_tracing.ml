(* The simulated MPI runtime: communication-bearing programs on many
   ranks, nondeterminism control by record-and-replay, and the
   per-process tracing overhead of Figure 4.

   Run with: dune exec examples/mpi_tracing.exe -- [RANKS] *)

let () =
  let ranks = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 8 in

  (* 1. a token ring: every rank ends with rounds * sum(ranks) *)
  let ring = Compile.compile (Demo.ring ~rounds:3) in
  let b = Runner.run ~size:ranks ring in
  Printf.printf "ring on %d ranks: %s" ranks b.Runner.results.(0).Runner.result.Machine.output;

  (* 2. halo-exchange Jacobi with record-and-replay *)
  let jac = Compile.compile (Demo.halo_jacobi ~cells:8 ~iters:25) in
  let rec_run = Runner.run ~record:true ~size:ranks jac in
  Printf.printf "jacobi (recorded %d receives): %s"
    (List.length rec_run.Runner.recorded)
    rec_run.Runner.results.(0).Runner.result.Machine.output;
  let rep_run =
    Runner.run ~replay:(Array.of_list rec_run.Runner.recorded) ~size:ranks jac
  in
  Printf.printf "jacobi replayed:              %s"
    rep_run.Runner.results.(0).Runner.result.Machine.output;

  (* 3. per-process tracing overhead (Figure 4) on one benchmark *)
  let app = Registry.find "IS" in
  let prog = App.program app in
  let untraced = Runner.run ~traced:false ~size:ranks prog in
  let traced = Runner.run ~traced:true ~size:ranks prog in
  Printf.printf
    "\nIS on %d ranks: untraced %.2fs, traced %.2fs -> overhead %.0f%%\n" ranks
    untraced.Runner.wall_seconds traced.Runner.wall_seconds
    (100.0
    *. ((traced.Runner.wall_seconds /. untraced.Runner.wall_seconds) -. 1.0));
  Array.iter
    (fun (r : Runner.rank_result) ->
      if r.Runner.rank = 0 then
        Printf.printf "rank 0 trace: %d events\n" r.Runner.trace_len)
    traced.Runner.results
