(* Quickstart: write a tiny program in the mini-C DSL, run it under the
   tracing VM, inject a single bit flip, and look at everything the
   framework can tell you about it — outcome, ACL series, patterns, and
   the DDDG of a code region.

   Run with: dune exec examples/quickstart.exe *)

let program : Ast.program =
  let open Ast in
  {
    globals =
      [
        DArr ("data", Ty.F64, [ 16 ]);
        DScalar ("sum", Ty.F64);
        DScalar ("result", Ty.F64);
        DScalar ("tran", Ty.F64);
        DScalar ("amult", Ty.F64);
      ];
    funs =
      [
        {
          fname = "main";
          params = [];
          ret = None;
          locals = [];
          body =
            [
              SAssign ("tran", f 314159265.0);
              SAssign ("amult", f 1220703125.0);
              (* region "fill": random data *)
              SRegion
                ( "fill",
                  10,
                  13,
                  [
                    SFor
                      ( "j",
                        i 0,
                        i 16,
                        [ SStore ("data", [ v "j" ], Randlc ("tran", v "amult")) ]
                      );
                  ] );
              (* region "reduce": accumulate — repeated additions live here *)
              SRegion
                ( "reduce",
                  20,
                  24,
                  [
                    SAssign ("sum", f 0.0);
                    SFor
                      ( "j",
                        i 0,
                        i 16,
                        [ SAssign ("sum", v "sum" + idx1 "data" (v "j")) ] );
                  ] );
              SAssign ("result", v "sum");
              SPrint ("RESULT %.17g\n", [ v "result" ]);
            ];
        };
      ];
    entry = "main";
  }

let () =
  let prog = Compile.compile program in
  Printf.printf "compiled: %d static instructions, %d regions, %d memory words\n"
    (Prog.static_size prog)
    (Array.length prog.Prog.region_table)
    prog.Prog.mem_size;

  (* 1. fault-free traced run *)
  let clean_trace = Trace.create () in
  let clean =
    Machine.run prog { Machine.default_config with trace = Some clean_trace }
  in
  Printf.printf "fault-free: %d dynamic instructions, output:\n%s\n"
    clean.Machine.instructions clean.Machine.output;

  (* 2. the DDDG of the reduce region: inputs / outputs / internals *)
  let access = Access.build clean_trace in
  let reduce = (Prog.region_by_name prog "reduce").Prog.rid in
  (match Region.find_instance clean_trace ~rid:reduce ~number:0 with
  | None -> print_endline "no reduce instance?"
  | Some inst ->
      let g = Dddg.build clean_trace access ~lo:inst.Region.lo ~hi:inst.Region.hi in
      Printf.printf
        "reduce region: %d events, DDDG with %d nodes (%d inputs, %d outputs)\n"
        (Region.size inst)
        (Array.length g.Dddg.nodes)
        (List.length g.Dddg.inputs)
        (List.length g.Dddg.outputs);
      print_endline "DOT graph (first lines):";
      String.split_on_char '\n' (Dddg.to_dot ~max_nodes:6 g)
      |> List.filteri (fun i _ -> i < 8)
      |> List.iter print_endline);

  (* 3. inject a bit flip into the data array mid-fill and analyze *)
  let addr = Prog.addr_of_element prog "data" [ 7 ] in
  let fault = Machine.Flip_mem { seq = 400; addr; bit = 51 } in
  let faulty_trace = Trace.create () in
  let faulty =
    Machine.run prog
      { Machine.default_config with trace = Some faulty_trace; fault = Some fault }
  in
  Printf.printf "\nfaulty run output:\n%s" faulty.Machine.output;
  let acl = Acl.analyze ~fault ~clean:clean_trace ~faulty:faulty_trace () in
  Printf.printf
    "ACL: peak %d alive corrupted locations, %d deaths, %d masking events\n"
    acl.Acl.peak
    (List.length acl.Acl.deaths)
    (List.length acl.Acl.maskings);
  List.iter
    (fun (m : Acl.masking) ->
      Printf.printf "  masking: %s at line %d (region %d)\n"
        (Acl.mask_kind_to_string m.Acl.m_kind)
        m.Acl.m_line m.Acl.m_region)
    acl.Acl.maskings;
  (* 4. which patterns did the fault exercise? *)
  List.iter
    (fun rp -> Fmt.pr "patterns: %a@." Dynamic_detect.pp rp)
    (Dynamic_detect.of_acl acl)
