(* Pattern mining: repeatedly inject faults into each code region of a
   benchmark, run the ACL analysis on every faulty trace, and report
   which resilience computation patterns acted where — the Table-I
   experiment, with source lines.

   Run with: dune exec examples/pattern_mining.exe -- [APP] [INJECTIONS] *)

let () =
  let app_name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "MG" in
  let injections =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 4
  in
  let app = Registry.find app_name in
  Printf.printf "mining patterns in %s with %d injections per region\n\n"
    app.App.name injections;
  let clean, trace = App.trace app in
  let prog = App.program app in
  let budget = 10 * clean.Machine.instructions in
  let rng = Rng.create ~seed:2024 in
  let nregions = Array.length prog.Prog.region_table in
  for rid = 0 to nregions - 1 do
    let info = prog.Prog.region_table.(rid) in
    match Region.find_instance trace ~rid ~number:0 with
    | None -> ()
    | Some inst ->
        let target = Campaign.internal_target prog trace inst in
        let observations =
          List.init injections (fun _ ->
              let fault = Campaign.sample_fault rng target in
              let _, faulty = App.trace_with_fault app fault ~budget in
              Dynamic_detect.of_acl (Acl.analyze ~fault ~clean:trace ~faulty ()))
        in
        let merged = Dynamic_detect.merge observations in
        Printf.printf "%s (lines %d-%d, %d instructions per instance)\n"
          info.Prog.rname info.Prog.line_lo info.Prog.line_hi
          (Region.size inst);
        (match
           List.find_opt
             (fun (rp : Dynamic_detect.region_patterns) -> rp.rid = rid)
             merged
         with
        | None -> print_endline "  no patterns observed"
        | Some rp ->
            List.iter
              (fun (p, n) ->
                if n > 0 then begin
                  let lines =
                    match List.assoc_opt p rp.Dynamic_detect.lines with
                    | Some ls ->
                        String.concat ","
                          (List.map string_of_int
                             (List.filteri (fun i _ -> i < 5) ls))
                    | None -> ""
                  in
                  Printf.printf "  %-10s %5d instances   (lines %s)\n"
                    (Pattern.to_string p) n lines
                end)
              rp.Dynamic_detect.counts);
        print_newline ()
  done;
  (* contrast with the purely static view *)
  print_endline "static pattern sites (whole program):";
  let s = Static_detect.analyze prog in
  List.iter
    (fun p ->
      Printf.printf "  %-10s %5d sites\n" (Pattern.to_string p)
        (Static_detect.count s p))
    Pattern.all
