(** Ridge-regularized multivariate linear regression.

    The paper fits a Bayesian multivariate linear model (Minka 2010)
    mapping the six pattern rates to the measured success rate.  With a
    Gaussian prior on the coefficients, the MAP estimate is exactly
    ridge regression:

    beta = (X^T X + lambda I)^-1 X^T y

    with an unpenalized intercept.  Besides fitting, this module
    provides the two evaluations the paper reports: the R-square of the
    full fit and leave-one-out prediction error, plus standardized
    regression coefficients for feature-importance analysis
    (Bring 1994). *)

type model = {
  coeffs : float array;  (** one per feature *)
  intercept : float;
  lambda : float;
}

(* center columns, so the intercept can stay unpenalized *)
let column_means (x : Linalg.mat) : float array =
  let n = Array.length x in
  if n = 0 then [||]
  else begin
    let d = Array.length x.(0) in
    let m = Array.make d 0.0 in
    Array.iter (fun row -> Array.iteri (fun j v -> m.(j) <- m.(j) +. v) row) x;
    Array.map (fun s -> s /. Float.of_int n) m
  end

let mean (y : float array) : float =
  if Array.length y = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 y /. Float.of_int (Array.length y)

(** Fit on rows [x] (n samples x d features) against targets [y]. *)
let fit ?(lambda = 1e-6) (x : Linalg.mat) (y : float array) : model =
  let n = Array.length x in
  if n = 0 then invalid_arg "Regression.fit: no samples";
  if Array.length y <> n then invalid_arg "Regression.fit: length mismatch";
  let d = Array.length x.(0) in
  let xm = column_means x in
  let ym = mean y in
  let xc = Array.map (fun row -> Array.mapi (fun j v -> v -. xm.(j)) row) x in
  let yc = Array.map (fun v -> v -. ym) y in
  let xt = Linalg.transpose xc in
  let xtx = Linalg.matmul xt xc in
  for i = 0 to d - 1 do
    xtx.(i).(i) <- xtx.(i).(i) +. lambda
  done;
  let xty = Linalg.matvec xt yc in
  let coeffs = Linalg.solve xtx xty in
  let intercept = ym -. Linalg.dot coeffs xm in
  { coeffs; intercept; lambda }

let predict (m : model) (features : float array) : float =
  m.intercept +. Linalg.dot m.coeffs features

(** Prediction clamped to the meaningful success-rate range [0, 1]. *)
let predict_rate (m : model) (features : float array) : float =
  Float.max 0.0 (Float.min 1.0 (predict m features))

(** Coefficient of determination of the model on a data set. *)
let r_square (m : model) (x : Linalg.mat) (y : float array) : float =
  let ym = mean y in
  let ss_tot = Array.fold_left (fun a v -> a +. ((v -. ym) ** 2.0)) 0.0 y in
  let ss_res = ref 0.0 in
  Array.iteri
    (fun i row ->
      let e = y.(i) -. predict m row in
      ss_res := !ss_res +. (e *. e))
    x;
  if ss_tot <= 0.0 then 1.0 else 1.0 -. (!ss_res /. ss_tot)

(** Leave-one-out cross-validation: for each sample, fit on the others
    and predict it.  Returns the predictions in sample order. *)
let leave_one_out ?(lambda = 1e-6) (x : Linalg.mat) (y : float array) :
    float array =
  let n = Array.length x in
  Array.init n (fun hold ->
      let xs = ref [] and ys = ref [] in
      for i = n - 1 downto 0 do
        if i <> hold then begin
          xs := x.(i) :: !xs;
          ys := y.(i) :: !ys
        end
      done;
      let m = fit ~lambda (Array.of_list !xs) (Array.of_list !ys) in
      predict_rate m x.(hold))

(** Relative prediction error |predicted - measured| / measured. *)
let relative_error ~(measured : float) ~(predicted : float) : float =
  if Float.abs measured < 1e-12 then Float.abs predicted
  else Float.abs (predicted -. measured) /. Float.abs measured

(** Standardized regression coefficients: beta_j * sd(x_j) / sd(y),
    the feature-importance indicator the paper uses (Bring 1994). *)
let standardized_coefficients (m : model) (x : Linalg.mat) (y : float array) :
    float array =
  let sd (col : float array) =
    let mu = mean col in
    let n = Array.length col in
    if n < 2 then 0.0
    else
      Float.sqrt
        (Array.fold_left (fun a v -> a +. ((v -. mu) ** 2.0)) 0.0 col
        /. Float.of_int (n - 1))
  in
  let sdy = sd y in
  let d = Array.length m.coeffs in
  Array.init d (fun j ->
      let col = Array.map (fun row -> row.(j)) x in
      if sdy <= 0.0 then 0.0 else m.coeffs.(j) *. sd col /. sdy)
