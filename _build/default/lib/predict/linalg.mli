(** Small dense linear algebra — just enough to fit the resilience
    regression model. *)

type mat = float array array

val make_mat : int -> int -> mat
val transpose : mat -> mat

val matmul : mat -> mat -> mat
(** @raise Invalid_argument on a dimension mismatch. *)

val matvec : mat -> float array -> float array
val dot : float array -> float array -> float

val solve : mat -> float array -> float array
(** Gaussian elimination with partial pivoting; inputs unmodified.
    @raise Failure on a (numerically) singular system. *)

val identity : int -> mat
