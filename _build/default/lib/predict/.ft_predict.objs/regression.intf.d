lib/predict/regression.mli: Linalg
