lib/predict/linalg.ml: Array Float
