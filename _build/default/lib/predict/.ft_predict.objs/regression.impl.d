lib/predict/regression.ml: Array Float Linalg
