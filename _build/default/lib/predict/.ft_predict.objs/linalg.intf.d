lib/predict/linalg.mli:
