(** Ridge-regularized multivariate linear regression — the MAP estimate
    of the paper's Bayesian linear model (Minka 2010) mapping the six
    pattern rates to the measured success rate — plus the paper's two
    evaluations (R-square of the full fit, leave-one-out prediction)
    and standardized coefficients (Bring 1994). *)

type model = {
  coeffs : float array;  (** one per feature *)
  intercept : float;     (** unpenalized *)
  lambda : float;
}

val fit : ?lambda:float -> Linalg.mat -> float array -> model
(** Fit on n samples x d features against the targets.
    @raise Invalid_argument on empty or mismatched data. *)

val predict : model -> float array -> float

val predict_rate : model -> float array -> float
(** Prediction clamped to the success-rate range [0, 1]. *)

val r_square : model -> Linalg.mat -> float array -> float

val leave_one_out : ?lambda:float -> Linalg.mat -> float array -> float array
(** For each sample, fit on the others and predict it (clamped). *)

val relative_error : measured:float -> predicted:float -> float

val standardized_coefficients :
  model -> Linalg.mat -> float array -> float array
(** beta_j * sd(x_j) / sd(y): the feature-importance indicator. *)
