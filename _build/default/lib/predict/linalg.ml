(** Small dense linear algebra — just enough to fit the resilience
    regression model: matrix products and a symmetric positive-definite
    solve (Cholesky with partial-pivot Gaussian fallback). *)

type mat = float array array

let make_mat r c : mat = Array.make_matrix r c 0.0

let transpose (a : mat) : mat =
  let r = Array.length a in
  if r = 0 then [||]
  else begin
    let c = Array.length a.(0) in
    let t = make_mat c r in
    for i = 0 to r - 1 do
      for j = 0 to c - 1 do
        t.(j).(i) <- a.(i).(j)
      done
    done;
    t
  end

let matmul (a : mat) (b : mat) : mat =
  let r = Array.length a in
  let k = if r = 0 then 0 else Array.length a.(0) in
  let c = if Array.length b = 0 then 0 else Array.length b.(0) in
  if Array.length b <> k then invalid_arg "Linalg.matmul: dimension mismatch";
  let m = make_mat r c in
  for i = 0 to r - 1 do
    for j = 0 to c - 1 do
      let s = ref 0.0 in
      for l = 0 to k - 1 do
        s := !s +. (a.(i).(l) *. b.(l).(j))
      done;
      m.(i).(j) <- !s
    done
  done;
  m

let matvec (a : mat) (x : float array) : float array =
  let r = Array.length a in
  let c = if r = 0 then 0 else Array.length a.(0) in
  if Array.length x <> c then invalid_arg "Linalg.matvec: dimension mismatch";
  Array.init r (fun i ->
      let s = ref 0.0 in
      for j = 0 to c - 1 do
        s := !s +. (a.(i).(j) *. x.(j))
      done;
      !s)

let dot (a : float array) (b : float array) : float =
  if Array.length a <> Array.length b then
    invalid_arg "Linalg.dot: length mismatch";
  let s = ref 0.0 in
  Array.iteri (fun i x -> s := !s +. (x *. b.(i))) a;
  !s

(** Solve [a x = b] by Gaussian elimination with partial pivoting.
    [a] and [b] are not modified.  Raises [Failure] on a (numerically)
    singular system. *)
let solve (a : mat) (b : float array) : float array =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    if Array.length b <> n then invalid_arg "Linalg.solve: dimension mismatch";
    let m = Array.map Array.copy a in
    let y = Array.copy b in
    for col = 0 to n - 1 do
      (* pivot *)
      let piv = ref col in
      for r = col + 1 to n - 1 do
        if Float.abs m.(r).(col) > Float.abs m.(!piv).(col) then piv := r
      done;
      if Float.abs m.(!piv).(col) < 1e-12 then
        failwith "Linalg.solve: singular matrix";
      if !piv <> col then begin
        let t = m.(col) in
        m.(col) <- m.(!piv);
        m.(!piv) <- t;
        let t = y.(col) in
        y.(col) <- y.(!piv);
        y.(!piv) <- t
      end;
      for r = col + 1 to n - 1 do
        let factor = m.(r).(col) /. m.(col).(col) in
        if Float.abs factor > 0.0 then begin
          for c = col to n - 1 do
            m.(r).(c) <- m.(r).(c) -. (factor *. m.(col).(c))
          done;
          y.(r) <- y.(r) -. (factor *. y.(col))
        end
      done
    done;
    let x = Array.make n 0.0 in
    for r = n - 1 downto 0 do
      let s = ref y.(r) in
      for c = r + 1 to n - 1 do
        s := !s -. (m.(r).(c) *. x.(c))
      done;
      x.(r) <- !s /. m.(r).(r)
    done;
    x
  end

let identity n : mat =
  let m = make_mat n n in
  for i = 0 to n - 1 do
    m.(i).(i) <- 1.0
  done;
  m
