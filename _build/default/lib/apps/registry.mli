(** The benchmark registry: the ten programs of the paper's evaluation
    and the hardened CG variants of Use Case 1. *)

val analyzed : App.t list
(** CG, MG, KMEANS, IS, LULESH — the five programs analyzed
    region-by-region in Figures 5/6 and Table I. *)

val all : App.t list
(** All ten programs of the prediction study (Table IV). *)

val cg_variants : App.t list
(** CG and its hardened variants, in the paper's Table III row order. *)

val find : string -> App.t
(** @raise Invalid_argument for an unknown name (the message lists the
    known ones). *)
