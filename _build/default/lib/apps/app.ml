(** The benchmark-application abstraction.

    Every benchmark is a mini-C program with
    {ul
    {- a main computation loop whose body starts with the
       ["main_iter"] marker;}
    {- code regions named like the paper's Table I (e.g. [cg_a]);}
    {- a [RESULT x] print of its headline value; and}
    {- an in-code {e verification phase}, like the NPB benchmarks': the
       computed result is compared against a reference value baked into
       the program, and [VERIFIED 1] or [VERIFIED 0] is printed.  The
       comparison itself is a conditional statement — which is exactly
       where the paper finds the Conditional Statement pattern in the
       verification phases of MG and CG.}}

    The reference value is obtained by a two-phase build: the program
    is first built without a verification phase and run fault-free; the
    headline result of that run is then baked into the full program as
    the verification constant (the NPB benchmarks hardcode their
    class-S reference values the same way). *)

type t = {
  name : string;
  description : string;
  build : ref_value:float option -> Ast.program;
      (** [ref_value = None] builds the calibration variant (no
          verification phase); [Some r] bakes [r] in as the reference *)
  tolerance : float;  (** relative epsilon of the verification phase *)
  main_iterations : int;  (** main-loop iterations the program performs *)
  region_names : string list;  (** paper-style region names, in order *)
  transform : (Prog.t -> Prog.t) option;
      (** post-compile IR rewrite applied to the full program (not the
          calibration variant); must preserve fault-free semantics *)
}

let iter_mark_name = "main_iter"

(** Parse the [RESULT x] line out of a run's output. *)
let parse_result (output : string) : float option =
  String.split_on_char '\n' output
  |> List.find_map (fun line ->
         match String.index_opt line ' ' with
         | Some i when String.length line > 7 && String.equal (String.sub line 0 6) "RESULT"
           ->
             Float.of_string_opt
               (String.sub line (i + 1) (String.length line - i - 1))
         | Some _ | None -> None)

let verified (output : string) : bool =
  (* substring search for "VERIFIED 1" *)
  let needle = "VERIFIED 1" in
  let n = String.length output and m = String.length needle in
  let rec scan i =
    if i + m > n then false
    else if String.equal (String.sub output i m) needle then true
    else scan (i + 1)
  in
  scan 0

(* compiled programs and reference runs are cached per app *)
type baked = {
  prog : Prog.t;        (** full program, verification phase baked in *)
  ref_value : float;    (** the baked reference value *)
  reference : Machine.result;  (** fault-free run of [prog] *)
  iter_mark : int;
}

let cache : (string, baked) Hashtbl.t = Hashtbl.create 16

exception App_error of string

(** Compile the app with its verification phase baked in, run it
    fault-free, and cache everything. *)
let bake (app : t) : baked =
  match Hashtbl.find_opt cache app.name with
  | Some b -> b
  | None ->
      let calib_prog = Compile.compile (app.build ~ref_value:None) in
      let calib = Machine.run_plain calib_prog in
      (match calib.outcome with
      | Machine.Finished -> ()
      | Machine.Trapped m ->
          raise (App_error (Printf.sprintf "%s: calibration run trapped: %s" app.name m))
      | Machine.Budget_exceeded ->
          raise (App_error (app.name ^ ": calibration run exceeded budget")));
      let ref_value =
        match parse_result calib.output with
        | Some v -> v
        | None ->
            raise (App_error (app.name ^ ": calibration run printed no RESULT"))
      in
      let prog = Compile.compile (app.build ~ref_value:(Some ref_value)) in
      (* the calibration run stays untransformed: rewrites must preserve
         fault-free semantics, so the reference value is the same either
         way — and the reference run below checks exactly that *)
      let prog =
        match app.transform with None -> prog | Some t -> t prog
      in
      let iter_mark = Prog.mark_id prog iter_mark_name in
      let reference =
        Machine.run prog { Machine.default_config with iter_mark }
      in
      (match reference.outcome with
      | Machine.Finished -> ()
      | Machine.Trapped m ->
          raise (App_error (Printf.sprintf "%s: reference run trapped: %s" app.name m))
      | Machine.Budget_exceeded ->
          raise (App_error (app.name ^ ": reference run exceeded budget")));
      if not (verified reference.output) then
        raise (App_error (app.name ^ ": reference run failed its own verification"));
      let b = { prog; ref_value; reference; iter_mark } in
      Hashtbl.replace cache app.name b;
      b

let program (app : t) : Prog.t = (bake app).prog
let reference (app : t) : Machine.result = (bake app).reference
let reference_value (app : t) : float = (bake app).ref_value
let iter_mark (app : t) : int = (bake app).iter_mark

(** The verification predicate used by fault-injection campaigns: a
    finished run is a Verification Success iff the program's own
    verification phase accepted the result. *)
let verify (_app : t) : Machine.result -> bool =
 fun (r : Machine.result) -> verified r.output

(** Fault-free traced run (with iteration marking). *)
let trace (app : t) : Machine.result * Trace.t =
  let b = bake app in
  let t = Trace.create () in
  let r =
    Machine.run b.prog
      { Machine.default_config with trace = Some t; iter_mark = b.iter_mark }
  in
  (r, t)

(** Faulty traced run. *)
let trace_with_fault (app : t) (fault : Machine.fault) ~(budget : int) :
    Machine.result * Trace.t =
  let b = bake app in
  let t = Trace.create () in
  let r =
    Machine.run b.prog
      {
        Machine.default_config with
        trace = Some t;
        iter_mark = b.iter_mark;
        fault = Some fault;
        budget;
      }
  in
  (r, t)

(* --- shared program-construction helpers ------------------------------ *)

(** The in-code verification phase: prints the headline result at full
    precision and compares it to the baked reference with a relative
    epsilon (a conditional-statement pattern, like NPB verification). *)
let verification_block ?(result_var = "result") ~(ref_value : float option)
    ~(tolerance : float) () : Ast.stmt list =
  let bound_of r =
    if Stdlib.( > ) (Float.abs r) 0.0 then Float.abs r *. tolerance
    else tolerance
  in
  let open Ast in
  SPrint ("RESULT %.17g\n", [ v result_var ])
  ::
  (match ref_value with
  | None -> []
  | Some r ->
      let bound = bound_of r in
      [
        SAssign ("verif_err", Bin (Sub, v result_var, f r));
        SIf
          ( Bin (Le, abs_ (v "verif_err"), f bound),
            [ SPrint ("VERIFIED %d\n", [ i 1 ]) ],
            [ SPrint ("VERIFIED %d\n", [ i 0 ]) ] );
      ])

(** Locals needed by {!verification_block}. *)
let verification_locals : Ast.decl list =
  [ Ast.DScalar ("result", Ty.F64); Ast.DScalar ("verif_err", Ty.F64) ]
