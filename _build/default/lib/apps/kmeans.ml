(** KMEANS — k-means clustering (Rodinia KMEANS, scaled down).

    Clusters [npts] points with [nfeat] features into [ncl] clusters,
    running a fixed number of refinement passes.  The assignment loop
    is the Figure-10 shape: [euclid_dist_2] per cluster and a min-
    distance conditional — the Conditional Statement pattern that
    tolerates faults in the feature array.  The update region [k_d]
    overwrites the temporary accumulators (the paper's "free the
    temporal corrupted locations" behaviour of k_d).

    The paper's Figure 6 runs KMEANS for a single main-loop iteration;
    the refinement passes are inner loops of that iteration. *)

let npts = 128
let nfeat = 4
let ncl = 4
let passes = 3

let make ~(ref_value : float option) : Ast.program =
  let open Ast in
  let euclid : fundef =
    {
      fname = "euclid_dist_2";
      params =
        [
          { pname = "pt"; pty = Ty.I64; parr = false; pdims = [] };
          { pname = "cl"; pty = Ty.I64; parr = false; pdims = [] };
        ];
      ret = Some Ty.F64;
      locals = [ DScalar ("dist", Ty.F64); DScalar ("dv", Ty.F64) ];
      body =
        [
          SAssign ("dist", f 0.0);
          SFor
            ( "fj",
              i 0,
              i nfeat,
              [
                SAssign
                  ( "dv",
                    idx2 "feature" (v "pt") (v "fj")
                    - idx2 "centroid" (v "cl") (v "fj") );
                SAssign ("dist", v "dist" + (v "dv" * v "dv"));
              ] );
          SRet (Some (v "dist"));
        ];
    }
  in
  let main : fundef =
    {
      fname = "main";
      params = [];
      ret = None;
      locals =
        [
          DScalar ("min_dist", Ty.F64);
          DScalar ("dist", Ty.F64);
          DScalar ("index", Ty.I64);
          DScalar ("inertia", Ty.F64);
          DScalar ("cnt", Ty.I64);
        ]
        @ App.verification_locals;
      body =
        [
          SAssign ("tran", f 314159265.0);
          SAssign ("amult", f 1220703125.0);
          (* k_a: read the input points and seed the centroids *)
          SRegion
            ( "k_a",
              131,
              142,
              [
                SFor
                  ( "p",
                    i 0,
                    i npts,
                    [
                      SFor
                        ( "fj",
                          i 0,
                          i nfeat,
                          [
                            SStore
                              ( "feature",
                                [ v "p"; v "fj" ],
                                f 100.0 * Randlc ("tran", v "amult") );
                          ] );
                    ] );
                SFor
                  ( "c",
                    i 0,
                    i ncl,
                    [
                      SFor
                        ( "fj",
                          i 0,
                          i nfeat,
                          [
                            SStore
                              ( "centroid",
                                [ v "c"; v "fj" ],
                                idx2 "feature" (v "c" * i (Stdlib.( / ) npts ncl)) (v "fj") );
                          ] );
                    ] );
              ] );
          SMark App.iter_mark_name;
          (* refinement passes *)
          SFor
            ( "lp",
              i 0,
              i passes,
              [
                SRegion
                  ( "k_b",
                    144,
                    153,
                    [
                      SFor
                        ( "c",
                          i 0,
                          i ncl,
                          [
                            SFor
                              ( "fj",
                                i 0,
                                i nfeat,
                                [ SStore ("new_sum", [ v "c"; v "fj" ], f 0.0) ]
                              );
                            SStore ("new_count", [ v "c" ], i 0);
                          ] );
                    ] );
                SRegion
                  ( "k_c",
                    156,
                    187,
                    [ SAssign ("inertia", f 0.0) ]
                    @ [
                        SFor
                          ( "p",
                            i 0,
                            i npts,
                            [
                              (* Figure 10: find the closest cluster *)
                              SAssign
                                ("min_dist", CallE ("euclid_dist_2", [ v "p"; i 0 ]));
                              SAssign ("index", i 0);
                              SFor
                                ( "c",
                                  i 1,
                                  i ncl,
                                  [
                                    SAssign
                                      ( "dist",
                                        CallE ("euclid_dist_2", [ v "p"; v "c" ]) );
                                    SIf
                                      ( v "dist" < v "min_dist",
                                        [
                                          SAssign ("min_dist", v "dist");
                                          SAssign ("index", v "c");
                                        ],
                                        [] );
                                  ] );
                              SStore ("membership", [ v "p" ], v "index");
                              SFor
                                ( "fj",
                                  i 0,
                                  i nfeat,
                                  [
                                    SStore
                                      ( "new_sum",
                                        [ v "index"; v "fj" ],
                                        idx2 "new_sum" (v "index") (v "fj")
                                        + idx2 "feature" (v "p") (v "fj") );
                                  ] );
                              SStore
                                ( "new_count",
                                  [ v "index" ],
                                  idx1 "new_count" (v "index") + i 1 );
                              SAssign ("inertia", v "inertia" + v "min_dist");
                            ] );
                      ] );
                SRegion
                  ( "k_d",
                    190,
                    194,
                    [
                      SFor
                        ( "c",
                          i 0,
                          i ncl,
                          [
                            SAssign ("cnt", idx1 "new_count" (v "c"));
                            SIf
                              ( v "cnt" > i 0,
                                [
                                  SFor
                                    ( "fj",
                                      i 0,
                                      i nfeat,
                                      [
                                        SStore
                                          ( "centroid",
                                            [ v "c"; v "fj" ],
                                            idx2 "new_sum" (v "c") (v "fj")
                                            / to_float (v "cnt") );
                                        (* release the temporal
                                           accumulator (the "free" of
                                           Rodinia k_d) *)
                                        SStore
                                          ("new_sum", [ v "c"; v "fj" ], f 0.0);
                                      ] );
                                ],
                                [] );
                          ] );
                    ] );
              ] );
          SAssign ("result", v "inertia");
        ]
        @ App.verification_block ~ref_value ~tolerance:1e-8 ();
    }
  in
  {
    globals =
      [
        DArr ("feature", Ty.F64, [ npts; nfeat ]);
        DArr ("centroid", Ty.F64, [ ncl; nfeat ]);
        DArr ("new_sum", Ty.F64, [ ncl; nfeat ]);
        DArr ("new_count", Ty.I64, [ ncl ]);
        DArr ("membership", Ty.I64, [ npts ]);
        DScalar ("tran", Ty.F64);
        DScalar ("amult", Ty.F64);
      ];
    funs = [ euclid; main ];
    entry = "main";
  }

let app : App.t =
  {
    App.name = "KMEANS";
    description = "k-means clustering (Rodinia KMEANS)";
    build = (fun ~ref_value -> make ~ref_value);
    tolerance = 1e-8;
    main_iterations = 1;
    region_names = [ "k_a"; "k_b"; "k_c"; "k_d" ];
    transform = None;
  }

(** Pure-OCaml reference for the final inertia. *)
let reference_inertia () : float =
  let tran = ref 314159265.0 and amult = 1220703125.0 in
  let randlc () =
    let x', r = Machine.randlc_step !tran amult in
    tran := x';
    r
  in
  let feature = Array.make_matrix npts nfeat 0.0 in
  for p = 0 to npts - 1 do
    for fj = 0 to nfeat - 1 do
      feature.(p).(fj) <- 100.0 *. randlc ()
    done
  done;
  let centroid = Array.make_matrix ncl nfeat 0.0 in
  for c = 0 to ncl - 1 do
    for fj = 0 to nfeat - 1 do
      centroid.(c).(fj) <- feature.(c * (npts / ncl)).(fj)
    done
  done;
  let inertia = ref 0.0 in
  for _lp = 0 to passes - 1 do
    let sum = Array.make_matrix ncl nfeat 0.0 in
    let count = Array.make ncl 0 in
    inertia := 0.0;
    for p = 0 to npts - 1 do
      let dist c =
        let d = ref 0.0 in
        for fj = 0 to nfeat - 1 do
          let dv = feature.(p).(fj) -. centroid.(c).(fj) in
          d := !d +. (dv *. dv)
        done;
        !d
      in
      let min_dist = ref (dist 0) and index = ref 0 in
      for c = 1 to ncl - 1 do
        let d = dist c in
        if d < !min_dist then begin
          min_dist := d;
          index := c
        end
      done;
      for fj = 0 to nfeat - 1 do
        sum.(!index).(fj) <- sum.(!index).(fj) +. feature.(p).(fj)
      done;
      count.(!index) <- count.(!index) + 1;
      inertia := !inertia +. !min_dist
    done;
    for c = 0 to ncl - 1 do
      if count.(c) > 0 then
        for fj = 0 to nfeat - 1 do
          centroid.(c).(fj) <- sum.(c).(fj) /. Float.of_int count.(c)
        done
    done
  done;
  !inertia
