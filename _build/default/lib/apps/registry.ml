(** The benchmark registry: the ten programs of the paper's evaluation
    (Section V-A), plus the hardened CG variants of Use Case 1. *)

(** The five programs analyzed region-by-region in Figures 5/6 and
    Table I. *)
let analyzed : App.t list = [ Cg.app; Mg.app; Kmeans.app; Is.app; Lulesh.app ]

(** All ten programs of the prediction study (Table IV). *)
let all : App.t list =
  [
    Cg.app; Mg.app; Lu.app; Bt.app; Is.app;
    Dc.app; Sp.app; Ft.app; Kmeans.app; Lulesh.app;
  ]

(** Use Case 1 variants (Table III), in the paper's row order. *)
let cg_variants : App.t list =
  [ Cg.app; Cg.app_hardened_dcl; Cg.app_hardened_trunc; Cg.app_hardened_all ]

let find (name : string) : App.t =
  let pool = all @ cg_variants in
  match List.find_opt (fun (a : App.t) -> String.equal a.App.name name) pool with
  | Some a -> a
  | None ->
      invalid_arg
        (Printf.sprintf "Registry.find: unknown app %S (known: %s)" name
           (String.concat ", " (List.map (fun (a : App.t) -> a.App.name) pool)))
