(** SP — ADI solver with scalar pentadiagonal line solves (NPB SP,
    reduced to a 2-D analog).

    Like BT, but the line systems are pentadiagonal (two sub- and two
    super-diagonals), solved by the two-stage elimination NPB SP uses:
    a forward pass that eliminates both lower diagonals, then a
    two-term back substitution. *)

let n = 12
let niter = 5
let d1 = 0.25
let d2 = 0.05

let make ~(ref_value : float option) : Ast.program =
  let open Ast in
  let nm = Stdlib.( - ) n 1 in
  let diag = 1.0 +. (2.0 *. d1) +. (2.0 *. d2) in
  (* pentadiagonal forward elimination + back substitution on
     lrhs[1..nm-1].  Diagonals: -d2 -d1 diag -d1 -d2; work arrays bb
     (pivot), c1p, c2p (normalized superdiagonals). *)
  let solve_body =
    [
      (* initialize row 1 *)
      Ast.SStore ("bb", [ i 1 ], f diag);
      Ast.SStore ("c1p", [ i 1 ], f (-.d1) / idx1 "bb" (i 1));
      Ast.SStore ("c2p", [ i 1 ], f (-.d2) / idx1 "bb" (i 1));
      Ast.SStore ("lrhs", [ i 1 ], idx1 "lrhs" (i 1) / idx1 "bb" (i 1));
      (* row 2 *)
      Ast.SAssign ("l1", f (-.d1));
      Ast.SStore ("bb", [ i 2 ], f diag - (v "l1" * idx1 "c1p" (i 1)));
      Ast.SStore
        ( "c1p",
          [ i 2 ],
          (f (-.d1) - (v "l1" * idx1 "c2p" (i 1))) / idx1 "bb" (i 2) );
      Ast.SStore ("c2p", [ i 2 ], f (-.d2) / idx1 "bb" (i 2));
      Ast.SStore
        ( "lrhs",
          [ i 2 ],
          (idx1 "lrhs" (i 2) - (v "l1" * idx1 "lrhs" (i 1)))
          / idx1 "bb" (i 2) );
      (* rows 3..nm-1: eliminate both subdiagonals *)
      Ast.SFor
        ( "k",
          i 3,
          i nm,
          [
            (* first eliminate the second subdiagonal (-d2) using row k-2,
               then the updated first subdiagonal using row k-1 *)
            SAssign ("l2", f (-.d2));
            SAssign ("l1", f (-.d1) - (v "l2" * idx1 "c1p" (v "k" - i 2)));
            SStore
              ( "bb",
                [ v "k" ],
                f diag
                - (v "l2" * idx1 "c2p" (v "k" - i 2))
                - (v "l1" * idx1 "c1p" (v "k" - i 1)) );
            SStore
              ( "c1p",
                [ v "k" ],
                (f (-.d1) - (v "l1" * idx1 "c2p" (v "k" - i 1)))
                / idx1 "bb" (v "k") );
            SStore ("c2p", [ v "k" ], f (-.d2) / idx1 "bb" (v "k"));
            SStore
              ( "lrhs",
                [ v "k" ],
                (idx1 "lrhs" (v "k")
                - (v "l2" * idx1 "lrhs" (v "k" - i 2))
                - (v "l1" * idx1 "lrhs" (v "k" - i 1)))
                / idx1 "bb" (v "k") );
          ] );
      (* back substitution: two-term *)
      Ast.SStore
        ( "lrhs",
          [ i (Stdlib.( - ) nm 2) ],
          idx1 "lrhs" (i (Stdlib.( - ) nm 2))
          - (idx1 "c1p" (i (Stdlib.( - ) nm 2))
            * idx1 "lrhs" (i (Stdlib.( - ) nm 1))) );
      Ast.SForStep
        ( "kx",
          i 0,
          i (Stdlib.( - ) nm 3),
          i 1,
          [
            SAssign ("k", i (Stdlib.( - ) nm 3) - v "kx");
            SStore
              ( "lrhs",
                [ v "k" ],
                idx1 "lrhs" (v "k")
                - (idx1 "c1p" (v "k") * idx1 "lrhs" (v "k" + i 1))
                - (idx1 "c2p" (v "k") * idx1 "lrhs" (v "k" + i 2)) );
          ] );
    ]
  in
  let main : fundef =
    {
      fname = "main";
      params = [];
      ret = None;
      locals =
        [ DScalar ("rn", Ty.F64) ] @ App.verification_locals;
      body =
        [
          SAssign ("tran", f 314159265.0);
          SAssign ("amult", f 1220703125.0);
          SFor
            ( "i2",
              i 0,
              i n,
              [
                SFor
                  ( "i1",
                    i 0,
                    i n,
                    [
                      SStore
                        ("u", [ v "i2"; v "i1" ], Randlc ("tran", v "amult"));
                      SStore ("rhs", [ v "i2"; v "i1" ], f 0.0);
                    ] );
              ] );
          SFor
            ( "it",
              i 0,
              i niter,
              [
                SMark App.iter_mark_name;
                (* rhs stencil (compute_rhs analog, wider stencil) *)
                SRegion
                  ( "sp_a",
                    310,
                    360,
                    [
                      SFor
                        ( "i2",
                          i 2,
                          i (Stdlib.( - ) n 2),
                          [
                            SFor
                              ( "i1",
                                i 2,
                                i (Stdlib.( - ) n 2),
                                [
                                  SStore
                                    ( "rhs",
                                      [ v "i2"; v "i1" ],
                                      (f d1
                                      * (idx2 "u" (v "i2" - i 1) (v "i1")
                                        + idx2 "u" (v "i2" + i 1) (v "i1")
                                        + idx2 "u" (v "i2") (v "i1" - i 1)
                                        + idx2 "u" (v "i2") (v "i1" + i 1)))
                                      + (f d2
                                        * (idx2 "u" (v "i2" - i 2) (v "i1")
                                          + idx2 "u" (v "i2" + i 2) (v "i1")
                                          + idx2 "u" (v "i2") (v "i1" - i 2)
                                          + idx2 "u" (v "i2") (v "i1" + i 2)))
                                      - (f (4.0 *. (d1 +. d2))
                                        * idx2 "u" (v "i2") (v "i1")) );
                                ] );
                          ] );
                    ] );
                (* x_solve: pentadiagonal per row *)
                SRegion
                  ( "sp_b",
                    362,
                    430,
                    [
                      SFor
                        ( "i2",
                          i 1,
                          i nm,
                          [
                            SFor
                              ( "k",
                                i 0,
                                i n,
                                [
                                  SStore
                                    ("lrhs", [ v "k" ], idx2 "rhs" (v "i2") (v "k"));
                                ] );
                          ]
                          @ solve_body
                          @ [
                              SFor
                                ( "k",
                                  i 1,
                                  i nm,
                                  [
                                    SStore
                                      ( "rhs",
                                        [ v "i2"; v "k" ],
                                        idx1 "lrhs" (v "k") );
                                  ] );
                            ] );
                    ] );
                (* y_solve: pentadiagonal per column *)
                SRegion
                  ( "sp_c",
                    432,
                    500,
                    [
                      SFor
                        ( "i1",
                          i 1,
                          i nm,
                          [
                            SFor
                              ( "k",
                                i 0,
                                i n,
                                [
                                  SStore
                                    ("lrhs", [ v "k" ], idx2 "rhs" (v "k") (v "i1"));
                                ] );
                          ]
                          @ solve_body
                          @ [
                              SFor
                                ( "k",
                                  i 1,
                                  i nm,
                                  [
                                    SStore
                                      ( "rhs",
                                        [ v "k"; v "i1" ],
                                        idx1 "lrhs" (v "k") );
                                  ] );
                            ] );
                    ] );
                (* add *)
                SRegion
                  ( "sp_d",
                    502,
                    528,
                    [
                      SFor
                        ( "i2",
                          i 1,
                          i nm,
                          [
                            SFor
                              ( "i1",
                                i 1,
                                i nm,
                                [
                                  SStore
                                    ( "u",
                                      [ v "i2"; v "i1" ],
                                      idx2 "u" (v "i2") (v "i1")
                                      + idx2 "rhs" (v "i2") (v "i1") );
                                ] );
                          ] );
                    ] );
              ] );
          SAssign ("rn", f 0.0);
          SFor
            ( "i2",
              i 0,
              i n,
              [
                SFor
                  ( "i1",
                    i 0,
                    i n,
                    [
                      SAssign
                        ( "rn",
                          v "rn"
                          + (idx2 "u" (v "i2") (v "i1")
                            * idx2 "u" (v "i2") (v "i1")) );
                    ] );
              ] );
          SAssign ("result", sqrt_ (v "rn"));
        ]
        @ App.verification_block ~ref_value ~tolerance:1e-9 ();
    }
  in
  {
    globals =
      [
        DArr ("u", Ty.F64, [ n; n ]);
        DArr ("rhs", Ty.F64, [ n; n ]);
        DArr ("lrhs", Ty.F64, [ n ]);
        DArr ("bb", Ty.F64, [ n ]);
        DArr ("c1p", Ty.F64, [ n ]);
        DArr ("c2p", Ty.F64, [ n ]);
        DScalar ("tran", Ty.F64);
        DScalar ("amult", Ty.F64);
        DScalar ("l1", Ty.F64);
        DScalar ("l2", Ty.F64);
        DScalar ("fac", Ty.F64);
        DScalar ("k", Ty.I64);
      ];
    funs = [ main ];
    entry = "main";
  }

let app : App.t =
  {
    App.name = "SP";
    description = "ADI pentadiagonal line solver (NPB SP analog)";
    build = (fun ~ref_value -> make ~ref_value);
    tolerance = 1e-9;
    main_iterations = niter;
    region_names = [ "sp_a"; "sp_b"; "sp_c"; "sp_d" ];
    transform = None;
  }
