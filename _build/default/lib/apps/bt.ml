(** BT — ADI solver with tridiagonal line solves (NPB BT, reduced to a
    scalar 2-D analog).

    Each main-loop iteration computes the right-hand side from the
    current solution, performs Thomas-algorithm line solves along x and
    then along y (the analogs of NPB BT's [x_solve]/[y_solve] block
    solves: forward elimination followed by back substitution), and
    adds the update into the solution. *)

let n = 12
let niter = 5
let dcoef = 0.4 (* diffusion number *)

let make ~(ref_value : float option) : Ast.program =
  let open Ast in
  let nm = Stdlib.( - ) n 1 in
  (* Thomas solve of (-c, b, -c) tridiagonal along one line; rhs in
     "lrhs", result left in "lrhs". *)
  let thomas_line =
    [
      (* forward elimination *)
      Ast.SStore ("cp", [ i 1 ], f (-.dcoef) / f (1.0 +. (2.0 *. dcoef)));
      Ast.SStore
        ( "lrhs",
          [ i 1 ],
          idx1 "lrhs" (i 1) / f (1.0 +. (2.0 *. dcoef)) );
      Ast.SFor
        ( "k",
          i 2,
          i nm,
          [
            SAssign
              ( "m",
                f (1.0 +. (2.0 *. dcoef))
                - (f (-.dcoef) * idx1 "cp" (v "k" - i 1)) );
            SStore ("cp", [ v "k" ], f (-.dcoef) / v "m");
            SStore
              ( "lrhs",
                [ v "k" ],
                (idx1 "lrhs" (v "k")
                - (f (-.dcoef) * idx1 "lrhs" (v "k" - i 1)))
                / v "m" );
          ] );
      (* back substitution *)
      Ast.SForStep
        ( "kx",
          i 0,
          i (Stdlib.( - ) nm 2),
          i 1,
          [
            SAssign ("k", i (Stdlib.( - ) nm 2) - v "kx");
            SStore
              ( "lrhs",
                [ v "k" ],
                idx1 "lrhs" (v "k")
                - (idx1 "cp" (v "k") * idx1 "lrhs" (v "k" + i 1)) );
          ] );
    ]
  in
  let main : fundef =
    {
      fname = "main";
      params = [];
      ret = None;
      locals =
        [ DScalar ("rn", Ty.F64) ] @ App.verification_locals;
      body =
        [
          SAssign ("tran", f 314159265.0);
          SAssign ("amult", f 1220703125.0);
          SFor
            ( "i2",
              i 0,
              i n,
              [
                SFor
                  ( "i1",
                    i 0,
                    i n,
                    [
                      SStore
                        ("u", [ v "i2"; v "i1" ], Randlc ("tran", v "amult"));
                      SStore ("rhs", [ v "i2"; v "i1" ], f 0.0);
                    ] );
              ] );
          SFor
            ( "it",
              i 0,
              i niter,
              [
                SMark App.iter_mark_name;
                (* rhs from the 5-point stencil (compute_rhs analog) *)
                SRegion
                  ( "bt_a",
                    252,
                    301,
                    [
                      SFor
                        ( "i2",
                          i 1,
                          i nm,
                          [
                            SFor
                              ( "i1",
                                i 1,
                                i nm,
                                [
                                  SStore
                                    ( "rhs",
                                      [ v "i2"; v "i1" ],
                                      f dcoef
                                      * (idx2 "u" (v "i2" - i 1) (v "i1")
                                        + idx2 "u" (v "i2" + i 1) (v "i1")
                                        + idx2 "u" (v "i2") (v "i1" - i 1)
                                        + idx2 "u" (v "i2") (v "i1" + i 1)
                                        - (f 4.0 * idx2 "u" (v "i2") (v "i1"))
                                        ) );
                                ] );
                          ] );
                    ] );
                (* x_solve: one tridiagonal solve per row *)
                SRegion
                  ( "bt_b",
                    303,
                    355,
                    [
                      SFor
                        ( "i2",
                          i 1,
                          i nm,
                          [
                            SFor
                              ( "k",
                                i 0,
                                i n,
                                [
                                  SStore
                                    ("lrhs", [ v "k" ], idx2 "rhs" (v "i2") (v "k"));
                                ] );
                          ]
                          @ thomas_line
                          @ [
                              SFor
                                ( "k",
                                  i 1,
                                  i nm,
                                  [
                                    SStore
                                      ( "rhs",
                                        [ v "i2"; v "k" ],
                                        idx1 "lrhs" (v "k") );
                                  ] );
                            ] );
                    ] );
                (* y_solve: one tridiagonal solve per column *)
                SRegion
                  ( "bt_c",
                    357,
                    409,
                    [
                      SFor
                        ( "i1",
                          i 1,
                          i nm,
                          [
                            SFor
                              ( "k",
                                i 0,
                                i n,
                                [
                                  SStore
                                    ("lrhs", [ v "k" ], idx2 "rhs" (v "k") (v "i1"));
                                ] );
                          ]
                          @ thomas_line
                          @ [
                              SFor
                                ( "k",
                                  i 1,
                                  i nm,
                                  [
                                    SStore
                                      ( "rhs",
                                        [ v "k"; v "i1" ],
                                        idx1 "lrhs" (v "k") );
                                  ] );
                            ] );
                    ] );
                (* add the update (add analog) *)
                SRegion
                  ( "bt_d",
                    411,
                    437,
                    [
                      SFor
                        ( "i2",
                          i 1,
                          i nm,
                          [
                            SFor
                              ( "i1",
                                i 1,
                                i nm,
                                [
                                  SStore
                                    ( "u",
                                      [ v "i2"; v "i1" ],
                                      idx2 "u" (v "i2") (v "i1")
                                      + idx2 "rhs" (v "i2") (v "i1") );
                                ] );
                          ] );
                    ] );
              ] );
          (* verification: solution norm *)
          SAssign ("rn", f 0.0);
          SFor
            ( "i2",
              i 0,
              i n,
              [
                SFor
                  ( "i1",
                    i 0,
                    i n,
                    [
                      SAssign
                        ( "rn",
                          v "rn"
                          + (idx2 "u" (v "i2") (v "i1")
                            * idx2 "u" (v "i2") (v "i1")) );
                    ] );
              ] );
          SAssign ("result", sqrt_ (v "rn"));
        ]
        @ App.verification_block ~ref_value ~tolerance:1e-9 ();
    }
  in
  {
    globals =
      [
        DArr ("u", Ty.F64, [ n; n ]);
        DArr ("rhs", Ty.F64, [ n; n ]);
        DArr ("lrhs", Ty.F64, [ n ]);
        DArr ("cp", Ty.F64, [ n ]);
        DScalar ("tran", Ty.F64);
        DScalar ("amult", Ty.F64);
        DScalar ("m", Ty.F64);
        DScalar ("k", Ty.I64);
      ];
    funs = [ main ];
    entry = "main";
  }

let app : App.t =
  {
    App.name = "BT";
    description = "ADI tridiagonal line solver (NPB BT analog)";
    build = (fun ~ref_value -> make ~ref_value);
    tolerance = 1e-9;
    main_iterations = niter;
    region_names = [ "bt_a"; "bt_b"; "bt_c"; "bt_d" ];
    transform = None;
  }
