(** IS — integer bucket sort (NPB IS, scaled down).

    Each of the [niter] main-loop iterations perturbs two keys, counts
    keys per bucket using the significant-bit shift of Figure 11 (the
    Shifting pattern: faults in the low [bshift] bits of a key cannot
    change its bucket), scatters keys by bucket, and completes a
    counting sort.  Verification follows NPB IS: partial ranks of the
    perturbed test keys are accumulated across iterations and the final
    array must be sorted; the headline result packs both, compared
    exactly (integer data). *)

let num_keys = 128
let max_key = 256 (* 2^8 *)
let nbuckets = 32
let bshift = 3 (* 8 - 5: bucket = key >> bshift *)
let niter = 10

let make ~(ref_value : float option) : Ast.program =
  let open Ast in
  let main : fundef =
    {
      fname = "main";
      params = [];
      ret = None;
      locals =
        [
          DScalar ("kv", Ty.F64);
          DScalar ("bk", Ty.I64);
          DScalar ("pos", Ty.I64);
          DScalar ("partial", Ty.I64);
          DScalar ("sorted", Ty.I64);
          DScalar ("acc", Ty.I64);
        ]
        @ App.verification_locals;
      body =
        [
          SAssign ("tran", f 314159265.0);
          SAssign ("amult", f 1220703125.0);
          (* key generation: sum of four uniforms, NPB style *)
          SFor
            ( "j",
              i 0,
              i num_keys,
              [
                SAssign
                  ( "kv",
                    Randlc ("tran", v "amult")
                    + Randlc ("tran", v "amult")
                    + Randlc ("tran", v "amult")
                    + Randlc ("tran", v "amult") );
                SStore
                  ( "key_array",
                    [ v "j" ],
                    to_int (f (Float.of_int max_key /. 4.0) * v "kv") );
              ] );
          SAssign ("partial", i 0);
          (* ranking iterations *)
          SFor
            ( "it",
              i 0,
              i niter,
              [
                SMark App.iter_mark_name;
                SRegion
                  ( "is_a",
                    435,
                    472,
                    [
                      (* key perturbation, as in NPB rank() *)
                      SStore ("key_array", [ v "it" ], v "it");
                      SStore
                        ( "key_array",
                          [ v "it" + i niter ],
                          i (Stdlib.( - ) max_key 1) - v "it" );
                      SFor
                        ( "j",
                          i 0,
                          i nbuckets,
                          [ SStore ("bucket_size", [ v "j" ], i 0) ] );
                    ] );
                SRegion
                  ( "is_b",
                    473,
                    478,
                    [
                      (* Figure 11: bucket counting by significant bits *)
                      SFor
                        ( "j",
                          i 0,
                          i num_keys,
                          [
                            SAssign ("bk", idx1 "key_array" (v "j") >> i bshift);
                            SStore
                              ( "bucket_size",
                                [ v "bk" ],
                                idx1 "bucket_size" (v "bk") + i 1 );
                          ] );
                    ] );
                SRegion
                  ( "is_c",
                    500,
                    638,
                    [
                      (* bucket pointers (exclusive prefix sum) *)
                      SAssign ("acc", i 0);
                      SFor
                        ( "j",
                          i 0,
                          i nbuckets,
                          [
                            SStore ("bucket_ptr", [ v "j" ], v "acc");
                            SAssign
                              ("acc", v "acc" + idx1 "bucket_size" (v "j"));
                          ] );
                      (* scatter keys bucket-ordered *)
                      SFor
                        ( "j",
                          i 0,
                          i num_keys,
                          [
                            SAssign ("bk", idx1 "key_array" (v "j") >> i bshift);
                            SAssign ("pos", idx1 "bucket_ptr" (v "bk"));
                            SStore
                              ("key_buff", [ v "pos" ], idx1 "key_array" (v "j"));
                            SStore ("bucket_ptr", [ v "bk" ], v "pos" + i 1);
                          ] );
                      (* counting sort over the full key range *)
                      SFor
                        ( "j",
                          i 0,
                          i (Stdlib.( + ) max_key 1),
                          [ SStore ("key_count", [ v "j" ], i 0) ] );
                      SFor
                        ( "j",
                          i 0,
                          i num_keys,
                          [
                            SAssign ("bk", idx1 "key_buff" (v "j"));
                            SStore
                              ( "key_count",
                                [ v "bk" ],
                                idx1 "key_count" (v "bk") + i 1 );
                          ] );
                      SAssign ("acc", i 0);
                      SFor
                        ( "j",
                          i 0,
                          i (Stdlib.( + ) max_key 1),
                          [
                            SAssign ("pos", idx1 "key_count" (v "j"));
                            SStore ("key_count", [ v "j" ], v "acc");
                            SAssign ("acc", v "acc" + v "pos");
                          ] );
                      SFor
                        ( "j",
                          i 0,
                          i num_keys,
                          [
                            SAssign ("bk", idx1 "key_buff" (v "j"));
                            SAssign ("pos", idx1 "key_count" (v "bk"));
                            SStore ("key_sorted", [ v "pos" ], v "bk");
                            SStore ("key_count", [ v "bk" ], v "pos" + i 1);
                          ] );
                      (* partial verification: ranks of the two test keys.
                         rank(V) = #keys < V; after the counting pass,
                         key_count.(V) holds rank(V) + count(V), so we
                         recompute the rank from the sorted array. *)
                      SAssign ("pos", i 0);
                      SFor
                        ( "j",
                          i 0,
                          i num_keys,
                          [
                            SIf
                              ( idx1 "key_sorted" (v "j") < v "it",
                                [ SAssign ("pos", v "pos" + i 1) ],
                                [] );
                          ] );
                      SAssign ("partial", v "partial" + v "pos");
                      SAssign ("pos", i 0);
                      SFor
                        ( "j",
                          i 0,
                          i num_keys,
                          [
                            SIf
                              ( idx1 "key_sorted" (v "j")
                                < i (Stdlib.( - ) max_key 1) - v "it",
                                [ SAssign ("pos", v "pos" + i 1) ],
                                [] );
                          ] );
                      SAssign ("partial", v "partial" + v "pos");
                    ] );
              ] );
          (* full verification: sortedness + weighted checksum *)
          SAssign ("sorted", i 1);
          SFor
            ( "j",
              i 1,
              i num_keys,
              [
                SIf
                  ( idx1 "key_sorted" (v "j" - i 1) > idx1 "key_sorted" (v "j"),
                    [ SAssign ("sorted", i 0) ],
                    [] );
              ] );
          (* NPB IS verification: the accumulated partial ranks and the
             final sortedness; key values themselves are not
             checksummed, so value corruption that preserves both is a
             Verification Success *)
          SAssign
            ( "result",
              to_float (v "partial")
              + (f 1e9 * to_float (i 1 - v "sorted")) );
        ]
        @ App.verification_block ~ref_value ~tolerance:0.0 ();
    }
  in
  {
    globals =
      [
        DArr ("key_array", Ty.I64, [ num_keys ]);
        DArr ("key_buff", Ty.I64, [ num_keys ]);
        DArr ("key_sorted", Ty.I64, [ num_keys ]);
        DArr ("bucket_size", Ty.I64, [ nbuckets ]);
        DArr ("bucket_ptr", Ty.I64, [ nbuckets ]);
        DArr ("key_count", Ty.I64, [ Stdlib.( + ) max_key 1 ]);
        DScalar ("tran", Ty.F64);
        DScalar ("amult", Ty.F64);
      ];
    funs = [ main ];
    entry = "main";
  }

let app : App.t =
  {
    App.name = "IS";
    description = "integer bucket + counting sort (NPB IS)";
    build = (fun ~ref_value -> make ~ref_value);
    tolerance = 0.0;
    main_iterations = niter;
    region_names = [ "is_a"; "is_b"; "is_c" ];
    transform = None;
  }

(** Pure-OCaml reference for the headline result. *)
let reference_result () : float =
  let tran = ref 314159265.0 and amult = 1220703125.0 in
  let randlc () =
    let x', r = Machine.randlc_step !tran amult in
    tran := x';
    r
  in
  let key = Array.make num_keys 0 in
  for j = 0 to num_keys - 1 do
    let kv = randlc () +. randlc () +. randlc () +. randlc () in
    key.(j) <- int_of_float (Float.of_int max_key /. 4.0 *. kv)
  done;
  let partial = ref 0 in
  let sorted_arr = ref [||] in
  for it = 0 to niter - 1 do
    key.(it) <- it;
    key.(it + niter) <- max_key - 1 - it;
    let s = Array.copy key in
    Array.sort compare s;
    sorted_arr := s;
    let rank value = Array.fold_left (fun a k -> if k < value then a + 1 else a) 0 key in
    partial := !partial + rank it + rank (max_key - 1 - it)
  done;
  assert (Array.length !sorted_arr > 0);
  Float.of_int !partial
