lib/apps/ft.ml: App Ast Float Stdlib Ty
