lib/apps/kmeans.ml: App Array Ast Float Machine Stdlib Ty
