lib/apps/bt.ml: App Ast Stdlib Ty
