lib/apps/sp.ml: App Ast Stdlib Ty
