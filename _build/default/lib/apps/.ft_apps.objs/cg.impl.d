lib/apps/cg.ml: App Array Ast Float List Machine Stdlib Ty
