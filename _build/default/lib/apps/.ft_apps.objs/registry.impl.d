lib/apps/registry.ml: App Bt Cg Dc Ft Is Kmeans List Lu Lulesh Mg Printf Sp String
