lib/apps/registry.ml: App Array Bt Cg Char Dc Ft Fun Is Kmeans List Lu Lulesh Mg Printexc Printf Sp String
