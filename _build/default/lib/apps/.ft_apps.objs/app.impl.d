lib/apps/app.ml: Ast Compile Float Hashtbl List Machine Printf Prog Stdlib String Trace Ty
