lib/apps/is.ml: App Array Ast Float Machine Stdlib Ty
