lib/apps/dc.ml: App Array Ast Float Machine Stdlib Ty
