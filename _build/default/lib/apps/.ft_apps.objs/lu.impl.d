lib/apps/lu.ml: App Array Ast Float Machine Stdlib Ty
