lib/apps/lulesh.ml: App Ast Stdlib Ty
