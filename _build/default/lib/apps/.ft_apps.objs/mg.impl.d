lib/apps/mg.ml: App Array Ast Float Machine Stdlib Ty
