lib/apps/app.mli: Ast Machine Prog Trace
