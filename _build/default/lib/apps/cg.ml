(** CG — conjugate-gradient solver (NPB CG, scaled to class-S-like
    dimensions).

    Solves A z = x for a sparse symmetric positive-definite matrix with
    a fixed {-8,-1,0,+1,+8} stencil sparsity whose off-diagonal weights
    come from [sprnvc] (the NPB random-sparse-vector generator, built
    on [randlc], with the global [v]/[iv] arrays that Use Case 1 of the
    paper hardens).  The main loop runs [niter] outer iterations; each
    calls [conj_grad] (the five paper regions cg_a..cg_e live there)
    and computes [zeta = shift + 1 / (x . z)].

    Hardening switches (Use Case 1, Table III):
    {ul
    {- [harden_dcl]: [sprnvc] works on local temporary arrays and
       copies back at the end — the Dead Corrupted Locations + Data
       Overwriting transformation of Figure 12(b);}
    {- [harden_trunc]: a window of the p.q dot product in cg_c is
       computed in truncated 32-bit integer arithmetic — the Truncation
       transformation of Figure 13(b).}} *)

let n = 32
let nonzer = 7
let niter = 10
let cgitmax = 5
let shift = 10.0
let nn1 = 32 (* smallest power of two >= n *)

let offsets = [ -8; -1; 1; 8 ]

let make ?(harden_dcl = false) ?(harden_trunc = false) ()
    ~(ref_value : float option) : Ast.program =
  (* plain-integer constants, computed before [Ast]'s operators shadow
     the stdlib ones *)
  let nz1 = Stdlib.( + ) nonzer 1 in
  let nsegs = Stdlib.( / ) n nonzer in
  let noffs = List.length offsets in
  let open Ast in
  let sprnvc_body_core ~v_arr ~iv_arr =
    [
      SAssign ("nzv", i 0);
      SWhile
        ( v "nzv" < v "nz_arg",
          [
            SAssign ("vecelt", Randlc ("tran", v "amult"));
            SAssign ("vecloc", Randlc ("tran", v "amult"));
            SAssign ("ivc", to_int (to_float (i nn1) * v "vecloc") + i 1);
            SIf
              ( v "ivc" <= v "n_arg",
                [
                  SAssign ("was_gen", i 0);
                  SFor
                    ( "ii",
                      i 0,
                      v "nzv",
                      [
                        SIf
                          ( idx1 iv_arr (v "ii") = v "ivc",
                            [ SAssign ("was_gen", i 1) ],
                            [] );
                      ] );
                  SIf
                    ( v "was_gen" = i 0,
                      [
                        SStore (v_arr, [ v "nzv" ], v "vecelt");
                        SStore (iv_arr, [ v "nzv" ], v "ivc");
                        SAssign ("nzv", v "nzv" + i 1);
                      ],
                      [] );
                ],
                [] );
          ] );
    ]
  in
  let sprnvc : fundef =
    if harden_dcl then
      {
        fname = "sprnvc";
        params =
          [
            { pname = "n_arg"; pty = Ty.I64; parr = false; pdims = [] };
            { pname = "nz_arg"; pty = Ty.I64; parr = false; pdims = [] };
          ];
        ret = None;
        locals =
          [
            DScalar ("nzv", Ty.I64);
            DScalar ("vecelt", Ty.F64);
            DScalar ("vecloc", Ty.F64);
            DScalar ("ivc", Ty.I64);
            DScalar ("was_gen", Ty.I64);
            (* the hardened variant works on temporaries and copies
               back, so errors in v/iv are overwritten and errors in
               the temporaries die here (Figure 12b) *)
            DArr ("v_tmp", Ty.F64, [ nz1 ]);
            DArr ("iv_tmp", Ty.I64, [ nz1 ]);
          ];
        body =
          List.concat
            [
              [
                SFor
                  ( "ii",
                    i 0,
                    i nz1,
                    [
                      SStore ("v_tmp", [ v "ii" ], idx1 "v" (v "ii"));
                      SStore ("iv_tmp", [ v "ii" ], idx1 "iv" (v "ii"));
                    ] );
              ];
              sprnvc_body_core ~v_arr:"v_tmp" ~iv_arr:"iv_tmp";
              [
                SFor
                  ( "ii",
                    i 0,
                    i nz1,
                    [
                      SStore ("v", [ v "ii" ], idx1 "v_tmp" (v "ii"));
                      SStore ("iv", [ v "ii" ], idx1 "iv_tmp" (v "ii"));
                    ] );
              ];
            ];
      }
    else
      {
        fname = "sprnvc";
        params =
          [
            { pname = "n_arg"; pty = Ty.I64; parr = false; pdims = [] };
            { pname = "nz_arg"; pty = Ty.I64; parr = false; pdims = [] };
          ];
        ret = None;
        locals =
          [
            DScalar ("nzv", Ty.I64);
            DScalar ("vecelt", Ty.F64);
            DScalar ("vecloc", Ty.F64);
            DScalar ("ivc", Ty.I64);
            DScalar ("was_gen", Ty.I64);
          ];
        body = sprnvc_body_core ~v_arr:"v" ~iv_arr:"iv";
      }
  in
  (* q = A * src, into dst.  A is the stencil matrix with diagonal d[]
     and off-diagonal 0.5*(w[i]+w[j]). *)
  let spmv dst src =
    [
      SFor
        ( "j",
          i 0,
          i n,
          [
            SAssign ("sum", idx1 "d" (v "j") * idx1 src (v "j"));
            SFor
              ( "k",
                i 0,
                i noffs,
                [
                  SAssign ("jo", v "j" + idx1 "off" (v "k"));
                  SIf
                    ( Bin (AndB, v "jo" >= i 0, v "jo" < i n),
                      [
                        SAssign
                          ( "sum",
                            v "sum"
                            + f 0.5
                              * (idx1 "w" (v "j") + idx1 "w" (v "jo"))
                              * idx1 src (v "jo") );
                      ],
                      [] );
                ] );
            SStore (dst, [ v "j" ], v "sum");
          ] );
    ]
  in
  let dot_pq_body =
    if harden_trunc then
      [
        SAssign ("dd", f 0.0);
        SFor
          ( "j",
            i 0,
            i n,
            [
              SIf
                ( Bin (AndB, v "j" >= i 20, v "j" <= i 21),
                  [
                    (* truncation hardening: compute this window of the
                       dot product in 32-bit integer arithmetic
                       (Figure 13b) *)
                    SAssign ("tmp", trunc32 (to_int (idx1 "p" (v "j"))));
                    SAssign ("tmp1", trunc32 (to_int (idx1 "q" (v "j"))));
                    SAssign ("dd", v "dd" + to_float (v "tmp" * v "tmp1"));
                  ],
                  [
                    SAssign
                      ("dd", v "dd" + (idx1 "p" (v "j") * idx1 "q" (v "j")));
                  ] );
            ] );
      ]
    else
      [
        SAssign ("dd", f 0.0);
        SFor
          ( "j",
            i 0,
            i n,
            [ SAssign ("dd", v "dd" + (idx1 "p" (v "j") * idx1 "q" (v "j"))) ]
          );
      ]
  in
  let conj_grad : fundef =
    {
      fname = "conj_grad";
      params = [];
      ret = None;
      locals =
        [
          DScalar ("sum", Ty.F64);
          DScalar ("dd", Ty.F64);
          DScalar ("dt", Ty.F64);
          DScalar ("tmp", Ty.I64);
          DScalar ("tmp1", Ty.I64);
          DScalar ("jo", Ty.I64);
        ];
      body =
        [
          SRegion
            ( "cg_a",
              434,
              439,
              [
                SFor
                  ( "j",
                    i 0,
                    i n,
                    [
                      SStore ("q", [ v "j" ], f 0.0);
                      SStore ("z", [ v "j" ], f 0.0);
                      SStore ("r", [ v "j" ], idx1 "x" (v "j"));
                      SStore ("p", [ v "j" ], idx1 "x" (v "j"));
                    ] );
              ] );
          SRegion
            ( "cg_b",
              440,
              453,
              [
                SAssign ("rho", f 0.0);
                SFor
                  ( "j",
                    i 0,
                    i n,
                    [
                      SAssign
                        ("rho", v "rho" + (idx1 "r" (v "j") * idx1 "r" (v "j")));
                    ] );
              ] );
          SRegion
            ( "cg_c",
              454,
              460,
              [
                SFor
                  ( "cgit",
                    i 0,
                    i cgitmax,
                    List.concat
                      [
                        spmv "q" "p";
                        dot_pq_body;
                        [
                          SAssign ("alpha", v "rho" / v "dd");
                          SFor
                            ( "j",
                              i 0,
                              i n,
                              [
                                SStore
                                  ( "z",
                                    [ v "j" ],
                                    idx1 "z" (v "j")
                                    + (v "alpha" * idx1 "p" (v "j")) );
                                SStore
                                  ( "r",
                                    [ v "j" ],
                                    idx1 "r" (v "j")
                                    - (v "alpha" * idx1 "q" (v "j")) );
                              ] );
                          SAssign ("rho0", v "rho");
                          SAssign ("rho", f 0.0);
                          SFor
                            ( "j",
                              i 0,
                              i n,
                              [
                                SAssign
                                  ( "rho",
                                    v "rho"
                                    + (idx1 "r" (v "j") * idx1 "r" (v "j")) );
                              ] );
                          SAssign ("beta", v "rho" / v "rho0");
                          SFor
                            ( "j",
                              i 0,
                              i n,
                              [
                                SStore
                                  ( "p",
                                    [ v "j" ],
                                    idx1 "r" (v "j")
                                    + (v "beta" * idx1 "p" (v "j")) );
                              ] );
                        ];
                      ] );
              ] );
          SRegion ("cg_d", 461, 574, spmv "r" "z");
          SRegion
            ( "cg_e",
              575,
              584,
              [
                SAssign ("sum", f 0.0);
                SFor
                  ( "j",
                    i 0,
                    i n,
                    [
                      SAssign ("dt", idx1 "x" (v "j") - idx1 "r" (v "j"));
                      SAssign ("sum", v "sum" + (v "dt" * v "dt"));
                    ] );
                SAssign ("rnorm", sqrt_ (v "sum"));
              ] );
        ];
    }
  in
  let main : fundef =
    {
      fname = "main";
      params = [];
      ret = None;
      locals =
        [
          DScalar ("xz", Ty.F64);
          DScalar ("xn", Ty.F64);
          DScalar ("norm", Ty.F64);
          DScalar ("adiag", Ty.F64);
          DScalar ("jo", Ty.I64);
          DScalar ("seg", Ty.I64);
        ]
        @ App.verification_locals;
      body =
        [
          (* setup: randlc seeds, stencil offsets, random row weights *)
          SAssign ("tran", f 314159265.0);
          SAssign ("amult", f 1220703125.0);
          SStore ("off", [ i 0 ], i (-8));
          SStore ("off", [ i 1 ], i (-1));
          SStore ("off", [ i 2 ], i 1);
          SStore ("off", [ i 3 ], i 8);
          SFor ("j", i 0, i n, [ SStore ("w", [ v "j" ], f 0.0) ]);
          (* makea: scatter sprnvc-generated sparse vectors into w *)
          SFor
            ( "seg",
              i 0,
              i nsegs,
              [
                SCall ("sprnvc", [ i n; i nonzer ]);
                SFor
                  ( "k",
                    i 0,
                    i nonzer,
                    [
                      SAssign ("jo", Bin (Rem, idx1 "iv" (v "k") - i 1, i n));
                      SStore
                        ( "w",
                          [ v "jo" ],
                          idx1 "w" (v "jo") + idx1 "v" (v "k") );
                    ] );
              ] );
          (* diagonal: strictly dominant, so A is SPD *)
          SFor
            ( "j",
              i 0,
              i n,
              [
                SAssign ("adiag", f shift);
                SFor
                  ( "k",
                    i 0,
                    i noffs,
                    [
                      SAssign ("jo", v "j" + idx1 "off" (v "k"));
                      SIf
                        ( Bin (AndB, v "jo" >= i 0, v "jo" < i n),
                          [
                            SAssign
                              ( "adiag",
                                v "adiag"
                                + abs_
                                    (f 0.5
                                    * (idx1 "w" (v "j") + idx1 "w" (v "jo")))
                              );
                          ],
                          [] );
                    ] );
                SStore ("d", [ v "j" ], v "adiag");
              ] );
          SFor ("j", i 0, i n, [ SStore ("x", [ v "j" ], f 1.0) ]);
          SAssign ("zeta", f 0.0);
          (* main loop *)
          SFor
            ( "it",
              i 0,
              i niter,
              [
                SMark App.iter_mark_name;
                SCall ("conj_grad", []);
                SAssign ("xz", f 0.0);
                SAssign ("xn", f 0.0);
                SFor
                  ( "j",
                    i 0,
                    i n,
                    [
                      SAssign
                        ("xz", v "xz" + (idx1 "x" (v "j") * idx1 "z" (v "j")));
                      SAssign
                        ("xn", v "xn" + (idx1 "z" (v "j") * idx1 "z" (v "j")));
                    ] );
                SAssign ("zeta", f shift + (f 1.0 / v "xz"));
                SAssign ("norm", f 1.0 / sqrt_ (v "xn"));
                SFor
                  ( "j",
                    i 0,
                    i n,
                    [ SStore ("x", [ v "j" ], v "norm" * idx1 "z" (v "j")) ] );
              ] );
          SAssign ("result", v "zeta");
        ]
        @ App.verification_block ~ref_value ~tolerance:1e-10 ();
    }
  in
  {
    globals =
      [
        DArr ("x", Ty.F64, [ n ]);
        DArr ("z", Ty.F64, [ n ]);
        DArr ("p", Ty.F64, [ n ]);
        DArr ("q", Ty.F64, [ n ]);
        DArr ("r", Ty.F64, [ n ]);
        DArr ("w", Ty.F64, [ n ]);
        DArr ("d", Ty.F64, [ n ]);
        DArr ("off", Ty.I64, [ List.length offsets ]);
        DArr ("v", Ty.F64, [ nz1 ]);
        DArr ("iv", Ty.I64, [ nz1 ]);
        DScalar ("tran", Ty.F64);
        DScalar ("amult", Ty.F64);
        DScalar ("zeta", Ty.F64);
        DScalar ("rho", Ty.F64);
        DScalar ("rho0", Ty.F64);
        DScalar ("alpha", Ty.F64);
        DScalar ("beta", Ty.F64);
        DScalar ("rnorm", Ty.F64);
      ];
    funs = [ sprnvc; conj_grad; main ];
    entry = "main";
  }

let app : App.t =
  {
    App.name = "CG";
    description = "conjugate gradient with random sparse SPD matrix (NPB CG)";
    build = (fun ~ref_value -> make () ~ref_value);
    tolerance = 1e-10;
    main_iterations = niter;
    region_names = [ "cg_a"; "cg_b"; "cg_c"; "cg_d"; "cg_e" ];
    transform = None;
  }

(** Use Case 1 variants (Table III). *)
let app_hardened_dcl : App.t =
  {
    app with
    App.name = "CG+dcl";
    description = "CG with DCL+overwriting hardening in sprnvc";
    build = (fun ~ref_value -> make ~harden_dcl:true () ~ref_value);
  }

let app_hardened_trunc : App.t =
  {
    app with
    App.name = "CG+trunc";
    description = "CG with truncation hardening in the p.q dot product";
    build = (fun ~ref_value -> make ~harden_trunc:true () ~ref_value);
  }

let app_hardened_all : App.t =
  {
    app with
    App.name = "CG+all";
    description = "CG with all three patterns applied";
    build =
      (fun ~ref_value -> make ~harden_dcl:true ~harden_trunc:true () ~ref_value);
  }

(** Pure-OCaml reference implementation of the same computation, used
    to validate the compiler + VM pipeline end to end. *)
let reference_zeta () : float =
  let tran = ref 314159265.0 and amult = 1220703125.0 in
  let randlc () =
    let x', r = Machine.randlc_step !tran amult in
    tran := x';
    r
  in
  let w = Array.make n 0.0 in
  let v = Array.make (nonzer + 1) 0.0 and iv = Array.make (nonzer + 1) 0 in
  let sprnvc () =
    let nzv = ref 0 in
    while !nzv < nonzer do
      let vecelt = randlc () in
      let vecloc = randlc () in
      let ivc = int_of_float (float_of_int nn1 *. vecloc) + 1 in
      if ivc <= n then begin
        let was_gen = ref false in
        for ii = 0 to !nzv - 1 do
          if iv.(ii) = ivc then was_gen := true
        done;
        if not !was_gen then begin
          v.(!nzv) <- vecelt;
          iv.(!nzv) <- ivc;
          incr nzv
        end
      end
    done
  in
  for _seg = 0 to (n / nonzer) - 1 do
    sprnvc ();
    for k = 0 to nonzer - 1 do
      let jo = (iv.(k) - 1) mod n in
      w.(jo) <- w.(jo) +. v.(k)
    done
  done;
  let offs = Array.of_list offsets in
  let d = Array.make n 0.0 in
  for j = 0 to n - 1 do
    let adiag = ref shift in
    Array.iter
      (fun o ->
        let jo = j + o in
        if jo >= 0 && jo < n then
          adiag := !adiag +. Float.abs (0.5 *. (w.(j) +. w.(jo))))
      offs;
    d.(j) <- !adiag
  done;
  let x = Array.make n 1.0 in
  let z = Array.make n 0.0 in
  let p = Array.make n 0.0 in
  let q = Array.make n 0.0 in
  let r = Array.make n 0.0 in
  let spmv dst src =
    for j = 0 to n - 1 do
      let sum = ref (d.(j) *. src.(j)) in
      Array.iter
        (fun o ->
          let jo = j + o in
          if jo >= 0 && jo < n then
            sum := !sum +. (0.5 *. (w.(j) +. w.(jo)) *. src.(jo)))
        offs;
      dst.(j) <- !sum
    done
  in
  let zeta = ref 0.0 in
  for _it = 0 to niter - 1 do
    for j = 0 to n - 1 do
      q.(j) <- 0.0;
      z.(j) <- 0.0;
      r.(j) <- x.(j);
      p.(j) <- x.(j)
    done;
    let rho = ref 0.0 in
    for j = 0 to n - 1 do
      rho := !rho +. (r.(j) *. r.(j))
    done;
    for _cgit = 0 to cgitmax - 1 do
      spmv q p;
      let dd = ref 0.0 in
      for j = 0 to n - 1 do
        dd := !dd +. (p.(j) *. q.(j))
      done;
      let alpha = !rho /. !dd in
      for j = 0 to n - 1 do
        z.(j) <- z.(j) +. (alpha *. p.(j));
        r.(j) <- r.(j) -. (alpha *. q.(j))
      done;
      let rho0 = !rho in
      rho := 0.0;
      for j = 0 to n - 1 do
        rho := !rho +. (r.(j) *. r.(j))
      done;
      let beta = !rho /. rho0 in
      for j = 0 to n - 1 do
        p.(j) <- r.(j) +. (beta *. p.(j))
      done
    done;
    let xz = ref 0.0 and xn = ref 0.0 in
    for j = 0 to n - 1 do
      xz := !xz +. (x.(j) *. z.(j));
      xn := !xn +. (z.(j) *. z.(j))
    done;
    zeta := shift +. (1.0 /. !xz);
    let norm = 1.0 /. Float.sqrt !xn in
    for j = 0 to n - 1 do
      x.(j) <- norm *. z.(j)
    done
  done;
  !zeta
