(** FT — 3-D fast Fourier transform spectral solver (NPB FT, scaled).

    Random initial data is transformed to frequency space once with a
    radix-2 complex FFT applied along each of the three dimensions
    (bit-reversal permutations are the shift sites of FT's Table-IV
    profile).  Each main-loop iteration then {e evolves} the spectrum
    by a smooth per-mode decay factor, inverse-transforms a work copy,
    and accumulates the NPB-style strided checksum.

    Substitution note: the IR has no [exp] primitive, so the spectral
    decay factor exp(-4 pi^2 alpha |k|^2 t) is replaced by the rational
    decay 1/(1 + alpha |k|^2) applied cumulatively per iteration —
    positive, strictly less than one, and mode-dependent, which is the
    property the evolve step needs. *)

let nfft = 4
let log2n = 2
let niter = 4
let alpha = 0.3

(* One line-FFT function along a chosen dimension.  [order] builds the
   3-D index from (line coordinates a,b and position t).  The line is
   staged through lre/lim, bit-reversed, butterflied with the twiddle
   tables, and stored back.  Inverse transforms use the conjugate
   twiddles and scale by 1/n. *)
let fft_fn ~(name : string) ~(re : string) ~(im : string) ~(inverse : bool)
    ~(order : Ast.expr -> Ast.expr -> Ast.expr -> Ast.expr list) : Ast.fundef =
  let open Ast in
  let wr = if inverse then "iwr" else "fwr" in
  let wi = if inverse then "iwi" else "fwi" in
  {
    fname = name;
    params = [];
    ret = None;
    locals =
      [
        DScalar ("rr", Ty.I64);
        DScalar ("half", Ty.I64);
        DScalar ("tw", Ty.I64);
        DScalar ("tre", Ty.F64);
        DScalar ("tim", Ty.F64);
        DScalar ("ure", Ty.F64);
        DScalar ("uim", Ty.F64);
        DScalar ("swp", Ty.F64);
      ];
    body =
      [
        SFor
          ( "la",
            i 0,
            i nfft,
            [
              SFor
                ( "lb",
                  i 0,
                  i nfft,
                  [
                    (* gather the line *)
                    SFor
                      ( "t",
                        i 0,
                        i nfft,
                        [
                          SStore
                            ("lre", [ v "t" ], Idx (re, order (v "la") (v "lb") (v "t")));
                          SStore
                            ("lim", [ v "t" ], Idx (im, order (v "la") (v "lb") (v "t")));
                        ] );
                    (* bit-reversal permutation (shift sites) *)
                    SFor
                      ( "t",
                        i 0,
                        i nfft,
                        [
                          SAssign ("rr", i 0);
                          SFor
                            ( "b",
                              i 0,
                              i log2n,
                              [
                                SAssign
                                  ( "rr",
                                    v "rr"
                                    ||| (Bin (AndB, v "t" >> v "b", i 1)
                                        << (i (Stdlib.( - ) log2n 1) - v "b"))
                                  );
                              ] );
                          SIf
                            ( v "rr" > v "t",
                              [
                                SAssign ("swp", idx1 "lre" (v "t"));
                                SStore ("lre", [ v "t" ], idx1 "lre" (v "rr"));
                                SStore ("lre", [ v "rr" ], v "swp");
                                SAssign ("swp", idx1 "lim" (v "t"));
                                SStore ("lim", [ v "t" ], idx1 "lim" (v "rr"));
                                SStore ("lim", [ v "rr" ], v "swp");
                              ],
                              [] );
                        ] );
                    (* butterfly stages *)
                    SFor
                      ( "s",
                        i 1,
                        i (Stdlib.( + ) log2n 1),
                        [
                          SAssign ("m", i 1 << v "s");
                          SAssign ("half", v "m" >> i 1);
                          SForStep
                            ( "k",
                              i 0,
                              i nfft,
                              v "m",
                              [
                                SFor
                                  ( "jj",
                                    i 0,
                                    v "half",
                                    [
                                      SAssign
                                        ( "tw",
                                          v "jj" * (i nfft / v "m") );
                                      SAssign
                                        ( "tre",
                                          (idx1 wr (v "tw")
                                           * idx1 "lre" (v "k" + v "jj" + v "half"))
                                          - (idx1 wi (v "tw")
                                            * idx1 "lim" (v "k" + v "jj" + v "half"))
                                        );
                                      SAssign
                                        ( "tim",
                                          (idx1 wr (v "tw")
                                           * idx1 "lim" (v "k" + v "jj" + v "half"))
                                          + (idx1 wi (v "tw")
                                            * idx1 "lre" (v "k" + v "jj" + v "half"))
                                        );
                                      SAssign ("ure", idx1 "lre" (v "k" + v "jj"));
                                      SAssign ("uim", idx1 "lim" (v "k" + v "jj"));
                                      SStore
                                        ("lre", [ v "k" + v "jj" ], v "ure" + v "tre");
                                      SStore
                                        ("lim", [ v "k" + v "jj" ], v "uim" + v "tim");
                                      SStore
                                        ( "lre",
                                          [ v "k" + v "jj" + v "half" ],
                                          v "ure" - v "tre" );
                                      SStore
                                        ( "lim",
                                          [ v "k" + v "jj" + v "half" ],
                                          v "uim" - v "tim" );
                                    ] );
                              ] );
                        ] );
                    (* scatter the line back (inverse scales by 1/n) *)
                    SFor
                      ( "t",
                        i 0,
                        i nfft,
                        [
                          SStore
                            ( re,
                              order (v "la") (v "lb") (v "t"),
                              if inverse then
                                idx1 "lre" (v "t") / f (Float.of_int nfft)
                              else idx1 "lre" (v "t") );
                          SStore
                            ( im,
                              order (v "la") (v "lb") (v "t"),
                              if inverse then
                                idx1 "lim" (v "t") / f (Float.of_int nfft)
                              else idx1 "lim" (v "t") );
                        ] );
                  ] );
            ] );
      ];
  }

let make ~(ref_value : float option) : Ast.program =
  let open Ast in
  let d2 a b t = [ a; b; t ] in
  let d1 a b t = [ a; t; b ] in
  let d0 a b t = [ t; a; b ] in
  let main : fundef =
    {
      fname = "main";
      params = [];
      ret = None;
      locals =
        [
          DScalar ("theta", Ty.F64);
          DScalar ("kf", Ty.I64);
          DScalar ("dk", Ty.F64);
          DScalar ("csum", Ty.F64);
          DScalar ("j1", Ty.I64);
          DScalar ("j2", Ty.I64);
          DScalar ("j3", Ty.I64);
        ]
        @ App.verification_locals;
      body =
        [
          SAssign ("tran", f 314159265.0);
          SAssign ("amult", f 1220703125.0);
          (* twiddle tables: forward = exp(-2 pi i j / n), inverse = conj *)
          SFor
            ( "jj",
              i 0,
              i (Stdlib.( / ) nfft 2),
              [
                SAssign
                  ( "theta",
                    f (2.0 *. Float.pi /. Float.of_int nfft) * to_float (v "jj") );
                SStore ("fwr", [ v "jj" ], cos_ (v "theta"));
                SStore ("fwi", [ v "jj" ], f 0.0 - sin_ (v "theta"));
                SStore ("iwr", [ v "jj" ], cos_ (v "theta"));
                SStore ("iwi", [ v "jj" ], sin_ (v "theta"));
              ] );
          (* per-axis decay factors with folded frequencies *)
          SFor
            ( "jj",
              i 0,
              i nfft,
              [
                SAssign ("kf", Bin (Min, v "jj", i nfft - v "jj"));
                SAssign ("dk", to_float (v "kf" * v "kf"));
                SStore ("decay", [ v "jj" ], f 1.0 / (f 1.0 + (f alpha * v "dk")));
              ] );
          (* random initial field *)
          SFor
            ( "j3",
              i 0,
              i nfft,
              [
                SFor
                  ( "j2",
                    i 0,
                    i nfft,
                    [
                      SFor
                        ( "j1",
                          i 0,
                          i nfft,
                          [
                            SStore
                              ( "fre",
                                [ v "j3"; v "j2"; v "j1" ],
                                Randlc ("tran", v "amult") - f 0.5 );
                            SStore
                              ( "fim",
                                [ v "j3"; v "j2"; v "j1" ],
                                Randlc ("tran", v "amult") - f 0.5 );
                          ] );
                    ] );
              ] );
          (* forward 3-D FFT of the initial data *)
          SCall ("fft_fwd_d2", []);
          SCall ("fft_fwd_d1", []);
          SCall ("fft_fwd_d0", []);
          SAssign ("result", f 0.0);
          (* spectral evolution iterations *)
          SFor
            ( "it",
              i 0,
              i niter,
              [
                SMark App.iter_mark_name;
                (* evolve: cumulative decay in frequency space *)
                SRegion
                  ( "ft_a",
                    635,
                    652,
                    [
                      SFor
                        ( "j3",
                          i 0,
                          i nfft,
                          [
                            SFor
                              ( "j2",
                                i 0,
                                i nfft,
                                [
                                  SFor
                                    ( "j1",
                                      i 0,
                                      i nfft,
                                      [
                                        SAssign
                                          ( "dk",
                                            idx1 "decay" (v "j3")
                                            * idx1 "decay" (v "j2")
                                            * idx1 "decay" (v "j1") );
                                        SStore
                                          ( "fre",
                                            [ v "j3"; v "j2"; v "j1" ],
                                            idx3 "fre" (v "j3") (v "j2") (v "j1")
                                            * v "dk" );
                                        SStore
                                          ( "fim",
                                            [ v "j3"; v "j2"; v "j1" ],
                                            idx3 "fim" (v "j3") (v "j2") (v "j1")
                                            * v "dk" );
                                        SStore
                                          ( "wre",
                                            [ v "j3"; v "j2"; v "j1" ],
                                            idx3 "fre" (v "j3") (v "j2") (v "j1") );
                                        SStore
                                          ( "wim",
                                            [ v "j3"; v "j2"; v "j1" ],
                                            idx3 "fim" (v "j3") (v "j2") (v "j1") );
                                      ] );
                                ] );
                          ] );
                    ] );
                (* inverse 3-D FFT of the work copy *)
                SRegion
                  ( "ft_b",
                    654,
                    680,
                    [
                      SCall ("fft_inv_d0", []);
                      SCall ("fft_inv_d1", []);
                      SCall ("fft_inv_d2", []);
                    ] );
                (* NPB-style strided checksum *)
                SRegion
                  ( "ft_c",
                    682,
                    700,
                    [
                      SAssign ("csum", f 0.0);
                      SFor
                        ( "jj",
                          i 1,
                          i 33,
                          [
                            SAssign ("j1", Bin (Rem, i 5 * v "jj", i nfft));
                            SAssign ("j2", Bin (Rem, i 3 * v "jj", i nfft));
                            SAssign ("j3", Bin (Rem, v "jj", i nfft));
                            SAssign
                              ( "csum",
                                v "csum"
                                + idx3 "wre" (v "j3") (v "j2") (v "j1")
                                + idx3 "wim" (v "j3") (v "j2") (v "j1") );
                          ] );
                      SAssign ("result", v "result" + v "csum");
                    ] );
              ] );
        ]
        @ App.verification_block ~ref_value ~tolerance:1e-8 ();
    }
  in
  {
    globals =
      [
        DArr ("fre", Ty.F64, [ nfft; nfft; nfft ]);
        DArr ("fim", Ty.F64, [ nfft; nfft; nfft ]);
        DArr ("wre", Ty.F64, [ nfft; nfft; nfft ]);
        DArr ("wim", Ty.F64, [ nfft; nfft; nfft ]);
        DArr ("lre", Ty.F64, [ nfft ]);
        DArr ("lim", Ty.F64, [ nfft ]);
        DArr ("fwr", Ty.F64, [ Stdlib.( / ) nfft 2 ]);
        DArr ("fwi", Ty.F64, [ Stdlib.( / ) nfft 2 ]);
        DArr ("iwr", Ty.F64, [ Stdlib.( / ) nfft 2 ]);
        DArr ("iwi", Ty.F64, [ Stdlib.( / ) nfft 2 ]);
        DArr ("decay", Ty.F64, [ nfft ]);
        DScalar ("tran", Ty.F64);
        DScalar ("amult", Ty.F64);
        DScalar ("m", Ty.I64);
      ];
    funs =
      [
        fft_fn ~name:"fft_fwd_d2" ~re:"fre" ~im:"fim" ~inverse:false ~order:d2;
        fft_fn ~name:"fft_fwd_d1" ~re:"fre" ~im:"fim" ~inverse:false ~order:d1;
        fft_fn ~name:"fft_fwd_d0" ~re:"fre" ~im:"fim" ~inverse:false ~order:d0;
        fft_fn ~name:"fft_inv_d2" ~re:"wre" ~im:"wim" ~inverse:true ~order:d2;
        fft_fn ~name:"fft_inv_d1" ~re:"wre" ~im:"wim" ~inverse:true ~order:d1;
        fft_fn ~name:"fft_inv_d0" ~re:"wre" ~im:"wim" ~inverse:true ~order:d0;
        main;
      ];
    entry = "main";
  }

let app : App.t =
  {
    App.name = "FT";
    description = "3-D FFT spectral evolution (NPB FT analog)";
    build = (fun ~ref_value -> make ~ref_value);
    tolerance = 1e-8;
    main_iterations = niter;
    region_names = [ "ft_a"; "ft_b"; "ft_c" ];
    transform = None;
  }
