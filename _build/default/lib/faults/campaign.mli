(** Fault-injection campaigns (the FlipIt substitute): sample fault
    sites uniformly from a target population, run once per fault, and
    classify each run as Verification Success, Verification Failed
    (SDC), or Crashed (trap or hang). *)

type outcome_class = Success | Failed | Crashed

type counts = { success : int; failed : int; crashed : int; trials : int }

val zero_counts : counts
val add_outcome : counts -> outcome_class -> counts

val success_rate : counts -> float
(** Equation 1 of the paper. *)

val pp_counts : Format.formatter -> counts -> unit

val run_one :
  Prog.t ->
  budget:int ->
  verify:(Machine.result -> bool) ->
  Machine.fault ->
  outcome_class

(** A fault site carries the width of the datum it corrupts: the
    paper's subjects are C programs whose integers are 32-bit, so
    integer-typed destinations expose 32 candidate bits while doubles
    expose all 64. *)
type site = { seq : int; bits : int }

type input_site = { addr : int; bits : int }

val event_bits : Prog.t -> Trace.event -> int
(** Width of the value written by a trace event (from its opcode or the
    symbol table's type of the touched memory). *)

val writing_sites : Prog.t -> Trace.t -> lo:int -> hi:int -> site array

type target =
  | Internal of { sites : site array }
      (** flip a destination bit of one of these dynamic instructions *)
  | Input of { entry_seq : int; sites : input_site array }
      (** flip a bit of an input memory word at region entry *)
  | Mem_over_time of { seqs : int array; sites : input_site array }
      (** flip a bit of one of these memory words at a random point of
          an execution window (soft errors in resident data) *)

val target_population : target -> int
val sample_fault : Rng.t -> target -> Machine.fault

val internal_target : Prog.t -> Trace.t -> Region.instance -> target
val input_target : Prog.t -> Trace.t -> Access.t -> Region.instance -> target
val whole_program_target : Prog.t -> Trace.t -> target

val function_target : Prog.t -> Trace.t -> string -> target
(** Sites restricted to one function's dynamic instructions. *)

val memory_during_function_target :
  Prog.t -> Trace.t -> fname:string -> vars:string list -> target
(** Soft errors in the memory of named variables while [fname] runs —
    the Use Case 1 scenario (v/iv corruption during sprnvc). *)

type config = {
  seed : int;
  confidence : float;
  margin : float;
  max_trials : int option;  (** cap for quick runs; [None] = full design *)
  budget_factor : int;      (** hang budget = factor x fault-free count *)
}

val default_config : config
(** Seed 42, the paper's 95%/3% design, budget factor 20. *)

val trials_for : config -> target -> int

val run :
  Prog.t ->
  verify:(Machine.result -> bool) ->
  clean_instructions:int ->
  ?cfg:config ->
  target ->
  counts
