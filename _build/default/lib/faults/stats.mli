(** Statistics for fault-injection campaigns: the Leveugle et al.
    (DATE 2009) sample-size design the paper uses (95%/3% for the
    evaluation, 99%/1% for the use cases), and confidence intervals on
    measured success rates. *)

val z_of_confidence : float -> float
(** z-score of a two-sided confidence level (tabulated). *)

val sample_size : population:int -> confidence:float -> margin:float -> int
(** Injections needed to estimate a proportion over [population] fault
    sites, with the conservative p = 0.5:
    n = N / (1 + e^2 (N-1) / (z^2 p (1-p))). *)

val wilson_interval :
  successes:int -> trials:int -> confidence:float -> float * float
(** Wilson score interval on a binomial proportion. *)

val mean : float array -> float
val stddev : float array -> float
(** Sample standard deviation (n-1); 0 for fewer than two samples. *)
