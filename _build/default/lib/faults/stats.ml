(** Statistics for fault-injection campaigns.

    The number of injections follows the statistical design of Leveugle
    et al. (DATE 2009), which both the paper's Section IV-C (95%
    confidence, 3% margin) and Section VII (99%, 1%) use. *)

(** z-score of a two-sided confidence level.  The two levels used by
    the paper are tabulated exactly; anything else is approximated by
    the nearest of the supported levels. *)
let z_of_confidence (c : float) : float =
  if c >= 0.995 then 2.807
  else if c >= 0.99 then 2.576
  else if c >= 0.98 then 2.326
  else if c >= 0.95 then 1.960
  else if c >= 0.90 then 1.645
  else 1.282

(** [sample_size ~population ~confidence ~margin] — the number of fault
    injections needed to estimate a proportion over [population] fault
    sites at the given confidence level and margin of error, with the
    conservative p = 0.5:

    n = N / (1 + e^2 (N - 1) / (z^2 p (1 - p))) *)
let sample_size ~(population : int) ~(confidence : float) ~(margin : float) :
    int =
  if population <= 0 then 0
  else begin
    let n = Float.of_int population in
    let z = z_of_confidence confidence in
    let p = 0.5 in
    let e = margin in
    let num = n in
    let den = 1.0 +. (e *. e *. (n -. 1.0) /. (z *. z *. p *. (1.0 -. p))) in
    let s = Float.to_int (Float.ceil (num /. den)) in
    max 1 (min population s)
  end

(** Wilson score interval for a binomial proportion: a confidence
    interval on a measured success rate. *)
let wilson_interval ~(successes : int) ~(trials : int) ~(confidence : float) :
    float * float =
  if trials = 0 then (0.0, 1.0)
  else begin
    let z = z_of_confidence confidence in
    let n = Float.of_int trials in
    let p = Float.of_int successes /. n in
    let z2 = z *. z in
    let denom = 1.0 +. (z2 /. n) in
    let center = (p +. (z2 /. (2.0 *. n))) /. denom in
    let half =
      z /. denom *. Float.sqrt ((p *. (1.0 -. p) /. n) +. (z2 /. (4.0 *. n *. n)))
    in
    (Float.max 0.0 (center -. half), Float.min 1.0 (center +. half))
  end

let mean (xs : float array) : float =
  if Array.length xs = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 xs /. Float.of_int (Array.length xs)

let stddev (xs : float array) : float =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    Float.sqrt (ss /. Float.of_int (n - 1))
  end
