lib/faults/rng.mli:
