lib/faults/stats.mli:
