lib/faults/campaign.ml: Access Array Dddg Float Fmt List Loc Machine Op Prog Region Rng Stats Trace Ty
