lib/faults/campaign.ml: Access Array Dddg Executor Float Fmt List Loc Machine Obs Op Option Printexc Printf Prog Region Rng Stats String Trace Ty Watchdog
