lib/faults/rng.ml: Array Int64
