lib/faults/stats.ml: Array Float
