lib/faults/campaign.mli: Access Executor Format Machine Obs Prog Region Rng Trace Watchdog
