lib/faults/campaign.mli: Access Format Machine Prog Region Rng Trace
