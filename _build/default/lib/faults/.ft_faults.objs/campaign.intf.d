lib/faults/campaign.mli: Access Executor Format Machine Prog Region Rng Trace Watchdog
