(** Deterministic pseudo-random numbers (splitmix64).  Fault-injection
    campaigns never touch the ambient [Random] state: every campaign
    owns an explicitly seeded stream, so results reproduce exactly. *)

type t

val create : seed:int -> t
val next_int64 : t -> int64

val int : t -> int -> int
(** Uniform in [0, bound).
    @raise Invalid_argument if the bound is not positive. *)

val float : t -> float
(** Uniform in [0, 1). *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val split : t -> t
(** Fork an independent stream. *)

val derive : seed:int -> index:int -> t
(** The independent per-trial stream of trial [index] of a campaign
    seeded with [seed]: a pure function of [(seed, index)], so parallel
    and resumed campaigns sample identical faults in any schedule.
    @raise Invalid_argument on a negative index. *)
