(** Fault-injection campaigns (the FlipIt substitute).

    A campaign samples fault sites uniformly from a target population,
    runs the program once per sampled fault, and classifies each run
    under the paper's fault-manifestation model:
    {ul
    {- Verification Success — the run finishes and the application's
       verification accepts the result (bit-exact or within the
       application's own tolerance);}
    {- Verification Failed — the run finishes but verification rejects
       the result (silent data corruption);}
    {- Crashed — trap, or hang detected by the instruction budget.}}

    Targets: the {e internal locations} of a code-region instance are
    the destinations of its dynamic instructions (a [Flip_write] at a
    dynamic sequence number inside the instance); its {e input
    locations} are the memory words the fault-free DDDG classifies as
    region inputs (a [Flip_mem] at the instance entry). *)

type outcome_class = Success | Failed | Crashed

type counts = {
  success : int;
  failed : int;
  crashed : int;
  trials : int;
}

let zero_counts = { success = 0; failed = 0; crashed = 0; trials = 0 }

let add_outcome (c : counts) = function
  | Success -> { c with success = c.success + 1; trials = c.trials + 1 }
  | Failed -> { c with failed = c.failed + 1; trials = c.trials + 1 }
  | Crashed -> { c with crashed = c.crashed + 1; trials = c.trials + 1 }

(** Success rate (Equation 1). *)
let success_rate (c : counts) : float =
  if c.trials = 0 then 0.0
  else Float.of_int c.success /. Float.of_int c.trials

let pp_counts ppf (c : counts) =
  Fmt.pf ppf "success=%d failed=%d crashed=%d trials=%d rate=%.3f" c.success
    c.failed c.crashed c.trials (success_rate c)

(** Run one faulty execution and classify it.  [verify] receives the
    machine result of a {e finished} run and decides Success/Failed;
    traps and budget exhaustion classify as Crashed without consulting
    it. *)
let run_one (prog : Prog.t) ~(budget : int) ~(verify : Machine.result -> bool)
    (fault : Machine.fault) : outcome_class =
  let r =
    Machine.run prog { Machine.default_config with budget; fault = Some fault }
  in
  match r.outcome with
  | Machine.Finished -> if verify r then Success else Failed
  | Machine.Trapped _ | Machine.Budget_exceeded -> Crashed

(* --- fault-site populations ------------------------------------------ *)

(** A fault site carries the width of the datum it corrupts: the
    paper's subjects are C programs whose integers are 32-bit, so
    integer-typed destinations expose 32 candidate bits while doubles
    expose all 64. *)
type site = { seq : int; bits : int }

type input_site = { addr : int; bits : int }

(* bit width of the value written by a trace event *)
let event_bits (prog : Prog.t) (e : Trace.event) : int =
  let of_ty = function Ty.F64 -> 64 | Ty.I64 -> 32 in
  let of_addr a = match Prog.type_of_addr prog a with
    | Some t -> of_ty t
    | None -> 64
  in
  match e.op with
  | Trace.OBin op -> if Op.bin_is_float op then 64 else 32
  | Trace.OUn op -> (
      match op with
      | Op.Fneg | Op.Fabs | Op.Fsqrt | Op.Fsin | Op.Fcos | Op.FloatOfInt
      | Op.F32round ->
          64
      | Op.Neg | Op.Not | Op.Trunc32 | Op.IntOfFloat -> 32)
  | Trace.OStore -> (
      match e.writes with
      | [| (Loc.Mem a, _) |] -> of_addr a
      | _ -> 64)
  | Trace.OLoad -> (
      (* the loaded value's width is that of its memory source *)
      match
        Array.find_opt (fun (l, _) -> Loc.is_mem l) e.reads
      with
      | Some (Loc.Mem a, _) -> of_addr a
      | Some _ | None -> 64)
  | Trace.OIntr _ -> 64
  | Trace.OConst | Trace.OJmp | Trace.OBr _ | Trace.OCall | Trace.ORet
  | Trace.OMark _ ->
      64

(** Fault sites of the value-writing instructions in the event-index
    range [lo, hi) of [trace]. *)
let writing_sites (prog : Prog.t) (trace : Trace.t) ~(lo : int) ~(hi : int) :
    site array =
  let acc = ref [] in
  for i = hi - 1 downto lo do
    let e = Trace.get trace i in
    if Array.length e.writes > 0 then
      acc := { seq = e.seq; bits = event_bits prog e } :: !acc
  done;
  Array.of_list !acc

type target =
  | Internal of { sites : site array }
      (** flip a destination bit of one of these dynamic instructions *)
  | Input of { entry_seq : int; sites : input_site array }
      (** flip a bit of an input memory word at region entry *)
  | Mem_over_time of { seqs : int array; sites : input_site array }
      (** flip a bit of one of these memory words at a random point of
          an execution window (soft errors in resident data) *)

let target_population = function
  | Internal { sites } ->
      Array.fold_left (fun a (s : site) -> a + s.bits) 0 sites
  | Input { sites; _ } ->
      Array.fold_left (fun a (s : input_site) -> a + s.bits) 0 sites
  | Mem_over_time { seqs; sites } ->
      Array.length seqs
      * Array.fold_left (fun a (s : input_site) -> a + s.bits) 0 sites

let sample_fault (rng : Rng.t) (t : target) : Machine.fault =
  match t with
  | Internal { sites } ->
      let s = Rng.choose rng sites in
      Machine.Flip_write { seq = s.seq; bit = Rng.int rng s.bits }
  | Input { entry_seq; sites } ->
      let s = Rng.choose rng sites in
      Machine.Flip_mem { seq = entry_seq; addr = s.addr; bit = Rng.int rng s.bits }
  | Mem_over_time { seqs; sites } ->
      let s = Rng.choose rng sites in
      Machine.Flip_mem
        { seq = Rng.choose rng seqs; addr = s.addr; bit = Rng.int rng s.bits }

(** Derive the internal-location target of a region instance. *)
let internal_target (prog : Prog.t) (trace : Trace.t)
    (inst : Region.instance) : target =
  Internal { sites = writing_sites prog trace ~lo:inst.lo ~hi:inst.hi }

(** Derive the input-location target of a region instance, using the
    fault-free DDDG for input classification. *)
let input_target (prog : Prog.t) (trace : Trace.t) (access : Access.t)
    (inst : Region.instance) : target =
  let g = Dddg.build trace access ~lo:inst.lo ~hi:inst.hi in
  let entry_seq = (Trace.get trace inst.lo).seq in
  let sites =
    Dddg.input_mem_addrs g
    |> List.map (fun addr ->
           let bits =
             match Prog.type_of_addr prog addr with
             | Some Ty.I64 -> 32
             | Some Ty.F64 | None -> 64
           in
           { addr; bits })
    |> Array.of_list
  in
  Input { entry_seq; sites }

(** Whole-program target: every value-writing dynamic instruction. *)
let whole_program_target (prog : Prog.t) (trace : Trace.t) : target =
  Internal { sites = writing_sites prog trace ~lo:0 ~hi:(Trace.length trace) }

(** Fault sites restricted to the dynamic instructions of one function
    (all its activations).  Used to measure the resilience of a
    specific routine, e.g. the hardened [sprnvc] of Use Case 1. *)
let function_target (prog : Prog.t) (trace : Trace.t) (fname : string) :
    target =
  let fidx = Prog.func_index prog fname in
  let sites = ref [] in
  Trace.iter
    (fun (e : Trace.event) ->
      if e.fidx = fidx && Array.length e.writes > 0 then
        sites := { seq = e.seq; bits = event_bits prog e } :: !sites)
    trace;
  Internal { sites = Array.of_list !sites }

(** Soft errors in the memory of named variables while [fname] is
    executing: the Use Case 1 scenario — corruption landing in the
    global [v]/[iv] arrays during [sprnvc], which the hardened variant
    overwrites at copy-back. *)
let memory_during_function_target (prog : Prog.t) (trace : Trace.t)
    ~(fname : string) ~(vars : string list) : target =
  let fidx = Prog.func_index prog fname in
  let seqs = ref [] in
  Trace.iter
    (fun (e : Trace.event) -> if e.fidx = fidx then seqs := e.seq :: !seqs)
    trace;
  let sites =
    List.concat_map
      (fun name ->
        match Prog.find_symbol prog name with
        | None -> invalid_arg ("memory target: unknown symbol " ^ name)
        | Some s ->
            let size = List.fold_left ( * ) 1 s.Prog.sym_dims in
            let bits = match s.Prog.sym_ty with Ty.I64 -> 32 | Ty.F64 -> 64 in
            List.init (max 1 size) (fun k -> { addr = s.Prog.sym_addr + k; bits }))
      vars
  in
  Mem_over_time { seqs = Array.of_list !seqs; sites = Array.of_list sites }

(* --- campaigns -------------------------------------------------------- *)

type config = {
  seed : int;
  confidence : float;
  margin : float;
  max_trials : int option;  (** cap for quick runs; [None] = statistical n *)
  budget_factor : int;      (** hang budget = factor * fault-free count *)
}

let default_config =
  { seed = 42; confidence = 0.95; margin = 0.03; max_trials = None; budget_factor = 20 }

(** Number of trials the configuration implies for a target. *)
let trials_for (cfg : config) (t : target) : int =
  let n =
    Stats.sample_size ~population:(target_population t)
      ~confidence:cfg.confidence ~margin:cfg.margin
  in
  match cfg.max_trials with Some m -> min m n | None -> n

(** Run a campaign against one target.  [clean_instructions] is the
    fault-free dynamic instruction count (for the hang budget). *)
let run (prog : Prog.t) ~(verify : Machine.result -> bool)
    ~(clean_instructions : int) ?(cfg = default_config) (t : target) : counts =
  let trials = trials_for cfg t in
  let budget = cfg.budget_factor * max 1 clean_instructions in
  let rng = Rng.create ~seed:cfg.seed in
  let rec go i acc =
    if i >= trials then acc
    else if target_population t = 0 then acc
    else
      let fault = sample_fault rng t in
      go (i + 1) (add_outcome acc (run_one prog ~budget ~verify fault))
  in
  go 0 zero_counts
