(** The FlipTracker virtual machine: an IR interpreter with optional
    instruction tracing (the LLVM-Tracer substitute), single-bit fault
    hooks (the FlipIt substitute), MPI hooks, and the crash model of
    the paper's fault-manifestation taxonomy. *)

type fault =
  | Flip_write of { seq : int; bit : int }
      (** flip [bit] of the value written by dynamic instruction [seq] *)
  | Flip_mem of { seq : int; addr : int; bit : int }
      (** flip [bit] of [mem.(addr)] just before instruction [seq] runs
          (region-entry input injections) *)

type outcome =
  | Finished
  | Trapped of string  (** segfault, arithmetic trap, stack overflow *)
  | Budget_exceeded    (** hang, detected by the instruction budget *)

type mpi_hooks = {
  rank : int;
  size : int;
  send : dest:int -> tag:int -> Value.t -> unit;
  recv : src:int -> tag:int -> Value.t;
  allreduce_sum : Value.t -> Value.t;
  barrier : unit -> unit;
}

type config = {
  budget : int;  (** max dynamic instructions before declaring a hang *)
  fault : fault option;
  trace : Trace.t option;  (** retained trace, for the analyses *)
  sink : (Trace.event -> unit) option;
      (** streaming alternative: each event is passed to the callback
          and not retained, like a tracer writing to a file *)
  iter_mark : int;  (** mark id delimiting main-loop iterations, or -1 *)
  mpi : mpi_hooks option;
  tick : (unit -> unit) option;
      (** called once per dynamic instruction with nothing allocated —
          the hook wall-clock watchdogs use; exceptions it raises
          propagate to the caller unclassified *)
}

val default_config : config
(** No fault, no tracing, no MPI, a 5e8-instruction budget. *)

type result = {
  outcome : outcome;
  instructions : int;
  output : string;     (** accumulated formatted prints *)
  mem : int64 array;   (** final memory image *)
  iterations : int;    (** main-loop iterations observed *)
}

val randlc_step : float -> float -> float * float
(** One step of the NPB 46-bit linear congruential generator:
    [(new_state, uniform_in_0_1)]. *)

val format_output : string -> Value.t list -> string
(** Render a C-style format ([%d %x %e %f %g] with flags/width/
    precision).  Limited-precision float formats are where the Data
    Truncation pattern manifests on output. *)

val run : Prog.t -> config -> result
(** Execute the program.  Never raises on faulty behavior: traps,
    hangs, and wild accesses are classified in [outcome]. *)

val run_plain : ?budget:int -> Prog.t -> result
(** Fault-free, untraced execution. *)

val run_traced :
  ?budget:int ->
  ?iter_mark:int ->
  ?fault:fault ->
  Prog.t ->
  result * Trace.t
(** Execution with a fresh retained trace. *)

val run_sink :
  ?budget:int ->
  ?iter_mark:int ->
  ?fault:fault ->
  sink:(Trace.event -> unit) ->
  Prog.t ->
  result
(** Execution streaming each event into [sink] without retaining it:
    the constant-memory counterpart of [run_traced]. *)
