(** Dynamic instruction traces: one event per executed instruction,
    carrying the locations read and written with their values, the
    source line, and the effective code region / region instance /
    main-loop iteration stamps the analyses rely on. *)

type opclass =
  | OConst
  | OBin of Op.bin
  | OUn of Op.un
  | OLoad
  | OStore
  | OJmp
  | OBr of bool  (** taken direction of the branch *)
  | OCall
  | ORet
  | OIntr of string
      (** intrinsic name; prints are encoded as ["print:<format>"] so
          analyses can re-render values *)
  | OMark of int

type event = {
  seq : int;   (** dynamic instruction index, from 0 *)
  fidx : int;
  pc : int;
  act : int;   (** activation id of the executing frame *)
  line : int;
  region : int;
      (** effective region: the instruction's static region, or the
          call site's region inside callees; -1 outside all regions *)
  instance : int;  (** region instance number, or -1 *)
  iter : int;      (** main-loop iteration, or -1 before the marker *)
  op : opclass;
  reads : (Loc.t * Value.t) array;
  writes : (Loc.t * Value.t) array;
}

type t
(** A growable event sequence. *)

val create : unit -> t
val push : t -> event -> unit
val length : t -> int

val get : t -> int -> event
(** @raise Invalid_argument out of bounds. *)

val iter : (event -> unit) -> t -> unit
val iteri : (int -> event -> unit) -> t -> unit
val fold : ('a -> event -> 'a) -> 'a -> t -> 'a

val to_seq : t -> event Seq.t
(** Events in order as a lazy sequence; reflects the trace as of each
    force (restartable while the trace is not mutated). *)

val slice : t -> int -> int -> event array
(** Events [lo, hi) as a fresh array.
    @raise Invalid_argument on bad bounds. *)

val control_signature : event -> int * int
(** [(fidx, pc)]: equality of signatures along two traces means the
    runs followed the same control path. *)

val pp_opclass : Format.formatter -> opclass -> unit
val pp_event : Format.formatter -> event -> unit
