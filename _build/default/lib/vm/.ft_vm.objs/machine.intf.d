lib/vm/machine.mli: Prog Trace Value
