lib/vm/machine.ml: Array Buffer Char Float Int64 List Loc Op Option Printf Prog Scanf String Trace Value
