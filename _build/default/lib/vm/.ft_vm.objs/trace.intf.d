lib/vm/trace.mli: Format Loc Op Value
