lib/vm/trace.mli: Format Loc Op Seq Value
