lib/vm/trace.ml: Array Fmt Loc Op Seq Value
