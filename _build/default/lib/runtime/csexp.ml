(** Canonical s-expressions (csexp): the journal's wire format.

    Canonical form is trivially streamable and self-delimiting — an
    atom is [<len>:<bytes>], a list is [(...)] — which makes an
    append-only log of records readable even after a crash truncated
    the tail mid-record: decoding simply stops at the first incomplete
    record. *)

type t = Atom of string | List of t list

let rec to_buffer (buf : Buffer.t) = function
  | Atom s ->
      Buffer.add_string buf (string_of_int (String.length s));
      Buffer.add_char buf ':';
      Buffer.add_string buf s
  | List xs ->
      Buffer.add_char buf '(';
      List.iter (to_buffer buf) xs;
      Buffer.add_char buf ')'

let to_string (x : t) : string =
  let buf = Buffer.create 64 in
  to_buffer buf x;
  Buffer.contents buf

(** Decode one value of [s] starting at [pos].  Returns the value and
    the position just past it, or [None] when the input is malformed or
    truncated at or after [pos]. *)
let decode_one (s : string) ~(pos : int) : (t * int) option =
  let n = String.length s in
  let rec value pos =
    if pos >= n then None
    else
      match s.[pos] with
      | '(' -> items (pos + 1) []
      | '0' .. '9' -> atom pos 0 pos
      | _ -> None
  and items pos acc =
    if pos >= n then None
    else if s.[pos] = ')' then Some (List (List.rev acc), pos + 1)
    else
      match value pos with
      | Some (v, pos') -> items pos' (v :: acc)
      | None -> None
  and atom start len pos =
    if pos >= n then None
    else
      match s.[pos] with
      | '0' .. '9' ->
          (* cap the length before it can overflow or run away *)
          if len > 0x3FFF_FFFF then None
          else atom start ((len * 10) + (Char.code s.[pos] - Char.code '0')) (pos + 1)
      | ':' ->
          if pos = start then None
          else if pos + 1 + len > n then None
          else Some (Atom (String.sub s (pos + 1) len), pos + 1 + len)
      | _ -> None
  in
  value pos

(** Decode the longest valid prefix of [s]: the records and the byte
    offset where decoding stopped (= [String.length s] iff the whole
    input was well-formed).  Newlines between records are skipped — the
    journal writes one per record for human eyes — and the stop offset
    sits past them, so truncating there preserves the separator of the
    last complete record. *)
let decode_prefix (s : string) : t list * int =
  let n = String.length s in
  let rec skip pos =
    if pos < n && (s.[pos] = '\n' || s.[pos] = '\r') then skip (pos + 1)
    else pos
  in
  let rec go pos acc =
    let pos = skip pos in
    match decode_one s ~pos with
    | Some (v, pos') -> go pos' (v :: acc)
    | None -> (List.rev acc, pos)
  in
  go 0 []

let of_string (s : string) : t option =
  match decode_one s ~pos:0 with
  | Some (v, pos) when pos = String.length s -> Some v
  | Some _ | None -> None
