(** A small domain pool: apply a function to every element of an array
    on [jobs] OCaml 5 domains.

    Work is distributed by an atomic next-index counter, so domains
    self-balance across uneven trial costs; each result slot is written
    by exactly one domain and published by [Domain.join].  The mapped
    function must confine any nondeterminism to its own arguments —
    the executor guarantees this by deriving per-trial RNG streams
    from the trial index, which is what makes results bit-identical
    regardless of worker count or scheduling. *)

let map ~(jobs : int) (f : 'a -> 'b) (xs : 'a array) : 'b array =
  let n = Array.length xs in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then Array.map f xs
  else begin
    let out : ('b, exn * Printexc.raw_backtrace) result option array =
      Array.make n None
    in
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else
          out.(i) <-
            Some
              (match f xs.(i) with
              | v -> Ok v
              | exception e -> Error (e, Printexc.get_raw_backtrace ()))
      done
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false)
      out
  end
