lib/runtime/journal.mli: Csexp
