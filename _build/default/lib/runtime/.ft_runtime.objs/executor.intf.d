lib/runtime/executor.mli: Obs
