lib/runtime/executor.mli:
