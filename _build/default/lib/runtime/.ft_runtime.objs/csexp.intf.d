lib/runtime/csexp.mli: Buffer
