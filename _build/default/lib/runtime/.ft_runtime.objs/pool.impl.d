lib/runtime/pool.ml: Array Atomic Domain Printexc
