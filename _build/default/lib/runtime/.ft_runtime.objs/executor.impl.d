lib/runtime/executor.ml: Array Csexp Float Hashtbl Journal List Option Pool Printexc Printf Seq String Sys Unix
