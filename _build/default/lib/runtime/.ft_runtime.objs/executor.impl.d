lib/runtime/executor.ml: Array Csexp Float Hashtbl Journal List Obs Option Pool Printexc Printf Seq String Sys Unix
