lib/runtime/pool.mli:
