lib/runtime/watchdog.ml: Unix
