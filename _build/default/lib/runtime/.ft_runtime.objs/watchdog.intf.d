lib/runtime/watchdog.mli:
