lib/runtime/journal.ml: Buffer Csexp Fun String Sys Unix
