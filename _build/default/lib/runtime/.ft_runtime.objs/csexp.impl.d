lib/runtime/csexp.ml: Buffer Char List String
