(** Simulated message-passing runtime: point-to-point messaging, a sum
    all-reduce and a barrier between ranks running on OCaml domains,
    with record-and-replay of receive order for nondeterminism control
    (the mechanism the paper borrows from record-and-replay tools to
    keep faulty MPI runs aligned with their fault-free twins). *)

type msg = { src : int; tag : int; value : Value.t }

type mode =
  | Free
  | Record of (int * int * int) list ref
      (** (rank, src, tag) appended as receives complete *)
  | Replay of { order : (int * int * int) array; mutable next : int }
      (** receives must complete in the recorded order *)

type t

exception Comm_error of string

val create : ?mode:mode -> size:int -> unit -> t
(** @raise Invalid_argument on a non-positive size. *)

val send : t -> src:int -> dest:int -> tag:int -> Value.t -> unit
(** Buffered, non-blocking.
    @raise Comm_error on an out-of-range rank. *)

val recv : t -> rank:int -> src:int -> tag:int -> Value.t
(** Blocking; messages on one (src, dst) channel match in FIFO order.
    @raise Comm_error on a rank error or an unexpected tag. *)

val allreduce_sum : t -> Value.t -> Value.t
(** Generation-counted rendezvous; callable repeatedly. *)

val barrier : t -> unit

val hooks : t -> rank:int -> Machine.mpi_hooks
(** Wire one rank's VM to this runtime. *)

val recorded_order : t -> (int * int * int) list
(** The receive order captured by a [Record]-mode run, oldest first. *)
