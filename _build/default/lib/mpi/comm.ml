(** Simulated message-passing runtime.

    Ranks are VM instances running on OCaml domains; this module gives
    them point-to-point messaging, a sum all-reduce, and a barrier over
    mutex-protected queues.  It also implements record-and-replay of
    message receive order — the mechanism the paper borrows from
    record-and-replay tools to keep faulty MPI runs aligned with their
    fault-free twins when point-to-point nondeterminism exists. *)

type msg = { src : int; tag : int; value : Value.t }

(* one all-reduce/barrier rendezvous cell with generation counting *)
type cell = {
  mutable acc : float;
  mutable arrived : int;
  mutable result : float;
  mutable generation : int;
  m : Mutex.t;
  c : Condition.t;
}

type mode =
  | Free  (** no ordering constraints *)
  | Record of (int * int * int) list ref
      (** append (rank, src, tag) as receives complete *)
  | Replay of { order : (int * int * int) array; mutable next : int }
      (** receives must complete in the recorded order *)

type t = {
  size : int;
  queues : msg Queue.t array array;  (** [queues.(dst).(src)] *)
  locks : Mutex.t array;             (** one per destination rank *)
  conds : Condition.t array;
  reduce : cell;
  barrier_cell : cell;
  mode : mode;
  order_lock : Mutex.t;
  order_cond : Condition.t;
}

let create ?(mode = Free) ~(size : int) () : t =
  if size <= 0 then invalid_arg "Comm.create: size must be positive";
  let mkcell () =
    { acc = 0.0; arrived = 0; result = 0.0; generation = 0;
      m = Mutex.create (); c = Condition.create () }
  in
  {
    size;
    queues = Array.init size (fun _ -> Array.init size (fun _ -> Queue.create ()));
    locks = Array.init size (fun _ -> Mutex.create ());
    conds = Array.init size (fun _ -> Condition.create ());
    reduce = mkcell ();
    barrier_cell = mkcell ();
    mode;
    order_lock = Mutex.create ();
    order_cond = Condition.create ();
  }

exception Comm_error of string

let check_rank (t : t) r who =
  if r < 0 || r >= t.size then
    raise (Comm_error (Printf.sprintf "%s: rank %d out of range" who r))

let send (t : t) ~(src : int) ~(dest : int) ~(tag : int) (value : Value.t) :
    unit =
  check_rank t dest "send";
  check_rank t src "send";
  Mutex.lock t.locks.(dest);
  Queue.push { src; tag; value } t.queues.(dest).(src);
  Condition.broadcast t.conds.(dest);
  Mutex.unlock t.locks.(dest)

(* In replay mode a receive may only complete when it is next in the
   recorded order; this serializes racing receives exactly as the
   fault-free recording saw them. *)
let wait_turn (t : t) (rank : int) ~(src : int) ~(tag : int) =
  match t.mode with
  | Free | Record _ -> ()
  | Replay r ->
      Mutex.lock t.order_lock;
      let rec loop () =
        if r.next >= Array.length r.order then ()
          (* past the recorded prefix: no constraint *)
        else begin
          let er, es, et = r.order.(r.next) in
          if er = rank && es = src && et = tag then ()
          else begin
            Condition.wait t.order_cond t.order_lock;
            loop ()
          end
        end
      in
      loop ();
      Mutex.unlock t.order_lock

let note_received (t : t) (rank : int) ~(src : int) ~(tag : int) =
  match t.mode with
  | Free -> ()
  | Record log ->
      Mutex.lock t.order_lock;
      log := (rank, src, tag) :: !log;
      Mutex.unlock t.order_lock
  | Replay r ->
      Mutex.lock t.order_lock;
      if r.next < Array.length r.order then r.next <- r.next + 1;
      Condition.broadcast t.order_cond;
      Mutex.unlock t.order_lock

let recv (t : t) ~(rank : int) ~(src : int) ~(tag : int) : Value.t =
  check_rank t rank "recv";
  check_rank t src "recv";
  wait_turn t rank ~src ~tag;
  Mutex.lock t.locks.(rank);
  let q = t.queues.(rank).(src) in
  let rec take () =
    (* tags are matched in FIFO order per (src, dst) channel *)
    match Queue.peek_opt q with
    | Some m when m.tag = tag -> Queue.pop q
    | Some m ->
        raise
          (Comm_error
             (Printf.sprintf "recv rank %d: unexpected tag %d from %d (wanted %d)"
                rank m.tag src tag))
    | None ->
        Condition.wait t.conds.(rank) t.locks.(rank);
        take ()
  in
  let m = take () in
  Mutex.unlock t.locks.(rank);
  note_received t rank ~src ~tag;
  m.value

(* generation-counted rendezvous shared by allreduce and barrier *)
let rendezvous (t : t) (cell : cell) (contribution : float) : float =
  Mutex.lock cell.m;
  let gen = cell.generation in
  cell.acc <- cell.acc +. contribution;
  cell.arrived <- cell.arrived + 1;
  if cell.arrived = t.size then begin
    cell.result <- cell.acc;
    cell.acc <- 0.0;
    cell.arrived <- 0;
    cell.generation <- gen + 1;
    Condition.broadcast cell.c
  end
  else
    while cell.generation = gen do
      Condition.wait cell.c cell.m
    done;
  let r = cell.result in
  Mutex.unlock cell.m;
  r

let allreduce_sum (t : t) (v : Value.t) : Value.t =
  Value.of_float (rendezvous t t.reduce (Value.to_float v))

let barrier (t : t) : unit = ignore (rendezvous t t.barrier_cell 0.0)

(** Machine hooks for one rank. *)
let hooks (t : t) ~(rank : int) : Machine.mpi_hooks =
  {
    Machine.rank;
    size = t.size;
    send = (fun ~dest ~tag v -> send t ~src:rank ~dest ~tag v);
    recv = (fun ~src ~tag -> recv t ~rank ~src ~tag);
    allreduce_sum = (fun v -> allreduce_sum t v);
    barrier = (fun () -> barrier t);
  }

(** Receive order recorded during a [Record]-mode run, oldest first. *)
let recorded_order (t : t) : (int * int * int) list =
  match t.mode with
  | Record log -> List.rev !log
  | Free | Replay _ -> []
