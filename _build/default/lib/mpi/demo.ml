(** Small MPI programs exercising the simulated runtime: a ring token
    pass, a 1-D halo-exchange Jacobi relaxation, and an all-reduce
    convergence loop.  These are the communication-bearing programs of
    the test suite and of the Figure-4 harness. *)

(** Each rank adds its rank to a token and passes it around the ring
    [rounds] times; every rank ends with the same total, returned as
    the RESULT.  Expected: rounds * size * (size - 1) / 2. *)
let ring ~(rounds : int) : Ast.program =
  let open Ast in
  let main : fundef =
    {
      fname = "main";
      params = [];
      ret = None;
      locals =
        [
          DScalar ("token", Ty.F64);
          DScalar ("right", Ty.I64);
          DScalar ("left", Ty.I64);
          DScalar ("me", Ty.I64);
          DScalar ("np", Ty.I64);
          DScalar ("result", Ty.F64);
        ];
      body =
        [
          SAssign ("me", MpiRank);
          SAssign ("np", MpiSize);
          SAssign ("right", Bin (Rem, v "me" + i 1, v "np"));
          SAssign ("left", Bin (Rem, (v "me" - i 1) + v "np", v "np"));
          SAssign ("token", f 0.0);
          (* rank 0 owns the token; every hop adds the hop's rank, so a
             full circuit gains size*(size-1)/2 *)
          SFor
            ( "r",
              i 0,
              i rounds,
              [
                SIf
                  ( v "me" = i 0,
                    [
                      SMpiSend (v "right", v "r", v "token");
                      SAssign ("token", MpiRecv (v "left", v "r"));
                    ],
                    [
                      SAssign ("token", MpiRecv (v "left", v "r"));
                      SAssign ("token", v "token" + to_float (v "me"));
                      SMpiSend (v "right", v "r", v "token");
                    ] );
              ] );
          (* broadcast rank 0's total so every rank prints the same *)
          SIf (v "me" = i 0, [], [ SAssign ("token", f 0.0) ]);
          SAssign ("result", MpiAllreduce (v "token"));
          SPrint ("RESULT %.17g\n", [ v "result" ]);
        ];
    }
  in
  { globals = []; funs = [ main ]; entry = "main" }

(** 1-D Jacobi relaxation with halo exchange: each rank owns [cells]
    interior cells; boundary ranks hold fixed values 0 and 1; after
    [iters] sweeps the profile approaches linear.  RESULT is the
    all-reduced sum of local cells. *)
let halo_jacobi ~(cells : int) ~(iters : int) : Ast.program =
  let c1 = Stdlib.( + ) cells 1 in
  let c2 = Stdlib.( + ) cells 2 in
  let open Ast in
  let main : fundef =
    {
      fname = "main";
      params = [];
      ret = None;
      locals =
        [
          DScalar ("me", Ty.I64);
          DScalar ("np", Ty.I64);
          DScalar ("lsum", Ty.F64);
          DScalar ("result", Ty.F64);
          DArr ("u", Ty.F64, [ c2 ]);
          DArr ("unew", Ty.F64, [ c2 ]);
        ];
      body =
        [
          SAssign ("me", MpiRank);
          SAssign ("np", MpiSize);
          SFor ("j", i 0, i c2, [ SStore ("u", [ v "j" ], f 0.0) ]);
          (* the last rank's right halo is pinned to 1 *)
          SIf
            ( v "me" = v "np" - i 1,
              [ SStore ("u", [ i c1 ], f 1.0) ],
              [] );
          SFor
            ( "it",
              i 0,
              i iters,
              [
                (* halo exchange: send right edge right, left edge left *)
                SIf
                  ( v "me" < v "np" - i 1,
                    [ SMpiSend (v "me" + i 1, i 0, idx1 "u" (i cells)) ],
                    [] );
                SIf
                  ( v "me" > i 0,
                    [
                      SMpiSend (v "me" - i 1, i 1, idx1 "u" (i 1));
                      SStore ("u", [ i 0 ], MpiRecv (v "me" - i 1, i 0));
                    ],
                    [] );
                SIf
                  ( v "me" < v "np" - i 1,
                    [
                      SStore
                        ("u", [ i c1 ], MpiRecv (v "me" + i 1, i 1));
                    ],
                    [] );
                SFor
                  ( "j",
                    i 1,
                    i c1,
                    [
                      SStore
                        ( "unew",
                          [ v "j" ],
                          f 0.5 * (idx1 "u" (v "j" - i 1) + idx1 "u" (v "j" + i 1))
                        );
                    ] );
                SFor
                  ( "j",
                    i 1,
                    i c1,
                    [ SStore ("u", [ v "j" ], idx1 "unew" (v "j")) ] );
                SMpiBarrier;
              ] );
          SAssign ("lsum", f 0.0);
          SFor
            ( "j",
              i 1,
              i c1,
              [ SAssign ("lsum", v "lsum" + idx1 "u" (v "j")) ] );
          SAssign ("result", MpiAllreduce (v "lsum"));
          SPrint ("RESULT %.17g\n", [ v "result" ]);
        ];
    }
  in
  { globals = []; funs = [ main ]; entry = "main" }

(** All-reduce convergence loop: every rank iterates x <- (x + mean)/2
    until the all-reduced spread falls below a threshold; converges to
    the initial mean. *)
let allreduce_converge ~(iters : int) : Ast.program =
  let open Ast in
  let main : fundef =
    {
      fname = "main";
      params = [];
      ret = None;
      locals =
        [
          DScalar ("x", Ty.F64);
          DScalar ("mean", Ty.F64);
          DScalar ("np", Ty.I64);
          DScalar ("result", Ty.F64);
        ];
      body =
        [
          SAssign ("np", MpiSize);
          SAssign ("x", to_float (MpiRank));
          SFor
            ( "it",
              i 0,
              i iters,
              [
                SAssign ("mean", MpiAllreduce (v "x") / to_float (v "np"));
                SAssign ("x", f 0.5 * (v "x" + v "mean"));
              ] );
          SAssign ("result", v "x");
          SPrint ("RESULT %.17g\n", [ v "result" ]);
        ];
    }
  in
  { globals = []; funs = [ main ]; entry = "main" }
