lib/mpi/comm.ml: Array Condition List Machine Mutex Printf Queue Value
