lib/mpi/runner.ml: Array Comm Domain Machine Prog Trace Unix
