lib/mpi/runner.mli: Machine Prog
