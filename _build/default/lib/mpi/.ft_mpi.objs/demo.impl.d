lib/mpi/demo.ml: Ast Stdlib Ty
