lib/mpi/demo.mli: Ast
