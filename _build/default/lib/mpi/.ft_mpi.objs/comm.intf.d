lib/mpi/comm.mli: Machine Value
