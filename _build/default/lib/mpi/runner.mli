(** Parallel execution of an IR program across simulated MPI ranks,
    one VM per rank on its own OCaml domain. *)

type rank_result = {
  rank : int;
  result : Machine.result;
  trace_len : int;  (** events streamed, 0 when tracing was off *)
}

type bundle = {
  results : rank_result array;
  wall_seconds : float;
  recorded : (int * int * int) list;  (** receive order, if recording *)
}

val run :
  ?traced:bool ->
  ?record:bool ->
  ?max_live:int ->
  ?replay:(int * int * int) array ->
  size:int ->
  Prog.t ->
  bundle
(** [traced] streams per-rank events through a counting sink (the
    Figure 4 instrumentation-cost measurement).  [max_live] runs ranks
    in bounded waves — only safe for programs whose ranks do not
    communicate. *)
