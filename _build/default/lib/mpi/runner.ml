(** Parallel execution of an IR program across simulated MPI ranks.

    Each rank runs the program in its own VM on its own OCaml domain,
    wired to the shared {!Comm} runtime.  Used by the Figure-4
    experiment (per-process tracing overhead at scale) and by the MPI
    demo programs. *)

type rank_result = {
  rank : int;
  result : Machine.result;
  trace_len : int;  (** 0 when tracing was off *)
}

type bundle = {
  results : rank_result array;
  wall_seconds : float;
  recorded : (int * int * int) list;  (** receive order, if recording *)
}

(** Run [prog] on [size] ranks.  [traced] turns per-rank instruction
    tracing on (traces are measured and discarded — the Figure 4
    experiment needs the cost, not the artifact).  [record] records the
    message receive order; [replay] enforces a previously recorded
    order.

    [max_live] bounds how many rank domains run at once.  It is only
    safe for programs whose ranks do not communicate (rank-replicated
    computation, as in the Figure 4 harness): a communicating program
    would deadlock waiting for an unspawned peer.  It keeps at most
    [max_live] in-memory traces alive at a time. *)
let run ?(traced = false) ?(record = false) ?max_live
    ?(replay : (int * int * int) array option) ~(size : int) (prog : Prog.t) :
    bundle =
  let mode =
    match replay with
    | Some order -> Comm.Replay { order; next = 0 }
    | None -> if record then Comm.Record (ref []) else Comm.Free
  in
  let comm = Comm.create ~mode ~size () in
  let t0 = Unix.gettimeofday () in
  let run_rank rank () =
    (* per-rank tracing streams events through a sink (the analog of
       LLVM-Tracer writing a per-process file) rather than retaining
       them: Figure 4 measures the instrumentation cost, not the
       artifact *)
    let events = ref 0 in
    let sink = if traced then Some (fun (_ : Trace.event) -> incr events) else None in
    let cfg =
      {
        Machine.default_config with
        sink;
        mpi = Some (Comm.hooks comm ~rank);
      }
    in
    let result = Machine.run prog cfg in
    { rank; result; trace_len = !events }
  in
  let results =
    if size = 1 then [| run_rank 0 () |]
    else begin
      match max_live with
      | None ->
          let domains =
            Array.init size (fun rank -> Domain.spawn (run_rank rank))
          in
          Array.map Domain.join domains
      | Some cap ->
          let cap = max 1 cap in
          let out = Array.make size None in
          let rank = ref 0 in
          while !rank < size do
            let wave = min cap (size - !rank) in
            let base = !rank in
            let domains =
              Array.init wave (fun k -> Domain.spawn (run_rank (base + k)))
            in
            Array.iteri (fun k d -> out.(base + k) <- Some (Domain.join d)) domains;
            rank := base + wave
          done;
          Array.map (function Some r -> r | None -> assert false) out
    end
  in
  let wall_seconds = Unix.gettimeofday () -. t0 in
  { results; wall_seconds; recorded = Comm.recorded_order comm }
