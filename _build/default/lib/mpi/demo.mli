(** Communication-bearing mini-programs for the simulated MPI runtime. *)

val ring : rounds:int -> Ast.program
(** A token circulates the ring [rounds] times, gaining each rank;
    every rank prints RESULT = rounds * size * (size - 1) / 2. *)

val halo_jacobi : cells:int -> iters:int -> Ast.program
(** 1-D Jacobi relaxation with halo exchange between neighbor ranks;
    RESULT is the all-reduced sum of interior cells. *)

val allreduce_converge : iters:int -> Ast.program
(** Every rank iterates x <- (x + mean)/2; converges to the mean of the
    initial ranks. *)
