(** Per-location access index over a trace.

    For every location, the sorted sequence of (event index, read/write)
    accesses.  This is the substrate of the liveness side of the ACL
    table: a corrupted location is *alive* at time [t] if it will be
    read again after [t] before being overwritten. *)

type kind = Read | Write

type fate =
  [ `Dies_after_read of int * int option
  | `Overwritten_at of int
  | `Never_used ]

type t = { tbl : (int * kind) array Loc.Tbl.t }

let build_seq (events : Trace.event Seq.t) : t =
  let tmp : (int * kind) list ref Loc.Tbl.t = Loc.Tbl.create 4096 in
  let add loc entry =
    match Loc.Tbl.find_opt tmp loc with
    | Some l -> l := entry :: !l
    | None -> Loc.Tbl.add tmp loc (ref [ entry ])
  in
  let i = ref 0 in
  Seq.iter
    (fun (e : Trace.event) ->
      Array.iter (fun (loc, _) -> add loc (!i, Read)) e.reads;
      Array.iter (fun (loc, _) -> add loc (!i, Write)) e.writes;
      incr i)
    events;
  let tbl = Loc.Tbl.create (Loc.Tbl.length tmp) in
  Loc.Tbl.iter
    (fun loc l -> Loc.Tbl.add tbl loc (Array.of_list (List.rev !l)))
    tmp;
  { tbl }

let build (tr : Trace.t) : t = build_seq (Trace.to_seq tr)

let accesses (t : t) (loc : Loc.t) : (int * kind) array =
  match Loc.Tbl.find_opt t.tbl loc with Some a -> a | None -> [||]

(* first access index in [a] with event index strictly greater than [i] *)
let first_after (a : (int * kind) array) (i : int) : int =
  let n = Array.length a in
  let rec bs lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if fst a.(mid) <= i then bs (mid + 1) hi else bs lo mid
  in
  bs 0 n

(** The fate of a location's current value established at event [t]:
    scanning forward, reads keep it alive; the first write ends it.
    Returns [`Dies_at r] where [r] is the event index of the *last read*
    before the next write (the value is referenced up to [r], dead
    after), [`Overwritten_at w] if a write at [w] comes before any read,
    or [`Never_used] if there are no further accesses at all. *)
let fate (t : t) (loc : Loc.t) ~(after : int) :
    [ `Dies_after_read of int * int option
      (** last read, then index of following write if any *)
    | `Overwritten_at of int
    | `Never_used ] =
  let a = accesses t loc in
  let n = Array.length a in
  let start = first_after a after in
  if start >= n then `Never_used
  else
    let rec scan i last_read =
      if i >= n then
        match last_read with
        | Some r -> `Dies_after_read (r, None)
        | None -> `Never_used
      else
        match snd a.(i) with
        | Read -> scan (i + 1) (Some (fst a.(i)))
        | Write -> (
            match last_read with
            | Some r -> `Dies_after_read (r, Some (fst a.(i)))
            | None -> `Overwritten_at (fst a.(i)))
    in
    scan start None

(** Is the value in [loc] established at event [after] referenced again
    before being overwritten? *)
let alive (t : t) (loc : Loc.t) ~(after : int) : bool =
  match fate t loc ~after with
  | `Dies_after_read _ -> true
  | `Overwritten_at _ | `Never_used -> false

(** Is [loc] read anywhere in the event interval [lo, hi)? *)
let read_in (t : t) (loc : Loc.t) ~(lo : int) ~(hi : int) : bool =
  let a = accesses t loc in
  let n = Array.length a in
  let rec scan i =
    if i >= n || fst a.(i) >= hi then false
    else match snd a.(i) with Read -> true | Write -> scan (i + 1)
  in
  scan (first_after a (lo - 1))

(** Is [loc] written anywhere in the event interval [lo, hi)? *)
let written_in (t : t) (loc : Loc.t) ~(lo : int) ~(hi : int) : bool =
  let a = accesses t loc in
  let n = Array.length a in
  let rec scan i =
    if i >= n || fst a.(i) >= hi then false
    else match snd a.(i) with Write -> true | Read -> scan (i + 1)
  in
  scan (first_after a (lo - 1))
