(** Region-level fault-tolerance classification (Section III-D).

    Given the fault-free and faulty traces and a code-region instance
    (event span from the fault-free run), decide how the region treated
    the corruption:
    {ul
    {- [Case1_masked]: at least one input location was corrupted at
       region entry, and every output location was clean at region exit
       — the region absorbed the error;}
    {- [Case2_diminished]: corruption survives, but the largest error
       magnitude over the corrupted input/output locations shrank
       across the region;}
    {- [Propagated]: corruption survives undiminished;}
    {- [Not_affected]: no input was corrupted (propagation analysis can
       skip the region);}
    {- [Diverged]: control flow changed inside the region, so
       input/output comparison is not meaningful.}} *)

type classification =
  | Case1_masked
  | Case2_diminished of { entry_mag : float; exit_mag : float }
  | Propagated of { entry_mag : float; exit_mag : float }
  | Not_affected
  | Diverged

let to_string = function
  | Case1_masked -> "case1-masked"
  | Case2_diminished { entry_mag; exit_mag } ->
      Printf.sprintf "case2-diminished (%.3e -> %.3e)" entry_mag exit_mag
  | Propagated { entry_mag; exit_mag } ->
      Printf.sprintf "propagated (%.3e -> %.3e)" entry_mag exit_mag
  | Not_affected -> "not-affected"
  | Diverged -> "diverged"

(* largest finite error magnitude over [locs]; infinite magnitudes
   (corruption of a zero value) are treated as larger than any finite
   one *)
let max_magnitude (w : Align.t) (locs : Loc.t list) : float =
  List.fold_left
    (fun acc loc ->
      match Align.magnitude w loc with
      | None -> acc
      | Some m -> if Float.is_nan m then acc else Float.max acc m)
    0.0 locs

(** Classify one region instance.  [inputs]/[outputs] are the location
    sets from the fault-free DDDG of that instance. *)
let classify ?fault ~(clean : Trace.t) ~(faulty : Trace.t)
    ~(inputs : Loc.t list) ~(outputs : Loc.t list) ~(lo : int) ~(hi : int) ()
    : classification =
  let w = Align.create ?fault ~clean ~faulty () in
  (* advance to region entry *)
  let rec advance_to target =
    if w.Align.pos >= target then `Ok
    else
      match Align.step w with
      | Align.Step _ -> advance_to target
      | Align.Diverged _ -> `Diverged
      | Align.End -> `Ended
  in
  match advance_to lo with
  | `Diverged | `Ended -> Diverged
  | `Ok -> (
      (* a region-entry injection triggers exactly at the first event of
         the region; make it visible before sampling the inputs *)
      if lo < Trace.length faulty then
        Align.apply_pending_fault w ~next_seq:(Trace.get faulty lo).Trace.seq;
      let corrupted_inputs =
        List.filter (fun l -> Align.is_corrupted w l) inputs
      in
      if corrupted_inputs = [] then Not_affected
      else
        let entry_mag = max_magnitude w corrupted_inputs in
        match advance_to hi with
        | `Diverged -> Diverged
        | `Ended | `Ok ->
            (* Case 1 asks only that every *output* is clean — the
               corrupted input may live on, masked inside the region *)
            let corrupted_outputs =
              List.filter (fun l -> Align.is_corrupted w l) outputs
            in
            if corrupted_outputs = [] then Case1_masked
            else
              let corrupted_io =
                List.filter (fun l -> Align.is_corrupted w l) (inputs @ outputs)
              in
              let exit_mag = max_magnitude w corrupted_io in
              if exit_mag < entry_mag then
                Case2_diminished { entry_mag; exit_mag }
              else Propagated { entry_mag; exit_mag })

(** Error-magnitude trajectory of one memory word across main-loop
    iterations (Table II of the paper): samples the clean value, the
    faulty value, and Equation-2 magnitude of [addr] at the end of each
    iteration, walking while the runs stay aligned. *)
let magnitude_by_iteration ?fault ~(clean : Trace.t) ~(faulty : Trace.t)
    ~(addr : int) () : (int * Value.t * Value.t * float) list =
  let w = Align.create ?fault ~clean ~faulty () in
  let loc = Loc.Mem addr in
  let samples = ref [] in
  let cur_iter = ref (-1) in
  let sample () =
    if !cur_iter >= 0 then begin
      let cv = Align.clean_value w loc and fv = Align.faulty_value w loc in
      let m = Value.error_magnitude ~correct:cv ~faulty:fv in
      samples := (!cur_iter, cv, fv, m) :: !samples
    end
  in
  let finished = ref false in
  while not !finished do
    match Align.step w with
    | Align.Step { faulty_ev; _ } ->
        if faulty_ev.iter <> !cur_iter then begin
          sample ();
          cur_iter := faulty_ev.iter
        end
    | Align.Diverged _ | Align.End ->
        sample ();
        finished := true
  done;
  List.rev !samples
