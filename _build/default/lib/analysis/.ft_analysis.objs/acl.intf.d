lib/analysis/acl.mli: Loc Machine Trace Trace_io
