lib/analysis/acl.mli: Loc Machine Trace
