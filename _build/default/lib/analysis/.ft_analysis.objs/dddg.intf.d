lib/analysis/dddg.mli: Access Loc Trace Value
