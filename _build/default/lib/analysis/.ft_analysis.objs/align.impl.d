lib/analysis/align.ml: Array List Loc Machine Seq Trace Value
