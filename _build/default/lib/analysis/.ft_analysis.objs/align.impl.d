lib/analysis/align.ml: Array List Loc Machine Trace Value
