lib/analysis/trace_io.mli: Buffer Trace
