lib/analysis/trace_io.mli: Buffer Loc Seq Trace
