lib/analysis/trace_io.ml: Array Buffer Char Filename Fun Int64 List Loc Op Printf Region String Sys Trace
