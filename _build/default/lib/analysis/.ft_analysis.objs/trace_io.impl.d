lib/analysis/trace_io.ml: Array Buffer Bytes Char Filename Fun Hashtbl Int64 List Loc Op Printexc Printf Seq String Sys Trace Value
