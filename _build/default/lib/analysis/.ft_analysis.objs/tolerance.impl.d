lib/analysis/tolerance.ml: Align Float List Loc Printf Trace Value
