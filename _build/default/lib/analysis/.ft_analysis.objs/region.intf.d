lib/analysis/region.mli: Format Trace
