lib/analysis/region.mli: Format Seq Trace
