lib/analysis/access.ml: Array List Loc Seq Trace
