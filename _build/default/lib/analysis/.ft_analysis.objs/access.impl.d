lib/analysis/access.ml: Array List Loc Trace
