lib/analysis/tolerance.mli: Loc Machine Trace Value
