lib/analysis/access.mli: Loc Seq Trace
