lib/analysis/access.mli: Loc Trace
