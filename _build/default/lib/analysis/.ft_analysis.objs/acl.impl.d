lib/analysis/acl.ml: Access Align Array Bool Float Hashtbl List Loc Machine Op String Trace
