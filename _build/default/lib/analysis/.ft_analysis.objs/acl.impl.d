lib/analysis/acl.ml: Access Align Array Bool Float Hashtbl List Loc Machine Op Seq String Trace Trace_io
