lib/analysis/export.ml: Acl Array Buffer Fun List Printf String
