lib/analysis/region.ml: Fmt Hashtbl Int List Seq Trace
