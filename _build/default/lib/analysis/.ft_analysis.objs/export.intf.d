lib/analysis/export.mli: Acl
