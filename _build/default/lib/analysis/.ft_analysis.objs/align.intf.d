lib/analysis/align.mli: Loc Machine Trace Value
