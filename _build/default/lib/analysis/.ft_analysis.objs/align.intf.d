lib/analysis/align.mli: Loc Machine Seq Trace Value
