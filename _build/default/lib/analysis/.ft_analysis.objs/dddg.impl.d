lib/analysis/dddg.ml: Access Array Buffer Fmt Int List Loc Printf Trace Value
