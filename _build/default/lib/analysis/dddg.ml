(** Dynamic Data Dependency Graphs.

    Built per code-region instance from the trace slice of that
    instance, after Holewinski et al.: vertices are dynamic values —
    one version of a location per write — and edges connect the values
    read by an instruction to the value it writes.

    Roots (values read before ever being written inside the region) are
    the region's {e input locations}; final versions that are read
    again after the region ends are its {e output locations}; the rest
    are internals.  This classification drives both the isolated
    fault-injection campaigns (inputs are the injection targets) and
    the Case-1/Case-2 tolerance tests. *)

type node = {
  id : int;
  loc : Loc.t;
  version : int;
  value : Value.t;  (** value carried by this version *)
  def_index : int option;
      (** trace event that produced it; [None] for region inputs *)
  def_op : Trace.opclass option;
  def_line : int;
}

type t = {
  nodes : node array;
  edges : (int * int) list;  (** producer -> consumer, by node id *)
  inputs : node list;   (** root nodes *)
  outputs : node list;  (** final versions still referenced after [hi] *)
  lo : int;
  hi : int;
}

(** Build the DDDG of the event slice [lo, hi) of [trace].  [access]
    must be the access index of the same trace (used to decide which
    final values are read after the region, i.e. are outputs). *)
let build (trace : Trace.t) (access : Access.t) ~(lo : int) ~(hi : int) : t =
  let nodes = ref [] in
  let nnodes = ref 0 in
  let edges = ref [] in
  let current : node Loc.Tbl.t = Loc.Tbl.create 256 in
  let inputs = ref [] in
  let add_node loc version value def_index def_op def_line =
    let n = { id = !nnodes; loc; version; value; def_index; def_op; def_line } in
    incr nnodes;
    nodes := n :: !nodes;
    Loc.Tbl.replace current loc n;
    n
  in
  for i = lo to hi - 1 do
    let e = Trace.get trace i in
    let read_nodes =
      Array.to_list e.reads
      |> List.map (fun (loc, v) ->
             match Loc.Tbl.find_opt current loc with
             | Some n -> n
             | None ->
                 (* first touch is a read: the value flowed in from
                    outside the region *)
                 let n = add_node loc 0 v None None e.line in
                 inputs := n :: !inputs;
                 n)
    in
    Array.iter
      (fun (loc, v) ->
        let version =
          match Loc.Tbl.find_opt current loc with
          | Some n -> n.version + 1
          | None -> 1
        in
        let n = add_node loc version v (Some i) (Some e.op) e.line in
        List.iter (fun src -> edges := (src.id, n.id) :: !edges) read_nodes)
      e.writes
  done;
  let outputs =
    Loc.Tbl.fold
      (fun loc n acc ->
        if n.def_index = None then acc
        else
          match Access.fate access loc ~after:(hi - 1) with
          | `Dies_after_read _ -> n :: acc
          | `Overwritten_at _ | `Never_used -> acc)
      current []
  in
  let nodes = Array.of_list (List.rev !nodes) in
  { nodes; edges = !edges; inputs = !inputs; outputs; lo; hi }

(** Memory locations among the region inputs — the natural targets for
    input-location fault injection (registers of enclosing frames are
    inputs too, but the paper injects into program state, which our
    compiler keeps in memory). *)
let input_mem_addrs (g : t) : int list =
  List.filter_map
    (fun n -> match n.loc with Loc.Mem a -> Some a | Loc.Reg _ -> None)
    g.inputs
  |> List.sort_uniq Int.compare

let output_mem_addrs (g : t) : int list =
  List.filter_map
    (fun n -> match n.loc with Loc.Mem a -> Some a | Loc.Reg _ -> None)
    g.outputs
  |> List.sort_uniq Int.compare

let internal_count (g : t) : int =
  Array.length g.nodes - List.length g.inputs - List.length g.outputs

(** Graphviz rendering, for inspection (the paper used Graphviz for the
    same purpose). *)
let to_dot ?(max_nodes = 2000) (g : t) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph dddg {\n  rankdir=TB;\n";
  let is_input n = n.def_index = None in
  let is_output n = List.exists (fun o -> o.id = n.id) g.outputs in
  let n = min max_nodes (Array.length g.nodes) in
  for i = 0 to n - 1 do
    let node = g.nodes.(i) in
    let shape =
      if is_input node then "box" else if is_output node then "doubleoctagon"
      else "ellipse"
    in
    Buffer.add_string buf
      (Printf.sprintf "  n%d [shape=%s,label=\"%s v%d\\n0x%Lx\"];\n" node.id
         shape
         (Fmt.str "%a" Loc.pp node.loc)
         node.version node.value)
  done;
  List.iter
    (fun (a, b) ->
      if a < n && b < n then
        Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" a b))
    g.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
