(** Code-region instances in a dynamic trace.

    A region instance is a maximal contiguous span of trace events that
    share the same effective region id and instance number — one
    dynamic execution of a code region (the tracer stamps both).  The
    chain of instances is the paper's top-level application model: the
    program is a chain of code-region instances, and errors propagate
    across that chain. *)

type instance = {
  rid : int;       (** region id, index into [Prog.region_table] *)
  number : int;    (** instance number of this region (0-based) *)
  lo : int;        (** first event index (inclusive) *)
  hi : int;        (** last event index (exclusive) *)
  iter : int;      (** main-loop iteration the instance started in *)
}

(** Extract the chain of region instances from an event stream in one
    pass, in execution order.  Events with effective region -1 (outside
    all regions) are not part of any instance. *)
let instances_seq (events : Trace.event Seq.t) : instance list =
  let acc = ref [] in
  let cur = ref None in
  let flush upto =
    match !cur with
    | None -> ()
    | Some (rid, number, lo, iter) ->
        acc := { rid; number; lo; hi = upto; iter } :: !acc;
        cur := None
  in
  let i = ref 0 in
  Seq.iter
    (fun (e : Trace.event) ->
      (match !cur with
      | Some (rid, number, _, _)
        when e.region = rid && e.instance = number ->
          ()
      | Some _ | None ->
          flush !i;
          if e.region >= 0 then cur := Some (e.region, e.instance, !i, e.iter));
      incr i)
    events;
  flush !i;
  List.rev !acc

let instances (t : Trace.t) : instance list = instances_seq (Trace.to_seq t)

(** Instances of one region, in instance order. *)
let instances_of (t : Trace.t) (rid : int) : instance list =
  List.filter (fun inst -> inst.rid = rid) (instances t)

(** The [n]-th instance of region [rid]. *)
let find_instance (t : Trace.t) ~(rid : int) ~(number : int) : instance option =
  List.find_opt (fun i -> i.number = number) (instances_of t rid)

(** Dynamic instruction count of an instance. *)
let size (i : instance) = i.hi - i.lo

(** Event index spans of each main-loop iteration, keyed by iteration
    number (from the iteration marker).  Iteration -1 (setup) is
    excluded. *)
let iteration_spans (t : Trace.t) : (int * (int * int)) list =
  let spans = Hashtbl.create 16 in
  Trace.iteri
    (fun i (e : Trace.event) ->
      if e.iter >= 0 then
        match Hashtbl.find_opt spans e.iter with
        | None -> Hashtbl.replace spans e.iter (i, i + 1)
        | Some (lo, _) -> Hashtbl.replace spans e.iter (lo, i + 1))
    t;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) spans []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let pp_instance ppf (i : instance) =
  Fmt.pf ppf "region %d inst %d events [%d,%d) iter %d" i.rid i.number i.lo
    i.hi i.iter
