(** Dynamic Data Dependency Graphs, built per code-region instance:
    vertices are dynamic values (one version of a location per write),
    edges connect the values an instruction reads to the value it
    writes.  Roots are the region's input locations, final versions
    read after the region are its outputs. *)

type node = {
  id : int;
  loc : Loc.t;
  version : int;
  value : Value.t;
  def_index : int option;  (** producing event; [None] for inputs *)
  def_op : Trace.opclass option;
  def_line : int;
}

type t = {
  nodes : node array;
  edges : (int * int) list;  (** producer -> consumer, by node id *)
  inputs : node list;
  outputs : node list;
  lo : int;
  hi : int;
}

val build : Trace.t -> Access.t -> lo:int -> hi:int -> t
(** DDDG of the event slice [lo, hi); [access] must index the same
    trace (used to classify outputs). *)

val input_mem_addrs : t -> int list
(** Memory words among the region inputs — the input-injection targets. *)

val output_mem_addrs : t -> int list
val internal_count : t -> int

val to_dot : ?max_nodes:int -> t -> string
(** Graphviz rendering (inputs boxed, outputs double-octagons). *)
