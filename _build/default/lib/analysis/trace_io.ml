(** Trace serialization.

    The paper's tracer (LLVM-Tracer) writes one text trace file per MPI
    process, and FlipTracker's implementation splits those files into
    per-code-region-instance pieces for parallel analysis
    (Section IV-A).  This module provides the same artifacts: a compact
    line-oriented text format with one line per dynamic instruction,
    readers/writers over channels, and region-instance splitting.

    Format, one event per line, space-separated:

    {v seq fidx pc act line region instance iter op #reads r... #writes w... v}

    where each read/write is [loc:hexvalue] and a location is [rA.R]
    (register R of activation A) or [mADDR] (memory word). *)

let pp_loc_compact buf (loc : Loc.t) =
  match loc with
  | Loc.Reg (a, r) -> Buffer.add_string buf (Printf.sprintf "r%d.%d" a r)
  | Loc.Mem m -> Buffer.add_string buf (Printf.sprintf "m%d" m)

let parse_loc (s : string) : Loc.t =
  if String.length s < 2 then failwith ("Trace_io.parse_loc: " ^ s)
  else if Char.equal s.[0] 'm' then
    Loc.Mem (int_of_string (String.sub s 1 (String.length s - 1)))
  else
    match String.index_opt s '.' with
    | Some dot ->
        Loc.Reg
          ( int_of_string (String.sub s 1 (dot - 1)),
            int_of_string (String.sub s (dot + 1) (String.length s - dot - 1)) )
    | None -> failwith ("Trace_io.parse_loc: " ^ s)

let opclass_code : Trace.opclass -> string = function
  | Trace.OConst -> "c"
  | Trace.OBin op -> "b:" ^ Op.bin_to_string op
  | Trace.OUn op -> "u:" ^ Op.un_to_string op
  | Trace.OLoad -> "l"
  | Trace.OStore -> "s"
  | Trace.OJmp -> "j"
  | Trace.OBr true -> "t"
  | Trace.OBr false -> "f"
  | Trace.OCall -> "C"
  | Trace.ORet -> "R"
  | Trace.OIntr s ->
      (* percent-encode so arbitrary format strings survive the
         line-oriented representation *)
      let buf = Buffer.create (String.length s + 8) in
      String.iter
        (fun c ->
          match c with
          | ' ' -> Buffer.add_string buf "%20"
          | '\n' -> Buffer.add_string buf "%0A"
          | '%' -> Buffer.add_string buf "%25"
          | c -> Buffer.add_char buf c)
        s;
      "i:" ^ Buffer.contents buf
  | Trace.OMark m -> "M:" ^ string_of_int m

let parse_opclass (s : string) : Trace.opclass =
  let tail () = String.sub s 2 (String.length s - 2) in
  match s.[0] with
  | 'c' -> Trace.OConst
  | 'l' -> Trace.OLoad
  | 's' -> Trace.OStore
  | 'j' -> Trace.OJmp
  | 't' -> Trace.OBr true
  | 'f' -> Trace.OBr false
  | 'C' -> Trace.OCall
  | 'R' -> Trace.ORet
  | 'M' -> Trace.OMark (int_of_string (tail ()))
  | 'i' ->
      let enc = tail () in
      let buf = Buffer.create (String.length enc) in
      let n = String.length enc in
      let rec decode i =
        if i >= n then ()
        else if Char.equal enc.[i] '%' && i + 2 < n then begin
          (match String.sub enc i 3 with
          | "%20" -> Buffer.add_char buf ' '
          | "%0A" -> Buffer.add_char buf '\n'
          | "%25" -> Buffer.add_char buf '%'
          | other -> Buffer.add_string buf other);
          decode (i + 3)
        end
        else begin
          Buffer.add_char buf enc.[i];
          decode (i + 1)
        end
      in
      decode 0;
      Trace.OIntr (Buffer.contents buf)
  | 'b' ->
      let name = tail () in
      let all =
        [
          Op.Add; Sub; Mul; Div; Rem; And; Or; Xor; Shl; Lshr; Ashr; Fadd;
          Fsub; Fmul; Fdiv; Eq; Ne; Lt; Le; Gt; Ge; Feq; Fne; Flt; Fle; Fgt;
          Fge; Imin; Imax; Fmin; Fmax;
        ]
      in
      Trace.OBin
        (List.find (fun o -> String.equal (Op.bin_to_string o) name) all)
  | 'u' ->
      let name = tail () in
      let all =
        [
          Op.Neg; Not; Fneg; Fabs; Fsqrt; Fsin; Fcos; Trunc32; FloatOfInt;
          IntOfFloat; F32round;
        ]
      in
      Trace.OUn (List.find (fun o -> String.equal (Op.un_to_string o) name) all)
  | _ -> failwith ("Trace_io.parse_opclass: " ^ s)

let write_event (buf : Buffer.t) (e : Trace.event) : unit =
  Buffer.add_string buf
    (Printf.sprintf "%d %d %d %d %d %d %d %d %s %d" e.seq e.fidx e.pc e.act
       e.line e.region e.instance e.iter (opclass_code e.op)
       (Array.length e.reads));
  Array.iter
    (fun (loc, v) ->
      Buffer.add_char buf ' ';
      pp_loc_compact buf loc;
      Buffer.add_string buf (Printf.sprintf ":%Lx" v))
    e.reads;
  Buffer.add_string buf (Printf.sprintf " %d" (Array.length e.writes));
  Array.iter
    (fun (loc, v) ->
      Buffer.add_char buf ' ';
      pp_loc_compact buf loc;
      Buffer.add_string buf (Printf.sprintf ":%Lx" v))
    e.writes;
  Buffer.add_char buf '\n'

let parse_event (line : string) : Trace.event =
  let toks = String.split_on_char ' ' line |> List.filter (fun s -> s <> "") in
  match toks with
  | seq :: fidx :: pc :: act :: ln :: region :: instance :: iter :: op
    :: nreads :: rest ->
      let nreads = int_of_string nreads in
      let parse_access tok =
        match String.index_opt tok ':' with
        | Some i ->
            ( parse_loc (String.sub tok 0 i),
              Int64.of_string
                ("0x" ^ String.sub tok (i + 1) (String.length tok - i - 1)) )
        | None -> failwith ("Trace_io.parse_event: access " ^ tok)
      in
      let rec take n acc = function
        | rest when n = 0 -> (List.rev acc, rest)
        | [] -> failwith "Trace_io.parse_event: truncated"
        | t :: rest -> take (n - 1) (parse_access t :: acc) rest
      in
      let reads, rest = take nreads [] rest in
      let writes =
        match rest with
        | nw :: rest ->
            let nw = int_of_string nw in
            fst (take nw [] rest)
        | [] -> failwith "Trace_io.parse_event: missing writes"
      in
      {
        Trace.seq = int_of_string seq;
        fidx = int_of_string fidx;
        pc = int_of_string pc;
        act = int_of_string act;
        line = int_of_string ln;
        region = int_of_string region;
        instance = int_of_string instance;
        iter = int_of_string iter;
        op = parse_opclass op;
        reads = Array.of_list reads;
        writes = Array.of_list writes;
      }
  | _ -> failwith ("Trace_io.parse_event: bad line " ^ line)

(** Serialize a whole trace to a channel. *)
let write_channel (oc : out_channel) (t : Trace.t) : unit =
  let buf = Buffer.create 65536 in
  Trace.iter
    (fun e ->
      write_event buf e;
      if Buffer.length buf > 1 lsl 20 then begin
        Buffer.output_buffer oc buf;
        Buffer.clear buf
      end)
    t;
  Buffer.output_buffer oc buf

let save (path : string) (t : Trace.t) : unit =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_channel oc t)

(** Read a trace back from a channel. *)
let read_channel (ic : in_channel) : Trace.t =
  let t = Trace.create () in
  (try
     while true do
       let line = input_line ic in
       if String.length line > 0 then Trace.push t (parse_event line)
     done
   with End_of_file -> ());
  t

let load (path : string) : Trace.t =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_channel ic)

(** Split a trace into one file per code-region instance under [dir]
    (the paper's trace-splitting step), named
    [<prefix>_r<region>_i<instance>.trace].  Returns the files
    written. *)
let split_by_region_instance ~(dir : string) ?(prefix = "trace") (t : Trace.t)
    : string list =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.map
    (fun (inst : Region.instance) ->
      let path =
        Filename.concat dir
          (Printf.sprintf "%s_r%d_i%d.trace" prefix inst.Region.rid
             inst.Region.number)
      in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          let buf = Buffer.create 65536 in
          for k = inst.Region.lo to inst.Region.hi - 1 do
            write_event buf (Trace.get t k)
          done;
          Buffer.output_buffer oc buf);
      path)
    (Region.instances t)
