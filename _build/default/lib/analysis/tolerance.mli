(** Region-level fault-tolerance classification (Section III-D of the
    paper): given aligned faulty/fault-free traces and a region
    instance, decide whether the region masked the corruption (Case 1),
    diminished its magnitude (Case 2), propagated it, was unaffected,
    or diverged. *)

type classification =
  | Case1_masked
      (** some input was corrupted at entry, every output clean at exit *)
  | Case2_diminished of { entry_mag : float; exit_mag : float }
      (** corruption survives with smaller error magnitude *)
  | Propagated of { entry_mag : float; exit_mag : float }
  | Not_affected  (** no input corrupted: propagation analysis skips it *)
  | Diverged

val to_string : classification -> string

val classify :
  ?fault:Machine.fault ->
  clean:Trace.t ->
  faulty:Trace.t ->
  inputs:Loc.t list ->
  outputs:Loc.t list ->
  lo:int ->
  hi:int ->
  unit ->
  classification
(** [inputs]/[outputs] come from the fault-free DDDG of the instance;
    [lo]/[hi] is its event span. *)

val magnitude_by_iteration :
  ?fault:Machine.fault ->
  clean:Trace.t ->
  faulty:Trace.t ->
  addr:int ->
  unit ->
  (int * Value.t * Value.t * float) list
(** Error-magnitude trajectory of one memory word at each main-loop
    iteration boundary — the Table II experiment.  Each sample is
    [(iteration, clean_value, faulty_value, magnitude)]. *)
