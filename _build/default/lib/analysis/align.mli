(** Lockstep alignment of a faulty trace against its fault-free twin,
    maintaining shadow machine states for both runs and the set of
    {e corrupted} locations — locations whose faulty-run value differs
    from the fault-free value (value-based corruption, stricter than
    taint: a masked value is clean again).  Alignment stops at the
    first control-flow divergence. *)

type t = {
  next_clean : unit -> Trace.event option;
      (** pull the next clean event; [None] at end of stream *)
  next_faulty : unit -> Trace.event option;
  mutable pos : int;  (** next event index to process *)
  shadow_clean : Value.t Loc.Tbl.t;
  shadow_faulty : Value.t Loc.Tbl.t;
  corrupted : Value.t Loc.Tbl.t;
      (** corrupted locations, mapped to their current clean value *)
  fault : Machine.fault option;
  mutable fault_applied : bool;
  mutable diverged_at : int option;
}

val create : ?fault:Machine.fault -> clean:Trace.t -> faulty:Trace.t -> unit -> t

val create_seq :
  ?fault:Machine.fault ->
  clean:Trace.event Seq.t ->
  faulty:Trace.event Seq.t ->
  unit ->
  t
(** Walker over event streams: memory stays proportional to the live
    shadow state (written locations), not the trace length.  The
    sequences are consumed incrementally as [step] advances. *)

val clean_value : t -> Loc.t -> Value.t
val faulty_value : t -> Loc.t -> Value.t
val is_corrupted : t -> Loc.t -> bool
val corrupted_count : t -> int
val corrupted_locs : t -> Loc.t list

val magnitude : t -> Loc.t -> float option
(** Error magnitude (Equation 2) of a corrupted location right now. *)

val apply_pending_fault : t -> next_seq:int -> unit
(** Force a pending [Flip_mem] whose trigger has been reached into the
    faulty shadow state.  [step] does this automatically; analyses that
    snapshot state between events (e.g. at a region entry) call it
    explicitly. *)

type step =
  | Step of {
      index : int;
      clean_ev : Trace.event;
      faulty_ev : Trace.event;
      changed : Loc.t list;  (** locations written this step *)
    }
  | Diverged of int  (** control paths differ from this event on *)
  | End

val step : t -> step

val walk :
  ?fault:Machine.fault ->
  clean:Trace.t ->
  faulty:Trace.t ->
  (step -> unit) ->
  int option
(** Run to completion; returns the divergence index, if any. *)
