(** Trace serialization: a line-oriented text format (one event per
    line, the LLVM-Tracer-file analog) and per-code-region-instance
    splitting (the paper's trace-splitting step, Section IV-A). *)

val opclass_code : Trace.opclass -> string
val parse_opclass : string -> Trace.opclass

val write_event : Buffer.t -> Trace.event -> unit
(** Appends one line (terminated by a newline). *)

val parse_event : string -> Trace.event
(** @raise Failure on a malformed line. *)

val write_channel : out_channel -> Trace.t -> unit
val save : string -> Trace.t -> unit
val read_channel : in_channel -> Trace.t
val load : string -> Trace.t

val split_by_region_instance :
  dir:string -> ?prefix:string -> Trace.t -> string list
(** One file per region instance under [dir] (created if needed), named
    [<prefix>_r<region>_i<instance>.trace]; returns the paths. *)
