(** Abstract syntax of the mini-C language the benchmark programs are
    written in: typed scalars and multi-dimensional row-major arrays,
    arithmetic with explicit conversions, [if]/[while]/[for],
    non-recursive functions (scalars by value, arrays by reference),
    C-style formatted printing, and the NPB [randlc] generator.

    Methodology hooks: [SRegion (name, line_lo, line_hi, body)] marks a
    code region (every instruction compiled from [body] is stamped with
    the region id), and [SMark name] emits a trace marker (apps place
    one at the top of the main-loop body).

    The convenience operators at the bottom make program construction
    read like the original C; note that [open Ast] therefore shadows
    the standard comparison and arithmetic operators — open it in the
    smallest scope that builds the program. *)

type ty = Ty.t

type binop =
  | Add | Sub | Mul | Div | Rem
  | Shl | Shr | AndB | OrB | XorB  (** integer-only *)
  | Eq | Ne | Lt | Le | Gt | Ge    (** result is i64 0/1 *)
  | Min | Max

type unop =
  | Neg
  | Sqrt
  | Abs
  | Sin
  | Cos
  | NotB     (** integer-only *)
  | Trunc32  (** C [(int)] cast on an integer value *)
  | ToFloat
  | ToInt    (** truncating *)
  | F32      (** round through binary32 *)

type expr =
  | Int of int64
  | Flt of float
  | Var of string
  | Idx of string * expr list  (** a[i], a[i][j], ... *)
  | Bin of binop * expr * expr
  | Un of unop * expr
  | CallE of string * expr list
  | Randlc of string * expr    (** randlc(&state_var, a) *)
  | MpiRank
  | MpiSize
  | MpiRecv of expr * expr     (** src, tag *)
  | MpiAllreduce of expr       (** sum across ranks *)

type stmt =
  | SAssign of string * expr
  | SStore of string * expr list * expr
  | SIf of expr * block * block
  | SWhile of expr * block
  | SFor of string * expr * expr * block
      (** for v = lo; v < hi; v++ — undeclared loop variables are
          implicitly i64 locals *)
  | SForStep of string * expr * expr * expr * block
  | SCall of string * expr list
  | SRet of expr option
  | SPrint of string * expr list
  | SMark of string
  | SRegion of string * int * int * block  (** name, line_lo, line_hi *)
  | SMpiSend of expr * expr * expr  (** dest, tag, value *)
  | SMpiBarrier

and block = stmt list

type param = {
  pname : string;
  pty : ty;
  parr : bool;       (** arrays pass their base address *)
  pdims : int list;  (** [] declares an unchecked 1-D array parameter *)
}

type decl = DScalar of string * ty | DArr of string * ty * int list

type fundef = {
  fname : string;
  params : param list;
  ret : ty option;
  locals : decl list;
  body : block;
}

type program = { globals : decl list; funs : fundef list; entry : string }

(** {2 Convenience constructors} *)

val i : int -> expr
val f : float -> expr
val v : string -> expr

val ( + ) : expr -> expr -> expr
val ( - ) : expr -> expr -> expr
val ( * ) : expr -> expr -> expr
val ( / ) : expr -> expr -> expr
val ( % ) : expr -> expr -> expr
val ( << ) : expr -> expr -> expr
val ( >> ) : expr -> expr -> expr
val ( &| ) : expr -> expr -> expr
val ( ||| ) : expr -> expr -> expr
val ( ^| ) : expr -> expr -> expr
val ( = ) : expr -> expr -> expr
val ( <> ) : expr -> expr -> expr
val ( < ) : expr -> expr -> expr
val ( <= ) : expr -> expr -> expr
val ( > ) : expr -> expr -> expr
val ( >= ) : expr -> expr -> expr

val sqrt_ : expr -> expr
val abs_ : expr -> expr
val sin_ : expr -> expr
val cos_ : expr -> expr
val neg : expr -> expr
val to_float : expr -> expr
val to_int : expr -> expr
val trunc32 : expr -> expr
val f32 : expr -> expr

val idx : string -> expr list -> expr
val idx1 : string -> expr -> expr
val idx2 : string -> expr -> expr -> expr
val idx3 : string -> expr -> expr -> expr -> expr
