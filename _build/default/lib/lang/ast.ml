(** Abstract syntax of the mini-C language in which the benchmark
    programs are written.

    The language is a small imperative subset of C: typed scalars and
    multi-dimensional arrays (row-major), arithmetic with explicit
    conversions, [if]/[while]/[for], non-recursive functions with value
    (scalar) and reference (array) parameters, C-style formatted
    printing, and the NPB [randlc] generator as a primitive.

    Two constructs carry the paper's methodology into the IR:
    {ul
    {- [SRegion (name, line_lo, line_hi, body)] marks a code region — a
       first-level inner loop of the main loop, or the block between two
       such loops.  The compiler stamps every instruction compiled from
       [body] with the region id.}
    {- [SMark name] emits a trace marker; apps place one at the top of
       the main loop body so analyses can split the trace by
       iteration.}} *)

type ty = Ty.t

type binop =
  | Add | Sub | Mul | Div | Rem          (* arithmetic, overloaded on type *)
  | Shl | Shr | AndB | OrB | XorB        (* integer-only bit operations *)
  | Eq | Ne | Lt | Le | Gt | Ge          (* comparisons, result i64 0/1 *)
  | Min | Max

type unop =
  | Neg
  | Sqrt
  | Abs
  | Sin
  | Cos
  | NotB        (* integer-only bitwise complement *)
  | Trunc32     (* C (int) cast on an integer value *)
  | ToFloat     (* i64 -> f64 *)
  | ToInt       (* f64 -> i64, truncating *)
  | F32         (* round f64 through binary32 *)

type expr =
  | Int of int64
  | Flt of float
  | Var of string
  | Idx of string * expr list       (* a[i], a[i][j], ... *)
  | Bin of binop * expr * expr
  | Un of unop * expr
  | CallE of string * expr list     (* call of a value-returning function *)
  | Randlc of string * expr         (* randlc(&state_var, a) *)
  | MpiRank
  | MpiSize
  | MpiRecv of expr * expr          (* src, tag *)
  | MpiAllreduce of expr            (* sum across ranks *)

type stmt =
  | SAssign of string * expr
  | SStore of string * expr list * expr   (* a[i..] = e *)
  | SIf of expr * block * block
  | SWhile of expr * block
  | SFor of string * expr * expr * block  (* for v = lo; v < hi; v++ *)
  | SForStep of string * expr * expr * expr * block  (* lo, hi, step *)
  | SCall of string * expr list
  | SRet of expr option
  | SPrint of string * expr list
  | SMark of string
  | SRegion of string * int * int * block (* name, line_lo, line_hi *)
  | SMpiSend of expr * expr * expr        (* dest, tag, value *)
  | SMpiBarrier

and block = stmt list

type param = {
  pname : string;
  pty : ty;
  parr : bool;  (** arrays are passed as a base address *)
  pdims : int list;  (** declared dims for array params (for indexing) *)
}

type decl =
  | DScalar of string * ty
  | DArr of string * ty * int list  (* dims, row-major *)

type fundef = {
  fname : string;
  params : param list;
  ret : ty option;
  locals : decl list;
  body : block;
}

type program = {
  globals : decl list;
  funs : fundef list;
  entry : string;
}

(* Convenience constructors, used pervasively by the benchmark apps. *)

let i n = Int (Int64.of_int n)
let f x = Flt x
let v name = Var name
let ( + ) a b = Bin (Add, a, b)
let ( - ) a b = Bin (Sub, a, b)
let ( * ) a b = Bin (Mul, a, b)
let ( / ) a b = Bin (Div, a, b)
let ( % ) a b = Bin (Rem, a, b)
let ( << ) a b = Bin (Shl, a, b)
let ( >> ) a b = Bin (Shr, a, b)
let ( &| ) a b = Bin (AndB, a, b)
let ( ||| ) a b = Bin (OrB, a, b)
let ( ^| ) a b = Bin (XorB, a, b)
let ( = ) a b = Bin (Eq, a, b)
let ( <> ) a b = Bin (Ne, a, b)
let ( < ) a b = Bin (Lt, a, b)
let ( <= ) a b = Bin (Le, a, b)
let ( > ) a b = Bin (Gt, a, b)
let ( >= ) a b = Bin (Ge, a, b)
let sqrt_ e = Un (Sqrt, e)
let abs_ e = Un (Abs, e)
let sin_ e = Un (Sin, e)
let cos_ e = Un (Cos, e)
let neg e = Un (Neg, e)
let to_float e = Un (ToFloat, e)
let to_int e = Un (ToInt, e)
let trunc32 e = Un (Trunc32, e)
let f32 e = Un (F32, e)
let idx a es = Idx (a, es)
let idx1 a e = Idx (a, [ e ])
let idx2 a e1 e2 = Idx (a, [ e1; e2 ])
let idx3 a e1 e2 e3 = Idx (a, [ e1; e2; e3 ])
