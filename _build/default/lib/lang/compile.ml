(** Compiler from the mini-C AST to the FlipTracker IR.

    Lowering decisions that matter for the analyses:
    {ul
    {- Every named variable (scalar or array element) lives in global
       memory, at a statically assigned word address; virtual registers
       hold only expression temporaries.  Region inputs/outputs are
       therefore memory locations, as in the paper.}
    {- There is no recursion (checked), so each function's frame can be
       allocated statically.}
    {- Scalar parameters are copied into frame slots on entry; array
       parameters pass the base address of the caller's array.}
    {- Instructions are stamped with the source line and the enclosing
       code region declared by [SRegion].}} *)

exception Error of string

let err fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type binding =
  | BScalar of int * Ty.t                 (* slot address *)
  | BArr of int * Ty.t * int list         (* static base, elem ty, dims *)
  | BArrParam of int * Ty.t * int list    (* slot holding base, elem ty, dims *)

type fctx = {
  fd : Ast.fundef;
  mutable env : (string * binding) list;  (* locals + params, then globals *)
  buf : Instr.t array ref;                (* growable code buffer *)
  mutable len : int;
  mutable line_buf : int list;            (* reversed *)
  mutable region_buf : int list;          (* reversed *)
  mutable nregs : int;
  mutable rtop : int;
  mutable cur_line : int;
  mutable cur_region : int;
  mutable fixups : (int * int) list;      (* instr index -> label id; patched *)
  mutable labels : (int * int) list;      (* label id -> position *)
  mutable next_label : int;
}

type gctx = {
  mutable alloc : int;                    (* next free memory word *)
  globals : (string * binding) list ref;
  fun_names : string array;               (* name -> index by position *)
  mutable regions : Prog.region_info list; (* reversed *)
  mutable marks : string list;            (* insertion order *)
  mutable symbols : Prog.symbol list;     (* reversed *)
}

let dims_size dims = List.fold_left (fun a d -> a * d) 1 dims

let alloc_words (g : gctx) n =
  let a = g.alloc in
  g.alloc <- g.alloc + n;
  a

let fun_index (g : gctx) name =
  let rec find i =
    if i >= Array.length g.fun_names then err "call of unknown function %s" name
    else if String.equal g.fun_names.(i) name then i
    else find (i + 1)
  in
  find 0

let mark_id (g : gctx) name =
  (* [g.marks] is kept in insertion order *)
  let rec find i = function
    | [] ->
        g.marks <- g.marks @ [ name ];
        i
    | m :: rest -> if String.equal m name then i else find (i + 1) rest
  in
  find 0 g.marks

let add_symbol (g : gctx) ~scope name addr ty dims =
  g.symbols <-
    { Prog.sym_name = name; sym_addr = addr; sym_ty = ty; sym_dims = dims;
      sym_scope = scope }
    :: g.symbols

let binding_of_decl ?(scope = "") (g : gctx) = function
  | Ast.DScalar (n, ty) ->
      let a = alloc_words g 1 in
      add_symbol g ~scope n a ty [];
      (n, BScalar (a, ty))
  | Ast.DArr (n, ty, dims) ->
      if List.exists (fun d -> d <= 0) dims then err "array %s: bad dims" n;
      let a = alloc_words g (dims_size dims) in
      add_symbol g ~scope n a ty dims;
      (n, BArr (a, ty, dims))

let lookup (c : fctx) name =
  match List.assoc_opt name c.env with
  | Some b -> b
  | None -> err "%s: unbound variable %s" c.fd.fname name

(* --- emission ------------------------------------------------------- *)

let emit (c : fctx) (ins : Instr.t) =
  let cap = Array.length !(c.buf) in
  if c.len >= cap then begin
    let nbuf = Array.make (max 64 (cap * 2)) (Instr.Jmp 0) in
    Array.blit !(c.buf) 0 nbuf 0 c.len;
    c.buf := nbuf
  end;
  !(c.buf).(c.len) <- ins;
  c.line_buf <- c.cur_line :: c.line_buf;
  c.region_buf <- c.cur_region :: c.region_buf;
  c.len <- c.len + 1

let fresh (c : fctx) =
  let r = c.rtop in
  c.rtop <- r + 1;
  if c.rtop > c.nregs then c.nregs <- c.rtop;
  r

let new_label (c : fctx) =
  let l = c.next_label in
  c.next_label <- l + 1;
  l

let place (c : fctx) l = c.labels <- (l, c.len) :: c.labels

(* Branches are emitted with the label id in the target field and fixed
   up once all label positions are known. *)
let emit_jmp (c : fctx) l =
  c.fixups <- (c.len, l) :: c.fixups;
  emit c (Instr.Jmp l)

let emit_bnz (c : fctx) r l1 l2 =
  c.fixups <- (c.len, -1) :: c.fixups;
  emit c (Instr.Bnz (r, l1, l2))

let const (c : fctx) bits =
  let r = fresh c in
  emit c (Instr.Const (r, bits));
  r

(* --- expressions ----------------------------------------------------- *)

(* Side tables filled in by [compile] before any function body is
   lowered, so that calls can be type-checked in one pass. *)
let ret_types : (string, Ty.t option) Hashtbl.t = Hashtbl.create 16
let param_types : (string, Ast.param list) Hashtbl.t = Hashtbl.create 16

let bin_op_for (op : Ast.binop) (ty : Ty.t) : Op.bin =
  match (op, ty) with
  | Add, I64 -> Add | Add, F64 -> Fadd
  | Sub, I64 -> Sub | Sub, F64 -> Fsub
  | Mul, I64 -> Mul | Mul, F64 -> Fmul
  | Div, I64 -> Div | Div, F64 -> Fdiv
  | Rem, I64 -> Rem | Rem, F64 -> err "%% on float"
  | Shl, I64 -> Shl | Shr, I64 -> Ashr
  | AndB, I64 -> And | OrB, I64 -> Or | XorB, I64 -> Xor
  | (Shl | Shr | AndB | OrB | XorB), F64 -> err "bit operation on float"
  | Eq, I64 -> Eq | Ne, I64 -> Ne | Lt, I64 -> Lt
  | Le, I64 -> Le | Gt, I64 -> Gt | Ge, I64 -> Ge
  | Eq, F64 -> Feq | Ne, F64 -> Fne | Lt, F64 -> Flt
  | Le, F64 -> Fle | Gt, F64 -> Fgt | Ge, F64 -> Fge
  | Min, I64 -> Imin | Max, I64 -> Imax
  | Min, F64 -> Fmin | Max, F64 -> Fmax

let rec addr_of_index (c : fctx) (g : gctx) name (idxs : Ast.expr list) :
    int * Ty.t =
  (* returns (register holding the word address, element type) *)
  let base_reg, ty, dims =
    match lookup c name with
    | BScalar _ -> err "%s: %s is a scalar, not an array" c.fd.fname name
    | BArr (base, ty, dims) -> (const c (Int64.of_int base), ty, dims)
    | BArrParam (slot, ty, dims) ->
        let a = const c (Int64.of_int slot) in
        let r = fresh c in
        emit c (Instr.Load (r, a));
        (r, ty, dims)
  in
  if List.length idxs <> List.length dims then
    err "%s: array %s expects %d indices, got %d" c.fd.fname name
      (List.length dims) (List.length idxs);
  (* offset = ((i0 * d1 + i1) * d2 + i2) ... *)
  let off =
    List.fold_left2
      (fun acc idx dim ->
        let ir, ity = expr c g idx in
        if not (Ty.equal ity I64) then
          err "%s: non-integer index into %s" c.fd.fname name;
        match acc with
        | None -> Some ir
        | Some acc ->
            let dreg = const c (Int64.of_int dim) in
            let m = fresh c in
            emit c (Instr.Bin (Mul, m, acc, dreg));
            let s = fresh c in
            emit c (Instr.Bin (Add, s, m, ir));
            Some s)
      None idxs dims
  in
  let addr = fresh c in
  (match off with
  | None -> err "%s: empty index list for %s" c.fd.fname name
  | Some off -> emit c (Instr.Bin (Add, addr, base_reg, off)));
  (addr, ty)

and expr (c : fctx) (g : gctx) (e : Ast.expr) : int * Ty.t =
  match e with
  | Int n ->
      let r = fresh c in
      emit c (Instr.Const (r, n));
      (r, I64)
  | Flt x ->
      let r = fresh c in
      emit c (Instr.Const (r, Value.of_float x));
      (r, F64)
  | Var name -> (
      match lookup c name with
      | BScalar (slot, ty) ->
          let a = const c (Int64.of_int slot) in
          let r = fresh c in
          emit c (Instr.Load (r, a));
          (r, ty)
      | BArr _ | BArrParam _ ->
          err "%s: array %s used as a scalar" c.fd.fname name)
  | Idx (name, idxs) ->
      let addr, ty = addr_of_index c g name idxs in
      let r = fresh c in
      emit c (Instr.Load (r, addr));
      (r, ty)
  | Bin (op, a, b) ->
      let ra, ta = expr c g a in
      let rb, tb = expr c g b in
      if not (Ty.equal ta tb) then
        err "%s: type mismatch in binary operation (%s vs %s)" c.fd.fname
          (Ty.to_string ta) (Ty.to_string tb);
      let irop = bin_op_for op ta in
      let r = fresh c in
      emit c (Instr.Bin (irop, r, ra, rb));
      let rty = if Op.bin_is_compare irop then Ty.I64 else ta in
      (r, rty)
  | Un (op, a) ->
      let ra, ta = expr c g a in
      let irop, rty =
        match (op, ta) with
        | Ast.Neg, Ty.I64 -> (Op.Neg, Ty.I64)
        | Ast.Neg, F64 -> (Op.Fneg, F64)
        | Sqrt, F64 -> (Fsqrt, F64)
        | Sqrt, I64 -> err "sqrt of integer"
        | Sin, F64 -> (Fsin, F64)
        | Cos, F64 -> (Fcos, F64)
        | (Sin | Cos), I64 -> err "sin/cos of integer"
        | Abs, F64 -> (Fabs, F64)
        | Abs, I64 -> err "abs of integer (use max)"
        | NotB, I64 -> (Not, I64)
        | NotB, F64 -> err "~ on float"
        | Trunc32, I64 -> (Trunc32, I64)
        | Trunc32, F64 -> err "trunc32 on float (use to_int first)"
        | ToFloat, I64 -> (FloatOfInt, F64)
        | ToFloat, F64 -> err "to_float of float"
        | ToInt, F64 -> (IntOfFloat, I64)
        | ToInt, I64 -> err "to_int of int"
        | F32, F64 -> (F32round, F64)
        | F32, I64 -> err "f32 of integer"
      in
      let r = fresh c in
      emit c (Instr.Un (irop, r, ra));
      (r, rty)
  | CallE (name, args) -> (
      let fi = fun_index g name in
      let rargs = compile_args c g name args in
      match ret_type_of g name with
      | None -> err "%s: function %s returns no value" c.fd.fname name
      | Some rty ->
          let r = fresh c in
          emit c (Instr.Call (fi, rargs, Some r));
          (r, rty))
  | Randlc (state, a) -> (
      match lookup c state with
      | BScalar (slot, F64) ->
          let sa = const c (Int64.of_int slot) in
          let ra, ta = expr c g a in
          if not (Ty.equal ta F64) then err "randlc: multiplier must be f64";
          let r = fresh c in
          emit c (Instr.Intr (Randlc, [| sa; ra |], Some r));
          (r, F64)
      | BScalar (_, I64) -> err "randlc: state %s must be f64" state
      | BArr _ | BArrParam _ -> err "randlc: state %s must be a scalar" state)
  | MpiRank ->
      let r = fresh c in
      emit c (Instr.Intr (MpiRank, [||], Some r));
      (r, I64)
  | MpiSize ->
      let r = fresh c in
      emit c (Instr.Intr (MpiSize, [||], Some r));
      (r, I64)
  | MpiRecv (src, tag) ->
      let rs, ts = expr c g src in
      let rt, tt = expr c g tag in
      if not (Ty.equal ts I64 && Ty.equal tt I64) then
        err "mpi_recv: src and tag must be integers";
      let r = fresh c in
      emit c (Instr.Intr (MpiRecv, [| rs; rt |], Some r));
      (r, F64)
  | MpiAllreduce e ->
      let re, te = expr c g e in
      if not (Ty.equal te F64) then err "mpi_allreduce: value must be f64";
      let r = fresh c in
      emit c (Instr.Intr (MpiAllreduceSum, [| re |], Some r));
      (r, F64)

and ret_type_of (g : gctx) name : Ty.t option =
  ignore g;
  match Hashtbl.find_opt ret_types name with
  | Some t -> t
  | None -> err "unknown function %s" name

and compile_args (c : fctx) (g : gctx) name (args : Ast.expr list) : int array =
  let fparams =
    match Hashtbl.find_opt param_types name with
    | Some ps -> ps
    | None -> err "unknown function %s" name
  in
  if List.length fparams <> List.length args then
    err "%s: call of %s with %d args, expected %d" c.fd.fname name
      (List.length args) (List.length fparams);
  let regs =
    List.map2
      (fun (p : Ast.param) arg ->
        if p.parr then
          match arg with
          | Ast.Var an -> (
              match lookup c an with
              | BArr (base, ty, dims) ->
                  check_arr_param c name p ty dims;
                  const c (Int64.of_int base)
              | BArrParam (slot, ty, dims) ->
                  check_arr_param c name p ty dims;
                  let a = const c (Int64.of_int slot) in
                  let r = fresh c in
                  emit c (Instr.Load (r, a));
                  r
              | BScalar _ ->
                  err "%s: scalar %s passed to array parameter %s" c.fd.fname
                    an p.pname)
          | _ ->
              err "%s: array parameter %s of %s needs an array name"
                c.fd.fname p.pname name
        else
          let r, t = expr c g arg in
          if not (Ty.equal t p.pty) then
            err "%s: argument %s of %s has type %s, expected %s" c.fd.fname
              p.pname name (Ty.to_string t) (Ty.to_string p.pty);
          r)
      fparams args
  in
  Array.of_list regs

and check_arr_param (c : fctx) fname (p : Ast.param) ty dims =
  if not (Ty.equal ty p.pty) then
    err "%s: array element type mismatch for %s of %s" c.fd.fname p.pname fname;
  match (p.pdims, dims) with
  | [], _ -> ()  (* unchecked 1-D style parameter *)
  | pd, d ->
      let tail l = match l with [] -> [] | _ :: t -> t in
      if tail pd <> tail d then
        err "%s: array shape mismatch passing to %s of %s" c.fd.fname p.pname
          fname

(* --- statements ------------------------------------------------------ *)

let advance_line (c : fctx) hi =
  if c.cur_line < hi then c.cur_line <- c.cur_line + 1

let rec stmt (c : fctx) (g : gctx) (s : Ast.stmt) : unit =
  let saved = c.rtop in
  (match s with
  | SAssign (name, e) -> (
      match lookup c name with
      | BScalar (slot, ty) ->
          let r, t = expr c g e in
          if not (Ty.equal t ty) then
            err "%s: assigning %s value to %s:%s" c.fd.fname (Ty.to_string t)
              name (Ty.to_string ty);
          let a = const c (Int64.of_int slot) in
          emit c (Instr.Store (r, a))
      | BArr _ | BArrParam _ ->
          err "%s: assignment to array %s without index" c.fd.fname name)
  | SStore (name, idxs, e) ->
      let r, t = expr c g e in
      let addr, ty = addr_of_index c g name idxs in
      if not (Ty.equal t ty) then
        err "%s: storing %s value into %s[]:%s" c.fd.fname (Ty.to_string t)
          name (Ty.to_string ty);
      emit c (Instr.Store (r, addr))
  | SIf (cond, bt, bf) ->
      let rc, _ = expr c g cond in
      let lt = new_label c and lf = new_label c and lend = new_label c in
      emit_bnz c rc lt lf;
      place c lt;
      block c g bt;
      emit_jmp c lend;
      place c lf;
      block c g bf;
      place c lend
  | SWhile (cond, body) ->
      let ltest = new_label c and lbody = new_label c and lend = new_label c in
      place c ltest;
      let rc, _ = expr c g cond in
      emit_bnz c rc lbody lend;
      place c lbody;
      block c g body;
      emit_jmp c ltest;
      place c lend
  | SFor (var, lo, hi, body) ->
      stmt c g (SForStep (var, lo, hi, Int 1L, body))
  | SForStep (var, lo, hi, step, body) ->
      let slot = for_var_slot c g var in
      let rlo, tlo = expr c g lo in
      if not (Ty.equal tlo I64) then err "for %s: bound must be integer" var;
      let a0 = const c (Int64.of_int slot) in
      emit c (Instr.Store (rlo, a0));
      let ltest = new_label c and lbody = new_label c and lend = new_label c in
      place c ltest;
      let av = const c (Int64.of_int slot) in
      let rv = fresh c in
      emit c (Instr.Load (rv, av));
      let rhi, thi = expr c g hi in
      if not (Ty.equal thi I64) then err "for %s: bound must be integer" var;
      let rc = fresh c in
      emit c (Instr.Bin (Lt, rc, rv, rhi));
      emit_bnz c rc lbody lend;
      place c lbody;
      block c g body;
      let av2 = const c (Int64.of_int slot) in
      let rv2 = fresh c in
      emit c (Instr.Load (rv2, av2));
      let rs, ts = expr c g step in
      if not (Ty.equal ts I64) then err "for %s: step must be integer" var;
      let rnext = fresh c in
      emit c (Instr.Bin (Add, rnext, rv2, rs));
      emit c (Instr.Store (rnext, av2));
      emit_jmp c ltest;
      place c lend
  | SCall (name, args) ->
      let fi = fun_index g name in
      let rargs = compile_args c g name args in
      emit c (Instr.Call (fi, rargs, None))
  | SRet None -> emit c (Instr.Ret None)
  | SRet (Some e) ->
      let r, t = expr c g e in
      (match Hashtbl.find ret_types c.fd.fname with
      | Some rt when Ty.equal rt t -> ()
      | Some rt ->
          err "%s: returning %s, declared %s" c.fd.fname (Ty.to_string t)
            (Ty.to_string rt)
      | None -> err "%s: return with value in void function" c.fd.fname);
      emit c (Instr.Ret (Some r))
  | SPrint (fmt, args) ->
      check_format c fmt args g;
      let regs = List.map (fun a -> fst (expr c g a)) args in
      emit c (Instr.Intr (Print fmt, Array.of_list regs, None))
  | SMark name -> emit c (Instr.Mark (mark_id g name))
  | SRegion (name, lo, hi, body) ->
      let rid = List.length g.regions in
      g.regions <-
        { Prog.rid; rname = name; line_lo = lo; line_hi = hi } :: g.regions;
      let saved_region = c.cur_region and saved_line = c.cur_line in
      c.cur_region <- rid;
      c.cur_line <- lo;
      block c g body;
      c.cur_region <- saved_region;
      c.cur_line <- saved_line
  | SMpiSend (dst, tag, value) ->
      let rd, td = expr c g dst in
      let rt, tt = expr c g tag in
      let rv, tv = expr c g value in
      if not (Ty.equal td I64 && Ty.equal tt I64) then
        err "mpi_send: dest and tag must be integers";
      if not (Ty.equal tv F64) then err "mpi_send: value must be f64";
      emit c (Instr.Intr (MpiSend, [| rd; rt; rv |], None))
  | SMpiBarrier -> emit c (Instr.Intr (MpiBarrier, [||], None)));
  c.rtop <- saved

and block (c : fctx) (g : gctx) (b : Ast.block) : unit =
  List.iter
    (fun s ->
      (match s with Ast.SRegion _ -> () | _ -> advance_line c max_int);
      stmt c g s)
    b

and for_var_slot (c : fctx) (g : gctx) var : int =
  match List.assoc_opt var c.env with
  | Some (BScalar (slot, I64)) -> slot
  | Some (BScalar (_, F64)) -> err "for variable %s is f64" var
  | Some (BArr _ | BArrParam _) -> err "for variable %s is an array" var
  | None ->
      (* implicitly declare integer loop variables *)
      let slot = alloc_words g 1 in
      c.env <- (var, BScalar (slot, I64)) :: c.env;
      slot

and check_format (c : fctx) fmt args g =
  ignore g;
  (* every %-directive consumes one argument; d/x -> i64, e/f/g -> f64 *)
  let dirs = ref [] in
  let n = String.length fmt in
  let rec scan i =
    if i >= n - 1 then ()
    else if Char.equal fmt.[i] '%' then begin
      if Char.equal fmt.[i + 1] '%' then scan (i + 2)
      else begin
        let rec conv j =
          if j >= n then err "%s: bad format %S" c.fd.fname fmt
          else
            match fmt.[j] with
            | 'd' | 'x' ->
                dirs := Ty.I64 :: !dirs;
                scan (j + 1)
            | 'e' | 'f' | 'g' ->
                dirs := Ty.F64 :: !dirs;
                scan (j + 1)
            | '0' .. '9' | '.' | '-' | '+' | ' ' -> conv (j + 1)
            | _ -> err "%s: unsupported format directive in %S" c.fd.fname fmt
        in
        conv (i + 1)
      end
    end
    else scan (i + 1)
  in
  scan 0;
  let dirs = List.rev !dirs in
  if List.length dirs <> List.length args then
    err "%s: format %S expects %d args, got %d" c.fd.fname fmt
      (List.length dirs) (List.length args)

(* --- whole programs --------------------------------------------------- *)

let check_no_recursion (p : Ast.program) =
  let callees fd =
    let acc = ref [] in
    let rec walk_e (e : Ast.expr) =
      match e with
      | CallE (n, args) ->
          acc := n :: !acc;
          List.iter walk_e args
      | Bin (_, a, b) -> walk_e a; walk_e b
      | Un (_, a) | Randlc (_, a) | MpiAllreduce a -> walk_e a
      | MpiRecv (a, b) -> walk_e a; walk_e b
      | Idx (_, es) -> List.iter walk_e es
      | Int _ | Flt _ | Var _ | MpiRank | MpiSize -> ()
    in
    let rec walk_s (s : Ast.stmt) =
      match s with
      | SAssign (_, e) -> walk_e e
      | SStore (_, es, e) -> List.iter walk_e es; walk_e e
      | SIf (e, a, b) -> walk_e e; List.iter walk_s a; List.iter walk_s b
      | SWhile (e, b) -> walk_e e; List.iter walk_s b
      | SFor (_, a, b, body) -> walk_e a; walk_e b; List.iter walk_s body
      | SForStep (_, a, b, st, body) ->
          walk_e a; walk_e b; walk_e st; List.iter walk_s body
      | SCall (n, args) ->
          acc := n :: !acc;
          List.iter walk_e args
      | SRet (Some e) -> walk_e e
      | SRet None | SMark _ | SMpiBarrier -> ()
      | SPrint (_, es) -> List.iter walk_e es
      | SRegion (_, _, _, b) -> List.iter walk_s b
      | SMpiSend (a, b, v) -> walk_e a; walk_e b; walk_e v
    in
    List.iter walk_s fd.Ast.body;
    !acc
  in
  let graph =
    List.map (fun fd -> (fd.Ast.fname, callees fd)) p.Ast.funs
  in
  let rec dfs path name =
    if List.mem name path then
      err "recursion detected through %s" (String.concat " -> " (List.rev (name :: path)));
    match List.assoc_opt name graph with
    | None -> ()
    | Some cs -> List.iter (dfs (name :: path)) cs
  in
  List.iter (fun fd -> dfs [] fd.Ast.fname) p.Ast.funs

let compile ?(heap_slack = 65536) (p : Ast.program) : Prog.t =
  check_no_recursion p;
  Hashtbl.reset ret_types;
  Hashtbl.reset param_types;
  List.iter
    (fun fd ->
      if Hashtbl.mem ret_types fd.Ast.fname then
        err "duplicate function %s" fd.Ast.fname;
      Hashtbl.replace ret_types fd.Ast.fname fd.Ast.ret;
      Hashtbl.replace param_types fd.Ast.fname fd.Ast.params)
    p.funs;
  let g =
    {
      alloc = 0;
      globals = ref [];
      fun_names = Array.of_list (List.map (fun fd -> fd.Ast.fname) p.funs);
      regions = [];
      marks = [];
      symbols = [];
    }
  in
  g.globals := List.map (binding_of_decl g) p.globals;
  let compile_fun (fd : Ast.fundef) : Prog.func =
    let param_bindings =
      List.map
        (fun (pr : Ast.param) ->
          if pr.parr then
            (* [pdims = []] declares an unchecked 1-D array parameter *)
            let dims = match pr.pdims with [] -> [ 0 ] | d -> d in
            (pr.pname, BArrParam (alloc_words g 1, pr.pty, dims))
          else (pr.pname, BScalar (alloc_words g 1, pr.pty)))
        fd.params
    in
    let local_bindings = List.map (binding_of_decl ~scope:fd.fname g) fd.locals in
    let c =
      {
        fd;
        env = local_bindings @ param_bindings @ !(g.globals);
        buf = ref (Array.make 256 (Instr.Jmp 0));
        len = 0;
        line_buf = [];
        region_buf = [];
        nregs = List.length fd.params;
        rtop = List.length fd.params;
        cur_line = 0;
        cur_region = -1;
        fixups = [];
        labels = [];
        next_label = 0;
      }
    in
    (* spill incoming parameter registers into their frame slots *)
    List.iteri
      (fun i (_, b) ->
        match b with
        | BScalar (slot, _) | BArrParam (slot, _, _) ->
            let a = const c (Int64.of_int slot) in
            emit c (Instr.Store (i, a))
        | BArr _ -> assert false)
      param_bindings;
    block c g fd.body;
    emit c (Instr.Ret None);
    (* resolve labels *)
    let pos_of l =
      match List.assoc_opt l c.labels with
      | Some p -> p
      | None -> err "%s: unplaced label %d" fd.fname l
    in
    List.iter
      (fun (i, _) ->
        match !(c.buf).(i) with
        | Instr.Jmp l -> !(c.buf).(i) <- Instr.Jmp (pos_of l)
        | Instr.Bnz (r, l1, l2) ->
            !(c.buf).(i) <- Instr.Bnz (r, pos_of l1, pos_of l2)
        | _ -> assert false)
      c.fixups;
    {
      Prog.fname = fd.fname;
      nregs = max 1 c.nregs;
      code = Array.sub !(c.buf) 0 c.len;
      lines = Array.of_list (List.rev c.line_buf);
      regions = Array.of_list (List.rev c.region_buf);
    }
  in
  let funcs = Array.of_list (List.map compile_fun p.funs) in
  let entry = fun_index g p.entry in
  let prog =
    {
      Prog.funcs;
      entry;
      (* heap slack beyond the static data: moderately corrupted
         indices then behave as in C — silent corruption of unrelated
         memory — while wild ones still trap *)
      mem_size = g.alloc + 16 + heap_slack;
      init_mem = [];
      region_table = Array.of_list (List.rev g.regions);
      mark_names = Array.of_list g.marks;
      symbols = List.rev g.symbols;
    }
  in
  Prog.validate prog;
  prog
