lib/lang/ast.ml: Int64 Ty
