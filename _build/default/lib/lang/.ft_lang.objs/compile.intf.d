lib/lang/compile.mli: Ast Prog
