lib/lang/compile.ml: Array Ast Char Format Hashtbl Instr Int64 List Op Prog String Ty Value
