lib/lang/ast.mli: Ty
