(** Compiler from the mini-C AST to the FlipTracker IR.

    Lowering decisions that matter for the analyses: every named
    variable lives at a statically assigned memory address (registers
    hold only expression temporaries, so region inputs/outputs are
    memory locations); recursion is rejected, so frames are static;
    instructions carry source lines and code-region tags; a symbol
    table maps variables to addresses and types. *)

exception Error of string
(** Name-resolution or type errors in the source program. *)

val compile : ?heap_slack:int -> Ast.program -> Prog.t
(** [heap_slack] (default 64Ki words) pads the address space beyond the
    static data so that moderately corrupted indices behave as in C —
    silent corruption of unrelated memory — while wild ones still trap.

    The returned program passes {!Prog.validate}.
    @raise Error on an ill-formed source program. *)
