(* Paired baseline/hardened campaigns; see the mli. *)

type variant = {
  hv_label : string;
  hv_passes : string list;
  hv_static_instrs : int;
  hv_clean_instructions : int;
  hv_report : Campaign.run_report;
  hv_pass_reports : Pass.report list;
}

type report = {
  he_app : string;
  he_seed : int;
  he_variants : variant list;
}

let rate part (c : Campaign.counts) =
  if c.Campaign.trials = 0 then 0.0
  else float_of_int part /. float_of_int c.Campaign.trials

let sdc_rate (c : Campaign.counts) = rate c.Campaign.failed c
let crash_rate (c : Campaign.counts) = rate c.Campaign.crashed c

let run_variant ~label ~passes ~pass_reports ~verify ~cfg ~exec
    (prog : Prog.t) : variant =
  let t = Trace.create () in
  let iter_mark = Prog.mark_id prog App.iter_mark_name in
  let clean =
    Machine.run prog { Machine.default_config with trace = Some t; iter_mark }
  in
  (match clean.Machine.outcome with
  | Machine.Finished -> ()
  | _ ->
      invalid_arg
        (Printf.sprintf "Harden_eval: %s fault-free run did not finish" label));
  let target = Campaign.whole_program_target prog t in
  let r =
    Campaign.run_report prog ~verify
      ~clean_instructions:clean.Machine.instructions ~cfg ~exec target
  in
  {
    hv_label = label;
    hv_passes = passes;
    hv_static_instrs = Prog.static_size prog;
    hv_clean_instructions = clean.Machine.instructions;
    hv_report = r;
    hv_pass_reports = pass_reports;
  }

let evaluate ?(effort = Effort.default) ?opts ?(passes = Passes.all)
    (app : App.t) : report =
  let baseline = App.program app in
  let verify = App.verify app in
  let cfg = effort.Effort.campaign in
  let exec = Effort.exec effort in
  (* transform everything first: a Verify_failed pass bug surfaces
     before any campaign time is spent *)
  let pipelines =
    List.map
      (fun (p : Pass.t) ->
        let prog, reps = Pass.run_pipeline ?opts [ p ] baseline in
        ("+" ^ p.Pass.name, [ p.Pass.name ], prog, reps))
      passes
    @
    if List.length passes > 1 then
      let prog, reps = Pass.run_pipeline ?opts passes baseline in
      [
        ( "all",
          List.map (fun (p : Pass.t) -> p.Pass.name) passes,
          prog,
          reps );
      ]
    else []
  in
  let variants =
    run_variant ~label:"baseline" ~passes:[] ~pass_reports:[] ~verify ~cfg
      ~exec baseline
    :: List.map
         (fun (label, names, prog, reps) ->
           run_variant ~label ~passes:names ~pass_reports:reps ~verify ~cfg
             ~exec prog)
         pipelines
  in
  { he_app = app.App.name; he_seed = cfg.Campaign.seed; he_variants = variants }

let overhead hardened base =
  if base = 0 then 0.0
  else (float_of_int hardened /. float_of_int base) -. 1.0

let pp_report ppf (r : report) =
  let base =
    match r.he_variants with
    | b :: _ -> b
    | [] -> invalid_arg "Harden_eval.pp_report: no variants"
  in
  let bc = base.hv_report.Campaign.counts in
  Fmt.pf ppf
    "@[<v>%s: paired whole-program campaigns (seed %d, %d trials planned \
     per variant)@,"
    r.he_app r.he_seed base.hv_report.Campaign.planned;
  Fmt.pf ppf
    "%-22s %6s %6s %6s %6s  %8s %8s  %9s %9s@,"
    "variant" "trials" "SDC" "crash" "benign" "SDCrate" "dSDC" "instrs"
    "overhead";
  List.iter
    (fun v ->
      let c = v.hv_report.Campaign.counts in
      Fmt.pf ppf "%-22s %6d %6d %6d %6d  %8.4f %+8.4f  %9d %8.1f%%@,"
        v.hv_label c.Campaign.trials c.Campaign.failed c.Campaign.crashed
        c.Campaign.success (sdc_rate c)
        (sdc_rate c -. sdc_rate bc)
        v.hv_clean_instructions
        (100.0 *. overhead v.hv_clean_instructions base.hv_clean_instructions))
    r.he_variants;
  Fmt.pf ppf "@,per-pass attribution (sites changed, guards inserted):@,";
  List.iter
    (fun v ->
      List.iter
        (fun (pr : Pass.report) ->
          Fmt.pf ppf "  %-22s %-18s %4d sites  +%5d instrs  %4d guard \
                      site(s)@,"
            v.hv_label pr.Pass.pass_name pr.Pass.sites_changed
            pr.Pass.instrs_added
            (List.length pr.Pass.protective))
        v.hv_pass_reports)
    (List.filter (fun v -> v.hv_pass_reports <> []) r.he_variants);
  Fmt.pf ppf "@]"

let to_csv (r : report) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b
    "app,variant,passes,trials,success,sdc,crashed,infra,sdc_rate,\
     crash_rate,clean_instructions,static_instrs\n";
  List.iter
    (fun v ->
      let c = v.hv_report.Campaign.counts in
      Buffer.add_string b
        (Printf.sprintf "%s,%s,%s,%d,%d,%d,%d,%d,%.6f,%.6f,%d,%d\n" r.he_app
           v.hv_label
           (String.concat "+" v.hv_passes)
           c.Campaign.trials c.Campaign.success c.Campaign.failed
           c.Campaign.crashed c.Campaign.infra (sdc_rate c) (crash_rate c)
           v.hv_clean_instructions v.hv_static_instrs))
    r.he_variants;
  Buffer.contents b
