(** Drivers for every figure and table of the paper's evaluation.  Each
    driver returns plain data; the bench harness formats it.  See
    DESIGN.md for the per-experiment index and EXPERIMENTS.md for
    measured-vs-paper results. *)

type app_ctx = {
  app : App.t;
  prog : Prog.t;
  clean : Machine.result;
  trace : Trace.t;
  access : Access.t;
  instances : Region.instance list;
}

val context : App.t -> app_ctx
(** Fault-free traced context, cached per app. *)

(** {2 Figure 5: per-code-region success rates} *)

type region_rates_row = {
  rr_app : string;
  rr_region : string;
  rr_internal : Campaign.counts;
  rr_input : Campaign.counts;
}

val fig5 : ?effort:Effort.t -> App.t -> region_rates_row list

(** {2 Figure 6: per-iteration success rates} *)

type iteration_rates_row = {
  ir_app : string;
  ir_iteration : int;
  ir_internal : Campaign.counts;
  ir_input : Campaign.counts;
}

val fig6 : ?effort:Effort.t -> App.t -> iteration_rates_row list

(** {2 Figure 7: the ACL time series} *)

type acl_series = {
  as_app : string;
  as_fault : Machine.fault;
  as_outcome : Machine.outcome;
  as_result : Acl.result;
}

val fig7 :
  ?seed:int -> ?target_iter:int -> ?min_peak:int -> App.t -> acl_series
(** Inject into iteration [target_iter] (negative = from the end; the
    default -3 is the paper's "last third iteration") and compute the
    ACL series, retrying seeds until an injection propagates. *)

(** {2 Table I: patterns per region} *)

type table1_row = {
  t1_app : string;
  t1_region : string;
  t1_lines : int * int;
  t1_instr_per_iter : int;
  t1_counts : (Pattern.t * int) list;
}

val table1 : ?effort:Effort.t -> ?seed:int -> App.t -> table1_row list
(** Pattern observations merged over internal and input injections into
    each region's first instance. *)

(** {2 Table II: repeated additions vs error magnitude} *)

type table2_row = {
  t2_iteration : int;
  t2_correct : float;
  t2_faulty : float;
  t2_magnitude : float;
}

val table2 : ?bit:int -> ?element:int list -> unit -> table2_row list
(** Flip [bit] of MG's u[element] after the first V-cycle and sample
    the error magnitude per iteration. *)

(** {2 Table III: Use Case 1, hardened CG} *)

type table3_row = {
  t3_variant : string;
  t3_counts : Campaign.counts;  (** whole-program injections *)
  t3_sprnvc : Campaign.counts;
      (** soft errors in v/iv memory during sprnvc — the corruption the
          Figure 12(b) transformation addresses *)
  t3_time_min : float;
  t3_time_max : float;
  t3_time_avg : float;
}

val table3 : ?effort:Effort.t -> unit -> table3_row list

(** {2 Table IV: Use Case 2, resilience prediction} *)

type table4_row = {
  t4_app : string;
  t4_rates : Rates.t;
  t4_measured : float;
  t4_predicted : float;
  t4_error : float;
  t4_weighted_predicted : float;
      (** from masking-probability-weighted rates (paper future work) *)
  t4_weighted_error : float;
}

type table4 = {
  rows : table4_row list;
  r_square : float;  (** of the near-OLS full fit (paper experiment 1) *)
  std_coefficients : float array;
  weighted_loo_error : float;
  unweighted_loo_error : float;
}

val table4 : ?effort:Effort.t -> ?apps:App.t list -> unit -> table4

(** {2 Figure 4: parallel tracing overhead} *)

type fig4_row = {
  f4_app : string;
  f4_ranks : int;
  f4_untraced_s : float;
  f4_traced_s : float;
  f4_overhead : float;  (** traced / untraced - 1 *)
}

val fig4 : ?effort:Effort.t -> ?apps:App.t list -> unit -> fig4_row list
