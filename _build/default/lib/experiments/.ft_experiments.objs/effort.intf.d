lib/experiments/effort.mli: Campaign
