lib/experiments/ablation.ml: Acl Align App Array Campaign Compile Experiments Is Lulesh Machine Trace
