lib/experiments/harden_eval.mli: App Campaign Effort Format Pass
