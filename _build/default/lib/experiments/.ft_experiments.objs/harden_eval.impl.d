lib/experiments/harden_eval.ml: App Buffer Campaign Effort Fmt List Machine Pass Passes Printf Prog String Trace
