lib/experiments/experiments.mli: Access Acl App Campaign Effort Machine Pattern Prog Rates Region Trace
