lib/experiments/effort.ml: Campaign
