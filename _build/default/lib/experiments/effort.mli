(** Effort presets for the experiment drivers: how many injections per
    target, how many ACL-analyzed injections per region, how many
    simulated ranks, how many timing repetitions. *)

type t = {
  campaign : Campaign.config;
  acl_injections : int;  (** faulty traced runs per region (Table I) *)
  fig4_ranks : int;
  timing_runs : int;     (** repetitions for Table III execution times *)
  jobs : int;            (** worker domains per campaign (counts are
                             identical for any value) *)
}

val quick : t
(** Seconds-per-experiment smoke level (40 trials per target). *)

val default : t
(** Minutes for the full suite (120 trials per target). *)

val paper : t
(** The full Leveugle statistical design (95%/3%; 99%/1% where the
    paper uses it), uncapped — hours. *)

val of_string : string -> t
(** "quick" | "default" | "paper".
    @raise Invalid_argument otherwise. *)

val exec : t -> Campaign.exec
(** The campaign-execution knobs this effort implies. *)
