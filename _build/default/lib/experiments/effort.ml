(** Effort presets for the experiment drivers.

    The paper's campaigns use the Leveugle statistical design (95%
    confidence / 3% margin for Section V; 99% / 1% for Section VII),
    which implies roughly 1000-16000 injections per target — days of
    compute on one core.  The default preset keeps the statistical
    design but caps trials per target so the whole suite regenerates in
    minutes; [paper] removes the caps. *)

type t = {
  campaign : Campaign.config;
  acl_injections : int;
      (** faulty traced runs per region for pattern mining (Table I) *)
  fig4_ranks : int;  (** simulated MPI ranks for the tracing-overhead run *)
  timing_runs : int; (** repetitions for Table III execution times *)
  jobs : int;
      (** worker domains per campaign; any value yields identical
          counts (the executor's determinism guarantee) *)
}

let quick =
  {
    campaign =
      { Campaign.default_config with max_trials = Some 40; budget_factor = 10 };
    acl_injections = 2;
    fig4_ranks = 8;
    timing_runs = 5;
    jobs = 1;
  }

let default =
  {
    campaign =
      { Campaign.default_config with max_trials = Some 120; budget_factor = 10 };
    acl_injections = 8;
    fig4_ranks = 16;
    timing_runs = 10;
    jobs = 1;
  }

let paper =
  {
    campaign = { Campaign.default_config with max_trials = None };
    acl_injections = 20;
    fig4_ranks = 64;
    timing_runs = 20;
    jobs = 1;
  }

(** The campaign-execution knobs an effort implies (currently just the
    worker-domain count; journaling and early stopping are per-call
    decisions). *)
let exec (e : t) : Campaign.exec = { Campaign.default_exec with jobs = e.jobs }

let of_string = function
  | "quick" -> quick
  | "default" -> default
  | "paper" -> paper
  | s -> invalid_arg ("Effort.of_string: " ^ s)
