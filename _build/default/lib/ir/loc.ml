(** Data locations.

    A location is anything a fault can corrupt and an analysis can track:
    a virtual register inside one function activation, or a word of the
    flat global memory.  Registers are qualified by an activation id so
    that re-entrant calls of the same function do not alias in the
    analyses (the tracer assigns a fresh activation id per call). *)

type t =
  | Reg of int * int  (** [Reg (activation, register_index)] *)
  | Mem of int        (** [Mem address] — word address in global memory *)

let equal a b =
  match (a, b) with
  | Reg (a1, r1), Reg (a2, r2) -> a1 = a2 && r1 = r2
  | Mem m1, Mem m2 -> m1 = m2
  | Reg _, Mem _ | Mem _, Reg _ -> false

let compare a b =
  match (a, b) with
  | Reg (a1, r1), Reg (a2, r2) ->
      let c = Int.compare a1 a2 in
      if c <> 0 then c else Int.compare r1 r2
  | Mem m1, Mem m2 -> Int.compare m1 m2
  | Reg _, Mem _ -> -1
  | Mem _, Reg _ -> 1

let hash = function
  | Reg (a, r) -> (a * 8191) + r
  | Mem m -> m lxor 0x55555555

let is_mem = function Mem _ -> true | Reg _ -> false

let pp ppf = function
  | Reg (a, r) -> Fmt.pf ppf "r%d@%d" r a
  | Mem m -> Fmt.pf ppf "[%d]" m

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
