(** Value types of the FlipTracker IR.

    Two storage types only: every location holds a 64-bit pattern that
    an instruction interprets as an integer or an IEEE-754 double.
    Narrower widths (C's 32-bit [int], binary32 floats) are modelled by
    explicit conversion instructions, keeping bit flips well defined on
    any location. *)

type t = I64  (** 64-bit two's-complement integer *)
       | F64  (** IEEE-754 binary64 *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
