(** Bit-accurate runtime values: raw 64-bit patterns, interpreted by
    the consuming instruction.  This representation is what makes
    single-bit flips well defined on any register or memory word. *)

type t = int64

val of_int : int -> t
val to_int : t -> int

val of_float : float -> t
(** The IEEE-754 bit pattern of the float, not a rounding of it. *)

val to_float : t -> float
val zero : t
val one : t

val truth : bool -> t
(** [0]/[1] encoding of booleans, as produced by the compare opcodes. *)

val is_true : t -> bool
(** Any non-zero pattern is true (the branch instruction's test). *)

val flip_bit : t -> int -> t
(** [flip_bit v b] inverts bit [b] (0 = least significant).  Flipping
    the same bit twice restores the value.
    @raise Invalid_argument if [b] is outside [0, 63]. *)

val hamming_distance : t -> t -> int
(** Number of bit positions at which two patterns differ. *)

val error_magnitude : correct:t -> faulty:t -> float
(** Relative error of a faulty float value (Equation 2 of the paper):
    [|correct - faulty| / |correct|], interpreting both patterns as
    doubles.  [infinity] when the correct value is zero and the faulty
    one is not; [nan] when either pattern decodes to a NaN. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp_bits : Format.formatter -> t -> unit
val pp_typed : Ty.t -> Format.formatter -> t -> unit
