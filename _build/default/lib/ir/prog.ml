(** IR programs.

    A program is a set of functions plus a static description of the
    global memory image.  Each instruction carries parallel metadata:
    the source line it was compiled from and the static code region it
    belongs to (or -1).  Code regions are the unit of the paper's
    analysis: a first-level inner loop, or a block between two such
    loops, of the program's main loop. *)

type func = {
  fname : string;
  nregs : int;  (** number of virtual registers used by the body *)
  code : Instr.t array;
  lines : int array;    (** source line per instruction *)
  regions : int array;  (** static region id per instruction, or -1 *)
}

type region_info = {
  rid : int;            (** dense region id, also index into [regions] *)
  rname : string;       (** e.g. "cg_b" *)
  line_lo : int;
  line_hi : int;
}

type symbol = {
  sym_name : string;
  sym_addr : int;        (** base word address *)
  sym_ty : Ty.t;
  sym_dims : int list;   (** [] for scalars *)
  sym_scope : string;    (** "" for globals, else the owning function *)
}

type t = {
  funcs : func array;
  entry : int;              (** index of the entry function *)
  mem_size : int;           (** words of global memory *)
  init_mem : (int * int64) list;  (** initial non-zero memory words *)
  region_table : region_info array;
  mark_names : string array;  (** names of trace markers, index = mark id *)
  symbols : symbol list;    (** memory map of named variables *)
}

let func_index (p : t) (name : string) : int =
  let rec find i =
    if i >= Array.length p.funcs then
      invalid_arg (Printf.sprintf "Prog.func_index: no function %S" name)
    else if String.equal p.funcs.(i).fname name then i
    else find (i + 1)
  in
  find 0

let region_by_name (p : t) (name : string) : region_info =
  let rec find i =
    if i >= Array.length p.region_table then
      invalid_arg (Printf.sprintf "Prog.region_by_name: no region %S" name)
    else if String.equal p.region_table.(i).rname name then p.region_table.(i)
    else find (i + 1)
  in
  find 0

let mark_id (p : t) (name : string) : int =
  let rec find i =
    if i >= Array.length p.mark_names then
      invalid_arg (Printf.sprintf "Prog.mark_id: no mark %S" name)
    else if String.equal p.mark_names.(i) name then i
    else find (i + 1)
  in
  find 0

(** Find a named variable's memory mapping.  [scope] narrows the search
    to one function's frame; by default globals are searched first,
    then every frame. *)
let find_symbol ?(scope = "") (p : t) (name : string) : symbol option =
  let matches (s : symbol) =
    String.equal s.sym_name name
    && (String.equal scope "" || String.equal s.sym_scope scope)
  in
  match List.find_opt (fun s -> matches s && String.equal s.sym_scope "") p.symbols with
  | Some s -> Some s
  | None -> List.find_opt matches p.symbols

(** Declared type of the variable occupying a memory word, if any. *)
let type_of_addr (p : t) (addr : int) : Ty.t option =
  let covers (s : symbol) =
    let size = List.fold_left ( * ) 1 s.sym_dims in
    addr >= s.sym_addr && addr < s.sym_addr + size
  in
  Option.map (fun s -> s.sym_ty) (List.find_opt covers p.symbols)

(** Word address of an array element, via the symbol table. *)
let addr_of_element ?scope (p : t) (name : string) (indices : int list) : int =
  match find_symbol ?scope p name with
  | None -> invalid_arg (Printf.sprintf "addr_of_element: unknown symbol %s" name)
  | Some s ->
      if List.length indices <> List.length s.sym_dims then
        invalid_arg (Printf.sprintf "addr_of_element: %s expects %d indices"
                       name (List.length s.sym_dims));
      let off =
        List.fold_left2 (fun acc ix dim -> (acc * dim) + ix) 0
          (0 :: indices)
          (1 :: s.sym_dims)
      in
      s.sym_addr + off

(** Total static instruction count over all functions. *)
let static_size (p : t) : int =
  Array.fold_left (fun acc f -> acc + Array.length f.code) 0 p.funcs

let pp_func ppf (f : func) =
  Fmt.pf ppf "@[<v2>func %s (%d regs):" f.fname f.nregs;
  Array.iteri
    (fun i ins ->
      Fmt.pf ppf "@,%4d: %a  ; line %d region %d" i Instr.pp ins f.lines.(i)
        f.regions.(i))
    f.code;
  Fmt.pf ppf "@]"

let pp ppf (p : t) =
  Fmt.pf ppf "@[<v>program: %d funcs, entry %d, mem %d words@,"
    (Array.length p.funcs) p.entry p.mem_size;
  Array.iter (fun f -> Fmt.pf ppf "%a@," pp_func f) p.funcs;
  Fmt.pf ppf "@]"

(** Structural sanity checks: branch targets in range, register indices
    within [nregs], function indices valid, region ids within the region
    table.  Raises [Invalid_argument] on the first violation. *)
let validate (p : t) : unit =
  let nfuncs = Array.length p.funcs in
  let nregions = Array.length p.region_table in
  if p.entry < 0 || p.entry >= nfuncs then invalid_arg "validate: bad entry";
  Array.iter
    (fun f ->
      let n = Array.length f.code in
      if Array.length f.lines <> n || Array.length f.regions <> n then
        invalid_arg (f.fname ^ ": metadata length mismatch");
      let chk_reg r =
        if r < 0 || r >= f.nregs then
          invalid_arg (Printf.sprintf "%s: register r%d out of range" f.fname r)
      in
      let chk_lbl l =
        if l < 0 || l >= n then
          invalid_arg (Printf.sprintf "%s: branch target %d out of range" f.fname l)
      in
      Array.iteri
        (fun i ins ->
          let r = f.regions.(i) in
          if r < -1 || r >= nregions then
            invalid_arg (Printf.sprintf "%s: bad region id %d" f.fname r);
          match (ins : Instr.t) with
          | Const (d, _) -> chk_reg d
          | Bin (_, d, a, b) -> chk_reg d; chk_reg a; chk_reg b
          | Un (_, d, a) -> chk_reg d; chk_reg a
          | Load (d, a) -> chk_reg d; chk_reg a
          | Store (s, a) -> chk_reg s; chk_reg a
          | Jmp l -> chk_lbl l
          | Bnz (c, l1, l2) -> chk_reg c; chk_lbl l1; chk_lbl l2
          | Call (fi, args, ret) ->
              if fi < 0 || fi >= nfuncs then
                invalid_arg (f.fname ^ ": bad callee index");
              Array.iter chk_reg args;
              Option.iter chk_reg ret
          | Ret r -> Option.iter chk_reg r
          | Intr (_, args, ret) ->
              Array.iter chk_reg args;
              Option.iter chk_reg ret
          | Mark m ->
              if m < 0 || m >= Array.length p.mark_names then
                invalid_arg (f.fname ^ ": bad mark id"))
        f.code)
    p.funcs
