lib/ir/op.ml: Float Fmt Int32 Int64 Value
