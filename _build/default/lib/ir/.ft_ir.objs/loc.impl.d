lib/ir/loc.ml: Fmt Hashtbl Int Map Set
