lib/ir/prog.mli: Format Instr Ty
