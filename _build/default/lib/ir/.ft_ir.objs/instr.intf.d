lib/ir/instr.mli: Format Op
