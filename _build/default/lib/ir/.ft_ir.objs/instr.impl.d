lib/ir/instr.ml: Fmt Op Printf
