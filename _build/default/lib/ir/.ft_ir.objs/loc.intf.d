lib/ir/loc.mli: Format Hashtbl Map Set
