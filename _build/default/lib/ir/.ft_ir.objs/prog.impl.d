lib/ir/prog.ml: Array Fmt Instr List Option Printf String Ty
