(** Value types of the FlipTracker IR.

    The IR is deliberately small: 64-bit integers and 64-bit IEEE-754
    floats.  Narrower widths (the i32 truncation pattern, float rounded
    through binary32) are modelled by explicit conversion instructions
    rather than by distinct storage types, which keeps every location a
    single 64-bit pattern — the granularity at which bits are flipped. *)

type t =
  | I64  (** 64-bit two's-complement integer *)
  | F64  (** IEEE-754 binary64 *)

let equal a b =
  match (a, b) with I64, I64 | F64, F64 -> true | I64, F64 | F64, I64 -> false

let pp ppf = function
  | I64 -> Fmt.string ppf "i64"
  | F64 -> Fmt.string ppf "f64"

let to_string = function I64 -> "i64" | F64 -> "f64"
