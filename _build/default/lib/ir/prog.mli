(** IR programs: functions, the global memory image, and the metadata
    the analyses consume — per-instruction source lines and code-region
    tags, the region table, trace-marker names, and a symbol table
    mapping variables to memory. *)

type func = {
  fname : string;
  nregs : int;
  code : Instr.t array;
  lines : int array;    (** source line per instruction *)
  regions : int array;  (** static region id per instruction, or -1 *)
}

type region_info = {
  rid : int;      (** dense region id *)
  rname : string; (** e.g. "cg_b" *)
  line_lo : int;
  line_hi : int;
}

type symbol = {
  sym_name : string;
  sym_addr : int;       (** base word address *)
  sym_ty : Ty.t;
  sym_dims : int list;  (** [] for scalars *)
  sym_scope : string;   (** "" for globals, else the owning function *)
}

type t = {
  funcs : func array;
  entry : int;
  mem_size : int;
  init_mem : (int * int64) list;
  region_table : region_info array;
  mark_names : string array;
  symbols : symbol list;
}

val func_index : t -> string -> int
(** @raise Invalid_argument on an unknown function name. *)

val region_by_name : t -> string -> region_info
(** @raise Invalid_argument on an unknown region name. *)

val mark_id : t -> string -> int
(** @raise Invalid_argument on an unknown marker name. *)

val find_symbol : ?scope:string -> t -> string -> symbol option
(** Globals are preferred; [scope] narrows to one function's frame. *)

val type_of_addr : t -> int -> Ty.t option
(** Declared type of the variable occupying a memory word, if any. *)

val addr_of_element : ?scope:string -> t -> string -> int list -> int
(** Word address of an array element (row-major), via the symbol table.
    @raise Invalid_argument on an unknown symbol or wrong arity. *)

val static_size : t -> int
(** Total static instruction count over all functions. *)

val pp_func : Format.formatter -> func -> unit
val pp : Format.formatter -> t -> unit

val validate : t -> unit
(** Structural sanity: register indices, branch targets, callee
    indices, region ids, metadata lengths.
    @raise Invalid_argument on the first violation. *)
