(** Data locations: anything a fault can corrupt and an analysis can
    track — a virtual register inside one function activation, or a
    word of the flat global memory.  Registers carry an activation id
    so re-entrant calls do not alias in the analyses. *)

type t =
  | Reg of int * int  (** [Reg (activation, register_index)] *)
  | Mem of int        (** word address in global memory *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val is_mem : t -> bool
val pp : Format.formatter -> t -> unit

module Ord : Set.OrderedType with type t = t
module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
