(** Bit-accurate runtime values.

    Every value in the machine — register contents, memory words — is a
    64-bit pattern.  Whether the pattern is an integer or a float is
    decided by the instruction that consumes it, exactly as in a real
    register file.  This representation is what makes single-bit flips
    well defined on any location. *)

type t = int64
(** A raw 64-bit pattern. *)

let of_int (i : int) : t = Int64.of_int i
let to_int (v : t) : int = Int64.to_int v
let of_float (f : float) : t = Int64.bits_of_float f
let to_float (v : t) : float = Int64.float_of_bits v
let zero : t = 0L
let one : t = 1L
let truth (b : bool) : t = if b then 1L else 0L
let is_true (v : t) : bool = not (Int64.equal v 0L)

(** [flip_bit v b] returns [v] with bit [b] (0 = least significant)
    inverted.  Flipping the same bit twice restores the value. *)
let flip_bit (v : t) (b : int) : t =
  if b < 0 || b > 63 then invalid_arg "Value.flip_bit: bit out of range";
  Int64.logxor v (Int64.shift_left 1L b)

(** Number of bit positions at which two patterns differ. *)
let hamming_distance (a : t) (b : t) : int =
  let rec count x acc =
    if Int64.equal x 0L then acc
    else count (Int64.shift_right_logical x 1) (acc + Int64.to_int (Int64.logand x 1L))
  in
  count (Int64.logxor a b) 0

(** Relative error of a faulty float value with respect to its correct
    value (Equation 2 of the paper).  Returns [infinity] when the
    correct value is zero and the faulty one is not, and [nan] when
    either pattern decodes to a NaN. *)
let error_magnitude ~correct ~faulty : float =
  let c = to_float correct and f = to_float faulty in
  if Float.is_nan c || Float.is_nan f then Float.nan
  else if Float.equal c f then 0.0
  else if Float.equal c 0.0 then Float.infinity
  else Float.abs (c -. f) /. Float.abs c

let equal : t -> t -> bool = Int64.equal
let compare : t -> t -> int = Int64.compare

let pp_bits ppf (v : t) = Fmt.pf ppf "0x%Lx" v

let pp_typed ty ppf (v : t) =
  match (ty : Ty.t) with
  | Ty.I64 -> Fmt.pf ppf "%Ld" v
  | Ty.F64 -> Fmt.pf ppf "%.17g" (to_float v)
