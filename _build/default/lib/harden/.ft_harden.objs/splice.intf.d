lib/harden/splice.mli: Instr Prog
