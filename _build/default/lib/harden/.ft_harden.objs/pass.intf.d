lib/harden/pass.mli: Format Prog Verify
