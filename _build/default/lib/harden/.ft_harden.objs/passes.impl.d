lib/harden/passes.ml: Array Cfg Hashtbl Instr List Liveness Op Option Pass Printf Prog Reaching Splice Static_detect String Ty Value Vuln
