lib/harden/harden.ml: App List Option Pass Passes Printf Prog String Vuln
