lib/harden/harden.mli: App Pass Prog Vuln
