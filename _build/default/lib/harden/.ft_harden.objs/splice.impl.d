lib/harden/splice.ml: Array Cfg Instr List Printf Prog
