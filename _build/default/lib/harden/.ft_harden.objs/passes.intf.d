lib/harden/passes.mli: Pass
