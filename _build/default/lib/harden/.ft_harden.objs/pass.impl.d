lib/harden/pass.ml: Fmt List Printexc Printf Prog String Verify
