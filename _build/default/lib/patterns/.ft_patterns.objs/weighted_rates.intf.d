lib/patterns/weighted_rates.mli: Access Format Trace Value
