lib/patterns/rates.mli: Access Format Pattern Trace
