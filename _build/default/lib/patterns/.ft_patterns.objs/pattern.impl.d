lib/patterns/pattern.ml: Acl Fmt
