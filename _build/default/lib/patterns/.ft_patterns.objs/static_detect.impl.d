lib/patterns/static_detect.ml: Array Char Instr Int64 List Op Pattern Prog Reaching String Vuln
