lib/patterns/dynamic_detect.mli: Acl Format Pattern
