lib/patterns/weighted_rates.ml: Access Array Char Float Fmt Int64 Loc Op String Trace Value
