lib/patterns/static_detect.mli: Pattern Prog Vuln
