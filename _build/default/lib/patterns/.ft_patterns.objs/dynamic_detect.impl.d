lib/patterns/dynamic_detect.ml: Acl Fmt Hashtbl Int List Pattern
