lib/patterns/pattern.mli: Acl Format
