lib/patterns/rates.ml: Access Array Float Fmt Loc Op Pattern Static_detect String Trace
