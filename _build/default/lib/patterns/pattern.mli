(** The six resilience computation patterns (Section VI of the paper):
    series of computations responsible for decreasing the number of
    alive corrupted locations or the error magnitude of corrupted
    values, ultimately helping the program tolerate a fault. *)

type t =
  | Dead_corrupted_locations
  | Repeated_additions
  | Conditional_statement
  | Shifting
  | Truncation
  | Data_overwriting

val all : t list

val to_string : t -> string
(** Table-I-style short names: DCL, RA, CS, Shifting, Trunc, DO. *)

val describe : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

val of_mask_kind : Acl.mask_kind -> t option
(** Pattern behind an ACL masking event; [None] for unclassified
    value-level masking. *)

val of_death_cause : Acl.death_cause -> t
(** Overwritten -> Data_overwriting; Dead -> Dead_corrupted_locations. *)
