(** Dynamic pattern attribution from ACL analyses (Table I).

    Aggregates the death and masking events of one or more ACL analyses
    into a per-region pattern inventory: which patterns were observed
    acting in which code region, with instance counts and source
    lines. *)

type region_patterns = {
  rid : int;
  counts : (Pattern.t * int) list;  (** instances observed per pattern *)
  lines : (Pattern.t * int list) list;  (** source lines per pattern *)
}

(** Patterns observed in [acl], grouped by region.  Region -1 (code
    outside any region) is included under rid -1. *)
let of_acl (acl : Acl.result) : region_patterns list =
  let tbl : (int * Pattern.t, int * int list) Hashtbl.t = Hashtbl.create 32 in
  let bump region p line =
    let key = (region, p) in
    let n, lines =
      match Hashtbl.find_opt tbl key with Some x -> x | None -> (0, [])
    in
    Hashtbl.replace tbl key (n + 1, line :: lines)
  in
  List.iter
    (fun (d : Acl.death) ->
      bump d.d_region (Pattern.of_death_cause d.d_cause) d.d_line)
    acl.deaths;
  List.iter
    (fun (m : Acl.masking) ->
      match Pattern.of_mask_kind m.m_kind with
      | Some p -> bump m.m_region p m.m_line
      | None -> ())
    acl.maskings;
  let regions =
    Hashtbl.fold (fun (r, _) _ acc -> if List.mem r acc then acc else r :: acc)
      tbl []
    |> List.sort Int.compare
  in
  List.map
    (fun rid ->
      let counts, lines =
        List.fold_left
          (fun (cs, ls) p ->
            match Hashtbl.find_opt tbl (rid, p) with
            | Some (n, lns) ->
                ((p, n) :: cs, (p, List.sort_uniq Int.compare lns) :: ls)
            | None -> (cs, ls))
          ([], []) Pattern.all
      in
      { rid; counts = List.rev counts; lines = List.rev lines })
    regions

(** Merge inventories from several injection experiments (union of
    patterns, sum of counts). *)
let merge (xs : region_patterns list list) : region_patterns list =
  let tbl : (int * Pattern.t, int * int list) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (List.iter (fun rp ->
         List.iter
           (fun (p, n) ->
             let lines = try List.assoc p rp.lines with Not_found -> [] in
             let n0, l0 =
               match Hashtbl.find_opt tbl (rp.rid, p) with
               | Some x -> x
               | None -> (0, [])
             in
             Hashtbl.replace tbl (rp.rid, p) (n0 + n, lines @ l0))
           rp.counts))
    xs;
  let regions =
    Hashtbl.fold (fun (r, _) _ acc -> if List.mem r acc then acc else r :: acc)
      tbl []
    |> List.sort Int.compare
  in
  List.map
    (fun rid ->
      let counts, lines =
        List.fold_left
          (fun (cs, ls) p ->
            match Hashtbl.find_opt tbl (rid, p) with
            | Some (n, lns) ->
                ((p, n) :: cs, (p, List.sort_uniq Int.compare lns) :: ls)
            | None -> (cs, ls))
          ([], []) Pattern.all
      in
      { rid; counts = List.rev counts; lines = List.rev lines })
    regions

(** Did this region exhibit pattern [p] (with at least [threshold]
    instances)? *)
let found ?(threshold = 1) (rp : region_patterns) (p : Pattern.t) : bool =
  match List.assoc_opt p rp.counts with
  | Some n -> n >= threshold
  | None -> false

let pp ppf (rp : region_patterns) =
  Fmt.pf ppf "region %d: %a" rp.rid
    Fmt.(list ~sep:(any ", ") (pair ~sep:(any "=") Pattern.pp int))
    rp.counts
