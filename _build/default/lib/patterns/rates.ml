(** Pattern rates — the features of the resilience-prediction model
    (Table IV of the paper).

    Each rate is the number of dynamic pattern-instance sites observed
    in a fault-free traced run, normalized by the total number of
    dynamic instructions, so that programs of different sizes are
    comparable. *)

type t = {
  condition : float;
  shift : float;
  truncation : float;
  dead_location : float;
  repeated_addition : float;
  overwrite : float;
}

let to_vector (r : t) : float array =
  [|
    r.condition;
    r.shift;
    r.truncation;
    r.dead_location;
    r.repeated_addition;
    r.overwrite;
  |]

let feature_names =
  [|
    "condition";
    "shift";
    "truncation";
    "dead-location";
    "repeated-addition";
    "overwrite";
  |]

let get (r : t) (p : Pattern.t) : float =
  match p with
  | Pattern.Conditional_statement -> r.condition
  | Pattern.Shifting -> r.shift
  | Pattern.Truncation -> r.truncation
  | Pattern.Dead_corrupted_locations -> r.dead_location
  | Pattern.Repeated_additions -> r.repeated_addition
  | Pattern.Data_overwriting -> r.overwrite

(** Compute the rates from a fault-free trace.  [access] must index the
    same trace. *)
let compute (trace : Trace.t) (access : Access.t) : t =
  let total = max 1 (Trace.length trace) in
  let conditions = ref 0 in
  let shifts = ref 0 in
  let truncs = ref 0 in
  let deads = ref 0 in
  let radds = ref 0 in
  let overwrites = ref 0 in
  let written : unit Loc.Tbl.t = Loc.Tbl.create 4096 in
  let last_writer : Trace.opclass Loc.Tbl.t = Loc.Tbl.create 4096 in
  let last_load : int Loc.Tbl.t = Loc.Tbl.create 4096 in
  Trace.iteri
    (fun i (e : Trace.event) ->
      (match e.op with
      | Trace.OBr _ -> incr conditions
      | Trace.OBin op when Op.bin_is_shift op -> incr shifts
      | Trace.OUn op when Op.un_is_truncation op -> incr truncs
      | Trace.OIntr s
        when String.length s > 6 && String.equal (String.sub s 0 6) "print:"
             && Static_detect.format_truncates
                  (String.sub s 6 (String.length s - 6)) ->
          incr truncs
      | Trace.OStore -> (
          (* repeated addition: the stored value came through an
             addition and the target word was read since it was last
             written (u[i] = u[i] + ...) *)
          match e.writes with
          | [| (loc, _) |] when Array.length e.reads > 0 -> (
              let src_loc = fst e.reads.(0) in
              match
                (Loc.Tbl.find_opt last_writer src_loc, Loc.Tbl.find_opt last_load loc)
              with
              | Some (Trace.OBin (Op.Fadd | Op.Fsub)), Some l
                when i - l < 64 ->
                  incr radds
              | _, _ -> ())
          | _ -> ())
      | Trace.OConst | Trace.OBin _ | Trace.OUn _ | Trace.OLoad | Trace.OJmp
      | Trace.OCall | Trace.ORet | Trace.OIntr _ | Trace.OMark _ ->
          ());
      (* loads feed the repeated-addition detector *)
      (match e.op with
      | Trace.OLoad ->
          Array.iter
            (fun (loc, _) ->
              match loc with
              | Loc.Mem _ -> Loc.Tbl.replace last_load loc i
              | Loc.Reg _ -> ())
            e.reads
      | _ -> ());
      Array.iter
        (fun (loc, _) ->
          if Loc.Tbl.mem written loc then incr overwrites
          else Loc.Tbl.add written loc ();
          Loc.Tbl.replace last_writer loc e.op;
          (* count dead-location sites: the written value is never read *)
          match Access.fate access loc ~after:i with
          | `Overwritten_at _ | `Never_used -> incr deads
          | `Dies_after_read _ -> ())
        e.writes)
    trace;
  let norm n = Float.of_int n /. Float.of_int total in
  {
    condition = norm !conditions;
    shift = norm !shifts;
    truncation = norm !truncs;
    dead_location = norm !deads;
    repeated_addition = norm !radds;
    overwrite = norm !overwrites;
  }

let pp ppf (r : t) =
  Fmt.pf ppf
    "cond=%.4f shift=%.4g trunc=%.4g dead=%.4f radd=%.4g overwrite=%.4f"
    r.condition r.shift r.truncation r.dead_location r.repeated_addition
    r.overwrite
