(** Static pattern-instance counting over IR programs: the instruction
    sites where each pattern can act, including a backward-slice check
    that recognizes self-accumulating stores ([u[i] = u[i] + ...]) as
    Repeated Additions sites.  Slices follow [Ft_static] reaching
    definitions across basic blocks and trace unique stores through
    constant-address words, so accumulations routed through scalar
    temporaries are found too. *)

type site = { fname : string; pc : int; line : int; region : int }

type report = {
  conditionals : site list;
  shifts : site list;
  truncations : site list;  (** narrowing ops + truncating prints *)
  overwrites : site list;   (** store instructions *)
  repeated_adds : site list;
}

val format_truncates : string -> bool
(** Does a print format drop float precision (explicit precision on a
    float directive)? *)

val analyze : Prog.t -> report

val count : report -> Pattern.t -> int
(** Static site count per pattern; 0 for the inherently dynamic DCL. *)

val static_rank : Prog.t -> Vuln.region_score list
(** {!Vuln.rank} seeded with the detector's repeated-addition and
    truncating-print sites as extra protective sites. *)
