(** The six resilience computation patterns (Section VI of the paper).

    A resilience computation pattern is a series (or combination of
    series) of computations responsible for decreasing the number of
    alive corrupted locations, or the error magnitude of corrupted
    values, ultimately helping the program tolerate a fault. *)

type t =
  | Dead_corrupted_locations
      (** corrupted inputs are aggregated into fewer outputs and the
          corrupted temporaries are never used again *)
  | Repeated_additions
      (** a corrupted value is repeatedly added to correct values,
          amortizing the error until it is acceptable *)
  | Conditional_statement
      (** a compare consumes a corrupted value but resolves to the same
          branch direction as the fault-free run *)
  | Shifting
      (** corrupted bits are shifted out of the value *)
  | Truncation
      (** corrupted bits are removed by a narrowing conversion or never
          shown to the user because of a limited-precision output
          format *)
  | Data_overwriting
      (** a clean value is stored over the corruption *)

let all =
  [
    Dead_corrupted_locations;
    Repeated_additions;
    Conditional_statement;
    Shifting;
    Truncation;
    Data_overwriting;
  ]

let to_string = function
  | Dead_corrupted_locations -> "DCL"
  | Repeated_additions -> "RA"
  | Conditional_statement -> "CS"
  | Shifting -> "Shifting"
  | Truncation -> "Trunc"
  | Data_overwriting -> "DO"

let describe = function
  | Dead_corrupted_locations -> "dead corrupted locations"
  | Repeated_additions -> "repeated additions"
  | Conditional_statement -> "conditional statement"
  | Shifting -> "shifting"
  | Truncation -> "data truncation"
  | Data_overwriting -> "data overwriting"

let pp ppf p = Fmt.string ppf (to_string p)

let equal (a : t) (b : t) = a = b

(** Classify an ACL masking event as a pattern. *)
let of_mask_kind : Acl.mask_kind -> t option = function
  | Acl.Shift_mask -> Some Shifting
  | Acl.Trunc_mask | Acl.Print_mask -> Some Truncation
  | Acl.Cond_mask -> Some Conditional_statement
  | Acl.Repeated_add _ -> Some Repeated_additions
  | Acl.Other_mask -> None

(** Classify an ACL death event as a pattern. *)
let of_death_cause : Acl.death_cause -> t = function
  | Acl.Overwritten -> Data_overwriting
  | Acl.Dead -> Dead_corrupted_locations
