(** Weighted pattern rates — the paper's stated future work.

    Section VII-B's limitation: "Different instances of a pattern can
    have different weight ... considering different cases of shifting
    where the value is shifted right/left x times, depending on the
    value of x the error may or may not be masked.  While simply
    counting the number of pattern instances limits the prediction
    accuracy (one should also take into account the value of
    locations) ...".

    This module implements that refinement.  Instead of counting
    instances, each dynamic instance contributes its {e masking
    probability} — the fraction of the datum's fault sites whose
    corruption the instance would absorb:

    {ul
    {- a shift by [s] masks the [s] shifted-out bits of a [w]-bit
       integer: weight [s / w];}
    {- an integer truncation to 32 bits masks the high bits: weight
       [32 / 64] per i64 consumed; a float-to-int conversion masks the
       fractional mantissa bits, estimated from the magnitude of the
       value; binary32 rounding masks 29 of 52 mantissa bits;}
    {- a compare with operand margin [m] masks flips that change the
       operand by less than [m]: for a [w]-bit integer, roughly the
       bits below [log2 m]; for floats, the mantissa bits below the
       relative margin;}
    {- truncating prints mask the mantissa bits below the printed
       precision;}
    {- overwrites and dead stores always mask fully: weight 1 (so these
       two features coincide with the unweighted rates).}} *)

type t = {
  w_condition : float;
  w_shift : float;
  w_truncation : float;
  w_dead_location : float;
  w_repeated_addition : float;
  w_overwrite : float;
}

let to_vector (r : t) : float array =
  [|
    r.w_condition;
    r.w_shift;
    r.w_truncation;
    r.w_dead_location;
    r.w_repeated_addition;
    r.w_overwrite;
  |]

let clamp01 x = Float.max 0.0 (Float.min 1.0 x)

(* bits of an integer value's magnitude *)
let bits_of_magnitude (v : float) : float =
  if v <= 1.0 then 0.0 else Float.log v /. Float.log 2.0

(* masking weight of one shift: the shifted-out fraction of a 32-bit
   integer datum *)
let shift_weight (amount : int64) : float =
  clamp01 (Int64.to_float (Int64.logand amount 63L) /. 32.0)

(* masking weight of a comparison: the fraction of low bits of the
   smaller operand that cannot cross the margin *)
let compare_weight ~(is_float : bool) (a : Value.t) (b : Value.t) : float =
  if is_float then begin
    let x = Value.to_float a and y = Value.to_float b in
    if Float.is_nan x || Float.is_nan y then 0.0
    else
      let scale = Float.max (Float.abs x) (Float.abs y) in
      let margin = Float.abs (x -. y) in
      if scale <= 0.0 || margin <= 0.0 then 0.0
      else
        (* mantissa bits whose corruption stays below the margin *)
        clamp01 (bits_of_magnitude (margin /. scale *. 2.0 ** 52.0) /. 52.0)
  end
  else begin
    let margin = Int64.to_float (Int64.abs (Int64.sub a b)) in
    clamp01 (bits_of_magnitude margin /. 32.0)
  end

(* masking weight of a float->int conversion: the fractional mantissa
   bits that are dropped *)
let fptosi_weight (v : Value.t) : float =
  let x = Float.abs (Value.to_float v) in
  if Float.is_nan x then 0.0
  else
    let integer_bits = bits_of_magnitude (Float.max 1.0 x) in
    clamp01 ((52.0 -. integer_bits) /. 52.0)

(* masking weight of a precision-limited print: mantissa bits below the
   printed precision (p significant decimal digits ~ p*3.32 bits) *)
let print_weight (fmt : string) : float =
  let n = String.length fmt in
  let rec prec_of i =
    if i >= n - 1 then None
    else if Char.equal fmt.[i] '%' then begin
      let rec conv j p =
        if j >= n then None
        else
          match fmt.[j] with
          | 'e' | 'f' | 'g' -> p
          | '.' ->
              let rec digits k acc =
                if k < n && fmt.[k] >= '0' && fmt.[k] <= '9' then
                  digits (k + 1) ((acc * 10) + Char.code fmt.[k] - 48)
                else (k, acc)
              in
              let k, d = digits (j + 1) 0 in
              conv k (Some d)
          | '0' .. '9' | '-' | '+' | ' ' -> conv (j + 1) p
          | _ -> prec_of (j + 1)
      in
      match conv (i + 1) None with Some p -> Some p | None -> prec_of (i + 1)
    end
    else prec_of (i + 1)
  in
  match prec_of 0 with
  | None -> 0.0
  | Some digits -> clamp01 ((52.0 -. (float_of_int digits *. 3.322)) /. 52.0)

(** Weighted rates from a fault-free trace.  [access] indexes the same
    trace. *)
let compute (trace : Trace.t) (access : Access.t) : t =
  let total = max 1 (Trace.length trace) in
  let cond = ref 0.0 in
  let shift = ref 0.0 in
  let trunc = ref 0.0 in
  let dead = ref 0.0 in
  let radd = ref 0.0 in
  let over = ref 0.0 in
  let written : unit Loc.Tbl.t = Loc.Tbl.create 4096 in
  let last_writer : Trace.opclass Loc.Tbl.t = Loc.Tbl.create 4096 in
  let last_load : int Loc.Tbl.t = Loc.Tbl.create 4096 in
  Trace.iteri
    (fun i (e : Trace.event) ->
      (match e.op with
      | Trace.OBin op when Op.bin_is_compare op ->
          if Array.length e.reads = 2 then
            cond :=
              !cond
              +. compare_weight ~is_float:(Op.bin_is_float op)
                   (snd e.reads.(0)) (snd e.reads.(1))
      | Trace.OBin op when Op.bin_is_shift op ->
          if Array.length e.reads = 2 then
            shift := !shift +. shift_weight (snd e.reads.(1))
      | Trace.OUn Op.Trunc32 -> trunc := !trunc +. 0.5
      | Trace.OUn Op.IntOfFloat ->
          if Array.length e.reads = 1 then
            trunc := !trunc +. fptosi_weight (snd e.reads.(0))
      | Trace.OUn Op.F32round -> trunc := !trunc +. (29.0 /. 52.0)
      | Trace.OIntr s
        when String.length s > 6 && String.equal (String.sub s 0 6) "print:" ->
          trunc := !trunc +. print_weight (String.sub s 6 (String.length s - 6))
      | Trace.OStore -> (
          match e.writes with
          | [| (loc, _) |] when Array.length e.reads > 0 -> (
              let src_loc = fst e.reads.(0) in
              match
                ( Loc.Tbl.find_opt last_writer src_loc,
                  Loc.Tbl.find_opt last_load loc )
              with
              | Some (Trace.OBin (Op.Fadd | Op.Fsub)), Some l when i - l < 64 ->
                  radd := !radd +. 1.0
              | _, _ -> ())
          | _ -> ())
      | Trace.OConst | Trace.OBin _ | Trace.OUn _ | Trace.OLoad | Trace.OJmp
      | Trace.OBr _ | Trace.OCall | Trace.ORet | Trace.OIntr _
      | Trace.OMark _ ->
          ());
      (match e.op with
      | Trace.OLoad ->
          Array.iter
            (fun (loc, _) ->
              match loc with
              | Loc.Mem _ -> Loc.Tbl.replace last_load loc i
              | Loc.Reg _ -> ())
            e.reads
      | _ -> ());
      Array.iter
        (fun (loc, _) ->
          if Loc.Tbl.mem written loc then over := !over +. 1.0
          else Loc.Tbl.add written loc ();
          Loc.Tbl.replace last_writer loc e.op;
          match Access.fate access loc ~after:i with
          | `Overwritten_at _ | `Never_used -> dead := !dead +. 1.0
          | `Dies_after_read _ -> ())
        e.writes)
    trace;
  let norm x = x /. Float.of_int total in
  {
    w_condition = norm !cond;
    w_shift = norm !shift;
    w_truncation = norm !trunc;
    w_dead_location = norm !dead;
    w_repeated_addition = norm !radd;
    w_overwrite = norm !over;
  }

let pp ppf (r : t) =
  Fmt.pf ppf
    "w_cond=%.4g w_shift=%.4g w_trunc=%.4g w_dead=%.4g w_radd=%.4g w_over=%.4g"
    r.w_condition r.w_shift r.w_truncation r.w_dead_location
    r.w_repeated_addition r.w_overwrite
