(** Static pattern-instance counting over IR programs.

    Counts, per function and per code region, the static instruction
    sites where each pattern can act: branches (Conditional Statement),
    shifts (Shifting), narrowing conversions and limited-precision
    prints (Truncation), stores (Data Overwriting), and
    self-accumulating stores (Repeated Additions), found by comparing
    the backward slice of a store's address with the addresses loaded
    by the stored value's computation.

    Slices are built over [Ft_static]'s reaching definitions, so they
    follow values across basic blocks, and — via reaching stores over
    constant-address words — through memory: an accumulation routed
    through a scalar temporary ([t = u[j] + w[j]; ...; u[j] = t]) is
    recognized even though the load and the store sit in different
    statements, which a single-statement backward scan cannot see. *)

type site = { fname : string; pc : int; line : int; region : int }

type report = {
  conditionals : site list;
  shifts : site list;
  truncations : site list;
  overwrites : site list;
  repeated_adds : site list;
}

(* A small expression tree reconstructed from the register code, used
   to compare address computations structurally.  [SLoadV] is a load
   whose stored value could be traced through memory (unique reaching
   store to a constant address): it carries the address tree {e and}
   the stored value's tree.  [SReg] is a register the slicer cannot
   expand (no unique definition, or defined by a call); its identity is
   the register plus its reaching-definition set, so two uses of the
   same unexpandable value still compare equal. *)
type slice_tree =
  | SConst of int64
  | SBin of Op.bin * slice_tree * slice_tree
  | SUn of Op.un * slice_tree
  | SLoad of slice_tree
  | SLoadV of slice_tree * slice_tree
  | SReg of int * int list
  | SOpaque

(* Structural equality as {e address} identity: the traced value of a
   [SLoadV] is ignored (the same word loaded at two points is the same
   address computation even if different stores reach the two points),
   and [SLoadV] matches a plain [SLoad] of the same address. *)
let rec slice_equal a b =
  match (a, b) with
  | SConst x, SConst y -> Int64.equal x y
  | SBin (o1, a1, b1), SBin (o2, a2, b2) ->
      o1 = o2 && slice_equal a1 a2 && slice_equal b1 b2
  | SUn (o1, a1), SUn (o2, a2) -> o1 = o2 && slice_equal a1 a2
  | (SLoad a1 | SLoadV (a1, _)), (SLoad a2 | SLoadV (a2, _)) ->
      slice_equal a1 a2
  | SReg (r1, d1), SReg (r2, d2) -> r1 = r2 && d1 = d2
  | SOpaque, SOpaque -> true
  | (SConst _ | SBin _ | SUn _ | SLoad _ | SLoadV _ | SReg _ | SOpaque), _ ->
      false

(* Backward slice of [reg] as defined just before [pc], following the
   reaching-definition chains and, for loads of resolved constant
   addresses, the unique reaching store into that word. *)
let rec slice_of ~(rd : Reaching.t) ~(mem : Reaching.mem)
    (code : Instr.t array) (pc : int) (reg : int) (depth : int) : slice_tree =
  if depth <= 0 then SOpaque
  else
    match Reaching.unique_def rd ~pc reg with
    | None -> SReg (reg, Reaching.defs_of rd ~pc reg)
    | Some d -> (
        match code.(d) with
        | Instr.Const (_, v) -> SConst v
        | Instr.Bin (op, _, a, b) ->
            SBin
              ( op,
                slice_of ~rd ~mem code d a (depth - 1),
                slice_of ~rd ~mem code d b (depth - 1) )
        | Instr.Un (op, _, a) -> SUn (op, slice_of ~rd ~mem code d a (depth - 1))
        | Instr.Load (_, a) -> (
            let addr_tree = slice_of ~rd ~mem code d a (depth - 1) in
            match Reaching.const_addr rd ~pc:d a with
            | Some addr -> (
                match Reaching.store_of mem ~pc:d ~addr with
                | Some s -> (
                    match code.(s) with
                    | Instr.Store (src, _) ->
                        SLoadV
                          (addr_tree, slice_of ~rd ~mem code s src (depth - 1))
                    | _ -> SLoad addr_tree)
                | None -> SLoad addr_tree)
            | None -> SLoad addr_tree)
        | Instr.Store _ | Instr.Jmp _ | Instr.Bnz _ | Instr.Call _
        | Instr.Ret _ | Instr.Intr _ | Instr.Mark _ ->
            SReg (reg, [ d ]))

(* Does the value in [reg] (as stored at [pc]) come through a float
   add/sub whose operand chain loads from address [addr_tree]?  The
   top-level value is first stripped of memory indirections ([SLoadV]),
   so an accumulation parked in a temporary word still counts; operand
   loads match either by address or through their traced stored
   value. *)
let is_self_accumulation ~(rd : Reaching.t) ~(mem : Reaching.mem)
    (code : Instr.t array) (pc : int) (reg : int) (addr_tree : slice_tree) :
    bool =
  let rec strip t = match t with SLoadV (_, v) -> strip v | _ -> t in
  let rec loads_from t =
    match t with
    | SLoad a -> slice_equal a addr_tree
    | SLoadV (a, v) -> slice_equal a addr_tree || loads_from v
    | SBin (_, a, b) -> loads_from a || loads_from b
    | SUn (_, a) -> loads_from a
    | SConst _ | SReg _ | SOpaque -> false
  in
  (* only floating-point accumulation amortizes an error; integer
     self-increments (loop counters) are not the pattern *)
  match strip (slice_of ~rd ~mem code pc reg 12) with
  | SBin ((Op.Fadd | Op.Fsub), a, b) -> loads_from a || loads_from b
  | SBin _ | SUn _ | SConst _ | SLoad _ | SLoadV _ | SReg _ | SOpaque -> false

(* A print format truncates float output when it has an explicit
   precision on a float directive.  A float directive without one
   ("%f") does not truncate, but scanning must continue past it: a
   later directive may ("%f %.3f"). *)
let format_truncates (fmt : string) : bool =
  let n = String.length fmt in
  let rec scan i =
    if i >= n - 1 then false
    else if Char.equal fmt.[i] '%' then begin
      let rec conv j saw_prec =
        if j >= n then false
        else
          match fmt.[j] with
          | 'e' | 'f' | 'g' -> saw_prec || scan (j + 1)
          | 'd' | 'x' -> scan (j + 1)
          | '.' -> conv (j + 1) true
          | '0' .. '9' | '-' | '+' | ' ' -> conv (j + 1) saw_prec
          | _ -> scan (j + 1)
      in
      conv (i + 1) false
    end
    else scan (i + 1)
  in
  scan 0

let analyze (prog : Prog.t) : report =
  let conditionals = ref [] in
  let shifts = ref [] in
  let truncations = ref [] in
  let overwrites = ref [] in
  let repeated_adds = ref [] in
  Array.iter
    (fun (f : Prog.func) ->
      let rd = Reaching.compute f in
      let mem = Reaching.compute_mem rd in
      Array.iteri
        (fun pc ins ->
          let site =
            { fname = f.fname; pc; line = f.lines.(pc); region = f.regions.(pc) }
          in
          match (ins : Instr.t) with
          | Bnz _ -> conditionals := site :: !conditionals
          | Bin (op, _, _, _) when Op.bin_is_shift op ->
              shifts := site :: !shifts
          | Un (op, _, _) when Op.un_is_truncation op ->
              truncations := site :: !truncations
          | Intr (Print fmt, _, _) when format_truncates fmt ->
              truncations := site :: !truncations
          | Store (src, addr) ->
              overwrites := site :: !overwrites;
              let addr_tree = slice_of ~rd ~mem f.code pc addr 12 in
              if is_self_accumulation ~rd ~mem f.code pc src addr_tree then
                repeated_adds := site :: !repeated_adds
          | Const _ | Bin _ | Un _ | Load _ | Jmp _ | Call _ | Ret _
          | Intr _ | Mark _ ->
              ())
        f.code)
    prog.funcs;
  {
    conditionals = List.rev !conditionals;
    shifts = List.rev !shifts;
    truncations = List.rev !truncations;
    overwrites = List.rev !overwrites;
    repeated_adds = List.rev !repeated_adds;
  }

let count (r : report) (p : Pattern.t) : int =
  match p with
  | Pattern.Conditional_statement -> List.length r.conditionals
  | Pattern.Shifting -> List.length r.shifts
  | Pattern.Truncation -> List.length r.truncations
  | Pattern.Data_overwriting -> List.length r.overwrites
  | Pattern.Repeated_additions -> List.length r.repeated_adds
  | Pattern.Dead_corrupted_locations -> 0 (* inherently dynamic *)

(** Vulnerability ranking seeded with the detector's sites: repeated
    additions and truncating prints become extra protective sites on
    top of the shapes {!Vuln.rank} classifies by itself. *)
let static_rank (p : Prog.t) : Vuln.region_score list =
  let r = analyze p in
  let extra =
    List.map (fun s -> (s.fname, s.pc)) (r.repeated_adds @ r.truncations)
  in
  Vuln.rank ~extra_protective:extra p
