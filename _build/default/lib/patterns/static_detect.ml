(** Static pattern-instance counting over IR programs.

    Counts, per function and per code region, the static instruction
    sites where each pattern can act: branches (Conditional Statement),
    shifts (Shifting), narrowing conversions and limited-precision
    prints (Truncation), stores (Data Overwriting), and
    self-accumulating stores (Repeated Additions), found by comparing
    the backward slice of a store's address with the address of a load
    feeding the stored value. *)

type site = { fname : string; pc : int; line : int; region : int }

type report = {
  conditionals : site list;
  shifts : site list;
  truncations : site list;
  overwrites : site list;
  repeated_adds : site list;
}

(* A small expression tree reconstructed from the (single-assignment
   per statement) register code, used to compare address computations
   structurally. *)
type slice_tree =
  | SConst of int64
  | SBin of Op.bin * slice_tree * slice_tree
  | SUn of Op.un * slice_tree
  | SLoad of slice_tree
  | SOpaque

let rec slice_equal a b =
  match (a, b) with
  | SConst x, SConst y -> Int64.equal x y
  | SBin (o1, a1, b1), SBin (o2, a2, b2) ->
      o1 = o2 && slice_equal a1 a2 && slice_equal b1 b2
  | SUn (o1, a1), SUn (o2, a2) -> o1 = o2 && slice_equal a1 a2
  | SLoad a1, SLoad a2 -> slice_equal a1 a2
  | SOpaque, SOpaque -> true
  | (SConst _ | SBin _ | SUn _ | SLoad _ | SOpaque), _ -> false

(* Backward slice of [reg] as defined before [pc], scanning at most
   [window] instructions back (registers are assigned once per
   statement, so the nearest definition is the right one). *)
let rec slice_of (code : Instr.t array) (pc : int) (reg : int) (depth : int) :
    slice_tree =
  if depth <= 0 then SOpaque
  else
    let rec find i =
      if i < 0 || pc - i > 64 then SOpaque
      else
        match code.(i) with
        | Instr.Const (d, v) when d = reg -> SConst v
        | Instr.Bin (op, d, a, b) when d = reg ->
            SBin (op, slice_of code i a (depth - 1), slice_of code i b (depth - 1))
        | Instr.Un (op, d, a) when d = reg ->
            SUn (op, slice_of code i a (depth - 1))
        | Instr.Load (d, a) when d = reg ->
            SLoad (slice_of code i a (depth - 1))
        | Instr.Call (_, _, Some d) | Instr.Intr (_, _, Some d) when d = reg ->
            SOpaque
        | Instr.Const _ | Instr.Bin _ | Instr.Un _ | Instr.Load _
        | Instr.Store _ | Instr.Jmp _ | Instr.Bnz _ | Instr.Call _
        | Instr.Ret _ | Instr.Intr _ | Instr.Mark _ ->
            find (i - 1)
    in
    find (pc - 1)

(* Does the value in [reg] (defined before [pc]) come through an
   add/sub whose operand chain loads from address [addr_tree]? *)
let is_self_accumulation (code : Instr.t array) (pc : int) (reg : int)
    (addr_tree : slice_tree) : bool =
  let rec loads_from t =
    match t with
    | SLoad a -> slice_equal a addr_tree
    | SBin (_, a, b) -> loads_from a || loads_from b
    | SUn (_, a) -> loads_from a
    | SConst _ | SOpaque -> false
  in
  (* only floating-point accumulation amortizes an error; integer
     self-increments (loop counters) are not the pattern *)
  match slice_of code pc reg 8 with
  | SBin ((Op.Fadd | Op.Fsub), a, b) -> loads_from a || loads_from b
  | SBin _ | SUn _ | SConst _ | SLoad _ | SOpaque -> false

(* A print format truncates float output when it has an explicit
   precision on a float directive. *)
let format_truncates (fmt : string) : bool =
  let n = String.length fmt in
  let rec scan i =
    if i >= n - 1 then false
    else if Char.equal fmt.[i] '%' then begin
      let rec conv j saw_prec =
        if j >= n then false
        else
          match fmt.[j] with
          | 'e' | 'f' | 'g' -> saw_prec
          | 'd' | 'x' -> scan (j + 1)
          | '.' -> conv (j + 1) true
          | '0' .. '9' | '-' | '+' | ' ' -> conv (j + 1) saw_prec
          | _ -> scan (j + 1)
      in
      conv (i + 1) false
    end
    else scan (i + 1)
  in
  scan 0

let analyze (prog : Prog.t) : report =
  let conditionals = ref [] in
  let shifts = ref [] in
  let truncations = ref [] in
  let overwrites = ref [] in
  let repeated_adds = ref [] in
  Array.iter
    (fun (f : Prog.func) ->
      Array.iteri
        (fun pc ins ->
          let site =
            { fname = f.fname; pc; line = f.lines.(pc); region = f.regions.(pc) }
          in
          match (ins : Instr.t) with
          | Bnz _ -> conditionals := site :: !conditionals
          | Bin (op, _, _, _) when Op.bin_is_shift op ->
              shifts := site :: !shifts
          | Un (op, _, _) when Op.un_is_truncation op ->
              truncations := site :: !truncations
          | Intr (Print fmt, _, _) when format_truncates fmt ->
              truncations := site :: !truncations
          | Store (src, addr) ->
              overwrites := site :: !overwrites;
              let addr_tree = slice_of f.code pc addr 8 in
              if is_self_accumulation f.code pc src addr_tree then
                repeated_adds := site :: !repeated_adds
          | Const _ | Bin _ | Un _ | Load _ | Jmp _ | Call _ | Ret _
          | Intr _ | Mark _ ->
              ())
        f.code)
    prog.funcs;
  {
    conditionals = List.rev !conditionals;
    shifts = List.rev !shifts;
    truncations = List.rev !truncations;
    overwrites = List.rev !overwrites;
    repeated_adds = List.rev !repeated_adds;
  }

let count (r : report) (p : Pattern.t) : int =
  match p with
  | Pattern.Conditional_statement -> List.length r.conditionals
  | Pattern.Shifting -> List.length r.shifts
  | Pattern.Truncation -> List.length r.truncations
  | Pattern.Data_overwriting -> List.length r.overwrites
  | Pattern.Repeated_additions -> List.length r.repeated_adds
  | Pattern.Dead_corrupted_locations -> 0 (* inherently dynamic *)
