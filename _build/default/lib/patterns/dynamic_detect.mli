(** Dynamic pattern attribution: aggregate the death and masking events
    of ACL analyses into a per-region pattern inventory (Table I). *)

type region_patterns = {
  rid : int;  (** -1 for code outside all regions *)
  counts : (Pattern.t * int) list;  (** observed instances *)
  lines : (Pattern.t * int list) list;  (** source lines per pattern *)
}

val of_acl : Acl.result -> region_patterns list
val merge : region_patterns list list -> region_patterns list

val found : ?threshold:int -> region_patterns -> Pattern.t -> bool
val pp : Format.formatter -> region_patterns -> unit
