(** Pattern rates — the features of the resilience-prediction model
    (Table IV): dynamic pattern-instance sites in a fault-free trace,
    normalized by the trace length. *)

type t = {
  condition : float;
  shift : float;
  truncation : float;
  dead_location : float;
  repeated_addition : float;
  overwrite : float;
}

val to_vector : t -> float array
(** Six features, in the order of {!feature_names}. *)

val feature_names : string array
val get : t -> Pattern.t -> float

val compute : Trace.t -> Access.t -> t
(** [access] must index the same trace. *)

val pp : Format.formatter -> t -> unit
