(** Masking-probability-weighted pattern rates — the refinement the
    paper lists as future work (Section VII-B): each dynamic pattern
    instance contributes the fraction of the datum's fault sites whose
    corruption it would absorb, instead of counting 1. *)

type t = {
  w_condition : float;
  w_shift : float;
  w_truncation : float;
  w_dead_location : float;
  w_repeated_addition : float;
  w_overwrite : float;
}

val to_vector : t -> float array

val shift_weight : int64 -> float
(** Shifted-out fraction of a 32-bit integer datum. *)

val compare_weight : is_float:bool -> Value.t -> Value.t -> float
(** Fraction of low bits that cannot cross the operand margin. *)

val fptosi_weight : Value.t -> float
(** Fractional mantissa bits dropped by a float-to-int conversion. *)

val print_weight : string -> float
(** Mantissa bits below the printed precision; 0 for non-truncating
    formats. *)

val compute : Trace.t -> Access.t -> t
val pp : Format.formatter -> t -> unit
