(** A generic worklist fixpoint engine over basic-block CFGs: supply a
    join-semilattice, a boundary fact, and a per-instruction transfer
    function, and solve forward or backward to a fixpoint. *)

type direction = Forward | Backward

type 'a lattice = {
  bottom : 'a;  (** identity of [join]; the initial fact everywhere *)
  equal : 'a -> 'a -> bool;
  join : 'a -> 'a -> 'a;
}

type 'a solution = {
  entry_facts : 'a array;  (** per block: fact before its first instruction *)
  exit_facts : 'a array;   (** per block: fact after its last instruction *)
}

val solve :
  dir:direction ->
  lat:'a lattice ->
  boundary:'a ->
  transfer:(int -> 'a -> 'a) ->
  Cfg.t ->
  'a solution
(** [transfer pc fact] maps the fact on the incoming side of the
    instruction at [pc] (before it when forward, after it when backward)
    to the fact on its outgoing side.  The boundary fact applies at the
    entry block (forward) or at blocks with no successors (backward).
    Facts in the solution are always indexed in execution order. *)

val block_facts :
  dir:direction ->
  transfer:(int -> 'a -> 'a) ->
  Cfg.t ->
  'a solution ->
  int ->
  'a array
(** Per-boundary facts inside one block, in execution order: element [i]
    holds between instructions [first+i-1] and [first+i]; element [0] is
    the block-entry fact, the last element the block-exit fact. *)
