(** Liveness, for registers and for statically-addressed memory words —
    two backward instances of the {!Dataflow} engine.

    Register liveness is the classic use/def analysis; nothing is live
    after a [Ret].  Memory liveness tracks the words whose addresses
    resolve to constants (named scalars): a load of a resolved address
    uses that word, an unresolved load or a call may read anything, a
    store to a resolved address kills it, and every tracked word is
    live at function exit because the final memory image is observable
    (verification phases and tests read it).

    Both are also exposure metrics: the number of live locations at an
    instruction bounds how many {e alive corrupted locations} a fault
    there can spawn, which is what the static vulnerability ranking
    feeds on. *)

module S = Set.Make (Int)

type t = {
  live_before : S.t array;  (* per pc: registers live just before *)
  live_after : S.t array;   (* per pc: registers live just after *)
}

let set_lattice : S.t Dataflow.lattice =
  { Dataflow.bottom = S.empty; equal = S.equal; join = S.union }

(* Materialize per-instruction before/after facts of a backward
   solution. *)
let per_pc_facts (cfg : Cfg.t) ~(transfer : int -> S.t -> S.t)
    (sol : S.t Dataflow.solution) : S.t array * S.t array =
  let n = Array.length cfg.Cfg.func.Prog.code in
  let before = Array.make n S.empty and after = Array.make n S.empty in
  Array.iteri
    (fun bid (b : Cfg.block) ->
      let facts =
        Dataflow.block_facts ~dir:Dataflow.Backward ~transfer cfg sol bid
      in
      for i = 0 to b.Cfg.last - b.Cfg.first do
        before.(b.Cfg.first + i) <- facts.(i);
        after.(b.Cfg.first + i) <- facts.(i + 1)
      done)
    cfg.Cfg.blocks;
  (before, after)

let compute ?(cfg : Cfg.t option) (f : Prog.func) : t =
  let cfg = match cfg with Some g -> g | None -> Cfg.build f in
  let code = f.Prog.code in
  let transfer pc after =
    let ins = code.(pc) in
    let without = List.fold_left (fun s d -> S.remove d s) after (Cfg.defs ins) in
    List.fold_left (fun s u -> S.add u s) without (Cfg.uses ins)
  in
  let sol =
    Dataflow.solve ~dir:Dataflow.Backward ~lat:set_lattice ~boundary:S.empty
      ~transfer cfg
  in
  let live_before, live_after = per_pc_facts cfg ~transfer sol in
  { live_before; live_after }

let live_before (t : t) ~(pc : int) : int list = S.elements t.live_before.(pc)
let live_after (t : t) ~(pc : int) : int list = S.elements t.live_after.(pc)

let is_live_after (t : t) ~(pc : int) (r : Instr.reg) : bool =
  S.mem r t.live_after.(pc)

let live_at_entry (t : t) : int list =
  if Array.length t.live_before = 0 then [] else S.elements t.live_before.(0)

(** Number of instructions at which register [r] is live-before: the
    static length of its live ranges. *)
let range_length (t : t) (r : Instr.reg) : int =
  Array.fold_left (fun n s -> if S.mem r s then n + 1 else n) 0 t.live_before

(** Mean number of live registers per instruction. *)
let avg_live (t : t) : float =
  let n = Array.length t.live_before in
  if n = 0 then 0.0
  else
    float_of_int
      (Array.fold_left (fun acc s -> acc + S.cardinal s) 0 t.live_before)
    /. float_of_int n

(* --- memory-word liveness ---------------------------------------------- *)

type mem_live = {
  words_before : S.t array;  (* per pc: tracked word addresses live before *)
  words_after : S.t array;
}

let compute_mem (rd : Reaching.t) (f : Prog.func) : mem_live =
  let cfg = Cfg.build f in
  let code = f.Prog.code in
  let universe =
    (* every word address that appears as a resolved constant *)
    let u = ref S.empty in
    for pc = 0 to Array.length code - 1 do
      match code.(pc) with
      | Instr.Load (_, a) | Instr.Store (_, a) ->
          Option.iter (fun k -> u := S.add k !u) (Reaching.const_addr rd ~pc a)
      | Instr.Const _ | Instr.Bin _ | Instr.Un _ | Instr.Jmp _ | Instr.Bnz _
      | Instr.Call _ | Instr.Ret _ | Instr.Intr _ | Instr.Mark _ ->
          ()
    done;
    !u
  in
  let transfer pc after =
    match code.(pc) with
    | Instr.Load (_, a) -> (
        match Reaching.const_addr rd ~pc a with
        | Some k -> S.add k after
        | None -> universe (* may read any tracked word *))
    | Instr.Store (_, a) -> (
        match Reaching.const_addr rd ~pc a with
        | Some k -> S.remove k after
        | None -> after (* may-write: no strong kill *))
    | Instr.Call _ | Instr.Intr (Instr.Randlc, _, _) -> universe
    | Instr.Const _ | Instr.Bin _ | Instr.Un _ | Instr.Jmp _ | Instr.Bnz _
    | Instr.Ret _ | Instr.Intr _ | Instr.Mark _ ->
        after
  in
  let sol =
    Dataflow.solve ~dir:Dataflow.Backward ~lat:set_lattice
      ~boundary:universe (* the final memory image is observable *)
      ~transfer cfg
  in
  let words_before, words_after = per_pc_facts cfg ~transfer sol in
  { words_before; words_after }

let words_live_before (m : mem_live) ~(pc : int) : int list =
  S.elements m.words_before.(pc)

let word_live_after (m : mem_live) ~(pc : int) (addr : int) : bool =
  S.mem addr m.words_after.(pc)

(** Mean number of live tracked words per instruction. *)
let avg_words_live (m : mem_live) : float =
  let n = Array.length m.words_before in
  if n = 0 then 0.0
  else
    float_of_int
      (Array.fold_left (fun acc s -> acc + S.cardinal s) 0 m.words_before)
    /. float_of_int n
