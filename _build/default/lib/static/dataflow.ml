(** A generic worklist fixpoint engine over basic-block CFGs.

    The client supplies a join-semilattice (bottom, join, equality), a
    boundary fact, and a per-instruction transfer function; the engine
    iterates to a fixpoint in either direction.  Facts are indexed in
    {e execution order}: [entry_fact] is the fact holding just before a
    block's first instruction and [exit_fact] just after its last, for
    both forward and backward problems. *)

type direction = Forward | Backward

type 'a lattice = {
  bottom : 'a;  (** identity of [join]; the initial fact everywhere *)
  equal : 'a -> 'a -> bool;
  join : 'a -> 'a -> 'a;
}

type 'a solution = {
  entry_facts : 'a array;  (** per block: fact before its first instruction *)
  exit_facts : 'a array;   (** per block: fact after its last instruction *)
}

(* Push the fact through one whole block in the given direction.
   [transfer pc fact] maps the fact holding on the incoming side of the
   instruction at [pc] (before it for forward problems, after it for
   backward ones) to the fact on the outgoing side. *)
let through_block ~(dir : direction) ~(transfer : int -> 'a -> 'a)
    (b : Cfg.block) (fact : 'a) : 'a =
  match dir with
  | Forward ->
      let acc = ref fact in
      for pc = b.Cfg.first to b.Cfg.last do
        acc := transfer pc !acc
      done;
      !acc
  | Backward ->
      let acc = ref fact in
      for pc = b.Cfg.last downto b.Cfg.first do
        acc := transfer pc !acc
      done;
      !acc

let solve ~(dir : direction) ~(lat : 'a lattice) ~(boundary : 'a)
    ~(transfer : int -> 'a -> 'a) (g : Cfg.t) : 'a solution =
  let n = Cfg.n_blocks g in
  let entry_facts = Array.make n lat.bottom in
  let exit_facts = Array.make n lat.bottom in
  if n = 0 then { entry_facts; exit_facts }
  else begin
    (* [input b] is the joined fact on the side facts flow in from:
       block entry for forward problems, block exit for backward. *)
    let input b =
      match dir with
      | Forward ->
          let preds = g.Cfg.blocks.(b).Cfg.preds in
          let base = if b = 0 then boundary else lat.bottom in
          List.fold_left
            (fun acc p -> lat.join acc exit_facts.(p))
            base preds
      | Backward ->
          let succs = g.Cfg.blocks.(b).Cfg.succs in
          let base = if succs = [] then boundary else lat.bottom in
          List.fold_left
            (fun acc s -> lat.join acc entry_facts.(s))
            base succs
    in
    let queue = Queue.create () in
    let queued = Array.make n false in
    let enqueue b =
      if not queued.(b) then begin
        queued.(b) <- true;
        Queue.add b queue
      end
    in
    (* seed in an order that tends to reach the fixpoint quickly *)
    (match dir with
    | Forward -> for b = 0 to n - 1 do enqueue b done
    | Backward -> for b = n - 1 downto 0 do enqueue b done);
    while not (Queue.is_empty queue) do
      let b = Queue.take queue in
      queued.(b) <- false;
      let blk = g.Cfg.blocks.(b) in
      let inp = input b in
      let out = through_block ~dir ~transfer blk inp in
      match dir with
      | Forward ->
          entry_facts.(b) <- inp;
          if not (lat.equal out exit_facts.(b)) then begin
            exit_facts.(b) <- out;
            List.iter enqueue blk.Cfg.succs
          end
      | Backward ->
          exit_facts.(b) <- inp;
          if not (lat.equal out entry_facts.(b)) then begin
            entry_facts.(b) <- out;
            List.iter enqueue blk.Cfg.preds
          end
    done;
    { entry_facts; exit_facts }
  end

(** The fact at every instruction boundary of block [bid], in execution
    order: element [i] holds between instruction [first+i-1] and
    [first+i]; element [0] is the block-entry fact and the final element
    the block-exit fact ([last - first + 2] elements in total). *)
let block_facts ~(dir : direction) ~(transfer : int -> 'a -> 'a) (g : Cfg.t)
    (sol : 'a solution) (bid : int) : 'a array =
  let b = g.Cfg.blocks.(bid) in
  let len = b.Cfg.last - b.Cfg.first + 1 in
  let facts = Array.make (len + 1) sol.entry_facts.(bid) in
  (match dir with
  | Forward ->
      for i = 0 to len - 1 do
        facts.(i + 1) <- transfer (b.Cfg.first + i) facts.(i)
      done
  | Backward ->
      facts.(len) <- sol.exit_facts.(bid);
      for i = len - 1 downto 0 do
        facts.(i) <- transfer (b.Cfg.first + i) facts.(i + 1)
      done);
  facts
