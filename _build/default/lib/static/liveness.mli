(** Backward liveness over registers and over statically-addressed
    memory words; also the exposure metrics (live locations per
    instruction) the static vulnerability ranking feeds on. *)

module S : Set.S with type elt = int

type t

val compute : ?cfg:Cfg.t -> Prog.func -> t

val live_before : t -> pc:int -> int list
val live_after : t -> pc:int -> int list
val is_live_after : t -> pc:int -> Instr.reg -> bool

val live_at_entry : t -> int list
(** Registers read before being written on some path from entry: the
    registers the function effectively takes as parameters. *)

val range_length : t -> Instr.reg -> int
(** Number of instructions at which the register is live-before. *)

val avg_live : t -> float
(** Mean live registers per instruction. *)

type mem_live

val compute_mem : Reaching.t -> Prog.func -> mem_live
(** Liveness of words whose load/store addresses resolve to constants.
    Unresolved loads and calls may read anything; every tracked word is
    live at exit (the final memory image is observable). *)

val words_live_before : mem_live -> pc:int -> int list
val word_live_after : mem_live -> pc:int -> int -> bool

val avg_words_live : mem_live -> float
(** Mean live tracked words per instruction. *)
