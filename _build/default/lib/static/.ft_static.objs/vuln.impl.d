lib/static/vuln.ml: Array Buffer Cfg Fmt Hashtbl Instr List Liveness Op Printf Prog Reaching
