lib/static/dataflow.ml: Array Cfg List Queue
