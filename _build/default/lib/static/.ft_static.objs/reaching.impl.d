lib/static/reaching.ml: Array Cfg Dataflow Hashtbl Instr Int Int64 List Option Prog Set
