lib/static/vuln.mli: Format Instr Prog
