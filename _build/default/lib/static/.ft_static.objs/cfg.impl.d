lib/static/cfg.ml: Array Fmt Instr List Prog
