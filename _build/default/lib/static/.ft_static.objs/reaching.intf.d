lib/static/reaching.mli: Instr Prog Set
