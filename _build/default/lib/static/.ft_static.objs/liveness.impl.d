lib/static/liveness.ml: Array Cfg Dataflow Instr Int List Option Prog Reaching Set
