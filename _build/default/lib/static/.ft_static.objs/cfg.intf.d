lib/static/cfg.mli: Format Instr Prog
