lib/static/liveness.mli: Cfg Instr Prog Reaching Set
