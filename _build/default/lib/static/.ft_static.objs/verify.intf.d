lib/static/verify.mli: Format Prog
