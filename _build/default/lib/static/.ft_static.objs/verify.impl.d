lib/static/verify.ml: Array Buffer Cfg Fmt Format Instr List Liveness Option Printf Prog Reaching String
