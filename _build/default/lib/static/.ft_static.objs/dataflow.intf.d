lib/static/dataflow.mli: Cfg
