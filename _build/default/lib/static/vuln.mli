(** Static vulnerability ranking: score each code region by mean live
    locations per instruction (exposure), discounted by the density of
    statically recognizable protective sites.  Deterministic. *)

type region_score = {
  rid : int;
  rname : string;
  instrs : int;            (** static instructions attributed to the region *)
  avg_live_regs : float;
  avg_live_words : float;
  protective_sites : int;
  protective_density : float;
  exposure : float;        (** [avg_live_regs +. avg_live_words] *)
  score : float;           (** [exposure /. (1 + 4 * protective_density)] *)
}

val rank : ?extra_protective:(string * int) list -> Prog.t -> region_score list
(** Scores for every region in the program's region table, most
    vulnerable first (ties broken by region id).  [extra_protective]
    adds caller-classified protective sites as [(function name, pc)]
    pairs — e.g. the repeated-addition and truncating-print sites found
    by the pattern detectors. *)

val trivially_protective : Instr.t -> bool

val pp_score : Format.formatter -> region_score -> unit
val pp_ranking : Format.formatter -> region_score list -> unit
val to_csv : region_score list -> string
