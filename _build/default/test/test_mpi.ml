(* The simulated MPI runtime: messaging, collectives, record/replay,
   and the demo programs. *)

let run_demo ?record ?replay ~size prog_ast =
  let prog = Compile.compile prog_ast in
  Runner.run ?record ?replay ~size prog

let result_of (b : Runner.bundle) rank =
  match App.parse_result b.Runner.results.(rank).Runner.result.Machine.output with
  | Some v -> v
  | None -> Alcotest.fail "rank printed no RESULT"

let test_ring_total () =
  let b = run_demo ~size:6 (Demo.ring ~rounds:4) in
  let expected = float_of_int (4 * 6 * 5 / 2) in
  for rank = 0 to 5 do
    Alcotest.(check (float 0.0)) "ring total on every rank" expected
      (result_of b rank)
  done

let test_ring_single_rank () =
  (* a ring of one rank sends to itself *)
  let b = run_demo ~size:1 (Demo.ring ~rounds:2) in
  Alcotest.(check (float 0.0)) "degenerate ring" 0.0 (result_of b 0)

let test_allreduce_converges_to_mean () =
  let b = run_demo ~size:8 (Demo.allreduce_converge ~iters:40) in
  for rank = 0 to 7 do
    Alcotest.(check (float 1e-6)) "converged to mean of 0..7" 3.5
      (result_of b rank)
  done

let test_jacobi_consistent_and_bounded () =
  let b = run_demo ~size:4 (Demo.halo_jacobi ~cells:6 ~iters:30) in
  let v = result_of b 0 in
  (* all ranks agree (it is an allreduce) and the sum is within the
     fixed boundary range *)
  for rank = 1 to 3 do
    Alcotest.(check (float 0.0)) "agreement" v (result_of b rank)
  done;
  Alcotest.(check bool) "bounded by boundary values" true (v > 0.0 && v < 24.0)

let test_jacobi_record_replay_identical () =
  let ast = Demo.halo_jacobi ~cells:6 ~iters:15 in
  let b1 = run_demo ~record:true ~size:4 ast in
  Alcotest.(check bool) "events recorded" true (b1.Runner.recorded <> []);
  let b2 = run_demo ~replay:(Array.of_list b1.Runner.recorded) ~size:4 ast in
  Alcotest.(check (float 0.0)) "replay reproduces the result"
    (result_of b1 0) (result_of b2 0)

let test_comm_direct_send_recv () =
  let comm = Comm.create ~size:2 () in
  Comm.send comm ~src:0 ~dest:1 ~tag:5 (Value.of_float 2.5);
  let v = Comm.recv comm ~rank:1 ~src:0 ~tag:5 in
  Alcotest.(check (float 0.0)) "payload" 2.5 (Value.to_float v)

let test_comm_fifo_per_channel () =
  let comm = Comm.create ~size:2 () in
  Comm.send comm ~src:0 ~dest:1 ~tag:1 (Value.of_float 1.0);
  Comm.send comm ~src:0 ~dest:1 ~tag:1 (Value.of_float 2.0);
  Alcotest.(check (float 0.0)) "first" 1.0
    (Value.to_float (Comm.recv comm ~rank:1 ~src:0 ~tag:1));
  Alcotest.(check (float 0.0)) "second" 2.0
    (Value.to_float (Comm.recv comm ~rank:1 ~src:0 ~tag:1))

let test_comm_rank_checks () =
  let comm = Comm.create ~size:2 () in
  Alcotest.(check bool) "bad dest" true
    (try Comm.send comm ~src:0 ~dest:7 ~tag:0 Value.zero; false
     with Comm.Comm_error _ -> true)

let test_hooks_wire_rank_and_size () =
  let comm = Comm.create ~size:3 () in
  let h = Comm.hooks comm ~rank:2 in
  Alcotest.(check int) "rank" 2 h.Machine.rank;
  Alcotest.(check int) "size" 3 h.Machine.size

let test_recv_without_runtime_traps () =
  let prog =
    let open Ast in
    Compile.compile
      (Helpers.main_program
         ~globals:[ DScalar ("x", Ty.F64) ]
         [ SAssign ("x", MpiRecv (i 0, i 0)) ])
  in
  match (Machine.run_plain prog).Machine.outcome with
  | Machine.Trapped _ -> ()
  | Machine.Finished | Machine.Budget_exceeded ->
      Alcotest.fail "expected a trap without an MPI runtime"

let test_allreduce_without_runtime_is_identity () =
  let prog =
    let open Ast in
    Compile.compile
      (Helpers.main_program
         ~globals:[ DScalar ("x", Ty.F64) ]
         [ SAssign ("x", MpiAllreduce (f 4.25)) ])
  in
  let r = Machine.run_plain prog in
  Alcotest.(check (float 0.0)) "identity on one rank" 4.25
    (Helpers.mem_float prog r "x")

let test_tracing_through_runner () =
  let prog = Compile.compile (Demo.allreduce_converge ~iters:5) in
  let b = Runner.run ~traced:true ~size:2 prog in
  Array.iter
    (fun (r : Runner.rank_result) ->
      Alcotest.(check bool) "per-rank trace collected" true (r.Runner.trace_len > 0))
    b.Runner.results

let suite =
  ( "mpi",
    [
      Alcotest.test_case "ring total" `Quick test_ring_total;
      Alcotest.test_case "ring of one" `Quick test_ring_single_rank;
      Alcotest.test_case "allreduce convergence" `Quick
        test_allreduce_converges_to_mean;
      Alcotest.test_case "jacobi agreement" `Quick test_jacobi_consistent_and_bounded;
      Alcotest.test_case "record/replay" `Quick test_jacobi_record_replay_identical;
      Alcotest.test_case "direct send/recv" `Quick test_comm_direct_send_recv;
      Alcotest.test_case "per-channel FIFO" `Quick test_comm_fifo_per_channel;
      Alcotest.test_case "rank checks" `Quick test_comm_rank_checks;
      Alcotest.test_case "hooks rank/size" `Quick test_hooks_wire_rank_and_size;
      Alcotest.test_case "recv without runtime" `Quick test_recv_without_runtime_traps;
      Alcotest.test_case "allreduce identity" `Quick
        test_allreduce_without_runtime_is_identity;
      Alcotest.test_case "tracing through runner" `Quick test_tracing_through_runner;
    ] )
