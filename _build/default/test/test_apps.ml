(* The ten benchmark programs: verification, reference-implementation
   cross-checks, region structure, iteration counts. *)

let test_all_apps_verify () =
  List.iter
    (fun (app : App.t) ->
      let r = App.reference app in
      Alcotest.(check bool) (app.App.name ^ " finished") true
        (r.Machine.outcome = Machine.Finished);
      Alcotest.(check bool) (app.App.name ^ " verified") true
        (App.verified r.Machine.output))
    Registry.all

let test_hardened_variants_verify () =
  List.iter
    (fun (app : App.t) ->
      Alcotest.(check bool) (app.App.name ^ " verified") true
        (App.verified (App.reference app).Machine.output))
    Registry.cg_variants

let test_iteration_counts () =
  List.iter
    (fun (app : App.t) ->
      Alcotest.(check int)
        (app.App.name ^ " iterations")
        app.App.main_iterations
        (App.reference app).Machine.iterations)
    Registry.all

let test_cg_matches_ocaml_reference () =
  Alcotest.(check (float 1e-12)) "zeta" (Cg.reference_zeta ())
    (App.reference_value Cg.app)

let test_is_matches_ocaml_reference () =
  Alcotest.(check (float 0.0)) "ranks" (Is.reference_result ())
    (App.reference_value Is.app)

let test_kmeans_matches_ocaml_reference () =
  Alcotest.(check (float 1e-9)) "inertia" (Kmeans.reference_inertia ())
    (App.reference_value Kmeans.app)

let test_dc_matches_ocaml_reference () =
  Alcotest.(check (float 0.0)) "checksum" (Dc.reference_checksum ())
    (App.reference_value Dc.app)

let test_mg_matches_ocaml_reference () =
  Alcotest.(check (float 0.0)) "residual norm" (Mg.reference_rnorm ())
    (App.reference_value Mg.app)

let test_lu_matches_ocaml_reference () =
  Alcotest.(check (float 0.0)) "residual norm" (Lu.reference_rnorm ())
    (App.reference_value Lu.app)

let test_region_instances_exist () =
  List.iter
    (fun (app : App.t) ->
      let _, t = App.trace app in
      let prog = App.program app in
      Array.iter
        (fun (info : Prog.region_info) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s has instance 0" app.App.name info.Prog.rname)
            true
            (Region.find_instance t ~rid:info.Prog.rid ~number:0 <> None))
        prog.Prog.region_table)
    Registry.analyzed

let test_region_sizes_shape_cg () =
  (* cg_c (the cgit loop with the SpMV) dominates, as in the paper *)
  let _, t = App.trace Cg.app in
  let prog = App.program Cg.app in
  let size name =
    let rid = (Prog.region_by_name prog name).Prog.rid in
    match Region.find_instance t ~rid ~number:0 with
    | Some i -> Region.size i
    | None -> 0
  in
  Alcotest.(check bool) "cg_c biggest" true
    (size "cg_c" > size "cg_a"
     && size "cg_c" > size "cg_b"
     && size "cg_c" > size "cg_d"
     && size "cg_c" > size "cg_e")

let test_region_sizes_shape_mg () =
  (* mg_d (finest resid+smooth) biggest, mg_b (bottom solve) smallest *)
  let _, t = App.trace Mg.app in
  let prog = App.program Mg.app in
  let size name =
    let rid = (Prog.region_by_name prog name).Prog.rid in
    match Region.find_instance t ~rid ~number:0 with
    | Some i -> Region.size i
    | None -> 0
  in
  Alcotest.(check bool) "mg_d biggest" true
    (size "mg_d" > size "mg_a" && size "mg_d" > size "mg_c");
  Alcotest.(check bool) "mg_b smallest" true
    (size "mg_b" < size "mg_a" && size "mg_b" < size "mg_c")

let test_kmeans_small_regions () =
  (* k_b and k_d are tiny relative to the assignment loop k_c, as in
     Table I (62 and 36 instructions vs 2.19M) *)
  let _, t = App.trace Kmeans.app in
  let prog = App.program Kmeans.app in
  let size name =
    let rid = (Prog.region_by_name prog name).Prog.rid in
    match Region.find_instance t ~rid ~number:0 with
    | Some i -> Region.size i
    | None -> 0
  in
  Alcotest.(check bool) "k_c dominates" true
    (size "k_c" > 50 * size "k_b" && size "k_c" > 50 * size "k_d")

let test_lulesh_prints_truncated_energy () =
  let r = App.reference Lulesh.app in
  Alcotest.(check bool) "%12.6e output present" true
    (let out = r.Machine.output in
     let rec scan i =
       if i + 2 > String.length out then false
       else if String.equal (String.sub out i 2) "e=" then true
       else scan (i + 1)
     in
     scan 0)

let test_verification_is_conditional () =
  (* the baked verification phase is a conditional-statement pattern:
     its static report must include at least one branch in main *)
  let prog = App.program Cg.app in
  let r = Static_detect.analyze prog in
  Alcotest.(check bool) "branches exist" true
    (List.exists
       (fun (s : Static_detect.site) -> String.equal s.Static_detect.fname "main")
       r.Static_detect.conditionals)

let test_sprnvc_duplicate_free () =
  (* CG's sprnvc must generate distinct iv entries (the duplicate check
     is the was_gen loop of Figure 12) *)
  let prog = App.program Cg.app in
  let r = Machine.run_plain prog in
  let base =
    match Prog.find_symbol prog "iv" with
    | Some s -> s.Prog.sym_addr
    | None -> Alcotest.fail "iv symbol"
  in
  let vals = List.init Cg.nonzer (fun k -> Value.to_int r.Machine.mem.(base + k)) in
  Alcotest.(check int) "distinct iv entries" (List.length vals)
    (List.length (List.sort_uniq compare vals))

let test_parse_result () =
  Alcotest.(check (option (float 0.0))) "parses" (Some 3.5)
    (App.parse_result "noise\nRESULT 3.5\nVERIFIED 1\n");
  Alcotest.(check (option (float 0.0))) "absent" None (App.parse_result "nothing")

let test_verified_parser () =
  Alcotest.(check bool) "accepts" true (App.verified "...\nVERIFIED 1\n");
  Alcotest.(check bool) "rejects 0" false (App.verified "...\nVERIFIED 0\n");
  Alcotest.(check bool) "rejects absent" false (App.verified "RESULT 2\n")

let test_registry_find () =
  Alcotest.(check string) "find CG" "CG" (Registry.find "CG").App.name;
  Alcotest.(check string) "case-insensitive" "CG" (Registry.find "cg").App.name;
  (match Registry.find "NOPE" with
  | _ -> Alcotest.fail "expected Unknown_app"
  | exception Registry.Unknown_app { name; known; _ } ->
      Alcotest.(check string) "error carries the name" "NOPE" name;
      Alcotest.(check bool) "error lists known apps" true
        (List.mem "CG" known));
  (* a typo gets a near-match suggestion *)
  (match Registry.find "LULESHH" with
  | _ -> Alcotest.fail "expected Unknown_app"
  | exception Registry.Unknown_app { suggestions; _ } ->
      Alcotest.(check bool) "suggests LULESH" true
        (List.mem "LULESH" suggestions))

let test_app_instruction_budget_sanity () =
  (* apps stay in the tractable range the campaigns assume *)
  List.iter
    (fun (app : App.t) ->
      let r = App.reference app in
      Alcotest.(check bool)
        (app.App.name ^ " instruction count sane")
        true
        (r.Machine.instructions > 10_000 && r.Machine.instructions < 5_000_000))
    Registry.all

let suite =
  ( "apps",
    [
      Alcotest.test_case "all verify" `Quick test_all_apps_verify;
      Alcotest.test_case "hardened variants verify" `Quick
        test_hardened_variants_verify;
      Alcotest.test_case "iteration counts" `Quick test_iteration_counts;
      Alcotest.test_case "CG = OCaml reference" `Quick test_cg_matches_ocaml_reference;
      Alcotest.test_case "IS = OCaml reference" `Quick test_is_matches_ocaml_reference;
      Alcotest.test_case "KMEANS = OCaml reference" `Quick
        test_kmeans_matches_ocaml_reference;
      Alcotest.test_case "DC = OCaml reference" `Quick test_dc_matches_ocaml_reference;
      Alcotest.test_case "MG = OCaml reference" `Quick test_mg_matches_ocaml_reference;
      Alcotest.test_case "LU = OCaml reference" `Quick test_lu_matches_ocaml_reference;
      Alcotest.test_case "region instances exist" `Quick test_region_instances_exist;
      Alcotest.test_case "CG region shape" `Quick test_region_sizes_shape_cg;
      Alcotest.test_case "MG region shape" `Quick test_region_sizes_shape_mg;
      Alcotest.test_case "KMEANS region shape" `Quick test_kmeans_small_regions;
      Alcotest.test_case "LULESH truncated print" `Quick
        test_lulesh_prints_truncated_energy;
      Alcotest.test_case "verification is conditional" `Quick
        test_verification_is_conditional;
      Alcotest.test_case "sprnvc duplicates" `Quick test_sprnvc_duplicate_free;
      Alcotest.test_case "parse result" `Quick test_parse_result;
      Alcotest.test_case "verified parser" `Quick test_verified_parser;
      Alcotest.test_case "registry find" `Quick test_registry_find;
      Alcotest.test_case "instruction budgets" `Quick
        test_app_instruction_budget_sanity;
    ] )
