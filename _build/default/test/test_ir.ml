(* IR-level structures: locations, program validation, the symbol
   table, pretty-printing smoke checks. *)

let test_loc_equal_compare () =
  let a = Loc.Reg (1, 2) and b = Loc.Reg (1, 2) and c = Loc.Mem 5 in
  Alcotest.(check bool) "equal" true (Loc.equal a b);
  Alcotest.(check bool) "not equal" false (Loc.equal a c);
  Alcotest.(check int) "compare equal" 0 (Loc.compare a b);
  Alcotest.(check bool) "reg < mem" true (Loc.compare a c < 0);
  Alcotest.(check bool) "is_mem" true (Loc.is_mem c && not (Loc.is_mem a))

let test_loc_set_map () =
  let s = Loc.Set.of_list [ Loc.Mem 1; Loc.Mem 2; Loc.Mem 1; Loc.Reg (0, 3) ] in
  Alcotest.(check int) "dedup" 3 (Loc.Set.cardinal s);
  let m = Loc.Map.add (Loc.Mem 7) "x" Loc.Map.empty in
  Alcotest.(check (option string)) "map find" (Some "x")
    (Loc.Map.find_opt (Loc.Mem 7) m)

let test_loc_tbl () =
  let t = Loc.Tbl.create 8 in
  Loc.Tbl.replace t (Loc.Reg (4, 4)) 1;
  Loc.Tbl.replace t (Loc.Reg (4, 4)) 2;
  Alcotest.(check (option int)) "replace" (Some 2)
    (Loc.Tbl.find_opt t (Loc.Reg (4, 4)));
  Alcotest.(check int) "size" 1 (Loc.Tbl.length t)

let dummy_prog ?(code = [| Instr.Ret None |]) ?(nregs = 1) () : Prog.t =
  {
    Prog.funcs =
      [|
        {
          Prog.fname = "f";
          nregs;
          code;
          lines = Array.map (fun _ -> 0) code;
          regions = Array.map (fun _ -> -1) code;
        };
      |];
    entry = 0;
    mem_size = 8;
    init_mem = [];
    region_table = [||];
    mark_names = [||];
    symbols = [];
  }

let expect_invalid name prog =
  Alcotest.(check bool) name true
    (try Prog.validate prog; false with Invalid_argument _ -> true)

let test_validate_rejects_bad_register () =
  expect_invalid "register out of range"
    (dummy_prog ~code:[| Instr.Const (3, 0L); Instr.Ret None |] ~nregs:1 ())

let test_validate_rejects_bad_branch () =
  expect_invalid "branch target out of range"
    (dummy_prog ~code:[| Instr.Jmp 99 |] ())

let test_validate_rejects_bad_callee () =
  expect_invalid "callee out of range"
    (dummy_prog ~code:[| Instr.Call (5, [||], None); Instr.Ret None |] ())

let test_validate_rejects_bad_entry () =
  let p = dummy_prog () in
  expect_invalid "entry out of range" { p with Prog.entry = 3 }

let test_validate_accepts_good () =
  Prog.validate
    (dummy_prog
       ~code:[| Instr.Const (0, 1L); Instr.Bnz (0, 0, 2); Instr.Ret None |] ())

let test_addr_of_element_errors () =
  let prog =
    Compile.compile
      (Helpers.main_program
         ~globals:[ Ast.DArr ("a", Ty.F64, [ 2; 3 ]) ]
         [ Ast.SStore ("a", [ Ast.i 0; Ast.i 0 ], Ast.f 1.0) ])
  in
  Alcotest.(check bool) "unknown symbol" true
    (try ignore (Prog.addr_of_element prog "nope" [ 0 ]); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "wrong arity" true
    (try ignore (Prog.addr_of_element prog "a" [ 0 ]); false
     with Invalid_argument _ -> true);
  (* row-major: a[1][2] = base + 1*3 + 2 *)
  let base = (Option.get (Prog.find_symbol prog "a")).Prog.sym_addr in
  Alcotest.(check int) "offset" (base + 5) (Prog.addr_of_element prog "a" [ 1; 2 ])

let test_type_of_addr_covers_array () =
  let prog =
    Compile.compile
      (Helpers.main_program
         ~globals:[ Ast.DArr ("a", Ty.I64, [ 4 ]); Ast.DScalar ("x", Ty.F64) ]
         [ Ast.SAssign ("x", Ast.f 0.0) ])
  in
  let base = (Option.get (Prog.find_symbol prog "a")).Prog.sym_addr in
  Alcotest.(check bool) "array word typed" true
    (Prog.type_of_addr prog (base + 3) = Some Ty.I64);
  Alcotest.(check bool) "past the array" true
    (Prog.type_of_addr prog (base + 4) <> Some Ty.I64)

let test_static_size () =
  let prog = Compile.compile (Helpers.loop_program ~iters:1) in
  Alcotest.(check bool) "counts all functions" true
    (Prog.static_size prog > 10)

let test_pp_smoke () =
  (* pretty-printers render without raising *)
  let prog = Compile.compile (Helpers.two_region_program ()) in
  Alcotest.(check bool) "prog pp" true
    (String.length (Fmt.str "%a" Prog.pp prog) > 100);
  Alcotest.(check bool) "value pp" true
    (String.length (Fmt.str "%a" (Value.pp_typed Ty.F64) (Value.of_float 1.5)) > 0);
  Alcotest.(check bool) "loc pp" true
    (String.length (Fmt.str "%a" Loc.pp (Loc.Mem 3)) > 0);
  Alcotest.(check bool) "instr pp" true
    (String.length (Fmt.str "%a" Instr.pp (Instr.Bin (Op.Fadd, 0, 1, 2))) > 0)

let test_ty () =
  Alcotest.(check bool) "equal" true (Ty.equal Ty.I64 Ty.I64);
  Alcotest.(check bool) "distinct" false (Ty.equal Ty.I64 Ty.F64);
  Alcotest.(check string) "to_string" "f64" (Ty.to_string Ty.F64)

let test_region_lookup_errors () =
  let prog = Compile.compile (Helpers.two_region_program ()) in
  Alcotest.(check bool) "unknown region" true
    (try ignore (Prog.region_by_name prog "nope"); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "unknown mark" true
    (try ignore (Prog.mark_id prog "nope"); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "unknown function" true
    (try ignore (Prog.func_index prog "nope"); false
     with Invalid_argument _ -> true)

let prop_loc_hash_consistent =
  QCheck.Test.make ~count:300 ~name:"equal locations hash equally"
    QCheck.(pair (pair small_nat small_nat) bool)
    (fun ((a, b), mem) ->
      let l1 = if mem then Loc.Mem a else Loc.Reg (a, b) in
      let l2 = if mem then Loc.Mem a else Loc.Reg (a, b) in
      Loc.equal l1 l2 && Loc.hash l1 = Loc.hash l2)

let suite =
  ( "ir",
    [
      Alcotest.test_case "loc equal/compare" `Quick test_loc_equal_compare;
      Alcotest.test_case "loc set/map" `Quick test_loc_set_map;
      Alcotest.test_case "loc tbl" `Quick test_loc_tbl;
      Alcotest.test_case "validate: bad register" `Quick test_validate_rejects_bad_register;
      Alcotest.test_case "validate: bad branch" `Quick test_validate_rejects_bad_branch;
      Alcotest.test_case "validate: bad callee" `Quick test_validate_rejects_bad_callee;
      Alcotest.test_case "validate: bad entry" `Quick test_validate_rejects_bad_entry;
      Alcotest.test_case "validate: accepts good" `Quick test_validate_accepts_good;
      Alcotest.test_case "addr_of_element" `Quick test_addr_of_element_errors;
      Alcotest.test_case "type_of_addr" `Quick test_type_of_addr_covers_array;
      Alcotest.test_case "static size" `Quick test_static_size;
      Alcotest.test_case "pretty-printers" `Quick test_pp_smoke;
      Alcotest.test_case "ty" `Quick test_ty;
      Alcotest.test_case "lookup errors" `Quick test_region_lookup_errors;
      QCheck_alcotest.to_alcotest prop_loc_hash_consistent;
    ] )
