(* Dense linear algebra and the resilience regression model. *)

let approx = Alcotest.(check (float 1e-8))

(* --- linalg ---------------------------------------------------------------- *)

let test_solve_known_system () =
  (* 2x + y = 5; x + 3y = 10 -> x = 1, y = 3 *)
  let a = [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let x = Linalg.solve a [| 5.0; 10.0 |] in
  approx "x" 1.0 x.(0);
  approx "y" 3.0 x.(1)

let test_solve_identity () =
  let x = Linalg.solve (Linalg.identity 4) [| 1.0; 2.0; 3.0; 4.0 |] in
  Array.iteri (fun i v -> approx "id" (float_of_int (i + 1)) v) x

let test_solve_needs_pivoting () =
  (* zero pivot in the naive order; partial pivoting must handle it *)
  let a = [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let x = Linalg.solve a [| 2.0; 3.0 |] in
  approx "x" 3.0 x.(0);
  approx "y" 2.0 x.(1)

let test_solve_singular_fails () =
  let a = [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  Alcotest.(check bool) "singular detected" true
    (try ignore (Linalg.solve a [| 1.0; 2.0 |]); false
     with Failure _ -> true)

let test_matmul_transpose_dot () =
  let a = [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let c = Linalg.matmul a b in
  approx "c00" 19.0 c.(0).(0);
  approx "c11" 50.0 c.(1).(1);
  let t = Linalg.transpose a in
  approx "t01" 3.0 t.(0).(1);
  approx "dot" 11.0 (Linalg.dot [| 1.0; 2.0 |] [| 3.0; 4.0 |]);
  let v = Linalg.matvec a [| 1.0; 1.0 |] in
  approx "matvec" 3.0 v.(0)

let prop_solve_roundtrip =
  QCheck.Test.make ~count:100 ~name:"solve recovers x from diag-dominant A"
    QCheck.(list_of_size (Gen.return 4) (float_bound_exclusive 1.0))
    (fun xs ->
      QCheck.assume (List.length xs = 4);
      let x = Array.of_list xs in
      let n = 4 in
      let a =
        Array.init n (fun i ->
            Array.init n (fun j ->
                if i = j then 10.0 else 1.0 /. float_of_int (i + j + 2)))
      in
      let b = Linalg.matvec a x in
      let x' = Linalg.solve a b in
      Array.for_all2 (fun u v -> Float.abs (u -. v) < 1e-9) x x')

(* --- regression ------------------------------------------------------------- *)

let synth_data n =
  let rng = Rng.create ~seed:31 in
  let x = Array.init n (fun _ -> Array.init 3 (fun _ -> Rng.float rng)) in
  let y = Array.map (fun row -> 0.5 +. Linalg.dot row [| 1.0; -2.0; 0.5 |]) x in
  (x, y)

let test_exact_recovery () =
  let x, y = synth_data 40 in
  let m = Regression.fit ~lambda:1e-10 x y in
  approx "b0" 1.0 m.Regression.coeffs.(0);
  approx "b1" (-2.0) m.Regression.coeffs.(1);
  approx "b2" 0.5 m.Regression.coeffs.(2);
  approx "intercept" 0.5 m.Regression.intercept

let test_r_square_perfect () =
  let x, y = synth_data 40 in
  let m = Regression.fit ~lambda:1e-10 x y in
  Alcotest.(check (float 1e-9)) "r2 = 1 on noiseless data" 1.0
    (Regression.r_square m x y)

let test_prediction_clamped () =
  let m = { Regression.coeffs = [| 100.0 |]; intercept = 0.0; lambda = 0.0 } in
  Alcotest.(check (float 0.0)) "clamped high" 1.0 (Regression.predict_rate m [| 1.0 |]);
  Alcotest.(check (float 0.0)) "clamped low" 0.0 (Regression.predict_rate m [| -1.0 |])

let test_ridge_shrinks () =
  let x, y = synth_data 40 in
  let free = Regression.fit ~lambda:1e-10 x y in
  let ridge = Regression.fit ~lambda:100.0 x y in
  let norm m =
    Array.fold_left (fun a c -> a +. (c *. c)) 0.0 m.Regression.coeffs
  in
  Alcotest.(check bool) "penalty shrinks coefficients" true (norm ridge < norm free)

let test_leave_one_out () =
  let x, y = synth_data 20 in
  let loo = Regression.leave_one_out ~lambda:1e-10 x y in
  Alcotest.(check int) "one prediction per sample" 20 (Array.length loo);
  Array.iteri
    (fun i p ->
      (* noiseless linear data in [0,1]-ish range: LOO is near-exact
         where the target is in range *)
      if y.(i) >= 0.0 && y.(i) <= 1.0 then
        Alcotest.(check (float 1e-6)) "loo accurate" y.(i) p)
    loo

let test_relative_error () =
  approx "simple" 0.5 (Regression.relative_error ~measured:2.0 ~predicted:1.0);
  approx "zero measured" 0.3 (Regression.relative_error ~measured:0.0 ~predicted:0.3)

let test_standardized_coefficients () =
  let x, y = synth_data 40 in
  let m = Regression.fit ~lambda:1e-10 x y in
  let sc = Regression.standardized_coefficients m x y in
  Alcotest.(check int) "three features" 3 (Array.length sc);
  (* feature 1 has the largest |coefficient| on comparable scales *)
  Alcotest.(check bool) "importance ordering" true
    (Float.abs sc.(1) > Float.abs sc.(0) && Float.abs sc.(1) > Float.abs sc.(2));
  (* signs follow the generating coefficients *)
  Alcotest.(check bool) "signs" true (sc.(0) > 0.0 && sc.(1) < 0.0 && sc.(2) > 0.0)

let test_fit_rejects_empty () =
  Alcotest.(check bool) "no samples" true
    (try ignore (Regression.fit [||] [||]); false
     with Invalid_argument _ -> true)

let prop_r_square_bounded_below_one =
  QCheck.Test.make ~count:50 ~name:"r-square of the fit is <= 1"
    QCheck.(list_of_size (Gen.return 12) (pair (float_bound_exclusive 1.0) (float_bound_exclusive 1.0)))
    (fun pts ->
      QCheck.assume (List.length pts = 12);
      let x = Array.of_list (List.map (fun (a, _) -> [| a |]) pts) in
      let y = Array.of_list (List.map snd pts) in
      QCheck.assume (Array.exists (fun v -> v <> y.(0)) y);
      QCheck.assume (Array.exists (fun r -> r.(0) <> x.(0).(0)) x);
      match Regression.fit ~lambda:1e-8 x y with
      | m -> Regression.r_square m x y <= 1.0 +. 1e-9
      | exception Failure _ -> QCheck.assume_fail ())

let suite =
  ( "predict",
    [
      Alcotest.test_case "solve known system" `Quick test_solve_known_system;
      Alcotest.test_case "solve identity" `Quick test_solve_identity;
      Alcotest.test_case "solve with pivoting" `Quick test_solve_needs_pivoting;
      Alcotest.test_case "singular detected" `Quick test_solve_singular_fails;
      Alcotest.test_case "matmul/transpose/dot" `Quick test_matmul_transpose_dot;
      QCheck_alcotest.to_alcotest prop_solve_roundtrip;
      Alcotest.test_case "exact recovery" `Quick test_exact_recovery;
      Alcotest.test_case "perfect r-square" `Quick test_r_square_perfect;
      Alcotest.test_case "prediction clamped" `Quick test_prediction_clamped;
      Alcotest.test_case "ridge shrinks" `Quick test_ridge_shrinks;
      Alcotest.test_case "leave one out" `Quick test_leave_one_out;
      Alcotest.test_case "relative error" `Quick test_relative_error;
      Alcotest.test_case "standardized coefficients" `Quick
        test_standardized_coefficients;
      Alcotest.test_case "fit rejects empty" `Quick test_fit_rejects_empty;
      QCheck_alcotest.to_alcotest prop_r_square_bounded_below_one;
    ] )
