(* Region-level tolerance classification (Case 1 / Case 2). *)

open Helpers

let addr_of prog name =
  match Prog.find_symbol prog name with
  | Some s -> Loc.Mem s.Prog.sym_addr
  | None -> Alcotest.failf "symbol %s" name

(* region "mask" consumes x only through a shift, so a low-bit
   corruption of its input is absorbed: Case 1 *)
let masked_region_program () =
  let open Ast in
  main_program
    ~globals:[ DScalar ("x", Ty.I64); DScalar ("out", Ty.I64) ]
    [
      SAssign ("x", i 0b1100000);
      SRegion ("mask", 1, 5, [ SAssign ("out", v "x" >> i 5) ]);
      SPrint ("RESULT %d\n", [ v "out" ]);
    ]

let region_span t rid =
  match Region.find_instance t ~rid ~number:0 with
  | Some i -> (i.Region.lo, i.Region.hi)
  | None -> Alcotest.fail "region instance missing"

let test_case1_masked () =
  let prog = compile (masked_region_program ()) in
  let _, clean = run_traced prog in
  let lo, hi = region_span clean 0 in
  let x = addr_of prog "x" and out = addr_of prog "out" in
  let entry_seq = (Trace.get clean lo).Trace.seq in
  let addr = match x with Loc.Mem a -> a | Loc.Reg _ -> assert false in
  let fault = Machine.Flip_mem { seq = entry_seq; addr; bit = 2 } in
  let _, faulty = run_traced ~fault prog in
  match
    Tolerance.classify ~fault ~clean ~faulty ~inputs:[ x ] ~outputs:[ out ]
      ~lo ~hi ()
  with
  | Tolerance.Case1_masked -> ()
  | c -> Alcotest.failf "expected Case1, got %s" (Tolerance.to_string c)

let test_not_affected () =
  let prog = compile (masked_region_program ()) in
  let _, clean = run_traced prog in
  let lo, hi = region_span clean 0 in
  let x = addr_of prog "x" and out = addr_of prog "out" in
  (* no fault at all *)
  let _, faulty = run_traced prog in
  match
    Tolerance.classify ~clean ~faulty ~inputs:[ x ] ~outputs:[ out ] ~lo ~hi ()
  with
  | Tolerance.Not_affected -> ()
  | c -> Alcotest.failf "expected Not_affected, got %s" (Tolerance.to_string c)

(* region "damp" halves the error: x' = x/2 + c, so the error magnitude
   of a corrupted input shrinks across the region: Case 2 *)
let damping_region_program () =
  let open Ast in
  main_program
    ~globals:[ DScalar ("x", Ty.F64) ]
    [
      SAssign ("x", f 8.0);
      SRegion ("damp", 1, 5, [ SAssign ("x", (f 0.5 * v "x") + f 2.0) ]);
      SPrint ("RESULT %.17g\n", [ v "x" ]);
    ]

let test_case2_diminished () =
  let prog = compile (damping_region_program ()) in
  let _, clean = run_traced prog in
  let lo, hi = region_span clean 0 in
  let x = addr_of prog "x" in
  let addr = match x with Loc.Mem a -> a | Loc.Reg _ -> assert false in
  let entry_seq = (Trace.get clean lo).Trace.seq in
  (* mantissa corruption: 8.0 -> 8+eps *)
  let fault = Machine.Flip_mem { seq = entry_seq; addr; bit = 44 } in
  let _, faulty = run_traced ~fault prog in
  match
    Tolerance.classify ~fault ~clean ~faulty ~inputs:[ x ] ~outputs:[ x ] ~lo
      ~hi ()
  with
  | Tolerance.Case2_diminished { entry_mag; exit_mag } ->
      Alcotest.(check bool) "magnitude halved" true (exit_mag < entry_mag)
  | c -> Alcotest.failf "expected Case2, got %s" (Tolerance.to_string c)

(* region "amplify" doubles the error: Propagated *)
let test_propagated () =
  let prog =
    let open Ast in
    compile
      (main_program
         ~globals:[ DScalar ("x", Ty.F64) ]
         [
           SAssign ("x", f 1.0);
           SRegion ("amp", 1, 5, [ SAssign ("x", f 2.0 * v "x") ]);
           SPrint ("RESULT %.17g\n", [ v "x" ]);
         ])
  in
  let _, clean = run_traced prog in
  let lo, hi = region_span clean 0 in
  let x = addr_of prog "x" in
  let addr = match x with Loc.Mem a -> a | Loc.Reg _ -> assert false in
  let entry_seq = (Trace.get clean lo).Trace.seq in
  let fault = Machine.Flip_mem { seq = entry_seq; addr; bit = 40 } in
  let _, faulty = run_traced ~fault prog in
  match
    Tolerance.classify ~fault ~clean ~faulty ~inputs:[ x ] ~outputs:[ x ] ~lo
      ~hi ()
  with
  | Tolerance.Propagated _ -> ()
  (* 2x is relative-error preserving, so Case2 must NOT be reported *)
  | c -> Alcotest.failf "expected Propagated, got %s" (Tolerance.to_string c)

let test_magnitude_by_iteration_decreasing () =
  (* contraction toward 4: |error| decays geometrically per iteration *)
  let prog =
    let open Ast in
    compile
      (main_program
         ~globals:[ DScalar ("x", Ty.F64) ]
         [
           SAssign ("x", f 1.0);
           SFor
             ( "it",
               i 0,
               i 5,
               [
                 SMark "main_iter";
                 SAssign ("x", (f 0.5 * v "x") + f 2.0);
               ] );
           SPrint ("RESULT %.17g\n", [ v "x" ]);
         ])
  in
  let iter_mark = Prog.mark_id prog "main_iter" in
  let _, clean = run_traced ~iter_mark prog in
  let addr =
    match Prog.find_symbol prog "x" with
    | Some s -> s.Prog.sym_addr
    | None -> Alcotest.fail "no x"
  in
  let fault = Machine.Flip_mem { seq = 10; addr; bit = 48 } in
  let _, faulty = run_traced ~iter_mark ~fault prog in
  let rows = Tolerance.magnitude_by_iteration ~fault ~clean ~faulty ~addr () in
  Alcotest.(check bool) "several samples" true (List.length rows >= 3);
  let mags = List.map (fun (_, _, _, m) -> m) rows in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a >= b && decreasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "monotone decay" true
    (decreasing (List.filter (fun m -> Float.is_finite m) mags))

let suite =
  ( "tolerance",
    [
      Alcotest.test_case "case 1: masked" `Quick test_case1_masked;
      Alcotest.test_case "not affected" `Quick test_not_affected;
      Alcotest.test_case "case 2: diminished" `Quick test_case2_diminished;
      Alcotest.test_case "propagated" `Quick test_propagated;
      Alcotest.test_case "magnitude by iteration" `Quick
        test_magnitude_by_iteration_decreasing;
    ] )
