(* Trace serialization and exporters. *)

open Helpers

let event_equal (a : Trace.event) (b : Trace.event) =
  a.Trace.seq = b.Trace.seq && a.fidx = b.fidx && a.pc = b.pc && a.act = b.act
  && a.line = b.line && a.region = b.region && a.instance = b.instance
  && a.iter = b.iter && a.op = b.op
  && Array.length a.reads = Array.length b.reads
  && Array.length a.writes = Array.length b.writes
  && Array.for_all2
       (fun (l1, v1) (l2, v2) -> Loc.equal l1 l2 && Value.equal v1 v2)
       a.reads b.reads
  && Array.for_all2
       (fun (l1, v1) (l2, v2) -> Loc.equal l1 l2 && Value.equal v1 v2)
       a.writes b.writes

let test_event_roundtrip () =
  let prog = compile (two_region_program ()) in
  let _, t = run_traced prog in
  Trace.iter
    (fun e ->
      let buf = Buffer.create 128 in
      Trace_io.write_event buf e;
      let line = String.trim (Buffer.contents buf) in
      let e' = Trace_io.parse_event line in
      Alcotest.(check bool) "roundtrip" true (event_equal e e'))
    t

let test_trace_file_roundtrip () =
  let prog = compile (loop_program ~iters:3) in
  let _, t = run_traced ~iter_mark:0 prog in
  let path = Filename.temp_file "fliptracker" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_io.save path t;
      let t' = Trace_io.load path in
      Alcotest.(check int) "length" (Trace.length t) (Trace.length t');
      let ok = ref true in
      Trace.iteri
        (fun k e -> if not (event_equal e (Trace.get t' k)) then ok := false)
        t;
      Alcotest.(check bool) "all events" true !ok)

let test_split_by_region () =
  let prog = compile (loop_program ~iters:4) in
  let _, t = run_traced prog in
  let dir = Filename.temp_file "fliptracker" ".d" in
  Sys.remove dir;
  let files = Trace_io.split_by_region_instance ~dir t in
  Fun.protect
    ~finally:(fun () ->
      List.iter Sys.remove files;
      Sys.rmdir dir)
    (fun () ->
      (* the loop body region has four instances -> four files *)
      Alcotest.(check int) "one file per instance" 4 (List.length files);
      let inst = List.hd (Region.instances t) in
      let piece = Trace_io.load (List.hd files) in
      Alcotest.(check int) "piece size" (Region.size inst) (Trace.length piece))

let test_opclass_roundtrip () =
  let all =
    [
      Trace.OConst; Trace.OLoad; Trace.OStore; Trace.OJmp; Trace.OBr true;
      Trace.OBr false; Trace.OCall; Trace.ORet; Trace.OMark 3;
      Trace.OIntr "print:%12.6e"; Trace.OBin Op.Fadd; Trace.OBin Op.Ashr;
      Trace.OUn Op.Trunc32; Trace.OUn Op.Fsqrt;
    ]
  in
  List.iter
    (fun op ->
      Alcotest.(check bool) "opclass roundtrip" true
        (Trace_io.parse_opclass (Trace_io.opclass_code op) = op))
    all

let test_csv_export () =
  let csv = Export.series_to_csv [| (0, 1); (5, 3); (9, 0) |] in
  Alcotest.(check string) "csv" "instruction,acl\n0,1\n5,3\n9,0\n" csv

let test_csv_field_escaping () =
  (* RFC 4180: separators, quotes, and line breaks force quoting with
     embedded quotes doubled; plain fields pass through untouched *)
  Alcotest.(check string) "plain untouched" "acl" (Export.csv_field "acl");
  Alcotest.(check string) "comma quoted" "\"a,b\"" (Export.csv_field "a,b");
  Alcotest.(check string) "quote doubled" "\"say \"\"hi\"\"\""
    (Export.csv_field "say \"hi\"");
  Alcotest.(check string) "newline quoted" "\"two\nlines\""
    (Export.csv_field "two\nlines");
  Alcotest.(check string) "empty untouched" "" (Export.csv_field "");
  let csv =
    Export.series_to_csv ~header:("cycles, dynamic", "acl \"live\"")
      [| (1, 2) |]
  in
  Alcotest.(check string) "header escaped"
    "\"cycles, dynamic\",\"acl \"\"live\"\"\"\n1,2\n" csv

let test_svg_export () =
  let svg = Export.series_to_svg ~title:"t" [| (0, 1); (10, 5); (20, 0) |] in
  Alcotest.(check bool) "is svg" true
    (String.length svg > 100
    && String.equal (String.sub svg 0 4) "<svg"
    && String.equal (String.sub svg (String.length svg - 7) 6) "</svg>");
  (* empty series still renders a valid element *)
  let empty = Export.series_to_svg [||] in
  Alcotest.(check bool) "empty ok" true (String.length empty > 10)

let test_events_csv () =
  let prog = compile (two_region_program ()) in
  let _, clean = run_traced prog in
  let fault = Machine.Flip_write { seq = 10; bit = 7 } in
  let _, faulty = run_traced ~fault prog in
  let acl = Acl.analyze ~fault ~clean ~faulty () in
  let csv = Export.events_to_csv acl in
  Alcotest.(check bool) "header" true
    (String.length csv > 23
    && String.equal (String.sub csv 0 23) "kind,index,line,region\n");
  (* the overwrite deaths of this fault appear as rows *)
  Alcotest.(check bool) "has rows" true
    (List.length (String.split_on_char '\n' csv) > 2)

(* property: any traced program's serialized trace parses back *)
let prop_serialization_total =
  QCheck.Test.make ~count:15 ~name:"serialize/parse any loop trace"
    QCheck.(int_range 1 5)
    (fun iters ->
      let prog = compile (loop_program ~iters) in
      let _, t = run_traced prog in
      let buf = Buffer.create 4096 in
      Trace.iter (fun e -> Trace_io.write_event buf e) t;
      let lines =
        String.split_on_char '\n' (Buffer.contents buf)
        |> List.filter (fun s -> String.length s > 0)
      in
      List.length lines = Trace.length t
      && List.for_all
           (fun l ->
             match Trace_io.parse_event l with _ -> true)
           lines)

let suite =
  ( "io",
    [
      Alcotest.test_case "event roundtrip" `Quick test_event_roundtrip;
      Alcotest.test_case "trace file roundtrip" `Quick test_trace_file_roundtrip;
      Alcotest.test_case "split by region" `Quick test_split_by_region;
      Alcotest.test_case "opclass roundtrip" `Quick test_opclass_roundtrip;
      Alcotest.test_case "csv export" `Quick test_csv_export;
      Alcotest.test_case "csv field escaping" `Quick test_csv_field_escaping;
      Alcotest.test_case "svg export" `Quick test_svg_export;
      Alcotest.test_case "events csv" `Quick test_events_csv;
      QCheck_alcotest.to_alcotest prop_serialization_total;
    ] )
