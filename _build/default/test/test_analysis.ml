(* Region extraction, the access index, alignment, and the DDDG. *)

open Helpers

(* --- regions ----------------------------------------------------------- *)

let test_region_instances_two_regions () =
  let prog = compile (two_region_program ()) in
  let _, t = run_traced prog in
  let insts = Region.instances t in
  Alcotest.(check int) "two instances" 2 (List.length insts);
  match insts with
  | [ a; b ] ->
      Alcotest.(check int) "first region" 0 a.Region.rid;
      Alcotest.(check int) "second region" 1 b.Region.rid;
      Alcotest.(check bool) "ordered" true (a.Region.hi <= b.Region.lo)
  | _ -> Alcotest.fail "expected exactly two instances"

let test_region_instances_per_iteration () =
  let prog = compile (loop_program ~iters:5) in
  let _, t = run_traced ~iter_mark:0 prog in
  let insts = Region.instances_of t 0 in
  Alcotest.(check int) "one instance per iteration" 5 (List.length insts);
  List.iteri
    (fun k (inst : Region.instance) ->
      Alcotest.(check int) "instance number" k inst.Region.number;
      Alcotest.(check int) "iteration stamp" k inst.Region.iter)
    insts

let test_find_instance () =
  let prog = compile (loop_program ~iters:5) in
  let _, t = run_traced prog in
  (match Region.find_instance t ~rid:0 ~number:3 with
  | Some i -> Alcotest.(check int) "number" 3 i.Region.number
  | None -> Alcotest.fail "instance 3 missing");
  Alcotest.(check bool) "absent instance" true
    (Region.find_instance t ~rid:0 ~number:99 = None)

let test_iteration_spans () =
  let prog = compile (loop_program ~iters:4) in
  let _, t = run_traced ~iter_mark:(Prog.mark_id prog "main_iter") prog in
  let spans = Region.iteration_spans t in
  Alcotest.(check int) "four spans" 4 (List.length spans);
  (* spans are ordered, contiguous-ish, and non-empty *)
  List.iter
    (fun (_, (lo, hi)) -> Alcotest.(check bool) "non-empty" true (hi > lo))
    spans

(* --- access index -------------------------------------------------------- *)

(* a program with a clear liveness story:
     t is written, read once, then overwritten;
     dead is written and never read. *)
let liveness_program () =
  let open Ast in
  main_program
    ~globals:
      [ DScalar ("t", Ty.I64); DScalar ("dead", Ty.I64); DScalar ("r", Ty.I64) ]
    [
      SAssign ("t", i 1);
      SAssign ("dead", i 2);
      SAssign ("r", v "t" + i 10);
      SAssign ("t", i 3);
    ]

let addr_of prog name =
  match Prog.find_symbol prog name with
  | Some s -> Loc.Mem s.Prog.sym_addr
  | None -> Alcotest.failf "symbol %s" name

let test_fate_dies_after_read () =
  let prog = compile (liveness_program ()) in
  let _, t = run_traced prog in
  let access = Access.build t in
  let tloc = addr_of prog "t" in
  (* find the first write event of t *)
  let first_write = ref (-1) in
  Trace.iteri
    (fun k (e : Trace.event) ->
      if !first_write < 0
         && Array.exists (fun (l, _) -> Loc.equal l tloc) e.writes
      then first_write := k)
    t;
  match Access.fate access tloc ~after:!first_write with
  | `Dies_after_read (r, Some w) ->
      Alcotest.(check bool) "read then overwritten" true (r < w)
  | `Dies_after_read (_, None) -> Alcotest.fail "expected a following write"
  | `Overwritten_at _ | `Never_used -> Alcotest.fail "expected a read first"

let test_fate_never_used () =
  let prog = compile (liveness_program ()) in
  let _, t = run_traced prog in
  let access = Access.build t in
  let dead = addr_of prog "dead" in
  let w = ref (-1) in
  Trace.iteri
    (fun k (e : Trace.event) ->
      if !w < 0 && Array.exists (fun (l, _) -> Loc.equal l dead) e.writes then
        w := k)
    t;
  (match Access.fate access dead ~after:!w with
  | `Never_used -> ()
  | `Dies_after_read _ | `Overwritten_at _ -> Alcotest.fail "dead is dead");
  Alcotest.(check bool) "not alive" false (Access.alive access dead ~after:!w)

let test_read_written_in () =
  let prog = compile (liveness_program ()) in
  let _, t = run_traced prog in
  let access = Access.build t in
  let tloc = addr_of prog "t" in
  Alcotest.(check bool) "read somewhere" true
    (Access.read_in access tloc ~lo:0 ~hi:(Trace.length t));
  Alcotest.(check bool) "written somewhere" true
    (Access.written_in access tloc ~lo:0 ~hi:(Trace.length t))

(* --- alignment ------------------------------------------------------------ *)

let test_align_identical_runs () =
  let prog = compile (loop_program ~iters:3) in
  let _, t1 = run_traced prog in
  let _, t2 = run_traced prog in
  let steps = ref 0 in
  let div =
    Align.walk ~clean:t1 ~faulty:t2 (function
      | Align.Step _ -> incr steps
      | Align.Diverged _ | Align.End -> ())
  in
  Alcotest.(check bool) "no divergence" true (div = None);
  Alcotest.(check int) "all steps" (Trace.length t1) !steps

let test_align_detects_corruption_and_masking () =
  (* x is corrupted by a fault, then overwritten clean *)
  let prog =
    let open Ast in
    compile
      (main_program
         ~globals:[ DScalar ("x", Ty.I64); DScalar ("y", Ty.I64) ]
         [
           SAssign ("x", i 1);
           SAssign ("y", v "x" + i 1);
           SAssign ("x", i 7);
         ])
  in
  let _, clean = run_traced prog in
  (* corrupt the first store's value *)
  let store_seq = ref (-1) in
  Trace.iter
    (fun (e : Trace.event) ->
      if !store_seq < 0 && e.op = Trace.OStore then store_seq := e.seq)
    clean;
  let fault = Machine.Flip_write { seq = !store_seq; bit = 5 } in
  let _, faulty = run_traced ~fault prog in
  let w = Align.create ~fault ~clean ~faulty () in
  let xloc = addr_of prog "x" in
  let saw_corrupted = ref false in
  let rec drive () =
    match Align.step w with
    | Align.Step _ ->
        if Align.is_corrupted w xloc then saw_corrupted := true;
        drive ()
    | Align.Diverged _ -> Alcotest.fail "no divergence expected"
    | Align.End -> ()
  in
  drive ();
  Alcotest.(check bool) "x was corrupted" true !saw_corrupted;
  Alcotest.(check bool) "x clean at end (overwritten)" false
    (Align.is_corrupted w xloc)

let test_align_divergence () =
  (* flipping the condition operand changes the branch direction *)
  let prog =
    let open Ast in
    compile
      (main_program
         ~globals:[ DScalar ("x", Ty.I64); DScalar ("r", Ty.I64) ]
         [
           SAssign ("x", i 0);
           SIf (v "x" = i 0, [ SAssign ("r", i 1) ], [ SAssign ("r", i 2) ]);
         ])
  in
  let _, clean = run_traced prog in
  (* corrupt the comparison's result *)
  let cmp_seq = ref (-1) in
  Trace.iter
    (fun (e : Trace.event) ->
      match e.op with
      | Trace.OBin Op.Eq when !cmp_seq < 0 -> cmp_seq := e.seq
      | _ -> ())
    clean;
  let fault = Machine.Flip_write { seq = !cmp_seq; bit = 0 } in
  let _, faulty = run_traced ~fault prog in
  let div = Align.walk ~fault ~clean ~faulty (fun _ -> ()) in
  Alcotest.(check bool) "control divergence detected" true (div <> None)

(* --- DDDG ----------------------------------------------------------------- *)

let test_dddg_inputs_outputs () =
  let prog = compile (two_region_program ()) in
  let _, t = run_traced prog in
  let access = Access.build t in
  let insts = Region.instances t in
  let produce = List.nth insts 0 in
  let g = Dddg.build t access ~lo:produce.Region.lo ~hi:produce.Region.hi in
  let a = addr_of prog "a" and b = addr_of prog "b" in
  let t_addr = addr_of prog "t" in
  let input_locs = List.map (fun (n : Dddg.node) -> n.Dddg.loc) g.Dddg.inputs in
  Alcotest.(check bool) "a is an input" true (List.exists (Loc.equal a) input_locs);
  Alcotest.(check bool) "b is an input" true (List.exists (Loc.equal b) input_locs);
  let out_locs = List.map (fun (n : Dddg.node) -> n.Dddg.loc) g.Dddg.outputs in
  Alcotest.(check bool) "t is an output (read by consume)" true
    (List.exists (Loc.equal t_addr) out_locs)

let test_dddg_mem_addr_helpers () =
  let prog = compile (two_region_program ()) in
  let _, t = run_traced prog in
  let access = Access.build t in
  let produce = List.hd (Region.instances t) in
  let g = Dddg.build t access ~lo:produce.Region.lo ~hi:produce.Region.hi in
  let t_sym = match Prog.find_symbol prog "t" with Some s -> s.Prog.sym_addr | None -> -1 in
  Alcotest.(check bool) "t among output addrs" true
    (List.mem t_sym (Dddg.output_mem_addrs g));
  Alcotest.(check bool) "inputs non-empty" true (Dddg.input_mem_addrs g <> [])

let test_dddg_edges_and_dot () =
  let prog = compile (two_region_program ()) in
  let _, t = run_traced prog in
  let access = Access.build t in
  let produce = List.hd (Region.instances t) in
  let g = Dddg.build t access ~lo:produce.Region.lo ~hi:produce.Region.hi in
  Alcotest.(check bool) "has edges" true (g.Dddg.edges <> []);
  Alcotest.(check bool) "internal count consistent" true
    (Dddg.internal_count g
     = Array.length g.Dddg.nodes - List.length g.Dddg.inputs
       - List.length g.Dddg.outputs);
  let dot = Dddg.to_dot g in
  Alcotest.(check bool) "dot text" true
    (String.length dot > 20
     && String.equal (String.sub dot 0 7) "digraph")

(* versions increase monotonically per location *)
let prop_dddg_versions =
  QCheck.Test.make ~count:20 ~name:"dddg node versions are per-location monotone"
    QCheck.(int_range 1 5)
    (fun iters ->
      let prog = compile (loop_program ~iters) in
      let _, t = run_traced prog in
      let access = Access.build t in
      match Region.instances t with
      | [] -> true
      | inst :: _ ->
          let g = Dddg.build t access ~lo:inst.Region.lo ~hi:inst.Region.hi in
          let seen : (Loc.t, int) Hashtbl.t = Hashtbl.create 16 in
          Array.for_all
            (fun (n : Dddg.node) ->
              let prev =
                match Hashtbl.find_opt seen n.Dddg.loc with
                | Some v -> v
                | None -> -1
              in
              Hashtbl.replace seen n.Dddg.loc n.Dddg.version;
              n.Dddg.version > prev)
            g.Dddg.nodes)

let suite =
  ( "analysis",
    [
      Alcotest.test_case "region instances" `Quick test_region_instances_two_regions;
      Alcotest.test_case "instances per iteration" `Quick
        test_region_instances_per_iteration;
      Alcotest.test_case "find instance" `Quick test_find_instance;
      Alcotest.test_case "iteration spans" `Quick test_iteration_spans;
      Alcotest.test_case "fate: dies after read" `Quick test_fate_dies_after_read;
      Alcotest.test_case "fate: never used" `Quick test_fate_never_used;
      Alcotest.test_case "read/written in range" `Quick test_read_written_in;
      Alcotest.test_case "align identical runs" `Quick test_align_identical_runs;
      Alcotest.test_case "align corruption + overwrite" `Quick
        test_align_detects_corruption_and_masking;
      Alcotest.test_case "align divergence" `Quick test_align_divergence;
      Alcotest.test_case "dddg inputs/outputs" `Quick test_dddg_inputs_outputs;
      Alcotest.test_case "dddg address helpers" `Quick test_dddg_mem_addr_helpers;
      Alcotest.test_case "dddg edges and dot" `Quick test_dddg_edges_and_dot;
      QCheck_alcotest.to_alcotest prop_dddg_versions;
    ] )
