(* Differential testing of the compiler + VM pipeline: generate random
   mini-C programs over a trap-free subset of the language, evaluate
   them with a direct OCaml interpreter of the AST, and require the
   compiled program's final memory to match bit for bit. *)

(* --- a reference interpreter for the generated subset ------------------- *)

type env = (string, Value.t) Hashtbl.t

let rec eval_expr (env : env) (e : Ast.expr) : Value.t =
  match e with
  | Ast.Int n -> n
  | Ast.Flt x -> Value.of_float x
  | Ast.Var v -> ( match Hashtbl.find_opt env v with Some x -> x | None -> 0L)
  | Ast.Bin (op, a, b) -> eval_bin env op a b
  | Ast.Un (op, a) -> eval_un env op a
  | Ast.Idx _ | Ast.CallE _ | Ast.Randlc _ | Ast.MpiRank | Ast.MpiSize
  | Ast.MpiRecv _ | Ast.MpiAllreduce _ ->
      failwith "outside the generated subset"

and eval_bin env op a b =
  let va = eval_expr env a and vb = eval_expr env b in
  let fop g = Value.of_float (g (Value.to_float va) (Value.to_float vb)) in
  let is_float =
    (* the generator keeps both operand types equal; floats are tagged
       by construction below *)
    match (a, b) with
    | (Ast.Flt _, _ | _, Ast.Flt _) -> true
    | _ -> false
  in
  ignore is_float;
  match op with
  | Ast.Add -> Int64.add va vb
  | Ast.Sub -> Int64.sub va vb
  | Ast.Mul -> Int64.mul va vb
  | Ast.AndB -> Int64.logand va vb
  | Ast.OrB -> Int64.logor va vb
  | Ast.XorB -> Int64.logxor va vb
  | Ast.Shl -> Int64.shift_left va (Int64.to_int vb land 63)
  | Ast.Shr -> Int64.shift_right va (Int64.to_int vb land 63)
  | Ast.Eq -> Value.truth (Int64.equal va vb)
  | Ast.Ne -> Value.truth (not (Int64.equal va vb))
  | Ast.Lt -> Value.truth (Int64.compare va vb < 0)
  | Ast.Le -> Value.truth (Int64.compare va vb <= 0)
  | Ast.Gt -> Value.truth (Int64.compare va vb > 0)
  | Ast.Ge -> Value.truth (Int64.compare va vb >= 0)
  | Ast.Min -> if Int64.compare va vb <= 0 then va else vb
  | Ast.Max -> if Int64.compare va vb >= 0 then va else vb
  | Ast.Div | Ast.Rem -> ignore fop; failwith "generator avoids division"

and eval_un env op a =
  let va = eval_expr env a in
  match op with
  | Ast.Neg -> Int64.neg va
  | Ast.NotB -> Int64.lognot va
  | Ast.Trunc32 -> Int64.shift_right (Int64.shift_left va 32) 32
  | Ast.ToFloat -> Value.of_float (Int64.to_float va)
  | Ast.Sqrt | Ast.Abs | Ast.Sin | Ast.Cos | Ast.ToInt | Ast.F32 ->
      failwith "outside the integer subset"

(* float expressions are evaluated separately, over float variables *)
let rec eval_fexpr (env : env) (e : Ast.expr) : float =
  match e with
  | Ast.Flt x -> x
  | Ast.Var v -> (
      match Hashtbl.find_opt env v with
      | Some x -> Value.to_float x
      | None -> 0.0)
  | Ast.Bin (Ast.Add, a, b) -> eval_fexpr env a +. eval_fexpr env b
  | Ast.Bin (Ast.Sub, a, b) -> eval_fexpr env a -. eval_fexpr env b
  | Ast.Bin (Ast.Mul, a, b) -> eval_fexpr env a *. eval_fexpr env b
  | Ast.Bin (Ast.Min, a, b) -> Float.min (eval_fexpr env a) (eval_fexpr env b)
  | Ast.Bin (Ast.Max, a, b) -> Float.max (eval_fexpr env a) (eval_fexpr env b)
  | Ast.Un (Ast.Neg, a) -> -.eval_fexpr env a
  | _ -> failwith "outside the float subset"

let rec eval_stmt (env : env) (s : Ast.stmt) ~(is_float : string -> bool) :
    unit =
  match s with
  | Ast.SAssign (v, e) ->
      let value =
        if is_float v then Value.of_float (eval_fexpr env e)
        else eval_expr env e
      in
      Hashtbl.replace env v value
  | Ast.SIf (c, bt, bf) ->
      if Value.is_true (eval_expr env c) then
        List.iter (eval_stmt env ~is_float) bt
      else List.iter (eval_stmt env ~is_float) bf
  | Ast.SFor (v, lo, hi, body) ->
      let lo = Value.to_int (eval_expr env lo) in
      let rec loop k =
        Hashtbl.replace env v (Value.of_int k);
        (* C-style: the bound re-evaluates each iteration, but the
           generator only emits constant bounds *)
        let hi = Value.to_int (eval_expr env hi) in
        if k < hi then begin
          List.iter (eval_stmt env ~is_float) body;
          (* the compiled loop increments the stored variable *)
          let cur = Value.to_int (Hashtbl.find env v) in
          loop (cur + 1)
        end
      in
      loop lo
  | _ -> failwith "outside the generated subset"

(* --- the generator -------------------------------------------------------- *)

let ivars = [ "a"; "b"; "c"; "d" ]
let fvars = [ "x"; "y"; "z" ]

let gen_iexpr : Ast.expr QCheck.Gen.t =
  let open QCheck.Gen in
  sized
  @@ fix (fun self n ->
         if n <= 0 then
           oneof
             [
               map (fun k -> Ast.Int (Int64.of_int k)) (int_range (-100) 100);
               map (fun v -> Ast.Var v) (oneofl ivars);
             ]
         else
           let sub = self (n / 2) in
           oneof
             [
               map (fun k -> Ast.Int (Int64.of_int k)) (int_range (-100) 100);
               map (fun v -> Ast.Var v) (oneofl ivars);
               map3
                 (fun op a b -> Ast.Bin (op, a, b))
                 (oneofl
                    [
                      Ast.Add; Ast.Sub; Ast.Mul; Ast.AndB; Ast.OrB; Ast.XorB;
                      Ast.Eq; Ast.Ne; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge; Ast.Min;
                      Ast.Max;
                    ])
                 sub sub;
               (* bounded shift amounts *)
               map2
                 (fun a k -> Ast.Bin (Ast.Shl, a, Ast.Int (Int64.of_int k)))
                 sub (int_range 0 8);
               map2
                 (fun a k -> Ast.Bin (Ast.Shr, a, Ast.Int (Int64.of_int k)))
                 sub (int_range 0 8);
               map (fun a -> Ast.Un (Ast.Neg, a)) sub;
               map (fun a -> Ast.Un (Ast.NotB, a)) sub;
               map (fun a -> Ast.Un (Ast.Trunc32, a)) sub;
             ])

let gen_fexpr : Ast.expr QCheck.Gen.t =
  let open QCheck.Gen in
  sized
  @@ fix (fun self n ->
         if n <= 0 then
           oneof
             [
               map (fun x -> Ast.Flt (Float.of_int x /. 8.0)) (int_range (-64) 64);
               map (fun v -> Ast.Var v) (oneofl fvars);
             ]
         else
           let sub = self (n / 2) in
           oneof
             [
               map (fun v -> Ast.Var v) (oneofl fvars);
               map3
                 (fun op a b -> Ast.Bin (op, a, b))
                 (oneofl [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Min; Ast.Max ])
                 sub sub;
               map (fun a -> Ast.Un (Ast.Neg, a)) sub;
             ])

let gen_stmt : Ast.stmt QCheck.Gen.t =
  let open QCheck.Gen in
  let assign =
    oneof
      [
        map2 (fun v e -> Ast.SAssign (v, e)) (oneofl ivars) (gen_iexpr |> map Fun.id);
        map2 (fun v e -> Ast.SAssign (v, e)) (oneofl fvars) (gen_fexpr |> map Fun.id);
      ]
  in
  oneof
    [
      assign;
      (* a conditional over integer state *)
      map3
        (fun c a b -> Ast.SIf (c, [ a ], [ b ]))
        gen_iexpr assign assign;
      (* a small counted loop of assignments *)
      map2
        (fun k body -> Ast.SFor ("i", Ast.Int 0L, Ast.Int (Int64.of_int k), body))
        (int_range 1 4)
        (list_size (int_range 1 3) assign);
    ]

let gen_program : Ast.stmt list QCheck.Gen.t =
  QCheck.Gen.(list_size (int_range 1 12) gen_stmt)

(* --- the differential property ------------------------------------------- *)

let is_float v = List.mem v fvars

let run_both (stmts : Ast.stmt list) : (string * Value.t * Value.t) list =
  let prog_ast : Ast.program =
    {
      Ast.globals =
        List.map (fun v -> Ast.DScalar (v, Ty.I64)) ivars
        @ List.map (fun v -> Ast.DScalar (v, Ty.F64)) fvars
        @ [ Ast.DScalar ("i", Ty.I64) ];
      funs =
        [ { Ast.fname = "main"; params = []; ret = None; locals = []; body = stmts } ];
      entry = "main";
    }
  in
  let prog = Compile.compile prog_ast in
  let r = Machine.run_plain ~budget:5_000_000 prog in
  (match r.Machine.outcome with
  | Machine.Finished -> ()
  | Machine.Trapped m -> failwith ("vm trapped on trap-free subset: " ^ m)
  | Machine.Budget_exceeded -> failwith "vm hung on bounded program");
  let env : env = Hashtbl.create 16 in
  List.iter (eval_stmt env ~is_float) stmts;
  List.map
    (fun v ->
      let vm_value =
        match Prog.find_symbol prog v with
        | Some s -> r.Machine.mem.(s.Prog.sym_addr)
        | None -> 0L
      in
      let ref_value =
        match Hashtbl.find_opt env v with Some x -> x | None -> 0L
      in
      (v, vm_value, ref_value))
    (ivars @ fvars)

let prop_differential =
  QCheck.Test.make ~count:400 ~name:"compiled = interpreted on random programs"
    (QCheck.make ~print:(fun stmts ->
         Printf.sprintf "<%d statements>" (List.length stmts))
       gen_program)
    (fun stmts ->
      List.for_all
        (fun (_, vm_value, ref_value) -> Int64.equal vm_value ref_value)
        (run_both stmts))

(* a fixed regression program exercising every generated construct *)
let test_fixed_program () =
  let open Ast in
  let stmts =
    [
      SAssign ("a", i 7);
      SAssign ("b", (v "a" << i 3) ^| i 0x55);
      SFor ("i", i 0, i 3, [ SAssign ("c", v "c" + v "b" + v "i") ]);
      SIf (v "c" > i 100, [ SAssign ("d", neg (v "c")) ], [ SAssign ("d", trunc32 (v "c")) ]);
      SAssign ("x", f 1.5);
      SAssign ("y", (v "x" * f 4.0) - f 0.25);
      SAssign ("z", Bin (Max, v "x", v "y"));
    ]
  in
  List.iter
    (fun (name, vm_value, ref_value) ->
      Alcotest.(check int64) name ref_value vm_value)
    (run_both stmts)

let suite =
  ( "differential",
    [
      Alcotest.test_case "fixed program" `Quick test_fixed_program;
      QCheck_alcotest.to_alcotest prop_differential;
    ] )
