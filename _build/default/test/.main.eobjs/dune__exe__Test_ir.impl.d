test/test_ir.ml: Alcotest Array Ast Compile Fmt Helpers Instr Loc Op Option Prog QCheck QCheck_alcotest String Ty Value
