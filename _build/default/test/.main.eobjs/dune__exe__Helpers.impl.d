test/helpers.ml: Alcotest Array Ast Compile Machine Prog Trace Ty Value
