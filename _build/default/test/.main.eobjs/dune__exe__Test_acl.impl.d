test/test_acl.ml: Acl Alcotest Array Ast Helpers List Machine QCheck QCheck_alcotest Trace Ty
