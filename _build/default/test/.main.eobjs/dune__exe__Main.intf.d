test/main.mli:
