test/test_predict.ml: Alcotest Array Float Gen Linalg List QCheck QCheck_alcotest Regression Rng
