test/test_apps.ml: Alcotest App Array Cg Dc Is Kmeans List Lu Lulesh Machine Mg Printf Prog Region Registry Static_detect String Value
