test/test_machine.ml: Alcotest App Ast Cg Dc Helpers Instr Is List Machine Op Prog QCheck QCheck_alcotest String Trace Ty Value
