test/test_tolerance.ml: Alcotest Ast Float Helpers List Loc Machine Prog Region Tolerance Trace Ty
