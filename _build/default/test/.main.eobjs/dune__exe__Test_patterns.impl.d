test/test_patterns.ml: Access Acl Alcotest App Array Ast Dynamic_detect Float Helpers List Pattern Printf Rates Registry Static_detect String Ty
