test/test_patterns.ml: Access Acl Alcotest Array Ast Dynamic_detect Float Helpers List Pattern Rates Static_detect String Ty
