test/test_static.ml: Alcotest App Array Ast Cfg Fmt Helpers Instr List Liveness Op Prog Reaching Registry Static_detect String Ty Verify Vuln
