test/test_io.ml: Acl Alcotest Array Buffer Export Filename Fun Helpers List Loc Machine Op QCheck QCheck_alcotest Region String Sys Trace Trace_io Value
