test/test_io.ml: Acl Alcotest Array Buffer Char Export Filename Fun Helpers Int64 List Loc Machine Op Printexc Printf Prog QCheck QCheck_alcotest Region String Sys Trace Trace_io Unix Value
