test/test_harden.ml: Alcotest App Array Ast Campaign Effort Fliptracker Fmt Harden Harden_eval Helpers Instr List Machine Op Pass Passes Printf Prog Registry Splice String Ty Vuln
