test/test_stream.ml: Access Acl Alcotest App Array Cg Filename Fun Helpers List Loc Machine Mg Prog Region Sys Trace Trace_io
