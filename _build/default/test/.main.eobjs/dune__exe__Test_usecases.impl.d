test/test_usecases.ml: Access Alcotest App Array Campaign Cg Float List Machine Printf Rates Registry Regression
