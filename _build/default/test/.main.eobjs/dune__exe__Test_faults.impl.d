test/test_faults.ml: Access Alcotest App Array Ast Campaign Fun Helpers Int64 List Machine QCheck QCheck_alcotest Region Rng Stats Stdlib Ty
