test/test_faults.ml: Access Alcotest App Array Ast Campaign Filename Fun Hashtbl Helpers Int64 List Machine Prog QCheck QCheck_alcotest Region Rng Stats Stdlib String Sys Ty Unix
