test/test_differential.ml: Alcotest Array Ast Compile Float Fun Hashtbl Int64 List Machine Printf Prog QCheck QCheck_alcotest Ty Value
