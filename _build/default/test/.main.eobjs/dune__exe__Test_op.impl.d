test/test_op.ml: Alcotest Float Int64 Op QCheck QCheck_alcotest Value
