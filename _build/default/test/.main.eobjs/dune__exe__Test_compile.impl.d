test/test_compile.ml: Alcotest App Array Ast Compile Helpers List Machine Prog Registry Ty Value
