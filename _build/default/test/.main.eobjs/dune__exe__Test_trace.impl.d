test/test_trace.ml: Alcotest Array Ast Hashtbl Helpers Loc Machine Op Prog Trace Ty
