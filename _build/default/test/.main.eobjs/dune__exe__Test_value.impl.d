test/test_value.ml: Alcotest Float Int64 List QCheck QCheck_alcotest Value
