test/test_runtime.ml: Alcotest Array Csexp Executor Filename Float Fun Hashtbl Journal List Pool Printf QCheck QCheck_alcotest String Sys Unix Watchdog
