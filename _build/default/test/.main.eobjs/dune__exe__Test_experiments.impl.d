test/test_experiments.ml: Acl Alcotest Array Bt Campaign Dc Effort Experiments Fliptracker Float Fmt Is List Lu Lulesh Machine Mg Rates String
