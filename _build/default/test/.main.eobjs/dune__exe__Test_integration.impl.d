test/test_integration.ml: Access Acl Alcotest App Ast Campaign Dddg Fliptracker Fmt Helpers Is List Loc Machine Mg Op Printf Prog Region Registry String Tolerance Trace Ty
