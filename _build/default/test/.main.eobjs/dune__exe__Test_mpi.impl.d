test/test_mpi.ml: Alcotest App Array Ast Comm Compile Demo Helpers Machine Runner Ty Value
