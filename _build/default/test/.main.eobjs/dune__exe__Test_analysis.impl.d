test/test_analysis.ml: Access Alcotest Align Array Ast Dddg Hashtbl Helpers List Loc Machine Op Prog QCheck QCheck_alcotest Region String Trace Ty
