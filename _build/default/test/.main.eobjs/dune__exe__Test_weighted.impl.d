test/test_weighted.ml: Access Alcotest App Array Ast Dc Float Helpers Is List Rates Trace Ty Value Weighted_rates
