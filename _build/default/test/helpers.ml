(* Shared mini-programs and utilities for the test suites. *)

let compile = Compile.compile

(* single main function with the given locals and body *)
let main_program ?(globals = []) ?(funs = []) ?(locals = []) body : Ast.program
    =
  {
    Ast.globals;
    funs =
      funs
      @ [ { Ast.fname = "main"; params = []; ret = None; locals; body } ];
    entry = "main";
  }

let run ?fault ?trace ?(iter_mark = -1) ?(budget = 10_000_000) prog =
  Machine.run prog
    { Machine.default_config with fault; trace; iter_mark; budget }

let run_traced ?fault ?(iter_mark = -1) prog =
  let t = Trace.create () in
  let r = run ?fault ~trace:t ~iter_mark prog in
  (r, t)

(* read a named global scalar out of a final memory image *)
let mem_scalar (prog : Prog.t) (r : Machine.result) name : Value.t =
  match Prog.find_symbol prog name with
  | Some s -> r.Machine.mem.(s.Prog.sym_addr)
  | None -> Alcotest.failf "no symbol %s" name

let mem_float prog r name = Value.to_float (mem_scalar prog r name)
let mem_int prog r name = Value.to_int (mem_scalar prog r name)

let check_finished (r : Machine.result) =
  match r.Machine.outcome with
  | Machine.Finished -> ()
  | Machine.Trapped m -> Alcotest.failf "unexpected trap: %s" m
  | Machine.Budget_exceeded -> Alcotest.fail "unexpected budget exhaustion"

(* a program with two regions: region "produce" computes t = a+b into a
   temporary, region "consume" stores t*2 into out; used by the
   analysis tests *)
let two_region_program () : Ast.program =
  let open Ast in
  main_program
    ~globals:
      [
        DScalar ("a", Ty.F64);
        DScalar ("b", Ty.F64);
        DScalar ("t", Ty.F64);
        DScalar ("out", Ty.F64);
      ]
    [
      SAssign ("a", f 1.5);
      SAssign ("b", f 2.5);
      SRegion ("produce", 10, 20, [ SAssign ("t", v "a" + v "b") ]);
      SRegion ("consume", 30, 40, [ SAssign ("out", v "t" * f 2.0) ]);
      SPrint ("RESULT %.17g\n", [ v "out" ]);
    ]

(* a loop program with an iteration marker and one region per iteration *)
let loop_program ~(iters : int) : Ast.program =
  let open Ast in
  main_program
    ~globals:[ DScalar ("acc", Ty.F64) ]
    [
      SAssign ("acc", f 0.0);
      SFor
        ( "it",
          i 0,
          i iters,
          [
            SMark "main_iter";
            SRegion
              ("body", 1, 9, [ SAssign ("acc", v "acc" + to_float (v "it")) ]);
          ] );
      SPrint ("RESULT %.17g\n", [ v "acc" ]);
    ]
