(* Bit-accurate value semantics. *)

let check_f = Alcotest.(check (float 0.0))

let test_int_roundtrip () =
  List.iter
    (fun i -> Alcotest.(check int) "roundtrip" i Value.(to_int (of_int i)))
    [ 0; 1; -1; 42; max_int; min_int ]

let test_float_roundtrip () =
  List.iter
    (fun x ->
      check_f "roundtrip" x Value.(to_float (of_float x)))
    [ 0.0; 1.0; -1.0; 3.14159; 1e-300; 1e300; Float.min_float ]

let test_float_bits_exact () =
  (* the pattern is the IEEE-754 encoding, not a rounding of it *)
  Alcotest.(check int64)
    "bits of 1.0" 0x3FF0000000000000L
    (Value.of_float 1.0)

let test_truth () =
  Alcotest.(check bool) "true" true (Value.is_true (Value.truth true));
  Alcotest.(check bool) "false" false (Value.is_true (Value.truth false));
  Alcotest.(check bool) "nonzero" true (Value.is_true 77L)

let test_flip_known () =
  Alcotest.(check int64) "bit 0" 1L (Value.flip_bit 0L 0);
  Alcotest.(check int64) "bit 63" Int64.min_int (Value.flip_bit 0L 63);
  Alcotest.(check int64) "clear" 0L (Value.flip_bit 4L 2)

let test_flip_out_of_range () =
  Alcotest.check_raises "bit 64" (Invalid_argument "Value.flip_bit: bit out of range")
    (fun () -> ignore (Value.flip_bit 0L 64));
  Alcotest.check_raises "bit -1" (Invalid_argument "Value.flip_bit: bit out of range")
    (fun () -> ignore (Value.flip_bit 0L (-1)))

let test_flip_float_mantissa () =
  (* a low-mantissa flip perturbs a double only slightly *)
  let x = Value.of_float 1.0 in
  let y = Value.to_float (Value.flip_bit x 0) in
  Alcotest.(check bool) "tiny change" true (Float.abs (y -. 1.0) < 1e-15 && y <> 1.0)

let test_flip_float_exponent () =
  (* an exponent flip changes the magnitude drastically *)
  let x = Value.of_float 1.0 in
  let y = Value.to_float (Value.flip_bit x 62) in
  Alcotest.(check bool) "huge change" true (Float.abs y > 1e100 || Float.abs y < 1e-100)

let test_hamming () =
  Alcotest.(check int) "zero" 0 (Value.hamming_distance 5L 5L);
  Alcotest.(check int) "one" 1 (Value.hamming_distance 0L 8L);
  Alcotest.(check int) "all" 64 (Value.hamming_distance 0L (-1L))

let test_error_magnitude () =
  let em c f =
    Value.error_magnitude ~correct:(Value.of_float c) ~faulty:(Value.of_float f)
  in
  check_f "equal" 0.0 (em 2.0 2.0);
  check_f "half" 0.5 (em 2.0 1.0);
  Alcotest.(check bool) "zero correct" true (Float.is_integer (em 0.0 1.0) = false || em 0.0 1.0 = Float.infinity);
  Alcotest.(check bool) "nan" true (Float.is_nan (em Float.nan 1.0))

(* properties *)

let prop_flip_involution =
  QCheck.Test.make ~count:500 ~name:"flip twice is identity"
    QCheck.(pair int64 (int_bound 63))
    (fun (v, b) -> Int64.equal v (Value.flip_bit (Value.flip_bit v b) b))

let prop_flip_hamming_one =
  QCheck.Test.make ~count:500 ~name:"flip changes exactly one bit"
    QCheck.(pair int64 (int_bound 63))
    (fun (v, b) -> Value.hamming_distance v (Value.flip_bit v b) = 1)

let prop_hamming_symmetric =
  QCheck.Test.make ~count:500 ~name:"hamming is symmetric"
    QCheck.(pair int64 int64)
    (fun (a, b) -> Value.hamming_distance a b = Value.hamming_distance b a)

let prop_error_magnitude_nonneg =
  QCheck.Test.make ~count:500 ~name:"error magnitude is nonnegative or nan"
    QCheck.(pair float float)
    (fun (c, f) ->
      let m =
        Value.error_magnitude ~correct:(Value.of_float c)
          ~faulty:(Value.of_float f)
      in
      Float.is_nan m || m >= 0.0)

let suite =
  ( "value",
    [
      Alcotest.test_case "int roundtrip" `Quick test_int_roundtrip;
      Alcotest.test_case "float roundtrip" `Quick test_float_roundtrip;
      Alcotest.test_case "float bits exact" `Quick test_float_bits_exact;
      Alcotest.test_case "truth" `Quick test_truth;
      Alcotest.test_case "flip known bits" `Quick test_flip_known;
      Alcotest.test_case "flip out of range" `Quick test_flip_out_of_range;
      Alcotest.test_case "flip float mantissa" `Quick test_flip_float_mantissa;
      Alcotest.test_case "flip float exponent" `Quick test_flip_float_exponent;
      Alcotest.test_case "hamming" `Quick test_hamming;
      Alcotest.test_case "error magnitude" `Quick test_error_magnitude;
      QCheck_alcotest.to_alcotest prop_flip_involution;
      QCheck_alcotest.to_alcotest prop_flip_hamming_one;
      QCheck_alcotest.to_alcotest prop_hamming_symmetric;
      QCheck_alcotest.to_alcotest prop_error_magnitude_nonneg;
    ] )
