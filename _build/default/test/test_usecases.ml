(* The paper's two use cases, tested end to end at reduced scale:
   hardening CG improves the targeted resilience (Use Case 1), and the
   regression pipeline behaves sanely on real app data (Use Case 2). *)

(* soft errors in the global v/iv arrays while sprnvc executes: the
   corruption Use Case 1's transformation protects against *)
let sprnvc_memory_target (app : App.t) : Campaign.target =
  let _, trace = App.trace app in
  Campaign.memory_during_function_target (App.program app) trace
    ~fname:"sprnvc" ~vars:[ "v"; "iv" ]

let run_campaign (app : App.t) (target : Campaign.target) ~(trials : int) :
    Campaign.counts =
  let clean, _ = App.trace app in
  Campaign.run (App.program app) ~verify:(App.verify app)
    ~clean_instructions:clean.Machine.instructions
    ~cfg:
      { Campaign.default_config with max_trials = Some trials; budget_factor = 8 }
    target

(* Use Case 1: faults inside sprnvc are tolerated far more often in the
   hardened variant, where v/iv corruption is overwritten by copy-back
   and temporary corruption dies *)
let test_dcl_hardening_improves_sprnvc_resilience () =
  let trials = 120 in
  let base = run_campaign Cg.app (sprnvc_memory_target Cg.app) ~trials in
  let hard =
    run_campaign Cg.app_hardened_dcl
      (sprnvc_memory_target Cg.app_hardened_dcl)
      ~trials
  in
  let rb = Campaign.success_rate base and rh = Campaign.success_rate hard in
  Alcotest.(check bool)
    (Printf.sprintf "hardened sprnvc is more resilient (%.2f -> %.2f)" rb rh)
    true
    (rh > rb)

(* the hardened variants do not change the fault-free answer class: the
   programs still converge and verify, and the DCL variant computes the
   exact same zeta *)
let test_hardening_preserves_results () =
  let z_base = App.reference_value Cg.app in
  let z_dcl = App.reference_value Cg.app_hardened_dcl in
  Alcotest.(check (float 0.0)) "dcl variant: identical zeta" z_base z_dcl;
  (* the truncation variant changes the arithmetic (the truncated
     window zeroes small p.q contributions), so its zeta differs, but
     it must still be a converged value of the right form:
     zeta = shift + 1/(x.z) with a positive, finite correction *)
  let z_tr = App.reference_value Cg.app_hardened_trunc in
  Alcotest.(check bool) "trunc variant converged" true
    (Float.is_finite z_tr && z_tr > Cg.shift && z_tr < Cg.shift +. 15.0)

(* the hardened variant costs almost nothing at runtime (Table III:
   < 0.1% in the paper; we allow 5% for a VM-level comparison) *)
let test_hardening_is_cheap () =
  let instrs (app : App.t) =
    (App.reference app).Machine.instructions
  in
  let base = instrs Cg.app and dcl = instrs Cg.app_hardened_dcl in
  Alcotest.(check bool)
    (Printf.sprintf "instruction overhead small (%d vs %d)" base dcl)
    true
    (float_of_int (abs (dcl - base)) /. float_of_int base < 0.05)

(* Use Case 2 plumbing on real rates: the model fit on the ten apps'
   rates yields in-range LOO predictions *)
let test_regression_on_app_rates () =
  let rates =
    List.map
      (fun (app : App.t) ->
        let _, trace = App.trace app in
        Rates.compute trace (Access.build trace))
      Registry.all
  in
  let x = Array.of_list (List.map Rates.to_vector rates) in
  (* synthetic but rate-derived target, to test the pipeline shape
     without a full campaign *)
  let y = Array.map (fun row -> Float.min 1.0 (0.3 +. row.(5) /. 2.0)) x in
  let loo = Regression.leave_one_out ~lambda:1e-4 x y in
  Array.iter
    (fun p -> Alcotest.(check bool) "in [0,1]" true (p >= 0.0 && p <= 1.0))
    loo

(* every app accepts at least one fault (no app is reported as having
   zero resilience: the paper's whole point is that natural resilience
   exists everywhere) *)
let test_no_app_is_fully_fragile () =
  List.iter
    (fun (app : App.t) ->
      let clean, trace = App.trace app in
      let prog = App.program app in
      let counts =
        Campaign.run prog ~verify:(App.verify app)
          ~clean_instructions:clean.Machine.instructions
          ~cfg:
            {
              Campaign.default_config with
              max_trials = Some 30;
              budget_factor = 8;
            }
          (Campaign.whole_program_target prog trace)
      in
      Alcotest.(check bool)
        (app.App.name ^ " tolerates some faults")
        true
        (counts.Campaign.success > 0))
    Registry.all

let suite =
  ( "usecases",
    [
      Alcotest.test_case "UC1: DCL hardening helps sprnvc" `Slow
        test_dcl_hardening_improves_sprnvc_resilience;
      Alcotest.test_case "UC1: results preserved" `Slow
        test_hardening_preserves_results;
      Alcotest.test_case "UC1: hardening is cheap" `Slow test_hardening_is_cheap;
      Alcotest.test_case "UC2: regression on app rates" `Slow
        test_regression_on_app_rates;
      Alcotest.test_case "natural resilience exists" `Slow
        test_no_app_is_fully_fragile;
    ] )
