(* RNG, statistics, and fault-injection campaigns. *)

open Helpers

(* --- rng ---------------------------------------------------------------- *)

let test_rng_determinism () =
  let a = Rng.create ~seed:99 and b = Rng.create ~seed:99 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  Alcotest.(check bool) "different streams" true
    (not (Int64.equal (Rng.next_int64 a) (Rng.next_int64 b)))

let test_rng_int_range () =
  let rng = Rng.create ~seed:5 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_covers () =
  (* all residues of a small bound appear in a reasonable sample *)
  let rng = Rng.create ~seed:3 in
  let seen = Array.make 8 false in
  for _ = 1 to 500 do
    seen.(Rng.int rng 8) <- true
  done;
  Alcotest.(check bool) "all residues hit" true (Array.for_all Fun.id seen)

let test_rng_float_range () =
  let rng = Rng.create ~seed:8 in
  for _ = 1 to 1000 do
    let x = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_rng_split_independent () =
  let a = Rng.create ~seed:4 in
  let b = Rng.split a in
  Alcotest.(check bool) "fork diverges" true
    (not (Int64.equal (Rng.next_int64 a) (Rng.next_int64 b)))

let prop_rng_int_bounds =
  QCheck.Test.make ~count:300 ~name:"Rng.int respects any positive bound"
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Rng.create ~seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

(* --- stats --------------------------------------------------------------- *)

let test_sample_size_known_values () =
  (* the classic 95%/3% and 99%/1% designs over a large population *)
  let n95 = Stats.sample_size ~population:10_000_000 ~confidence:0.95 ~margin:0.03 in
  Alcotest.(check bool) "95/3 ~ 1067" true (abs (n95 - 1067) <= 2);
  let n99 = Stats.sample_size ~population:10_000_000 ~confidence:0.99 ~margin:0.01 in
  Alcotest.(check bool) "99/1 ~ 16587" true (abs (n99 - 16587) <= 30)

let test_sample_size_small_population () =
  Alcotest.(check int) "capped at population" 10
    (Stats.sample_size ~population:10 ~confidence:0.95 ~margin:0.03);
  Alcotest.(check int) "empty population" 0
    (Stats.sample_size ~population:0 ~confidence:0.95 ~margin:0.03)

let test_sample_size_monotone_in_margin () =
  let n margin = Stats.sample_size ~population:1_000_000 ~confidence:0.95 ~margin in
  Alcotest.(check bool) "tighter margin needs more samples" true
    (n 0.01 > n 0.03 && n 0.03 > n 0.10)

let test_wilson_interval () =
  let lo, hi = Stats.wilson_interval ~successes:60 ~trials:100 ~confidence:0.95 in
  Alcotest.(check bool) "contains p-hat" true (lo <= 0.6 && 0.6 <= hi);
  Alcotest.(check bool) "proper bounds" true (0.0 <= lo && hi <= 1.0 && lo < hi);
  let lo0, hi0 = Stats.wilson_interval ~successes:0 ~trials:0 ~confidence:0.95 in
  Alcotest.(check bool) "vacuous" true (lo0 = 0.0 && hi0 = 1.0)

let test_mean_stddev () =
  Alcotest.(check (float 1e-12)) "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  Alcotest.(check (float 1e-12)) "stddev" 1.0 (Stats.stddev [| 1.0; 2.0; 3.0 |]);
  Alcotest.(check (float 0.0)) "empty mean" 0.0 (Stats.mean [||])

let prop_wilson_shrinks_with_trials =
  QCheck.Test.make ~count:100 ~name:"wilson interval narrows with more trials"
    QCheck.(int_range 1 500)
    (fun trials ->
      let w t =
        let lo, hi = Stats.wilson_interval ~successes:(t / 2) ~trials:t ~confidence:0.95 in
        hi -. lo
      in
      w (4 * trials) <= w trials +. 1e-9)

(* --- campaign ------------------------------------------------------------ *)

(* a program whose RESULT is insensitive to its dead variable: flips
   targeted at the dead store must all verify *)
let dead_store_program () =
  let open Ast in
  main_program
    ~globals:[ DScalar ("dead", Ty.F64); DScalar ("live", Ty.F64) ]
    [
      SRegion ("deadr", 1, 2, [ SAssign ("dead", f 42.0) ]);
      SRegion ("liver", 3, 4, [ SAssign ("live", f 1.0) ]);
      SPrint ("RESULT %.17g\nVERIFIED %d\n", [ v "live"; i 1 ]);
    ]

let test_campaign_dead_region_fully_resilient () =
  let prog = compile (dead_store_program ()) in
  let r, t = run_traced prog in
  let inst =
    match Region.find_instance t ~rid:0 ~number:0 with
    | Some i -> i
    | None -> Alcotest.fail "region"
  in
  let target = Campaign.internal_target prog t inst in
  let counts =
    Campaign.run prog
      ~verify:(fun res -> App.verified res.Machine.output)
      ~clean_instructions:r.Machine.instructions
      ~cfg:{ Campaign.default_config with max_trials = Some 50 }
      target
  in
  (* value flips on the dead store are fully masked; flips on its
     address computation may trap (wild store), but none may produce
     silent data corruption *)
  Alcotest.(check int) "no SDC" 0 counts.Campaign.failed;
  Alcotest.(check bool) "mostly masked" true
    (Stdlib.( >= ) (2 * counts.Campaign.success) counts.Campaign.trials)

let test_campaign_classifies_crashes () =
  (* faults on an address computation can crash; the campaign must
     classify, not raise *)
  let prog =
    let open Ast in
    compile
      (main_program
         ~globals:[ DArr ("a", Ty.F64, [ 4 ]); DScalar ("s", Ty.F64) ]
         [
           SRegion
             ( "r",
               1,
               9,
               [
                 SAssign ("s", f 0.0);
                 SFor
                   ( "j",
                     i 0,
                     i 4,
                     [
                       SStore ("a", [ v "j" ], to_float (v "j"));
                       SAssign ("s", v "s" + idx1 "a" (v "j"));
                     ] );
               ] );
           SPrint ("RESULT %.17g\nVERIFIED %d\n", [ v "s"; i 1 ]);
         ])
  in
  let r, t = run_traced prog in
  let inst = List.hd (Region.instances t) in
  let target = Campaign.internal_target prog t inst in
  let counts =
    Campaign.run prog
      ~verify:(fun res -> App.verified res.Machine.output)
      ~clean_instructions:r.Machine.instructions
      ~cfg:{ Campaign.default_config with max_trials = Some 80 }
      target
  in
  Alcotest.(check int) "all trials accounted" counts.Campaign.trials
    (counts.Campaign.success + counts.Campaign.failed + counts.Campaign.crashed);
  Alcotest.(check bool) "some trials ran" true (counts.Campaign.trials > 0)

let test_population_counts_typed_bits () =
  let prog =
    let open Ast in
    compile
      (main_program
         ~globals:[ DScalar ("x", Ty.I64); DScalar ("yf", Ty.F64) ]
         [
           SRegion
             ("r", 1, 2, [ SAssign ("x", i 1); SAssign ("yf", f 1.0) ]);
           SPrint ("RESULT %d\n", [ v "x" ]);
         ])
  in
  let _, t = run_traced prog in
  let inst = List.hd (Region.instances t) in
  let target = Campaign.internal_target prog t inst in
  (* integer destinations count 32 bits, float destinations 64 *)
  let pop = Campaign.target_population target in
  Alcotest.(check bool) "mixed widths" true (pop > 0 && pop mod 32 = 0)

let test_input_target_types () =
  let prog = compile (two_region_program ()) in
  let _, t = run_traced prog in
  let access = Access.build t in
  let consume = List.nth (Region.instances t) 1 in
  match Campaign.input_target prog t access consume with
  | Campaign.Input { sites; _ } ->
      Alcotest.(check bool) "inputs exist" true (Array.length sites > 0);
      Array.iter
        (fun (s : Campaign.input_site) ->
          Alcotest.(check bool) "width is 32 or 64" true
            (s.Campaign.bits = 32 || s.Campaign.bits = 64))
        sites
  | Campaign.Internal _ | Campaign.Mem_over_time _ ->
      Alcotest.fail "expected Input target"

let test_success_rate () =
  let c = { Campaign.success = 3; failed = 1; crashed = 1; trials = 5 } in
  Alcotest.(check (float 1e-12)) "rate" 0.6 (Campaign.success_rate c);
  Alcotest.(check (float 0.0)) "empty" 0.0 (Campaign.success_rate Campaign.zero_counts)

let test_sampling_is_seeded () =
  let prog = compile (dead_store_program ()) in
  let _, t = run_traced prog in
  let inst = List.hd (Region.instances t) in
  let target = Campaign.internal_target prog t inst in
  let f1 = Campaign.sample_fault (Rng.create ~seed:7) target in
  let f2 = Campaign.sample_fault (Rng.create ~seed:7) target in
  Alcotest.(check bool) "same seed, same fault" true (f1 = f2)

let suite =
  ( "faults",
    [
      Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
      Alcotest.test_case "rng seed sensitivity" `Quick test_rng_seed_sensitivity;
      Alcotest.test_case "rng int range" `Quick test_rng_int_range;
      Alcotest.test_case "rng int coverage" `Quick test_rng_int_covers;
      Alcotest.test_case "rng float range" `Quick test_rng_float_range;
      Alcotest.test_case "rng split" `Quick test_rng_split_independent;
      QCheck_alcotest.to_alcotest prop_rng_int_bounds;
      Alcotest.test_case "sample size known" `Quick test_sample_size_known_values;
      Alcotest.test_case "sample size small population" `Quick
        test_sample_size_small_population;
      Alcotest.test_case "sample size monotone" `Quick
        test_sample_size_monotone_in_margin;
      Alcotest.test_case "wilson interval" `Quick test_wilson_interval;
      Alcotest.test_case "mean/stddev" `Quick test_mean_stddev;
      QCheck_alcotest.to_alcotest prop_wilson_shrinks_with_trials;
      Alcotest.test_case "dead region fully resilient" `Quick
        test_campaign_dead_region_fully_resilient;
      Alcotest.test_case "campaign classifies crashes" `Quick
        test_campaign_classifies_crashes;
      Alcotest.test_case "typed population" `Quick test_population_counts_typed_bits;
      Alcotest.test_case "input target types" `Quick test_input_target_types;
      Alcotest.test_case "success rate" `Quick test_success_rate;
      Alcotest.test_case "seeded sampling" `Quick test_sampling_is_seeded;
    ] )
