(* Masking-probability-weighted pattern rates (the paper's future-work
   refinement). *)

open Helpers

let test_shift_weight_monotone () =
  Alcotest.(check bool) "more shift, more masking" true
    (Weighted_rates.shift_weight 8L > Weighted_rates.shift_weight 2L);
  Alcotest.(check (float 0.0)) "zero shift masks nothing" 0.0
    (Weighted_rates.shift_weight 0L);
  Alcotest.(check bool) "bounded" true (Weighted_rates.shift_weight 63L <= 1.0)

let test_compare_weight_margin () =
  let w_far =
    Weighted_rates.compare_weight ~is_float:false (Value.of_int 1000000)
      (Value.of_int 0)
  in
  let w_near =
    Weighted_rates.compare_weight ~is_float:false (Value.of_int 3)
      (Value.of_int 0)
  in
  Alcotest.(check bool) "wide margins mask more" true (w_far > w_near);
  Alcotest.(check (float 0.0)) "equal operands mask nothing" 0.0
    (Weighted_rates.compare_weight ~is_float:false (Value.of_int 5)
       (Value.of_int 5))

let test_compare_weight_float () =
  let w =
    Weighted_rates.compare_weight ~is_float:true (Value.of_float 100.0)
      (Value.of_float 1.0)
  in
  Alcotest.(check bool) "in [0,1]" true (w >= 0.0 && w <= 1.0);
  Alcotest.(check bool) "wide float margin masks" true (w > 0.5);
  Alcotest.(check (float 0.0)) "nan masks nothing" 0.0
    (Weighted_rates.compare_weight ~is_float:true (Value.of_float Float.nan)
       (Value.of_float 1.0))

let test_fptosi_weight () =
  (* small values drop nearly the whole mantissa; huge values keep it *)
  let small = Weighted_rates.fptosi_weight (Value.of_float 1.5) in
  let large = Weighted_rates.fptosi_weight (Value.of_float 1e15) in
  Alcotest.(check bool) "small drops more" true (small > large);
  Alcotest.(check bool) "bounded" true (small <= 1.0 && large >= 0.0)

let test_print_weight () =
  let w6 = Weighted_rates.print_weight "%12.6e" in
  let w12 = Weighted_rates.print_weight "%.12e" in
  Alcotest.(check bool) "fewer digits mask more" true (w6 > w12);
  Alcotest.(check (float 0.0)) "%d masks nothing" 0.0
    (Weighted_rates.print_weight "%d")

let test_compute_bounds () =
  List.iter
    (fun (app : App.t) ->
      let _, trace = App.trace app in
      let w = Weighted_rates.compute trace (Access.build trace) in
      Array.iter
        (fun x ->
          Alcotest.(check bool)
            (app.App.name ^ " weighted rate bounded")
            true
            (Float.is_finite x && x >= 0.0))
        (Weighted_rates.to_vector w))
    [ Is.app; Dc.app ]

let test_weighted_le_unweighted () =
  (* each instance contributes at most 1, so a weighted rate never
     exceeds its unweighted counterpart for shift/truncation *)
  let _, trace = App.trace Dc.app in
  let access = Access.build trace in
  let u = Rates.compute trace access in
  let w = Weighted_rates.compute trace access in
  Alcotest.(check bool) "shift" true (w.Weighted_rates.w_shift <= u.Rates.shift +. 1e-12);
  Alcotest.(check bool) "truncation" true
    (w.Weighted_rates.w_truncation <= u.Rates.truncation +. 1e-12)

let test_shifty_program_weights () =
  let prog =
    let open Ast in
    compile
      (main_program
         ~globals:[ DScalar ("x", Ty.I64); DScalar ("a", Ty.I64); DScalar ("b", Ty.I64) ]
         [
           SAssign ("x", i 0xF0F0);
           SAssign ("a", v "x" >> i 12);
           SAssign ("b", v "x" >> i 1);
         ])
  in
  let _, t = run_traced prog in
  let w = Weighted_rates.compute t (Access.build t) in
  (* two shifts: 12/32 + 1/32 over the instruction count *)
  Alcotest.(check bool) "positive" true (w.Weighted_rates.w_shift > 0.0);
  Alcotest.(check (float 1e-9)) "weighted sum"
    ((12.0 /. 32.0) +. (1.0 /. 32.0))
    (w.Weighted_rates.w_shift *. Float.of_int (Trace.length t))

let suite =
  ( "weighted",
    [
      Alcotest.test_case "shift weight monotone" `Quick test_shift_weight_monotone;
      Alcotest.test_case "compare weight margin" `Quick test_compare_weight_margin;
      Alcotest.test_case "compare weight float" `Quick test_compare_weight_float;
      Alcotest.test_case "fptosi weight" `Quick test_fptosi_weight;
      Alcotest.test_case "print weight" `Quick test_print_weight;
      Alcotest.test_case "compute bounds" `Quick test_compute_bounds;
      Alcotest.test_case "weighted <= unweighted" `Quick test_weighted_le_unweighted;
      Alcotest.test_case "shifty program" `Quick test_shifty_program_weights;
    ] )
