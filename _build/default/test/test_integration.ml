(* Cross-module integration and failure-path coverage. *)

open Helpers

(* a fault that crashes the run mid-way: the faulty trace is a strict
   prefix, and alignment reports divergence rather than raising *)
let test_align_with_crashing_fault () =
  let prog =
    let open Ast in
    compile
      (main_program
         ~globals:[ DArr ("a", Ty.F64, [ 4 ]); DScalar ("s", Ty.F64) ]
         [
           SFor ("j", i 0, i 4, [ SStore ("a", [ v "j" ], f 1.0) ]);
           SAssign ("s", idx1 "a" (i 2));
           SPrint ("RESULT %g\n", [ v "s" ]);
         ])
  in
  let _, clean = run_traced prog in
  (* find an address-computation write (the Add feeding a store) and
     blast its high bit: guaranteed wild store *)
  let seq = ref (-1) in
  Trace.iter
    (fun (e : Trace.event) ->
      if !seq < 0 && e.op = Trace.OBin Op.Add then seq := e.seq)
    clean;
  let fault = Machine.Flip_write { seq = !seq; bit = 62 } in
  let r, faulty = run_traced ~fault prog in
  (match r.Machine.outcome with
  | Machine.Trapped _ -> ()
  | Machine.Finished | Machine.Budget_exceeded ->
      Alcotest.fail "expected the wild store to trap");
  Alcotest.(check bool) "faulty trace shorter" true
    (Trace.length faulty < Trace.length clean);
  let acl = Acl.analyze ~fault ~clean ~faulty () in
  Alcotest.(check bool) "prefix analyzed, divergence reported" true
    (acl.Acl.divergence <> None)

let test_acl_reports_control_divergence_position () =
  let prog =
    let open Ast in
    compile
      (main_program
         ~globals:[ DScalar ("x", Ty.I64); DScalar ("r", Ty.I64) ]
         [
           SAssign ("x", i 1);
           SIf (v "x" > i 0, [ SAssign ("r", i 1) ], [ SAssign ("r", i 2) ]);
         ])
  in
  let _, clean = run_traced prog in
  (* flip the sign bit of x: the branch flips *)
  let seq = ref (-1) in
  Trace.iter
    (fun (e : Trace.event) ->
      if !seq < 0 && e.op = Trace.OStore then seq := e.seq)
    clean;
  let fault = Machine.Flip_write { seq = !seq; bit = 63 } in
  let _, faulty = run_traced ~fault prog in
  let acl = Acl.analyze ~fault ~clean ~faulty () in
  match acl.Acl.divergence with
  | Some i -> Alcotest.(check bool) "after the fault" true (i > !seq)
  | None -> Alcotest.fail "expected control divergence"

let test_campaign_deterministic () =
  let app = Is.app in
  let clean, trace = App.trace app in
  let prog = App.program app in
  let cfg = { Campaign.default_config with max_trials = Some 25 } in
  let run () =
    Campaign.run prog ~verify:(App.verify app)
      ~clean_instructions:clean.Machine.instructions ~cfg
      (Campaign.whole_program_target prog trace)
  in
  let a = run () and b = run () in
  Alcotest.(check int) "same successes" a.Campaign.success b.Campaign.success;
  Alcotest.(check int) "same crashes" a.Campaign.crashed b.Campaign.crashed

let test_budget_boundary () =
  let prog = compile (loop_program ~iters:1) in
  let full = Machine.run_plain prog in
  (* exactly enough budget: finishes; one less: hang *)
  let just_enough =
    run ~budget:full.Machine.instructions prog
  in
  Alcotest.(check bool) "exact budget finishes" true
    (just_enough.Machine.outcome = Machine.Finished);
  let one_short = run ~budget:(full.Machine.instructions - 1) prog in
  Alcotest.(check bool) "one short hangs" true
    (one_short.Machine.outcome = Machine.Budget_exceeded)

(* classify an MG region input injection end to end through the
   tolerance machinery *)
let test_mg_region_tolerance_classification () =
  let app = Mg.app in
  let _, clean = App.trace app in
  let prog = App.program app in
  let access = Access.build clean in
  let rid = (Prog.region_by_name prog "mg_d").Prog.rid in
  match Region.find_instance clean ~rid ~number:0 with
  | None -> Alcotest.fail "mg_d instance"
  | Some inst ->
      let g = Dddg.build clean access ~lo:inst.Region.lo ~hi:inst.Region.hi in
      let inputs = List.map (fun a -> Loc.Mem a) (Dddg.input_mem_addrs g) in
      let outputs = List.map (fun a -> Loc.Mem a) (Dddg.output_mem_addrs g) in
      Alcotest.(check bool) "inputs found" true (inputs <> []);
      let entry_seq = (Trace.get clean inst.Region.lo).Trace.seq in
      let addr =
        match List.hd inputs with Loc.Mem a -> a | Loc.Reg _ -> assert false
      in
      let fault = Machine.Flip_mem { seq = entry_seq; addr; bit = 44 } in
      let _, faulty =
        App.trace_with_fault app fault ~budget:10_000_000
      in
      let c =
        Tolerance.classify ~fault ~clean ~faulty ~inputs ~outputs
          ~lo:inst.Region.lo ~hi:inst.Region.hi ()
      in
      (* any classification is acceptable; Not_affected is not, since we
         corrupted an input directly *)
      Alcotest.(check bool)
        (Printf.sprintf "classified (%s)" (Tolerance.to_string c))
        true
        (match c with
        | Tolerance.Not_affected -> false
        | Tolerance.Case1_masked | Tolerance.Case2_diminished _
        | Tolerance.Propagated _ | Tolerance.Diverged ->
            true)

let test_registry_names_unique () =
  (* cg_variants deliberately repeats the CG baseline, so dedup the
     union before checking: every remaining name must be unique *)
  let names =
    List.map (fun (a : App.t) -> a.App.name) (Registry.all @ Registry.cg_variants)
    |> List.sort_uniq compare
  in
  Alcotest.(check int) "all + 3 hardened variants"
    (List.length Registry.all + 3)
    (List.length names);
  List.iter
    (fun (a : App.t) ->
      Alcotest.(check bool) "analyzed is a subset of all" true
        (List.exists (fun (b : App.t) -> String.equal a.App.name b.App.name)
           Registry.all))
    Registry.analyzed

(* the facade round trip on a masked fault *)
let test_facade_masked_fault_verifies () =
  (* flip a dead temporary in IS setup: must verify *)
  let app = Is.app in
  let _, trace = App.trace app in
  (* take the very first Const write (setup), bit 0: usually masked or
     overwritten; we only require a classified, printable report *)
  let e = Trace.get trace 0 in
  let report =
    Fliptracker.inject_and_analyze app
      (Machine.Flip_write { seq = e.Trace.seq; bit = 0 })
  in
  Alcotest.(check bool) "printable" true
    (String.length (Fmt.str "%a" Fliptracker.pp_injection_report report) > 10)

let suite =
  ( "integration",
    [
      Alcotest.test_case "align with crashing fault" `Quick
        test_align_with_crashing_fault;
      Alcotest.test_case "acl divergence position" `Quick
        test_acl_reports_control_divergence_position;
      Alcotest.test_case "campaign deterministic" `Slow test_campaign_deterministic;
      Alcotest.test_case "budget boundary" `Quick test_budget_boundary;
      Alcotest.test_case "mg region tolerance" `Slow
        test_mg_region_tolerance_classification;
      Alcotest.test_case "registry names" `Quick test_registry_names_unique;
      Alcotest.test_case "facade masked fault" `Slow test_facade_masked_fault_verifies;
    ] )
