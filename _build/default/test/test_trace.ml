(* Trace events: structure, region/instance/iteration stamping. *)

open Helpers

let test_event_counts () =
  let prog = compile (two_region_program ()) in
  let r, t = run_traced prog in
  check_finished r;
  (* the trace also carries synthetic call-return events, so it can be
     slightly longer than the executed-instruction count, never shorter *)
  Alcotest.(check bool) "events cover instructions" true
    (Trace.length t >= r.Machine.instructions)

let test_reads_and_writes_recorded () =
  let prog =
    let open Ast in
    compile
      (main_program
         ~globals:[ DScalar ("x", Ty.I64) ]
         [ SAssign ("x", i 3 + i 4) ])
  in
  let _, t = run_traced prog in
  let found = ref false in
  Trace.iter
    (fun (e : Trace.event) ->
      match e.op with
      | Trace.OBin Op.Add ->
          found := true;
          Alcotest.(check int) "two reads" 2 (Array.length e.reads);
          Alcotest.(check int) "one write" 1 (Array.length e.writes);
          Alcotest.(check int64) "sum value" 7L (snd e.writes.(0))
      | _ -> ())
    t;
  Alcotest.(check bool) "add event present" true !found

let test_store_event_shape () =
  let prog =
    let open Ast in
    compile
      (main_program
         ~globals:[ DArr ("a", Ty.I64, [ 2 ]) ]
         [ SStore ("a", [ i 1 ], i 9) ])
  in
  let _, t = run_traced prog in
  let ok = ref false in
  Trace.iter
    (fun (e : Trace.event) ->
      if e.op = Trace.OStore then begin
        ok := true;
        match e.writes with
        | [| (Loc.Mem _, v) |] -> Alcotest.(check int64) "stored" 9L v
        | _ -> Alcotest.fail "store writes one memory word"
      end)
    t;
  Alcotest.(check bool) "store event" true !ok

let test_region_stamping () =
  let prog = compile (two_region_program ()) in
  let _, t = run_traced prog in
  let regions = Hashtbl.create 4 in
  Trace.iter
    (fun (e : Trace.event) ->
      if e.region >= 0 then Hashtbl.replace regions e.region ())
    t;
  Alcotest.(check int) "both regions appear" 2 (Hashtbl.length regions)

let test_region_inherited_through_calls () =
  let callee =
    let open Ast in
    {
      Ast.fname = "work"; params = []; ret = Some Ty.F64; locals = [];
      body = [ SRet (Some (f 1.0 + f 2.0)) ];
    }
  in
  let prog =
    compile
      (main_program ~funs:[ callee ]
         ~globals:[ DScalar ("x", Ty.F64) ]
         [ SRegion ("r", 1, 2, [ SAssign ("x", CallE ("work", [])) ]) ])
  in
  let _, t = run_traced prog in
  (* the callee's fadd executes with the caller's region *)
  let ok = ref false in
  Trace.iter
    (fun (e : Trace.event) ->
      if e.op = Trace.OBin Op.Fadd && e.region = 0 then ok := true)
    t;
  Alcotest.(check bool) "inherited region" true !ok

let test_iteration_stamping () =
  let prog = compile (loop_program ~iters:3) in
  let _, t = run_traced ~iter_mark:(Prog.mark_id prog "main_iter") prog in
  let max_iter = Trace.fold (fun a (e : Trace.event) -> max a e.iter) (-1) t in
  Alcotest.(check int) "iterations stamped" 2 max_iter

let test_control_signature () =
  let prog = compile (loop_program ~iters:2) in
  let _, t1 = run_traced prog in
  let _, t2 = run_traced prog in
  Alcotest.(check int) "same length" (Trace.length t1) (Trace.length t2);
  let same = ref true in
  Trace.iteri
    (fun k e ->
      if Trace.control_signature e <> Trace.control_signature (Trace.get t2 k)
      then same := false)
    t1;
  Alcotest.(check bool) "deterministic control path" true !same

let test_slice_bounds () =
  let prog = compile (loop_program ~iters:2) in
  let _, t = run_traced prog in
  Alcotest.(check int) "slice size" 5 (Array.length (Trace.slice t 3 8));
  Alcotest.check_raises "bad slice" (Invalid_argument "Trace.slice") (fun () ->
      ignore (Trace.slice t 5 (Trace.length t + 1)))

let suite =
  ( "trace",
    [
      Alcotest.test_case "event counts" `Quick test_event_counts;
      Alcotest.test_case "reads and writes" `Quick test_reads_and_writes_recorded;
      Alcotest.test_case "store event shape" `Quick test_store_event_shape;
      Alcotest.test_case "region stamping" `Quick test_region_stamping;
      Alcotest.test_case "region inherited through calls" `Quick
        test_region_inherited_through_calls;
      Alcotest.test_case "iteration stamping" `Quick test_iteration_stamping;
      Alcotest.test_case "control signature" `Quick test_control_signature;
      Alcotest.test_case "slice bounds" `Quick test_slice_bounds;
    ] )
