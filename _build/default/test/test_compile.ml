(* Compiler lowering: expressions, control flow, arrays, calls, the
   region/mark/symbol metadata, and rejection of ill-typed programs. *)

open Helpers

let expr_result (e : Ast.expr) (ty : Ty.t) : Value.t =
  let prog =
    let open Ast in
    compile
      (main_program
         ~globals:[ (match ty with Ty.F64 -> DScalar ("r", Ty.F64) | I64 -> DScalar ("r", Ty.I64)) ]
         [ SAssign ("r", e) ])
  in
  let r = run prog in
  check_finished r;
  mem_scalar prog r "r"

let test_arith_lowering () =
  let open Ast in
  Alcotest.(check int64) "int expr" 14L
    (expr_result ((i 2 + i 3) * i 4 - i 6) Ty.I64);
  Alcotest.(check (float 1e-12)) "float expr" 2.0
    (Value.to_float (expr_result (sqrt_ (f 16.0) / f 2.0) Ty.F64));
  Alcotest.(check int64) "precedence-free tree" 10L
    (expr_result (i 100 / (i 2 * i 5)) Ty.I64)

let test_comparison_results () =
  let open Ast in
  Alcotest.(check int64) "lt" 1L (expr_result (i 1 < i 2) Ty.I64);
  Alcotest.(check int64) "combined" 1L
    (expr_result (Bin (AndB, i 1 < i 2, i 3 > i 2)) Ty.I64)

let test_for_loop () =
  let prog =
    let open Ast in
    compile
      (main_program
         ~globals:[ DScalar ("s", Ty.I64) ]
         [
           SAssign ("s", i 0);
           SFor ("j", i 0, i 10, [ SAssign ("s", v "s" + v "j") ]);
         ])
  in
  let r = run prog in
  check_finished r;
  Alcotest.(check int) "sum 0..9" 45 (mem_int prog r "s")

let test_for_step () =
  let prog =
    let open Ast in
    compile
      (main_program
         ~globals:[ DScalar ("s", Ty.I64) ]
         [
           SAssign ("s", i 0);
           SForStep ("j", i 0, i 10, i 3, [ SAssign ("s", v "s" + v "j") ]);
         ])
  in
  let r = run prog in
  Alcotest.(check int) "0+3+6+9" 18 (mem_int prog r "s")

let test_while_loop () =
  let prog =
    let open Ast in
    compile
      (main_program
         ~globals:[ DScalar ("n", Ty.I64); DScalar ("c", Ty.I64) ]
         [
           SAssign ("n", i 100);
           SAssign ("c", i 0);
           SWhile
             ( v "n" > i 1,
               [
                 SIf
                   ( Bin (AndB, v "n", i 1) = i 0,
                     [ SAssign ("n", v "n" / i 2) ],
                     [ SAssign ("n", (i 3 * v "n") + i 1) ] );
                 SAssign ("c", v "c" + i 1);
               ] );
         ])
  in
  let r = run prog in
  Alcotest.(check int) "collatz steps of 100" 25 (mem_int prog r "c")

let test_if_branches () =
  let open Ast in
  let branchy cond =
    let prog =
      compile
        (main_program
           ~globals:[ DScalar ("r", Ty.I64) ]
           [ SIf (cond, [ SAssign ("r", i 1) ], [ SAssign ("r", i 2) ]) ])
    in
    mem_int prog (run prog) "r"
  in
  Alcotest.(check int) "then" 1 (branchy Ast.(i 3 < i 5));
  Alcotest.(check int) "else" 2 (branchy Ast.(i 5 < i 3))

let test_array_row_major () =
  let prog =
    let open Ast in
    compile
      (main_program
         ~globals:[ DArr ("a", Ty.I64, [ 3; 4 ]); DScalar ("r", Ty.I64) ]
         [
           SFor
             ( "j",
               i 0,
               i 3,
               [
                 SFor
                   ( "k",
                     i 0,
                     i 4,
                     [ SStore ("a", [ v "j"; v "k" ], (v "j" * i 10) + v "k") ]
                   );
               ] );
           SAssign ("r", idx2 "a" (i 2) (i 3));
         ])
  in
  let r = run prog in
  Alcotest.(check int) "a[2][3]" 23 (mem_int prog r "r");
  (* the symbol table agrees with the lowered layout *)
  let addr = Prog.addr_of_element prog "a" [ 2; 3 ] in
  Alcotest.(check int) "symbol addressing" 23
    (Value.to_int r.Machine.mem.(addr))

let test_function_call_scalar () =
  let open Ast in
  let sq =
    {
      Ast.fname = "square";
      params = [ { pname = "x"; pty = Ty.F64; parr = false; pdims = [] } ];
      ret = Some Ty.F64;
      locals = [];
      body = [ SRet (Some (v "x" * v "x")) ];
    }
  in
  let prog =
    compile
      (main_program ~funs:[ sq ]
         ~globals:[ DScalar ("r", Ty.F64) ]
         [ SAssign ("r", CallE ("square", [ f 3.0 ]) + f 1.0) ])
  in
  Alcotest.(check (float 1e-12)) "square(3)+1" 10.0 (mem_float prog (run prog) "r")

let test_function_call_array_param () =
  let open Ast in
  let sum =
    {
      Ast.fname = "sum3";
      params = [ { pname = "xs"; pty = Ty.F64; parr = true; pdims = [] } ];
      ret = Some Ty.F64;
      locals = [ DScalar ("acc", Ty.F64) ];
      body =
        [
          SAssign ("acc", f 0.0);
          SFor ("j", i 0, i 3, [ SAssign ("acc", v "acc" + idx1 "xs" (v "j")) ]);
          SRet (Some (v "acc"));
        ];
    }
  in
  let prog =
    compile
      (main_program ~funs:[ sum ]
         ~globals:[ DArr ("data", Ty.F64, [ 3 ]); DScalar ("r", Ty.F64) ]
         [
           SStore ("data", [ i 0 ], f 1.0);
           SStore ("data", [ i 1 ], f 2.0);
           SStore ("data", [ i 2 ], f 4.0);
           SAssign ("r", CallE ("sum3", [ Var "data" ]));
         ])
  in
  Alcotest.(check (float 1e-12)) "sum" 7.0 (mem_float prog (run prog) "r")

let test_recursion_rejected () =
  let open Ast in
  let f1 =
    {
      Ast.fname = "f1"; params = []; ret = None; locals = [];
      body = [ SCall ("f2", []) ];
    }
  in
  let f2 =
    {
      Ast.fname = "f2"; params = []; ret = None; locals = [];
      body = [ SCall ("f1", []) ];
    }
  in
  Alcotest.(check bool) "mutual recursion detected" true
    (try ignore (compile (main_program ~funs:[ f1; f2 ] [ SCall ("f1", []) ])); false
     with Compile.Error _ -> true)

let test_type_errors_rejected () =
  let open Ast in
  let rejects body globals =
    try ignore (compile (main_program ~globals body)); false
    with Compile.Error _ -> true
  in
  Alcotest.(check bool) "float+int" true
    (rejects [ SAssign ("x", f 1.0 + i 1) ] [ DScalar ("x", Ty.F64) ]);
  Alcotest.(check bool) "shift on float" true
    (rejects [ SAssign ("x", f 1.0 << i 1) ] [ DScalar ("x", Ty.F64) ]);
  Alcotest.(check bool) "unknown variable" true
    (rejects [ SAssign ("nope", i 1) ] []);
  Alcotest.(check bool) "scalar indexing" true
    (rejects [ SAssign ("x", idx1 "y" (i 0)) ]
       [ DScalar ("x", Ty.I64); DScalar ("y", Ty.I64) ]);
  Alcotest.(check bool) "bad print arity" true
    (rejects [ SPrint ("%d %d\n", [ i 1 ]) ] [])

let test_region_table () =
  let prog = compile (two_region_program ()) in
  Alcotest.(check int) "two regions" 2 (Array.length prog.Prog.region_table);
  let p = Prog.region_by_name prog "produce" in
  Alcotest.(check int) "line lo" 10 p.Prog.line_lo;
  Alcotest.(check int) "line hi" 20 p.Prog.line_hi;
  (* instructions inside the region carry its id *)
  let f0 = prog.Prog.funcs.(prog.Prog.entry) in
  let tagged = Array.to_list f0.Prog.regions |> List.filter (fun r -> r >= 0) in
  Alcotest.(check bool) "instructions tagged" true (List.length tagged > 0)

let test_marks () =
  let prog = compile (loop_program ~iters:3) in
  Alcotest.(check int) "one mark" 1 (Array.length prog.Prog.mark_names);
  Alcotest.(check int) "mark id" 0 (Prog.mark_id prog "main_iter")

let test_symbols () =
  let prog = compile (two_region_program ()) in
  (match Prog.find_symbol prog "out" with
  | Some s ->
      Alcotest.(check bool) "f64" true (Ty.equal s.Prog.sym_ty Ty.F64);
      Alcotest.(check (list int)) "scalar dims" [] s.Prog.sym_dims
  | None -> Alcotest.fail "symbol out missing");
  Alcotest.(check bool) "type_of_addr" true
    (match Prog.find_symbol prog "out" with
    | Some s -> Prog.type_of_addr prog s.Prog.sym_addr = Some Ty.F64
    | None -> false)

let test_validate_all_apps () =
  (* every registered benchmark lowers to a structurally valid program *)
  List.iter
    (fun (app : App.t) ->
      let prog = compile (app.App.build ~ref_value:None) in
      Prog.validate prog;
      Alcotest.(check bool)
        (app.App.name ^ " has regions")
        true
        (Array.length prog.Prog.region_table
         = List.length app.App.region_names))
    Registry.all

let test_registry_region_names () =
  List.iter
    (fun (app : App.t) ->
      let prog = compile (app.App.build ~ref_value:None) in
      List.iteri
        (fun k name ->
          Alcotest.(check string)
            (app.App.name ^ " region order")
            name
            prog.Prog.region_table.(k).Prog.rname)
        app.App.region_names)
    Registry.all

let suite =
  ( "compile",
    [
      Alcotest.test_case "arithmetic lowering" `Quick test_arith_lowering;
      Alcotest.test_case "comparison results" `Quick test_comparison_results;
      Alcotest.test_case "for loop" `Quick test_for_loop;
      Alcotest.test_case "for with step" `Quick test_for_step;
      Alcotest.test_case "while loop" `Quick test_while_loop;
      Alcotest.test_case "if branches" `Quick test_if_branches;
      Alcotest.test_case "array row-major layout" `Quick test_array_row_major;
      Alcotest.test_case "scalar function call" `Quick test_function_call_scalar;
      Alcotest.test_case "array parameter call" `Quick test_function_call_array_param;
      Alcotest.test_case "recursion rejected" `Quick test_recursion_rejected;
      Alcotest.test_case "type errors rejected" `Quick test_type_errors_rejected;
      Alcotest.test_case "region table" `Quick test_region_table;
      Alcotest.test_case "iteration marks" `Quick test_marks;
      Alcotest.test_case "symbol table" `Quick test_symbols;
      Alcotest.test_case "all apps validate" `Quick test_validate_all_apps;
      Alcotest.test_case "registry region names" `Quick test_registry_region_names;
    ] )
