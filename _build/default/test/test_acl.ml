(* The ACL table: counting, death causes, and masking-event
   classification — each pattern demonstrated on a minimal program. *)

open Helpers

let first_seq_of_op t pred =
  let seq = ref (-1) in
  Trace.iter
    (fun (e : Trace.event) -> if !seq < 0 && pred e then seq := e.seq)
    t;
  Alcotest.(check bool) "target instruction found" true (!seq >= 0);
  !seq

let analyze_with_fault prog fault =
  let _, clean = run_traced prog in
  let _, faulty = run_traced ~fault prog in
  Acl.analyze ~fault ~clean ~faulty ()

(* corrupting a value that is copied then overwritten: the count must
   rise to 2 (original + copy) and return to 0 *)
let test_count_rises_and_falls () =
  let prog =
    let open Ast in
    compile
      (main_program
         ~globals:
           [ DScalar ("x", Ty.I64); DScalar ("y", Ty.I64); DScalar ("r", Ty.I64) ]
         [
           SAssign ("x", i 1);
           SAssign ("y", v "x" + i 0);      (* corruption propagates to y *)
           SAssign ("r", v "x" + v "y");    (* both still alive *)
           SAssign ("x", i 5);              (* clean overwrite *)
           SAssign ("y", i 6);              (* clean overwrite *)
           SAssign ("r", i 7);              (* clean overwrite *)
         ])
  in
  let _, clean = run_traced prog in
  let seq = first_seq_of_op clean (fun e -> e.op = Trace.OStore) in
  let acl = analyze_with_fault prog (Machine.Flip_write { seq; bit = 3 }) in
  Alcotest.(check bool) "peak at least 2" true (acl.Acl.peak >= 2);
  Alcotest.(check int) "all corruption gone" 0 acl.Acl.final;
  Alcotest.(check bool) "overwrite deaths observed" true
    (List.exists (fun (d : Acl.death) -> d.Acl.d_cause = Acl.Overwritten)
       acl.Acl.deaths)

(* a corrupted temporary that is aggregated and never used again dies
   as a Dead Corrupted Location *)
let test_dcl_death () =
  let prog =
    let open Ast in
    compile
      (main_program
         ~globals:[ DScalar ("tmp", Ty.F64); DScalar ("out", Ty.F64) ]
         [
           SAssign ("tmp", f 1.0);
           SAssign ("out", v "tmp" + f 2.0);
           (* tmp never touched again; out reused cleanly *)
           SPrint ("RESULT %.17g\n", [ v "out" ]);
         ])
  in
  let _, clean = run_traced prog in
  let seq = first_seq_of_op clean (fun e -> e.op = Trace.OStore) in
  let acl = analyze_with_fault prog (Machine.Flip_write { seq; bit = 30 }) in
  Alcotest.(check bool) "dead death observed" true
    (List.exists (fun (d : Acl.death) -> d.Acl.d_cause = Acl.Dead)
       acl.Acl.deaths)

(* shifting: corrupt a low bit of a key consumed only via >> *)
let test_shift_masking_event () =
  let prog =
    let open Ast in
    compile
      (main_program
         ~globals:[ DScalar ("key", Ty.I64); DScalar ("bucket", Ty.I64) ]
         [
           SAssign ("key", i 0b110100);
           SAssign ("bucket", v "key" >> i 4);
           SAssign ("key", i 0);
         ])
  in
  let _, clean = run_traced prog in
  let seq =
    first_seq_of_op clean (fun e ->
        e.op = Trace.OStore && Array.length e.writes = 1)
  in
  let acl = analyze_with_fault prog (Machine.Flip_write { seq; bit = 1 }) in
  Alcotest.(check bool) "shift mask recorded" true
    (List.exists
       (fun (m : Acl.masking) -> m.Acl.m_kind = Acl.Shift_mask)
       acl.Acl.maskings)

(* truncation: corrupt a high bit consumed only via trunc32 *)
let test_trunc_masking_event () =
  let prog =
    let open Ast in
    compile
      (main_program
         ~globals:[ DScalar ("x", Ty.I64); DScalar ("y", Ty.I64) ]
         [
           SAssign ("x", i 123);
           SAssign ("y", trunc32 (v "x"));
           SAssign ("x", i 0);
         ])
  in
  let _, clean = run_traced prog in
  let seq = first_seq_of_op clean (fun e -> e.op = Trace.OStore) in
  let acl = analyze_with_fault prog (Machine.Flip_write { seq; bit = 45 }) in
  Alcotest.(check bool) "trunc mask recorded" true
    (List.exists
       (fun (m : Acl.masking) -> m.Acl.m_kind = Acl.Trunc_mask)
       acl.Acl.maskings)

(* conditional: corrupt a compare operand without changing the branch *)
let test_cond_masking_event () =
  let prog =
    let open Ast in
    compile
      (main_program
         ~globals:[ DScalar ("x", Ty.I64); DScalar ("r", Ty.I64) ]
         [
           SAssign ("x", i 100);
           SIf (v "x" > i 10, [ SAssign ("r", i 1) ], [ SAssign ("r", i 2) ]);
           SAssign ("x", i 0);
         ])
  in
  let _, clean = run_traced prog in
  let seq = first_seq_of_op clean (fun e -> e.op = Trace.OStore) in
  (* bit 1: 100 -> 102, still > 10, same direction *)
  let acl = analyze_with_fault prog (Machine.Flip_write { seq; bit = 1 }) in
  Alcotest.(check bool) "cond mask recorded" true
    (List.exists
       (fun (m : Acl.masking) -> m.Acl.m_kind = Acl.Cond_mask)
       acl.Acl.maskings)

(* print truncation: corrupt mantissa bits below the printed precision *)
let test_print_masking_event () =
  let prog =
    let open Ast in
    compile
      (main_program
         ~globals:[ DScalar ("x", Ty.F64) ]
         [
           SAssign ("x", f 12345.6789);
           SPrint ("e=%12.6e\n", [ v "x" ]);
           SAssign ("x", f 0.0);
         ])
  in
  let _, clean = run_traced prog in
  let seq = first_seq_of_op clean (fun e -> e.op = Trace.OStore) in
  let acl = analyze_with_fault prog (Machine.Flip_write { seq; bit = 0 }) in
  Alcotest.(check bool) "print mask recorded" true
    (List.exists
       (fun (m : Acl.masking) -> m.Acl.m_kind = Acl.Print_mask)
       acl.Acl.maskings)

(* repeated additions: a self-accumulating float converges back *)
let test_repeated_addition_event () =
  let prog =
    let open Ast in
    compile
      (main_program
         ~globals:[ DArr ("u", Ty.F64, [ 2 ]); DScalar ("r", Ty.F64) ]
         [
           SStore ("u", [ i 0 ], f 1.0);
           SFor
             ( "j",
               i 0,
               i 30,
               [
                 (* u[0] <- u[0]/2 + 2 converges to 4 from anywhere *)
                 SStore ("u", [ i 0 ], (f 0.5 * idx1 "u" (i 0)) + f 2.0);
               ] );
           SAssign ("r", idx1 "u" (i 0));
           SPrint ("RESULT %.17g\n", [ v "r" ]);
         ])
  in
  let _, clean = run_traced prog in
  let seq = first_seq_of_op clean (fun e -> e.op = Trace.OStore) in
  let acl = analyze_with_fault prog (Machine.Flip_write { seq; bit = 40 }) in
  Alcotest.(check bool) "repeated-addition events recorded" true
    (List.exists
       (fun (m : Acl.masking) ->
         match m.Acl.m_kind with Acl.Repeated_add _ -> true | _ -> false)
       acl.Acl.maskings);
  (* magnitudes in the events decrease *)
  List.iter
    (fun (m : Acl.masking) ->
      match m.Acl.m_kind with
      | Acl.Repeated_add { before; after } ->
          Alcotest.(check bool) "magnitude shrank" true (after < before)
      | _ -> ())
    acl.Acl.maskings

let test_series_counts_nonnegative () =
  let prog =
    let open Ast in
    compile
      (main_program
         ~globals:[ DScalar ("s", Ty.F64) ]
         [
           SAssign ("s", f 0.0);
           SFor ("j", i 0, i 10, [ SAssign ("s", v "s" + to_float (v "j")) ]);
           SPrint ("RESULT %.17g\n", [ v "s" ]);
         ])
  in
  let _, clean = run_traced prog in
  let seq = first_seq_of_op clean (fun e -> e.op = Trace.OStore) in
  let acl = analyze_with_fault prog (Machine.Flip_write { seq; bit = 20 }) in
  Array.iter
    (fun (_, c) -> Alcotest.(check bool) "count >= 0" true (c >= 0))
    acl.Acl.series;
  Alcotest.(check bool) "peak is the max" true
    (Array.for_all (fun (_, c) -> c <= acl.Acl.peak) acl.Acl.series)

(* no fault: the ACL stays empty *)
let test_no_fault_no_corruption () =
  let prog = compile (loop_program ~iters:3) in
  let _, clean = run_traced prog in
  let _, faulty = run_traced prog in
  let acl = Acl.analyze ~clean ~faulty () in
  Alcotest.(check int) "peak 0" 0 acl.Acl.peak;
  Alcotest.(check int) "no deaths" 0 (List.length acl.Acl.deaths);
  Alcotest.(check int) "no maskings" 0 (List.length acl.Acl.maskings)

(* property: for random faults on a fixed program, the final ACL count
   is between 0 and the peak, and the series is seq-ordered *)
let prop_series_well_formed =
  QCheck.Test.make ~count:25 ~name:"acl series is ordered and bounded"
    QCheck.(pair (int_bound 2000) (int_bound 63))
    (fun (seq, bit) ->
      let prog = compile (loop_program ~iters:4) in
      let fault = Machine.Flip_write { seq; bit } in
      let _, clean = run_traced prog in
      let _, faulty = run_traced ~fault prog in
      let acl = Acl.analyze ~fault ~clean ~faulty () in
      let ordered = ref true in
      Array.iteri
        (fun k (s, _) ->
          if k > 0 && s <= fst acl.Acl.series.(k - 1) then ordered := false)
        acl.Acl.series;
      !ordered && acl.Acl.final >= 0 && acl.Acl.final <= acl.Acl.peak)

let suite =
  ( "acl",
    [
      Alcotest.test_case "count rises and falls" `Quick test_count_rises_and_falls;
      Alcotest.test_case "DCL death" `Quick test_dcl_death;
      Alcotest.test_case "shift masking" `Quick test_shift_masking_event;
      Alcotest.test_case "trunc masking" `Quick test_trunc_masking_event;
      Alcotest.test_case "conditional masking" `Quick test_cond_masking_event;
      Alcotest.test_case "print masking" `Quick test_print_masking_event;
      Alcotest.test_case "repeated additions" `Quick test_repeated_addition_event;
      Alcotest.test_case "series nonnegative" `Quick test_series_counts_nonnegative;
      Alcotest.test_case "no fault, no corruption" `Quick test_no_fault_no_corruption;
      QCheck_alcotest.to_alcotest prop_series_well_formed;
    ] )
