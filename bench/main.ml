(* FlipTracker benchmark harness.

   Regenerates every table and figure of the paper's evaluation:

     fig4  LLVM parallel tracing overhead        (Section V-B)
     fig5  per-code-region success rates         (Section V-C)
     fig6  per-iteration success rates           (Section V-C)
     fig7  the LULESH ACL time series            (Sections II/VI)
     tab1  region inventory + patterns found     (Section VI)
     tab2  repeated additions vs error magnitude (Section VI)
     tab3  Use Case 1: hardened CG               (Section VII-A)
     tab4  Use Case 2: resilience prediction     (Section VII-B)
     perf  bechamel micro-benchmarks of the framework itself
     campaign-scale  resilient executor throughput at 1/2/4/8 workers

   Usage: main.exe [--effort quick|default|paper | --quick | --paper]
                   [--jobs N] [experiment ...]
   With no experiment arguments, everything runs.  --jobs fans the
   campaigns of fig5/fig6/tab3/tab4 out over N domains (the counts are
   identical for any N). *)

let bar width frac =
  let n = int_of_float (frac *. float_of_int width) in
  String.make (max 0 (min width n)) '#'

let hr () = print_endline (String.make 78 '-')

let header title =
  hr ();
  print_endline title;
  hr ()

let rate = Campaign.success_rate

(* --- Figure 4 ---------------------------------------------------------- *)

let fig4 effort =
  header "Figure 4: parallel tracing overhead (simulated MPI ranks)";
  Printf.printf "%-8s %6s %14s %14s %10s\n" "app" "ranks" "untraced(s)"
    "traced(s)" "overhead";
  let rows = Experiments.fig4 ~effort () in
  List.iter
    (fun (r : Experiments.fig4_row) ->
      Printf.printf "%-8s %6d %14.3f %14.3f %9.1f%%\n" r.f4_app r.f4_ranks
        r.f4_untraced_s r.f4_traced_s (100.0 *. r.f4_overhead))
    rows;
  let avg =
    List.fold_left (fun a (r : Experiments.fig4_row) -> a +. r.f4_overhead)
      0.0 rows
    /. float_of_int (List.length rows)
  in
  Printf.printf
    "average tracing overhead: %.1f%% (paper: 45%% average at 64 ranks)\n"
    (100.0 *. avg)

(* --- Figure 5 ---------------------------------------------------------- *)

let fig5 effort =
  header
    "Figure 5: success rate per code region (instance 0), internal vs input";
  Printf.printf "%-8s %-8s %28s %28s\n" "app" "region" "internal" "input";
  List.iter
    (fun app ->
      List.iter
        (fun (r : Experiments.region_rates_row) ->
          Printf.printf "%-8s %-8s  %5.2f |%-20s %5.2f |%-20s\n" r.rr_app
            r.rr_region (rate r.rr_internal)
            (bar 20 (rate r.rr_internal))
            (rate r.rr_input)
            (bar 20 (rate r.rr_input)))
        (Experiments.fig5 ~effort app))
    Registry.analyzed

(* --- Figure 6 ---------------------------------------------------------- *)

let fig6 effort =
  header "Figure 6: success rate per main-loop iteration, internal vs input";
  Printf.printf "%-8s %5s %28s %28s\n" "app" "iter" "internal" "input";
  List.iter
    (fun app ->
      List.iter
        (fun (r : Experiments.iteration_rates_row) ->
          Printf.printf "%-8s %5d  %5.2f |%-20s %5.2f |%-20s\n" r.ir_app
            r.ir_iteration (rate r.ir_internal)
            (bar 20 (rate r.ir_internal))
            (rate r.ir_input)
            (bar 20 (rate r.ir_input)))
        (Experiments.fig6 ~effort app))
    Registry.analyzed

(* --- Figure 7 ---------------------------------------------------------- *)

let fig7 _effort =
  header "Figure 7: alive corrupted locations over time (LULESH)";
  let s = Experiments.fig7 Lulesh.app in
  Printf.printf "fault: %s\n" (Machine.fault_to_string s.Experiments.as_fault);
  let acl = s.Experiments.as_result in
  Printf.printf "ACL peak %d; %d death events; %d masking events; %s\n\n"
    acl.Acl.peak
    (List.length acl.Acl.deaths)
    (List.length acl.Acl.maskings)
    (match acl.Acl.divergence with
    | Some i -> Printf.sprintf "control diverged at event %d" i
    | None -> "no control divergence");
  let n = Array.length acl.Acl.series in
  let step = max 1 (n / 50) in
  Printf.printf "%12s %6s\n" "instruction" "ACL";
  Array.iteri
    (fun i (seq, count) ->
      if i mod step = 0 || i = n - 1 then
        Printf.printf "%12d %6d |%s\n" seq count
          (bar 40 (float_of_int count /. float_of_int (max 1 acl.Acl.peak))))
    acl.Acl.series;
  print_endline
    "(expected shape: rises as the error spreads, falls as temporaries die \
     at region boundaries - cf. paper Figure 7)"

(* --- Table I ------------------------------------------------------------ *)

let tab1 effort =
  header "Table I: resilience patterns observed per code region";
  Printf.printf "%-8s %-8s %-10s %10s   %s\n" "program" "region" "lines"
    "#instr/it" "patterns found (instances)";
  List.iter
    (fun app ->
      List.iter
        (fun (r : Experiments.table1_row) ->
          let lo, hi = r.t1_lines in
          let pats =
            r.t1_counts
            |> List.filter (fun (_, n) -> n > 0)
            |> List.map (fun (p, n) ->
                   Printf.sprintf "%s(%d)" (Pattern.to_string p) n)
            |> String.concat " "
          in
          Printf.printf "%-8s %-8s %4d-%-5d %10d   %s\n" r.t1_app r.t1_region
            lo hi r.t1_instr_per_iter
            (if String.equal pats "" then "none observed" else pats))
        (Experiments.table1 ~effort app))
    Registry.analyzed

(* --- Table II ----------------------------------------------------------- *)

let tab2 _effort =
  header "Table II: repeated additions shrink the error magnitude (MG)";
  Printf.printf "%5s %22s %22s %16s\n" "itr" "original value"
    "corrupted value" "error magnitude";
  List.iter
    (fun (r : Experiments.table2_row) ->
      Printf.printf "%5d %22.15f %22.15f %16.6e\n" (r.t2_iteration + 1)
        r.t2_correct r.t2_faulty r.t2_magnitude)
    (Experiments.table2 ());
  print_endline
    "(expected shape: strictly decreasing error magnitude across V-cycles, \
     as in paper Table II)"

(* --- Table III ---------------------------------------------------------- *)

let tab3 effort =
  header "Table III: resilience patterns applied to CG (Use Case 1)";
  Printf.printf "%-10s %12s %14s %26s\n" "variant" "app resi."
    "v/iv@sprnvc" "exe time (s) min-max/avg";
  List.iter
    (fun (r : Experiments.table3_row) ->
      Printf.printf "%-10s %12.3f %14.3f %12.4f-%.4f/%.4f\n" r.t3_variant
        (rate r.t3_counts) (rate r.t3_sprnvc) r.t3_time_min r.t3_time_max
        r.t3_time_avg)
    (Experiments.table3 ~effort ());
  print_endline
    "(expected shape: the DCL+overwriting transformation raises the \
     resilience of the code it modifies (sprnvc column) sharply and the \
     whole-app rate slightly - its dilution is proportional to sprnvc's \
     share of execution - with ~no runtime cost; cf. paper Table III)"

(* --- Table IV ----------------------------------------------------------- *)

let tab4 effort =
  header "Table IV: pattern rates and resilience prediction (Use Case 2)";
  let t = Experiments.table4 ~effort () in
  Printf.printf "%-8s %9s %9s %9s %9s %9s %9s | %8s %8s %7s %8s %7s\n" "app"
    "cond" "shift" "trunc" "dead" "radd" "overwr" "meas.SR" "pred.SR" "err"
    "w-pred" "w-err";
  List.iter
    (fun (r : Experiments.table4_row) ->
      let x = r.t4_rates in
      Printf.printf
        "%-8s %9.4f %9.4f %9.4f %9.4f %9.4f %9.4f | %8.3f %8.3f %6.1f%% %8.3f %6.1f%%\n"
        r.t4_app x.Rates.condition x.Rates.shift x.Rates.truncation
        x.Rates.dead_location x.Rates.repeated_addition x.Rates.overwrite
        r.t4_measured r.t4_predicted (100.0 *. r.t4_error)
        r.t4_weighted_predicted
        (100.0 *. r.t4_weighted_error))
    t.Experiments.rows;
  Printf.printf "\nfull-fit R-square: %.3f (paper: 0.964)\n"
    t.Experiments.r_square;
  Printf.printf
    "mean leave-one-out prediction error: %.1f%% (paper: 14.3%% excl. DC)\n"
    (100.0 *. t.Experiments.unweighted_loo_error);
  Printf.printf
    "with masking-probability-weighted features (paper future work): %.1f%%\n"
    (100.0 *. t.Experiments.weighted_loo_error);
  Printf.printf "standardized coefficients:";
  Array.iteri
    (fun i c -> Printf.printf " %s=%.2f" Rates.feature_names.(i) c)
    t.Experiments.std_coefficients;
  print_newline ()

(* --- ablations ----------------------------------------------------------- *)

let ablate _effort =
  header "Ablations: effect of the framework's own design choices";
  let pair (p : Ablation.campaign_pair) =
    Printf.printf "%s\n" p.Ablation.label;
    let line name (c : Campaign.counts) =
      Printf.printf "  %-22s rate %.3f (success %d, failed %d, crashed %d)\n"
        name (rate c) c.Campaign.success c.Campaign.failed c.Campaign.crashed
    in
    line p.Ablation.variant_a p.Ablation.counts_a;
    line p.Ablation.variant_b p.Ablation.counts_b
  in
  pair (Ablation.typed_bits ());
  print_newline ();
  pair (Ablation.heap_slack ());
  print_newline ();
  let t = Ablation.acl_vs_taint () in
  Printf.printf "ACL (liveness-aware) vs plain taint counting on %s:\n"
    t.Ablation.at_app;
  Printf.printf "  ACL   peak %5d, final %5d\n" t.Ablation.acl_peak
    t.Ablation.acl_final;
  Printf.printf "  taint peak %5d, final %5d\n" t.Ablation.taint_peak
    t.Ablation.taint_final;
  print_endline
    "  (taint overstates the error footprint by counting corrupted-but-dead \
     locations; liveness tracking is what lets the ACL series fall)"

(* --- campaign-scale ------------------------------------------------------ *)

let json_out = ref (Some "BENCH_optimize.json")

(* one throughput sweep over the jobs axis; returns (jobs, trials, wall,
   trials/sec) rows and warns if the counts ever diverge from --jobs 1 *)
let scale_rows ?(backend = Backend.default) ?(reps = 1) (app : App.t)
    jobs_list cfg =
  let clean, trace = App.trace app in
  let prog = App.program app in
  let target = Campaign.whole_program_target prog trace in
  let base_counts = ref None in
  List.map
    (fun jobs ->
      (* best-of-[reps] wall time, with the heap settled before each
         repetition: a single short campaign is at the mercy of GC debt
         left by whatever ran before it *)
      let r =
        List.fold_left
          (fun best _ ->
            Gc.full_major ();
            let r =
              Campaign.run_report prog ~verify:(App.verify app)
                ~clean_instructions:clean.Machine.instructions ~cfg
                ~exec:{ Campaign.default_exec with jobs; backend }
                target
            in
            match best with
            | Some b when b.Campaign.wall_s <= r.Campaign.wall_s -> Some b
            | _ -> Some r)
          None
          (List.init reps Fun.id)
        |> Option.get
      in
      let c = r.Campaign.counts in
      (match !base_counts with
      | None -> base_counts := Some c
      | Some b ->
          if b <> c then
            Printf.printf
              "  WARNING: counts diverged from --jobs 1 (determinism bug)\n");
      let wall = r.Campaign.wall_s in
      let tps = Float.of_int c.Campaign.trials /. Float.max 1e-9 wall in
      (jobs, c.Campaign.trials, wall, tps))
    jobs_list

let campaign_scale (effort : Effort.t) =
  header "campaign-scale: resilient campaign executor, trials/sec vs workers";
  let app = Is.app in
  let cfg =
    (* a fixed trial count, so the jobs axis is the only variable *)
    { effort.Effort.campaign with Campaign.max_trials = Some 240 }
  in
  Printf.printf
    "recommended domain count on this machine: %d (speedup is bounded by \
     the physical cores available)\n"
    (Domain.recommended_domain_count ());
  let jobs_list = [ 1; 2; 4; 8 ] in
  Printf.printf "%-10s %-6s %10s %12s %10s %8s\n" "app" "jobs" "trials"
    "wall(s)" "trials/s" "speedup";
  let print_rows name rows =
    let baseline = ref None in
    List.iter
      (fun (jobs, trials, wall, tps) ->
        let speedup =
          match !baseline with
          | None ->
              baseline := Some wall;
              1.0
          | Some b -> b /. wall
        in
        Printf.printf "%-10s %-6d %10d %12.3f %10.1f %7.2fx\n" name jobs
          trials wall tps speedup)
      rows
  in
  let base_rows = scale_rows app jobs_list cfg in
  print_rows app.App.name base_rows;
  (* the same sweep with the analysis-gated optimizer pipeline applied:
     the trials/sec ratio at equal jobs is the optimizer's campaign
     throughput win *)
  let opt_app = Opt.app_variant app in
  let opt_rows = scale_rows opt_app jobs_list cfg in
  print_rows opt_app.App.name opt_rows;
  let ratios =
    List.map2
      (fun (jobs, _, _, tb) (_, _, _, topt) -> (jobs, topt /. Float.max 1e-9 tb))
      base_rows opt_rows
  in
  List.iter
    (fun (jobs, r) ->
      Printf.printf "optimizer throughput at --jobs %d: %.2fx trials/sec\n"
        jobs r)
    ratios;
  print_endline
    "(counts are bit-identical across the jobs axis: per-trial RNG streams \
     are derived from the trial index, never from scheduling)";
  (* backend axis: the tracing interpreter vs the closure-compiled
     backend at equal jobs — counts are bit-identical by construction
     (pinned by the test suite), so trials/sec is the whole story *)
  print_newline ();
  Printf.printf "%-14s %-9s %-6s %10s %12s %10s %14s\n" "app" "backend" "jobs"
    "trials" "wall(s)" "trials/s" "speedup(c/i)";
  let backend_jobs = [ 1; 4 ] in
  let backend_speedups =
    List.concat_map
      (fun bapp ->
        let sweep b = scale_rows ~backend:b ~reps:3 bapp backend_jobs cfg in
        let interp_rows = sweep Backend.Interp in
        let compiled_rows = sweep Backend.Compiled in
        let print_b bname rows =
          List.iter
            (fun (jobs, trials, wall, tps) ->
              Printf.printf "%-14s %-9s %-6d %10d %12.3f %10.1f %14s\n"
                bapp.App.name bname jobs trials wall tps "")
            rows
        in
        print_b "interp" interp_rows;
        print_b "compiled" compiled_rows;
        List.map2
          (fun (jobs, _, _, ti) (_, _, _, tc) ->
            let s = tc /. Float.max 1e-9 ti in
            Printf.printf "%-14s %-9s %-6d %10s %12s %10s %13.2fx\n"
              bapp.App.name "both" jobs "" "" "" s;
            (bapp.App.name, jobs, ti, tc, s))
          interp_rows compiled_rows)
      [ app; Opt.app_variant app ]
  in
  let min_speedup =
    List.fold_left (fun a (_, _, _, _, s) -> Float.min a s) infinity
      backend_speedups
  in
  Printf.printf
    "compiled-backend speedup over the non-tracing interpreter: min %.2fx\n"
    min_speedup;
  (match !json_out with
  | None -> ()
  | Some _ ->
      let path = "BENCH_compile.json" in
      let oc = open_out path in
      Printf.fprintf oc
        "{\n\
        \  \"bench\": \"campaign-scale/backend\",\n\
        \  \"rows\": [\n\
         %s\n\
        \  ],\n\
        \  \"min_speedup\": %.2f\n\
         }\n"
        (String.concat ",\n"
           (List.map
              (fun (name, jobs, ti, tc, s) ->
                Printf.sprintf
                  "    {\"app\": %S, \"jobs\": %d, \"interp_trials_per_sec\": \
                   %.1f, \"compiled_trials_per_sec\": %.1f, \"speedup\": \
                   %.2f}"
                  name jobs ti tc s)
              backend_speedups))
        min_speedup;
      close_out oc;
      Printf.printf "wrote %s\n" path);
  match !json_out with
  | None -> ()
  | Some path ->
      let row_json name (jobs, trials, wall, tps) =
        Printf.sprintf
          "    {\"app\": %S, \"jobs\": %d, \"trials\": %d, \"wall_s\": %.3f, \
           \"trials_per_sec\": %.1f}"
          name jobs trials wall tps
      in
      let min_ratio =
        List.fold_left (fun a (_, r) -> Float.min a r) infinity ratios
      in
      let oc = open_out path in
      Printf.fprintf oc
        "{\n\
        \  \"bench\": \"campaign-scale\",\n\
        \  \"app\": %S,\n\
        \  \"optimizer\": \"%s\",\n\
        \  \"rows\": [\n\
         %s\n\
        \  ],\n\
        \  \"throughput_ratio_per_jobs\": {%s},\n\
        \  \"min_throughput_ratio\": %.2f\n\
         }\n"
        app.App.name
        (String.concat "; "
           (List.map (fun (p : Opt.pass) -> p.Opt.name) Opt.all))
        (String.concat ",\n"
           (List.map (row_json app.App.name) base_rows
           @ List.map (row_json opt_app.App.name) opt_rows))
        (String.concat ", "
           (List.map
              (fun (jobs, r) -> Printf.sprintf "\"%d\": %.2f" jobs r)
              ratios))
        min_ratio;
      close_out oc;
      Printf.printf "wrote %s\n" path

(* --- bechamel perf suite ------------------------------------------------ *)

let perf _effort =
  header "perf: framework micro-benchmarks (bechamel)";
  let open Bechamel in
  let cg_prog = App.program Cg.app in
  let _, cg_trace = App.trace Cg.app in
  let is_prog = App.program Is.app in
  let cg_access = Access.build cg_trace in
  let cg_inst = List.hd (Region.instances cg_trace) in
  let _, mg_clean = App.trace Mg.app in
  let mg_fault = Machine.Flip_write { seq = 100_000; bit = 40 } in
  let _, mg_faulty = App.trace_with_fault Mg.app mg_fault ~budget:10_000_000 in
  let reg_rng = Rng.create ~seed:1 in
  let reg_x =
    Array.init 64 (fun _ -> Array.init 6 (fun _ -> Rng.float reg_rng))
  in
  let reg_y =
    Array.map (fun row -> Linalg.dot row [| 1.; 2.; 3.; 4.; 5.; 6. |]) reg_x
  in
  let tests =
    [
      Test.make ~name:"vm-run-IS"
        (Staged.stage (fun () -> ignore (Machine.run_plain is_prog)));
      Test.make ~name:"vm-run-CG"
        (Staged.stage (fun () -> ignore (Machine.run_plain cg_prog)));
      Test.make ~name:"tracer-run-IS"
        (Staged.stage (fun () ->
             let t = Trace.create () in
             ignore
               (Machine.run is_prog
                  { Machine.default_config with trace = Some t })));
      Test.make ~name:"access-index-CG"
        (Staged.stage (fun () -> ignore (Access.build cg_trace)));
      Test.make ~name:"dddg-region-CG"
        (Staged.stage (fun () ->
             ignore
               (Dddg.build cg_trace cg_access ~lo:cg_inst.Region.lo
                  ~hi:cg_inst.Region.hi)));
      Test.make ~name:"acl-analysis-MG"
        (Staged.stage (fun () ->
             ignore
               (Acl.analyze ~fault:mg_fault ~clean:mg_clean ~faulty:mg_faulty
                  ())));
      Test.make ~name:"pattern-rates-CG"
        (Staged.stage (fun () -> ignore (Rates.compute cg_trace cg_access)));
      Test.make ~name:"regression-fit"
        (Staged.stage (fun () -> ignore (Regression.fit reg_x reg_y)));
    ]
  in
  let cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second 0.5) () in
  let instance = Toolkit.Instance.monotonic_clock in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let raw =
    Benchmark.all cfg [ instance ]
      (Test.make_grouped ~name:"fliptracker" tests)
  in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold (fun name est acc -> (name, est) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, est) ->
      match Analyze.OLS.estimates est with
      | Some (t :: _) ->
          Printf.printf "%-36s %14.1f ns/run (%9.3f ms)\n" name t (t /. 1e6)
      | Some [] | None -> Printf.printf "%-36s (no estimate)\n" name)
    rows

(* --- trace-codec -------------------------------------------------------- *)

(* Text-vs-binary codec comparison with a hard round-trip gate: both
   files are read back and compared event-for-event against the
   original trace, and any mismatch makes the experiment exit nonzero —
   so `--quick trace-codec` doubles as the CI smoke test for the
   serialization layer. *)

let event_equal (a : Trace.event) (b : Trace.event) =
  a.Trace.seq = b.Trace.seq && a.fidx = b.fidx && a.pc = b.pc && a.act = b.act
  && a.line = b.line && a.region = b.region && a.instance = b.instance
  && a.iter = b.iter && a.op = b.op
  && Array.length a.reads = Array.length b.reads
  && Array.length a.writes = Array.length b.writes
  && Array.for_all2
       (fun (l1, v1) (l2, v2) -> Loc.equal l1 l2 && Value.equal v1 v2)
       a.reads b.reads
  && Array.for_all2
       (fun (l1, v1) (l2, v2) -> Loc.equal l1 l2 && Value.equal v1 v2)
       a.writes b.writes

let trace_codec effort =
  header "trace-codec: text vs binary trace serialization";
  let apps =
    (* quick keeps the CI smoke run on the small IS trace; larger
       efforts add CG, the trace the compression target is quoted on. *)
    if effort.Effort.acl_injections <= Effort.quick.Effort.acl_injections then
      [ Is.app ]
    else [ Is.app; Cg.app ]
  in
  let obs = Obs.create () in
  let failures = ref 0 in
  Printf.printf "%-6s %9s %12s %12s %7s %10s %10s\n" "app" "events" "text(B)"
    "binary(B)" "ratio" "enc(MB/s)" "dec(MB/s)";
  List.iter
    (fun (app : App.t) ->
      let _, trace = App.trace app in
      let n = Trace.length trace in
      let path = Filename.temp_file "ft_codec" ".trace" in
      let timed f =
        let t0 = Unix.gettimeofday () in
        let r = f () in
        (Unix.gettimeofday () -. t0, r)
      in
      let save fmt =
        let dt, () = timed (fun () -> Trace_io.save ~format:fmt path trace) in
        (dt, (Unix.stat path).Unix.st_size)
      in
      let check label =
        let dt, back = timed (fun () -> Trace_io.load path) in
        let ok = ref (Trace.length back = n) in
        if !ok then
          Trace.iteri
            (fun i e -> if not (event_equal e (Trace.get back i)) then ok := false)
            trace;
        if not !ok then begin
          incr failures;
          Printf.printf "  ROUND-TRIP MISMATCH: %s %s\n" app.App.name label
        end;
        dt
      in
      let text_s, text_bytes = save Trace_io.Text in
      ignore (check "text");
      ignore text_s;
      let bin_s, bin_bytes = save Trace_io.Binary in
      let dec_s = check "binary" in
      Sys.remove path;
      (* per-event binary size distribution, via the low-level codec *)
      let enc = Trace_io.encoder () in
      let buf = Buffer.create 256 in
      let hist = app.App.name ^ "/event-bytes" in
      Trace.iter
        (fun e ->
          Buffer.clear buf;
          Trace_io.encode_event enc buf e;
          Obs.observe obs hist (Buffer.length buf))
        trace;
      let mbps bytes s =
        if s > 0.0 then float_of_int bytes /. 1e6 /. s else 0.0
      in
      let ratio = float_of_int text_bytes /. float_of_int (max 1 bin_bytes) in
      Printf.printf "%-6s %9d %12d %12d %6.2fx %10.1f %10.1f\n" app.App.name n
        text_bytes bin_bytes ratio (mbps bin_bytes bin_s) (mbps bin_bytes dec_s);
      if ratio < 4.0 then
        Printf.printf "  WARNING: binary/text ratio %.2fx below the 4x target\n"
          ratio)
    apps;
  print_newline ();
  print_string (Obs.report obs);
  if !failures > 0 then begin
    Printf.printf "trace-codec: %d round-trip failure(s)\n" !failures;
    exit 1
  end
  else print_endline "trace-codec: all round-trips bit-exact"

(* --- harden-overhead ---------------------------------------------------- *)

let harden_overhead (effort : Effort.t) =
  header
    "harden-overhead: cost of the automatic hardening pipeline (all passes)";
  let apps =
    (* quick = the two Use Case apps; otherwise the full registry *)
    if Option.value ~default:max_int effort.Effort.campaign.Campaign.max_trials
       <= 40
    then [ Registry.find "CG"; Registry.find "IS" ]
    else Registry.all
  in
  Printf.printf "%-8s %9s %9s %7s %10s %10s %7s %9s\n" "app" "static"
    "static'" "x" "dynamic" "dynamic'" "x" "wall x";
  List.iter
    (fun (app : App.t) ->
      let base = App.program app in
      let hard = Harden.transform Passes.all base in
      let time prog =
        let t0 = Unix.gettimeofday () in
        let r = Machine.run_plain prog in
        (r, Unix.gettimeofday () -. t0)
      in
      let rb, tb = time base in
      let rh, th = time hard in
      assert (App.verified rh.Machine.output);
      Printf.printf "%-8s %9d %9d %6.2fx %10d %10d %6.2fx %8.2fx\n"
        app.App.name (Prog.static_size base) (Prog.static_size hard)
        (float_of_int (Prog.static_size hard)
        /. float_of_int (max 1 (Prog.static_size base)))
        rb.Machine.instructions rh.Machine.instructions
        (float_of_int rh.Machine.instructions
        /. float_of_int (max 1 rb.Machine.instructions))
        (th /. Float.max 1e-9 tb))
    apps;
  print_endline
    "(expected shape: duplicate-compare dominates the overhead in its \
     top-K regions; every hardened run still verifies fault-free)"

(* --- recovery-overhead --------------------------------------------------- *)

(* What does arming checkpoint/rollback cost when nothing goes wrong?
   The snapshot interval bounds the work: a full register+memory copy
   every [snapshot_interval] instructions on the entry frame.  Fault-free
   runs must take zero restores and verify identically. *)
let recovery_overhead _effort =
  header "recovery-overhead: fault-free cost of arming checkpoint/rollback";
  Printf.printf "%-8s %10s %12s %12s %9s %9s\n" "app" "instrs" "plain(s)"
    "armed(s)" "overhead" "restores";
  List.iter
    (fun (app : App.t) ->
      let prog = App.program app in
      let time cfg =
        let t0 = Unix.gettimeofday () in
        let r = Machine.run prog cfg in
        (r, Unix.gettimeofday () -. t0)
      in
      let rp, tp = time Machine.default_config in
      let ra, ta =
        time
          {
            Machine.default_config with
            recover = Some Machine.default_recover;
          }
      in
      assert (ra.Machine.outcome = Machine.Finished);
      assert (ra.Machine.restores = 0);
      assert (String.equal rp.Machine.output ra.Machine.output);
      Printf.printf "%-8s %10d %12.3f %12.3f %8.1f%% %9d\n" app.App.name
        rp.Machine.instructions tp ta
        (100.0 *. ((ta /. Float.max 1e-9 tp) -. 1.0))
        ra.Machine.restores)
    [ Cg.app; Mg.app; Is.app; Kmeans.app; Lulesh.app ];
  print_endline
    "(fault-free armed runs take zero restores and print byte-identical \
     output; the overhead is the bounded-interval snapshot copies)"

(* --- server-scale -------------------------------------------------------- *)

(* The campaign server against the in-process executor: forked-worker
   throughput, the overhead of journaling every trial, and the cost of
   surviving SIGKILLed workers — with every row required to produce
   counts byte-identical to the --jobs 1 reference. *)
let server_scale (effort : Effort.t) =
  header "server-scale: forked campaign server, trials/sec vs workers";
  let trials =
    min 192
      (Option.value ~default:192 effort.Effort.campaign.Campaign.max_trials * 4)
  in
  let ccfg =
    { effort.Effort.campaign with Campaign.max_trials = Some trials }
  in
  match Server.plan_of_app "IS" with
  | Error e ->
      Printf.printf "server-scale: cannot bake IS: %s\n" e;
      exit 1
  | Ok plan ->
      let s = Server.campaign_spec plan ccfg in
      let t0 = Unix.gettimeofday () in
      let reference =
        Executor.run ~cfg:{ Executor.default_config with jobs = 1 } s
      in
      let ref_wall = Unix.gettimeofday () -. t0 in
      let ref_counts =
        Csexp.to_string
          (Campaign.counts_to_csexp
             (Campaign.counts_of_outcomes reference.Executor.outcomes))
      in
      Printf.printf "%-22s %-8s %10s %12s %10s %8s %6s\n" "configuration"
        "workers" "trials" "wall(s)" "trials/s" "speedup" "ident";
      let row name workers wall counts =
        Printf.printf "%-22s %-8d %10d %12.3f %10.1f %7.2fx %6s\n" name
          workers trials wall
          (float_of_int trials /. Float.max 1e-9 wall)
          (ref_wall /. Float.max 1e-9 wall)
          (if String.equal counts ref_counts then "yes" else "NO")
      in
      row "executor --jobs 1" 1 ref_wall ref_counts;
      let server_row name workers chaos journal =
        let dir =
          if not journal then None
          else begin
            let d =
              Filename.concat
                (Filename.get_temp_dir_name ())
                (Printf.sprintf "ft-bench-server-%d-%s" (Unix.getpid ()) name)
            in
            Some d
          end
        in
        let cfg =
          {
            Server.default_config with
            Server.workers;
            batch = 16;
            journal_dir = dir;
            chaos_kills = chaos;
            heartbeat_s = 30.0;
          }
        in
        let t0 = Unix.gettimeofday () in
        let counts, _ = Server.run_campaign ~cfg plan ccfg in
        let wall = Unix.gettimeofday () -. t0 in
        row name workers wall
          (Csexp.to_string (Campaign.counts_to_csexp counts));
        Option.iter
          (fun d ->
            ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote d))))
          dir
      in
      server_row "server" 1 [] false;
      server_row "server" 2 [] false;
      server_row "server" 4 [] false;
      server_row "server+journal" 4 [] true;
      server_row "server+chaos" 2 [ trials / 4; trials / 2 ] false;
      print_endline
        "(ident = counts byte-identical to the --jobs 1 reference; the \
         chaos row SIGKILLs two workers mid-campaign and must still say \
         yes)"

(* --- arch-structures ------------------------------------------------------ *)

(* One program injected through every microarchitectural surface: the
   per-structure outcome profiles (the FlipTracker-style comparison of
   where errors do and do not propagate from) plus the wall-clock cost
   of each surface — cache faults force the interpreter, istore faults
   re-bake a mutant per trial. *)
let arch_structures (effort : Effort.t) =
  header "arch-structures: per-structure campaign profiles and cost";
  let trials =
    min 120 (Option.value ~default:120 effort.Effort.campaign.Campaign.max_trials)
  in
  let app = Is.app in
  let t0 = Unix.gettimeofday () in
  let r = Arch_eval.evaluate ~trials ~jobs:effort.Effort.jobs app in
  let wall = Unix.gettimeofday () -. t0 in
  Printf.printf "%-11s %12s %6s %6s %6s %6s  %8s %8s\n" "structure"
    "population" "trials" "benign" "SDC" "crash" "SDCrate" "crashrt";
  List.iter
    (fun (c : Arch_eval.cell) ->
      let k = c.Arch_eval.ac_counts in
      Printf.printf "%-11s %12d %6d %6d %6d %6d  %8.4f %8.4f\n"
        (Structure.to_string c.Arch_eval.ac_structure)
        c.Arch_eval.ac_population k.Campaign.trials k.Campaign.success
        k.Campaign.failed k.Campaign.crashed
        (Arch_eval.sdc_rate k) (Arch_eval.crash_rate k))
    r.Arch_eval.ar_cells;
  Printf.printf
    "(%s, %d trials/structure, cache %s, %.1fs total; counts are a pure \
     function of (app, seed, structure))\n"
    r.Arch_eval.ar_app trials
    (Cache_model.geometry_to_string r.Arch_eval.ar_geometry)
    wall

(* --- driver ------------------------------------------------------------- *)

let all_experiments =
  [
    ("fig4", fig4); ("fig5", fig5); ("fig6", fig6); ("fig7", fig7);
    ("tab1", tab1); ("tab2", tab2); ("tab3", tab3); ("tab4", tab4);
    ("ablate", ablate); ("perf", perf); ("campaign-scale", campaign_scale);
    ("trace-codec", trace_codec); ("harden-overhead", harden_overhead);
    ("recovery-overhead", recovery_overhead); ("server-scale", server_scale);
    ("arch-structures", arch_structures);
  ]

let () =
  let effort = ref Effort.default in
  let chosen = ref [] in
  let rec parse = function
    | [] -> ()
    | "--effort" :: e :: rest ->
        effort := Effort.of_string e;
        parse rest
    | "--quick" :: rest ->
        effort := Effort.quick;
        parse rest
    | "--paper" :: rest ->
        effort := Effort.paper;
        parse rest
    | "--jobs" :: n :: rest ->
        (match int_of_string_opt n with
        | Some j when j >= 1 -> effort := { !effort with Effort.jobs = j }
        | Some _ | None ->
            Printf.eprintf "--jobs needs a positive integer, got %S\n" n;
            exit 2);
        parse rest
    | "--json" :: path :: rest ->
        json_out := Some path;
        parse rest
    | "--no-json" :: rest ->
        json_out := None;
        parse rest
    | name :: rest ->
        (match List.assoc_opt name all_experiments with
        | Some f -> chosen := !chosen @ [ (name, f) ]
        | None ->
            Printf.eprintf "unknown experiment %S; known: %s\n" name
              (String.concat " " (List.map fst all_experiments));
            exit 2);
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let todo = if !chosen = [] then all_experiments else !chosen in
  let t0 = Unix.gettimeofday () in
  List.iter (fun (_, f) -> f !effort) todo;
  hr ();
  Printf.printf "done in %.1f s\n" (Unix.gettimeofday () -. t0)
