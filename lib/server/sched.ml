(** The multi-tenant fair-share lease scheduler.

    One engine, many campaigns: jobs are admitted from a FIFO queue
    onto a shared pool of workers (forked children {e and} remote TCP
    attachments), and the engine interleaves their fixed contiguous
    batches under leases exactly the way the single-campaign server
    did — a batch is leased to one worker with a refreshable
    wall-clock deadline ({!Watchdog.deadline}); a worker that dies or
    stops heartbeating is SIGKILLed, its lease {e stolen} back after a
    jittered exponential backoff ({!Executor.backoff_s}); a batch
    whose lease keeps failing poisons {e its own campaign only} — the
    other tenants keep running on the same pool.

    The engine is type-erased: a job delivers trial records to its
    owner through an [jb_accept] callback (the owner keeps the typed
    outcome array), so the same scheduler serves {!Server.run}'s
    generic closure specs and the socket front-end's wire-submitted
    campaigns.  Determinism is per-tenant and unchanged: trials depend
    only on their index, each tenant's records are accumulated
    first-write-wins into its own sharded journal, so every tenant's
    outcome sequence is byte-identical to its own [--jobs 1] run no
    matter how the pool interleaves or dies.

    Fair share: a free worker goes to the admitted tenant holding the
    fewest leases (ties broken least-recently-served), so a wide
    campaign cannot starve a narrow one. *)

type config = {
  workers : int;  (** forked worker processes to keep at strength *)
  batch : int;  (** trials per lease; fixed boundaries like the executor *)
  shards : int;  (** journal shards (batch [b] logs to [b mod shards]) *)
  heartbeat_s : float;  (** per-worker lease deadline between messages *)
  max_lease_attempts : int;
      (** lease failures tolerated per batch before {e that} campaign
          is poisoned *)
  compact_every : int;  (** records appended to a shard before compaction *)
  max_active : int;  (** campaigns scheduled concurrently; rest queue *)
  chaos_kills : int list;
      (** SIGKILL the most recent deliverer when the pool-wide
          delivered-trial count crosses each threshold (ascending) *)
  retry : Executor.config;
      (** worker-side trial retry and the lease re-assignment backoff
          share this policy *)
  metrics : Obs.t option;
}

let default_config =
  {
    workers = 2;
    batch = 16;
    shards = 4;
    heartbeat_s = 30.0;
    max_lease_attempts = 3;
    compact_every = 4096;
    max_active = 4;
    chaos_kills = [];
    retry = Executor.default_config;
    metrics = None;
  }

(** One campaign as the scheduler sees it.  [jb_accept i record] hands
    a freshly delivered trial record to the owner; [true] means the
    owner decoded and kept it (the engine then marks index [i] filled
    and journals the record verbatim).  [jb_spec] is the wire form a
    worker can rebuild the campaign from; jobs without one can only
    run on workers forked with the campaign preloaded.
    [jb_should_stop boundary] is the owner's early-stop predicate,
    asked at fixed batch boundaries over contiguous prefixes, in
    order — mirroring the in-process executor. *)
type job = {
  jb_id : string;
  jb_app : string;  (** display only *)
  jb_total : int;
  jb_header : Csexp.t;
  jb_journal : string option;  (** this campaign's own shard directory *)
  jb_resume : bool;
  jb_spec : Campaign.spec option;
  jb_accept : int -> Csexp.t -> bool;
  jb_should_stop : (int -> bool) option;
}

type event =
  | Progress of { completed : int; planned : int; stolen : int }
  | Finished of { completed : int; stopped_early : bool; resumed : int }
  | Poisoned of { batch : int; attempts : int; cause : Infra.cause }
  | Failed of { reason : string }
      (** admission failed (journal header mismatch, ...) *)

type tenant_stats = {
  ts_id : string;
  ts_app : string;
  ts_state : string;  (** [queued], [active], [done], [poisoned], [failed] *)
  ts_completed : int;
  ts_planned : int;
  ts_leases : int;  (** batches held across the pool right now *)
  ts_steals : int;  (** leases stolen back from dead workers *)
}

(* --- internal state ----------------------------------------------------- *)

type lease = Todo | Leased of int  (** worker slot id *) | Done_
type tstate = Queued | Active | Finished_t | Poisoned_t | Failed_t

type tenant = {
  job : job;
  nbatches : int;
  filled : bool array;
  lease : lease array;
  attempts : int array;
  eligible : float array;
  mutable state : tstate;
  mutable journal : Shard.t option;
  mutable resumed : int;
  mutable open_batches : int;
  mutable completed_n : int;  (** filled count, maintained incrementally *)
  mutable prefix : int;
  mutable checked : int;
  mutable stop_at : int option;
  mutable steals : int;
  mutable last_served : int;
}

type wkind = Fork | Remote

type wslot = {
  ws_id : int;
  ws_kind : wkind;
  mutable ws_pid : int;  (** fork child, or the pid a remote reported *)
  ws_conn : Wire.conn;
  mutable ws_assign : (string * int) option;  (** campaign id, batch *)
  ws_loaded : (string, unit) Hashtbl.t;
  ws_noload : (string, unit) Hashtbl.t;
      (** campaigns this worker failed to load; never offered again *)
  ws_dl : Watchdog.deadline;
  mutable ws_dead : bool;
}

type t = {
  cfg : config;
  spawn : (close_fds:Unix.file_descr list -> int * Wire.conn) option;
  preloaded : string -> bool;
      (** campaigns baked into forked workers' images (closure specs
          that cannot travel on a wire) *)
  on_event : string -> event -> unit;
  tenants : (string, tenant) Hashtbl.t;
  mutable submitted : string list;  (** submission order, reversed *)
  queue : string Queue.t;
  mutable slots : wslot list;
  mutable next_slot : int;
  mutable served : int;  (** fair-share round counter *)
  mutable kills : int list;
  mutable delivered : int;
  mutable active : int;
}

let create ?(cfg = default_config) ?spawn
    ?(preloaded = fun (_ : string) -> false)
    ~(on_event : string -> event -> unit) () : t =
  {
    cfg;
    spawn;
    preloaded;
    on_event;
    tenants = Hashtbl.create 8;
    submitted = [];
    queue = Queue.create ();
    slots = [];
    next_slot = 0;
    served = 0;
    kills = List.sort compare cfg.chaos_kills;
    delivered = 0;
    active = 0;
  }

let obs_count (t : t) name n =
  match t.cfg.metrics with Some m -> Obs.count m name n | None -> ()

let trial_key (r : Csexp.t) : string option =
  match r with
  | Csexp.List (Csexp.Atom "t" :: Csexp.Atom idx :: _) -> Some idx
  | _ -> None

let record_index (r : Csexp.t) : int option =
  match r with
  | Csexp.List (Csexp.Atom "t" :: Csexp.Atom idx :: _) ->
      int_of_string_opt idx
  | _ -> None

let record_is_infra (r : Csexp.t) : bool =
  match r with
  | Csexp.List (Csexp.Atom "t" :: _ :: Csexp.Atom "err" :: _) -> true
  | _ -> false

(* --- per-tenant geometry ------------------------------------------------- *)

let batch_size (t : t) = max 1 t.cfg.batch

let batch_range (t : t) (ten : tenant) b =
  let bs = batch_size t in
  (b * bs, min ten.job.jb_total ((b + 1) * bs))

let first_unfilled (t : t) (ten : tenant) b =
  let lo, hi = batch_range t ten b in
  let rec go i =
    if i >= hi then None else if ten.filled.(i) then go (i + 1) else Some i
  in
  go lo

(* early-stop bookkeeping mirrors the executor: the predicate sees
   contiguous completed prefixes at fixed batch boundaries, in order *)
let advance_prefix (t : t) (ten : tenant) =
  let total = ten.job.jb_total in
  while ten.prefix < total && ten.filled.(ten.prefix) do
    ten.prefix <- ten.prefix + 1
  done;
  match ten.job.jb_should_stop with
  | None -> ()
  | Some p ->
      let bs = batch_size t in
      let continue_ = ref true in
      while !continue_ && ten.stop_at = None && ten.checked < ten.nbatches do
        let boundary = min total ((ten.checked + 1) * bs) in
        if ten.prefix >= boundary then begin
          ten.checked <- ten.checked + 1;
          if p boundary then ten.stop_at <- Some boundary
        end
        else continue_ := false
      done

(* --- tenant lifecycle ---------------------------------------------------- *)

let close_journal (ten : tenant) =
  match ten.journal with
  | None -> ()
  | Some sh ->
      (try
         Shard.sync_all sh;
         Shard.close sh
       with Sys_error _ | Unix.Unix_error _ -> ());
      ten.journal <- None

let emit (t : t) (ten : tenant) (e : event) = t.on_event ten.job.jb_id e

let progress (t : t) (ten : tenant) =
  emit t ten
    (Progress
       {
         completed = ten.completed_n;
         planned = ten.job.jb_total;
         stolen = ten.steals;
       })

let finish (t : t) (ten : tenant) =
  close_journal ten;
  ten.state <- Finished_t;
  t.active <- t.active - 1;
  obs_count t "server/tenants-finished" 1;
  let completed =
    match ten.stop_at with Some n -> n | None -> ten.prefix
  in
  emit t ten
    (Finished
       {
         completed;
         stopped_early = ten.stop_at <> None;
         resumed = ten.resumed;
       })

let maybe_finish (t : t) (ten : tenant) =
  if ten.state = Active && (ten.open_batches = 0 || ten.stop_at <> None) then
    finish t ten

let poison (t : t) (ten : tenant) (b : int) (cause : Infra.cause) =
  close_journal ten;
  ten.state <- Poisoned_t;
  t.active <- t.active - 1;
  obs_count t "server/tenants-poisoned" 1;
  emit t ten (Poisoned { batch = b; attempts = ten.attempts.(b); cause })

(** Close batch [b]: mark done, persist, advance the early-stop
    machinery, and tell the owner.  Reached from [Batch_done] {e and}
    from the stolen-batch path where every record arrived before the
    thief ran — both must advance the prefix identically. *)
let close_batch (t : t) (ten : tenant) (b : int) =
  ten.lease.(b) <- Done_;
  ten.open_batches <- ten.open_batches - 1;
  (match ten.journal with
  | Some sh ->
      Shard.sync sh ~shard:b;
      if Shard.appended sh ~shard:b >= t.cfg.compact_every then begin
        ignore (Shard.compact sh ~key:trial_key ~shard:b);
        obs_count t "server/compactions" 1
      end
  | None -> ());
  advance_prefix t ten;
  progress t ten;
  maybe_finish t ten

let submit (t : t) (job : job) : (unit, string) result =
  if job.jb_total < 0 then Error "negative trial total"
  else if Hashtbl.mem t.tenants job.jb_id then
    Error (Printf.sprintf "duplicate campaign id %s" job.jb_id)
  else begin
    let total = job.jb_total in
    let bs = batch_size t in
    let nbatches = (total + bs - 1) / bs in
    let ten =
      {
        job;
        nbatches;
        filled = Array.make total false;
        lease = Array.make nbatches Todo;
        attempts = Array.make nbatches 0;
        eligible = Array.make nbatches 0.0;
        state = Queued;
        journal = None;
        resumed = 0;
        open_batches = 0;
        completed_n = 0;
        prefix = 0;
        checked = 0;
        stop_at = None;
        steals = 0;
        last_served = 0;
      }
    in
    Hashtbl.replace t.tenants job.jb_id ten;
    t.submitted <- job.jb_id :: t.submitted;
    Queue.push job.jb_id t.queue;
    obs_count t "server/tenants-submitted" 1;
    Ok ()
  end

(** Admission: open (or heal-and-resume) the tenant's own journal,
    replay surviving records through the owner's [jb_accept], and
    schedule whatever is still open.  A campaign that resumes complete
    finishes here without ever touching the pool. *)
let admit (t : t) (ten : tenant) =
  match
    let total = ten.job.jb_total in
    (match ten.job.jb_journal with
    | None -> ()
    | Some dir ->
        if ten.job.jb_resume && Sys.file_exists dir then begin
          let sh, records =
            Shard.open_resume ~dir ~shards:t.cfg.shards
              ~header:ten.job.jb_header
          in
          ten.journal <- Some sh;
          List.iter
            (fun r ->
              match record_index r with
              | Some i
                when i >= 0 && i < total && (not ten.filled.(i))
                     && ten.job.jb_accept i r ->
                  ten.filled.(i) <- true;
                  ten.completed_n <- ten.completed_n + 1;
                  ten.resumed <- ten.resumed + 1
              | Some _ | None -> ())
            records
        end
        else
          ten.journal <-
            Some
              (Shard.create ~dir ~shards:t.cfg.shards
                 ~header:ten.job.jb_header));
    for b = 0 to ten.nbatches - 1 do
      match first_unfilled t ten b with
      | None -> ten.lease.(b) <- Done_
      | Some _ -> ten.open_batches <- ten.open_batches + 1
    done;
    advance_prefix t ten
  with
  | () ->
      ten.state <- Active;
      t.active <- t.active + 1;
      obs_count t "server/tenants-admitted" 1;
      progress t ten;
      maybe_finish t ten
  | exception e ->
      close_journal ten;
      ten.state <- Failed_t;
      emit t ten (Failed { reason = Printexc.to_string e })

(* --- the worker pool ----------------------------------------------------- *)

let sigkill pid = try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()

let reap ?(force = false) pid =
  if force then sigkill pid;
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

let live_slots (t : t) = List.filter (fun s -> not s.ws_dead) t.slots

let slot_fds (t : t) =
  List.map (fun s -> Wire.fd s.ws_conn) (live_slots t)

let add_slot (t : t) (kind : wkind) (pid : int) (conn : Wire.conn) : wslot =
  let s =
    {
      ws_id = t.next_slot;
      ws_kind = kind;
      ws_pid = pid;
      ws_conn = conn;
      ws_assign = None;
      ws_loaded = Hashtbl.create 4;
      ws_noload = Hashtbl.create 4;
      ws_dl = Watchdog.arm ~seconds:t.cfg.heartbeat_s;
      ws_dead = false;
    }
  in
  t.next_slot <- t.next_slot + 1;
  t.slots <- t.slots @ [ s ];
  s

let fork_slot (t : t) =
  match t.spawn with
  | None -> ()
  | Some spawn ->
      (* every fd the engine holds that this child must not inherit:
         sibling workers' sockets (the caller's closure adds its own —
         a listening socket, client connections) *)
      let pid, conn = spawn ~close_fds:(slot_fds t) in
      obs_count t "server/workers-forked" 1;
      ignore (add_slot t Fork pid conn)

let attach_remote (t : t) (conn : Wire.conn) : unit =
  obs_count t "server/workers-attached" 1;
  ignore (add_slot t Remote 0 conn)

(** A dead or stalled worker: kill, reap, steal its lease back (with
    the jittered backoff before re-assignment), drop the slot.  The
    steal only poisons the lease's {e own} campaign; every other
    tenant — and the replacement worker — is untouched. *)
let worker_down (t : t) (s : wslot) (cause : Infra.cause) =
  if not s.ws_dead then begin
    s.ws_dead <- true;
    t.slots <- List.filter (fun s' -> s'.ws_id <> s.ws_id) t.slots;
    Wire.close s.ws_conn;
    (match s.ws_kind with
    | Fork -> reap ~force:true s.ws_pid
    | Remote -> ());
    match s.ws_assign with
    | None -> ()
    | Some (cid, b) -> (
        s.ws_assign <- None;
        match Hashtbl.find_opt t.tenants cid with
        | Some ten when ten.state = Active && ten.lease.(b) = Leased s.ws_id
          ->
            ten.attempts.(b) <- ten.attempts.(b) + 1;
            ten.steals <- ten.steals + 1;
            obs_count t "server/leases-stolen" 1;
            ten.lease.(b) <- Todo;
            ten.eligible.(b) <-
              Unix.gettimeofday ()
              +. Executor.backoff_s t.cfg.retry b (ten.attempts.(b) - 1);
            if ten.attempts.(b) > t.cfg.max_lease_attempts then
              poison t ten b cause
        | _ -> ())
  end

(** A worker answered that it cannot serve this campaign: take the
    batch back immediately (the worker itself is healthy) and never
    offer it that campaign again.  Exhausting the attempts this way
    poisons the campaign with a [Load_failed] cause — the campaign is
    unbuildable, not the pool broken. *)
let load_failed (t : t) (s : wslot) (cid : string) (reason : string) =
  Hashtbl.remove s.ws_loaded cid;
  Hashtbl.replace s.ws_noload cid ();
  match s.ws_assign with
  | Some (c, b) when c = cid -> (
      s.ws_assign <- None;
      match Hashtbl.find_opt t.tenants cid with
      | Some ten when ten.state = Active && ten.lease.(b) = Leased s.ws_id ->
          ten.attempts.(b) <- ten.attempts.(b) + 1;
          ten.steals <- ten.steals + 1;
          obs_count t "server/leases-stolen" 1;
          ten.lease.(b) <- Todo;
          ten.eligible.(b) <-
            Unix.gettimeofday ()
            +. Executor.backoff_s t.cfg.retry b (ten.attempts.(b) - 1);
          if ten.attempts.(b) > t.cfg.max_lease_attempts then
            poison t ten b (Infra.Load_failed { cid; reason })
      | _ -> ())
  | _ -> ()

(* --- message handling ---------------------------------------------------- *)

(** Accept one worker message; [false] = stop draining this worker
    (it was just chaos-killed). *)
let handle (t : t) (s : wslot) (msg : Csexp.t) : bool =
  Watchdog.refresh s.ws_dl;
  match Proto.from_worker_of_csexp msg with
  | Error _ -> true
  | Ok (Proto.Ready { pid }) ->
      if s.ws_kind = Remote then s.ws_pid <- pid;
      true
  | Ok (Proto.Heartbeat _) -> true
  | Ok (Proto.Loaded { cid }) ->
      Hashtbl.replace s.ws_loaded cid ();
      true
  | Ok (Proto.Load_failed { cid; reason }) ->
      load_failed t s cid reason;
      true
  | Ok (Proto.Trial { cid; record }) -> (
      match Hashtbl.find_opt t.tenants cid with
      | Some ten when ten.state = Active -> (
          match record_index record with
          | Some i
            when i >= 0 && i < ten.job.jb_total && (not ten.filled.(i))
                 && ten.job.jb_accept i record ->
              ten.filled.(i) <- true;
              ten.completed_n <- ten.completed_n + 1;
              if record_is_infra record then
                obs_count t "server/infra-errors" 1;
              (match ten.journal with
              | Some sh ->
                  Shard.append sh ~shard:(i / batch_size t) record
              | None -> ());
              t.delivered <- t.delivered + 1;
              (match t.kills with
              | k :: rest when t.delivered >= k ->
                  t.kills <- rest;
                  obs_count t "server/chaos-kills" 1;
                  (match s.ws_kind with
                  | Fork ->
                      (* EOF will surface next round and steal the lease *)
                      sigkill s.ws_pid
                  | Remote ->
                      (* no pid to kill from here: drop the connection,
                         which is exactly what a vanished machine looks
                         like *)
                      worker_down t s
                        (Infra.Worker_lost
                           { pid = s.ws_pid; batch = Option.map snd s.ws_assign }));
                  false
              | _ -> true)
          | Some _ -> true  (* duplicate from a stolen batch: first write wins *)
          | None -> true)
      | _ -> true  (* tenant finished or poisoned: late records drop *))
  | Ok (Proto.Batch_done { cid; batch = b; retries }) -> (
      obs_count t "server/retries" retries;
      (match s.ws_assign with
      | Some (c, bb) when c = cid && bb = b -> s.ws_assign <- None
      | _ -> ());
      match Hashtbl.find_opt t.tenants cid with
      | Some ten
        when ten.state = Active && b >= 0 && b < ten.nbatches
             && ten.lease.(b) = Leased s.ws_id ->
          close_batch t ten b;
          true
      | _ -> true)

(* --- assignment ---------------------------------------------------------- *)

let servable (t : t) (s : wslot) (ten : tenant) : bool =
  let cid = ten.job.jb_id in
  (not (Hashtbl.mem s.ws_noload cid))
  && (Hashtbl.mem s.ws_loaded cid
     || (t.preloaded cid && s.ws_kind = Fork)
     || ten.job.jb_spec <> None)

let first_ready (ten : tenant) (now : float) : int option =
  let rec go b =
    if b >= ten.nbatches then None
    else if ten.lease.(b) = Todo && ten.eligible.(b) <= now then Some b
    else go (b + 1)
  in
  go 0

(** Give every free worker a batch.  The tenant holding the fewest
    leases wins the worker (ties broken least-recently-served, then by
    id — deterministic), which is what keeps one wide campaign from
    starving the rest of the queue. *)
let assign (t : t) =
  let leases_held : (string, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun s ->
      match s.ws_assign with
      | Some (cid, _) ->
          Hashtbl.replace leases_held cid
            (1 + Option.value ~default:0 (Hashtbl.find_opt leases_held cid))
      | None -> ())
    (live_slots t);
  let held cid = Option.value ~default:0 (Hashtbl.find_opt leases_held cid) in
  List.iter
    (fun s ->
      if (not s.ws_dead) && s.ws_assign = None then begin
        let rec try_assign () =
          let now = Unix.gettimeofday () in
          let best =
            Hashtbl.fold
              (fun cid ten acc ->
                if
                  ten.state = Active && ten.open_batches > 0
                  && servable t s ten
                  && first_ready ten now <> None
                then
                  let k = (held cid, ten.last_served, cid) in
                  match acc with
                  | Some (k', _) when compare k' k <= 0 -> acc
                  | _ -> Some (k, ten)
                else acc)
              t.tenants None
          in
          match best with
          | None -> ()
          | Some (_, ten) -> (
              let cid = ten.job.jb_id in
              match first_ready ten now with
              | None -> ()
              | Some b -> (
                  match first_unfilled t ten b with
                  | None ->
                      (* a stolen batch whose records all arrived before
                         the thief ran: nothing left to compute — but
                         the boundary still closes here, so the prefix
                         (and the early-stop predicate) must advance
                         exactly as it would on [Batch_done] *)
                      close_batch t ten b;
                      try_assign ()
                  | Some lo -> (
                      let _, hi = batch_range t ten b in
                      try
                        if
                          (not (Hashtbl.mem s.ws_loaded cid))
                          && not (t.preloaded cid && s.ws_kind = Fork)
                        then begin
                          match ten.job.jb_spec with
                          | Some spec ->
                              Wire.send s.ws_conn
                                (Proto.to_worker_to_csexp
                                   (Proto.Load { cid; spec }));
                              (* optimistic: a [Load_failed] reply takes
                                 it back out *)
                              Hashtbl.replace s.ws_loaded cid ()
                          | None -> ()
                        end;
                        Wire.send s.ws_conn
                          (Proto.to_worker_to_csexp
                             (Proto.Lease { cid; batch = b; lo; hi }));
                        ten.lease.(b) <- Leased s.ws_id;
                        s.ws_assign <- Some (cid, b);
                        t.served <- t.served + 1;
                        ten.last_served <- t.served;
                        Hashtbl.replace leases_held cid (held cid + 1);
                        Watchdog.refresh s.ws_dl
                      with Wire.Closed ->
                        worker_down t s
                          (Infra.Worker_lost { pid = s.ws_pid; batch = None })
                      )))
        in
        try_assign ()
      end)
    (live_slots t)

(* --- the step loop ------------------------------------------------------- *)

let work_remains (t : t) =
  (not (Queue.is_empty t.queue))
  || Hashtbl.fold
       (fun _ ten acc -> acc || (ten.state = Active && ten.open_batches > 0))
       t.tenants false

let fork_count (t : t) =
  List.length (List.filter (fun s -> s.ws_kind = Fork) (live_slots t))

let step (t : t) ~(idle_s : float) : unit =
  (* admission: pop the queue while there is room on the pool *)
  let rec admit_loop () =
    if t.active < max 1 t.cfg.max_active && not (Queue.is_empty t.queue) then begin
      let cid = Queue.pop t.queue in
      (match Hashtbl.find_opt t.tenants cid with
      | Some ten when ten.state = Queued -> admit t ten
      | _ -> ());
      admit_loop ()
    end
  in
  admit_loop ();
  (* keep the forked pool at strength while work remains *)
  if work_remains t then
    while fork_count t < t.cfg.workers && t.spawn <> None do
      fork_slot t
    done;
  assign t;
  (* wait for worker traffic; select just bounds the idle sleep —
     every live worker is drained below regardless *)
  (match slot_fds t with
  | [] -> if idle_s > 0.0 then Unix.sleepf idle_s
  | fds -> (
      match Unix.select fds [] [] idle_s with
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()));
  List.iter
    (fun s ->
      if not s.ws_dead then
        try
          let continue_ = ref true in
          let rec drain_msgs () =
            if !continue_ then
              match Wire.try_recv s.ws_conn with
              | Some msg ->
                  continue_ := handle t s msg;
                  drain_msgs ()
              | None -> ()
          in
          drain_msgs ()
        with
        | Wire.Closed ->
            worker_down t s
              (Infra.Worker_lost
                 { pid = s.ws_pid; batch = Option.map snd s.ws_assign })
        | Wire.Corrupt m -> worker_down t s (Infra.Wire_fault { message = m }))
    (live_slots t);
  (* heartbeat deadlines: a leased worker that went quiet *)
  List.iter
    (fun s ->
      if (not s.ws_dead) && s.ws_assign <> None
         && Watchdog.deadline_expired s.ws_dl
      then begin
        obs_count t "server/heartbeats-missed" 1;
        worker_down t s
          (Infra.Lease_expired
             {
               batch = Option.value ~default:(-1) (Option.map snd s.ws_assign);
               pid = s.ws_pid;
               heartbeat_s = t.cfg.heartbeat_s;
             })
      end)
    (live_slots t)

let busy (t : t) =
  Hashtbl.fold
    (fun _ ten acc ->
      acc || ten.state = Queued || ten.state = Active)
    t.tenants false

let drain (t : t) : unit =
  while busy t do
    step t ~idle_s:0.05
  done

let shutdown_workers (t : t) : unit =
  List.iter
    (fun s ->
      (try Wire.send s.ws_conn (Proto.to_worker_to_csexp Proto.Quit)
       with Wire.Closed | Unix.Unix_error _ -> ());
      Wire.close s.ws_conn;
      match s.ws_kind with
      | Remote -> ()
      | Fork ->
          (* grace period, then force *)
          let rec wait k =
            match Unix.waitpid [ Unix.WNOHANG ] s.ws_pid with
            | 0, _ ->
                if k = 0 then reap ~force:true s.ws_pid
                else begin
                  Unix.sleepf 0.02;
                  wait (k - 1)
                end
            | _ -> ()
            | exception Unix.Unix_error _ -> ()
          in
          wait 100)
    t.slots;
  t.slots <- []

(** Emergency stop: close every active tenant's journal (synced) and
    kill the pool — the cleanup path when the caller's loop raises. *)
let abort (t : t) : unit =
  Hashtbl.iter
    (fun _ ten -> if ten.state = Active then close_journal ten)
    t.tenants;
  shutdown_workers t

(* --- introspection ------------------------------------------------------- *)

let state_name = function
  | Queued -> "queued"
  | Active -> "active"
  | Finished_t -> "done"
  | Poisoned_t -> "poisoned"
  | Failed_t -> "failed"

let stats (t : t) : tenant_stats list =
  let leases_held : (string, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun s ->
      match s.ws_assign with
      | Some (cid, _) ->
          Hashtbl.replace leases_held cid
            (1 + Option.value ~default:0 (Hashtbl.find_opt leases_held cid))
      | None -> ())
    (live_slots t);
  List.rev_map
    (fun cid ->
      let ten = Hashtbl.find t.tenants cid in
      {
        ts_id = cid;
        ts_app = ten.job.jb_app;
        ts_state = state_name ten.state;
        ts_completed = ten.completed_n;
        ts_planned = ten.job.jb_total;
        ts_leases =
          Option.value ~default:0 (Hashtbl.find_opt leases_held cid);
        ts_steals = ten.steals;
      })
    t.submitted

let queue_depth (t : t) = Queue.length t.queue
let active_count (t : t) = t.active
let worker_count (t : t) = List.length (live_slots t)
