(** The campaign server: a crash-tolerant multi-process scheduler that
    runs an {!Executor.spec} by leasing fixed contiguous trial batches
    to forked worker processes.  Workers heartbeat under a refreshable
    wall-clock deadline; a dead or stalled worker is SIGKILLed, its
    lease stolen back (after a jittered backoff) and re-run by a
    replacement forked from the warm server image.  Trial records
    stream into a {!Shard}ed journal byte-compatible with the
    in-process executor's, and outcomes accumulate in index order with
    first-write-wins deduplication — so the counts are byte-identical
    to a [--jobs 1] run no matter how many workers die mid-flight. *)

type config = {
  workers : int;  (** forked worker processes *)
  batch : int;  (** trials per lease; fixed boundaries like the executor *)
  shards : int;  (** journal shards (batch [b] logs to [b mod shards]) *)
  journal_dir : string option;
  resume : bool;  (** heal + load the journal, skip completed trials *)
  heartbeat_s : float;  (** per-worker lease deadline between messages *)
  max_lease_attempts : int;
      (** lease failures tolerated per batch before the campaign is
          poisoned *)
  compact_every : int;  (** records appended to a shard before compaction *)
  chaos_kills : int list;
      (** SIGKILL the most recent deliverer when the delivered-trial
          count crosses each threshold — the determinism harness *)
  chaos_stall_done_s : float;
      (** workers sleep this long between a batch's last trial record
          and its [Batch_done] (0 = no stall): combined with a short
          [heartbeat_s] it deterministically orphans fully-delivered
          leases, the batch-boundary crash window *)
  retry : Executor.config;
      (** worker-side trial retry and the lease re-assignment backoff
          share this policy *)
  metrics : Obs.t option;
      (** per-worker scheduler metrics: [server/workers-forked],
          [server/leases-stolen], [server/heartbeats-missed],
          [server/retries], [server/compactions], [server/chaos-kills],
          [server/infra-errors] *)
  on_progress : (Executor.progress -> unit) option;
}

val default_config : config
(** 2 workers, batch 16, 4 shards, no journal, 30 s heartbeats, 3 lease
    attempts, compaction every 4096 records, no chaos. *)

val run :
  ?cfg:config ->
  ?idle:(unit -> unit) ->
  ?child_close:Unix.file_descr list ->
  'a Executor.spec ->
  'a Executor.report
(** Run a spec across the worker pool.  [idle] is called once per
    scheduler iteration (the socket front-end answers status probes
    there).  [child_close] lists caller-held descriptors (a listening
    socket, a client connection) that forked workers must close rather
    than inherit; the scheduler adds sibling workers' sockets itself.
    @raise Infra.Campaign_poisoned when a batch exhausts its lease
    attempts — the campaign is infrastructure-broken. *)

(** {2 Campaign plans}

    Everything a campaign needs that is expensive to compute and a pure
    function of the app spelling: the baked program, the golden run,
    and the fault-site population.  Plans are cached content-addressed
    so a restarted server (or a cold CLI) warm-starts. *)

type plan = {
  pl_app : string;
  pl_prog : Prog.t;
  pl_target : Campaign.target;
  pl_clean_instructions : int;
  pl_golden_output : string;  (** the fault-free run's output *)
}

val plan_key : string -> string
(** Cache key of an app spelling. *)

val plan_of_app : ?cache_dir:string -> string -> (plan, string) result
(** Resolve, bake, trace and (when [cache_dir] is given) cache the
    plan for an app spelling ([CG], [IS@all], [MG@opt], ...). *)

val target_of_plan : plan -> Structure.t -> Campaign.target
(** The injection target a plan exposes for a declared structure:
    [pl_target] (the register-file surface) for [Structure.Reg],
    otherwise a structural target rebuilt from the plan's program. *)

val campaign_spec : plan -> Campaign.config -> Campaign.outcome_class Executor.spec
(** The executor spec of a campaign over a plan — built exactly the way
    {!Campaign.run_report} builds its own (same tag, same trial kernel,
    same outcome codec): the byte-identity contract with [--jobs 1].
    The target follows the config's declared [structure]. *)

val run_campaign :
  ?cfg:config ->
  ?idle:(unit -> unit) ->
  plan ->
  Campaign.config ->
  Campaign.counts * Campaign.outcome_class Executor.report

(** {2 The socket front-end} *)

val serve : ?cfg:config -> ?cache_dir:string -> socket:string -> unit -> unit
(** Listen on a Unix-domain [socket] and serve {!Proto.client_msg}
    requests until a shutdown: submissions run one at a time (status
    stays live mid-campaign; concurrent submits are refused as busy),
    each campaign journaling under its own tag-derived subdirectory of
    [cfg.journal_dir] with [resume] forced on, so resubmitting an
    interrupted campaign continues it. *)
