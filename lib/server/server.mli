(** The campaign server: a crash-tolerant, {e multi-tenant} scheduler
    for deterministic trial campaigns.  The fair-share lease engine
    lives in {!Sched}; this module keeps the two front doors — {!run}
    (one {!Executor.spec} on a private engine, the drop-in
    single-campaign path) and {!serve} (the long-running socket
    service: wire-submitted campaigns queued, interleaved across one
    shared pool of forked and remote TCP workers, each under a
    deterministic campaign id with its own journal directory and a
    persisted, fetchable verdict).  Every campaign's counts stay
    byte-identical to its own [--jobs 1] run no matter how tenants
    interleave or how many workers die. *)

type config = {
  workers : int;  (** forked worker processes *)
  batch : int;  (** trials per lease; fixed boundaries like the executor *)
  shards : int;  (** journal shards (batch [b] logs to [b mod shards]) *)
  journal_dir : string option;
      (** {!run}: the campaign's shard directory.  {!serve}: the root —
          each campaign journals under [<root>/<campaign-id>] and
          finished verdicts persist under [<root>/results]. *)
  resume : bool;  (** heal + load the journal, skip completed trials *)
  heartbeat_s : float;  (** per-worker lease deadline between messages *)
  max_lease_attempts : int;
      (** lease failures tolerated per batch before the campaign is
          poisoned *)
  compact_every : int;  (** records appended to a shard before compaction *)
  max_active : int;
      (** campaigns {!serve} schedules concurrently; the rest queue *)
  chaos_kills : int list;
      (** SIGKILL the most recent deliverer when the delivered-trial
          count crosses each threshold — the determinism harness *)
  chaos_stall_done_s : float;
      (** workers sleep this long between a batch's last trial record
          and its [Batch_done] (0 = no stall): combined with a short
          [heartbeat_s] it deterministically orphans fully-delivered
          leases, the batch-boundary crash window *)
  retry : Executor.config;
      (** worker-side trial retry and the lease re-assignment backoff
          share this policy *)
  metrics : Obs.t option;
      (** scheduler metrics: [server/workers-forked],
          [server/workers-attached], [server/leases-stolen],
          [server/heartbeats-missed], [server/retries],
          [server/compactions], [server/chaos-kills],
          [server/infra-errors], [server/tenants-*] *)
  on_progress : (Executor.progress -> unit) option;
}

val default_config : config
(** 2 workers, batch 16, 4 shards, no journal, 30 s heartbeats, 3 lease
    attempts, compaction every 4096 records, 4 concurrent campaigns,
    no chaos. *)

val run :
  ?cfg:config ->
  ?idle:(unit -> unit) ->
  ?child_close:Unix.file_descr list ->
  'a Executor.spec ->
  'a Executor.report
(** Run a spec across a private worker pool.  [idle] is called once
    per scheduler iteration.  [child_close] lists caller-held
    descriptors (a listening socket, a client connection) that forked
    workers must close rather than inherit; the scheduler adds sibling
    workers' sockets itself.
    @raise Infra.Campaign_poisoned when a batch exhausts its lease
    attempts — the campaign is infrastructure-broken. *)

(** {2 Campaign plans}

    Re-exported from {!Plan} (where workers also find them): the
    expensive, content-addressed artifacts of an app spelling. *)

type plan = Plan.plan = {
  pl_app : string;
  pl_prog : Prog.t;
  pl_target : Campaign.target;
  pl_clean_instructions : int;
  pl_golden_output : string;  (** the fault-free run's output *)
}

val plan_key : string -> string
(** Cache key of an app spelling. *)

val plan_of_app : ?cache_dir:string -> string -> (plan, string) result
(** Resolve, bake, trace and (when [cache_dir] is given) cache the
    plan for an app spelling ([CG], [IS@all], [MG@opt], ...). *)

val target_of_plan : plan -> Structure.t -> Campaign.target
(** The injection target a plan exposes for a declared structure:
    [pl_target] (the register-file surface) for [Structure.Reg],
    otherwise a structural target rebuilt from the plan's program. *)

val campaign_spec : plan -> Campaign.config -> Campaign.outcome_class Executor.spec
(** The executor spec of a campaign over a plan — built exactly the way
    {!Campaign.run_report} builds its own (same tag, same trial kernel,
    same outcome codec): the byte-identity contract with [--jobs 1].
    The target follows the config's declared [structure]. *)

val run_campaign :
  ?cfg:config ->
  ?idle:(unit -> unit) ->
  plan ->
  Campaign.config ->
  Campaign.counts * Campaign.outcome_class Executor.report

(** {2 The socket front-end} *)

val campaign_id : int -> string -> string
(** Deterministic campaign id: admission ordinal + tag hash
    ([c0007-1a2b3c4d5e]).  Distinct submissions of the same spec get
    distinct ids — and therefore distinct journal directories. *)

val serve :
  ?cfg:config ->
  ?cache_dir:string ->
  ?worker_bind:string ->
  ?worker_port_file:string ->
  socket:string ->
  unit ->
  unit
(** Listen on a Unix-domain [socket] and serve {!Proto.client_msg}
    requests until a shutdown.  Submissions are {e queued}, up to
    [cfg.max_active] running interleaved on the shared pool; each
    campaign journals under [<journal_dir>/<campaign-id>] with resume
    forced on, and its final verdict persists under
    [<journal_dir>/results/<campaign-id>] where [Fetch]/[Watch] can
    find it after the submitting connection is gone.  [Submit] with a
    [resume_id] re-attaches to a live campaign or resumes an
    interrupted one's journal under its old id.

    [worker_bind] ([HOST:PORT], port [0] for ephemeral) additionally
    listens for remote TCP workers ([ft worker --connect]); the bound
    port is written to [worker_port_file] when given.  A vanished
    remote worker is handled exactly like a SIGKILLed fork: its lease
    is stolen and the pool degrades gracefully. *)
