(** Campaign plans: everything a campaign needs that is expensive to
    compute and a pure function of the app spelling — the baked
    program, the golden (fault-free) run's instruction count and
    output, and the whole-program fault-site population.

    Plans used to live inside {!Server}; they moved here so that
    {e workers} can rebuild them too.  A multi-tenant pool cannot rely
    on the fork-time copy-on-write image any more (a worker outlives
    any single campaign and serves campaigns submitted after it was
    forked — or, for a TCP worker, runs in a different process on a
    different machine entirely), so every worker reconstructs the trial
    kernel from the ~hundred-byte {!Campaign.spec} on the wire, warmed
    by the same content-addressed {!Cache} the server uses.  Because a
    plan is a pure function of the app spelling, and the trial kernel a
    pure function of (plan, config, index), a trial computes the same
    outcome no matter which process — server, forked worker, remote
    worker — evaluates it; that is the byte-identity contract. *)

type plan = {
  pl_app : string;
  pl_prog : Prog.t;
  pl_target : Campaign.target;
  pl_clean_instructions : int;
  pl_golden_output : string;
}

(* v2: the marshaled [Campaign.target] and [Instr.intr] types grew
   constructors for the microarchitectural surfaces; a v1 cache entry
   must not be deserialized under the new layout. *)
let plan_key (app : string) : string = Cache.key ("plan:v2:" ^ app)

let plan_of_app ?(cache_dir : string option) (appname : string) :
    (plan, string) result =
  let cached =
    Option.bind cache_dir (fun dir ->
        (Cache.load ~dir ~key:(plan_key appname) : plan option))
  in
  match cached with
  | Some p -> Ok p
  | None -> (
      match Fliptracker.resolve_app appname with
      | Error e -> Error e
      | Ok app -> (
          match
            let clean, trace = App.trace app in
            let prog = App.program app in
            let target = Campaign.whole_program_target prog trace in
            {
              pl_app = appname;
              pl_prog = prog;
              pl_target = target;
              pl_clean_instructions = clean.Machine.instructions;
              pl_golden_output = clean.Machine.output;
            }
          with
          | exception e ->
              Error
                (Printf.sprintf "baking %s failed: %s" appname
                   (Printexc.to_string e))
          | plan ->
              Option.iter
                (fun dir ->
                  ignore (Cache.store ~dir ~key:(plan_key appname) plan))
                cache_dir;
              Ok plan))

(** The injection target a plan exposes for a declared structure: the
    cached whole-program (register-file) target for [Reg], or a
    structural target rebuilt from the plan's program — cheap relative
    to baking, and never trace-dependent. *)
let target_of_plan (plan : plan) (s : Structure.t) : Campaign.target =
  match s with
  | Structure.Reg -> plan.pl_target
  | Structure.Cache_tag ->
      Campaign.cache_target ~meta:true plan.pl_prog
        ~clean_instructions:plan.pl_clean_instructions
  | Structure.Cache_data ->
      Campaign.cache_target ~meta:false plan.pl_prog
        ~clean_instructions:plan.pl_clean_instructions
  | Structure.Istore -> Campaign.istore_target plan.pl_prog

(** The executor spec of a campaign over a plan — built {e exactly} the
    way {!Campaign.run_report} builds its own (same tag, same trial
    kernel, same outcome codec), which is the byte-identity contract
    with [--jobs 1]. *)
let campaign_spec (plan : plan) (ccfg : Campaign.config) :
    Campaign.outcome_class Executor.spec =
  let target = target_of_plan plan ccfg.Campaign.structure in
  let population = Campaign.target_population target in
  let trials =
    if population = 0 then 0 else Campaign.trials_for ccfg target
  in
  let verify r = App.verified r.Machine.output in
  {
    Executor.tag = Campaign.campaign_tag ccfg ~population ~trials;
    total = trials;
    run_trial =
      Campaign.trial_fun plan.pl_prog ~verify
        ~clean_instructions:plan.pl_clean_instructions ~cfg:ccfg target;
    encode = Campaign.encode_outcome;
    decode = Campaign.decode_outcome;
    should_stop = None;
  }

let spec_of_submission ?cache_dir (spec : Campaign.spec) :
    (Campaign.outcome_class Executor.spec, string) result =
  match plan_of_app ?cache_dir spec.Campaign.sp_app with
  | Error e -> Error e
  | Ok plan -> Ok (campaign_spec plan (Campaign.config_of_spec spec))
