(** The multi-tenant fair-share lease scheduler: one worker pool
    (forked children and remote TCP attachments), many concurrently
    interleaved campaigns, per-campaign fault isolation.  Type-erased:
    owners receive their trial records through a callback and keep the
    typed state; each tenant's record sequence is first-write-wins in
    index order, so its counts are byte-identical to its own
    [--jobs 1] run regardless of interleaving or worker deaths. *)

type config = {
  workers : int;  (** forked worker processes to keep at strength *)
  batch : int;  (** trials per lease; fixed boundaries like the executor *)
  shards : int;  (** journal shards per tenant *)
  heartbeat_s : float;  (** per-worker lease deadline between messages *)
  max_lease_attempts : int;
      (** lease failures tolerated per batch before {e that} campaign
          is poisoned *)
  compact_every : int;
  max_active : int;  (** campaigns scheduled concurrently; rest queue *)
  chaos_kills : int list;
      (** SIGKILL the most recent deliverer when the pool-wide
          delivered count crosses each threshold *)
  retry : Executor.config;
  metrics : Obs.t option;
}

val default_config : config

type job = {
  jb_id : string;
  jb_app : string;  (** display only *)
  jb_total : int;
  jb_header : Csexp.t;  (** journal header ({!Executor.header_record}) *)
  jb_journal : string option;  (** this campaign's own shard directory *)
  jb_resume : bool;
  jb_spec : Campaign.spec option;
      (** wire form workers rebuild the campaign from; [None] = only
          runnable on workers forked with it preloaded *)
  jb_accept : int -> Csexp.t -> bool;
      (** deliver one fresh record to the owner; [true] = decoded and
          kept (the engine marks the index filled and journals it) *)
  jb_should_stop : (int -> bool) option;
      (** early-stop predicate over contiguous prefixes at batch
          boundaries, in order *)
}

type event =
  | Progress of { completed : int; planned : int; stolen : int }
  | Finished of { completed : int; stopped_early : bool; resumed : int }
  | Poisoned of { batch : int; attempts : int; cause : Infra.cause }
  | Failed of { reason : string }  (** admission failed *)

type tenant_stats = {
  ts_id : string;
  ts_app : string;
  ts_state : string;  (** [queued], [active], [done], [poisoned], [failed] *)
  ts_completed : int;
  ts_planned : int;
  ts_leases : int;
  ts_steals : int;
}

type t

val create :
  ?cfg:config ->
  ?spawn:(close_fds:Unix.file_descr list -> int * Wire.conn) ->
  ?preloaded:(string -> bool) ->
  on_event:(string -> event -> unit) ->
  unit ->
  t
(** [spawn] forks one worker (the engine passes the sibling sockets it
    must close; add your own listener/client fds in the closure); when
    absent the pool is remote-only.  [preloaded] names campaigns baked
    into forked workers' images.  [on_event] receives every tenant's
    lifecycle, keyed by campaign id. *)

val submit : t -> job -> (unit, string) result
(** Enqueue a campaign; admitted (journal opened/resumed) when a slot
    under [max_active] frees up.  Fails on duplicate id. *)

val attach_remote : t -> Wire.conn -> unit
(** Add a remote TCP worker to the pool.  A vanished remote is handled
    exactly like a SIGKILLed fork: lease stolen, pool degrades. *)

val step : t -> idle_s:float -> unit
(** One scheduling round: admit, keep the forked pool at strength,
    assign leases fairly, wait up to [idle_s] for worker traffic,
    drain messages, enforce heartbeat deadlines. *)

val drain : t -> unit
(** [step] until no tenant is queued or active. *)

val busy : t -> bool
val shutdown_workers : t -> unit
val abort : t -> unit
(** Close active tenants' journals (synced) and kill the pool: the
    cleanup path when the caller's loop raises. *)

val stats : t -> tenant_stats list
(** Per-tenant rows in submission order. *)

val queue_depth : t -> int
val active_count : t -> int
val worker_count : t -> int
