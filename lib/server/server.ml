(** The campaign server: a crash-tolerant, {e multi-tenant} scheduler
    for deterministic trial campaigns.

    The scheduling core lives in {!Sched}: an admission queue feeding
    a fair-share lease engine over one shared worker pool — forked
    children and remote TCP attachments together.  This module keeps
    the two front doors:

    {ul
    {- {!run} executes one {!Executor.spec} to completion on a private
       engine — the drop-in, same-semantics replacement for the
       original single-campaign server.  Workers are forked with the
       spec's trial closure preloaded (a closure cannot travel on a
       wire).}
    {- {!serve} is the long-running socket service: wire-submitted
       campaigns are planned ({!Plan}), queued, and interleaved across
       the pool; each runs under a deterministic campaign id, journals
       under its own id-derived directory, and its finished verdict is
       persisted so a client can [fetch] it long after the submitting
       connection died.}}

    Determinism is per-tenant and unchanged from the single-campaign
    server: trials depend only on their index, records are accumulated
    first-write-wins in index order, so every campaign's counts are
    byte-identical to its own [--jobs 1] run no matter how many
    tenants interleave or how many workers die.  [chaos_kills] turns
    that claim into a test. *)

type config = {
  workers : int;  (** forked worker processes *)
  batch : int;  (** trials per lease; fixed boundaries like the executor *)
  shards : int;  (** journal shards (batch [b] logs to [b mod shards]) *)
  journal_dir : string option;
      (** {!run}: the campaign's shard directory.  {!serve}: the root —
          each campaign journals under [<root>/<campaign-id>] and
          finished verdicts persist under [<root>/results]. *)
  resume : bool;  (** heal + load the journal, skip completed trials *)
  heartbeat_s : float;  (** per-worker lease deadline between messages *)
  max_lease_attempts : int;
      (** lease failures tolerated per batch before the campaign is
          poisoned *)
  compact_every : int;  (** records appended to a shard before compaction *)
  max_active : int;
      (** campaigns scheduled concurrently by {!serve}; the rest wait
          in the admission queue *)
  chaos_kills : int list;
      (** SIGKILL the most recent deliverer when the delivered-trial
          count crosses each threshold (ascending); the determinism
          harness *)
  chaos_stall_done_s : float;
      (** workers sleep this long between a batch's last trial record
          and its [Batch_done] (0 = no stall): combined with a short
          [heartbeat_s] it deterministically orphans fully-delivered
          leases, the batch-boundary crash window *)
  retry : Executor.config;
      (** worker-side trial retry and the lease re-assignment backoff
          share this policy *)
  metrics : Obs.t option;
  on_progress : (Executor.progress -> unit) option;
}

let default_config =
  {
    workers = 2;
    batch = 16;
    shards = 4;
    journal_dir = None;
    resume = false;
    heartbeat_s = 30.0;
    max_lease_attempts = 3;
    compact_every = 4096;
    max_active = 4;
    chaos_kills = [];
    chaos_stall_done_s = 0.0;
    retry = Executor.default_config;
    metrics = None;
    on_progress = None;
  }

let sched_config (cfg : config) : Sched.config =
  {
    Sched.workers = cfg.workers;
    batch = cfg.batch;
    shards = cfg.shards;
    heartbeat_s = cfg.heartbeat_s;
    max_lease_attempts = cfg.max_lease_attempts;
    compact_every = cfg.compact_every;
    max_active = cfg.max_active;
    chaos_kills = cfg.chaos_kills;
    retry = cfg.retry;
    metrics = cfg.metrics;
  }

(* --- the single-spec front door ------------------------------------------ *)

let run ?(cfg = default_config) ?(idle = fun () -> ())
    ?(child_close : Unix.file_descr list = []) (spec : 'a Executor.spec) :
    'a Executor.report =
  if spec.Executor.total < 0 then invalid_arg "Server.run: negative total";
  if cfg.workers < 1 then invalid_arg "Server.run: need at least one worker";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let t0 = Unix.gettimeofday () in
  let total = spec.Executor.total in
  let outcomes : 'a Executor.outcome option array = Array.make total None in
  let cid = "job" in
  let accept i r =
    match Executor.parse_trial spec.Executor.decode r with
    | Some (j, o) when j = i ->
        outcomes.(i) <- Some o;
        true
    | Some _ | None -> false
  in
  let should_stop =
    Option.map
      (fun p boundary ->
        let pre =
          Array.init boundary (fun i ->
              match outcomes.(i) with Some o -> o | None -> assert false)
        in
        p pre boundary)
      spec.Executor.should_stop
  in
  let finished = ref None in
  let poisoned = ref None in
  let failed = ref None in
  let resumed_n = ref 0 in
  let on_event _ = function
    | Sched.Progress { completed; planned; stolen = _ } -> (
        match cfg.on_progress with
        | None -> ()
        | Some f ->
            let elapsed_s = Unix.gettimeofday () -. t0 in
            let fresh = completed - !resumed_n in
            let eta_s =
              if fresh <= 0 then 0.0
              else
                elapsed_s /. Float.of_int fresh
                *. Float.of_int (planned - completed)
            in
            f { Executor.completed; planned; elapsed_s; eta_s })
    | Sched.Finished { completed; stopped_early; resumed } ->
        resumed_n := resumed;
        finished := Some (completed, stopped_early, resumed)
    | Sched.Poisoned { batch; attempts; cause } ->
        poisoned := Some (batch, attempts, cause)
    | Sched.Failed { reason } -> failed := Some reason
  in
  (* workers carry the spec's trial closure in their fork image: a
     closure cannot travel on a wire, so this campaign only runs on
     workers forked here (which is all of them) *)
  let preload = [ (cid, fun retry -> Worker.runner_of_exec_spec ~retry spec) ] in
  let spawn ~close_fds =
    Worker.spawn ~stall_batch_done_s:cfg.chaos_stall_done_s
      ~close_fds:(child_close @ close_fds)
      ~preload
      ~retry:{ cfg.retry with Executor.metrics = None }
      ()
  in
  let eng =
    Sched.create ~cfg:(sched_config cfg) ~spawn ~preloaded:(String.equal cid)
      ~on_event ()
  in
  (* a resumed journal fills [outcomes] through [accept] before the
     Finished/first-Progress event fires, so count resumed fills here *)
  let job =
    {
      Sched.jb_id = cid;
      jb_app = spec.Executor.tag;
      jb_total = total;
      jb_header = Executor.header_record spec;
      jb_journal = cfg.journal_dir;
      jb_resume = cfg.resume;
      jb_spec = None;
      jb_accept = accept;
      jb_should_stop = should_stop;
    }
  in
  (match Sched.submit eng job with
  | Ok () -> ()
  | Error e -> invalid_arg ("Server.run: " ^ e));
  (try
     while Sched.busy eng do
       Sched.step eng ~idle_s:0.05;
       idle ()
     done
   with e ->
     Sched.abort eng;
     raise e);
  Sched.shutdown_workers eng;
  (match !failed with
  | Some reason -> failwith ("Server.run: " ^ reason)
  | None -> ());
  (match !poisoned with
  | Some (b, attempts, cause) ->
      raise (Infra.Campaign_poisoned { batch = b; attempts; cause })
  | None -> ());
  match !finished with
  | None -> assert false (* drain only returns with a terminal event *)
  | Some (completed, stopped_early, resumed) ->
      let final =
        Array.init completed (fun i ->
            match outcomes.(i) with Some o -> o | None -> assert false)
      in
      let infra_errors =
        Array.fold_left
          (fun a -> function
            | Executor.Infra_error _ -> a + 1
            | Executor.Done _ -> a)
          0 final
      in
      {
        Executor.outcomes = final;
        planned = total;
        completed;
        infra_errors;
        stopped_early;
        resumed;
        wall_s = Unix.gettimeofday () -. t0;
      }

(* --- campaign plans (re-exported from Plan) ------------------------------ *)

type plan = Plan.plan = {
  pl_app : string;
  pl_prog : Prog.t;
  pl_target : Campaign.target;
  pl_clean_instructions : int;
  pl_golden_output : string;
}

let plan_key = Plan.plan_key
let plan_of_app = Plan.plan_of_app
let target_of_plan = Plan.target_of_plan
let campaign_spec = Plan.campaign_spec

let run_campaign ?(cfg = default_config) ?idle (plan : plan)
    (ccfg : Campaign.config) :
    Campaign.counts * Campaign.outcome_class Executor.report =
  let spec = campaign_spec plan ccfg in
  let report = run ~cfg ?idle spec in
  (Campaign.counts_of_outcomes report.Executor.outcomes, report)

(* --- the socket front-end ------------------------------------------------ *)

(** Campaign ids are deterministic: the admission ordinal plus a hash
    of the campaign tag.  Two submissions of the same spec get
    {e distinct} ids (and therefore distinct journal directories) —
    the tag-derived journal collision the single-campaign server had. *)
let campaign_id (ordinal : int) (tag : string) : string =
  let h = Cache.key tag in
  Printf.sprintf "c%04d-%s" ordinal (String.sub h 0 (min 10 (String.length h)))

let id_ok (id : string) : bool =
  String.length id > 0
  && String.length id <= 64
  && String.for_all
       (function 'a' .. 'z' | '0' .. '9' | '-' -> true | _ -> false)
       id

(** The next free ordinal in a journal root that already holds
    [cNNNN-*] directories from a previous server life. *)
let next_ordinal (root : string option) : int =
  match root with
  | None -> 1
  | Some dir when Sys.file_exists dir && Sys.is_directory dir ->
      Array.fold_left
        (fun acc name ->
          if
            String.length name >= 5
            && name.[0] = 'c'
            && String.for_all
                 (function '0' .. '9' -> true | _ -> false)
                 (String.sub name 1 4)
          then max acc (1 + int_of_string (String.sub name 1 4))
          else acc)
        1 (Sys.readdir dir)
  | Some _ -> 1

(* one watcher/submitter connection of a campaign *)
type watcher = { wt_conn : Wire.conn; mutable wt_dead : bool }

type tenant_entry = {
  te_id : string;
  te_app : string;
  te_outcomes : Campaign.outcome_class Executor.outcome option array;
  mutable te_watchers : watcher list;
}

let safe_send (conn : Wire.conn) (m : Proto.server_msg) : bool =
  try
    Wire.send conn (Proto.server_to_csexp m);
    true
  with Wire.Closed | Unix.Unix_error _ -> false

let result_path (root : string) (id : string) =
  Filename.concat (Filename.concat root "results") id

let persist_result (root : string option) (id : string)
    (m : Proto.server_msg) : unit =
  match root with
  | None -> ()
  | Some root -> (
      try
        let dir = Filename.concat root "results" in
        if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
        let path = result_path root id in
        let tmp = path ^ ".tmp" in
        let oc = open_out_bin tmp in
        output_string oc (Csexp.to_string (Proto.server_to_csexp m));
        close_out oc;
        Sys.rename tmp path
      with Sys_error _ | Unix.Unix_error _ -> ())

let load_result (root : string option) (id : string) :
    Proto.server_msg option =
  match root with
  | None -> None
  | Some root -> (
      let path = result_path root id in
      match
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with
      | exception (Sys_error _ | End_of_file) -> None
      | raw -> (
          match Option.map Proto.server_of_csexp (Csexp.of_string raw) with
          | Some (Ok m) -> Some m
          | Some (Error _) | None -> None))

let serve ?(cfg = default_config) ?(cache_dir : string option)
    ?(worker_bind : string option) ?(worker_port_file : string option)
    ~(socket : string) () : unit =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* workers rebuild campaigns from wire specs through a shared
     content-addressed plan cache; give them one even when the caller
     didn't, so every fork after the first starts warm *)
  let cache_dir =
    match cache_dir with
    | Some d -> Some d
    | None ->
        let d =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "ft-plan-cache-%d" (Unix.getpid ()))
        in
        (try if not (Sys.file_exists d) then Unix.mkdir d 0o755
         with Unix.Unix_error _ -> ());
        Some d
  in
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX socket);
  Unix.listen lfd 16;
  (* the remote-worker door: plain TCP; [ft worker --connect] attaches *)
  let wfd =
    match worker_bind with
    | None -> None
    | Some addr -> (
        match Worker.parse_addr addr with
        | Error e -> invalid_arg ("Server.serve: " ^ e)
        | Ok sockaddr ->
            let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
            Unix.setsockopt fd Unix.SO_REUSEADDR true;
            Unix.bind fd sockaddr;
            Unix.listen fd 16;
            (match (worker_port_file, Unix.getsockname fd) with
            | Some path, Unix.ADDR_INET (_, port) ->
                let oc = open_out path in
                output_string oc (string_of_int port);
                close_out oc
            | _ -> ());
            Some fd)
  in
  let root = cfg.journal_dir in
  let entries : (string, tenant_entry) Hashtbl.t = Hashtbl.create 8 in
  let results : (string, Proto.server_msg) Hashtbl.t = Hashtbl.create 8 in
  let pending : (Wire.conn * float) list ref = ref [] in
  let shutdown = ref false in
  let campaigns_done = ref 0 in
  let ordinal = ref (next_ordinal root) in
  let client_fds () =
    List.map (fun (c, _) -> Wire.fd c) !pending
    @ Hashtbl.fold
        (fun _ e acc ->
          List.filter_map
            (fun w -> if w.wt_dead then None else Some (Wire.fd w.wt_conn))
            e.te_watchers
          @ acc)
        entries []
  in
  let spawn ~close_fds =
    let extra = (lfd :: Option.to_list wfd) @ client_fds () in
    Worker.spawn ~recv_timeout_s:3600.0
      ~stall_batch_done_s:cfg.chaos_stall_done_s
      ~close_fds:(extra @ close_fds)
      ~load:(Worker.plan_loader ?cache_dir)
      ~retry:{ cfg.retry with Executor.metrics = None }
      ()
  in
  let broadcast (e : tenant_entry) (m : Proto.server_msg) =
    List.iter
      (fun w -> if not w.wt_dead then w.wt_dead <- not (safe_send w.wt_conn m))
      e.te_watchers
  in
  let finish_entry (e : tenant_entry) (m : Proto.server_msg) =
    Hashtbl.replace results e.te_id m;
    persist_result root e.te_id m;
    incr campaigns_done;
    broadcast e m;
    List.iter (fun w -> Wire.close w.wt_conn) e.te_watchers;
    e.te_watchers <- []
  in
  let on_event id (ev : Sched.event) =
    match Hashtbl.find_opt entries id with
    | None -> ()
    | Some e -> (
        match ev with
        | Sched.Progress { completed; planned; stolen } ->
            broadcast e (Proto.Progress { id; completed; planned; stolen })
        | Sched.Finished { completed; _ } ->
            let final =
              Array.init completed (fun i ->
                  match e.te_outcomes.(i) with
                  | Some o -> o
                  | None -> assert false)
            in
            let counts = Campaign.counts_of_outcomes final in
            finish_entry e (Proto.Result { id; counts })
        | Sched.Poisoned { batch; attempts; cause } ->
            finish_entry e
              (Proto.Poisoned
                 { id; reason = Infra.poison_message ~batch ~attempts cause })
        | Sched.Failed { reason } ->
            finish_entry e
              (Proto.Poisoned { id; reason = "admission failed: " ^ reason }))
  in
  let eng = Sched.create ~cfg:(sched_config cfg) ~spawn ~on_event () in
  let tenant_state id =
    List.find_opt (fun s -> s.Sched.ts_id = id) (Sched.stats eng)
  in
  let final_of id =
    match Hashtbl.find_opt results id with
    | Some m -> Some m
    | None -> (
        match load_result root id with
        | Some m ->
            Hashtbl.replace results id m;
            Some m
        | None -> None)
  in
  let watch_entry id conn =
    match Hashtbl.find_opt entries id with
    | Some e ->
        e.te_watchers <- { wt_conn = conn; wt_dead = false } :: e.te_watchers
    | None -> Wire.close conn
  in
  (* enqueue one wire submission: plan (cache-warm), mint the id, hand
     the engine a job whose journal lives under the id's own directory *)
  let submit conn (spec : Campaign.spec) (resume_id : string option) =
    let reject reason =
      ignore (safe_send conn (Proto.Rejected { reason }));
      Wire.close conn
    in
    match resume_id with
    | Some id when not (id_ok id) ->
        reject (Printf.sprintf "bad campaign id %S" id)
    | _ -> (
        let already =
          match resume_id with
          | Some id when Hashtbl.mem entries id ->
              (* the campaign is live (or queued): re-attach instead of
                 resubmitting *)
              Some id
          | _ -> None
        in
        match already with
        | Some id ->
            if safe_send conn (Proto.Accepted { id }) then (
              match final_of id with
              | Some m ->
                  ignore (safe_send conn m);
                  Wire.close conn
              | None -> watch_entry id conn)
            else Wire.close conn
        | None -> (
            match Plan.plan_of_app ?cache_dir spec.Campaign.sp_app with
            | Error e -> reject e
            | Ok plan -> (
                let ccfg = Campaign.config_of_spec spec in
                let ex_spec = Plan.campaign_spec plan ccfg in
                let id =
                  match resume_id with
                  | Some id -> id
                  | None ->
                      let id = campaign_id !ordinal ex_spec.Executor.tag in
                      incr ordinal;
                      id
                in
                let entry =
                  {
                    te_id = id;
                    te_app = spec.Campaign.sp_app;
                    te_outcomes = Array.make ex_spec.Executor.total None;
                    te_watchers = [];
                  }
                in
                let accept i r =
                  match Executor.parse_trial ex_spec.Executor.decode r with
                  | Some (j, o) when j = i ->
                      entry.te_outcomes.(i) <- Some o;
                      true
                  | Some _ | None -> false
                in
                let job =
                  {
                    Sched.jb_id = id;
                    jb_app = entry.te_app;
                    jb_total = ex_spec.Executor.total;
                    jb_header = Executor.header_record ex_spec;
                    jb_journal =
                      Option.map (fun d -> Filename.concat d id) root;
                    jb_resume = true;
                    jb_spec = Some spec;
                    jb_accept = accept;
                    jb_should_stop = None;
                  }
                in
                match Sched.submit eng job with
                | Error e -> reject e
                | Ok () ->
                    Hashtbl.replace entries id entry;
                    if safe_send conn (Proto.Accepted { id }) then
                      watch_entry id conn
                    else Wire.close conn)))
  in
  let answer_status conn =
    let stats = Sched.stats eng in
    let tenants =
      List.map
        (fun s ->
          {
            Proto.tn_id = s.Sched.ts_id;
            tn_app = s.Sched.ts_app;
            tn_state = s.Sched.ts_state;
            tn_completed = s.Sched.ts_completed;
            tn_planned = s.Sched.ts_planned;
            tn_leases = s.Sched.ts_leases;
            tn_steals = s.Sched.ts_steals;
          })
        stats
    in
    let active = List.filter (fun s -> s.Sched.ts_state = "active") stats in
    let sum f = List.fold_left (fun a s -> a + f s) 0 active in
    ignore
      (safe_send conn
         (Proto.Status_reply
            {
              Proto.st_state =
                (if active <> [] then "running" else "idle");
              st_completed = sum (fun s -> s.Sched.ts_completed);
              st_planned = sum (fun s -> s.Sched.ts_planned);
              st_campaigns = !campaigns_done;
              st_queued = Sched.queue_depth eng;
              st_active = Sched.active_count eng;
              st_workers = Sched.worker_count eng;
              st_tenants = tenants;
            }));
    Wire.close conn
  in
  let answer_fetch conn id =
    (match final_of id with
    | Some m -> ignore (safe_send conn m)
    | None -> (
        match tenant_state id with
        | Some s when s.Sched.ts_state = "queued" ->
            let position =
              let rec pos n = function
                | [] -> n
                | s' :: rest ->
                    if s'.Sched.ts_id = id then n
                    else if s'.Sched.ts_state = "queued" then pos (n + 1) rest
                    else pos n rest
              in
              pos 1 (Sched.stats eng)
            in
            ignore (safe_send conn (Proto.Queued_reply { id; position }))
        | Some s ->
            ignore
              (safe_send conn
                 (Proto.Progress
                    {
                      id;
                      completed = s.Sched.ts_completed;
                      planned = s.Sched.ts_planned;
                      stolen = s.Sched.ts_steals;
                    }))
        | None ->
            ignore
              (safe_send conn
                 (Proto.Rejected
                    { reason = Printf.sprintf "unknown campaign id %s" id }))));
    Wire.close conn
  in
  let answer_watch conn id =
    match final_of id with
    | Some m ->
        ignore (safe_send conn m);
        Wire.close conn
    | None ->
        if Hashtbl.mem entries id then watch_entry id conn
        else begin
          ignore
            (safe_send conn
               (Proto.Rejected
                  { reason = Printf.sprintf "unknown campaign id %s" id }));
          Wire.close conn
        end
  in
  let dispatch conn (m : Proto.client_msg) =
    match m with
    | Proto.Submit { spec; resume_id } -> submit conn spec resume_id
    | Proto.Status -> answer_status conn
    | Proto.Fetch { id } -> answer_fetch conn id
    | Proto.Watch { id } -> answer_watch conn id
    | Proto.Shutdown ->
        shutdown := true;
        ignore (safe_send conn Proto.Bye);
        Wire.close conn
  in
  let accept_ready fd =
    match Unix.select [ fd ] [] [] 0.0 with
    | [], _, _ -> None
    | _ :: _, _, _ ->
        let c, _ = Unix.accept fd in
        Some c
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> None
  in
  while not !shutdown do
    (* one scheduling round; the engine's select bounds the idle sleep *)
    Sched.step eng ~idle_s:0.02;
    (* new clients *)
    (match accept_ready lfd with
    | Some fd ->
        pending := (Wire.of_fd fd, Unix.gettimeofday () +. 5.0) :: !pending
    | None -> ());
    (* new remote workers *)
    (match Option.map accept_ready wfd with
    | Some (Some fd) ->
        (try Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        Sched.attach_remote eng (Wire.of_fd fd)
    | Some None | None -> ());
    (* poll pending clients for their (single) request; one bad client
       must never take the server down *)
    let now = Unix.gettimeofday () in
    pending :=
      List.filter
        (fun (conn, deadline) ->
          match Wire.try_recv conn with
          | Some raw -> (
              (match Proto.client_of_csexp raw with
              | Ok m -> dispatch conn m
              | Error e ->
                  ignore (safe_send conn (Proto.Rejected { reason = e }));
                  Wire.close conn);
              false)
          | None ->
              if now > deadline then begin
                Wire.close conn;
                false
              end
              else true
          | exception (Wire.Closed | Wire.Corrupt _) ->
              Wire.close conn;
              false
          | exception e ->
              Printf.eprintf "ft_server: dropping client connection: %s\n%!"
                (Printexc.to_string e);
              Wire.close conn;
              false)
        !pending
  done;
  (* graceful exit: journals synced + closed (resumable), pool killed;
     anyone still watching hears the door close as EOF *)
  Sched.abort eng;
  List.iter (fun (c, _) -> Wire.close c) !pending;
  Hashtbl.iter
    (fun _ e -> List.iter (fun w -> Wire.close w.wt_conn) e.te_watchers)
    entries;
  (try Unix.close lfd with Unix.Unix_error _ -> ());
  (match wfd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  try Unix.unlink socket with Unix.Unix_error _ -> ()
