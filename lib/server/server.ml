(** The campaign server: a crash-tolerant multi-process scheduler for
    deterministic trial campaigns.

    The server runs an {!Executor.spec} — the same abstraction the
    in-process executor runs — but fans the fixed contiguous batches
    out to forked worker processes under {e leases}: a batch is leased
    to one worker with a refreshable wall-clock deadline
    ({!Watchdog.deadline}); every worker message (heartbeat, trial
    record, batch-done) refreshes it.  A worker that dies or stops
    heartbeating is SIGKILLed, its lease is {e stolen} — returned to
    the queue after a jittered exponential backoff
    ({!Executor.backoff_s}, the same policy trials use) — and a
    replacement worker is forked from the warm server image.  A batch
    whose lease keeps failing poisons the campaign
    ({!Infra.Campaign_poisoned}): the server refuses rather than
    fabricate counts.

    Durability is a {!Shard}ed append-only journal: each batch's trial
    records go to shard [batch mod shards], fsync'd at batch-done, each
    shard healing its own torn tail on resume and compacting in place
    once enough records accumulate.  Records are byte-compatible with
    the in-process executor's journal, so either engine can resume the
    other's campaign.

    Determinism: trials depend only on their index, outcomes are
    accumulated in index order, and duplicate deliveries (a stolen
    batch recomputed by the thief) are suppressed first-write-wins — so
    the outcome sequence, and therefore the counts, are byte-identical
    to a [--jobs 1] run no matter how many workers die mid-flight.
    The [chaos_kills] knob turns that claim into a test: it SIGKILLs
    the most recently delivering worker each time the total delivered
    count crosses a threshold. *)

type config = {
  workers : int;  (** forked worker processes *)
  batch : int;  (** trials per lease; fixed boundaries like the executor *)
  shards : int;  (** journal shards (batch [b] logs to [b mod shards]) *)
  journal_dir : string option;  (** sharded journal directory *)
  resume : bool;  (** heal + load the journal, skip completed trials *)
  heartbeat_s : float;  (** per-worker lease deadline between messages *)
  max_lease_attempts : int;
      (** lease failures tolerated per batch before the campaign is
          poisoned *)
  compact_every : int;  (** records appended to a shard before compaction *)
  chaos_kills : int list;
      (** SIGKILL the most recent deliverer when the delivered-trial
          count crosses each threshold (ascending); the determinism
          harness *)
  chaos_stall_done_s : float;
      (** workers sleep this long between a batch's last trial record
          and its [Batch_done] (0 = no stall): combined with a short
          [heartbeat_s] it deterministically orphans fully-delivered
          leases, the batch-boundary crash window *)
  retry : Executor.config;
      (** worker-side trial retry and the lease re-assignment backoff
          share this policy *)
  metrics : Obs.t option;
  on_progress : (Executor.progress -> unit) option;
}

let default_config =
  {
    workers = 2;
    batch = 16;
    shards = 4;
    journal_dir = None;
    resume = false;
    heartbeat_s = 30.0;
    max_lease_attempts = 3;
    compact_every = 4096;
    chaos_kills = [];
    chaos_stall_done_s = 0.0;
    retry = Executor.default_config;
    metrics = None;
    on_progress = None;
  }

(* --- the lease scheduler ------------------------------------------------ *)

type lease = Todo | Leased of int  (** worker slot *) | Done_

type wslot = {
  w_pid : int;
  w_conn : Wire.conn;
  mutable w_batch : int option;
  w_dl : Watchdog.deadline;
}

let trial_key (r : Csexp.t) : string option =
  match r with
  | Csexp.List (Csexp.Atom "t" :: Csexp.Atom idx :: _) -> Some idx
  | _ -> None

let run ?(cfg = default_config) ?(idle = fun () -> ())
    ?(child_close : Unix.file_descr list = []) (spec : 'a Executor.spec) :
    'a Executor.report =
  if spec.Executor.total < 0 then invalid_arg "Server.run: negative total";
  if cfg.workers < 1 then invalid_arg "Server.run: need at least one worker";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let t0 = Unix.gettimeofday () in
  let obs_count name n =
    match cfg.metrics with Some m -> Obs.count m name n | None -> ()
  in
  let total = spec.Executor.total in
  let batch = max 1 cfg.batch in
  let nbatches = (total + batch - 1) / batch in
  let outcomes : 'a Executor.outcome option array = Array.make total None in
  (* journal: create fresh or heal-and-resume the shard directory *)
  let header = Executor.header_record spec in
  let journal, resumed =
    match cfg.journal_dir with
    | None -> (None, 0)
    | Some dir ->
        if cfg.resume && Sys.file_exists dir then begin
          let sh, records =
            Shard.open_resume ~dir ~shards:cfg.shards ~header
          in
          List.iter
            (fun r ->
              match Executor.parse_trial spec.Executor.decode r with
              | Some (i, o) when i >= 0 && i < total -> outcomes.(i) <- Some o
              | Some _ | None -> ())
            records;
          ( Some sh,
            Array.fold_left
              (fun n -> function Some _ -> n + 1 | None -> n)
              0 outcomes )
        end
        else (Some (Shard.create ~dir ~shards:cfg.shards ~header), 0)
  in
  let lease = Array.make nbatches Todo in
  let attempts = Array.make nbatches 0 in
  let eligible = Array.make nbatches 0.0 in
  let batch_range b = (b * batch, min total ((b + 1) * batch)) in
  let first_unfilled b =
    let lo, hi = batch_range b in
    let rec go i = if i >= hi then None else
        match outcomes.(i) with None -> Some i | Some _ -> go (i + 1)
    in
    go lo
  in
  let open_batches = ref 0 in
  for b = 0 to nbatches - 1 do
    match first_unfilled b with
    | None -> lease.(b) <- Done_
    | Some _ -> incr open_batches
  done;
  let workers : wslot option array = Array.make cfg.workers None in
  let fork_slot s =
    (* every fd the server holds that this child must not inherit:
       sibling workers' server-end sockets plus whatever the caller
       added (the serve front-end's listening socket) *)
    let inherited =
      child_close
      @ List.filter_map
          (Option.map (fun w -> Wire.fd w.w_conn))
          (Array.to_list workers)
    in
    let pid, conn =
      Worker.spawn ~stall_batch_done_s:cfg.chaos_stall_done_s
        ~close_fds:inherited
        ~retry:{ cfg.retry with Executor.metrics = None }
        ~trial:spec.Executor.run_trial ~encode:spec.Executor.encode ()
    in
    obs_count "server/workers-forked" 1;
    workers.(s) <-
      Some
        { w_pid = pid; w_conn = conn; w_batch = None;
          w_dl = Watchdog.arm ~seconds:cfg.heartbeat_s }
  in
  let sigkill pid = try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> () in
  let reap ?(force = false) pid =
    if force then sigkill pid;
    try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()
  in
  let poisoned : (int * Infra.cause) option ref = ref None in
  (* a dead or stalled worker: kill, reap, steal its lease (with the
     jittered backoff before re-assignment), drop the slot *)
  let worker_down s (cause : Infra.cause) =
    match workers.(s) with
    | None -> ()
    | Some w ->
        Wire.close w.w_conn;
        reap ~force:true w.w_pid;
        (match w.w_batch with
        | Some b when lease.(b) = Leased s ->
            attempts.(b) <- attempts.(b) + 1;
            obs_count "server/leases-stolen" 1;
            lease.(b) <- Todo;
            eligible.(b) <-
              Unix.gettimeofday ()
              +. Executor.backoff_s cfg.retry b (attempts.(b) - 1);
            if attempts.(b) > cfg.max_lease_attempts then
              poisoned := Some (b, cause)
        | _ -> ());
        workers.(s) <- None
  in
  let shutdown_workers () =
    Array.iteri
      (fun s w ->
        match w with
        | None -> ()
        | Some w ->
            (try Wire.send w.w_conn (Proto.to_worker_to_csexp Proto.Quit)
             with Wire.Closed | Unix.Unix_error _ -> ());
            Wire.close w.w_conn;
            (* grace period, then force *)
            let rec wait k =
              match Unix.waitpid [ Unix.WNOHANG ] w.w_pid with
              | 0, _ ->
                  if k = 0 then reap ~force:true w.w_pid
                  else (Unix.sleepf 0.02; wait (k - 1))
              | _ -> ()
              | exception Unix.Unix_error _ -> ()
            in
            wait 100;
            workers.(s) <- None)
      workers
  in
  (* chaos: thresholds on total delivered trials, ascending *)
  let kills = ref (List.sort compare cfg.chaos_kills) in
  let delivered = ref 0 in
  let fresh = ref 0 in
  (* early-stop bookkeeping mirrors the executor: the predicate sees
     contiguous completed prefixes at fixed batch boundaries, in order *)
  let prefix = ref 0 in
  let checked = ref 0 in
  let stop_at = ref None in
  let advance_prefix () =
    while !prefix < total && outcomes.(!prefix) <> None do incr prefix done;
    match spec.Executor.should_stop with
    | None -> ()
    | Some p ->
        let continue_ = ref true in
        while !continue_ && !stop_at = None && !checked < nbatches do
          let boundary = min total ((!checked + 1) * batch) in
          if !prefix >= boundary then begin
            incr checked;
            let pre =
              Array.init boundary (fun i ->
                  match outcomes.(i) with Some o -> o | None -> assert false)
            in
            if p pre boundary then stop_at := Some boundary
          end
          else continue_ := false
        done
  in
  advance_prefix ();
  let progress () =
    match cfg.on_progress with
    | None -> ()
    | Some f ->
        let completed =
          Array.fold_left
            (fun n -> function Some _ -> n + 1 | None -> n)
            0 outcomes
        in
        let elapsed_s = Unix.gettimeofday () -. t0 in
        let eta_s =
          if !fresh = 0 then 0.0
          else
            elapsed_s /. Float.of_int !fresh
            *. Float.of_int (total - completed)
        in
        f { Executor.completed; planned = total; elapsed_s; eta_s }
  in
  (* accept one worker message; true = keep draining this worker *)
  let handle s (w : wslot) (msg : Csexp.t) : bool =
    Watchdog.refresh w.w_dl;
    match Proto.from_worker_of_csexp msg with
    | Error _ -> true
    | Ok (Proto.Ready _) | Ok (Proto.Heartbeat _) -> true
    | Ok (Proto.Trial r) -> (
        match Executor.parse_trial spec.Executor.decode r with
        | Some (i, o) when i >= 0 && i < total && outcomes.(i) = None ->
            outcomes.(i) <- Some o;
            incr fresh;
            (match o with
            | Executor.Infra_error _ -> obs_count "server/infra-errors" 1
            | Executor.Done _ -> ());
            (match journal with
            | Some sh -> Shard.append sh ~shard:(i / batch) r
            | None -> ());
            incr delivered;
            (match !kills with
            | k :: rest when !delivered >= k ->
                kills := rest;
                obs_count "server/chaos-kills" 1;
                sigkill w.w_pid;
                false  (* EOF will surface next round and steal the lease *)
            | _ -> true)
        | Some _ -> true  (* duplicate from a stolen batch: first write wins *)
        | None -> true)
    | Ok (Proto.Batch_done { batch = b; retries }) ->
        obs_count "server/retries" retries;
        if b >= 0 && b < nbatches && lease.(b) = Leased s then begin
          lease.(b) <- Done_;
          decr open_batches;
          w.w_batch <- None;
          (match journal with
          | Some sh ->
              Shard.sync sh ~shard:b;
              if Shard.appended sh ~shard:b >= cfg.compact_every then begin
                ignore (Shard.compact sh ~key:trial_key ~shard:b);
                obs_count "server/compactions" 1
              end
          | None -> ());
          advance_prefix ();
          progress ()
        end;
        true
  in
  let assign () =
    Array.iteri
      (fun s w ->
        match w with
        | Some w when w.w_batch = None ->
            let now = Unix.gettimeofday () in
            let rec find b =
              if b >= nbatches then None
              else if lease.(b) = Todo && eligible.(b) <= now then Some b
              else find (b + 1)
            in
            (match find 0 with
            | None -> ()
            | Some b -> (
                match first_unfilled b with
                | None ->
                    (* a stolen batch whose records all arrived before
                       the thief ran: nothing left to compute — but the
                       boundary still closes here, so the prefix (and
                       the early-stop predicate) must advance exactly as
                       it would on Batch_done, or a campaign whose last
                       open batch dies this way reports a stale,
                       truncated prefix *)
                    lease.(b) <- Done_;
                    decr open_batches;
                    advance_prefix ();
                    progress ()
                | Some lo ->
                    let _, hi = batch_range b in
                    (try
                       Wire.send w.w_conn
                         (Proto.to_worker_to_csexp (Proto.Lease { batch = b; lo; hi }));
                       lease.(b) <- Leased s;
                       w.w_batch <- Some b;
                       Watchdog.refresh w.w_dl
                     with Wire.Closed ->
                       worker_down s
                         (Infra.Worker_lost { pid = w.w_pid; batch = None }))))
        | _ -> ())
      workers
  in
  if total > 0 && !open_batches > 0 then begin
    for s = 0 to cfg.workers - 1 do fork_slot s done;
    (try
       while !open_batches > 0 && !poisoned = None && !stop_at = None do
         assign ();
         (* wait for worker traffic; select just bounds the idle sleep —
            every live worker is drained below regardless *)
         (match
            Unix.select
              (List.filter_map
                 (Option.map (fun w -> Wire.fd w.w_conn))
                 (Array.to_list workers))
              [] [] 0.05
          with
         | _ -> ()
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
         Array.iteri
           (fun s w ->
             match w with
             | None -> ()
             | Some w -> (
                 try
                   let continue_ = ref true in
                   let rec drain () =
                     if !continue_ then
                       match Wire.try_recv w.w_conn with
                       | Some msg ->
                           continue_ := handle s w msg;
                           drain ()
                       | None -> ()
                   in
                   drain ()
                 with
                 | Wire.Closed ->
                     worker_down s
                       (Infra.Worker_lost { pid = w.w_pid; batch = w.w_batch })
                 | Wire.Corrupt m ->
                     worker_down s (Infra.Wire_fault { message = m })))
           workers;
         (* heartbeat deadlines: a leased worker that went quiet *)
         Array.iteri
           (fun s w ->
             match w with
             | Some w when w.w_batch <> None && Watchdog.deadline_expired w.w_dl
               ->
                 obs_count "server/heartbeats-missed" 1;
                 worker_down s
                   (Infra.Lease_expired
                      {
                        batch = Option.value ~default:(-1) w.w_batch;
                        pid = w.w_pid;
                        heartbeat_s = cfg.heartbeat_s;
                      })
             | _ -> ())
           workers;
         (* keep the pool at strength while work remains *)
         if !poisoned = None then
           Array.iteri
             (fun s w ->
               if w = None && !open_batches > 0 then fork_slot s)
             workers;
         idle ()
       done
     with e ->
       shutdown_workers ();
       (match journal with Some sh -> Shard.sync_all sh; Shard.close sh | None -> ());
       raise e);
    shutdown_workers ()
  end;
  (match journal with
  | Some sh ->
      Shard.sync_all sh;
      Shard.close sh
  | None -> ());
  (match !poisoned with
  | Some (b, cause) ->
      raise
        (Infra.Campaign_poisoned { batch = b; attempts = attempts.(b); cause })
  | None -> ());
  (* idempotent: guards `completed` against any future path that marks
     a batch Done_ without advancing the prefix *)
  advance_prefix ();
  let completed = match !stop_at with Some n -> n | None -> !prefix in
  let final =
    Array.init completed (fun i ->
        match outcomes.(i) with Some o -> o | None -> assert false)
  in
  let infra_errors =
    Array.fold_left
      (fun a -> function Executor.Infra_error _ -> a + 1 | Executor.Done _ -> a)
      0 final
  in
  {
    Executor.outcomes = final;
    planned = total;
    completed;
    infra_errors;
    stopped_early = !stop_at <> None;
    resumed;
    wall_s = Unix.gettimeofday () -. t0;
  }

(* --- campaign plans (content-addressed warm start) ---------------------- *)

(** Everything a campaign needs that is expensive to compute and a pure
    function of the app spelling: the baked program, the golden
    (fault-free) run's instruction count and output, and the
    whole-program fault-site population. *)
type plan = {
  pl_app : string;
  pl_prog : Prog.t;
  pl_target : Campaign.target;
  pl_clean_instructions : int;
  pl_golden_output : string;
}

(* v2: the marshaled [Campaign.target] and [Instr.intr] types grew
   constructors for the microarchitectural surfaces; a v1 cache entry
   must not be deserialized under the new layout. *)
let plan_key (app : string) : string = Cache.key ("plan:v2:" ^ app)

let plan_of_app ?(cache_dir : string option) (appname : string) :
    (plan, string) result =
  let cached =
    Option.bind cache_dir (fun dir ->
        (Cache.load ~dir ~key:(plan_key appname) : plan option))
  in
  match cached with
  | Some p -> Ok p
  | None -> (
      match Fliptracker.resolve_app appname with
      | Error e -> Error e
      | Ok app -> (
          match
            let clean, trace = App.trace app in
            let prog = App.program app in
            let target = Campaign.whole_program_target prog trace in
            {
              pl_app = appname;
              pl_prog = prog;
              pl_target = target;
              pl_clean_instructions = clean.Machine.instructions;
              pl_golden_output = clean.Machine.output;
            }
          with
          | exception e ->
              Error
                (Printf.sprintf "baking %s failed: %s" appname
                   (Printexc.to_string e))
          | plan ->
              Option.iter
                (fun dir ->
                  ignore (Cache.store ~dir ~key:(plan_key appname) plan))
                cache_dir;
              Ok plan))

(** The injection target a plan exposes for a declared structure: the
    cached whole-program (register-file) target for [Reg], or a
    structural target rebuilt from the plan's program — cheap relative
    to baking, and never trace-dependent. *)
let target_of_plan (plan : plan) (s : Structure.t) : Campaign.target =
  match s with
  | Structure.Reg -> plan.pl_target
  | Structure.Cache_tag ->
      Campaign.cache_target ~meta:true plan.pl_prog
        ~clean_instructions:plan.pl_clean_instructions
  | Structure.Cache_data ->
      Campaign.cache_target ~meta:false plan.pl_prog
        ~clean_instructions:plan.pl_clean_instructions
  | Structure.Istore -> Campaign.istore_target plan.pl_prog

(** The executor spec of a campaign over a plan — built {e exactly} the
    way {!Campaign.run_report} builds its own (same tag, same trial
    kernel, same outcome codec), which is the byte-identity contract
    with [--jobs 1]. *)
let campaign_spec (plan : plan) (ccfg : Campaign.config) :
    Campaign.outcome_class Executor.spec =
  let target = target_of_plan plan ccfg.Campaign.structure in
  let population = Campaign.target_population target in
  let trials =
    if population = 0 then 0 else Campaign.trials_for ccfg target
  in
  let verify r = App.verified r.Machine.output in
  {
    Executor.tag = Campaign.campaign_tag ccfg ~population ~trials;
    total = trials;
    run_trial =
      Campaign.trial_fun plan.pl_prog ~verify
        ~clean_instructions:plan.pl_clean_instructions ~cfg:ccfg target;
    encode = Campaign.encode_outcome;
    decode = Campaign.decode_outcome;
    should_stop = None;
  }

let run_campaign ?(cfg = default_config) ?idle (plan : plan)
    (ccfg : Campaign.config) : Campaign.counts * Campaign.outcome_class Executor.report =
  let spec = campaign_spec plan ccfg in
  let report = run ~cfg ?idle spec in
  (Campaign.counts_of_outcomes report.Executor.outcomes, report)

(* --- the socket front-end ----------------------------------------------- *)

type serve_state = {
  mutable ss_running : bool;  (** a campaign is in flight *)
  mutable ss_completed : int;
  mutable ss_planned : int;
  mutable ss_campaigns : int;
  mutable ss_shutdown : bool;
}

let answer_status (conn : Wire.conn) (st : serve_state) : unit =
  Wire.send conn
    (Proto.server_to_csexp
       (Proto.Status_reply
          {
            Proto.st_state = (if st.ss_running then "running" else "idle");
            st_completed = st.ss_completed;
            st_planned = st.ss_planned;
            st_campaigns = st.ss_campaigns;
          }))

let serve ?(cfg = default_config) ?(cache_dir : string option)
    ~(socket : string) () : unit =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX socket);
  Unix.listen lfd 8;
  let st =
    { ss_running = false; ss_completed = 0; ss_planned = 0; ss_campaigns = 0;
      ss_shutdown = false }
  in
  let next_id = ref 0 in
  let accept_one timeout =
    match Unix.select [ lfd ] [] [] timeout with
    | [], _, _ -> None
    | _ :: _, _, _ ->
        let fd, _ = Unix.accept lfd in
        Some (Wire.of_fd fd)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> None
  in
  (* answer a secondary client while a campaign runs: status is served
     live; a concurrent submit is refused, not queued *)
  let quick_answer conn =
    (try
       match Proto.client_of_csexp (Wire.recv conn ~timeout_s:2.0) with
       | Ok Proto.Status -> answer_status conn st
       | Ok (Proto.Submit _) ->
           Wire.send conn
             (Proto.server_to_csexp
                (Proto.Rejected { reason = "busy: a campaign is running" }))
       | Ok Proto.Shutdown ->
           st.ss_shutdown <- true;
           Wire.send conn (Proto.server_to_csexp Proto.Bye)
       | Error e ->
           Wire.send conn (Proto.server_to_csexp (Proto.Rejected { reason = e }))
     with
    | Wire.Closed | Wire.Timeout _ | Wire.Corrupt _ -> ()
    | e ->
        (* one bad client must never take the server down mid-campaign *)
        Printf.eprintf "ft_server: dropping client connection: %s\n%!"
          (Printexc.to_string e));
    Wire.close conn
  in
  let submit conn (spec : Campaign.spec) =
    incr next_id;
    let id = !next_id in
    let safe_send m =
      try Wire.send conn (Proto.server_to_csexp m)
      with Wire.Closed | Unix.Unix_error _ -> ()
    in
    match plan_of_app ?cache_dir spec.Campaign.sp_app with
    | Error e -> safe_send (Proto.Rejected { reason = e })
    | Ok plan -> (
        safe_send (Proto.Accepted { id });
        let ccfg = Campaign.config_of_spec spec in
        let ex_spec = campaign_spec plan ccfg in
        st.ss_running <- true;
        st.ss_completed <- 0;
        st.ss_planned <- ex_spec.Executor.total;
        Fun.protect ~finally:(fun () -> st.ss_running <- false) @@ fun () ->
        (* each campaign journals under its own tag-derived directory,
           so one server can host many campaigns without mixing logs *)
        let cfg =
          {
            cfg with
            journal_dir =
              Option.map
                (fun dir ->
                  Filename.concat dir
                    ("campaign-" ^ Cache.key ex_spec.Executor.tag))
                cfg.journal_dir;
            resume = true;
            on_progress =
              Some
                (fun (p : Executor.progress) ->
                  st.ss_completed <- p.Executor.completed;
                  safe_send
                    (Proto.Progress
                       {
                         id;
                         completed = p.Executor.completed;
                         planned = p.Executor.planned;
                         stolen = 0;
                       }));
          }
        in
        let idle () =
          match accept_one 0.0 with Some c -> quick_answer c | None -> ()
        in
        match run ~cfg ~idle ~child_close:[ lfd; Wire.fd conn ] ex_spec with
        | report ->
            let counts = Campaign.counts_of_outcomes report.Executor.outcomes in
            st.ss_campaigns <- st.ss_campaigns + 1;
            safe_send (Proto.Result { id; counts })
        | exception Infra.Campaign_poisoned { batch; attempts; cause } ->
            safe_send
              (Proto.Poisoned
                 { id; reason = Infra.poison_message ~batch ~attempts cause })
        | exception e ->
            safe_send (Proto.Rejected { reason = Printexc.to_string e }))
  in
  while not st.ss_shutdown do
    match accept_one 0.2 with
    | None -> ()
    | Some conn ->
        (try
           match Proto.client_of_csexp (Wire.recv conn ~timeout_s:5.0) with
           | Ok Proto.Status -> answer_status conn st
           | Ok Proto.Shutdown ->
               st.ss_shutdown <- true;
               Wire.send conn (Proto.server_to_csexp Proto.Bye)
           | Ok (Proto.Submit spec) -> submit conn spec
           | Error e ->
               Wire.send conn
                 (Proto.server_to_csexp (Proto.Rejected { reason = e }))
         with
        | Wire.Closed | Wire.Timeout _ | Wire.Corrupt _ -> ()
        | e ->
            (* catch-all: a client whose handling raises anything else
               (an unexpected [Unix_error] on a reply write, a journal
               exception surfacing outside [run]'s own handlers, ...)
               costs that connection, never the server *)
            Printf.eprintf "ft_server: dropping client connection: %s\n%!"
              (Printexc.to_string e));
        Wire.close conn
  done;
  (try Unix.close lfd with Unix.Unix_error _ -> ());
  try Unix.unlink socket with Unix.Unix_error _ -> ()
