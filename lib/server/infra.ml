(** Structured infrastructure-failure taxonomy for the campaign server.

    The executor already separates experiment outcomes from
    infrastructure failures ({!Executor.Infra_error}), but it only ever
    produces one kind — a trial that kept raising.  A multi-process
    server has more ways to lose work, and operators need to tell them
    apart: a worker the kernel killed is not a flaky trial, and a lease
    that timed out twice on the same batch suggests a poisoned input,
    not a scheduling glitch.  Causes render to stable
    [infra/<kind>: ...] strings so they survive the journal round-trip
    (the journal stores infra errors as plain messages) and can be
    re-classified on inspection. *)

type cause =
  | Trial_raised of { idx : int; message : string }
      (** the classic executor case: the trial function kept raising *)
  | Worker_lost of { pid : int; batch : int option }
      (** a worker process died (crash or SIGKILL) holding a lease *)
  | Lease_expired of { batch : int; pid : int; heartbeat_s : float }
      (** a worker stopped heartbeating before its wall-clock deadline *)
  | Wire_fault of { message : string }
      (** the transport gave up: corruption past the resend window *)
  | Load_failed of { cid : string; reason : string }
      (** no worker can rebuild this campaign from its wire spec *)

let kind = function
  | Trial_raised _ -> "trial"
  | Worker_lost _ -> "worker-lost"
  | Lease_expired _ -> "lease-expired"
  | Wire_fault _ -> "wire"
  | Load_failed _ -> "load-failed"

let to_message (c : cause) : string =
  match c with
  | Trial_raised { idx; message } ->
      Printf.sprintf "infra/trial: trial %d: %s" idx message
  | Worker_lost { pid; batch } ->
      Printf.sprintf "infra/worker-lost: pid %d died%s" pid
        (match batch with
        | Some b -> Printf.sprintf " holding batch %d" b
        | None -> " idle")
  | Lease_expired { batch; pid; heartbeat_s } ->
      Printf.sprintf
        "infra/lease-expired: batch %d on pid %d missed its %.1fs heartbeat \
         deadline"
        batch pid heartbeat_s
  | Wire_fault { message } -> Printf.sprintf "infra/wire: %s" message
  | Load_failed { cid; reason } ->
      Printf.sprintf "infra/load-failed: campaign %s: %s" cid reason

(** The [<kind>] token of a journaled infra message.  Messages written
    before the taxonomy existed (bare ["trial %d: ..."] strings from
    the in-process executor) classify as ["trial"]; anything else is
    ["unknown"]. *)
let kind_of_message (m : string) : string =
  let prefixed p = String.length m >= String.length p
                   && String.equal (String.sub m 0 (String.length p)) p in
  if prefixed "infra/" then
    match String.index_opt m ':' with
    | Some i -> String.sub m 6 (i - 6)
    | None -> "unknown"
  else if prefixed "trial " then "trial"
  else "unknown"

exception
  Campaign_poisoned of { batch : int; attempts : int; cause : cause }
(** A batch exhausted its lease attempts: the campaign is
    infrastructure-broken (every worker that touches the batch dies or
    stalls) and is refused rather than padded with fabricated counts. *)

let () =
  Printexc.register_printer (function
    | Campaign_poisoned { batch; attempts; cause } ->
        Some
          (Printf.sprintf
             "Infra.Campaign_poisoned: batch %d failed %d lease attempts \
              (last: %s); campaign refused"
             batch attempts (to_message cause))
    | _ -> None)

let poison_message ~(batch : int) ~(attempts : int) (cause : cause) : string =
  Printf.sprintf "batch %d failed %d lease attempts (last: %s)" batch attempts
    (to_message cause)
