(** Content-addressed store of expensive campaign artifacts.

    Baking an app (two-phase calibration build), tracing its golden
    run, and enumerating its fault-site population dominate campaign
    start-up; the results are pure functions of the app spelling.  The
    server therefore stores them under a key derived from a canonical
    description string, so a restarted server — or a freshly forked
    worker warm-starting a campaign it has never seen — loads the baked
    plan instead of recomputing it.

    Entries are [Marshal]ed values wrapped with an FNV-1a checksum and
    written atomically (temp file, fsync, rename), so a torn write or a
    stale entry from an incompatible build deserializes to [None] and
    is simply recomputed — the cache can never poison a campaign.

    The checksum guards bytes, not types: [Marshal] would happily
    deserialize an entry written by a binary with a different layout of
    the stored type into garbage.  Every entry therefore also carries a
    build fingerprint (format magic, compiler version, and the digest of
    the writing executable); [load] rejects entries whose fingerprint is
    not this process's own, so only a value marshalled by this exact
    binary is ever unmarshalled. *)

let format_magic = "ftcache:2\n"

(* the writing build's identity: an entry is only trusted when it was
   written by this exact executable (same type layouts, same Marshal
   compatibility) *)
let fingerprint : string Lazy.t =
  lazy
    (Printf.sprintf "%s:%s" Sys.ocaml_version
       (try Digest.to_hex (Digest.file Sys.executable_name)
        with Sys_error _ | Unix.Unix_error _ -> "no-exe-digest"))

let key (description : string) : string =
  Printf.sprintf "%016Lx" (Wire.checksum description)

let path ~(dir : string) ~(key : string) : string =
  Filename.concat dir (key ^ ".bin")

let rec ensure_dir (dir : string) =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then ensure_dir parent;
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let store ~(dir : string) ~(key : string) (v : 'a) : string =
  ensure_dir dir;
  let payload = Marshal.to_string v [] in
  let blob =
    format_magic
    ^ Marshal.to_string (Lazy.force fingerprint, Wire.checksum payload, payload) []
  in
  let final = path ~dir ~key in
  let tmp = final ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let oc = Unix.out_channel_of_descr fd in
  output_string oc blob;
  flush oc;
  Unix.fsync fd;
  close_out oc;
  Sys.rename tmp final;
  final

let load ~(dir : string) ~(key : string) : 'a option =
  let file = path ~dir ~key in
  match
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let n = in_channel_length ic in
        really_input_string ic n)
  with
  | exception Sys_error _ -> None
  | blob ->
      let magic_len = String.length format_magic in
      if
        String.length blob < magic_len
        || not (String.equal (String.sub blob 0 magic_len) format_magic)
      then None
      else (
        match
          (Marshal.from_string blob magic_len : string * int64 * string)
        with
        | exception _ -> None
        | fp, sum, payload ->
            if not (String.equal fp (Lazy.force fingerprint)) then None
            else if not (Int64.equal sum (Wire.checksum payload)) then None
            else (
              match Marshal.from_string payload 0 with
              | exception _ -> None
              | v -> Some v))

let entries (dir : string) : string list =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | files ->
      Array.to_list files
      |> List.filter (fun f -> Filename.check_suffix f ".bin")
      |> List.map Filename.chop_extension
      |> List.sort compare
