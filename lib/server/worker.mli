(** The forked worker's side of the campaign protocol: a copy-on-write
    child that loops on leases, runs trials through
    {!Executor.attempt}, and streams a heartbeat before and a trial
    record after every trial — so a SIGKILL loses at most the in-flight
    trial. *)

val run :
  ?recv_timeout_s:float ->
  ?stall_batch_done_s:float ->
  conn:Wire.conn ->
  retry:Executor.config ->
  trial:(int -> 'a) ->
  encode:('a -> string) ->
  unit ->
  unit
(** Serve leases until [Quit], the server hangs up, or no command
    arrives within [recv_timeout_s] (default 60 s — a worker must never
    outlive its server).  [stall_batch_done_s] (default 0) is a chaos
    hook that sleeps between a batch's last trial record and its
    [Batch_done], deterministically widening the window in which a
    crash orphans a fully-delivered lease. *)

val spawn :
  ?recv_timeout_s:float ->
  ?stall_batch_done_s:float ->
  ?close_fds:Unix.file_descr list ->
  retry:Executor.config ->
  trial:(int -> 'a) ->
  encode:('a -> string) ->
  unit ->
  int * Wire.conn
(** Fork one worker; returns [(pid, server_end)].  The child exits via
    [Unix._exit] and never returns to the caller's code.  [close_fds]
    are parent-held descriptors (sibling workers' sockets, a listening
    socket) closed in the child immediately after the fork, so a worker
    never props open connections that belong to the server. *)
