(** The forked worker's side of the campaign protocol: a copy-on-write
    child that loops on leases, runs trials through
    {!Executor.attempt}, and streams a heartbeat before and a trial
    record after every trial — so a SIGKILL loses at most the in-flight
    trial. *)

val run :
  ?recv_timeout_s:float ->
  conn:Wire.conn ->
  retry:Executor.config ->
  trial:(int -> 'a) ->
  encode:('a -> string) ->
  unit ->
  unit
(** Serve leases until [Quit], the server hangs up, or no command
    arrives within [recv_timeout_s] (default 60 s — a worker must never
    outlive its server). *)

val spawn :
  ?recv_timeout_s:float ->
  retry:Executor.config ->
  trial:(int -> 'a) ->
  encode:('a -> string) ->
  unit ->
  int * Wire.conn
(** Fork one worker; returns [(pid, server_end)].  The child exits via
    [Unix._exit] and never returns to the caller's code. *)
