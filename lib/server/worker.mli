(** The worker side of the campaign protocol: a forked child or a
    remote TCP process serving a multi-tenant pool.  Campaigns arrive
    as wire specs ([Load]) and are rebuilt through {!Plan} (cache
    warm); each leased trial runs through {!Executor.attempt} and
    streams a heartbeat before and a trial record after — so a SIGKILL
    or a vanished machine loses at most the in-flight trial. *)

type runner = int -> Csexp.t
(** A loaded campaign: index -> journal-ready trial record. *)

type loader = Executor.config -> Campaign.spec -> (runner, string) result
(** Builds a runner from a wire submission, under the worker's
    (metrics-instrumented) retry config. *)

val make_runner :
  retry:Executor.config ->
  run_trial:(int -> 'a) ->
  encode:('a -> string) ->
  runner
(** Wrap a typed trial function: [Executor.attempt] + record encoding. *)

val runner_of_exec_spec : retry:Executor.config -> 'a Executor.spec -> runner

val plan_loader : ?cache_dir:string -> loader
(** The spec-driven loader every production worker uses:
    {!Plan.spec_of_submission} + {!runner_of_exec_spec}. *)

val run :
  ?recv_timeout_s:float ->
  ?stall_batch_done_s:float ->
  ?preload:(string * (Executor.config -> runner)) list ->
  ?load:loader ->
  conn:Wire.conn ->
  retry:Executor.config ->
  unit ->
  unit
(** Serve leases until [Quit], the server hangs up, or no command
    arrives within [recv_timeout_s] (default 60 s — a worker must never
    outlive its server).  [preload] are campaigns baked into this
    worker's image (closure specs that cannot travel on a wire); [load]
    serves everything else; a lease for a campaign the worker cannot
    serve is answered with [Load_failed], never silently dropped.
    [stall_batch_done_s] (default 0) is a chaos hook that sleeps
    between a batch's last trial record and its [Batch_done],
    deterministically widening the batch-boundary crash window. *)

val spawn :
  ?recv_timeout_s:float ->
  ?stall_batch_done_s:float ->
  ?close_fds:Unix.file_descr list ->
  ?preload:(string * (Executor.config -> runner)) list ->
  ?load:loader ->
  retry:Executor.config ->
  unit ->
  int * Wire.conn
(** Fork one worker; returns [(pid, server_end)].  The child exits via
    [Unix._exit] and never returns to the caller's code.  [close_fds]
    are parent-held descriptors (sibling workers' sockets, a listening
    socket) closed in the child immediately after the fork, so a worker
    never props open connections that belong to the server. *)

val parse_addr : string -> (Unix.sockaddr, string) result
(** [HOST:PORT] (empty host = 127.0.0.1; names resolve). *)

val connect :
  ?retry:Executor.config -> addr:string -> unit -> (Wire.conn, string) result
(** TCP-connect to a server's worker port, attempts bounded by the
    executor's jittered-backoff policy. *)

val run_remote :
  ?recv_timeout_s:float ->
  ?stall_batch_done_s:float ->
  ?retry:Executor.config ->
  ?cache_dir:string ->
  addr:string ->
  unit ->
  (unit, string) result
(** [ft worker --connect HOST:PORT]: attach over TCP and serve leases
    until the server goes away. *)

val spawn_remote :
  ?recv_timeout_s:float ->
  ?stall_batch_done_s:float ->
  ?retry:Executor.config ->
  ?cache_dir:string ->
  ?preload:(string * (Executor.config -> runner)) list ->
  addr:string ->
  unit ->
  int
(** Fork a process that attaches to [addr] as a remote worker (the
    chaos harness's mixed fork/TCP pool); returns the child pid —
    SIGKILL it to simulate a vanished remote. *)
