(** The forked worker's side of the campaign protocol.

    A worker is a child process holding a copy-on-write image of the
    server's address space — the baked program, the fault-site
    population, the whole trial closure — so it starts warm: no wire
    transfer of the plan, no re-baking.  It loops on leases, runs each
    trial through {!Executor.attempt} (the {e same} bounded-jittered-
    retry policy the in-process executor uses, so a raising trial
    produces the same [Infra_error] record either way), and streams a
    heartbeat before and a {!Executor.trial_record} after every trial.

    The streaming granularity is the crash-tolerance contract: when the
    server SIGKILLs a stalled worker or the kernel OOM-kills one, every
    trial already streamed is safe in the server's journal and only the
    in-flight trial is re-run by whoever steals the lease. *)

let heartbeat (conn : Wire.conn) (idx : int) : unit =
  Wire.send conn (Proto.from_worker_to_csexp (Proto.Heartbeat { idx }))

(** Serve leases until [Quit] or the server hangs up.  [recv_timeout_s]
    bounds how long an idle worker waits for its next command before
    concluding the server is gone (a worker must never outlive its
    server as an orphan burning CPU).

    [stall_batch_done_s] is a chaos hook (like {!Wire.set_inject}): it
    widens the otherwise microsecond window between a batch's last
    trial record and its [Batch_done], the exact window in which a
    crash orphans a fully-delivered lease — the server must steal it
    and close the batch without recomputing anything. *)
let run ?(recv_timeout_s = 60.0) ?(stall_batch_done_s = 0.0)
    ~(conn : Wire.conn) ~(retry : Executor.config)
    ~(trial : int -> 'a) ~(encode : 'a -> string) () : unit =
  let spec =
    {
      Executor.tag = "worker";
      total = max_int;
      run_trial = trial;
      encode;
      decode = (fun _ -> None);
      should_stop = None;
    }
  in
  let retries = Obs.create () in
  let retry = { retry with Executor.metrics = Some retries } in
  let last_retries = ref 0 in
  Wire.send conn (Proto.from_worker_to_csexp (Proto.Ready { pid = Unix.getpid () }));
  let rec loop () =
    match Proto.to_worker_of_csexp (Wire.recv conn ~timeout_s:recv_timeout_s) with
    | Error _ -> loop ()  (* not for us; a dead server shows up as Closed *)
    | Ok Proto.Quit -> ()
    | Ok (Proto.Lease { batch; lo; hi }) ->
        for i = lo to hi - 1 do
          heartbeat conn i;
          let o = Executor.attempt retry spec i in
          Wire.send conn
            (Proto.from_worker_to_csexp
               (Proto.Trial (Executor.trial_record encode i o)))
        done;
        if stall_batch_done_s > 0.0 then Unix.sleepf stall_batch_done_s;
        let total =
          Option.value ~default:0 (Obs.counter_value retries "executor/retries")
        in
        let fresh = total - !last_retries in
        last_retries := total;
        Wire.send conn
          (Proto.from_worker_to_csexp (Proto.Batch_done { batch; retries = fresh }));
        loop ()
  in
  try loop () with Wire.Closed | Wire.Timeout _ -> ()

(** Fork one worker running [run]; returns the child pid and the
    server's end of the socketpair.  The child never returns: it exits
    through [Unix._exit] so no parent state (buffered channels, atexit
    handlers, the test runner) replays in the child.

    [close_fds] are descriptors the parent holds that the child must
    not inherit — other workers' server-end sockets, a listening
    socket.  A fork copies them all; left open in the child they keep a
    crashed server's socket path and its peers' connections alive, so
    siblings would only notice a dead server via the recv timeout
    instead of an immediate EOF. *)
let spawn ?recv_timeout_s ?stall_batch_done_s
    ?(close_fds : Unix.file_descr list = []) ~(retry : Executor.config)
    ~(trial : int -> 'a) ~(encode : 'a -> string) () : int * Wire.conn =
  flush stdout;
  flush stderr;
  let server_end, worker_end = Wire.pair () in
  match Unix.fork () with
  | 0 ->
      Wire.close server_end;
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        close_fds;
      Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
      let code =
        match
          run ?recv_timeout_s ?stall_batch_done_s ~conn:worker_end ~retry
            ~trial ~encode ()
        with
        | () -> 0
        | exception _ -> 125
      in
      Unix._exit code
  | pid ->
      Wire.close worker_end;
      (pid, server_end)
