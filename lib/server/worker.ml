(** The worker side of the campaign protocol.

    A worker — a forked child of the server or a remote process
    attached over TCP — serves a {e multi-tenant} pool: it holds a
    table of loaded campaigns and runs leases for any of them.  A
    campaign arrives as a [Load] carrying the ~hundred-byte
    {!Campaign.spec}; the worker rebuilds the trial kernel through
    {!Plan.spec_of_submission} (content-addressed cache warm), so a
    forked and a remote worker compute byte-identical records for the
    same index.  Each leased trial runs through {!Executor.attempt}
    (the {e same} bounded-jittered-retry policy the in-process executor
    uses, so a raising trial produces the same [Infra_error] record
    either way), streaming a heartbeat before and a trial record after
    every trial.

    The streaming granularity is the crash-tolerance contract: when the
    server SIGKILLs a stalled worker, the kernel OOM-kills one, or a
    remote worker's machine vanishes, every trial already streamed is
    safe in the server's journal and only the in-flight trial is re-run
    by whoever steals the lease. *)

(** A campaign the worker can serve: index -> journal-ready trial
    record.  Builders receive the worker's (metrics-instrumented)
    retry config so batch-level retry counts aggregate correctly. *)
type runner = int -> Csexp.t

type loader = Executor.config -> Campaign.spec -> (runner, string) result

let make_runner (type a) ~(retry : Executor.config) ~(run_trial : int -> a)
    ~(encode : a -> string) : runner =
  let espec =
    {
      Executor.tag = "worker";
      total = max_int;
      run_trial;
      encode;
      decode = (fun _ -> None);
      should_stop = None;
    }
  in
  fun i -> Executor.trial_record encode i (Executor.attempt retry espec i)

let runner_of_exec_spec ~(retry : Executor.config)
    (spec : 'a Executor.spec) : runner =
  make_runner ~retry ~run_trial:spec.Executor.run_trial
    ~encode:spec.Executor.encode

(** The spec-driven loader every production worker uses: resolve + bake
    the submission's app (plan-cache warm) and wrap its trial kernel. *)
let plan_loader ?(cache_dir : string option) : loader =
 fun retry spec ->
  Result.map
    (runner_of_exec_spec ~retry)
    (Plan.spec_of_submission ?cache_dir spec)

let heartbeat (conn : Wire.conn) (idx : int) : unit =
  Wire.send conn (Proto.from_worker_to_csexp (Proto.Heartbeat { idx }))

(** Serve leases until [Quit] or the server hangs up.  [recv_timeout_s]
    bounds how long an idle worker waits for its next command before
    concluding the server is gone (a worker must never outlive its
    server as an orphan burning CPU).

    [preload] are campaigns baked into this worker's image (the
    closure-spec path of {!Server.run}, where the trial function cannot
    travel on a wire); [load] serves everything else.  A [Lease] for a
    campaign the worker cannot load is answered with [Load_failed] —
    never silently dropped — so the scheduler steals the batch back.

    [stall_batch_done_s] is a chaos hook (like {!Wire.set_inject}): it
    widens the otherwise microsecond window between a batch's last
    trial record and its [Batch_done], the exact window in which a
    crash orphans a fully-delivered lease — the server must steal it
    and close the batch without recomputing anything. *)
let run ?(recv_timeout_s = 60.0) ?(stall_batch_done_s = 0.0)
    ?(preload : (string * (Executor.config -> runner)) list = [])
    ?(load : loader option) ~(conn : Wire.conn) ~(retry : Executor.config) ()
    : unit =
  let retries = Obs.create () in
  let retry = { retry with Executor.metrics = Some retries } in
  let last_retries = ref 0 in
  let loaded : (string, runner) Hashtbl.t = Hashtbl.create 8 in
  List.iter (fun (cid, mk) -> Hashtbl.replace loaded cid (mk retry)) preload;
  let send m = Wire.send conn (Proto.from_worker_to_csexp m) in
  send (Proto.Ready { pid = Unix.getpid () });
  let load_campaign cid spec =
    match Hashtbl.find_opt loaded cid with
    | Some _ -> Ok ()
    | None -> (
        match load with
        | None -> Error "worker has no campaign loader"
        | Some f -> (
            match f retry spec with
            | Ok r ->
                Hashtbl.replace loaded cid r;
                Ok ()
            | Error e -> Error e))
  in
  let rec loop () =
    match
      Proto.to_worker_of_csexp (Wire.recv conn ~timeout_s:recv_timeout_s)
    with
    | Error _ -> loop ()  (* not for us; a dead server shows up as Closed *)
    | Ok Proto.Quit -> ()
    | Ok (Proto.Load { cid; spec }) ->
        (* heartbeat first: baking a cold plan can take a while, and the
           scheduler's deadline must see life before the work starts *)
        heartbeat conn 0;
        (match load_campaign cid spec with
        | Ok () -> send (Proto.Loaded { cid })
        | Error reason -> send (Proto.Load_failed { cid; reason }));
        loop ()
    | Ok (Proto.Lease { cid; batch; lo; hi }) ->
        (match Hashtbl.find_opt loaded cid with
        | None ->
            send
              (Proto.Load_failed { cid; reason = "campaign is not loaded" })
        | Some runner ->
            for i = lo to hi - 1 do
              heartbeat conn i;
              send (Proto.Trial { cid; record = runner i })
            done;
            if stall_batch_done_s > 0.0 then Unix.sleepf stall_batch_done_s;
            let total =
              Option.value ~default:0
                (Obs.counter_value retries "executor/retries")
            in
            let fresh = total - !last_retries in
            last_retries := total;
            send (Proto.Batch_done { cid; batch; retries = fresh }));
        loop ()
  in
  try loop () with Wire.Closed | Wire.Timeout _ -> ()

(** Fork one worker running [run]; returns the child pid and the
    server's end of the socketpair.  The child never returns: it exits
    through [Unix._exit] so no parent state (buffered channels, atexit
    handlers, the test runner) replays in the child.

    [close_fds] are descriptors the parent holds that the child must
    not inherit — other workers' server-end sockets, a listening
    socket.  A fork copies them all; left open in the child they keep a
    crashed server's socket path and its peers' connections alive, so
    siblings would only notice a dead server via the recv timeout
    instead of an immediate EOF. *)
let spawn ?recv_timeout_s ?stall_batch_done_s
    ?(close_fds : Unix.file_descr list = [])
    ?(preload : (string * (Executor.config -> runner)) list = [])
    ?(load : loader option) ~(retry : Executor.config) () : int * Wire.conn =
  flush stdout;
  flush stderr;
  let server_end, worker_end = Wire.pair () in
  match Unix.fork () with
  | 0 ->
      Wire.close server_end;
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        close_fds;
      Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
      let code =
        match
          run ?recv_timeout_s ?stall_batch_done_s ~preload ?load
            ~conn:worker_end ~retry ()
        with
        | () -> 0
        | exception _ -> 125
      in
      Unix._exit code
  | pid ->
      Wire.close worker_end;
      (pid, server_end)

(* --- remote (TCP) workers ------------------------------------------------ *)

let parse_addr (addr : string) : (Unix.sockaddr, string) result =
  match String.rindex_opt addr ':' with
  | None -> Error (Printf.sprintf "bad address %S (expected HOST:PORT)" addr)
  | Some i -> (
      let host = String.sub addr 0 i in
      let port = String.sub addr (i + 1) (String.length addr - i - 1) in
      match int_of_string_opt port with
      | None -> Error (Printf.sprintf "bad port %S in %S" port addr)
      | Some port -> (
          let host = if host = "" then "127.0.0.1" else host in
          match Unix.inet_addr_of_string host with
          | ip -> Ok (Unix.ADDR_INET (ip, port))
          | exception Failure _ -> (
              match Unix.gethostbyname host with
              | { Unix.h_addr_list = [||]; _ } ->
                  Error (Printf.sprintf "cannot resolve host %S" host)
              | h -> Ok (Unix.ADDR_INET (h.Unix.h_addr_list.(0), port))
              | exception Not_found ->
                  Error (Printf.sprintf "cannot resolve host %S" host))))

(** Connect to a server's worker port, with the executor's
    jittered-backoff policy bounding the attempts — a worker started a
    moment before its server (or re-attaching across a server restart)
    retries instead of dying. *)
let connect ?(retry = Executor.default_config) ~(addr : string) () :
    (Wire.conn, string) result =
  match parse_addr addr with
  | Error e -> Error e
  | Ok sockaddr ->
      let attempts = max 1 retry.Executor.max_retries + 1 in
      let rec go k last_err =
        if k >= attempts then
          Error
            (Printf.sprintf
               "cannot attach to campaign server at %s after %d attempts: %s"
               addr attempts last_err)
        else begin
          if k > 0 then Unix.sleepf (Executor.backoff_s retry 0 (k - 1));
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          match
            Unix.connect fd sockaddr;
            Unix.setsockopt fd Unix.TCP_NODELAY true
          with
          | () -> Ok (Wire.of_fd fd)
          | exception Unix.Unix_error (e, _, _) ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              go (k + 1) (Unix.error_message e)
        end
      in
      go 0 "never tried"

(** Attach to a server over TCP and serve leases until the server goes
    away: [ft worker --connect HOST:PORT].  Campaigns are rebuilt from
    their wire specs through [cache_dir]. *)
let run_remote ?recv_timeout_s ?stall_batch_done_s ?retry
    ?(cache_dir : string option) ~(addr : string) () : (unit, string) result
    =
  let retry_cfg = Option.value ~default:Executor.default_config retry in
  match connect ~retry:retry_cfg ~addr () with
  | Error e -> Error e
  | Ok conn ->
      Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
      Fun.protect
        ~finally:(fun () -> Wire.close conn)
        (fun () ->
          run ?recv_timeout_s ?stall_batch_done_s ~load:(plan_loader ?cache_dir)
            ~conn ~retry:retry_cfg ();
          Ok ())

(** Fork a process that attaches to [addr] as a remote worker — the
    chaos harness's way of standing up a mixed fork/TCP pool.  Returns
    the child pid (SIGKILL it to simulate a vanished remote). *)
let spawn_remote ?recv_timeout_s ?stall_batch_done_s ?retry ?cache_dir
    ?(preload : (string * (Executor.config -> runner)) list = [])
    ~(addr : string) () : int =
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      let retry_cfg = Option.value ~default:Executor.default_config retry in
      let code =
        match connect ~retry:retry_cfg ~addr () with
        | Error _ -> 124
        | Ok conn -> (
            Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
            match
              run ?recv_timeout_s ?stall_batch_done_s ~preload
                ~load:(plan_loader ?cache_dir) ~conn ~retry:retry_cfg ()
            with
            | () -> 0
            | exception _ -> 125)
      in
      Unix._exit code
  | pid -> pid
