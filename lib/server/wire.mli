(** Framed csexp transport over a stream socket, modeled on {!Comm}'s
    reliable delivery mode: per-connection sequence numbers, FNV-1a
    payload checksums, duplicate suppression, and receiver-driven
    resend from a bounded retransmit buffer.  Blocking receives carry a
    wall-clock deadline and raise {!Timeout} instead of hanging. *)

type stats = {
  mutable frames_sent : int;
  mutable frames_delivered : int;
  mutable dup_discarded : int;
  mutable checksum_failures : int;
  mutable nacks_sent : int;
  mutable resent : int;
}

type conn

exception Closed
(** The peer hung up (EOF, EPIPE, ECONNRESET). *)

exception Timeout of { what : string; after_s : float }
(** A deadline expired with no deliverable frame. *)

exception Corrupt of string
(** The stream is unrecoverable: unframed bytes, a nack past the
    retransmit buffer, or a payload that checksums but won't parse. *)

val of_fd : Unix.file_descr -> conn
val pair : unit -> conn * conn
(** A connected [socketpair], one end each (for forked workers). *)

val send : conn -> Csexp.t -> unit
(** Frame and write one message; keeps it in the retransmit buffer
    until it ages out.  @raise Closed on a dead peer. *)

val recv : conn -> timeout_s:float -> Csexp.t
(** The next in-sequence message.  Duplicates are discarded; gaps and
    checksum failures trigger a nack and the wait continues.
    @raise Timeout when the deadline passes first. *)

val try_recv : conn -> Csexp.t option
(** Non-blocking [recv]: [None] when no complete frame is available. *)

val stats : conn -> stats

val fd : conn -> Unix.file_descr
(** The underlying descriptor (for [select] in an event loop). *)

val set_inject : conn -> (string -> string list) option -> unit
(** Test hook: rewrite each outgoing raw frame into the chunks actually
    written — duplicate it (dup suppression), corrupt a byte (checksum
    + resend), or drop it (gap + resend). *)

val close : conn -> unit

val checksum : string -> int64
(** FNV-1a 64 of a byte string (exposed for the cache's integrity
    check). *)
