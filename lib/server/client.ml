(** Client side of the campaign service: connect to the server's
    Unix-domain socket, speak one request per connection, and (for
    submissions) consume the progress stream until the final verdict.
    Every call is synchronous and deadline-bounded; a dead or absent
    server surfaces as [Error], never a hang. *)

let connect (socket : string) : (Wire.conn, string) result =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () -> Ok (Wire.of_fd fd)
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot reach campaign server at %s: %s" socket
          (Unix.error_message e))

let request (socket : string) (msg : Proto.client_msg)
    (k : Wire.conn -> ('a, string) result) : ('a, string) result =
  match connect socket with
  | Error e -> Error e
  | Ok conn ->
      Fun.protect
        ~finally:(fun () -> Wire.close conn)
        (fun () ->
          match
            Wire.send conn (Proto.client_to_csexp msg);
            k conn
          with
          | r -> r
          | exception Wire.Closed -> Error "server hung up"
          | exception Wire.Timeout { after_s; _ } ->
              Error (Printf.sprintf "server did not answer within %.1fs" after_s)
          | exception Wire.Corrupt m -> Error ("wire corruption: " ^ m))

let status ?(timeout_s = 5.0) ~(socket : string) () :
    (Proto.status_info, string) result =
  request socket Proto.Status (fun conn ->
      match Proto.server_of_csexp (Wire.recv conn ~timeout_s) with
      | Ok (Proto.Status_reply s) -> Ok s
      | Ok _ -> Error "unexpected reply to a status probe"
      | Error e -> Error e)

let shutdown ?(timeout_s = 5.0) ~(socket : string) () : (unit, string) result =
  request socket Proto.Shutdown (fun conn ->
      match Proto.server_of_csexp (Wire.recv conn ~timeout_s) with
      | Ok Proto.Bye -> Ok ()
      | Ok _ -> Error "unexpected reply to a shutdown request"
      | Error e -> Error e)

(** Submit a campaign and block until its verdict.  [timeout_s] bounds
    the {e silence}, not the campaign: every progress frame resets it.
    [on_progress] sees each streamed progress report. *)
let submit ?(timeout_s = 300.0)
    ?(on_progress : (completed:int -> planned:int -> unit) option)
    ~(socket : string) (spec : Campaign.spec) :
    (Campaign.counts, string) result =
  request socket (Proto.Submit spec) (fun conn ->
      let rec await () =
        match Proto.server_of_csexp (Wire.recv conn ~timeout_s) with
        | Ok (Proto.Accepted _) -> await ()
        | Ok (Proto.Progress { completed; planned; _ }) ->
            (match on_progress with
            | Some f -> f ~completed ~planned
            | None -> ());
            await ()
        | Ok (Proto.Result { counts; _ }) -> Ok counts
        | Ok (Proto.Poisoned { reason; _ }) ->
            Error ("campaign poisoned: " ^ reason)
        | Ok (Proto.Rejected { reason }) -> Error reason
        | Ok (Proto.Status_reply _ | Proto.Bye) ->
            Error "unexpected reply to a submission"
        | Error e -> Error e
      in
      await ())
