(** Client side of the campaign service: connect to the server's
    Unix-domain socket, speak one request per connection, and (for
    submissions and watches) consume the progress stream until the
    final verdict.

    Transport failures are first-class: connecting to a server that
    is not up yet (ECONNREFUSED, a missing socket) or that hangs up
    before reading the request retries under the executor's own
    jittered-backoff policy ({!Executor.backoff_s}), bounded by its
    [max_retries]; exhausting the attempts surfaces a structured
    {!error}, never a hang.  A submission whose connection drops
    {e after} the server accepted it does not lose the campaign: the
    client re-attaches by id ([Watch]) and keeps streaming. *)

type error =
  | Unreachable of { socket : string; attempts : int; last : string }
      (** connect/send kept failing; [last] is the final errno text *)
  | Refused of { reason : string }  (** the server said no *)
  | Poisoned of { id : string; reason : string }
      (** the campaign died of infrastructure, not of faults *)
  | Protocol of { message : string }
      (** unexpected frame, timeout or corruption mid-conversation *)

let error_message = function
  | Unreachable { socket; attempts; last } ->
      Printf.sprintf "cannot reach campaign server at %s after %d attempts: %s"
        socket attempts last
  | Refused { reason } -> reason
  | Poisoned { id; reason } ->
      Printf.sprintf "campaign %s poisoned: %s" id reason
  | Protocol { message } -> message

(** What [Fetch] finds under a campaign id. *)
type fetched =
  | Finished of Campaign.counts
  | Running of { completed : int; planned : int; stolen : int }
  | Queued of { position : int }

let retryable_errno = function
  | Unix.ECONNREFUSED | Unix.ENOENT | Unix.ECONNRESET | Unix.EPIPE -> true
  | _ -> false

let connect ?(retry = Executor.default_config) (socket : string) :
    (Wire.conn, error) result =
  let attempts = max 1 retry.Executor.max_retries + 1 in
  let rec go k last =
    if k >= attempts then Error (Unreachable { socket; attempts; last })
    else begin
      if k > 0 then Unix.sleepf (Executor.backoff_s retry 0 (k - 1));
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX socket) with
      | () -> Ok (Wire.of_fd fd)
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          if retryable_errno e then go (k + 1) (Unix.error_message e)
          else
            Error
              (Unreachable
                 { socket; attempts = k + 1; last = Unix.error_message e })
    end
  in
  go 0 "never tried"

(** One request.  Connect failures and a peer that hangs up {e before
    the request frame is on the wire} are retried (the server cannot
    have acted on anything); once [k] is running the conversation has
    begun and its failures are final. *)
let request ?(retry = Executor.default_config) (socket : string)
    (msg : Proto.client_msg) (k : Wire.conn -> ('a, error) result) :
    ('a, error) result =
  let attempts = max 1 retry.Executor.max_retries + 1 in
  let rec go n =
    match connect ~retry socket with
    | Error e -> Error e
    | Ok conn -> (
        match Wire.send conn (Proto.client_to_csexp msg) with
        | () ->
            Fun.protect
              ~finally:(fun () -> Wire.close conn)
              (fun () ->
                match k conn with
                | r -> r
                | exception Wire.Closed ->
                    Error (Protocol { message = "server hung up" })
                | exception Wire.Timeout { after_s; _ } ->
                    Error
                      (Protocol
                         {
                           message =
                             Printf.sprintf
                               "server did not answer within %.1fs" after_s;
                         })
                | exception Wire.Corrupt m ->
                    Error (Protocol { message = "wire corruption: " ^ m }))
        | exception (Wire.Closed | Unix.Unix_error (Unix.EPIPE, _, _)) ->
            Wire.close conn;
            if n + 1 >= attempts then
              Error
                (Unreachable
                   {
                     socket;
                     attempts = n + 1;
                     last = "server hung up before reading the request";
                   })
            else begin
              Unix.sleepf (Executor.backoff_s retry 0 n);
              go (n + 1)
            end)
  in
  go 0

let status ?retry ?(timeout_s = 5.0) ~(socket : string) () :
    (Proto.status_info, error) result =
  request ?retry socket Proto.Status (fun conn ->
      match Proto.server_of_csexp (Wire.recv conn ~timeout_s) with
      | Ok (Proto.Status_reply s) -> Ok s
      | Ok _ -> Error (Protocol { message = "unexpected reply to a status probe" })
      | Error e -> Error (Protocol { message = e }))

let shutdown ?(timeout_s = 5.0) ~(socket : string) () : (unit, error) result =
  (* no retry: shutting down an absent server should fail fast *)
  request ~retry:{ Executor.default_config with Executor.max_retries = 0 }
    socket Proto.Shutdown (fun conn ->
      match Proto.server_of_csexp (Wire.recv conn ~timeout_s) with
      | Ok Proto.Bye -> Ok ()
      | Ok _ ->
          Error (Protocol { message = "unexpected reply to a shutdown request" })
      | Error e -> Error (Protocol { message = e }))

let fetch ?retry ?(timeout_s = 5.0) ~(socket : string) ~(id : string) () :
    (fetched, error) result =
  request ?retry socket (Proto.Fetch { id }) (fun conn ->
      match Proto.server_of_csexp (Wire.recv conn ~timeout_s) with
      | Ok (Proto.Result { counts; _ }) -> Ok (Finished counts)
      | Ok (Proto.Progress { completed; planned; stolen; _ }) ->
          Ok (Running { completed; planned; stolen })
      | Ok (Proto.Queued_reply { position; _ }) -> Ok (Queued { position })
      | Ok (Proto.Poisoned { id; reason }) -> Error (Poisoned { id; reason })
      | Ok (Proto.Rejected { reason }) -> Error (Refused { reason })
      | Ok _ -> Error (Protocol { message = "unexpected reply to a fetch" })
      | Error e -> Error (Protocol { message = e }))

(* consume a progress stream until the verdict; [`Dropped] means the
   transport died mid-stream — the caller decides whether to re-attach *)
let stream conn ~timeout_s
    ~(on_progress :
       (completed:int -> planned:int -> stolen:int -> unit) option) :
    [ `Final of (Campaign.counts, error) result | `Dropped ] =
  let rec await () =
    match Proto.server_of_csexp (Wire.recv conn ~timeout_s) with
    | Ok (Proto.Accepted _) -> await ()
    | Ok (Proto.Progress { completed; planned; stolen; _ }) ->
        (match on_progress with
        | Some f -> f ~completed ~planned ~stolen
        | None -> ());
        await ()
    | Ok (Proto.Result { counts; _ }) -> `Final (Ok counts)
    | Ok (Proto.Poisoned { id; reason }) ->
        `Final (Error (Poisoned { id; reason }))
    | Ok (Proto.Rejected { reason }) -> `Final (Error (Refused { reason }))
    | Ok (Proto.Queued_reply _ | Proto.Status_reply _ | Proto.Bye) ->
        `Final
          (Error (Protocol { message = "unexpected frame in a progress stream" }))
    | Error e -> `Final (Error (Protocol { message = e }))
    | exception (Wire.Closed | Wire.Timeout _ | Wire.Corrupt _) -> `Dropped
  in
  await ()

(** Attach to a campaign by id and stream until its verdict.  A
    connection that drops mid-stream re-attaches (the server keeps the
    campaign and its result either way); the re-attach budget refills
    on every received frame, so only a {e persistently} dead server
    exhausts it. *)
let watch ?(retry = Executor.default_config) ?(timeout_s = 300.0)
    ?(on_progress : (completed:int -> planned:int -> stolen:int -> unit) option)
    ~(socket : string) ~(id : string) () : (Campaign.counts, error) result =
  let budget = max 1 retry.Executor.max_retries in
  let rec attach remaining =
    match
      request ~retry socket (Proto.Watch { id }) (fun conn ->
          Ok (stream conn ~timeout_s ~on_progress))
    with
    | Error e -> Error e
    | Ok (`Final r) -> r
    | Ok `Dropped ->
        if remaining <= 0 then
          Error
            (Protocol
               { message = "connection to the campaign server kept dropping" })
        else attach (remaining - 1)
  in
  attach budget

(** Submit a campaign and block until its verdict; returns the
    campaign id with the counts.  [timeout_s] bounds the {e silence},
    not the campaign: every progress frame resets it.  [resume_id]
    re-attaches to a live campaign or resumes an interrupted one's
    journal.  Once the server has said [Accepted] ([on_accepted] sees
    the id), a dropped connection re-attaches by id instead of
    resubmitting — the campaign is never lost or duplicated. *)
let submit ?(retry = Executor.default_config) ?(timeout_s = 300.0)
    ?(on_progress : (completed:int -> planned:int -> stolen:int -> unit) option)
    ?(on_accepted : (string -> unit) option) ?(resume_id : string option)
    ~(socket : string) (spec : Campaign.spec) :
    (string * Campaign.counts, error) result =
  let outcome =
    request ~retry socket (Proto.Submit { spec; resume_id }) (fun conn ->
        match Proto.server_of_csexp (Wire.recv conn ~timeout_s) with
        | Ok (Proto.Accepted { id }) -> (
            (match on_accepted with Some f -> f id | None -> ());
            match stream conn ~timeout_s ~on_progress with
            | `Final r -> Ok (`Done (id, r))
            | `Dropped -> Ok (`Reattach id))
        | Ok (Proto.Rejected { reason }) -> Error (Refused { reason })
        | Ok _ ->
            Error (Protocol { message = "unexpected reply to a submission" })
        | Error e -> Error (Protocol { message = e }))
  in
  match outcome with
  | Error e -> Error e
  | Ok (`Done (id, Ok counts)) -> Ok (id, counts)
  | Ok (`Done (_, Error e)) -> Error e
  | Ok (`Reattach id) -> (
      match watch ~retry ~timeout_s ?on_progress ~socket ~id () with
      | Ok counts -> Ok (id, counts)
      | Error e -> Error e)
