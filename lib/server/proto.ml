(** The campaign service's message vocabulary, in both directions:
    client <-> server over a Unix-domain socket, and server <-> worker
    over the socketpair a fork leaves behind {e or} a TCP stream a
    remote worker attached.  Every message is one csexp travelling in a
    {!Wire} frame; constructors and parsers live together here so the
    two sides cannot drift.

    Campaigns are multi-tenant: every worker-side message that touches
    trial state carries the campaign id it belongs to, and the
    client-side vocabulary can address a campaign by id after the
    submitting connection is long gone ([Fetch]/[Watch]). *)

(* --- client <-> server -------------------------------------------------- *)

type client_msg =
  | Submit of { spec : Campaign.spec; resume_id : string option }
      (** enqueue a campaign; [resume_id] reopens a previous
          submission's journal instead of starting fresh *)
  | Status
  | Fetch of { id : string }
      (** one-shot: the campaign's current state or final verdict *)
  | Watch of { id : string }
      (** subscribe: progress frames until the final verdict *)
  | Shutdown

type tenant_status = {
  tn_id : string;
  tn_app : string;
  tn_state : string;  (** [queued], [active], [done], or [poisoned] *)
  tn_completed : int;
  tn_planned : int;
  tn_leases : int;  (** batches this campaign holds across the pool *)
  tn_steals : int;  (** leases stolen back from dead workers *)
}

type status_info = {
  st_state : string;  (** [idle] or [running] *)
  st_completed : int;  (** trials done across active campaigns *)
  st_planned : int;
  st_campaigns : int;  (** campaigns finished since the server started *)
  st_queued : int;  (** admission-queue depth *)
  st_active : int;  (** campaigns currently scheduled on the pool *)
  st_workers : int;  (** pool size, forked and remote together *)
  st_tenants : tenant_status list;
}

type server_msg =
  | Accepted of { id : string }
  | Rejected of { reason : string }
  | Progress of { id : string; completed : int; planned : int; stolen : int }
  | Result of { id : string; counts : Campaign.counts }
  | Poisoned of { id : string; reason : string }
  | Queued_reply of { id : string; position : int }
      (** [Fetch] answer for a campaign still waiting for admission *)
  | Status_reply of status_info
  | Bye

let client_to_csexp (m : client_msg) : Csexp.t =
  let open Csexp in
  match m with
  | Submit { spec; resume_id } ->
      List
        (Atom "submit" :: Campaign.spec_to_csexp spec
        :: (match resume_id with None -> [] | Some id -> [ Atom id ]))
  | Status -> List [ Atom "status" ]
  | Fetch { id } -> List [ Atom "fetch"; Atom id ]
  | Watch { id } -> List [ Atom "watch"; Atom id ]
  | Shutdown -> List [ Atom "shutdown" ]

let client_of_csexp (c : Csexp.t) : (client_msg, string) result =
  let open Csexp in
  match c with
  | List [ Atom "submit"; s ] ->
      Result.map
        (fun spec -> Submit { spec; resume_id = None })
        (Campaign.spec_of_csexp s)
  | List [ Atom "submit"; s; Atom id ] ->
      Result.map
        (fun spec -> Submit { spec; resume_id = Some id })
        (Campaign.spec_of_csexp s)
  | List [ Atom "status" ] -> Ok Status
  | List [ Atom "fetch"; Atom id ] -> Ok (Fetch { id })
  | List [ Atom "watch"; Atom id ] -> Ok (Watch { id })
  | List [ Atom "shutdown" ] -> Ok Shutdown
  | other -> Error ("unknown client message: " ^ Csexp.to_string other)

let tenant_to_csexp (t : tenant_status) : Csexp.t =
  let open Csexp in
  let i = string_of_int in
  List
    [
      Atom t.tn_id; Atom t.tn_app; Atom t.tn_state; Atom (i t.tn_completed);
      Atom (i t.tn_planned); Atom (i t.tn_leases); Atom (i t.tn_steals);
    ]

let tenant_of_csexp (c : Csexp.t) : (tenant_status, string) result =
  let open Csexp in
  match c with
  | List
      [
        Atom tn_id; Atom tn_app; Atom tn_state; Atom c'; Atom p; Atom l; Atom s;
      ] -> (
      match
        ( int_of_string_opt c', int_of_string_opt p, int_of_string_opt l,
          int_of_string_opt s )
      with
      | Some tn_completed, Some tn_planned, Some tn_leases, Some tn_steals ->
          Ok
            {
              tn_id; tn_app; tn_state; tn_completed; tn_planned; tn_leases;
              tn_steals;
            }
      | _ -> Error "tenant row: bad integers")
  | other -> Error ("bad tenant row: " ^ Csexp.to_string other)

let server_to_csexp (m : server_msg) : Csexp.t =
  let open Csexp in
  let i = string_of_int in
  match m with
  | Accepted { id } -> List [ Atom "accepted"; Atom id ]
  | Rejected { reason } -> List [ Atom "rejected"; Atom reason ]
  | Progress { id; completed; planned; stolen } ->
      List
        [
          Atom "progress"; Atom id; Atom (i completed); Atom (i planned);
          Atom (i stolen);
        ]
  | Result { id; counts } ->
      List [ Atom "result"; Atom id; Campaign.counts_to_csexp counts ]
  | Poisoned { id; reason } -> List [ Atom "poisoned"; Atom id; Atom reason ]
  | Queued_reply { id; position } ->
      List [ Atom "queued"; Atom id; Atom (i position) ]
  | Status_reply s ->
      List
        [
          Atom "status-reply"; Atom s.st_state; Atom (i s.st_completed);
          Atom (i s.st_planned); Atom (i s.st_campaigns); Atom (i s.st_queued);
          Atom (i s.st_active); Atom (i s.st_workers);
          List (List.map tenant_to_csexp s.st_tenants);
        ]
  | Bye -> List [ Atom "bye" ]

let server_of_csexp (c : Csexp.t) : (server_msg, string) result =
  let open Csexp in
  let int name a k =
    match int_of_string_opt a with
    | Some v -> k v
    | None -> Error (Printf.sprintf "%s: bad integer %S" name a)
  in
  match c with
  | List [ Atom "accepted"; Atom id ] -> Ok (Accepted { id })
  | List [ Atom "rejected"; Atom reason ] -> Ok (Rejected { reason })
  | List [ Atom "progress"; Atom id; Atom c; Atom p; Atom s ] ->
      int "progress" c (fun completed ->
          int "progress" p (fun planned ->
              int "progress" s (fun stolen ->
                  Ok (Progress { id; completed; planned; stolen }))))
  | List [ Atom "result"; Atom id; counts ] ->
      Result.map
        (fun counts -> Result { id; counts })
        (Campaign.counts_of_csexp counts)
  | List [ Atom "poisoned"; Atom id; Atom reason ] ->
      Ok (Poisoned { id; reason })
  | List [ Atom "queued"; Atom id; Atom p ] ->
      int "queued" p (fun position -> Ok (Queued_reply { id; position }))
  | List
      [
        Atom "status-reply"; Atom state; Atom c; Atom p; Atom n; Atom q; Atom a;
        Atom w; List tenants;
      ] ->
      int "status" c (fun st_completed ->
          int "status" p (fun st_planned ->
              int "status" n (fun st_campaigns ->
                  int "status" q (fun st_queued ->
                      int "status" a (fun st_active ->
                          int "status" w (fun st_workers ->
                              let rec rows acc = function
                                | [] -> Ok (List.rev acc)
                                | t :: rest -> (
                                    match tenant_of_csexp t with
                                    | Ok t -> rows (t :: acc) rest
                                    | Error e -> Error e)
                              in
                              Result.map
                                (fun st_tenants ->
                                  Status_reply
                                    {
                                      st_state = state; st_completed;
                                      st_planned; st_campaigns; st_queued;
                                      st_active; st_workers; st_tenants;
                                    })
                                (rows [] tenants)))))))
  | List [ Atom "bye" ] -> Ok Bye
  | other -> Error ("unknown server message: " ^ Csexp.to_string other)

(* --- server <-> worker -------------------------------------------------- *)

type to_worker =
  | Load of { cid : string; spec : Campaign.spec }
      (** rebuild this campaign's trial kernel (plan-cache warm) and
          answer [Loaded] or [Load_failed] *)
  | Lease of { cid : string; batch : int; lo : int; hi : int }
      (** run trials [lo, hi) of campaign [cid], streaming each back *)
  | Quit

type from_worker =
  | Ready of { pid : int }
  | Loaded of { cid : string }
  | Load_failed of { cid : string; reason : string }
      (** also the answer to a [Lease] for a campaign the worker cannot
          serve — the scheduler steals the batch back *)
  | Heartbeat of { idx : int }  (** about to run trial [idx] *)
  | Trial of { cid : string; record : Csexp.t }
      (** one {!Executor.trial_record} — appended to [cid]'s shard
          journal verbatim, which is what keeps server-mode journals
          interchangeable with [--jobs 1] journals *)
  | Batch_done of { cid : string; batch : int; retries : int }

let to_worker_to_csexp (m : to_worker) : Csexp.t =
  let open Csexp in
  let i = string_of_int in
  match m with
  | Load { cid; spec } ->
      List [ Atom "load"; Atom cid; Campaign.spec_to_csexp spec ]
  | Lease { cid; batch; lo; hi } ->
      List [ Atom "lease"; Atom cid; Atom (i batch); Atom (i lo); Atom (i hi) ]
  | Quit -> List [ Atom "quit" ]

let to_worker_of_csexp (c : Csexp.t) : (to_worker, string) result =
  let open Csexp in
  match c with
  | List [ Atom "load"; Atom cid; s ] ->
      Result.map (fun spec -> Load { cid; spec }) (Campaign.spec_of_csexp s)
  | List [ Atom "lease"; Atom cid; Atom b; Atom lo; Atom hi ] -> (
      match
        (int_of_string_opt b, int_of_string_opt lo, int_of_string_opt hi)
      with
      | Some batch, Some lo, Some hi -> Ok (Lease { cid; batch; lo; hi })
      | _ -> Error "lease: bad integers")
  | List [ Atom "quit" ] -> Ok Quit
  | other -> Error ("unknown worker command: " ^ Csexp.to_string other)

let from_worker_to_csexp (m : from_worker) : Csexp.t =
  let open Csexp in
  let i = string_of_int in
  match m with
  | Ready { pid } -> List [ Atom "ready"; Atom (i pid) ]
  | Loaded { cid } -> List [ Atom "loaded"; Atom cid ]
  | Load_failed { cid; reason } ->
      List [ Atom "loadfail"; Atom cid; Atom reason ]
  | Heartbeat { idx } -> List [ Atom "hb"; Atom (i idx) ]
  | Trial { cid; record } -> List [ Atom "T"; Atom cid; record ]
  | Batch_done { cid; batch; retries } ->
      List [ Atom "done"; Atom cid; Atom (i batch); Atom (i retries) ]

let from_worker_of_csexp (c : Csexp.t) : (from_worker, string) result =
  let open Csexp in
  match c with
  | List [ Atom "ready"; Atom pid ] -> (
      match int_of_string_opt pid with
      | Some pid -> Ok (Ready { pid })
      | None -> Error "ready: bad pid")
  | List [ Atom "loaded"; Atom cid ] -> Ok (Loaded { cid })
  | List [ Atom "loadfail"; Atom cid; Atom reason ] ->
      Ok (Load_failed { cid; reason })
  | List [ Atom "hb"; Atom idx ] -> (
      match int_of_string_opt idx with
      | Some idx -> Ok (Heartbeat { idx })
      | None -> Error "hb: bad index")
  | List [ Atom "T"; Atom cid; record ] -> Ok (Trial { cid; record })
  | List [ Atom "done"; Atom cid; Atom b; Atom r ] -> (
      match (int_of_string_opt b, int_of_string_opt r) with
      | Some batch, Some retries -> Ok (Batch_done { cid; batch; retries })
      | _ -> Error "done: bad integers")
  | other -> Error ("unknown worker message: " ^ Csexp.to_string other)
