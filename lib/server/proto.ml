(** The campaign service's message vocabulary, in both directions:
    client <-> server over a Unix-domain socket, and server <-> worker
    over the socketpair a fork leaves behind.  Every message is one
    csexp travelling in a {!Wire} frame; constructors and parsers live
    together here so the two sides cannot drift. *)

(* --- client <-> server -------------------------------------------------- *)

type client_msg =
  | Submit of Campaign.spec
  | Status
  | Shutdown

type status_info = {
  st_state : string;  (** [idle] or [running] *)
  st_completed : int;
  st_planned : int;
  st_campaigns : int;  (** campaigns finished since the server started *)
}

type server_msg =
  | Accepted of { id : int }
  | Rejected of { reason : string }
  | Progress of { id : int; completed : int; planned : int; stolen : int }
  | Result of { id : int; counts : Campaign.counts }
  | Poisoned of { id : int; reason : string }
  | Status_reply of status_info
  | Bye

let client_to_csexp (m : client_msg) : Csexp.t =
  let open Csexp in
  match m with
  | Submit s -> List [ Atom "submit"; Campaign.spec_to_csexp s ]
  | Status -> List [ Atom "status" ]
  | Shutdown -> List [ Atom "shutdown" ]

let client_of_csexp (c : Csexp.t) : (client_msg, string) result =
  let open Csexp in
  match c with
  | List [ Atom "submit"; s ] ->
      Result.map (fun s -> Submit s) (Campaign.spec_of_csexp s)
  | List [ Atom "status" ] -> Ok Status
  | List [ Atom "shutdown" ] -> Ok Shutdown
  | other -> Error ("unknown client message: " ^ Csexp.to_string other)

let server_to_csexp (m : server_msg) : Csexp.t =
  let open Csexp in
  let i = string_of_int in
  match m with
  | Accepted { id } -> List [ Atom "accepted"; Atom (i id) ]
  | Rejected { reason } -> List [ Atom "rejected"; Atom reason ]
  | Progress { id; completed; planned; stolen } ->
      List
        [
          Atom "progress"; Atom (i id); Atom (i completed); Atom (i planned);
          Atom (i stolen);
        ]
  | Result { id; counts } ->
      List [ Atom "result"; Atom (i id); Campaign.counts_to_csexp counts ]
  | Poisoned { id; reason } -> List [ Atom "poisoned"; Atom (i id); Atom reason ]
  | Status_reply s ->
      List
        [
          Atom "status-reply"; Atom s.st_state; Atom (i s.st_completed);
          Atom (i s.st_planned); Atom (i s.st_campaigns);
        ]
  | Bye -> List [ Atom "bye" ]

let server_of_csexp (c : Csexp.t) : (server_msg, string) result =
  let open Csexp in
  let int name a k =
    match int_of_string_opt a with
    | Some v -> k v
    | None -> Error (Printf.sprintf "%s: bad integer %S" name a)
  in
  match c with
  | List [ Atom "accepted"; Atom id ] ->
      int "accepted" id (fun id -> Ok (Accepted { id }))
  | List [ Atom "rejected"; Atom reason ] -> Ok (Rejected { reason })
  | List [ Atom "progress"; Atom id; Atom c; Atom p; Atom s ] ->
      int "progress" id (fun id ->
          int "progress" c (fun completed ->
              int "progress" p (fun planned ->
                  int "progress" s (fun stolen ->
                      Ok (Progress { id; completed; planned; stolen })))))
  | List [ Atom "result"; Atom id; counts ] ->
      int "result" id (fun id ->
          Result.map
            (fun counts -> Result { id; counts })
            (Campaign.counts_of_csexp counts))
  | List [ Atom "poisoned"; Atom id; Atom reason ] ->
      int "poisoned" id (fun id -> Ok (Poisoned { id; reason }))
  | List [ Atom "status-reply"; Atom state; Atom c; Atom p; Atom n ] ->
      int "status" c (fun st_completed ->
          int "status" p (fun st_planned ->
              int "status" n (fun st_campaigns ->
                  Ok
                    (Status_reply
                       { st_state = state; st_completed; st_planned; st_campaigns }))))
  | List [ Atom "bye" ] -> Ok Bye
  | other -> Error ("unknown server message: " ^ Csexp.to_string other)

(* --- server <-> worker -------------------------------------------------- *)

type to_worker =
  | Lease of { batch : int; lo : int; hi : int }
      (** run trials [lo, hi) and stream each result back *)
  | Quit

type from_worker =
  | Ready of { pid : int }
  | Heartbeat of { idx : int }  (** about to run trial [idx] *)
  | Trial of Csexp.t
      (** one {!Executor.trial_record} — appended to the shard journal
          verbatim, which is what keeps server-mode journals
          interchangeable with [--jobs 1] journals *)
  | Batch_done of { batch : int; retries : int }

let to_worker_to_csexp (m : to_worker) : Csexp.t =
  let open Csexp in
  let i = string_of_int in
  match m with
  | Lease { batch; lo; hi } ->
      List [ Atom "lease"; Atom (i batch); Atom (i lo); Atom (i hi) ]
  | Quit -> List [ Atom "quit" ]

let to_worker_of_csexp (c : Csexp.t) : (to_worker, string) result =
  let open Csexp in
  match c with
  | List [ Atom "lease"; Atom b; Atom lo; Atom hi ] -> (
      match
        (int_of_string_opt b, int_of_string_opt lo, int_of_string_opt hi)
      with
      | Some batch, Some lo, Some hi -> Ok (Lease { batch; lo; hi })
      | _ -> Error "lease: bad integers")
  | List [ Atom "quit" ] -> Ok Quit
  | other -> Error ("unknown worker command: " ^ Csexp.to_string other)

let from_worker_to_csexp (m : from_worker) : Csexp.t =
  let open Csexp in
  let i = string_of_int in
  match m with
  | Ready { pid } -> List [ Atom "ready"; Atom (i pid) ]
  | Heartbeat { idx } -> List [ Atom "hb"; Atom (i idx) ]
  | Trial r -> r
  | Batch_done { batch; retries } ->
      List [ Atom "done"; Atom (i batch); Atom (i retries) ]

let from_worker_of_csexp (c : Csexp.t) : (from_worker, string) result =
  let open Csexp in
  match c with
  | List [ Atom "ready"; Atom pid ] -> (
      match int_of_string_opt pid with
      | Some pid -> Ok (Ready { pid })
      | None -> Error "ready: bad pid")
  | List [ Atom "hb"; Atom idx ] -> (
      match int_of_string_opt idx with
      | Some idx -> Ok (Heartbeat { idx })
      | None -> Error "hb: bad index")
  | List (Atom "t" :: _) -> Ok (Trial c)
  | List [ Atom "done"; Atom b; Atom r ] -> (
      match (int_of_string_opt b, int_of_string_opt r) with
      | Some batch, Some retries -> Ok (Batch_done { batch; retries })
      | _ -> Error "done: bad integers")
  | other -> Error ("unknown worker message: " ^ Csexp.to_string other)
