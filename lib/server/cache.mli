(** Content-addressed store of expensive campaign artifacts (baked
    programs, golden runs, fault-site populations), keyed by the FNV-1a
    hash of a canonical description.  Entries carry their own checksum
    {e and} the writing build's fingerprint (compiler version +
    executable digest) and are written atomically; corrupt, torn, or
    other-build entries load as [None] — only a value marshalled by
    this exact binary is ever unmarshalled, so the cache can never
    poison a campaign with a type-incompatible deserialization. *)

val key : string -> string
(** 16-hex-digit content key of a canonical description string. *)

val path : dir:string -> key:string -> string

val store : dir:string -> key:string -> 'a -> string
(** Marshal [v] under [key] (atomic: temp file + fsync + rename);
    returns the entry's path.  Creates [dir] if needed. *)

val load : dir:string -> key:string -> 'a option
(** [None] when missing, torn, checksum-mismatched, or written by a
    different build of the tool (the checksum guards bytes, not types;
    the build fingerprint guards the rest).  The caller must still
    expect the same type it stored under that key. *)

val entries : string -> string list
(** Keys present in a cache directory, sorted. *)
