(** Content-addressed store of expensive campaign artifacts (baked
    programs, golden runs, fault-site populations), keyed by the FNV-1a
    hash of a canonical description.  Entries carry their own checksum
    and are written atomically; corrupt or stale entries load as
    [None], so the cache can never poison a campaign. *)

val key : string -> string
(** 16-hex-digit content key of a canonical description string. *)

val path : dir:string -> key:string -> string

val store : dir:string -> key:string -> 'a -> string
(** Marshal [v] under [key] (atomic: temp file + fsync + rename);
    returns the entry's path.  Creates [dir] if needed. *)

val load : dir:string -> key:string -> 'a option
(** [None] when missing, torn, or checksum-mismatched.  The caller
    must expect the same type it stored — the checksum guards bytes,
    not types, so keys must encode everything the value depends on. *)

val entries : string -> string list
(** Keys present in a cache directory, sorted. *)
