(** Client side of the campaign service: one deadline-bounded request
    per connection; a dead server is an [Error], never a hang. *)

val connect : string -> (Wire.conn, string) result

val status :
  ?timeout_s:float -> socket:string -> unit -> (Proto.status_info, string) result

val shutdown : ?timeout_s:float -> socket:string -> unit -> (unit, string) result

val submit :
  ?timeout_s:float ->
  ?on_progress:(completed:int -> planned:int -> unit) ->
  socket:string ->
  Campaign.spec ->
  (Campaign.counts, string) result
(** Submit and block until the verdict.  [timeout_s] bounds the
    {e silence} between frames, not the whole campaign. *)
