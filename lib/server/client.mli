(** Client side of the campaign service: one deadline-bounded request
    per connection; a dead server is a structured {!error}, never a
    hang.  Connect failures (server not up yet, socket missing, peer
    hung up before reading the request) retry under the executor's
    jittered-backoff policy, bounded by its [max_retries].  A
    submission accepted by the server survives a dropped connection:
    the client re-attaches by campaign id and keeps streaming. *)

type error =
  | Unreachable of { socket : string; attempts : int; last : string }
  | Refused of { reason : string }
  | Poisoned of { id : string; reason : string }
  | Protocol of { message : string }

val error_message : error -> string

type fetched =
  | Finished of Campaign.counts
  | Running of { completed : int; planned : int; stolen : int }
  | Queued of { position : int }

val connect : ?retry:Executor.config -> string -> (Wire.conn, error) result

val status :
  ?retry:Executor.config ->
  ?timeout_s:float ->
  socket:string ->
  unit ->
  (Proto.status_info, error) result

val shutdown : ?timeout_s:float -> socket:string -> unit -> (unit, error) result
(** No retry: shutting down an absent server fails fast. *)

val fetch :
  ?retry:Executor.config ->
  ?timeout_s:float ->
  socket:string ->
  id:string ->
  unit ->
  (fetched, error) result
(** One shot: a finished campaign's counts, a live one's progress, or
    a queued one's position — by id, long after the submitting
    connection died. *)

val watch :
  ?retry:Executor.config ->
  ?timeout_s:float ->
  ?on_progress:(completed:int -> planned:int -> stolen:int -> unit) ->
  socket:string ->
  id:string ->
  unit ->
  (Campaign.counts, error) result
(** Attach to a campaign by id and stream progress until its verdict;
    drops mid-stream re-attach (budget refilled by every received
    frame). *)

val submit :
  ?retry:Executor.config ->
  ?timeout_s:float ->
  ?on_progress:(completed:int -> planned:int -> stolen:int -> unit) ->
  ?on_accepted:(string -> unit) ->
  ?resume_id:string ->
  socket:string ->
  Campaign.spec ->
  (string * Campaign.counts, error) result
(** Submit and block until the verdict; returns the campaign id with
    the counts.  [timeout_s] bounds the {e silence} between frames,
    not the whole campaign.  After [Accepted] a dropped connection
    re-attaches by id instead of resubmitting. *)
