(** Framed csexp transport over a stream socket: the campaign server's
    wire, modeled on {!Comm}'s reliable delivery mode.

    Every application message travels in a frame
    [(f <seqno> <checksum> <payload>)]: per-connection sequence numbers
    from 0, an FNV-1a checksum of the payload bytes, and the payload as
    one atom holding the encoded csexp.  Receivers verify the checksum,
    discard duplicate frames (seqno below the next expected), and
    recover from a gap or a corrupted frame by sending an unsequenced
    [(n <expected>)] nack, answered from the sender's bounded
    retransmit buffer — the same receiver-driven resend discipline the
    simulated MPI layer uses.  On a healthy socket none of this
    machinery fires; its purpose is to turn half-written frames from a
    SIGKILLed peer, and injected corruption in tests, into structured
    errors instead of silent misparses or hangs.

    Every blocking receive carries a wall-clock deadline and raises
    {!Timeout} instead of hanging the server's event loop. *)

type stats = {
  mutable frames_sent : int;
  mutable frames_delivered : int;
  mutable dup_discarded : int;
  mutable checksum_failures : int;
  mutable nacks_sent : int;
  mutable resent : int;
}

let zero_stats () =
  {
    frames_sent = 0;
    frames_delivered = 0;
    dup_discarded = 0;
    checksum_failures = 0;
    nacks_sent = 0;
    resent = 0;
  }

type conn = {
  fd : Unix.file_descr;
  mutable send_seq : int;
  mutable expect_seq : int;  (** next inbound seqno to deliver *)
  mutable pending : string;  (** undecoded inbound bytes *)
  mutable rtx : (int * string) list;  (** retransmit buffer, newest first *)
  stats : stats;
  mutable inject : (string -> string list) option;
      (** test hook: rewrite an outgoing raw frame into the chunk list
          actually written (duplicate it, corrupt a byte, drop it) *)
}

exception Closed
exception Timeout of { what : string; after_s : float }
exception Corrupt of string

let () =
  Printexc.register_printer (function
    | Closed -> Some "Wire.Closed: peer hung up"
    | Timeout { what; after_s } ->
        Some (Printf.sprintf "Wire.Timeout: %s after %.3fs" what after_s)
    | Corrupt m -> Some (Printf.sprintf "Wire.Corrupt: %s" m)
    | _ -> None)

let of_fd (fd : Unix.file_descr) : conn =
  {
    fd;
    send_seq = 0;
    expect_seq = 0;
    pending = "";
    rtx = [];
    stats = zero_stats ();
    inject = None;
  }

let stats (t : conn) : stats = t.stats
let fd (t : conn) : Unix.file_descr = t.fd
let set_inject (t : conn) (f : (string -> string list) option) = t.inject <- f

let close (t : conn) : unit = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* FNV-1a 64-bit, the same family Comm uses for payload checksums *)
let checksum (s : string) : int64 =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

let rtx_keep = 64

let write_all (t : conn) (s : string) : unit =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    match Unix.write_substring t.fd s !off (n - !off) with
    | written -> off := !off + written
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        raise Closed
  done

let frame_of (seq : int) (payload : string) : string =
  Csexp.to_string
    (Csexp.List
       [
         Csexp.Atom "f";
         Csexp.Atom (string_of_int seq);
         Csexp.Atom (Int64.to_string (checksum payload));
         Csexp.Atom payload;
       ])

let send (t : conn) (msg : Csexp.t) : unit =
  let payload = Csexp.to_string msg in
  let raw = frame_of t.send_seq payload in
  t.rtx <- (t.send_seq, raw) :: t.rtx;
  (if List.length t.rtx > rtx_keep then
     t.rtx <- List.filteri (fun i _ -> i < rtx_keep) t.rtx);
  t.send_seq <- t.send_seq + 1;
  t.stats.frames_sent <- t.stats.frames_sent + 1;
  let chunks = match t.inject with None -> [ raw ] | Some f -> f raw in
  List.iter (write_all t) chunks

let send_nack (t : conn) (expected : int) : unit =
  t.stats.nacks_sent <- t.stats.nacks_sent + 1;
  write_all t
    (Csexp.to_string
       (Csexp.List [ Csexp.Atom "n"; Csexp.Atom (string_of_int expected) ]))

let resend_from (t : conn) (seq : int) : unit =
  let frames =
    List.sort compare (List.filter (fun (s, _) -> s >= seq) t.rtx)
  in
  if frames = [] && seq < t.send_seq then
    raise
      (Corrupt
         (Printf.sprintf
            "peer nacked frame %d, which left the retransmit buffer \
             (unrecoverable)"
            seq));
  List.iter
    (fun (_, raw) ->
      t.stats.resent <- t.stats.resent + 1;
      write_all t raw)
    frames

(* One decoded frame from the pending buffer: [Some payload] delivers
   the next in-sequence application message; [None] means the buffer
   holds no complete deliverable frame (yet). *)
let rec take_frame (t : conn) : Csexp.t option =
  match Csexp.decode_one t.pending ~pos:0 with
  | None ->
      if String.length t.pending > 1 lsl 24 then
        raise (Corrupt "inbound buffer exceeded 16 MiB without a valid frame");
      None
  | Some (frame, stop) -> (
      t.pending <- String.sub t.pending stop (String.length t.pending - stop);
      match frame with
      | Csexp.List [ Csexp.Atom "n"; Csexp.Atom seq ] ->
          (match int_of_string_opt seq with
          | Some s -> resend_from t s
          | None -> ());
          take_frame t
      | Csexp.List
          [ Csexp.Atom "f"; Csexp.Atom seq; Csexp.Atom sum; Csexp.Atom payload ]
        -> (
          match (int_of_string_opt seq, Int64.of_string_opt sum) with
          | Some seq, Some sum ->
              if not (Int64.equal sum (checksum payload)) then begin
                t.stats.checksum_failures <- t.stats.checksum_failures + 1;
                send_nack t t.expect_seq;
                take_frame t
              end
              else if seq < t.expect_seq then begin
                t.stats.dup_discarded <- t.stats.dup_discarded + 1;
                take_frame t
              end
              else if seq > t.expect_seq then begin
                send_nack t t.expect_seq;
                take_frame t
              end
              else begin
                t.expect_seq <- t.expect_seq + 1;
                t.stats.frames_delivered <- t.stats.frames_delivered + 1;
                match Csexp.of_string payload with
                | Some msg -> Some msg
                | None ->
                    raise
                      (Corrupt
                         "frame payload passed its checksum but is not a csexp")
              end
          | _ -> raise (Corrupt "frame header fields are not integers"))
      | _ -> raise (Corrupt ("unframed bytes on the wire: " ^ Csexp.to_string frame)))

let read_some (t : conn) : bool =
  let buf = Bytes.create 65536 in
  match Unix.read t.fd buf 0 (Bytes.length buf) with
  | 0 -> raise Closed
  | n ->
      t.pending <- t.pending ^ Bytes.sub_string buf 0 n;
      true
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> raise Closed

let recv (t : conn) ~(timeout_s : float) : Csexp.t =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    match take_frame t with
    | Some msg -> msg
    | None ->
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining <= 0.0 then
          raise (Timeout { what = "recv"; after_s = timeout_s });
        (match Unix.select [ t.fd ] [] [] remaining with
        | [], _, _ -> raise (Timeout { what = "recv"; after_s = timeout_s })
        | _ :: _, _, _ -> ignore (read_some t)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        go ()
  in
  go ()

let try_recv (t : conn) : Csexp.t option =
  match take_frame t with
  | Some msg -> Some msg
  | None -> (
      match Unix.select [ t.fd ] [] [] 0.0 with
      | [], _, _ -> None
      | _ :: _, _, _ ->
          ignore (read_some t);
          take_frame t
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> None)

let pair () : conn * conn =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (of_fd a, of_fd b)
