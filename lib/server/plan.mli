(** Campaign plans: the expensive, content-addressed artifacts of an
    app spelling (baked program, golden run, fault-site population),
    shared by the server {e and} by every worker — forked or remote —
    that rebuilds a campaign's trial kernel from its wire
    {!Campaign.spec}. *)

type plan = {
  pl_app : string;
  pl_prog : Prog.t;
  pl_target : Campaign.target;
  pl_clean_instructions : int;
  pl_golden_output : string;  (** the fault-free run's output *)
}

val plan_key : string -> string
(** Cache key of an app spelling. *)

val plan_of_app : ?cache_dir:string -> string -> (plan, string) result
(** Resolve, bake, trace and (when [cache_dir] is given) cache the
    plan for an app spelling ([CG], [IS@all], [MG@opt], ...). *)

val target_of_plan : plan -> Structure.t -> Campaign.target
(** The injection target a plan exposes for a declared structure:
    [pl_target] (the register-file surface) for [Structure.Reg],
    otherwise a structural target rebuilt from the plan's program. *)

val campaign_spec : plan -> Campaign.config -> Campaign.outcome_class Executor.spec
(** The executor spec of a campaign over a plan — built exactly the way
    {!Campaign.run_report} builds its own (same tag, same trial kernel,
    same outcome codec): the byte-identity contract with [--jobs 1].
    The target follows the config's declared [structure]. *)

val spec_of_submission :
  ?cache_dir:string ->
  Campaign.spec ->
  (Campaign.outcome_class Executor.spec, string) result
(** [campaign_spec] from a wire submission: resolve + bake (cache-warm)
    and instantiate under the spec's statistical design.  This is what
    a worker runs when the scheduler tells it to load a campaign. *)
