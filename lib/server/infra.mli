(** Structured infrastructure-failure taxonomy for the campaign
    server, extending {!Executor.Infra_error}'s single kind (a raising
    trial) with the failure modes of a multi-process scheduler.  Causes
    render to stable [infra/<kind>: ...] strings that survive the
    journal round-trip. *)

type cause =
  | Trial_raised of { idx : int; message : string }
  | Worker_lost of { pid : int; batch : int option }
  | Lease_expired of { batch : int; pid : int; heartbeat_s : float }
  | Wire_fault of { message : string }
  | Load_failed of { cid : string; reason : string }

val kind : cause -> string
(** [trial], [worker-lost], [lease-expired], [wire], or [load-failed]. *)

val to_message : cause -> string
(** The journal/report rendering: [infra/<kind>: <details>]. *)

val kind_of_message : string -> string
(** Re-classify a journaled infra message; pre-taxonomy executor
    messages ([trial %d: ...]) classify as [trial], anything else as
    [unknown]. *)

exception Campaign_poisoned of { batch : int; attempts : int; cause : cause }
(** A batch exhausted its lease attempts; the campaign is refused
    rather than padded with fabricated counts. *)

val poison_message : batch:int -> attempts:int -> cause -> string
