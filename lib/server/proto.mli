(** Message vocabulary of the campaign service: client <-> server over
    the Unix-domain socket, server <-> worker over the fork's
    socketpair.  One csexp per message, carried in a {!Wire} frame. *)

type client_msg = Submit of Campaign.spec | Status | Shutdown

type status_info = {
  st_state : string;  (** [idle] or [running] *)
  st_completed : int;
  st_planned : int;
  st_campaigns : int;  (** campaigns finished since the server started *)
}

type server_msg =
  | Accepted of { id : int }
  | Rejected of { reason : string }
  | Progress of { id : int; completed : int; planned : int; stolen : int }
  | Result of { id : int; counts : Campaign.counts }
  | Poisoned of { id : int; reason : string }
  | Status_reply of status_info
  | Bye

val client_to_csexp : client_msg -> Csexp.t
val client_of_csexp : Csexp.t -> (client_msg, string) result
val server_to_csexp : server_msg -> Csexp.t
val server_of_csexp : Csexp.t -> (server_msg, string) result

type to_worker =
  | Lease of { batch : int; lo : int; hi : int }
      (** run trials [lo, hi) and stream each result back *)
  | Quit

type from_worker =
  | Ready of { pid : int }
  | Heartbeat of { idx : int }  (** about to run trial [idx] *)
  | Trial of Csexp.t
      (** one {!Executor.trial_record}, journaled verbatim *)
  | Batch_done of { batch : int; retries : int }

val to_worker_to_csexp : to_worker -> Csexp.t
val to_worker_of_csexp : Csexp.t -> (to_worker, string) result
val from_worker_to_csexp : from_worker -> Csexp.t
val from_worker_of_csexp : Csexp.t -> (from_worker, string) result
