(** Message vocabulary of the campaign service: client <-> server over
    the Unix-domain socket, server <-> worker over the fork's
    socketpair or a remote worker's TCP stream.  One csexp per message,
    carried in a {!Wire} frame.  Worker-side trial messages carry the
    campaign id they belong to (the pool is multi-tenant); the
    client-side vocabulary addresses finished campaigns by id
    ([Fetch]/[Watch]) so a dropped connection never loses a result. *)

type client_msg =
  | Submit of { spec : Campaign.spec; resume_id : string option }
  | Status
  | Fetch of { id : string }
  | Watch of { id : string }
  | Shutdown

type tenant_status = {
  tn_id : string;
  tn_app : string;
  tn_state : string;  (** [queued], [active], [done], or [poisoned] *)
  tn_completed : int;
  tn_planned : int;
  tn_leases : int;  (** batches this campaign holds across the pool *)
  tn_steals : int;  (** leases stolen back from dead workers *)
}

type status_info = {
  st_state : string;  (** [idle] or [running] *)
  st_completed : int;
  st_planned : int;
  st_campaigns : int;  (** campaigns finished since the server started *)
  st_queued : int;  (** admission-queue depth *)
  st_active : int;  (** campaigns currently scheduled on the pool *)
  st_workers : int;  (** pool size, forked and remote together *)
  st_tenants : tenant_status list;
}

type server_msg =
  | Accepted of { id : string }
  | Rejected of { reason : string }
  | Progress of { id : string; completed : int; planned : int; stolen : int }
  | Result of { id : string; counts : Campaign.counts }
  | Poisoned of { id : string; reason : string }
  | Queued_reply of { id : string; position : int }
  | Status_reply of status_info
  | Bye

val client_to_csexp : client_msg -> Csexp.t
val client_of_csexp : Csexp.t -> (client_msg, string) result
val server_to_csexp : server_msg -> Csexp.t
val server_of_csexp : Csexp.t -> (server_msg, string) result

type to_worker =
  | Load of { cid : string; spec : Campaign.spec }
  | Lease of { cid : string; batch : int; lo : int; hi : int }
  | Quit

type from_worker =
  | Ready of { pid : int }
  | Loaded of { cid : string }
  | Load_failed of { cid : string; reason : string }
  | Heartbeat of { idx : int }
  | Trial of { cid : string; record : Csexp.t }
  | Batch_done of { cid : string; batch : int; retries : int }

val to_worker_to_csexp : to_worker -> Csexp.t
val to_worker_of_csexp : Csexp.t -> (to_worker, string) result
val from_worker_to_csexp : from_worker -> Csexp.t
val from_worker_of_csexp : Csexp.t -> (from_worker, string) result
