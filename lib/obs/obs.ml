(** Lightweight in-process observability: named phase timers, counters,
    and log2-bucketed histograms, rendered as a fixed-width report.

    A registry ([t]) is cheap to create and thread-safe, so one can be
    shared across the executor's worker domains.  Rendering preserves
    first-use order, which keeps phase tables readable as pipelines.

    Timers use [Unix.gettimeofday]: the stdlib exposes no monotonic
    clock and the toolchain has no mtime package, so a backwards clock
    step can produce a negative sample; samples are clamped at zero
    rather than dropped. *)

type phase = {
  mutable p_calls : int;
  mutable p_wall_s : float;
  p_order : int;
}

type counter = { mutable c_value : int; c_order : int }

type hist = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : int;
  mutable h_max : int;
  h_buckets : int array;  (** bucket [i] counts samples in [2^i, 2^(i+1)) *)
  h_order : int;
}

type t = {
  mutable next_order : int;
  phases : (string, phase) Hashtbl.t;
  counters : (string, counter) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
  mu : Mutex.t;
}

let create () =
  {
    next_order = 0;
    phases = Hashtbl.create 16;
    counters = Hashtbl.create 16;
    hists = Hashtbl.create 16;
    mu = Mutex.create ();
  }

let locked (t : t) f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let order (t : t) =
  let o = t.next_order in
  t.next_order <- o + 1;
  o

let now () = Unix.gettimeofday ()

let add_sample (t : t) (name : string) (dt : float) : unit =
  locked t (fun () ->
      let p =
        match Hashtbl.find_opt t.phases name with
        | Some p -> p
        | None ->
            let p = { p_calls = 0; p_wall_s = 0.0; p_order = order t } in
            Hashtbl.add t.phases name p;
            p
      in
      p.p_calls <- p.p_calls + 1;
      p.p_wall_s <- p.p_wall_s +. Float.max 0.0 dt)

(** Time [f] under phase [name] (accumulating across calls); the
    sample is recorded even if [f] raises. *)
let phase (t : t) (name : string) (f : unit -> 'a) : 'a =
  let t0 = now () in
  Fun.protect ~finally:(fun () -> add_sample t name (now () -. t0)) f

let count (t : t) (name : string) (n : int) : unit =
  locked t (fun () ->
      match Hashtbl.find_opt t.counters name with
      | Some c -> c.c_value <- c.c_value + n
      | None ->
          Hashtbl.add t.counters name { c_value = n; c_order = order t })

let bucket_of (v : int) : int =
  (* log2 bucket, clamped: bucket i holds [2^i, 2^(i+1)), bucket 0
     holds 0 and 1 *)
  let rec go v i = if v <= 1 then i else go (v lsr 1) (i + 1) in
  min 62 (go (max 0 v) 0)

(** Record one sample of a size/latency-style distribution (e.g. bytes
    per event, events per piece). *)
let observe (t : t) (name : string) (v : int) : unit =
  locked t (fun () ->
      let h =
        match Hashtbl.find_opt t.hists name with
        | Some h -> h
        | None ->
            let h =
              {
                h_count = 0;
                h_sum = 0.0;
                h_min = max_int;
                h_max = min_int;
                h_buckets = Array.make 63 0;
                h_order = order t;
              }
            in
            Hashtbl.add t.hists name h;
            h
      in
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum +. float_of_int v;
      if v < h.h_min then h.h_min <- v;
      if v > h.h_max then h.h_max <- v;
      let b = bucket_of v in
      h.h_buckets.(b) <- h.h_buckets.(b) + 1)

(* --- queries (tests, custom rendering) --- *)

let phase_wall (t : t) (name : string) : float option =
  locked t (fun () ->
      Option.map (fun p -> p.p_wall_s) (Hashtbl.find_opt t.phases name))

let counter_value (t : t) (name : string) : int option =
  locked t (fun () ->
      Option.map (fun c -> c.c_value) (Hashtbl.find_opt t.counters name))

let counters (t : t) : (string * int) list =
  locked t (fun () ->
      Hashtbl.fold (fun name c acc -> (name, c.c_value, c.c_order) :: acc)
        t.counters []
      |> List.sort (fun (_, _, a) (_, _, b) -> compare a b)
      |> List.map (fun (name, v, _) -> (name, v)))

let hist_stats (t : t) (name : string) : (int * float * int * int) option =
  locked t (fun () ->
      Option.map
        (fun h -> (h.h_count, h.h_sum, h.h_min, h.h_max))
        (Hashtbl.find_opt t.hists name))

(* --- rendering --- *)

let by_order proj l = List.sort (fun a b -> Int.compare (proj a) (proj b)) l

let human_count (v : float) : string =
  if Float.abs v >= 1e9 then Printf.sprintf "%.2fG" (v /. 1e9)
  else if Float.abs v >= 1e6 then Printf.sprintf "%.2fM" (v /. 1e6)
  else if Float.abs v >= 1e3 then Printf.sprintf "%.1fk" (v /. 1e3)
  else Printf.sprintf "%.0f" v

(** The full report: a phase table (wall seconds, share of total,
    calls), counters (with per-second rates against the matching
    phase when the name contains a '/'-prefix match), and histogram
    summaries with a sparkline of the log2 buckets. *)
let report (t : t) : string =
  locked t (fun () ->
      let buf = Buffer.create 1024 in
      let phases =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.phases []
        |> by_order (fun (_, p) -> p.p_order)
      in
      let total_wall =
        List.fold_left (fun acc (_, p) -> acc +. p.p_wall_s) 0.0 phases
      in
      if phases <> [] then begin
        Buffer.add_string buf
          (Printf.sprintf "%-28s %10s %6s %8s\n" "phase" "wall(s)" "share"
             "calls");
        List.iter
          (fun (name, p) ->
            let share =
              if total_wall > 0.0 then 100.0 *. p.p_wall_s /. total_wall
              else 0.0
            in
            Buffer.add_string buf
              (Printf.sprintf "%-28s %10.3f %5.1f%% %8d\n" name p.p_wall_s
                 share p.p_calls))
          phases;
        Buffer.add_string buf
          (Printf.sprintf "%-28s %10.3f %5.1f%%\n" "total" total_wall 100.0)
      end;
      let counters =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counters []
        |> by_order (fun (_, c) -> c.c_order)
      in
      if counters <> [] then begin
        if phases <> [] then Buffer.add_char buf '\n';
        Buffer.add_string buf
          (Printf.sprintf "%-28s %12s %10s\n" "counter" "value" "per-s");
        List.iter
          (fun (name, c) ->
            let rate =
              if total_wall > 0.0 then
                human_count (float_of_int c.c_value /. total_wall)
              else "-"
            in
            Buffer.add_string buf
              (Printf.sprintf "%-28s %12d %10s\n" name c.c_value rate))
          counters
      end;
      let hists =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.hists []
        |> by_order (fun (_, h) -> h.h_order)
      in
      if hists <> [] then begin
        if phases <> [] || counters <> [] then Buffer.add_char buf '\n';
        Buffer.add_string buf
          (Printf.sprintf "%-28s %10s %10s %8s %8s  %s\n" "histogram" "count"
             "mean" "min" "max" "log2 buckets");
        List.iter
          (fun (name, h) ->
            let mean =
              if h.h_count > 0 then h.h_sum /. float_of_int h.h_count else 0.0
            in
            (* sparkline over the occupied bucket range *)
            let lo = bucket_of (max 0 h.h_min)
            and hi = bucket_of (max 0 h.h_max) in
            let peak =
              Array.fold_left max 1 h.h_buckets
            in
            let glyphs = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#' |] in
            let spark = Buffer.create 16 in
            for b = lo to hi do
              let v = h.h_buckets.(b) in
              let g =
                if v = 0 then 0
                else 1 + (v * (Array.length glyphs - 2) / peak)
              in
              Buffer.add_char spark glyphs.(min g (Array.length glyphs - 1))
            done;
            Buffer.add_string buf
              (Printf.sprintf "%-28s %10d %10.1f %8d %8d  2^%d[%s]2^%d\n" name
                 h.h_count mean
                 (if h.h_min = max_int then 0 else h.h_min)
                 (if h.h_max = min_int then 0 else h.h_max)
                 lo (Buffer.contents spark) (hi + 1)))
          hists
      end;
      Buffer.contents buf)

let is_empty (t : t) : bool =
  locked t (fun () ->
      Hashtbl.length t.phases = 0
      && Hashtbl.length t.counters = 0
      && Hashtbl.length t.hists = 0)
