(** Lightweight in-process observability: named phase timers, counters,
    and log2-bucketed histograms with a fixed-width text report.
    Thread-safe; rendering preserves first-use order.  Timers are
    wall-clock ([Unix.gettimeofday] — the toolchain has no monotonic
    clock source), with negative steps clamped to zero. *)

type t

val create : unit -> t

val now : unit -> float
(** Seconds since the epoch, as used by the phase timers. *)

val phase : t -> string -> (unit -> 'a) -> 'a
(** [phase t name f] runs [f], accumulating its wall time and call
    count under [name]; the sample is recorded even if [f] raises. *)

val add_sample : t -> string -> float -> unit
(** Record an externally measured wall-time sample for a phase. *)

val count : t -> string -> int -> unit
(** [count t name n] adds [n] to counter [name] (created at 0). *)

val observe : t -> string -> int -> unit
(** Record one sample of a distribution (bytes, events, latencies…)
    into histogram [name]. *)

val phase_wall : t -> string -> float option
val counter_value : t -> string -> int option

val counters : t -> (string * int) list
(** All counters in first-use order (for structured reporting). *)

val hist_stats : t -> string -> (int * float * int * int) option
(** [(count, sum, min, max)] of a histogram, if it exists. *)

val report : t -> string
(** Phase table (wall seconds, share, calls), counters with rates, and
    histogram summaries with a log2-bucket sparkline. *)

val is_empty : t -> bool
