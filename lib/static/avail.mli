(** Forward must-analyses (join = intersection) on the {!Dataflow}
    engine: available loads over the flat word memory, and available
    register copies.  See the implementation header for the lattice. *)

module P : Set.S with type elt = int * int

type fact = All | Pairs of P.t

(** {1 Available loads} *)

type t = {
  func : Prog.func;
  rd : Reaching.t;
  before : fact array;  (** per pc: pairs (reg, word addr) available *)
}

val compute :
  ?rd:Reaching.t -> ?store_range:(int -> (int * int) option) -> Prog.func -> t
(** [store_range pc] bounds the words a [Store] through an
    unresolvable address at [pc] may write, as [(lo, len)] — typically
    {!Alias.store_range}.  Without it (or when it answers [None]) such
    a store kills every tracked pair. *)

val available : t -> pc:int -> (Instr.reg * int) list

val holder_of : t -> pc:int -> addr:int -> Instr.reg option
(** The lowest-numbered register provably holding memory word [addr]
    just before [pc]. *)

(** {1 Available copies} *)

type copies = {
  cfunc : Prog.func;
  cbefore : fact array;  (** per pc: pairs (dst, src) with dst = src *)
}

val compute_copies :
  ?cfg:Cfg.t ->
  Prog.func ->
  is_copy:(int -> (Instr.reg * Instr.reg) option) ->
  copies
(** [is_copy pc] recognizes copy-shaped instructions, returning
    [(dst, src)]. *)

val copy_source : copies -> pc:int -> Instr.reg -> Instr.reg option
(** The lowest-numbered register provably equal to [r] just before
    [pc], other than [r] itself. *)
