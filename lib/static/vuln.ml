(** Static vulnerability ranking of code regions.

    A purely static counterpart of the dynamic resilience-factor
    analysis: without running anything, rank the program's code regions
    by how exposed a bit-flip landing in them would be.

    Two forces, per region:
    {ul
    {- {e exposure} — the mean number of live locations (registers plus
       statically-addressed memory words) per instruction.  Each live
       location a fault can reach is a place the corruption stays
       alive;}
    {- {e protection} — the density of statically recognizable
       resilience-pattern sites: conditional branches (dead corrupted
       locations / conditional masking), shifts and truncations (data
       truncation), stores (data overwriting), plus any caller-supplied
       sites such as the repeated-additions and truncating-print sites
       [Static_detect] finds.}}

    [score = exposure /. (1 + 4 * protective_density)] — exposure
    discounted by protection.  Everything is deterministic; ranking the
    same program twice yields identical output. *)

type region_score = {
  rid : int;
  rname : string;
  instrs : int;            (** static instructions attributed to the region *)
  avg_live_regs : float;
  avg_live_words : float;
  protective_sites : int;
  protective_density : float;
  exposure : float;
  score : float;
}

(* A site whose instruction shape alone marks it protective. *)
let trivially_protective (ins : Instr.t) : bool =
  match ins with
  | Instr.Bnz _ -> true
  | Instr.Bin (op, _, _, _) -> Op.bin_is_shift op
  | Instr.Un (op, _, _) -> Op.un_is_truncation op
  | Instr.Store _ -> true
  | Instr.Const _ | Instr.Load _ | Instr.Jmp _ | Instr.Call _ | Instr.Ret _
  | Instr.Intr _ | Instr.Mark _ ->
      false

let rank ?(extra_protective : (string * int) list = []) (p : Prog.t) :
    region_score list =
  let nregions = Array.length p.Prog.region_table in
  let extra = Hashtbl.create 16 in
  List.iter
    (fun (fname, pc) -> Hashtbl.replace extra (fname, pc) ())
    extra_protective;
  let instrs = Array.make nregions 0 in
  let live_sum = Array.make nregions 0 in
  let words_sum = Array.make nregions 0 in
  let protective = Array.make nregions 0 in
  Array.iter
    (fun (f : Prog.func) ->
      let n = Array.length f.Prog.code in
      if n > 0 && Array.length f.Prog.regions = n && Array.length f.Prog.lines = n
      then begin
        let cfg = Cfg.build f in
        let lv = Liveness.compute ~cfg f in
        let rd = Reaching.compute f in
        let ml = Liveness.compute_mem rd f in
        Array.iteri
          (fun pc ins ->
            let r = f.Prog.regions.(pc) in
            if r >= 0 && r < nregions then begin
              instrs.(r) <- instrs.(r) + 1;
              live_sum.(r) <-
                live_sum.(r) + List.length (Liveness.live_before lv ~pc);
              words_sum.(r) <-
                words_sum.(r) + List.length (Liveness.words_live_before ml ~pc);
              if
                trivially_protective ins
                || Hashtbl.mem extra (f.Prog.fname, pc)
              then protective.(r) <- protective.(r) + 1
            end)
          f.Prog.code
      end)
    p.Prog.funcs;
  let scores =
    Array.to_list
      (Array.mapi
         (fun rid (ri : Prog.region_info) ->
           let n = instrs.(rid) in
           let fn = float_of_int (max n 1) in
           let avg_live_regs = float_of_int live_sum.(rid) /. fn in
           let avg_live_words = float_of_int words_sum.(rid) /. fn in
           let exposure = avg_live_regs +. avg_live_words in
           let protective_density = float_of_int protective.(rid) /. fn in
           {
             rid;
             rname = ri.Prog.rname;
             instrs = n;
             avg_live_regs;
             avg_live_words;
             protective_sites = protective.(rid);
             protective_density;
             exposure;
             score = exposure /. (1.0 +. (4.0 *. protective_density));
           })
         p.Prog.region_table)
  in
  List.stable_sort
    (fun a b ->
      match compare b.score a.score with 0 -> compare a.rid b.rid | c -> c)
    scores

let pp_score ppf (s : region_score) =
  Fmt.pf ppf
    "%-12s %5d instrs  live regs %5.2f  live words %6.2f  protective %3d \
     (%.3f/instr)  score %7.3f"
    s.rname s.instrs s.avg_live_regs s.avg_live_words s.protective_sites
    s.protective_density s.score

let pp_ranking ppf (scores : region_score list) =
  List.iteri (fun i s -> Fmt.pf ppf "%2d. %a@," (i + 1) pp_score s) scores

let to_csv (scores : region_score list) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b
    "rank,region,instrs,avg_live_regs,avg_live_words,protective_sites,\
     protective_density,exposure,score\n";
  List.iteri
    (fun i s ->
      Buffer.add_string b
        (Printf.sprintf "%d,%s,%d,%.4f,%.4f,%d,%.4f,%.4f,%.4f\n" (i + 1)
           s.rname s.instrs s.avg_live_regs s.avg_live_words s.protective_sites
           s.protective_density s.exposure s.score))
    scores;
  Buffer.contents b
