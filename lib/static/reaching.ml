(** Reaching definitions, for registers and for statically-addressed
    memory words.

    {b Registers.}  For every instruction and register, the set of
    definition sites (instruction indices) whose value may still be in
    the register just before the instruction executes.  Two sentinel
    "definitions" model the state at function entry: [param_def] for
    registers that hold an incoming argument and [uninit_def] for
    registers never written since entry — the latter is what the
    verifier's use-before-def check looks for.

    {b Memory.}  The compiler puts every named scalar at a constant word
    address and materializes those addresses with [Const] instructions.
    For addresses that resolve to such a constant, a second forward
    analysis tracks the set of [Store] instructions whose value may
    occupy the word.  Stores through unresolvable addresses, calls, and
    [Randlc] may write anywhere and are folded in as unknown writers,
    which keeps [store_of] conservative: it answers only when exactly
    one resolvable store reaches the query point. *)

module S = Set.Make (Int)

let uninit_def = -1
let param_def = -2
let extern_def = -3  (* memory writer outside the function (initial image) *)

type t = {
  func : Prog.func;
  cfg : Cfg.t;
  before : S.t array array;  (* per pc, per register: defs reaching before *)
}

let set_array_lattice (width : int) : S.t array Dataflow.lattice =
  {
    Dataflow.bottom = Array.make width S.empty;
    equal = (fun a b -> Array.for_all2 S.equal a b);
    join = (fun a b -> Array.init width (fun i -> S.union a.(i) b.(i)));
  }

(* Materialize the per-instruction facts of a forward solution. *)
let per_pc_facts (cfg : Cfg.t) ~(transfer : int -> 'a -> 'a)
    (sol : 'a Dataflow.solution) ~(bottom : 'a) : 'a array =
  let n = Array.length cfg.Cfg.func.Prog.code in
  let before = Array.make n bottom in
  Array.iteri
    (fun bid (b : Cfg.block) ->
      let facts =
        Dataflow.block_facts ~dir:Dataflow.Forward ~transfer cfg sol bid
      in
      for i = 0 to b.Cfg.last - b.Cfg.first do
        before.(b.Cfg.first + i) <- facts.(i)
      done)
    cfg.Cfg.blocks;
  before

let compute ?(arity = 0) (f : Prog.func) : t =
  let cfg = Cfg.build f in
  let nregs = f.Prog.nregs in
  let lat = set_array_lattice nregs in
  let transfer pc fact =
    match Cfg.defs f.Prog.code.(pc) with
    | [] -> fact
    | ds ->
        let fact = Array.copy fact in
        List.iter (fun d -> if d >= 0 && d < nregs then fact.(d) <- S.singleton pc) ds;
        fact
  in
  let boundary =
    Array.init nregs (fun r ->
        if r < arity then S.singleton param_def else S.singleton uninit_def)
  in
  let sol = Dataflow.solve ~dir:Dataflow.Forward ~lat ~boundary ~transfer cfg in
  let before = per_pc_facts cfg ~transfer sol ~bottom:lat.Dataflow.bottom in
  { func = f; cfg; before }

let cfg (t : t) : Cfg.t = t.cfg

let defs_of (t : t) ~(pc : int) (r : Instr.reg) : int list =
  if pc < 0 || pc >= Array.length t.before || r < 0 || r >= t.func.Prog.nregs
  then []
  else S.elements t.before.(pc).(r)

(** The single real definition site reaching a use, if there is exactly
    one and it is an instruction (not a sentinel). *)
let unique_def (t : t) ~(pc : int) (r : Instr.reg) : int option =
  match defs_of t ~pc r with [ d ] when d >= 0 -> Some d | _ -> None

let may_be_uninit (t : t) ~(pc : int) (r : Instr.reg) : bool =
  List.mem uninit_def (defs_of t ~pc r)

(** Resolve the address register of a load/store to a constant word
    address, when its unique reaching definition is a [Const]. *)
let const_addr (t : t) ~(pc : int) (r : Instr.reg) : int option =
  match unique_def t ~pc r with
  | Some d -> (
      match t.func.Prog.code.(d) with
      | Instr.Const (_, k) when Int64.compare k 0L >= 0
                                && Int64.compare k (Int64.of_int max_int) < 0 ->
          Some (Int64.to_int k)
      | _ -> None)
  | None -> None

(* --- reaching stores over constant-address memory words ---------------- *)

type mem = {
  regs : t;
  addr_index : (int, int) Hashtbl.t;  (* word address -> dense index *)
  addrs : int array;
  mem_before : S.t array array;  (* per pc, per dense index: reaching stores *)
}

let compute_mem (regs : t) : mem =
  let f = regs.func in
  let code = f.Prog.code in
  let n = Array.length code in
  let addr_index = Hashtbl.create 64 in
  let addrs = ref [] in
  let note a =
    if not (Hashtbl.mem addr_index a) then begin
      Hashtbl.add addr_index a (Hashtbl.length addr_index);
      addrs := a :: !addrs
    end
  in
  for pc = 0 to n - 1 do
    match code.(pc) with
    | Instr.Load (_, a) | Instr.Store (_, a) ->
        Option.iter note (const_addr regs ~pc a)
    | Instr.Const _ | Instr.Bin _ | Instr.Un _ | Instr.Jmp _ | Instr.Bnz _
    | Instr.Call _ | Instr.Ret _ | Instr.Intr _ | Instr.Mark _ ->
        ()
  done;
  let addrs = Array.of_list (List.rev !addrs) in
  let width = Array.length addrs in
  let lat = set_array_lattice width in
  let weak_update_all pc fact =
    Array.map (fun s -> S.add pc s) fact
  in
  let transfer pc fact =
    match code.(pc) with
    | Instr.Store (_, a) -> (
        match const_addr regs ~pc a with
        | Some addr ->
            let i = Hashtbl.find addr_index addr in
            let fact = Array.copy fact in
            fact.(i) <- S.singleton pc;
            fact
        | None -> weak_update_all pc fact)
    | Instr.Call _ | Instr.Intr (Instr.Randlc, _, _) ->
        (* may write any word: the callee's frame overlaps nothing we
           track here, but globals do, so stay conservative *)
        weak_update_all pc fact
    | Instr.Const _ | Instr.Bin _ | Instr.Un _ | Instr.Load _ | Instr.Jmp _
    | Instr.Bnz _ | Instr.Ret _ | Instr.Intr _ | Instr.Mark _ ->
        fact
  in
  let boundary = Array.make width (S.singleton extern_def) in
  let sol =
    Dataflow.solve ~dir:Dataflow.Forward ~lat ~boundary ~transfer regs.cfg
  in
  let mem_before =
    per_pc_facts regs.cfg ~transfer sol ~bottom:lat.Dataflow.bottom
  in
  { regs; addr_index; addrs; mem_before }

let tracked_addrs (m : mem) : int list = Array.to_list m.addrs

(** The unique store whose value occupies word [addr] just before [pc],
    if there is exactly one and it is itself a store to that resolved
    address (unknown writers disqualify the word). *)
let store_of (m : mem) ~(pc : int) ~(addr : int) : int option =
  match Hashtbl.find_opt m.addr_index addr with
  | None -> None
  | Some i -> (
      if pc < 0 || pc >= Array.length m.mem_before then None
      else
        match S.elements m.mem_before.(pc).(i) with
        | [ d ] when d >= 0 -> (
            match m.regs.func.Prog.code.(d) with
            | Instr.Store (_, areg)
              when const_addr m.regs ~pc:d areg = Some addr ->
                Some d
            | _ -> None)
        | _ -> None)
