(** Basic-block control-flow graphs over [Ft_ir] function bodies.

    A block is a maximal straight-line run of instructions: it starts at
    a leader (function entry, a branch target, or the instruction after
    a terminator) and ends at the next terminator or leader.  Edges
    follow [Jmp]/[Bnz] targets and fall-through; [Ret] has no
    successors.  Out-of-range branch targets are dropped from the edge
    set rather than raising, so the graph can be built for broken
    programs and the verifier can report the damage as diagnostics. *)

type block = {
  bid : int;
  first : int;  (** index of the first instruction *)
  last : int;   (** index of the last instruction, inclusive *)
  succs : int list;  (** successor block ids *)
  preds : int list;  (** predecessor block ids *)
}

type t = {
  func : Prog.func;
  blocks : block array;
  block_of : int array;  (** instruction index -> block id *)
}

(* Control successors of one instruction, with out-of-range targets
   silently dropped (the verifier reports those separately). *)
let instr_succs (code : Instr.t array) (pc : int) : int list =
  let n = Array.length code in
  let ok l = l >= 0 && l < n in
  match code.(pc) with
  | Instr.Jmp l -> if ok l then [ l ] else []
  | Instr.Bnz (_, l1, l2) ->
      let t1 = if ok l1 then [ l1 ] else [] in
      let t2 = if ok l2 && l2 <> l1 then [ l2 ] else [] in
      t1 @ t2
  | Instr.Ret _ -> []
  | Instr.Const _ | Instr.Bin _ | Instr.Un _ | Instr.Load _ | Instr.Store _
  | Instr.Call _ | Instr.Intr _ | Instr.Mark _ ->
      if pc + 1 < n then [ pc + 1 ] else []

let is_terminator (ins : Instr.t) =
  match ins with
  | Instr.Jmp _ | Instr.Bnz _ | Instr.Ret _ -> true
  | Instr.Const _ | Instr.Bin _ | Instr.Un _ | Instr.Load _ | Instr.Store _
  | Instr.Call _ | Instr.Intr _ | Instr.Mark _ ->
      false

let build (f : Prog.func) : t =
  let code = f.Prog.code in
  let n = Array.length code in
  if n = 0 then { func = f; blocks = [||]; block_of = [||] }
  else begin
    let leader = Array.make n false in
    leader.(0) <- true;
    Array.iteri
      (fun pc ins ->
        (match ins with
        | Instr.Jmp l -> if l >= 0 && l < n then leader.(l) <- true
        | Instr.Bnz (_, l1, l2) ->
            if l1 >= 0 && l1 < n then leader.(l1) <- true;
            if l2 >= 0 && l2 < n then leader.(l2) <- true
        | Instr.Const _ | Instr.Bin _ | Instr.Un _ | Instr.Load _
        | Instr.Store _ | Instr.Call _ | Instr.Ret _ | Instr.Intr _
        | Instr.Mark _ ->
            ());
        if is_terminator ins && pc + 1 < n then leader.(pc + 1) <- true)
      code;
    let block_of = Array.make n 0 in
    let bounds = ref [] and bid = ref (-1) in
    let first = ref 0 in
    for pc = 0 to n - 1 do
      if leader.(pc) then begin
        if pc > 0 then bounds := (!first, pc - 1) :: !bounds;
        first := pc;
        incr bid
      end;
      block_of.(pc) <- !bid
    done;
    bounds := (!first, n - 1) :: !bounds;
    let bounds = Array.of_list (List.rev !bounds) in
    let nblocks = Array.length bounds in
    let succs =
      Array.map
        (fun (_, last) ->
          List.map (fun l -> block_of.(l)) (instr_succs code last))
        bounds
    in
    let preds = Array.make nblocks [] in
    Array.iteri
      (fun b ss -> List.iter (fun s -> preds.(s) <- b :: preds.(s)) ss)
      succs;
    let blocks =
      Array.mapi
        (fun b (first, last) ->
          { bid = b; first; last; succs = succs.(b); preds = List.rev preds.(b) })
        bounds
    in
    { func = f; blocks; block_of }
  end

let n_blocks (g : t) = Array.length g.blocks
let block (g : t) (bid : int) = g.blocks.(bid)

(** Blocks reachable from the function entry (block 0). *)
let reachable (g : t) : bool array =
  let n = n_blocks g in
  let seen = Array.make n false in
  let rec dfs b =
    if not seen.(b) then begin
      seen.(b) <- true;
      List.iter dfs g.blocks.(b).succs
    end
  in
  if n > 0 then dfs 0;
  seen

(** Is the instruction at [pc] reachable from the entry? *)
let reachable_pcs (g : t) : bool array =
  let blocks_ok = reachable g in
  Array.map (fun b -> blocks_ok.(b)) g.block_of

(* --- dominators and natural loops -------------------------------------- *)

(** Immediate dominators, one block id per block; the entry block and
    unreachable blocks get [-1].  Cooper–Harvey–Kennedy iteration over a
    reverse postorder. *)
let idoms (g : t) : int array =
  let n = n_blocks g in
  let idom = Array.make n (-1) in
  if n = 0 then idom
  else begin
    (* reverse postorder over the reachable subgraph *)
    let seen = Array.make n false in
    let po = ref [] in
    let rec dfs b =
      if not seen.(b) then begin
        seen.(b) <- true;
        List.iter dfs g.blocks.(b).succs;
        po := b :: !po
      end
    in
    dfs 0;
    let rpo = Array.of_list !po in
    let order = Array.make n (-1) in
    Array.iteri (fun i b -> order.(b) <- i) rpo;
    (* during iteration the entry is its own idom so [intersect]
       terminates; reset to -1 at the end *)
    idom.(0) <- 0;
    let intersect b1 b2 =
      let f1 = ref b1 and f2 = ref b2 in
      while !f1 <> !f2 do
        while order.(!f1) > order.(!f2) do
          f1 := idom.(!f1)
        done;
        while order.(!f2) > order.(!f1) do
          f2 := idom.(!f2)
        done
      done;
      !f1
    in
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iter
        (fun b ->
          if b <> 0 then begin
            let processed =
              List.filter
                (fun p -> order.(p) >= 0 && idom.(p) >= 0)
                g.blocks.(b).preds
            in
            match processed with
            | [] -> ()
            | p0 :: rest ->
                let d = List.fold_left intersect p0 rest in
                if idom.(b) <> d then begin
                  idom.(b) <- d;
                  changed := true
                end
          end)
        rpo
    done;
    idom.(0) <- -1;
    idom
  end

(** [dominates idom a b]: does block [a] dominate block [b]?  Both must
    be reachable; every block dominates itself. *)
let dominates (idom : int array) (a : int) (b : int) : bool =
  let rec up x = x = a || (idom.(x) >= 0 && up idom.(x)) in
  up b

type loop = {
  header : int;         (** header block id *)
  members : bool array; (** per block id: inside the loop? *)
}

(** Natural loops of the back edges (edges whose target dominates their
    source), merged per header, sorted by header block id. *)
let natural_loops (g : t) : loop list =
  let n = n_blocks g in
  let idom = idoms g in
  let reach = reachable g in
  let loops : (int, bool array) Hashtbl.t = Hashtbl.create 8 in
  Array.iter
    (fun (b : block) ->
      if reach.(b.bid) then
        List.iter
          (fun h ->
            if reach.(h) && dominates idom h b.bid then begin
              let members =
                match Hashtbl.find_opt loops h with
                | Some m -> m
                | None ->
                    let m = Array.make n false in
                    m.(h) <- true;
                    Hashtbl.add loops h m;
                    m
              in
              let rec add x =
                if not members.(x) then begin
                  members.(x) <- true;
                  List.iter add g.blocks.(x).preds
                end
              in
              add b.bid
            end)
          b.succs)
    g.blocks;
  Hashtbl.fold (fun header members acc -> { header; members } :: acc) loops []
  |> List.sort (fun a b -> compare a.header b.header)

(** Per block, the number of natural loops containing it. *)
let loop_depth (g : t) : int array =
  let d = Array.make (n_blocks g) 0 in
  List.iter
    (fun l ->
      Array.iteri (fun b inside -> if inside then d.(b) <- d.(b) + 1) l.members)
    (natural_loops g);
  d

(* --- def/use sets ------------------------------------------------------ *)

let defs (ins : Instr.t) : Instr.reg list =
  match ins with
  | Instr.Const (d, _) | Instr.Bin (_, d, _, _) | Instr.Un (_, d, _)
  | Instr.Load (d, _)
  | Instr.Call (_, _, Some d)
  | Instr.Intr (_, _, Some d) ->
      [ d ]
  | Instr.Store _ | Instr.Jmp _ | Instr.Bnz _
  | Instr.Call (_, _, None)
  | Instr.Ret _
  | Instr.Intr (_, _, None)
  | Instr.Mark _ ->
      []

let uses (ins : Instr.t) : Instr.reg list =
  match ins with
  | Instr.Const _ | Instr.Jmp _ | Instr.Mark _ | Instr.Ret None -> []
  | Instr.Bin (_, _, a, b) -> [ a; b ]
  | Instr.Un (_, _, a) | Instr.Load (_, a) -> [ a ]
  | Instr.Store (s, a) -> [ s; a ]
  | Instr.Bnz (c, _, _) -> [ c ]
  | Instr.Call (_, args, _) | Instr.Intr (_, args, _) -> Array.to_list args
  | Instr.Ret (Some r) -> [ r ]

let pp ppf (g : t) =
  Fmt.pf ppf "@[<v>cfg %s: %d blocks@," g.func.Prog.fname (n_blocks g);
  Array.iter
    (fun b ->
      Fmt.pf ppf "  b%d [%d..%d] -> %a@," b.bid b.first b.last
        Fmt.(list ~sep:comma int)
        b.succs)
    g.blocks;
  Fmt.pf ppf "@]"
