(** IR verifier/linter.  Walks a whole program and returns structured
    diagnostics instead of raising on the first problem, so hand-built
    or corrupted IR surfaces everything at once. *)

type severity = Error | Warning

type kind =
  | Bad_entry            (** entry function index out of range *)
  | Metadata_mismatch    (** lines/regions arrays do not match the code *)
  | Bad_register         (** register operand out of range *)
  | Bad_target           (** branch target out of range *)
  | Bad_callee           (** callee function index out of range *)
  | Bad_mark             (** mark id out of range *)
  | Bad_region           (** region id out of range *)
  | Arity_mismatch       (** call passes fewer args than the callee reads,
                             or more than it has registers *)
  | Ret_mismatch         (** value expected from a callee that can return
                             without one; or a function mixes ret kinds *)
  | Use_before_def       (** entry function reads a never-written register *)
  | Unreachable_code     (** instructions no path reaches *)
  | Dead_store           (** register def never used, or a named word
                             overwritten before any possible read *)
  | Const_store_unread   (** a statically-known constant stored to a word
                             no load in the whole program can read; only
                             reported when every load address resolves
                             (to a word or an object extent) *)
  | Missing_return       (** control can fall off the end of a function *)

type diag = {
  sev : severity;
  kind : kind;
  dfunc : string;  (** function name; [""] for program-level diagnostics *)
  pc : int;        (** instruction index, or -1 *)
  line : int;      (** source line, or -1 *)
  message : string;
}

val verify : Prog.t -> diag list
(** All diagnostics, ordered by function (program-level first), then pc.
    Structural errors in a function suppress its dataflow-based checks
    but never those of other functions. *)

val errors : diag list -> diag list
val warnings : diag list -> diag list

val ok : diag list -> bool
(** No diagnostics of severity [Error]. *)

val severity_to_string : severity -> string
val kind_to_string : kind -> string

val pp_diag : Format.formatter -> diag -> unit

val pp_report : Format.formatter -> diag list -> unit
(** One line per diagnostic plus an error/warning count summary. *)

val to_csv : diag list -> string
(** [severity,kind,function,pc,line,message] with a header row. *)
