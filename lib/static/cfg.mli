(** Basic-block control-flow graphs over [Ft_ir] function bodies.
    Out-of-range branch targets are dropped from the edge set instead of
    raising, so broken programs still get a graph the verifier can walk. *)

type block = {
  bid : int;
  first : int;  (** index of the first instruction *)
  last : int;   (** index of the last instruction, inclusive *)
  succs : int list;
  preds : int list;
}

type t = {
  func : Prog.func;
  blocks : block array;
  block_of : int array;  (** instruction index -> block id *)
}

val build : Prog.func -> t
val n_blocks : t -> int
val block : t -> int -> block

val instr_succs : Instr.t array -> int -> int list
(** Control successors of one instruction (out-of-range targets dropped). *)

val is_terminator : Instr.t -> bool

val reachable : t -> bool array
(** Per block: reachable from the entry block? *)

val reachable_pcs : t -> bool array
(** Per instruction: reachable from the function entry? *)

val idoms : t -> int array
(** Immediate dominator block per block; entry and unreachable blocks
    get [-1]. *)

val dominates : int array -> int -> int -> bool
(** [dominates idom a b]: does block [a] dominate block [b]?  Pass the
    array returned by {!idoms}. *)

type loop = {
  header : int;         (** header block id *)
  members : bool array; (** per block id: inside the loop? *)
}

val natural_loops : t -> loop list
(** Natural loops of the back edges, merged per header block. *)

val loop_depth : t -> int array
(** Per block: number of natural loops containing it. *)

val defs : Instr.t -> Instr.reg list
(** Registers written by the instruction (empty or a singleton). *)

val uses : Instr.t -> Instr.reg list
(** Registers read by the instruction. *)

val pp : Format.formatter -> t -> unit
