(* Object-based alias analysis over the flat word memory.

   The compiler materializes every address as either a literal constant
   (scalars, folded constant indices) or an [Add] chain rooted at a
   symbol's base address (array indexing).  Under the C object model an
   access through an address derived from an object's base stays inside
   that object, so the extent of the containing symbol bounds the words
   the access can touch.  That is exactly the assumption every
   production compiler's type/object-based aliasing makes; here it is
   checked structurally against the symbol table, and the optimizer's
   fault-free identity gate backstops it per program.

   Resolution is deliberately conservative: an [Add] operand counts as
   a base candidate only if its constant value is exactly a symbol's
   starting address, both operands resolving to different symbols
   yields unknown, and anything unresolvable yields unknown (which
   clients must treat as "may touch every word"). *)

type extent = { lo : int; len : int }

type t = {
  func : Prog.func;
  rd : Reaching.t;
  cp : Constprop.t;
  (* symbols sorted by base address, as (addr, size) *)
  syms : (int * int) array;
}

let symbol_words (s : Prog.symbol) : int =
  List.fold_left ( * ) 1 s.Prog.sym_dims

let make (prog : Prog.t) (f : Prog.func) ~(rd : Reaching.t)
    ~(cp : Constprop.t) : t =
  let syms =
    List.map
      (fun (s : Prog.symbol) -> (s.Prog.sym_addr, symbol_words s))
      prog.Prog.symbols
    |> List.sort compare |> Array.of_list
  in
  { func = f; rd; cp; syms }

(* the symbol whose extent contains [addr] *)
let containing (t : t) (addr : int) : extent option =
  let n = Array.length t.syms in
  let rec search lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      let base, size = t.syms.(mid) in
      if addr < base then search lo mid
      else if addr >= base + size then search (mid + 1) hi
      else Some { lo = base; len = size }
  in
  search 0 n

let is_symbol_base (t : t) (addr : int) : bool =
  Array.exists (fun (base, _) -> base = addr) t.syms

let same_extent a b = a.lo = b.lo && a.len = b.len

(** The extent the address value in [r] just before [pc] can point
    into, if the addressing chain resolves to a single object. *)
let extent_of (t : t) ~(pc : int) (r : Instr.reg) : extent option =
  let code = t.func.Prog.code in
  let rec ext depth pc r =
    if depth <= 0 then None
    else
      match Constprop.const_of t.cp ~pc r with
      | Some a ->
          let a = Int64.to_int a in
          containing t a
      | None -> (
          match Reaching.unique_def t.rd ~pc r with
          | None -> None
          | Some dpc -> (
              match code.(dpc) with
              | Instr.Bin (Op.Add, _, x, y) -> (
                  let base_candidate o =
                    match Constprop.const_of t.cp ~pc:dpc o with
                    | Some a when is_symbol_base t (Int64.to_int a) ->
                        containing t (Int64.to_int a)
                    | Some _ | None -> ext (depth - 1) dpc o
                  in
                  match (base_candidate x, base_candidate y) with
                  | Some e, None | None, Some e -> Some e
                  | Some e1, Some e2 when same_extent e1 e2 -> Some e1
                  | Some _, Some _ | None, None -> None)
              | Instr.Bin ((Op.Or | Op.And), _, s, s') when s = s' ->
                  ext (depth - 1) dpc s
              | _ -> None))
  in
  ext 6 pc r

let touches (e : extent) (addr : int) : bool =
  addr >= e.lo && addr < e.lo + e.len

(** For a [Store] through an unresolvable address at [pc]: the word
    range it may write, as [(lo, len)], if the addressing chain
    resolves to one object. *)
let store_range (t : t) (pc : int) : (int * int) option =
  match t.func.Prog.code.(pc) with
  | Instr.Store (_, areg) -> (
      match extent_of t ~pc areg with
      | Some e -> Some (e.lo, e.len)
      | None -> None)
  | _ -> None
