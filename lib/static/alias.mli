(** Object-based alias analysis over the flat word memory.

    Bounds the words an access through a computed address can touch by
    resolving the compiler's addressing discipline against the symbol
    table: an [Add] chain rooted at a symbol's base address stays
    inside that symbol's extent (the C object-model assumption of
    production compilers' type/object-based aliasing).  Anything that
    does not resolve is unknown and must be treated as touching every
    word. *)

type extent = { lo : int; len : int }

type t

val make : Prog.t -> Prog.func -> rd:Reaching.t -> cp:Constprop.t -> t

val containing : t -> int -> extent option
(** The extent of the symbol whose words include the address. *)

val extent_of : t -> pc:int -> Instr.reg -> extent option
(** The object extent the address value in the register (just before
    [pc]) can point into, if its addressing chain resolves. *)

val touches : extent -> int -> bool

val store_range : t -> int -> (int * int) option
(** For a [Store] at this pc: the [(lo, len)] word range it may write,
    when the address resolves to one object; [None] for non-stores and
    unresolvable addresses. *)
