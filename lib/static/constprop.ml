(** Constant propagation: a per-register constant lattice solved on the
    generic {!Dataflow} worklist engine.

    The lattice per register is [Unknown < Const k < Varies]: [Unknown]
    is the join identity (no path has defined the register yet — only
    unreachable code keeps it), [Const k] means every execution reaching
    the point leaves bit pattern [k] in the register, and [Varies] is
    the conservative top.  Values are raw [Value.t] bit patterns, so the
    analysis is exact for floats too.

    The transfer function folds [Bin]/[Un] over known-constant operands
    with the real {!Op} evaluators; operations that would trap
    (division by zero, [Fsqrt] of a negative, [IntOfFloat] of NaN) stay
    [Varies] so the folder never hides a crash.  Loads, calls and
    intrinsic results are [Varies]. *)

type v = Unknown | Const of int64 | Varies

let join_v (a : v) (b : v) : v =
  match (a, b) with
  | Unknown, x | x, Unknown -> x
  | Const x, Const y when Int64.equal x y -> a
  | Const _, Const _ -> Varies
  | Varies, _ | _, Varies -> Varies

let equal_v a b =
  match (a, b) with
  | Unknown, Unknown | Varies, Varies -> true
  | Const x, Const y -> Int64.equal x y
  | (Unknown | Const _ | Varies), _ -> false

type t = {
  func : Prog.func;
  cfg : Cfg.t;
  before : v array array;  (* per pc, per register: value before *)
}

(* Evaluate one instruction over a fact (facts are functional copies). *)
let transfer_code (code : Instr.t array) (nregs : int) (pc : int)
    (fact : v array) : v array =
  let get r = if r >= 0 && r < nregs then fact.(r) else Varies in
  let set d x =
    if d >= 0 && d < nregs then begin
      let fact = Array.copy fact in
      fact.(d) <- x;
      fact
    end
    else fact
  in
  match code.(pc) with
  | Instr.Const (d, k) -> set d (Const k)
  | Instr.Bin (op, d, a, b) -> (
      match (get a, get b) with
      | Const x, Const y -> (
          match Op.eval_bin op x y with
          | k -> set d (Const k)
          | exception Op.Trap _ -> set d Varies)
      | (Unknown | Const _ | Varies), _ -> set d Varies)
  | Instr.Un (op, d, a) -> (
      match get a with
      | Const x -> (
          match Op.eval_un op x with
          | k -> set d (Const k)
          | exception Op.Trap _ -> set d Varies)
      | Unknown | Varies -> set d Varies)
  | Instr.Load (d, _)
  | Instr.Call (_, _, Some d)
  | Instr.Intr (_, _, Some d) ->
      set d Varies
  | Instr.Store _ | Instr.Jmp _ | Instr.Bnz _
  | Instr.Call (_, _, None)
  | Instr.Ret _
  | Instr.Intr (_, _, None)
  | Instr.Mark _ ->
      fact

let compute ?cfg (f : Prog.func) : t =
  let cfg = match cfg with Some g -> g | None -> Cfg.build f in
  let nregs = f.Prog.nregs in
  let lat : v array Dataflow.lattice =
    {
      Dataflow.bottom = Array.make nregs Unknown;
      equal = (fun a b -> Array.for_all2 equal_v a b);
      join = (fun a b -> Array.init nregs (fun i -> join_v a.(i) b.(i)));
    }
  in
  let transfer = transfer_code f.Prog.code nregs in
  (* registers start as zeroed words in the VM, but parameters are
     blitted over them: all-Varies is sound for every function *)
  let boundary = Array.make nregs Varies in
  let sol = Dataflow.solve ~dir:Dataflow.Forward ~lat ~boundary ~transfer cfg in
  let before =
    Reaching.per_pc_facts cfg ~transfer sol ~bottom:lat.Dataflow.bottom
  in
  { func = f; cfg; before }

let value_of (t : t) ~(pc : int) (r : Instr.reg) : v =
  if pc < 0 || pc >= Array.length t.before || r < 0 || r >= t.func.Prog.nregs
  then Varies
  else t.before.(pc).(r)

(** The constant bit pattern register [r] provably holds just before
    [pc], if the analysis proves one on every path reaching [pc]. *)
let const_of (t : t) ~(pc : int) (r : Instr.reg) : int64 option =
  match value_of t ~pc r with Const k -> Some k | Unknown | Varies -> None

let pp_v ppf = function
  | Unknown -> Fmt.string ppf "?"
  | Const k -> Fmt.pf ppf "0x%Lx" k
  | Varies -> Fmt.string ppf "T"
