(** Availability analyses over the flat word memory and the register
    file: forward {e must} problems (join is intersection) solved on the
    generic {!Dataflow} engine.

    {b Available loads.}  A pair [(r, a)] is available at a point when
    register [r] provably holds the current contents of memory word [a]
    on every path reaching it.  [Load (r, A)] and [Store (r, A)] with a
    statically resolvable address both generate the pair; redefining
    [r], storing to [a], storing through an unresolvable address,
    calls, and [Randlc] kill.  Redundant-load elimination asks
    {!holder_of} for a register already holding the word a load is
    about to fetch.

    {b Available copies.}  A pair [(d, s)] is available when [d]
    provably equals [s].  The client recognizes copy instructions (the
    IR has no move, so copies are identity-shaped [Bin]s); any
    redefinition of either side kills the pair.  Copy propagation asks
    {!copy_source} for an older name of a register operand.

    Both lattices are optimistic: the symbolic top [All] (join
    identity) seeds the iteration, entry boundary is the empty set, and
    facts shrink to the fixpoint.  Unreachable code keeps [All]; the
    query functions answer conservatively there. *)

module P = Set.Make (struct
  type t = int * int

  let compare = compare
end)

type fact = All | Pairs of P.t

let join_fact a b =
  match (a, b) with
  | All, x | x, All -> x
  | Pairs x, Pairs y -> Pairs (P.inter x y)

let equal_fact a b =
  match (a, b) with
  | All, All -> true
  | Pairs x, Pairs y -> P.equal x y
  | (All | Pairs _), _ -> false

let lat : fact Dataflow.lattice =
  { Dataflow.bottom = All; equal = equal_fact; join = join_fact }

(* transfer templates keep the symbolic top: All stays All *)
let on_pairs f = function All -> All | Pairs s -> Pairs (f s)

(* --- available loads ---------------------------------------------------- *)

type t = {
  func : Prog.func;
  rd : Reaching.t;
  before : fact array;  (* per pc: pairs (reg, word addr) available *)
}

let compute ?rd ?store_range (f : Prog.func) : t =
  let rd = match rd with Some r -> r | None -> Reaching.compute f in
  let cfg = Reaching.cfg rd in
  let code = f.Prog.code in
  let kill_reg r = P.filter (fun (x, _) -> x <> r) in
  let kill_addr a = P.filter (fun (_, y) -> y <> a) in
  (* kill every pair whose word lies inside [lo, lo+len) *)
  let kill_range lo len = P.filter (fun (_, y) -> y < lo || y >= lo + len) in
  let transfer pc fact =
    match code.(pc) with
    | Instr.Load (d, areg) -> (
        match Reaching.const_addr rd ~pc areg with
        | Some a -> on_pairs (fun s -> P.add (d, a) (kill_reg d s)) fact
        | None -> on_pairs (kill_reg d) fact)
    | Instr.Store (s, areg) -> (
        match Reaching.const_addr rd ~pc areg with
        | Some a -> on_pairs (fun set -> P.add (s, a) (kill_addr a set)) fact
        | None -> (
            (* unresolvable address: without alias information the store
               may overwrite any tracked word; a resolved object extent
               bounds the kill to that symbol's words *)
            match Option.bind store_range (fun sr -> sr pc) with
            | Some (lo, len) -> on_pairs (kill_range lo len) fact
            | None -> Pairs P.empty))
    | Instr.Intr (Instr.Randlc, args, ret) -> (
        (* randlc writes its state word and its result register; when
           the state address resolves, everything else survives *)
        match
          if Array.length args = 0 then None
          else Reaching.const_addr rd ~pc args.(0)
        with
        | Some a ->
            let kill_ret s =
              match ret with Some d -> kill_reg d s | None -> s
            in
            on_pairs (fun s -> kill_ret (kill_addr a s)) fact
        | None -> Pairs P.empty)
    | Instr.Call _ -> Pairs P.empty
    | Instr.Const (d, _)
    | Instr.Bin (_, d, _, _)
    | Instr.Un (_, d, _)
    | Instr.Intr (_, _, Some d) ->
        on_pairs (kill_reg d) fact
    | Instr.Jmp _ | Instr.Bnz _ | Instr.Ret _
    | Instr.Intr (_, _, None)
    | Instr.Mark _ ->
        fact
  in
  let sol =
    Dataflow.solve ~dir:Dataflow.Forward ~lat ~boundary:(Pairs P.empty)
      ~transfer cfg
  in
  let before = Reaching.per_pc_facts cfg ~transfer sol ~bottom:lat.Dataflow.bottom in
  { func = f; rd; before }

let available (t : t) ~(pc : int) : (Instr.reg * int) list =
  if pc < 0 || pc >= Array.length t.before then []
  else match t.before.(pc) with All -> [] | Pairs s -> P.elements s

(** The lowest-numbered register provably holding memory word [addr]
    just before [pc]. *)
let holder_of (t : t) ~(pc : int) ~(addr : int) : Instr.reg option =
  if pc < 0 || pc >= Array.length t.before then None
  else
    match t.before.(pc) with
    | All -> None
    | Pairs s ->
        P.fold
          (fun (r, a) best ->
            if a <> addr then best
            else
              match best with Some b when b <= r -> best | _ -> Some r)
          s None

(* --- available copies --------------------------------------------------- *)

type copies = {
  cfunc : Prog.func;
  cbefore : fact array;  (* per pc: pairs (dst, src) with dst = src *)
}

let compute_copies ?cfg (f : Prog.func)
    ~(is_copy : int -> (Instr.reg * Instr.reg) option) : copies =
  let cfg = match cfg with Some g -> g | None -> Cfg.build f in
  let code = f.Prog.code in
  let kill r = P.filter (fun (d, s) -> d <> r && s <> r) in
  let transfer pc fact =
    match is_copy pc with
    | Some (d, s) when d <> s ->
        (* d now equals s, and transitively every older name of s *)
        on_pairs
          (fun set ->
            let set' = kill d set in
            let aliases =
              P.fold
                (fun (x, y) acc -> if x = s then (d, y) :: acc else acc)
                set' []
            in
            List.fold_left (fun acc p -> P.add p acc) (P.add (d, s) set')
              aliases)
          fact
    | Some _ | None -> (
        match Cfg.defs code.(pc) with
        | [] -> (
            match code.(pc) with
            | Instr.Call _ | Instr.Intr (Instr.Randlc, _, _) ->
                fact (* registers are per-frame: calls clobber no copies *)
            | _ -> fact)
        | ds -> on_pairs (fun s -> List.fold_left (fun s d -> kill d s) s ds) fact)
  in
  let sol =
    Dataflow.solve ~dir:Dataflow.Forward ~lat ~boundary:(Pairs P.empty)
      ~transfer cfg
  in
  let cbefore =
    Reaching.per_pc_facts cfg ~transfer sol ~bottom:lat.Dataflow.bottom
  in
  { cfunc = f; cbefore }

(** The lowest-numbered register provably equal to [r] just before
    [pc], other than [r] itself. *)
let copy_source (c : copies) ~(pc : int) (r : Instr.reg) : Instr.reg option =
  if pc < 0 || pc >= Array.length c.cbefore then None
  else
    match c.cbefore.(pc) with
    | All -> None
    | Pairs s ->
        P.fold
          (fun (d, src) best ->
            if d <> r || src = r then best
            else
              match best with Some b when b <= src -> best | _ -> Some src)
          s None
