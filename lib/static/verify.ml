(** IR verifier/linter: structured diagnostics over a whole program.

    Unlike [Prog.validate], which raises on the first structural
    violation, the verifier walks everything and returns a report, so
    broken programs (hand-built IR, future compiler bugs) surface all
    their problems at once and test fixtures can assert on specific
    diagnostic kinds.

    Checks, in dependency order:
    {ul
    {- structural: register / branch-target / callee / mark / region
       indices in range, metadata arrays consistent, entry valid;}
    {- control flow: unreachable instructions, functions control can
       fall off the end of, functions that are never called;}
    {- dataflow (reaching definitions): registers read before any write
       can reach them — in the entry function directly, and at call
       sites as an arity check against what the callee actually reads;}
    {- calling convention: more arguments than the callee has registers
       (the VM's register blit would raise), call sites expecting a
       value from a callee with a reachable bare [Ret];}
    {- liveness: register definitions never used, stores to named words
       overwritten on every path before any possible read.}}

    Structural errors in a function suppress its dataflow checks (the
    analyses need a well-formed body) but never the checks of other
    functions. *)

type severity = Error | Warning

type kind =
  | Bad_entry
  | Metadata_mismatch
  | Bad_register
  | Bad_target
  | Bad_callee
  | Bad_mark
  | Bad_region
  | Arity_mismatch
  | Ret_mismatch
  | Use_before_def
  | Unreachable_code
  | Dead_store
  | Const_store_unread
  | Missing_return

type diag = {
  sev : severity;
  kind : kind;
  dfunc : string;  (** function name; [""] for program-level diagnostics *)
  pc : int;        (** instruction index, or -1 *)
  line : int;      (** source line, or -1 *)
  message : string;
}

let severity_to_string = function Error -> "error" | Warning -> "warning"

let kind_to_string = function
  | Bad_entry -> "bad-entry"
  | Metadata_mismatch -> "metadata-mismatch"
  | Bad_register -> "bad-register"
  | Bad_target -> "bad-target"
  | Bad_callee -> "bad-callee"
  | Bad_mark -> "bad-mark"
  | Bad_region -> "bad-region"
  | Arity_mismatch -> "arity-mismatch"
  | Ret_mismatch -> "ret-mismatch"
  | Use_before_def -> "use-before-def"
  | Unreachable_code -> "unreachable-code"
  | Dead_store -> "dead-store"
  | Const_store_unread -> "const-store-unread"
  | Missing_return -> "missing-return"

let errors ds = List.filter (fun d -> d.sev = Error) ds
let warnings ds = List.filter (fun d -> d.sev = Warning) ds
let ok ds = errors ds = []

(* Everything the per-function analysis pass learns that the
   program-level pass (call-site checks) needs. *)
type func_summary = {
  structurally_ok : bool;
  required_arity : int;  (* 1 + highest register read before any write *)
  uninit_uses : (int * int) list;  (* reachable (pc, reg) uninit reads *)
  ret_none_reachable : bool;
}

let symbol_name (p : Prog.t) (addr : int) : string option =
  let covers (s : Prog.symbol) =
    let size = List.fold_left ( * ) 1 s.Prog.sym_dims in
    addr >= s.Prog.sym_addr && addr < s.Prog.sym_addr + size
  in
  Option.map (fun s -> s.Prog.sym_name) (List.find_opt covers p.Prog.symbols)

let verify (p : Prog.t) : diag list =
  let out = ref [] in
  let nfuncs = Array.length p.Prog.funcs in
  let nregions = Array.length p.Prog.region_table in
  let nmarks = Array.length p.Prog.mark_names in
  let push ?(fname = "") ?(pc = -1) ?(line = -1) sev kind fmt =
    Format.kasprintf
      (fun message ->
        out := { sev; kind; dfunc = fname; pc; line; message } :: !out)
      fmt
  in
  if p.Prog.entry < 0 || p.Prog.entry >= nfuncs then
    push Error Bad_entry "entry function index %d out of range [0,%d)"
      p.Prog.entry nfuncs;
  (* program-wide read set for the const-store-unread check: words any
     load or randlc can read; a single unresolvable address makes the
     whole check abstain *)
  let any_unknown_read = ref false in
  let read_words : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let read_extents : Alias.extent list ref = ref [] in
  let const_store_sites = ref [] in

  (* --- per-function: structural checks, then dataflow ------------------ *)
  let summaries =
    Array.mapi
      (fun _fi (f : Prog.func) ->
        let fname = f.Prog.fname in
        let code = f.Prog.code in
        let n = Array.length code in
        let meta_ok =
          Array.length f.Prog.lines = n && Array.length f.Prog.regions = n
        in
        if not meta_ok then
          push ~fname Error Metadata_mismatch
            "metadata arrays (%d lines, %d regions) do not match %d instructions"
            (Array.length f.Prog.lines)
            (Array.length f.Prog.regions)
            n;
        let line_of pc =
          if meta_ok && pc >= 0 && pc < n then f.Prog.lines.(pc) else -1
        in
        let struct_ok = ref meta_ok in
        let chk_reg pc r =
          if r < 0 || r >= f.Prog.nregs then begin
            struct_ok := false;
            push ~fname ~pc ~line:(line_of pc) Error Bad_register
              "register r%d out of range [0,%d)" r f.Prog.nregs
          end
        in
        let chk_lbl pc l =
          if l < 0 || l >= n then begin
            struct_ok := false;
            push ~fname ~pc ~line:(line_of pc) Error Bad_target
              "branch target %d out of range [0,%d)" l n
          end
        in
        Array.iteri
          (fun pc ins ->
            if meta_ok then begin
              let r = f.Prog.regions.(pc) in
              if r < -1 || r >= nregions then begin
                struct_ok := false;
                push ~fname ~pc ~line:(line_of pc) Error Bad_region
                  "region id %d out of range" r
              end
            end;
            List.iter (chk_reg pc) (Cfg.defs ins);
            List.iter (chk_reg pc) (Cfg.uses ins);
            match (ins : Instr.t) with
            | Jmp l -> chk_lbl pc l
            | Bnz (_, l1, l2) -> chk_lbl pc l1; chk_lbl pc l2
            | Call (fi, _, _) ->
                if fi < 0 || fi >= nfuncs then begin
                  struct_ok := false;
                  push ~fname ~pc ~line:(line_of pc) Error Bad_callee
                    "callee index f%d out of range [0,%d)" fi nfuncs
                end
            | Mark m ->
                if m < 0 || m >= nmarks then begin
                  struct_ok := false;
                  push ~fname ~pc ~line:(line_of pc) Error Bad_mark
                    "mark id %d out of range [0,%d)" m nmarks
                end
            | Const _ | Bin _ | Un _ | Load _ | Store _ | Ret _ | Intr _ ->
                ())
          code;
        if not !struct_ok || n = 0 then
          {
            structurally_ok = !struct_ok && n > 0;
            required_arity = 0;
            uninit_uses = [];
            ret_none_reachable = false;
          }
        else begin
          let cfg = Cfg.build f in
          let reach_pc = Cfg.reachable_pcs cfg in
          let reach_blk = Cfg.reachable cfg in
          (* unreachable code: one diagnostic per dead block.  The
             compiler appends a safety-net [Ret None] to every function;
             when it is dead (value-returning functions) it is noise,
             not a finding. *)
          let is_safety_net (b : Cfg.block) =
            b.Cfg.first = n - 1
            && match code.(n - 1) with Instr.Ret None -> true | _ -> false
          in
          Array.iter
            (fun (b : Cfg.block) ->
              if (not reach_blk.(b.Cfg.bid)) && not (is_safety_net b) then
                push ~fname ~pc:b.Cfg.first ~line:(line_of b.Cfg.first) Warning
                  Unreachable_code
                  "instructions %d..%d are unreachable" b.Cfg.first b.Cfg.last)
            cfg.Cfg.blocks;
          (* control falling off the end of a reachable block *)
          Array.iter
            (fun (b : Cfg.block) ->
              if
                reach_blk.(b.Cfg.bid)
                && b.Cfg.succs = []
                && not (match code.(b.Cfg.last) with Instr.Ret _ -> true | _ -> false)
              then
                push ~fname ~pc:b.Cfg.last ~line:(line_of b.Cfg.last) Error
                  Missing_return
                  "control can fall off the end of the function")
            cfg.Cfg.blocks;
          (* reaching definitions with every register initially undefined:
             reads of the entry state are parameter reads *)
          let rd = Reaching.compute ~arity:0 f in
          let uninit_uses = ref [] in
          Array.iteri
            (fun pc ins ->
              if reach_pc.(pc) then
                List.iter
                  (fun r ->
                    if Reaching.may_be_uninit rd ~pc r then
                      uninit_uses := (pc, r) :: !uninit_uses)
                  (Cfg.uses ins))
            code;
          let uninit_uses = List.rev !uninit_uses in
          let required_arity =
            List.fold_left (fun m (_, r) -> max m (r + 1)) 0 uninit_uses
          in
          let ret_none_reachable = ref false and ret_some_reachable = ref false in
          let first_bare_ret = ref (-1) in
          Array.iteri
            (fun pc ins ->
              if reach_pc.(pc) then
                match (ins : Instr.t) with
                | Ret None ->
                    if not !ret_none_reachable then first_bare_ret := pc;
                    ret_none_reachable := true
                | Ret (Some _) -> ret_some_reachable := true
                | _ -> ())
            code;
          if !ret_none_reachable && !ret_some_reachable then
            push ~fname ~pc:!first_bare_ret ~line:(line_of !first_bare_ret)
              Warning Ret_mismatch
              "mixes bare ret and ret-with-value on reachable paths";
          (* dead register definitions and dead named-word stores *)
          let lv = Liveness.compute ~cfg f in
          let ml = Liveness.compute_mem rd f in
          Array.iteri
            (fun pc ins ->
              if reach_pc.(pc) then
                match (ins : Instr.t) with
                | Const (d, _) | Bin (_, d, _, _) | Un (_, d, _) | Load (d, _)
                  when not (Liveness.is_live_after lv ~pc d) ->
                    push ~fname ~pc ~line:(line_of pc) Warning Dead_store
                      "register r%d is defined but never used" d
                | Store (_, a) -> (
                    match Reaching.const_addr rd ~pc a with
                    | Some addr when not (Liveness.word_live_after ml ~pc addr)
                      ->
                        push ~fname ~pc ~line:(line_of pc) Warning Dead_store
                          "store to %s is overwritten on every path before \
                           any read"
                          (match symbol_name p addr with
                          | Some s -> Printf.sprintf "%S (word %d)" s addr
                          | None -> Printf.sprintf "word %d" addr)
                    | _ -> ())
                | _ -> ())
            code;
          (* feed the program-wide const-store-unread check: what this
             function can read, and its constant stores to known words *)
          let cp = Constprop.compute ~cfg f in
          let al = Alias.make p f ~rd ~cp in
          Array.iteri
            (fun pc ins ->
              if reach_pc.(pc) then
                match (ins : Instr.t) with
                | Load (_, a) -> (
                    match Reaching.const_addr rd ~pc a with
                    | Some addr -> Hashtbl.replace read_words addr ()
                    | None -> (
                        match Alias.extent_of al ~pc a with
                        | Some e -> read_extents := e :: !read_extents
                        | None -> any_unknown_read := true))
                | Intr (Instr.Randlc, args, _) when Array.length args > 0 -> (
                    match Reaching.const_addr rd ~pc args.(0) with
                    | Some addr -> Hashtbl.replace read_words addr ()
                    | None -> any_unknown_read := true)
                | Store (s, a) -> (
                    match
                      (Reaching.const_addr rd ~pc a, Constprop.const_of cp ~pc s)
                    with
                    | Some addr, Some k ->
                        const_store_sites :=
                          (fname, pc, line_of pc, addr, k) :: !const_store_sites
                    | _ -> ())
                | _ -> ())
            code;
          {
            structurally_ok = true;
            required_arity;
            uninit_uses;
            ret_none_reachable = !ret_none_reachable;
          }
        end)
      p.Prog.funcs
  in

  (* --- program-level: constant stores nothing can read ----------------- *)
  (* sound only when every load's address resolved to a word or an
     object extent; one opaque read makes the whole program abstain *)
  if not !any_unknown_read then
    List.iter
      (fun (fname, pc, line, addr, k) ->
        let read =
          Hashtbl.mem read_words addr
          || List.exists (fun e -> Alias.touches e addr) !read_extents
        in
        if not read then
          push ~fname ~pc ~line Warning Const_store_unread
            "stores constant %Ld to %s, which no load in the program reads"
            k
            (match symbol_name p addr with
            | Some s -> Printf.sprintf "%S (word %d)" s addr
            | None -> Printf.sprintf "word %d" addr))
      (List.rev !const_store_sites);

  (* --- program-level: call sites and entry ----------------------------- *)
  let called = Array.make nfuncs false in
  if p.Prog.entry >= 0 && p.Prog.entry < nfuncs then
    called.(p.Prog.entry) <- true;
  Array.iteri
    (fun _gi (g : Prog.func) ->
      let fname = g.Prog.fname in
      let n = Array.length g.Prog.code in
      let meta_ok = Array.length g.Prog.lines = n in
      let line_of pc = if meta_ok then g.Prog.lines.(pc) else -1 in
      Array.iteri
        (fun pc ins ->
          match (ins : Instr.t) with
          | Call (fi, args, ret) when fi >= 0 && fi < nfuncs ->
              called.(fi) <- true;
              let callee = p.Prog.funcs.(fi) in
              let s = summaries.(fi) in
              if s.structurally_ok then begin
                let nargs = Array.length args in
                if nargs < s.required_arity then
                  push ~fname ~pc ~line:(line_of pc) Error Arity_mismatch
                    "call of %s with %d argument%s, but it reads register \
                     r%d before defining it (needs at least %d)"
                    callee.Prog.fname nargs
                    (if nargs = 1 then "" else "s")
                    (s.required_arity - 1) s.required_arity;
                if nargs > callee.Prog.nregs then
                  push ~fname ~pc ~line:(line_of pc) Error Arity_mismatch
                    "call of %s with %d arguments, but it has only %d \
                     register%s"
                    callee.Prog.fname nargs callee.Prog.nregs
                    (if callee.Prog.nregs = 1 then "" else "s");
                if ret <> None && s.ret_none_reachable then
                  push ~fname ~pc ~line:(line_of pc) Error Ret_mismatch
                    "call expects a value but %s can return without one"
                    callee.Prog.fname
              end
          | _ -> ())
        g.Prog.code)
    p.Prog.funcs;
  (* the VM invokes the entry function with no arguments *)
  if p.Prog.entry >= 0 && p.Prog.entry < nfuncs then begin
    let f = p.Prog.funcs.(p.Prog.entry) in
    let s = summaries.(p.Prog.entry) in
    let meta_ok = Array.length f.Prog.lines = Array.length f.Prog.code in
    List.iter
      (fun (pc, r) ->
        push ~fname:f.Prog.fname ~pc
          ~line:(if meta_ok then f.Prog.lines.(pc) else -1)
          Error Use_before_def
          "register r%d is read but never written before this point" r)
      s.uninit_uses
  end;
  Array.iteri
    (fun fi (f : Prog.func) ->
      if not called.(fi) && summaries.(fi).structurally_ok then
        push ~fname:f.Prog.fname ~pc:0 Warning Unreachable_code
          "function %s is never called" f.Prog.fname)
    p.Prog.funcs;

  (* stable report order: program-level first, then function order, pc *)
  let fidx d =
    if d.dfunc = "" then -1
    else
      let rec find i =
        if i >= nfuncs then nfuncs
        else if String.equal p.Prog.funcs.(i).Prog.fname d.dfunc then i
        else find (i + 1)
      in
      find 0
  in
  List.stable_sort
    (fun a b ->
      match compare (fidx a) (fidx b) with
      | 0 -> compare (a.pc, a.kind) (b.pc, b.kind)
      | c -> c)
    (List.rev !out)

(* --- reporting --------------------------------------------------------- *)

let pp_diag ppf (d : diag) =
  Fmt.pf ppf "%-7s %-18s %s%s%s: %s"
    (severity_to_string d.sev)
    (kind_to_string d.kind)
    (if d.dfunc = "" then "<program>" else d.dfunc)
    (if d.pc >= 0 then Printf.sprintf "@%d" d.pc else "")
    (if d.line >= 0 then Printf.sprintf " (line %d)" d.line else "")
    d.message

let pp_report ppf (ds : diag list) =
  List.iter (fun d -> Fmt.pf ppf "%a@," pp_diag d) ds;
  Fmt.pf ppf "%d error%s, %d warning%s"
    (List.length (errors ds))
    (if List.length (errors ds) = 1 then "" else "s")
    (List.length (warnings ds))
    (if List.length (warnings ds) = 1 then "" else "s")

let to_csv (ds : diag list) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b "severity,kind,function,pc,line,message\n";
  List.iter
    (fun d ->
      let quoted =
        "\""
        ^ String.concat "\"\"" (String.split_on_char '"' d.message)
        ^ "\""
      in
      Buffer.add_string b
        (Printf.sprintf "%s,%s,%s,%d,%d,%s\n"
           (severity_to_string d.sev)
           (kind_to_string d.kind) d.dfunc d.pc d.line quoted))
    ds;
  Buffer.contents b
