(** Reaching definitions over registers, plus reaching stores over
    memory words whose addresses resolve to compile-time constants. *)

module S : Set.S with type elt = int

val uninit_def : int
(** Sentinel definition: the register has not been written since
    function entry and is not a parameter. *)

val param_def : int
(** Sentinel definition: the register holds an incoming argument. *)

val extern_def : int
(** Sentinel memory writer: the word's value predates the function. *)

type t

val compute : ?arity:int -> Prog.func -> t
(** Forward reaching-definitions fixpoint.  Registers [0..arity-1] start
    as [param_def], the rest as [uninit_def]. *)

val cfg : t -> Cfg.t
(** The CFG the solution was computed over, for clients layering
    further analyses on the same graph. *)

val per_pc_facts :
  Cfg.t ->
  transfer:(int -> 'a -> 'a) ->
  'a Dataflow.solution ->
  bottom:'a ->
  'a array
(** Materialize the per-instruction "before" facts of a forward
    solution (shared helper for the forward analyses). *)

val defs_of : t -> pc:int -> Instr.reg -> int list
(** Definition sites (sorted) that may reach the register just before
    [pc]; sentinels included.  Empty for unreachable code. *)

val unique_def : t -> pc:int -> Instr.reg -> int option
(** The single real definition site reaching the use, if exactly one. *)

val may_be_uninit : t -> pc:int -> Instr.reg -> bool

val const_addr : t -> pc:int -> Instr.reg -> int option
(** The constant word address in the register, when its unique reaching
    definition is a [Const]. *)

type mem

val compute_mem : t -> mem
(** Forward reaching-stores fixpoint over every word address that
    appears as a resolved constant load/store address in the function.
    Unresolvable stores, calls and [Randlc] count as unknown writers of
    every tracked word. *)

val tracked_addrs : mem -> int list

val store_of : mem -> pc:int -> addr:int -> int option
(** The unique store instruction whose value occupies [addr] just before
    [pc], if there is exactly one and no unknown writer intervenes. *)
