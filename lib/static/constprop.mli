(** Constant propagation over registers: a per-register constant
    lattice ([Unknown] < [Const k] < [Varies]) solved forward on the
    generic {!Dataflow} engine.  Constants are raw bit patterns, exact
    for floats; folding uses the real {!Op} evaluators and refuses to
    fold anything that would trap. *)

type v = Unknown | Const of int64 | Varies

val join_v : v -> v -> v
val equal_v : v -> v -> bool

type t = {
  func : Prog.func;
  cfg : Cfg.t;
  before : v array array;  (** per pc, per register: value before *)
}

val compute : ?cfg:Cfg.t -> Prog.func -> t

val transfer_code : Instr.t array -> int -> int -> v array -> v array
(** [transfer_code code nregs pc fact] — the per-instruction transfer
    function, exposed for clients composing their own solutions. *)

val value_of : t -> pc:int -> Instr.reg -> v

val const_of : t -> pc:int -> Instr.reg -> int64 option
(** The constant register [r] provably holds just before [pc]. *)

val pp_v : Format.formatter -> v -> unit
