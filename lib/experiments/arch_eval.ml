(* Cross-structure fault campaigns; see the mli. *)

type cell = {
  ac_structure : Structure.t;
  ac_population : int;
  ac_counts : Campaign.counts;
}

type report = {
  ar_app : string;
  ar_seed : int;
  ar_trials : int;
  ar_geometry : Cache_model.geometry;
  ar_clean_instructions : int;
  ar_cells : cell list;
}

let sdc_rate = Recovery_eval.sdc_rate
let crash_rate = Recovery_eval.crash_rate
let recovered_rate = Recovery_eval.recovered_rate

let evaluate ?(seed = Campaign.default_config.Campaign.seed) ?(trials = 150)
    ?(structures = Structure.all) ?(geom = Cache_model.default_geometry)
    ?(backend = Backend.default) ?(jobs = 1) (app : App.t) : report =
  Cache_model.validate_geometry geom;
  let clean, trace = App.trace app in
  (match clean.Machine.outcome with
  | Machine.Finished -> ()
  | _ ->
      invalid_arg
        (Printf.sprintf "Arch_eval: %s fault-free run did not finish"
           app.App.name));
  let prog = App.program app in
  let verify = App.verify app in
  let clean_instructions = clean.Machine.instructions in
  let cell structure =
    let target =
      Campaign.structure_target ~geom structure prog trace ~clean_instructions
    in
    let cfg =
      {
        Campaign.default_config with
        seed;
        max_trials = Some trials;
        structure;
      }
    in
    let exec = { Campaign.default_exec with jobs; backend } in
    let counts = Campaign.run prog ~verify ~clean_instructions ~cfg ~exec target in
    {
      ac_structure = structure;
      ac_population = Campaign.target_population target;
      ac_counts = counts;
    }
  in
  {
    ar_app = app.App.name;
    ar_seed = seed;
    ar_trials = trials;
    ar_geometry = geom;
    ar_clean_instructions = clean_instructions;
    ar_cells = List.map cell structures;
  }

let find_cell (r : report) (s : Structure.t) : cell option =
  List.find_opt (fun c -> c.ac_structure = s) r.ar_cells

let pp_report ppf (r : report) =
  Fmt.pf ppf
    "@[<v>%s: cross-structure campaigns (seed %d, %d trials/structure, \
     cache %s, %d clean instructions)@,"
    r.ar_app r.ar_seed r.ar_trials
    (Cache_model.geometry_to_string r.ar_geometry)
    r.ar_clean_instructions;
  Fmt.pf ppf "%-11s %12s %6s %6s %6s %6s %6s  %8s %8s %8s@," "structure"
    "population" "trials" "benign" "SDC" "crash" "recov" "SDCrate" "crashrt"
    "recovrt";
  List.iter
    (fun c ->
      let k = c.ac_counts in
      Fmt.pf ppf "%-11s %12d %6d %6d %6d %6d %6d  %8.4f %8.4f %8.4f@,"
        (Structure.to_string c.ac_structure)
        c.ac_population k.Campaign.trials k.Campaign.success
        k.Campaign.failed k.Campaign.crashed k.Campaign.recovered
        (sdc_rate k) (crash_rate k) (recovered_rate k))
    r.ar_cells;
  Fmt.pf ppf "@]"

let to_csv (r : report) : string =
  let b = Buffer.create 512 in
  Buffer.add_string b
    "app,structure,geometry,population,trials,success,failed,crashed,recovered,sdc_rate,crash_rate,recovered_rate\n";
  List.iter
    (fun c ->
      let k = c.ac_counts in
      Buffer.add_string b
        (Printf.sprintf "%s,%s,%s,%d,%d,%d,%d,%d,%d,%.6f,%.6f,%.6f\n"
           r.ar_app
           (Structure.to_string c.ac_structure)
           (Cache_model.geometry_to_string r.ar_geometry)
           c.ac_population k.Campaign.trials k.Campaign.success
           k.Campaign.failed k.Campaign.crashed k.Campaign.recovered
           (sdc_rate k) (crash_rate k) (recovered_rate k)))
    r.ar_cells;
  Buffer.contents b
