(** Before/after evaluation of the automatic-hardening pipeline: paired
    baseline/hardened campaigns for any registered app, reported in the
    style of the paper's Table III.

    Campaigns are {e paired}: every variant runs with the same campaign
    seed, and trial [i] of every variant draws its fault from
    [Rng.derive ~seed ~index:i] — the same per-trial random stream — so
    the deltas between variants are not noise from different fault
    samples.  (The populations still differ — hardened programs execute
    more instructions — so trial [i] does not hit the {e same} site in
    both variants; pairing the streams removes sampling-order variance,
    which is what can be removed.)

    Per-pass attribution comes from running each pass alone, then all
    of them together, against the shared baseline. *)

type variant = {
  hv_label : string;  (** "baseline", "+duplicate-compare", ..., "all" *)
  hv_passes : string list;  (** canonical pass names applied *)
  hv_static_instrs : int;
  hv_clean_instructions : int;  (** fault-free dynamic instructions *)
  hv_report : Campaign.run_report;
  hv_pass_reports : Pass.report list;  (** empty for the baseline *)
}

type report = {
  he_app : string;
  he_seed : int;
  he_variants : variant list;  (** baseline first, combined last *)
}

val sdc_rate : Campaign.counts -> float
(** Verification-failed fraction of classified trials. *)

val crash_rate : Campaign.counts -> float

val evaluate :
  ?effort:Effort.t ->
  ?opts:Pass.opts ->
  ?passes:Pass.t list ->
  App.t ->
  report
(** Baseline, each pass of [passes] (default {!Passes.all}) alone, and
    — when more than one pass is given — all of them combined, each
    under a whole-program internal-fault campaign with shared per-trial
    RNG streams.  @raise Pass.Verify_failed if any pipeline breaks the
    IR (a pass bug, caught before any campaign runs). *)

val pp_report : Format.formatter -> report -> unit
(** The Table-III-style report: SDC/crash/benign rates with deltas
    against baseline, instruction overheads, and per-pass site/guard
    counts. *)

val to_csv : report -> string
