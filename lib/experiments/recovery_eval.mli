(** Paired recovery campaigns: the same application under every fault
    model x recovery policy, serially and across simulated MPI ranks,
    plus a message-fault section comparing the raw and reliable
    transports.

    All cells of one report share the program (the ring-exchange
    wrapped build, serial-identical to the original), the fault-site
    population (from one fault-free traced run), and the per-trial RNG
    streams: trial [i] of every cell draws from
    [Rng.derive ~seed ~index:i], and site selection is the stream's
    first draws — shared by all fault models — so a given trial
    corrupts the same dynamic site under every model and policy.  The
    deltas between cells are therefore model/policy effects, not
    sampling noise. *)

type mode = Serial | Mpi of int  (** [Mpi n] = an [n]-rank bundle *)

val mode_to_string : mode -> string

type cell = {
  rc_mode : mode;
  rc_model : Fault_model.t;
  rc_recovery : Campaign.recovery;
  rc_counts : Campaign.counts;
}

(** Transport-fault cells: no VM fault; the channel drops, corrupts, or
    duplicates payloads and the bundle outcome shows whether the
    reliable transport (checksums + receiver-driven resend) recovers
    what the raw transport cannot. *)
type message_cell = {
  rm_kind : string;  (** "drop", "corrupt", "duplicate" *)
  rm_reliable : bool;
  rm_counts : Campaign.counts;
  rm_injected : int;  (** transport faults actually applied, summed *)
  rm_resent : int;  (** retransmissions, summed (reliable only) *)
}

type report = {
  re_app : string;
  re_seed : int;
  re_size : int;
  re_serial_trials : int;
  re_mpi_trials : int;
  re_msg_trials : int;
  re_clean_instructions : int;
  re_cells : cell list;
  re_messages : message_cell list;
}

val sdc_rate : Campaign.counts -> float
val crash_rate : Campaign.counts -> float
val recovered_rate : Campaign.counts -> float

val default_models : Fault_model.t list
(** single-bit, double-adjacent, burst-8, stuck-at. *)

val default_policies : Campaign.recovery list
(** no recovery, rollback with a 3-restore budget. *)

val wrapped_program : App.t -> Prog.t
(** The app's baked program with the {!Mpi_wrap.ring_exchange} epilogue
    (and the app's own transform, if any) — the one program every cell
    of a report runs, serial-identical to [App.program]. *)

val evaluate :
  ?seed:int ->
  ?models:Fault_model.t list ->
  ?policies:Campaign.recovery list ->
  ?size:int ->
  ?serial_trials:int ->
  ?mpi_trials:int ->
  ?msg_trials:int ->
  ?recv_timeout_s:float ->
  App.t ->
  report
(** Run the full grid.  Serial cells go through the resilient campaign
    executor; MPI cells inject each trial's sampled fault into one rank
    of a [size]-rank bundle and classify the bundle with
    {!Runner.classify}.  @raise Invalid_argument if the app's
    fault-free wrapped run does not finish. *)

val find_cell :
  report ->
  mode:mode ->
  model:Fault_model.t ->
  recovery:Campaign.recovery ->
  cell option

val pp_report : Format.formatter -> report -> unit
(** The grid, a paired crash-rate-delta section (rollback vs none per
    model and mode), and the message-fault table. *)

val to_csv : report -> string
